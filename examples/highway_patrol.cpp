// Highway patrol: a longer-running world with several independent black
// holes. Different vehicles establish verified routes over time; each
// encounter drives the full BlackDP cycle, and each isolation makes the
// next verification cheaper (blacklisted attackers are filtered before they
// can even be selected). Prints the timeline.
//
//   $ ./examples/highway_patrol [seed]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "scenario/highway_scenario.hpp"

namespace {

using namespace blackdp;

void printAt(sim::Simulator& simulator, std::string_view what) {
  std::cout << std::fixed << std::setprecision(2) << std::setw(7)
            << simulator.now().toSeconds() << "s  " << what << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  scenario::ScenarioConfig config;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 17;
  config.attack = scenario::AttackType::kSingle;  // first attacker, cluster 2
  config.attackerCluster = common::ClusterId{2};
  config.evasion.firstEvasiveCluster = 99;

  scenario::HighwayScenario world(config);
  // A second, independent menace: a gray hole in cluster 4 (BlackDP's
  // documented boundary — it will survive, but its damage is measured).
  attack::GrayHoleConfig gray;
  gray.dropProbability = 0.6;
  gray.advertiseBoost = 5;
  auto& grayHole = world.spawnGrayHole(common::ClusterId{4}, gray);

  std::cout << "patrol world: black hole " << world.primaryAttacker()->address()
            << " (cluster 2), gray hole " << grayHole.address()
            << " (cluster 4)\n\n";

  // --- encounter 1: the source meets the black hole ---
  printAt(world.simulator(), "source starts verified route establishment");
  const core::VerificationReport first = world.runVerification();
  printAt(world.simulator(),
          std::string("verifier: ") + std::string(core::toString(first.outcome)) +
              ", CH verdict " + std::string(core::toString(first.chVerdict)));
  for (const core::SessionRecord& s : world.detectionSummary().sessions) {
    printAt(world.simulator(),
            "  session: suspect " + std::to_string(s.suspect.value()) +
                " -> " + std::string(core::toString(s.verdict)) + " (" +
                std::to_string(s.packetsUsed) + " packets, " +
                std::to_string(s.latency().us() / 1000) + " ms)");
  }

  // --- encounter 2: another vehicle repeats the trip; the black hole is
  // already blacklisted network-wide, so verification is clean ---
  scenario::VehicleEntity* second =
      world.findHonestVehicleIn(common::ClusterId{1});
  if (second == nullptr) {
    std::cout << "no second vehicle available in cluster 1\n";
    return 1;
  }
  bool done = false;
  core::VerificationReport secondReport;
  second->verifier->establishVerifiedRoute(
      world.destination().address(), [&](const core::VerificationReport& r) {
        secondReport = r;
        done = true;
      });
  world.runUntil([&] { return done; }, sim::Duration::seconds(60));
  printAt(world.simulator(),
          std::string("second vehicle: ") +
              std::string(core::toString(secondReport.outcome)) +
              (secondReport.reported ? " (had to report again!)"
                                     : " (no report needed: blacklist)"));

  // --- data phase: PDR through the now-clean (but gray-holed) highway ---
  const auto burst = world.sendDataBurst(100);
  printAt(world.simulator(),
          "data burst: " + std::to_string(burst.delivered) + "/" +
              std::to_string(burst.sent) + " delivered");
  if (grayHole.grayHole->grayStats().dataDroppedSelectively > 0) {
    printAt(world.simulator(),
            "gray hole silently ate " +
                std::to_string(
                    grayHole.grayHole->grayStats().dataDroppedSelectively) +
                " packets (behavioural detection is future work)");
  }

  std::cout << "\nfinal state: " << world.taNetwork().revocations().size()
            << " revocation(s); black hole blacklisted by source: "
            << (world.source().membership->isBlacklisted(
                    world.primaryAttacker()->address())
                    ? "yes"
                    : "no")
            << '\n';

  const bool ok = first.outcome == core::Outcome::kAttackerConfirmed &&
                  secondReport.outcome == core::Outcome::kRouteVerified &&
                  !secondReport.reported &&
                  world.taNetwork().revocations().size() == 1;
  std::cout << (ok ? "\nOK: patrol complete\n" : "\nUNEXPECTED\n");
  return ok ? 0 : 1;
}
