// Evasive attacker (the paper's cluster 8-10 behaviours).
//
// Places a single black hole in the last cluster and forces the
// flee-before-reply evasion: the attacker answers the source's discoveries
// but vanishes off the highway the moment the RSU probes it. BlackDP cannot
// confirm the attack — but it still *prevents* it: the source never sends
// data through the unverified route.
//
//   $ ./examples/evasive_attacker [seed]
#include <cstdlib>
#include <iostream>

#include "scenario/highway_scenario.hpp"

int main(int argc, char** argv) {
  using namespace blackdp;

  scenario::ScenarioConfig config;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  config.attack = scenario::AttackType::kSingle;
  config.attackerCluster = common::ClusterId{10};
  config.evasion.firstEvasiveCluster = 99;  // no random draws —
  config.forcedFleeMode =                   // script the flee explicitly
      static_cast<int>(attack::FleeMode::kBeforeReply);

  scenario::HighwayScenario world(config);
  const auto* attacker = world.primaryAttacker();
  std::cout << "attacker " << attacker->address()
            << " in cluster 10, flees on first probe\n\n";

  const core::VerificationReport report = world.runVerification();
  std::cout << "verifier outcome : " << core::toString(report.outcome) << '\n'
            << "CH verdict       : " << core::toString(report.chVerdict)
            << '\n';

  const scenario::DetectionSummary summary = world.detectionSummary();
  for (const core::SessionRecord& session : summary.sessions) {
    std::cout << "session: suspect=" << session.suspect
              << " verdict=" << core::toString(session.verdict)
              << " packets=" << session.packetsUsed << '\n';
  }
  std::cout << "attacker still attached to the medium: "
            << (attacker->node->isAttached() ? "yes" : "no (fled the highway)")
            << '\n'
            << "attacker flee events: "
            << attacker->attacker->attackStats().fleeEvents << '\n';

  // The attack was not *detected* (the paper's cluster-10 false negatives),
  // but it was *prevented*: no data ever flowed through the black hole, no
  // false positive was raised, and the attacker had to leave the network to
  // escape — after which the source may well verify an honest route.
  const bool ok = !summary.confirmedOnAttacker && !summary.falsePositive &&
                  !attacker->node->isAttached();
  std::cout << (ok ? "\nOK: attack prevented; attacker evaded detection by "
                     "fleeing (expected in cluster 10)\n"
                   : "\nUNEXPECTED: see report above\n");
  return ok ? 0 : 1;
}
