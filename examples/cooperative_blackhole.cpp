// Cooperative black hole walkthrough (paper Fig. 3 scenario).
//
// Two colluding attackers sit in cluster 2: the primary answers route
// requests with a forged sequence number and forges Hello replies claiming
// its teammate is the destination ("anonymity response"); the teammate
// vouches for the primary under probing. BlackDP's RSU exposes both with the
// RREQ₁/RREQ₂ probe pair plus one teammate probe, then isolates both
// certificates at the TA.
//
// With `--trace <path>` the run records a structured event trace and writes
// it as JSONL (plus a Chrome trace_event timeline next to it, `.chrome.json`)
// for `tools/trace_report` / chrome://tracing.
//
//   $ ./examples/cooperative_blackhole [seed] [--trace run.jsonl]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/trace.hpp"
#include "obs/trace_io.hpp"
#include "scenario/highway_scenario.hpp"

int main(int argc, char** argv) {
  using namespace blackdp;

  std::uint64_t seed = 7;
  std::string tracePath;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      tracePath = argv[++i];
    } else {
      seed = std::strtoull(arg.c_str(), nullptr, 10);
    }
  }

  obs::MemoryRecorder recorder;
  obs::ScopedTraceRecorder scoped{tracePath.empty() ? nullptr : &recorder};

  scenario::ScenarioConfig config;
  config.seed = seed;
  config.attack = scenario::AttackType::kCooperative;
  config.attackerCluster = common::ClusterId{2};
  // The primary answers the source's secure Hello with a forged reply
  // naming the teammate as destination — the immediate-report path.
  config.attackerFakesHelloReply = true;

  scenario::HighwayScenario world(config);
  const auto* primary = world.primaryAttacker();
  const auto* teammate = world.accomplice();
  std::cout << "primary attacker  " << primary->address() << '\n'
            << "teammate          " << teammate->address() << "\n\n";

  const core::VerificationReport report = world.runVerification();
  std::cout << "verifier outcome : " << core::toString(report.outcome) << '\n'
            << "CH verdict       : " << core::toString(report.chVerdict)
            << '\n'
            << "hello probes     : " << report.helloProbes
            << "  (anonymity response → immediate d_req)\n\n";

  const scenario::DetectionSummary summary = world.detectionSummary();
  for (const core::SessionRecord& session : summary.sessions) {
    std::cout << "session: suspect=" << session.suspect
              << " verdict=" << core::toString(session.verdict)
              << " accomplice=" << session.accomplice
              << " packets=" << session.packetsUsed << '\n';
  }

  const auto& attackStats = primary->attacker->attackStats();
  std::cout << "\nprimary forged " << attackStats.rrepsForged
            << " RREPs and " << attackStats.helloRepliesForged
            << " fake Hello replies\n";
  std::cout << "revocations issued by the TA: "
            << world.taNetwork().revocations().size()
            << " (primary + teammate)\n";

  if (!tracePath.empty()) {
    std::ofstream jsonl{tracePath};
    obs::writeJsonl(recorder.events(), jsonl);
    std::ofstream chrome{tracePath + ".chrome.json"};
    obs::writeChromeTrace(recorder.events(), chrome);
    std::cout << "\ntrace: " << recorder.size() << " events -> " << tracePath
              << " (timeline: " << tracePath << ".chrome.json)\n";
  }

  const bool ok =
      summary.verdict == core::Verdict::kCooperativeBlackHole &&
      world.taNetwork().revocations().size() == 2 && !summary.falsePositive;
  std::cout << (ok ? "\nOK: cooperative pair detected and both isolated\n"
                   : "\nUNEXPECTED: see report above\n");
  return ok ? 0 : 1;
}
