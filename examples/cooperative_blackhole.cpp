// Cooperative black hole walkthrough (paper Fig. 3 scenario).
//
// Two colluding attackers sit in cluster 2: the primary answers route
// requests with a forged sequence number and forges Hello replies claiming
// its teammate is the destination ("anonymity response"); the teammate
// vouches for the primary under probing. BlackDP's RSU exposes both with the
// RREQ₁/RREQ₂ probe pair plus one teammate probe, then isolates both
// certificates at the TA.
//
//   $ ./examples/cooperative_blackhole [seed]
#include <cstdlib>
#include <iostream>

#include "scenario/highway_scenario.hpp"

int main(int argc, char** argv) {
  using namespace blackdp;

  scenario::ScenarioConfig config;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  config.attack = scenario::AttackType::kCooperative;
  config.attackerCluster = common::ClusterId{2};
  // The primary answers the source's secure Hello with a forged reply
  // naming the teammate as destination — the immediate-report path.
  config.attackerFakesHelloReply = true;

  scenario::HighwayScenario world(config);
  const auto* primary = world.primaryAttacker();
  const auto* teammate = world.accomplice();
  std::cout << "primary attacker  " << primary->address() << '\n'
            << "teammate          " << teammate->address() << "\n\n";

  const core::VerificationReport report = world.runVerification();
  std::cout << "verifier outcome : " << core::toString(report.outcome) << '\n'
            << "CH verdict       : " << core::toString(report.chVerdict)
            << '\n'
            << "hello probes     : " << report.helloProbes
            << "  (anonymity response → immediate d_req)\n\n";

  const scenario::DetectionSummary summary = world.detectionSummary();
  for (const core::SessionRecord& session : summary.sessions) {
    std::cout << "session: suspect=" << session.suspect
              << " verdict=" << core::toString(session.verdict)
              << " accomplice=" << session.accomplice
              << " packets=" << session.packetsUsed << '\n';
  }

  const auto& attackStats = primary->attacker->attackStats();
  std::cout << "\nprimary forged " << attackStats.rrepsForged
            << " RREPs and " << attackStats.helloRepliesForged
            << " fake Hello replies\n";
  std::cout << "revocations issued by the TA: "
            << world.taNetwork().revocations().size()
            << " (primary + teammate)\n";

  const bool ok =
      summary.verdict == core::Verdict::kCooperativeBlackHole &&
      world.taNetwork().revocations().size() == 2 && !summary.falsePositive;
  std::cout << (ok ? "\nOK: cooperative pair detected and both isolated\n"
                   : "\nUNEXPECTED: see report above\n");
  return ok ? 0 : 1;
}
