// Baseline comparison on a captured route discovery.
//
// Shows the public baselines API (§V of the paper): capture the RREPs one
// discovery collects, then run each source-side heuristic over them and
// compare with what BlackDP concludes about the same world.
//
//   $ ./examples/baseline_comparison [seed]
#include <cstdlib>
#include <iostream>

#include "baselines/rrep_detectors.hpp"
#include "scenario/highway_scenario.hpp"

namespace {

void runDetector(blackdp::baselines::RrepDetector& detector,
                 const std::vector<blackdp::aodv::RouteReply>& rreps,
                 const blackdp::scenario::HighwayScenario& world) {
  std::cout << "  " << detector.name() << ": ";
  const auto flagged = detector.classify(rreps);
  if (flagged.empty()) {
    std::cout << "flags nobody\n";
    return;
  }
  for (const auto& address : flagged) {
    std::cout << address
              << (world.isAttackerPseudonym(address) ? " (attacker!)"
                                                     : " (HONEST — FP)")
              << ' ';
  }
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blackdp;

  scenario::ScenarioConfig config;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  config.attack = scenario::AttackType::kCooperative;
  config.attackerCluster = common::ClusterId{2};

  scenario::HighwayScenario world(config);
  world.runFor(sim::Duration::milliseconds(500));

  // Capture what the source's "routing cache" sees in one plain discovery.
  std::vector<aodv::RouteReply> rreps;
  world.source().agent->setRrepObserver(
      [&rreps](const aodv::RouteReply& rrep, const net::Frame&) {
        rreps.push_back(rrep);
      });
  bool done = false;
  world.source().agent->findRoute(world.destination().address(),
                                  [&done](bool) { done = true; });
  world.runUntil([&] { return done; }, sim::Duration::seconds(10));

  std::cout << "RREPs collected by the source:\n";
  for (const aodv::RouteReply& rrep : rreps) {
    std::cout << "  from " << rrep.replier << " seq=" << rrep.destSeq
              << " hops=" << static_cast<int>(rrep.hopCount)
              << (world.isAttackerPseudonym(rrep.replier) ? "  <- attacker"
                                                          : "")
              << '\n';
  }

  std::cout << "\nsource-side heuristics on that cache:\n";
  baselines::FirstRrepComparisonDetector jaiswal;
  baselines::PeakThresholdDetector peak;
  baselines::StaticThresholdDetector tanSmall(baselines::Environment::kSmall);
  baselines::StaticThresholdDetector tanMedium(
      baselines::Environment::kMedium);
  runDetector(jaiswal, rreps, world);
  runDetector(peak, rreps, world);
  runDetector(tanSmall, rreps, world);
  runDetector(tanMedium, rreps, world);

  std::cout << "\nNote the cooperative pair: both attackers reply with the "
               "same forged freshness,\nso first-vs-rest comparison sees "
               "nothing unusual, and a threshold only works if\nits guess "
               "happens to undercut the forgery. BlackDP instead probes "
               "behaviour\nthrough the RSU — run ./cooperative_blackhole to "
               "see it confirm both nodes.\n";
  return 0;
}
