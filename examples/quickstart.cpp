// Quickstart: build a Table-I highway, drop a single black hole into
// cluster 2, and watch BlackDP verify the route, report the suspect, confirm
// the attack at the RSU, and isolate the attacker.
//
//   $ ./examples/quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "scenario/highway_scenario.hpp"

int main(int argc, char** argv) {
  using namespace blackdp;

  scenario::ScenarioConfig config;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  config.attack = scenario::AttackType::kSingle;
  config.attackerCluster = common::ClusterId{2};

  scenario::HighwayScenario world(config);
  std::cout << "highway: " << world.highway().length() / 1000.0 << " km, "
            << world.highway().clusterCount() << " clusters, "
            << world.vehicles().size() << " vehicles\n";
  std::cout << "source   " << world.source().address() << " (cluster 1)\n";
  std::cout << "dest     " << world.destination().address() << '\n';
  std::cout << "attacker " << world.primaryAttacker()->address()
            << " (cluster 2)\n\n";

  // The source establishes a verified route to the destination. The black
  // hole will answer first with a forged sequence number; BlackDP's
  // verification and RSU probing take it from there.
  const core::VerificationReport report = world.runVerification();

  std::cout << "verifier outcome   : " << core::toString(report.outcome)
            << '\n'
            << "suspect reported   : " << report.suspect << '\n'
            << "CH verdict         : " << core::toString(report.chVerdict)
            << '\n'
            << "discovery rounds   : " << report.discoveryRounds << '\n'
            << "hello probes       : " << report.helloProbes << "\n\n";

  const scenario::DetectionSummary summary = world.detectionSummary();
  for (const core::SessionRecord& session : summary.sessions) {
    std::cout << "detection session: suspect=" << session.suspect
              << " verdict=" << core::toString(session.verdict)
              << " packets=" << session.packetsUsed << '\n';
  }

  std::cout << "\nrevocations at TA  : "
            << world.taNetwork().revocations().size() << '\n';
  std::cout << "attacker blacklisted by source: "
            << (world.source().membership->isBlacklisted(
                    world.primaryAttacker()->address())
                    ? "yes"
                    : "no")
            << '\n';

  const bool ok = report.outcome == core::Outcome::kAttackerConfirmed &&
                  summary.confirmedOnAttacker && !summary.falsePositive;
  std::cout << (ok ? "\nOK: black hole detected and isolated\n"
                   : "\nUNEXPECTED: see report above\n");
  return ok ? 0 : 1;
}
