// Urban grid walkthrough (paper §VI future work): BlackDP on a Manhattan
// grid with one RSU per intersection and vehicles turning at corners.
//
//   $ ./examples/urban_intersection [seed]
#include <cstdlib>
#include <iostream>

#include "scenario/urban_scenario.hpp"

int main(int argc, char** argv) {
  using namespace blackdp;

  scenario::UrbanConfig config;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 9;
  config.attack = scenario::AttackType::kSingle;
  config.attackerIx = 1;
  config.attackerIy = 1;

  scenario::UrbanScenario world(config);
  std::cout << "urban grid: " << config.blocksX << "x" << config.blocksY
            << " blocks of " << config.blockM << " m, "
            << world.rsus().size() << " intersection RSUs, "
            << world.vehicles().size() << " vehicles\n";
  std::cout << "source at intersection (0,0), destination at ("
            << config.blocksX << "," << config.blocksY << "), attacker at ("
            << config.attackerIx << "," << config.attackerIy << ")\n\n";

  const core::VerificationReport report = world.runVerification();
  std::cout << "verifier outcome : " << core::toString(report.outcome) << '\n'
            << "CH verdict       : " << core::toString(report.chVerdict)
            << '\n';

  const scenario::DetectionSummary summary = world.detectionSummary();
  for (const core::SessionRecord& session : summary.sessions) {
    const auto [ix, iy] = world.grid().gridCoordinates(
        common::ClusterId{static_cast<std::uint32_t>(session.id.value() >> 32)});
    std::cout << "session at intersection (" << ix << "," << iy
              << "): suspect=" << session.suspect
              << " verdict=" << core::toString(session.verdict)
              << " packets=" << session.packetsUsed
              << " latency=" << session.latency().us() / 1000 << " ms\n";
  }

  // How much the fleet moved while all this happened.
  std::uint64_t legs = 0;
  for (auto& vehicle : world.vehicles()) {
    legs += vehicle->membership->stats().leavesSent;
  }
  std::cout << "\nzone migrations during the trial: " << legs << '\n';
  std::cout << "revocations at the TA           : "
            << world.taNetwork().revocations().size() << '\n';

  const bool ok = summary.confirmedOnAttacker && !summary.falsePositive;
  std::cout << (ok ? "\nOK: the highway protocol carries over to the urban "
                     "grid unchanged\n"
                   : "\nUNEXPECTED: see report above\n");
  return ok ? 0 : 1;
}
