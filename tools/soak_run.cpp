// Chaos-soak driver, plus the streaming detector-service soak.
//
//   soak_run --seconds 30                 # randomized soak within a budget
//   soak_run --seconds 30 --jobs 8        # parallel trials
//   soak_run --trials 12                  # fixed trial count instead
//   soak_run --seed 42 --trial 7          # replay exactly one trial
//   soak_run --inject-violation ...       # prove the harness catches bugs
//
// Streaming mode (continuous d_req ingest with memory-watermark checking
// and crash-consistent checkpointing; see src/soak/stream_soak.hpp):
//
//   soak_run --stream --epochs 600                       # 10-sim-minute flood
//   soak_run --stream --epochs 40 --checkpoint-every 10
//            --checkpoint-dir ckpts --json metrics.json  # checkpointed run
//   soak_run --stream ... --stop-after 25                # emulated kill
//   soak_run --stream ... --resume                       # continue from ckpt
//   soak_run --stream ... --trace trace.jsonl            # record d_req trace
//
// Megacity mode (sharded corridor with crash-consistent checkpoints and
// kill/resume chaos; see src/soak/megacity_soak.hpp):
//
//   soak_run --megacity --segments 8 --vehicles 800 --shards 4 --epochs 6
//            --checkpoint-every 2 --checkpoint-dir ckpts   # checkpointed run
//   soak_run --megacity ... --stop-after 3                 # emulated kill
//   soak_run --megacity ... --resume                       # continue
//   soak_run --megacity ... --chaos-kills 3                # kill/resume chaos
//   soak_run --megacity ... --surfaces-out surfaces.txt    # byte-compare file
//
// On any invariant violation the process prints one replay line per
// violation and exits 1. Replays are pure functions of the seed: one
// thread, any machine, same violation.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "obs/trace_io.hpp"
#include "sim/parallel.hpp"
#include "soak/megacity_soak.hpp"
#include "soak/soak_runner.hpp"
#include "soak/stream_soak.hpp"

namespace {

int runStreamMode(const blackdp::soak::StreamSoakOptions& options,
                  const std::string& jsonPath) {
  const blackdp::soak::StreamSoakResult result =
      blackdp::soak::runStreamSoak(options);
  for (const blackdp::soak::StreamSoakViolation& v : result.violations) {
    std::cout << "VIOLATION [" << v.invariant << "] epoch " << v.epoch << ": "
              << v.detail << "\n";
  }
  if (!jsonPath.empty()) {
    std::ofstream out{jsonPath, std::ios::trunc};
    if (!out) {
      std::cerr << "cannot write metrics to " << jsonPath << "\n";
      return 2;
    }
    out << result.metricsJson << "\n";
  }
  if (result.passed()) {
    std::cout << "stream soak PASS: epochs " << result.startEpoch << ".."
              << result.endEpoch << ", all watermarks held.\n";
    if (!result.lastCheckpointPath.empty()) {
      std::cout << "last checkpoint: " << result.lastCheckpointPath << "\n";
    }
    return 0;
  }
  std::cout << "stream soak FAIL: " << result.violations.size()
            << " violation(s).\n";
  return 1;
}

int runMegacityMode(const blackdp::soak::MegacitySoakOptions& options,
                    unsigned jobs, const std::string& jsonPath,
                    const std::string& surfacesPath) {
  const blackdp::sim::ParallelRunner runner{jobs};
  const blackdp::soak::MegacitySoakResult result =
      blackdp::soak::runMegacitySoak(options, runner.threadPool());
  for (const blackdp::soak::StreamSoakViolation& v : result.violations) {
    std::cout << "VIOLATION [" << v.invariant << "] epoch " << v.epoch << ": "
              << v.detail << "\n";
  }
  if (!jsonPath.empty()) {
    std::ofstream out{jsonPath, std::ios::trunc};
    if (!out) {
      std::cerr << "cannot write metrics to " << jsonPath << "\n";
      return 2;
    }
    out << result.metricsJson << "\n";
  }
  if (!surfacesPath.empty()) {
    // Both partition-invariant surfaces in one file, so CI can byte-compare
    // a resumed run against an uninterrupted one with a single cmp.
    std::ofstream out{surfacesPath, std::ios::trunc};
    if (!out) {
      std::cerr << "cannot write surfaces to " << surfacesPath << "\n";
      return 2;
    }
    out << result.metricsJson << "\n" << result.canonicalLog;
  }
  if (result.passed()) {
    std::cout << "megacity soak PASS: epochs " << result.startEpoch << ".."
              << result.endEpoch << ", all invariants held.\n";
    if (!result.lastCheckpointPath.empty()) {
      std::cout << "last checkpoint: " << result.lastCheckpointPath << "\n";
    }
    return 0;
  }
  std::cout << "megacity soak FAIL: " << result.violations.size()
            << " violation(s).\n";
  return 1;
}

void printViolations(const blackdp::soak::SoakRunner& runner,
                     const std::vector<blackdp::soak::SoakViolation>& violations,
                     bool injected) {
  for (const blackdp::soak::SoakViolation& v : violations) {
    std::cout << "VIOLATION [" << v.invariant << "] trial " << v.trialIndex
              << " (seed " << v.trialSeed << "): " << v.detail << "\n"
              << "  replay: soak_run --seed "
              << runner.options().masterSeed << " --trial " << v.trialIndex
              << (injected ? " --inject-violation" : "") << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  blackdp::soak::SoakOptions options;
  options.log = &std::cout;
  std::optional<std::uint64_t> replayTrial;
  std::string tracePath;

  bool streamMode = false;
  blackdp::soak::StreamSoakOptions streamOptions;
  streamOptions.log = &std::cout;
  std::string jsonPath;

  bool megacityMode = false;
  blackdp::soak::MegacitySoakOptions megacityOptions;
  megacityOptions.log = &std::cout;
  std::string surfacesPath;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--stream") {
      streamMode = true;
    } else if (arg == "--megacity") {
      megacityMode = true;
    } else if (arg == "--epochs") {
      streamOptions.epochs = std::strtoull(value(), nullptr, 10);
      megacityOptions.epochs = static_cast<std::uint32_t>(streamOptions.epochs);
    } else if (arg == "--segments") {
      megacityOptions.config.segments =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--vehicles") {
      megacityOptions.config.vehicles =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--shards") {
      megacityOptions.shards =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--megacity-seed") {
      megacityOptions.config.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--chaos-kills") {
      megacityOptions.chaosKills =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--surfaces-out") {
      surfacesPath = value();
    } else if (arg == "--stream-seed") {
      streamOptions.stream.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--clusters") {
      streamOptions.stream.clusters =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--dreqs-per-epoch") {
      streamOptions.stream.dreqsPerEpoch =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--checkpoint-every") {
      streamOptions.checkpointEvery = std::strtoull(value(), nullptr, 10);
      megacityOptions.checkpointEvery =
          static_cast<std::uint32_t>(streamOptions.checkpointEvery);
    } else if (arg == "--checkpoint-dir") {
      streamOptions.checkpointDir = value();
      megacityOptions.checkpointDir = streamOptions.checkpointDir;
    } else if (arg == "--resume") {
      streamOptions.resume = true;
      megacityOptions.resume = true;
    } else if (arg == "--stop-after") {
      streamOptions.stopAfter = std::strtoull(value(), nullptr, 10);
      megacityOptions.stopAfter =
          static_cast<std::uint32_t>(streamOptions.stopAfter);
    } else if (arg == "--json") {
      jsonPath = value();
    } else if (arg == "--seconds") {
      options.wallClockBudgetS = std::strtod(value(), nullptr);
    } else if (arg == "--trials") {
      options.maxTrials = std::strtoull(value(), nullptr, 10);
      options.wallClockBudgetS = 1e9;  // trial count is the stop condition
    } else if (arg == "--seed") {
      options.masterSeed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--jobs") {
      options.jobs = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--trial") {
      replayTrial = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--trace") {
      tracePath = value();
    } else if (arg == "--inject-violation") {
      options.injectViolation = true;
    } else if (arg == "--quiet") {
      options.log = nullptr;
      streamOptions.log = nullptr;
      megacityOptions.log = nullptr;
    } else {
      std::cerr << "unknown argument: " << arg << "\n"
                << "usage: soak_run [--seconds N] [--trials N] [--seed S] "
                   "[--jobs J] [--trial K] [--trace FILE] "
                   "[--inject-violation] [--quiet]\n"
                   "   or: soak_run --stream [--epochs N] [--stream-seed S] "
                   "[--clusters C] [--dreqs-per-epoch D] "
                   "[--checkpoint-every K] [--checkpoint-dir DIR] [--resume] "
                   "[--stop-after E] [--trace FILE] [--json FILE] [--quiet]\n"
                   "   or: soak_run --megacity [--segments N] [--vehicles V] "
                   "[--shards P] [--epochs N] [--megacity-seed S] "
                   "[--checkpoint-every K] [--checkpoint-dir DIR] [--resume] "
                   "[--stop-after E] [--chaos-kills C] [--jobs J] "
                   "[--json FILE] [--surfaces-out FILE] [--quiet]\n";
      return 2;
    }
  }

  if (megacityMode) {
    return runMegacityMode(megacityOptions, options.jobs, jsonPath,
                           surfacesPath);
  }

  if (streamMode) {
    streamOptions.tracePath = tracePath;
    return runStreamMode(streamOptions, jsonPath);
  }

  const blackdp::soak::SoakRunner runner{options};

  if (replayTrial) {
    std::vector<blackdp::obs::TraceEvent> trace;
    const blackdp::soak::SoakTrialReport report = runner.runTrial(
        *replayTrial, tracePath.empty() ? nullptr : &trace);
    std::cout << "replaying trial " << report.trialIndex << " (seed "
              << report.trialSeed << "): " << report.description << "\n";
    if (!tracePath.empty()) {
      std::ofstream out{tracePath, std::ios::trunc};
      if (!out) {
        std::cerr << "cannot write trace to " << tracePath << "\n";
        return 2;
      }
      blackdp::obs::writeJsonl(trace, out);
      std::cout << "trace (" << trace.size() << " events) written to "
                << tracePath << "\n";
    }
    printViolations(runner, report.violations, options.injectViolation);
    if (report.violations.empty()) {
      std::cout << "all invariants held.\n";
      return 0;
    }
    return 1;
  }

  const blackdp::soak::SoakResult result = runner.run();
  printViolations(runner, result.violations, options.injectViolation);
  if (result.passed()) {
    std::cout << "soak PASS: " << result.trialsRun
              << " randomized trial(s), all invariants held.\n";
    return 0;
  }
  std::cout << "soak FAIL: " << result.violations.size()
            << " violation(s) across " << result.trialsRun << " trial(s).\n";
  return 1;
}
