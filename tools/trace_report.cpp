// trace_report — offline analysis of a BlackDP JSONL trace.
//
// Loads a trace written by an instrumented run (e.g.
// `examples/cooperative_blackhole --trace run.jsonl`), reconstructs every
// detection session's timeline (suspicion → d_req → probe pair → verdict →
// isolation) and prints per-stage latencies plus event and drop-cause
// totals.
//
//   $ ./tools/trace_report run.jsonl
#include <fstream>
#include <iostream>
#include <string>

#include "obs/report.hpp"
#include "obs/trace_io.hpp"

int main(int argc, char** argv) {
  if (argc != 2 || std::string{argv[1]} == "--help") {
    std::cerr << "usage: trace_report <trace.jsonl>\n"
                 "  Prints per-session detection timelines and stage-latency\n"
                 "  summaries from a JSONL trace (see --trace on the "
                 "examples).\n";
    return argc == 2 ? 0 : 2;
  }

  std::ifstream in{argv[1]};
  if (!in) {
    std::cerr << "trace_report: cannot open " << argv[1] << '\n';
    return 2;
  }

  try {
    const auto events = blackdp::obs::readJsonl(in);
    const auto report = blackdp::obs::buildReport(events);
    blackdp::obs::printReport(report, std::cout);
  } catch (const std::exception& e) {
    std::cerr << "trace_report: " << e.what() << '\n';
    return 2;
  }
  return 0;
}
