// Trace replay server: re-drives a recorded d_req trace (JSONL, written by
// `soak_run --stream --trace FILE`) through a detector build and reports
// the verdict timeline it produced.
//
//   replay_serve --trace trace.jsonl                  # hardened build
//   replay_serve --trace trace.jsonl --naive          # hardening disabled
//   replay_serve --trace trace.jsonl --json out.json  # metrics to a file
//   replay_serve --trace trace.jsonl --expect-hash H  # regression gate:
//                                                     # exit 1 on mismatch
//   replay_serve --trace trace.jsonl --diff           # A/B: naive vs
//                                                     # hardened, timeline
//                                                     # diff side by side
//
// The replayed world must be built with the same topology and seed as the
// recorder (--stream-seed / --clusters, defaults match soak_run --stream),
// otherwise enrollment-derived pseudonyms differ and the trace's reporter
// and target indices address different identities. The config hash inside a
// checkpoint guards restore; a trace has no such guard — it is deliberately
// build-independent so it CAN cross builds (that is the point of A/B).
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "scenario/stream_world.hpp"

namespace {

using blackdp::scenario::InjectionSpec;
using blackdp::scenario::StreamConfig;
using blackdp::scenario::StreamWorld;
using blackdp::scenario::VerdictEvent;

constexpr const char* kVerdictNames[4] = {"not-confirmed", "single",
                                          "cooperative", "unreachable"};

/// The trace, grouped per epoch (file order preserved inside an epoch).
struct Trace {
  std::vector<std::vector<InjectionSpec>> epochs;
  std::size_t lines{0};
};

bool loadTrace(const std::string& path, Trace& out) {
  std::ifstream in{path};
  if (!in) {
    std::cerr << "cannot read trace " << path << "\n";
    return false;
  }
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    const auto parsed = blackdp::scenario::parseInjectionJson(line);
    if (!parsed) {
      std::cerr << path << ":" << lineNo << ": malformed trace line\n";
      return false;
    }
    const auto& [epoch, spec] = *parsed;
    if (epoch > 10'000'000) {
      std::cerr << path << ":" << lineNo << ": implausible epoch " << epoch
                << "\n";
      return false;
    }
    if (out.epochs.size() <= epoch) out.epochs.resize(epoch + 1);
    out.epochs[epoch].push_back(spec);
    ++out.lines;
  }
  return true;
}

/// Serves every epoch of the trace through a fresh world (epochs with no
/// recorded injections still run, so timers fire on the same boundaries).
std::unique_ptr<StreamWorld> serve(const StreamConfig& config,
                                   const Trace& trace, bool recordTimeline) {
  auto world = std::make_unique<StreamWorld>(config);
  world->recordVerdicts(recordTimeline);
  for (std::size_t epoch = 0; epoch < trace.epochs.size(); ++epoch) {
    world->runEpochFromSpecs(trace.epochs[epoch]);
  }
  return world;
}

void printTimelineSummary(const char* label, const StreamWorld& world) {
  const blackdp::scenario::StreamMetrics m = world.metrics();
  std::cout << label << ": responses";
  for (int v = 0; v < 4; ++v) {
    std::cout << " " << kVerdictNames[v] << "=" << m.responsesByVerdict[v];
  }
  std::cout << " isolations=" << m.isolations
            << " verdict_hash=" << m.verdictHash << "\n";
}

int diffTimelines(const StreamWorld& naive, const StreamWorld& hardened) {
  const std::vector<VerdictEvent>& a = naive.verdictTimeline();
  const std::vector<VerdictEvent>& b = hardened.verdictTimeline();
  printTimelineSummary("A (naive)   ", naive);
  printTimelineSummary("B (hardened)", hardened);

  std::size_t prefix = 0;
  while (prefix < a.size() && prefix < b.size() && a[prefix] == b[prefix]) {
    ++prefix;
  }
  if (prefix == a.size() && prefix == b.size()) {
    std::cout << "timelines identical (" << a.size() << " verdict(s)).\n";
    return 0;
  }
  std::cout << "timelines diverge after " << prefix
            << " shared verdict(s); A has " << a.size() << ", B has "
            << b.size() << ".\n";
  const auto show = [](const char* side, const std::vector<VerdictEvent>& tl,
                       std::size_t at) {
    if (at >= tl.size()) {
      std::cout << "  " << side << " <end of timeline>\n";
      return;
    }
    const VerdictEvent& e = tl[at];
    std::cout << "  " << side << " t=" << e.timeUs << "us reporter="
              << e.reporter << " suspect=" << e.suspect << " verdict="
              << kVerdictNames[e.verdict % 4]
              << (e.accomplice != 0
                      ? " accomplice=" + std::to_string(e.accomplice)
                      : std::string{})
              << "\n";
  };
  constexpr std::size_t kShow = 5;
  for (std::size_t k = 0; k < kShow; ++k) {
    const std::size_t at = prefix + k;
    if (at >= a.size() && at >= b.size()) break;
    std::cout << "divergence +" << k << ":\n";
    show("A:", a, at);
    show("B:", b, at);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string tracePath;
  std::string jsonPath;
  StreamConfig config;
  bool naive = false;
  bool diff = false;
  bool haveExpectHash = false;
  std::uint64_t expectHash = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace") {
      tracePath = value();
    } else if (arg == "--json") {
      jsonPath = value();
    } else if (arg == "--stream-seed") {
      config.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--clusters") {
      config.clusters =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--naive") {
      naive = true;
    } else if (arg == "--diff") {
      diff = true;
    } else if (arg == "--expect-hash") {
      haveExpectHash = true;
      expectHash = std::strtoull(value(), nullptr, 0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n"
                << "usage: replay_serve --trace FILE [--stream-seed S] "
                   "[--clusters C] [--naive] [--json FILE] "
                   "[--expect-hash H] [--diff]\n";
      return 2;
    }
  }
  if (tracePath.empty()) {
    std::cerr << "--trace is required\n";
    return 2;
  }

  Trace trace;
  if (!loadTrace(tracePath, trace)) return 2;
  std::cout << "replaying " << trace.lines << " d_req(s) across "
            << trace.epochs.size() << " epoch(s)\n";

  if (diff) {
    StreamConfig naiveConfig = config;
    naiveConfig.detector.hardening.enabled = false;
    const auto a = serve(naiveConfig, trace, /*recordTimeline=*/true);
    const auto b = serve(config, trace, /*recordTimeline=*/true);
    return diffTimelines(*a, *b);
  }

  StreamConfig serveConfig = config;
  if (naive) serveConfig.detector.hardening.enabled = false;
  const auto world = serve(serveConfig, trace, /*recordTimeline=*/false);
  const blackdp::scenario::StreamMetrics metrics = world->metrics();
  if (!jsonPath.empty()) {
    std::ofstream out{jsonPath, std::ios::trunc};
    if (!out) {
      std::cerr << "cannot write metrics to " << jsonPath << "\n";
      return 2;
    }
    out << metrics.toJson() << "\n";
  } else {
    std::cout << metrics.toJson() << "\n";
  }
  std::cout << "verdict_hash=" << metrics.verdictHash << "\n";
  if (haveExpectHash && metrics.verdictHash != expectHash) {
    std::cout << "REGRESSION: verdict hash " << metrics.verdictHash
              << " != expected " << expectHash << "\n";
    return 1;
  }
  return 0;
}
