// campaign_run — execute a declarative experiment campaign.
//
//   campaign_run <spec.json | builtin-name> [options]
//   campaign_run --list
//
// Options:
//   --jobs N         worker threads (0 = BLACKDP_JOBS / hardware default)
//   --out DIR        output directory for the manifest and BENCH JSON
//                    (default: BLACKDP_BENCH_OUT, then ".")
//   --trials N       override the spec's repetitions per treatment
//   --resume         skip trials already recorded in the manifest
//   --dry-run        expand and print the treatment matrix, run nothing
//   --pin-sidecar    zero the wall-clock sidecar so BENCH_<name>.json is
//                    byte-reproducible end to end
//   --list           list the built-in campaign specs
//
// The positional argument is tried as a file path first, then as a builtin
// name (`campaign_run fig4` works from any directory).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "campaign/builtin.hpp"
#include "campaign/runner.hpp"
#include "metrics/table.hpp"

namespace {

void printUsage(std::ostream& out) {
  out << "usage: campaign_run <spec.json | builtin-name> "
         "[--jobs N] [--out DIR] [--trials N]\n"
         "                    [--resume] [--dry-run] [--pin-sidecar]\n"
         "       campaign_run --list\n";
}

int listBuiltins() {
  std::cout << "built-in campaigns:\n";
  for (const blackdp::campaign::BuiltinSpec& spec :
       blackdp::campaign::builtinSpecs()) {
    std::cout << "  " << spec.name << " — " << spec.description << '\n';
  }
  return 0;
}

/// The spec text: the positional argument as a file when one exists there,
/// otherwise the builtin of that name.
bool loadSpecText(const std::string& arg, std::string& text,
                  std::string& origin) {
  std::ifstream in{arg};
  if (in) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
    origin = arg;
    return true;
  }
  const blackdp::campaign::BuiltinSpec* builtin =
      blackdp::campaign::findBuiltinSpec(arg);
  if (builtin != nullptr) {
    text = std::string{builtin->json};
    origin = "builtin:" + std::string{builtin->name};
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blackdp;
  using metrics::Table;

  campaign::CampaignOptions options;
  options.log = &std::cout;
  std::string specArg;
  std::uint32_t trialsOverride = 0;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto needsValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "campaign_run: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      options.jobs =
          static_cast<unsigned>(std::strtoul(needsValue("--jobs"), nullptr, 10));
    } else if (arg == "--out") {
      options.outDir = needsValue("--out");
    } else if (arg == "--trials") {
      trialsOverride = static_cast<std::uint32_t>(
          std::strtoul(needsValue("--trials"), nullptr, 10));
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--dry-run") {
      options.dryRun = true;
    } else if (arg == "--pin-sidecar") {
      options.pinSidecar = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--help" || arg == "-h") {
      printUsage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "campaign_run: unknown option " << arg << '\n';
      printUsage(std::cerr);
      return 2;
    } else if (specArg.empty()) {
      specArg = arg;
    } else {
      std::cerr << "campaign_run: more than one spec given\n";
      return 2;
    }
  }

  if (list) return listBuiltins();
  if (specArg.empty()) {
    printUsage(std::cerr);
    return 2;
  }

  std::string text;
  std::string origin;
  if (!loadSpecText(specArg, text, origin)) {
    std::cerr << "campaign_run: no spec file or builtin named '" << specArg
              << "' (see --list)\n";
    return 2;
  }

  std::string error;
  std::optional<campaign::CampaignSpec> spec =
      campaign::parseCampaignSpec(text, &error);
  if (!spec) {
    std::cerr << "campaign_run: " << origin << ": " << error << '\n';
    return 2;
  }
  if (trialsOverride != 0) spec->trials = trialsOverride;

  try {
    const campaign::CampaignRunner runner{options};
    const campaign::CampaignResult result = runner.run(*spec);

    if (options.dryRun) {
      std::cout << "campaign " << spec->name << " (" << origin << "): "
                << result.cells.size() << " treatments x " << spec->trials
                << " trials = " << result.trialsTotal << "\n\n";
      Table table({"#", "Config hash", "Treatment"});
      for (const campaign::TreatmentCell& cell : result.cells) {
        table.addRow({std::to_string(cell.treatment.index),
                      cell.treatment.configHash, cell.treatment.label});
      }
      table.print(std::cout);
      return 0;
    }

    Table table({"Treatment", "Trials", "Launched", "Detected", "FP",
                 "Packets", "Accuracy"});
    for (const campaign::TreatmentCell& cell : result.cells) {
      const std::string packets =
          cell.packetsMin == cell.packetsMax
              ? std::to_string(cell.packetsMin)
              : std::to_string(cell.packetsMin) + "-" +
                    std::to_string(cell.packetsMax);
      table.addRow({cell.treatment.label, std::to_string(cell.trials),
                    std::to_string(cell.attacksLaunched),
                    std::to_string(cell.detected),
                    std::to_string(cell.falsePositives), packets,
                    Table::percent(cell.detectionAccuracy())});
    }
    table.print(std::cout);
    std::cout << '\n';
    if (!result.manifestPath.empty()) {
      std::cout << "manifest: " << result.manifestPath << '\n';
    }
    if (!result.benchPath.empty()) {
      std::cout << "bench:    " << result.benchPath << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "campaign_run: " << e.what() << '\n';
    return 1;
  }
}
