// Detection-quality accounting for the Fig. 4 reproduction.
//
// Each trial contributes one labelled outcome: was an attacker present
// (ground truth) and was one confirmed (prediction). Rates follow the
// paper's reporting: detection accuracy, false-positive rate (honest nodes
// confirmed), false-negative rate (attackers missed).
#pragma once

#include <cstdint>

namespace blackdp::metrics {

class ConfusionMatrix {
 public:
  void addTruePositive() { ++tp_; }
  void addFalsePositive() { ++fp_; }
  void addTrueNegative() { ++tn_; }
  void addFalseNegative() { ++fn_; }

  /// Builds a matrix from pre-aggregated cell counts (e.g. a Fig4Cell).
  [[nodiscard]] static ConfusionMatrix fromCounts(std::uint64_t tp,
                                                  std::uint64_t fp,
                                                  std::uint64_t tn,
                                                  std::uint64_t fn) {
    ConfusionMatrix m;
    m.tp_ = tp;
    m.fp_ = fp;
    m.tn_ = tn;
    m.fn_ = fn;
    return m;
  }

  [[nodiscard]] std::uint64_t tp() const { return tp_; }
  [[nodiscard]] std::uint64_t fp() const { return fp_; }
  [[nodiscard]] std::uint64_t tn() const { return tn_; }
  [[nodiscard]] std::uint64_t fn() const { return fn_; }
  [[nodiscard]] std::uint64_t total() const { return tp_ + fp_ + tn_ + fn_; }

  /// (TP + TN) / total; 0 when empty.
  [[nodiscard]] double accuracy() const;
  /// TP / (TP + FN); 1 when no positives exist.
  [[nodiscard]] double recall() const;
  /// TP / (TP + FP); 1 when nothing was flagged.
  [[nodiscard]] double precision() const;
  /// FP / (FP + TN); 0 when no negatives exist.
  [[nodiscard]] double falsePositiveRate() const;
  /// FN / (FN + TP); 0 when no positives exist.
  [[nodiscard]] double falseNegativeRate() const;

  ConfusionMatrix& operator+=(const ConfusionMatrix& other);

 private:
  std::uint64_t tp_{0};
  std::uint64_t fp_{0};
  std::uint64_t tn_{0};
  std::uint64_t fn_{0};
};

}  // namespace blackdp::metrics
