// Fixed-width console tables for benchmark output.
//
// Every figure/table bench prints its rows through this, so the output for
// EXPERIMENTS.md is uniform and diff-friendly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace blackdp::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header count.
  void addRow(std::vector<std::string> cells);

  /// Renders with a header rule and right-padded columns.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }

  /// Formats a double with fixed precision.
  [[nodiscard]] static std::string num(double value, int precision = 2);
  /// Formats a ratio as a percentage string ("97.3%").
  [[nodiscard]] static std::string percent(double ratio, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace blackdp::metrics
