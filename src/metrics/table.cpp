#include "metrics/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace blackdp::metrics {

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {
  BDP_ASSERT(!headers_.empty());
}

void Table::addRow(std::vector<std::string> cells) {
  BDP_ASSERT_MSG(cells.size() == headers_.size(),
                 "row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  printRow(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) printRow(row);
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::percent(double ratio, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << ratio * 100.0 << '%';
  return os.str();
}

}  // namespace blackdp::metrics
