// Streaming summary statistics (Welford) for repeated-trial aggregation.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace blackdp::metrics {

class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  /// Half-width of the normal-approximation 95% confidence interval.
  [[nodiscard]] double ci95() const;

 private:
  std::uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace blackdp::metrics
