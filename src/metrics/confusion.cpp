#include "metrics/confusion.hpp"

namespace blackdp::metrics {

double ConfusionMatrix::accuracy() const {
  const std::uint64_t all = total();
  if (all == 0) return 0.0;
  return static_cast<double>(tp_ + tn_) / static_cast<double>(all);
}

double ConfusionMatrix::recall() const {
  const std::uint64_t positives = tp_ + fn_;
  if (positives == 0) return 1.0;
  return static_cast<double>(tp_) / static_cast<double>(positives);
}

double ConfusionMatrix::precision() const {
  const std::uint64_t flagged = tp_ + fp_;
  if (flagged == 0) return 1.0;
  return static_cast<double>(tp_) / static_cast<double>(flagged);
}

double ConfusionMatrix::falsePositiveRate() const {
  const std::uint64_t negatives = fp_ + tn_;
  if (negatives == 0) return 0.0;
  return static_cast<double>(fp_) / static_cast<double>(negatives);
}

double ConfusionMatrix::falseNegativeRate() const {
  const std::uint64_t positives = fn_ + tp_;
  if (positives == 0) return 0.0;
  return static_cast<double>(fn_) / static_cast<double>(positives);
}

ConfusionMatrix& ConfusionMatrix::operator+=(const ConfusionMatrix& other) {
  tp_ += other.tp_;
  fp_ += other.fp_;
  tn_ += other.tn_;
  fn_ += other.fn_;
  return *this;
}

}  // namespace blackdp::metrics
