#include "metrics/stats.hpp"

namespace blackdp::metrics {

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::ci95() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

}  // namespace blackdp::metrics
