#include "core/source_verifier.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace blackdp::core {

namespace {
constexpr std::string_view kLog = "verifier";

void traceVerifier(sim::Simulator& simulator, net::BasicNode& node,
                   obs::VerifierOp op, common::Address a = {},
                   common::Address b = {}, std::uint64_t value = 0,
                   std::string detail = {}) {
  if (auto* tr = obs::Trace::active()) {
    tr->record({simulator.now().us(), obs::EventKind::kVerifier,
                static_cast<std::uint8_t>(op), node.id().value(), 0, a.value(),
                b.value(), 0, value, std::move(detail)});
  }
}
}  // namespace

std::string_view toString(Outcome outcome) {
  switch (outcome) {
    case Outcome::kRouteVerified: return "route-verified";
    case Outcome::kAttackerConfirmed: return "attacker-confirmed";
    case Outcome::kSuspectNotConfirmed: return "suspect-not-confirmed";
    case Outcome::kNoRoute: return "no-route";
    case Outcome::kLocallyQuarantined: return "locally-quarantined";
  }
  return "?";
}

SourceVerifier::SourceVerifier(sim::Simulator& simulator, net::BasicNode& node,
                               aodv::AodvAgent& agent,
                               cluster::MembershipClient& membership,
                               const crypto::TaNetwork& taNetwork,
                               const crypto::CryptoEngine& engine,
                               VerifierConfig config)
    : simulator_{simulator},
      node_{node},
      agent_{agent},
      membership_{membership},
      taNetwork_{taNetwork},
      engine_{engine},
      config_{config} {
  agent_.setRrepObserver([this](const aodv::RouteReply& rrep,
                                const net::Frame& frame) {
    onRrep(rrep, frame);
  });
  agent_.setDeliveryHandler([this](const aodv::DataPacket& packet,
                                   const net::Frame& frame) {
    onDataDelivered(packet, frame);
  });
  // Routes through blacklisted (revoked) nodes are rejected outright.
  agent_.setRrepFilter([this](const aodv::RouteReply& rrep, const net::Frame&) {
    return !membership_.isBlacklisted(rrep.replier);
  });
  node_.addHandler([this](const net::Frame& frame) { return onFrame(frame); });
  // Delivery feedback for d_req reports. With hardening off (no retries, no
  // local quarantine) the handler is inert and a lost report plays out via
  // the response timeout, exactly as in the unhardened protocol. Note the
  // membership client's own failure handler registered before this one: by
  // the time a retry fires the client may already have re-homed to a
  // neighbor CH, and sendDreq() re-reads the CH address.
  node_.addFailureHandler([this](const net::Frame& frame) {
    if (config_.dreqRetries == 0 && !config_.localQuarantine) return;
    const auto* dreq = net::payloadAs<DetectionRequest>(frame.payload);
    if (dreq == nullptr) return;
    if (!session_ || !session_->reported || dreq->suspect != session_->suspect) {
      return;
    }
    onDreqSendFailed();
  });
}

void SourceVerifier::establishVerifiedRoute(common::Address destination,
                                            Callback callback) {
  BDP_ASSERT_MSG(!session_, "verification already in flight");
  BDP_ASSERT(callback != nullptr);
  session_.emplace();
  session_->destination = destination;
  session_->callback = std::move(callback);
  session_->restartsLeft = config_.maxRestarts;
  // Any pre-existing route is unverified state (possibly an attacker route
  // from an earlier establishment): verification always starts from a fresh
  // discovery whose replies it can authenticate.
  agent_.invalidateRoute(destination);
  startRound();
}

void SourceVerifier::startRound() {
  session_->cache.clear();
  session_->chosen.reset();
  traceVerifier(simulator_, node_, obs::VerifierOp::kRoundStarted,
                session_->destination, {},
                static_cast<std::uint64_t>(session_->round));
  agent_.findRoute(session_->destination,
                   [this](bool success) { onDiscoveryDone(success); });
}

void SourceVerifier::onRrep(const aodv::RouteReply& rrep,
                            const net::Frame& frame) {
  if (!session_ || rrep.destination != session_->destination) return;
  BDP_LOG(kDebug, kLog) << "cached rrep from " << rrep.replier
                        << " seq=" << rrep.destSeq << " via " << frame.src
                        << " at " << simulator_.now();
  session_->cache.push_back(CachedRrep{rrep, frame.src});
}

std::optional<SourceVerifier::CachedRrep> SourceVerifier::pickFreshest()
    const {
  const CachedRrep* best = nullptr;
  for (const CachedRrep& candidate : session_->cache) {
    if (membership_.isBlacklisted(candidate.rrep.replier)) continue;
    if (best == nullptr ||
        aodv::seqNewer(candidate.rrep.destSeq, best->rrep.destSeq) ||
        (candidate.rrep.destSeq == best->rrep.destSeq &&
         candidate.rrep.hopCount < best->rrep.hopCount)) {
      best = &candidate;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

void SourceVerifier::onDiscoveryDone(bool success) {
  if (!session_) return;
  ++session_->round;

  session_->chosen = pickFreshest();
  if (!success || !session_->chosen) {
    finish(Outcome::kNoRoute);
    return;
  }
  const CachedRrep& chosen = *session_->chosen;
  BDP_LOG(kDebug, kLog) << "chose rrep from " << chosen.rrep.replier
                        << " seq=" << chosen.rrep.destSeq;
  traceVerifier(simulator_, node_, obs::VerifierOp::kRrepChosen,
                session_->destination, chosen.rrep.replier,
                chosen.rrep.destSeq);

  if (chosen.rrep.replier == session_->destination) {
    // The destination itself replied: verify the secure RREP directly.
    const common::Bytes body = chosen.rrep.canonicalBytes();
    const EnvelopeCheck check =
        verifyEnvelope(body, chosen.rrep.envelope, session_->destination,
                       taNetwork_, engine_, simulator_.now());
    if (check.ok) {
      finish(Outcome::kRouteVerified);
      return;
    }
    // Impersonation / tamper: authentication violation. Give the network a
    // second chance, then report the replier.
    if (session_->round <= 2) {
      agent_.invalidateRoute(session_->destination);
      startRound();
    } else {
      reportSuspect(chosen);
    }
    return;
  }

  // Intermediate-node claim: authenticate the replier's identity first
  // (an attacker may hold a valid certificate and pass this check — its
  // *behaviour* is what the Hello probe verifies next).
  const common::Bytes body = chosen.rrep.canonicalBytes();
  const EnvelopeCheck idCheck =
      verifyEnvelope(body, chosen.rrep.envelope, chosen.rrep.replier,
                     taNetwork_, engine_, simulator_.now());
  if (!idCheck.ok) {
    // Authentication violation by the claiming intermediate node.
    if (session_->round <= 2) {
      agent_.invalidateRoute(session_->destination);
      startRound();
    } else {
      reportSuspect(chosen);
    }
    return;
  }
  sendHello();
}

void SourceVerifier::sendHello() {
  Session& s = *session_;
  ++s.helloProbes;

  auto hello = net::makeMutablePayload<AuthHello>();
  hello->helloId = nextHelloId_++;
  hello->origin = node_.localAddress();
  hello->destination = s.destination;
  if (agent_.credentials()) {
    hello->envelope =
        makeEnvelope(hello->canonicalBytes(), *agent_.credentials(), engine_);
  }
  s.awaitedHelloId = hello->helloId;
  traceVerifier(simulator_, node_, obs::VerifierOp::kHelloSent, s.destination,
                {}, hello->helloId);

  if (!agent_.sendData(s.destination, hello, 0)) {
    // Route evaporated under us; treat as a failed round.
    onHelloTimeout();
    return;
  }
  s.helloTimer = simulator_.schedule(config_.helloTimeout,
                                     [this, id = hello->helloId] {
                                       if (session_ &&
                                           session_->awaitedHelloId == id) {
                                         onHelloTimeout();
                                       }
                                     });
}

void SourceVerifier::onHelloTimeout() {
  Session& s = *session_;
  s.awaitedHelloId = 0;
  traceVerifier(simulator_, node_, obs::VerifierOp::kHelloTimeout,
                s.destination, {}, static_cast<std::uint64_t>(s.round));
  if (s.round <= 2) {
    // First silent Hello: redo the route discovery (§III-B1) and try again.
    agent_.invalidateRoute(s.destination);
    startRound();
    return;
  }
  // Second silent Hello: the replier is suspicious.
  BDP_ASSERT(s.chosen.has_value());
  reportSuspect(*s.chosen);
}

void SourceVerifier::onHelloReply(const AuthHello& hello) {
  if (!session_ || hello.helloId != session_->awaitedHelloId) return;
  Session& s = *session_;
  simulator_.cancel(s.helloTimer);
  s.awaitedHelloId = 0;

  const EnvelopeCheck check =
      verifyEnvelope(hello.canonicalBytes(), hello.envelope, s.destination,
                     taNetwork_, engine_, simulator_.now());
  if (check.ok && hello.responder == s.destination) {
    finish(Outcome::kRouteVerified);
    return;
  }
  // A reply arrived but not from the authenticated destination: the
  // "anonymity response" (a fake Hello claiming the attacker or its teammate
  // is the destination). Report immediately, without a second discovery.
  BDP_ASSERT(s.chosen.has_value());
  reportSuspect(*s.chosen);
}

void SourceVerifier::reportSuspect(const CachedRrep& suspectRrep) {
  Session& s = *session_;
  s.suspect = suspectRrep.rrep.replier;
  s.suspectCluster = suspectRrep.rrep.replierCluster;
  s.reported = true;
  s.dreqRetriesLeft = config_.dreqRetries;
  s.suspectedAt = simulator_.now();
  traceVerifier(simulator_, node_, obs::VerifierOp::kSuspected, s.suspect);

  if (!sendDreq()) return;  // no CH known; session already finished

  s.responseTimer = simulator_.schedule(config_.responseTimeout, [this] {
    if (session_ && session_->reported) {
      finish(Outcome::kSuspectNotConfirmed);
    }
  });
}

bool SourceVerifier::sendDreq() {
  Session& s = *session_;
  // Re-read per attempt: a membership failover between attempts redirects
  // the report to the neighbor CH.
  const auto chAddress = membership_.clusterHeadAddress();
  const auto myCluster = membership_.currentCluster();
  if (!chAddress || !myCluster) {
    // Not registered with any cluster head; the report cannot be delivered.
    degradeToLocal();
    return false;
  }

  ++s.dreqAttempts;
  auto dreq = net::makeMutablePayload<DetectionRequest>();
  dreq->reporter = node_.localAddress();
  dreq->reporterCluster = *myCluster;
  dreq->suspect = s.suspect;
  dreq->suspectCluster = s.suspectCluster;
  dreq->nonce = nextNonce_++;
  if (agent_.credentials()) {
    dreq->envelope =
        makeEnvelope(dreq->canonicalBytes(), *agent_.credentials(), engine_);
  }
  if (!s.dreqFirstSentAt) s.dreqFirstSentAt = simulator_.now();
  traceVerifier(simulator_, node_, obs::VerifierOp::kDreqSent, s.suspect,
                *chAddress, static_cast<std::uint64_t>(s.dreqAttempts));
  node_.sendTo(*chAddress, dreq);
  return true;
}

void SourceVerifier::onDreqSendFailed() {
  Session& s = *session_;
  traceVerifier(simulator_, node_, obs::VerifierOp::kDreqSendFailed,
                s.suspect);
  if (s.dreqRetriesLeft > 0) {
    --s.dreqRetriesLeft;
    // Exponential backoff, capped: base, 2·base, 4·base, …, cap.
    const int attempt = config_.dreqRetries - s.dreqRetriesLeft;
    sim::Duration delay = config_.dreqRetryBase;
    for (int i = 1; i < attempt && delay < config_.dreqRetryCap; ++i) {
      delay = delay * 2;
    }
    if (delay > config_.dreqRetryCap) delay = config_.dreqRetryCap;
    s.dreqRetryTimer = simulator_.schedule(delay, [this] {
      if (session_ && session_->reported) sendDreq();
    });
    return;
  }
  degradeToLocal();
}

void SourceVerifier::degradeToLocal() {
  Session& s = *session_;
  if (config_.localQuarantine && s.suspect != common::kNullAddress) {
    membership_.blacklistLocally(s.suspect);
    traceVerifier(simulator_, node_, obs::VerifierOp::kLocalQuarantine,
                  s.suspect);
    finish(Outcome::kLocallyQuarantined);
    return;
  }
  finish(Outcome::kSuspectNotConfirmed);
}

bool SourceVerifier::onFrame(const net::Frame& frame) {
  const auto* response = net::payloadAs<DetectionResponse>(frame.payload);
  if (response == nullptr) return false;
  if (!session_ || !session_->reported) return true;
  if (response->reporter != node_.localAddress() ||
      response->suspect != session_->suspect) {
    return true;
  }
  simulator_.cancel(session_->responseTimer);
  session_->chVerdict = response->verdict;
  traceVerifier(simulator_, node_, obs::VerifierOp::kVerdictReceived,
                session_->suspect, {},
                static_cast<std::uint64_t>(response->verdict),
                std::string{toString(response->verdict)});
  switch (response->verdict) {
    case Verdict::kSingleBlackHole:
    case Verdict::kCooperativeBlackHole:
      finish(Outcome::kAttackerConfirmed);
      break;
    case Verdict::kNotConfirmed:
    case Verdict::kUnreachable:
      // The reported node survived examination, but this source still has
      // no verified route. Start over with a fresh discovery (the poisoned
      // or stale state that implicated an honest replier does not survive
      // the route invalidation).
      if (session_->restartsLeft > 0) {
        --session_->restartsLeft;
        session_->round = 1;
        session_->reported = false;
        session_->suspect = common::kNullAddress;
        session_->helloProbes = 0;
        session_->suspectedAt.reset();
        session_->dreqFirstSentAt.reset();
        simulator_.cancel(session_->dreqRetryTimer);
        agent_.invalidateRoute(session_->destination);
        startRound();
      } else {
        finish(Outcome::kSuspectNotConfirmed);
      }
      break;
  }
  return true;
}

void SourceVerifier::onDataDelivered(const aodv::DataPacket& packet,
                                     const net::Frame&) {
  const auto* hello =
      packet.inner ? dynamic_cast<const AuthHello*>(packet.inner.get())
                   : nullptr;
  if (hello == nullptr) return;
  if (hello->isReply) {
    onHelloReply(*hello);
  } else if (packet.destination == node_.localAddress()) {
    answerHello(*hello);
  }
}

void SourceVerifier::answerHello(const AuthHello& hello) {
  auto reply = net::makeMutablePayload<AuthHello>();
  reply->helloId = hello.helloId;
  reply->origin = hello.origin;
  reply->destination = hello.destination;
  reply->isReply = true;
  reply->responder = node_.localAddress();
  if (agent_.credentials()) {
    reply->envelope =
        makeEnvelope(reply->canonicalBytes(), *agent_.credentials(), engine_);
  }
  // The RREQ flood that discovered us also installed a reverse route toward
  // the origin; fall back to a discovery if it has expired.
  if (agent_.sendData(hello.origin, reply, 0)) return;
  agent_.findRoute(hello.origin, [this, reply](bool ok) {
    if (ok) agent_.sendData(reply->origin, reply, 0);
  });
}

void SourceVerifier::finish(Outcome outcome) {
  Session& s = *session_;
  simulator_.cancel(s.helloTimer);
  simulator_.cancel(s.responseTimer);
  simulator_.cancel(s.dreqRetryTimer);

  // Unless the route was positively verified, drop it: the source must not
  // keep routing data into a suspicious or unverified path.
  if (outcome != Outcome::kRouteVerified) {
    agent_.invalidateRoute(s.destination);
  }

  VerificationReport report;
  report.outcome = outcome;
  report.destination = s.destination;
  report.suspect = s.suspect;
  report.chVerdict = s.chVerdict;
  report.discoveryRounds = s.round - 1;
  report.helloProbes = s.helloProbes;
  report.reported = s.reported;
  report.dreqAttempts = s.dreqAttempts;
  report.suspectedAt = s.suspectedAt;
  report.dreqFirstSentAt = s.dreqFirstSentAt;
  report.finishedAt = simulator_.now();

  traceVerifier(simulator_, node_, obs::VerifierOp::kFinished, s.suspect, {},
                static_cast<std::uint64_t>(outcome),
                std::string{toString(outcome)});

  Callback callback = std::move(s.callback);
  session_.reset();
  callback(report);
}

}  // namespace blackdp::core
