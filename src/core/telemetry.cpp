#include "core/telemetry.hpp"

#include <string>

namespace blackdp::core {
namespace {

double toMs(sim::Duration d) { return static_cast<double>(d.us()) / 1000.0; }

obs::Histogram& latencyHistogram(obs::MetricsRegistry& registry,
                                 std::string_view stage) {
  std::string name{"detect.latency."};
  name += stage;
  name += "_ms";
  return registry.histogram(name, obs::latencyBucketsMs());
}

}  // namespace

void recordSessionTelemetry(obs::MetricsRegistry& registry,
                            const SessionRecord& record) {
  registry.counter("detect.sessions_completed").add();
  registry
      .counter(std::string{"detect.verdict."} +
               std::string{toString(record.verdict)})
      .add();
  registry.histogram("detect.session_packets", {2, 4, 6, 8, 10, 12, 16, 24})
      .observe(static_cast<double>(record.packetsUsed));

  if (record.probeStartedAt) {
    latencyHistogram(registry, "dreq_to_probe")
        .observe(toMs(*record.probeStartedAt - record.startedAt));
    latencyHistogram(registry, "probe_to_verdict")
        .observe(toMs(record.endedAt - *record.probeStartedAt));
  }
  if (record.isolatedAt) {
    latencyHistogram(registry, "verdict_to_isolation")
        .observe(toMs(*record.isolatedAt - record.endedAt));
  }
  latencyHistogram(registry, "total")
      .observe(toMs(record.endedAt - record.startedAt));
}

void recordVerifierTelemetry(obs::MetricsRegistry& registry,
                             const VerificationReport& report) {
  registry.counter("verify.reports").add();
  registry
      .counter(std::string{"verify.outcome."} +
               std::string{toString(report.outcome)})
      .add();
  registry.counter("verify.discovery_rounds")
      .add(static_cast<std::uint64_t>(
          report.discoveryRounds > 0 ? report.discoveryRounds : 0));
  registry.counter("verify.hello_probes")
      .add(static_cast<std::uint64_t>(
          report.helloProbes > 0 ? report.helloProbes : 0));
  if (report.reported) registry.counter("verify.dreq_reported").add();

  if (report.suspectedAt && report.dreqFirstSentAt) {
    latencyHistogram(registry, "suspicion_to_dreq")
        .observe(toMs(*report.dreqFirstSentAt - *report.suspectedAt));
  }
}

void recordDetectorStats(obs::MetricsRegistry& registry,
                         const DetectorStats& stats) {
  registry.counter("detect.dreq_received").add(stats.dreqReceived);
  registry.counter("detect.dreq_rejected_auth").add(stats.dreqRejectedAuth);
  registry.counter("detect.dreq_deduplicated").add(stats.dreqDeduplicated);
  registry.counter("detect.sessions_adopted").add(stats.sessionsAdopted);
  registry.counter("detect.sessions_forwarded").add(stats.sessionsForwarded);
  registry.counter("detect.probes_sent").add(stats.probesSent);
  registry.counter("detect.confirmations").add(stats.confirmations);
  registry.counter("detect.isolations").add(stats.isolations);
  registry.counter("detect.forwards_failed").add(stats.forwardsFailed);
  registry.counter("detect.result_relays_failed").add(stats.resultRelaysFailed);
}

}  // namespace blackdp::core
