#include "core/secure.hpp"

namespace blackdp::core {

aodv::SecureEnvelope makeEnvelope(const common::Bytes& body,
                                  const aodv::Credentials& credentials,
                                  const crypto::CryptoEngine& engine) {
  return aodv::SecureEnvelope{
      credentials.certificate,
      engine.sign(credentials.privateKey,
                  std::span<const std::uint8_t>{body.data(), body.size()})};
}

EnvelopeCheck verifyEnvelope(
    const common::Bytes& body,
    const std::optional<aodv::SecureEnvelope>& envelope,
    common::Address expectedPseudonym, const crypto::TaNetwork& taNetwork,
    const crypto::CryptoEngine& engine, sim::TimePoint now,
    const crypto::RevocationStore* revocations) {
  if (!envelope) return {false, "no-envelope"};
  const crypto::Certificate& cert = envelope->certificate;
  if (!taNetwork.validateCertificate(cert, now)) {
    return {false, "bad-certificate"};
  }
  if (cert.pseudonym != expectedPseudonym) {
    return {false, "pseudonym-mismatch"};
  }
  if (revocations != nullptr && revocations->isRevokedSerial(cert.serial)) {
    return {false, "revoked"};
  }
  if (!engine.verify(cert.subjectKey,
                     std::span<const std::uint8_t>{body.data(), body.size()},
                     envelope->signature)) {
    return {false, "bad-signature"};
  }
  return {true, {}};
}

}  // namespace blackdp::core
