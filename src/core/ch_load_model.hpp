// Cluster-head processing load (paper §III-C).
//
// "BlackDP requires RSUs to authenticate nodes that report suspicious
// activities… The authentication processing time may create a bottleneck
// when the density of the cluster is very high… However, RSUs can leverage
// fog computing to overcome such issues by expanding the computation
// resources and forward heavy computation to nearby fog nodes."
//
// This models exactly that: an M/D/c-style work queue at the CH with a
// deterministic per-verification service time (an ECDSA verification on
// RSU-class hardware) and `1 + fogNodes` parallel servers. The
// bench/ablation_fog sweep shows where the single-RSU deployment saturates
// and how fog offloading moves the knee.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/simulator.hpp"

namespace blackdp::core {

struct ChLoadConfig {
  /// Time one verification occupies a server (ECDSA-class check).
  sim::Duration verificationService{sim::Duration::milliseconds(2)};
  /// Fog nodes assisting the RSU (0 = the RSU works alone).
  std::uint32_t fogNodes{0};
};

struct ChLoadStats {
  std::uint64_t jobsSubmitted{0};
  std::uint64_t jobsCompleted{0};
  std::uint64_t maxQueueDepth{0};
  /// Sum of queueing delays (excluding service) over completed jobs.
  sim::Duration totalWait{};
  /// Sum of busy server time.
  sim::Duration totalBusy{};

  [[nodiscard]] double meanWaitMs() const {
    return jobsCompleted == 0
               ? 0.0
               : totalWait.toSeconds() * 1000.0 /
                     static_cast<double>(jobsCompleted);
  }
};

/// Deterministic-service multi-server work queue.
class ChLoadModel {
 public:
  using Completion = std::function<void()>;

  ChLoadModel(sim::Simulator& simulator, ChLoadConfig config = {})
      : simulator_{simulator},
        config_{config},
        idleServers_{1 + config.fogNodes} {}

  ChLoadModel(const ChLoadModel&) = delete;
  ChLoadModel& operator=(const ChLoadModel&) = delete;

  /// Enqueues one verification; `done` runs when a server finishes it.
  void submit(Completion done);

  [[nodiscard]] std::size_t queueDepth() const { return queue_.size(); }
  [[nodiscard]] std::uint32_t idleServers() const { return idleServers_; }
  [[nodiscard]] std::uint32_t serverCount() const {
    return 1 + config_.fogNodes;
  }
  [[nodiscard]] const ChLoadStats& stats() const { return stats_; }

  /// Offered-load estimate for an arrival rate (jobs/s): ρ = λ·s / c.
  [[nodiscard]] double utilisationFor(double arrivalsPerSecond) const {
    return arrivalsPerSecond * config_.verificationService.toSeconds() /
           static_cast<double>(serverCount());
  }

 private:
  struct Job {
    Completion done;
    sim::TimePoint submittedAt;
  };

  void startNext();

  sim::Simulator& simulator_;
  ChLoadConfig config_;
  std::uint32_t idleServers_;
  std::deque<Job> queue_;
  ChLoadStats stats_;
};

}  // namespace blackdp::core
