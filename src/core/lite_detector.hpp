// Lightweight per-RSU black-hole probe detector with migratable sessions.
//
// The megacity corridor runs one LiteDetector per RSU segment. It implements
// the paper's probe idea in its leanest form: a data-plane REPORT (missing
// end-to-end ack) opens a session; each epoch the RSU sends the suspect ONE
// probe for a nonexistent destination; a reply claiming that route is a
// violation (black holes answer everything), silence is exculpatory. K
// violations confirm, a full quiet campaign exonerates.
//
// What makes this detector "lite" is what it does NOT own: no timers, no
// radio, no clock. The world drives it at epoch boundaries (beginEpoch) and
// feeds it probe outcomes; all side effects go through Hooks. That inversion
// is what lets a session MIGRATE: when the suspect has left the segment, the
// session state — a few integers, serialisable with ByteWriter — is handed
// to the world, shipped in a cross-shard envelope toward the suspect's
// travel direction, and adopted by the neighbour RSU, where probing resumes
// with violations and the original report timestamp intact. Detection
// latency therefore stays measured from the FIRST report, wherever the
// verdict eventually lands.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "common/address_registry.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace blackdp::core {

enum class LiteVerdict : std::uint8_t {
  kConfirmed,    ///< >= probesToConfirm probe violations
  kExonerated,   ///< maxProbes silent rounds, too few violations
  kUnreachable,  ///< suspect outran the handoff budget
};

[[nodiscard]] std::string_view toString(LiteVerdict verdict);

/// The complete migratable state of one detection session.
struct LiteSessionState {
  common::Address suspect{};
  common::Address firstReporter{};
  std::int64_t firstReportAtUs{0};  ///< global clock; latency baseline
  std::uint32_t violations{0};      ///< probe replies observed so far
  std::uint32_t probesSent{0};      ///< probe rounds across ALL hosting RSUs
  std::uint32_t forwards{0};        ///< handoffs consumed so far
  std::uint8_t travelDirection{0};  ///< 0 = eastbound, 1 = westbound

  void serialize(common::ByteWriter& w) const;
  [[nodiscard]] static LiteSessionState deserialize(common::ByteReader& r);

  friend bool operator==(const LiteSessionState&,
                         const LiteSessionState&) = default;
};

class LiteDetector {
 public:
  struct Config {
    std::uint32_t probesToConfirm{2};  ///< K violations -> kConfirmed
    std::uint32_t maxProbes{4};        ///< quiet rounds -> kExonerated
    std::uint32_t maxForwards{6};      ///< handoffs -> kUnreachable
  };

  /// All side effects. `sendProbe` transmits one fake-destination probe to
  /// the suspect; `onVerdict` fires exactly once per session, after which
  /// the session is gone; `onHandoff` receives the extracted state of an
  /// absent suspect's session (the world ships it; the session is already
  /// removed here).
  struct Hooks {
    std::function<void(const LiteSessionState&)> sendProbe;
    std::function<void(const LiteSessionState&, LiteVerdict)> onVerdict;
    std::function<void(const LiteSessionState&)> onHandoff;
  };

  /// Deterministic counters; the world folds them into its MetricsRegistry.
  struct Stats {
    std::uint64_t sessionsOpened{0};
    std::uint64_t duplicateReports{0};
    std::uint64_t probeRounds{0};
    std::uint64_t violations{0};
    std::uint64_t probesUnreachable{0};
    std::uint64_t confirmed{0};
    std::uint64_t exonerated{0};
    std::uint64_t unreachable{0};
    std::uint64_t handoffsOut{0};
    std::uint64_t adopted{0};
  };

  LiteDetector(Config config, Hooks hooks);

  /// Data-plane accusation. Opens a session (true) or merges into the
  /// existing one for this suspect (false). No probe is sent here — probing
  /// is paced to one round per epoch by beginEpoch.
  bool report(common::Address suspect, common::Address reporter,
              std::int64_t nowUs, std::uint8_t travelDirection);

  /// The suspect answered a probe for a destination that does not exist:
  /// a violation. May conclude the session (kConfirmed).
  void onProbeReply(common::Address suspect);

  /// The probe never reached the suspect (left mid-epoch). The round is
  /// not evidence either way; it is refunded.
  void onProbeUnreachable(common::Address suspect);

  /// Epoch-boundary driver. For every session, in insertion order:
  /// exonerate if the probe budget is spent; hand off (or give up) if
  /// `present(suspect)` is false; otherwise send this epoch's probe round.
  void beginEpoch(const std::function<bool(common::Address)>& present);

  /// Installs a migrated session. If this detector already tracks the
  /// suspect (local reports re-opened a session before the handoff envelope
  /// caught up — it trails the migration by one epoch), the sessions merge:
  /// the earliest report keeps the detection clock, violations accumulate,
  /// probesSent/forwards take the max, and a merge that reaches the
  /// confirmation threshold concludes immediately.
  void adopt(const LiteSessionState& state);

  /// Removes and returns the session for `suspect` (asserted to exist)
  /// without any verdict — the test seam for migration plumbing.
  [[nodiscard]] LiteSessionState extract(common::Address suspect);

  /// Serializes every live session (insertion order — the same order
  /// beginEpoch walks, so a restored detector probes in the original
  /// sequence) followed by the stats block.
  void saveState(common::ByteWriter& w) const;

  /// Inverse of saveState; requires an empty, freshly constructed detector.
  /// Throws std::out_of_range on truncated input.
  void restoreState(common::ByteReader& r);

  /// Read-only walk over live sessions in insertion order (soak
  /// invariants inspect probe/forward budgets through this).
  void forEachSession(
      const std::function<void(const LiteSessionState&)>& fn) const {
    sessions_.forEach(
        [&](common::Address, const LiteSessionState& s) { fn(s); });
  }

  [[nodiscard]] std::size_t activeSessions() const { return sessions_.size(); }
  [[nodiscard]] const LiteSessionState* find(common::Address suspect) const {
    return sessions_.find(suspect);
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void conclude(const LiteSessionState& state, LiteVerdict verdict);

  Config config_;
  Hooks hooks_;
  common::DenseAddressMap<LiteSessionState> sessions_;
  Stats stats_;
};

}  // namespace blackdp::core
