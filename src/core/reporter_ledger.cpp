#include "core/reporter_ledger.hpp"

namespace blackdp::core {

bool ReporterLedger::admitAccusation(common::Address reporter,
                                     sim::TimePoint now) {
  Entry& e = entry(reporter);
  if (e.quarantined) return false;
  while (!e.recent.empty() && now - e.recent.front() > config_.window) {
    e.recent.pop_front();
  }
  if (e.recent.size() >= config_.windowMax) return false;
  e.recent.push_back(now);
  return true;
}

bool ReporterLedger::admitNonce(common::Address reporter, std::uint64_t nonce) {
  if (nonce == 0) return true;
  Entry& e = entry(reporter);
  if (!e.nonces.insert(nonce).second) return false;
  e.nonceOrder.push_back(nonce);
  if (e.nonceOrder.size() > config_.nonceCacheMax) {
    e.nonces.erase(e.nonceOrder.front());
    e.nonceOrder.pop_front();
  }
  return true;
}

bool ReporterLedger::demerit(common::Address reporter) {
  Entry& e = entry(reporter);
  ++e.demerits;
  if (!e.quarantined && e.demerits >= config_.demeritThreshold) {
    e.quarantined = true;
    return true;
  }
  return false;
}

void ReporterLedger::credit(common::Address reporter) {
  Entry& e = entry(reporter);
  if (e.demerits > 0) --e.demerits;
}

int ReporterLedger::demeritScore(common::Address reporter) const {
  const auto it = entries_.find(reporter);
  return it == entries_.end() ? 0 : it->second.demerits;
}

bool ReporterLedger::isQuarantined(common::Address reporter) const {
  const auto it = entries_.find(reporter);
  return it != entries_.end() && it->second.quarantined;
}

}  // namespace blackdp::core
