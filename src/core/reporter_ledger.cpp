#include "core/reporter_ledger.hpp"

#include <algorithm>
#include <vector>

namespace blackdp::core {

bool ReporterLedger::admitAccusation(common::Address reporter,
                                     sim::TimePoint now) {
  Entry& e = entry(reporter);
  e.lastTouched = std::max(e.lastTouched, now);
  if (e.quarantined) return false;
  while (!e.recent.empty() && now - e.recent.front() > config_.window) {
    e.recent.pop_front();
  }
  if (e.recent.size() >= config_.windowMax) return false;
  e.recent.push_back(now);
  return true;
}

bool ReporterLedger::admitNonce(common::Address reporter, std::uint64_t nonce,
                                sim::TimePoint now) {
  if (nonce == 0) return true;
  Entry& e = entry(reporter);
  e.lastTouched = std::max(e.lastTouched, now);
  if (!e.nonces.insert(nonce).second) return false;
  e.nonceOrder.push_back(nonce);
  if (e.nonceOrder.size() > config_.nonceCacheMax) {
    e.nonces.erase(e.nonceOrder.front());
    e.nonceOrder.pop_front();
  }
  return true;
}

bool ReporterLedger::demerit(common::Address reporter) {
  Entry& e = entry(reporter);
  ++e.demerits;
  if (!e.quarantined && e.demerits >= config_.demeritThreshold) {
    e.quarantined = true;
    return true;
  }
  return false;
}

void ReporterLedger::credit(common::Address reporter) {
  Entry& e = entry(reporter);
  if (e.demerits > 0) --e.demerits;
}

std::size_t ReporterLedger::evictIdle(sim::TimePoint now) {
  if (config_.entryTtl == sim::Duration{}) return 0;
  std::size_t evicted = 0;
  entries_.eraseIf([&](common::Address, const Entry& e) {
    if (e.quarantined || now - e.lastTouched <= config_.entryTtl) return false;
    ++evicted;
    return true;
  });
  return evicted;
}

int ReporterLedger::demeritScore(common::Address reporter) const {
  const Entry* e = entries_.find(reporter);
  return e == nullptr ? 0 : e->demerits;
}

bool ReporterLedger::isQuarantined(common::Address reporter) const {
  const Entry* e = entries_.find(reporter);
  return e != nullptr && e->quarantined;
}

std::size_t ReporterLedger::noncesCached() const {
  std::size_t total = 0;
  entries_.forEach(
      [&](common::Address, const Entry& e) { total += e.nonces.size(); });
  return total;
}

void ReporterLedger::saveState(common::ByteWriter& w) const {
  std::vector<common::Address> order;
  order.reserve(entries_.size());
  entries_.forEach(
      [&](common::Address reporter, const Entry&) { order.push_back(reporter); });
  std::sort(order.begin(), order.end());

  w.writeU32(static_cast<std::uint32_t>(order.size()));
  for (const common::Address reporter : order) {
    const Entry& e = *entries_.find(reporter);
    w.writeU64(reporter.value());
    w.writeU32(static_cast<std::uint32_t>(e.recent.size()));
    for (const sim::TimePoint t : e.recent) w.writeI64(t.us());
    // nonceOrder alone carries the cache; the set is rebuilt on restore.
    w.writeU32(static_cast<std::uint32_t>(e.nonceOrder.size()));
    for (const std::uint64_t n : e.nonceOrder) w.writeU64(n);
    w.writeI64(e.demerits);
    w.writeBool(e.quarantined);
    w.writeI64(e.lastTouched.us());
  }
}

void ReporterLedger::restoreState(common::ByteReader& r) {
  entries_.clear();
  const std::uint32_t count = r.readU32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const common::Address reporter{r.readU64()};
    Entry e;
    const std::uint32_t recentCount = r.readU32();
    for (std::uint32_t k = 0; k < recentCount; ++k) {
      e.recent.push_back(sim::TimePoint::fromUs(r.readI64()));
    }
    const std::uint32_t nonceCount = r.readU32();
    for (std::uint32_t k = 0; k < nonceCount; ++k) {
      const std::uint64_t n = r.readU64();
      e.nonceOrder.push_back(n);
      e.nonces.insert(n);
    }
    e.demerits = static_cast<int>(r.readI64());
    e.quarantined = r.readBool();
    e.lastTouched = sim::TimePoint::fromUs(r.readI64());
    entries_[reporter] = std::move(e);
  }
}

}  // namespace blackdp::core
