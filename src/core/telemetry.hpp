// Detection telemetry: folds BlackDP protocol results into the metrics
// registry through one shared vocabulary, so every bench and scenario
// reports the same counter / histogram names (BENCH_*.json, §DESIGN 6).
//
//   detect.latency.suspicion_to_dreq_ms   verifier: formal suspicion → d_req
//   detect.latency.dreq_to_probe_ms       CH: d_req accepted → first probe
//   detect.latency.probe_to_verdict_ms    CH: first probe → verdict
//   detect.latency.verdict_to_isolation_ms
//   detect.latency.total_ms               d_req accepted → session end
//
// plus detect.verdict.<name>, verify.outcome.<name> counters and the
// DetectorStats mirror (detect.dreq_received, detect.probes_sent, ...).
#pragma once

#include "core/rsu_detector.hpp"
#include "core/source_verifier.hpp"
#include "obs/registry.hpp"

namespace blackdp::core {

/// Folds one completed CH detection session into the per-stage latency
/// histograms and the detect.verdict.* counters.
void recordSessionTelemetry(obs::MetricsRegistry& registry,
                            const SessionRecord& record);

/// Folds one reporter-side verification report into verify.outcome.*
/// counters and the suspicion→d_req stage histogram.
void recordVerifierTelemetry(obs::MetricsRegistry& registry,
                             const VerificationReport& report);

/// Mirrors cumulative DetectorStats into detect.* counters (set-once per
/// run: call after the simulation, not per event).
void recordDetectorStats(obs::MetricsRegistry& registry,
                         const DetectorStats& stats);

}  // namespace blackdp::core
