#include "core/messages.hpp"

namespace blackdp::core {

std::string_view toString(Verdict verdict) {
  switch (verdict) {
    case Verdict::kNotConfirmed: return "not-confirmed";
    case Verdict::kSingleBlackHole: return "single-black-hole";
    case Verdict::kCooperativeBlackHole: return "cooperative-black-hole";
    case Verdict::kUnreachable: return "unreachable";
  }
  return "?";
}

common::Bytes AuthHello::canonicalBytes() const {
  common::ByteWriter w;
  w.writeString("hello-v1");
  w.writeU64(helloId);
  w.writeId(origin);
  w.writeId(destination);
  w.writeBool(isReply);
  w.writeId(responder);
  return std::move(w).take();
}

common::Bytes DetectionRequest::canonicalBytes() const {
  common::ByteWriter w;
  w.writeString("dreq-v1");
  w.writeId(reporter);
  w.writeId(reporterCluster);
  w.writeId(suspect);
  w.writeId(suspectCluster);
  w.writeU64(nonce);
  return std::move(w).take();
}

}  // namespace blackdp::core
