#include "core/rsu_detector.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace blackdp::core {

namespace {
constexpr std::string_view kLog = "detector";

void traceDetector(sim::Simulator& simulator, cluster::ClusterHead& ch,
                   obs::DetectorOp op, common::DetectionSessionId session,
                   common::Address suspect, common::Address other = {},
                   std::uint64_t value = 0, std::string detail = {}) {
  if (auto* tr = obs::Trace::active()) {
    tr->record({simulator.now().us(), obs::EventKind::kDetector,
                static_cast<std::uint8_t>(op), ch.node().id().value(),
                ch.clusterId().value(), suspect.value(), other.value(),
                session.value(), value, std::move(detail)});
  }
}

void traceTable(sim::Simulator& simulator, cluster::ClusterHead& ch,
                obs::ChTableOp op, common::DetectionSessionId session,
                common::Address suspect) {
  if (auto* tr = obs::Trace::active()) {
    tr->record({simulator.now().us(), obs::EventKind::kChTable,
                static_cast<std::uint8_t>(op), ch.node().id().value(),
                ch.clusterId().value(), suspect.value(), 0, session.value()});
  }
}

/// Disposable identities and fake destinations live in a reserved address
/// range far above the TA's pseudonym counter, so they can never collide
/// with a real node.
constexpr std::uint64_t kProbeAddressBase = 0xD15D15ull << 32;
}  // namespace

RsuDetector::RsuDetector(sim::Simulator& simulator,
                         cluster::ClusterHead& clusterHead,
                         crypto::TaNetwork& taNetwork,
                         const crypto::CryptoEngine& engine,
                         DetectorConfig config)
    : simulator_{simulator},
      ch_{clusterHead},
      taNetwork_{taNetwork},
      engine_{engine},
      config_{config},
      ledger_{config.hardening.ledger},
      probeRng_{config.probeSeed} {
  ch_.setFrameHook([this](const net::Frame& frame) { return onFrame(frame); });
  ch_.setBackboneHook(
      [this](common::ClusterId from, const net::PayloadPtr& payload) {
        onBackbone(from, payload);
      });
  ch_.setBackboneFailureHook(
      [this](common::ClusterId to, const net::PayloadPtr& payload) {
        onBackboneSendFailed(to, payload);
      });
}

common::Address RsuDetector::allocProbeAddress() {
  return common::Address{kProbeAddressBase |
                         (static_cast<std::uint64_t>(ch_.clusterId().value())
                          << 24) |
                         nextProbeAddress_++};
}

// ------------------------------------------------------------------ intake

bool RsuDetector::onFrame(const net::Frame& frame) {
  if (const auto* dreq = net::payloadAs<DetectionRequest>(frame.payload)) {
    handleDreq(*dreq);
    return true;
  }
  if (const auto* rrep = net::payloadAs<aodv::RouteReply>(frame.payload)) {
    handleProbeReply(*rrep, frame);
    return true;
  }
  return false;
}

void RsuDetector::onBackbone(common::ClusterId from,
                             const net::PayloadPtr& payload) {
  (void)from;
  if (const auto* fwd = net::payloadAs<ForwardedDetection>(payload)) {
    adoptForwarded(*fwd);
    return;
  }
  if (const auto* result = net::payloadAs<DetectionResult>(payload)) {
    relayResult(*result);
    return;
  }
}

void RsuDetector::onBackboneSendFailed(common::ClusterId to,
                                       const net::PayloadPtr& payload) {
  (void)to;
  if (const auto* fwd = net::payloadAs<ForwardedDetection>(payload)) {
    // The target CH is dead or unreachable: re-adopt the session and probe
    // from here over the air (one cluster is within radio range of this
    // RSU). forwardCount is pinned at the cap so a failed probe terminates
    // as kUnreachable instead of bouncing the session around a dead region.
    ++stats_.forwardsFailed;
    Session session;
    session.id = fwd->session;
    session.suspect = fwd->suspect;
    session.reporters.push_back({fwd->reporter, fwd->reporterCluster});
    session.stage = fwd->stage;
    session.rrep1Seq = fwd->lastSeenSeq;
    session.packets = fwd->packetsSoFar;
    session.forwardCount = config_.maxForwards;
    session.degraded = true;
    session.retriesLeft =
        fwd->stage == 0 ? config_.probeRetries : config_.stageRetries;
    session.startedAt = fwd->startedAt;
    traceDetector(simulator_, ch_, obs::DetectorOp::kAdoptedDegraded,
                  session.id, session.suspect, fwd->reporter,
                  static_cast<std::uint64_t>(session.stage));
    beginProbing(std::move(session));
    return;
  }
  if (const auto* result = net::payloadAs<DetectionResult>(payload)) {
    // The reporter's CH is dead: best-effort verdict delivery over the air
    // (the reporter may still be within this RSU's radio range).
    ++stats_.resultRelaysFailed;
    relayResult(*result);
    return;
  }
}

void RsuDetector::handleDreq(const DetectionRequest& dreq) {
  ++stats_.dreqReceived;

  // RSUs only act on reports from authenticated, non-revoked members
  // (otherwise attackers could use fake reports to disconnect legitimate
  // nodes — the weakness of voting schemes the paper avoids).
  const EnvelopeCheck check = verifyEnvelope(
      dreq.canonicalBytes(), dreq.envelope, dreq.reporter, taNetwork_, engine_,
      simulator_.now(), &ch_.revocations());
  if (!check.ok) {
    ++stats_.dreqRejectedAuth;
    traceDetector(simulator_, ch_, obs::DetectorOp::kDreqRejected, {},
                  dreq.suspect, dreq.reporter, 0, std::string{check.reason});
    BDP_LOG(kDebug, kLog) << "d_req rejected: " << check.reason;
    return;
  }

  // Accusation-channel defense (hardened only): the d_req passed signature
  // verification, but a compromised-yet-certified reporter can still flood
  // forged accusations or replay captured ones. Quarantined-liar and
  // rate-limit rejections share one counter; replays get their own.
  if (config_.hardening.enabled) {
    if (ledger_.isQuarantined(dreq.reporter)) {
      ++stats_.dreqRateLimited;
      traceDetector(simulator_, ch_, obs::DetectorOp::kDreqRateLimited, {},
                    dreq.suspect, dreq.reporter, 0, "reporter-quarantined");
      return;
    }
    if (!ledger_.admitNonce(dreq.reporter, dreq.nonce, simulator_.now())) {
      ++stats_.dreqReplayed;
      traceDetector(simulator_, ch_, obs::DetectorOp::kDreqReplayed, {},
                    dreq.suspect, dreq.reporter, dreq.nonce);
      return;
    }
    if (!ledger_.admitAccusation(dreq.reporter, simulator_.now())) {
      ++stats_.dreqRateLimited;
      traceDetector(simulator_, ch_, obs::DetectorOp::kDreqRateLimited, {},
                    dreq.suspect, dreq.reporter, 0, "over-rate");
      return;
    }
  }

  // Verification-table dedup: concurrent reports against one suspect merge.
  if (Session* merged = active_.find(dreq.suspect)) {
    ++stats_.dreqDeduplicated;
    merged->reporters.push_back({dreq.reporter, dreq.reporterCluster});
    merged->packets += 1;  // the received d_req
    traceDetector(simulator_, ch_, obs::DetectorOp::kDreqDeduplicated,
                  merged->id, dreq.suspect, dreq.reporter);
    traceTable(simulator_, ch_, obs::ChTableOp::kVerificationMerge,
               merged->id, dreq.suspect);
    return;
  }

  Session session;
  session.id = common::DetectionSessionId{
      (static_cast<std::uint64_t>(ch_.clusterId().value()) << 32) |
      nextSessionLocal_++};
  session.suspect = dreq.suspect;
  session.reporters.push_back({dreq.reporter, dreq.reporterCluster});
  session.packets = 1;  // the received d_req
  session.retriesLeft = config_.probeRetries;
  session.startedAt = simulator_.now();
  traceDetector(simulator_, ch_, obs::DetectorOp::kDreqReceived, session.id,
                session.suspect, dreq.reporter);

  if (!ch_.isMember(dreq.suspect) && dreq.suspectCluster != ch_.clusterId() &&
      dreq.suspectCluster.value() != 0) {
    // The reporter says the suspect lives in another cluster: hand over.
    forwardSession(std::move(session), dreq.suspectCluster);
    return;
  }
  placeSession(std::move(session));
}

void RsuDetector::adoptForwarded(const ForwardedDetection& fwd) {
  ++stats_.sessionsAdopted;
  Session session;
  session.id = fwd.session;
  session.suspect = fwd.suspect;
  session.reporters.push_back({fwd.reporter, fwd.reporterCluster});
  session.stage = fwd.stage;
  session.rrep1Seq = fwd.lastSeenSeq;
  session.packets = fwd.packetsSoFar;
  session.forwardCount = fwd.forwardCount;
  session.retriesLeft =
      fwd.stage == 0 ? config_.probeRetries : config_.stageRetries;
  session.startedAt = fwd.startedAt;
  traceDetector(simulator_, ch_, obs::DetectorOp::kSessionAdopted, session.id,
                session.suspect, fwd.reporter,
                static_cast<std::uint64_t>(session.stage));
  placeSession(std::move(session));
}

void RsuDetector::placeSession(Session session) {
  if (ch_.isMember(session.suspect)) {
    beginProbing(std::move(session));
    return;
  }
  // Not (or no longer) here: chase via the history table, bounded.
  if (session.forwardCount < config_.maxForwards) {
    if (const auto next = guessNextCluster(session.suspect)) {
      forwardSession(std::move(session), *next);
      return;
    }
  }
  finishSession(std::move(session), Verdict::kUnreachable);
}

std::optional<common::ClusterId> RsuDetector::guessNextCluster(
    common::Address suspect) const {
  const auto record = ch_.historyRecord(suspect);
  if (!record) return std::nullopt;
  return ch_.zones().neighborToward(ch_.clusterId(), record->direction);
}

void RsuDetector::forwardSession(Session session, common::ClusterId target) {
  ++stats_.sessionsForwarded;
  BDP_ASSERT(!session.reporters.empty());
  // A disposable identity is assigned iff the session sat in this CH's
  // verification table (mid-probe flee handover): record the table erase.
  if (session.disposable != common::kNullAddress) {
    traceTable(simulator_, ch_, obs::ChTableOp::kVerificationErase, session.id,
               session.suspect);
  }
  traceDetector(simulator_, ch_, obs::DetectorOp::kSessionForwarded,
                session.id, session.suspect,
                session.reporters.front().address, target.value());
  auto fwd = net::makeMutablePayload<ForwardedDetection>();
  fwd->session = session.id;
  fwd->reporter = session.reporters.front().address;
  fwd->reporterCluster = session.reporters.front().cluster;
  fwd->suspect = session.suspect;
  fwd->stage = static_cast<std::uint8_t>(session.stage == 1 ? 1 : 0);
  fwd->lastSeenSeq = session.rrep1Seq;
  fwd->packetsSoFar = session.packets + 1;  // this forward counts
  fwd->forwardCount = static_cast<std::uint8_t>(session.forwardCount + 1);
  fwd->startedAt = session.startedAt;
  ch_.sendOnBackbone(target, std::move(fwd));
}

// ----------------------------------------------------------------- probing

void RsuDetector::beginProbing(Session session) {
  // A disposable identity makes the RSU look like a normal vehicle to the
  // suspect (§III-B1); a fresh fake destination guarantees no honest node
  // can have a route.
  // A session for this suspect may already be running here (e.g. a second
  // CH forwarded its own report while ours is active): merge, don't restart.
  if (Session* existing = active_.find(session.suspect)) {
    auto& reporters = existing->reporters;
    reporters.insert(reporters.end(), session.reporters.begin(),
                     session.reporters.end());
    existing->packets += session.packets;
    traceTable(simulator_, ch_, obs::ChTableOp::kVerificationMerge,
               existing->id, session.suspect);
    return;
  }

  // Hardened campaigns only start from stage 0; a mid-probe handover
  // (stage 1) continues with the naive ladder so the probe-state transfer
  // semantics stay exactly the paper's.
  session.hardened = config_.hardening.enabled && session.stage == 0;
  if (!session.hardened) {
    session.disposable = allocProbeAddress();
    session.fakeDestination = allocProbeAddress();
    ch_.node().addAlias(session.disposable);
    if (config_.recordProbeIdentities) {
      probeIdentityLog_.push_back({session.disposable, session.fakeDestination});
    }
  }

  const common::Address suspect = session.suspect;
  BDP_ASSERT_MSG(!active_.contains(suspect),
                 "duplicate active session for suspect");
  Session& placed = active_[suspect];
  placed = std::move(session);
  traceDetector(simulator_, ch_, obs::DetectorOp::kSessionOpened, placed.id,
                suspect,
                placed.reporters.empty() ? common::Address{}
                                         : placed.reporters.front().address);
  traceTable(simulator_, ch_, obs::ChTableOp::kVerificationInsert, placed.id,
             suspect);
  armSweep();
  if (placed.hardened) {
    scheduleHardenedRound(placed);
    return;
  }
  sendProbe(suspect, placed);
}

// Hardened campaign ------------------------------------------------------

void RsuDetector::scheduleHardenedRound(Session& session) {
  const std::uint32_t gen = ++session.timerGen;
  const auto jitter = sim::Duration::microseconds(
      probeRng_.uniformInt(0, config_.hardening.probeJitterMax.us()));
  session.timerKind = 2;
  session.timerDeadline = simulator_.now() + jitter;
  session.timerArmSeq = ++*armSeqCounter_;
  simulator_.schedule(jitter, [this, suspect = session.suspect, gen] {
    Session* live = active_.find(suspect);
    if (live == nullptr || live->timerGen != gen) return;
    live->timerKind = 0;
    sendHardenedProbe(*live);
  });
}

common::Address RsuDetector::pickRealDestination(const Session& session) {
  // The reporter is the strongest candidate: the suspect answered its route
  // discovery, so the reporter is certainly in the suspect's overheard
  // neighborhood — a selective evader cannot claim ignorance of it.
  for (const Reporter& reporter : session.reporters) {
    if (reporter.address != session.suspect &&
        reporter.address != common::kNullAddress) {
      return reporter.address;
    }
  }
  std::vector<common::Address> candidates;
  for (const common::Address member : ch_.members()) {
    if (member != session.suspect) candidates.push_back(member);
  }
  if (candidates.empty()) return common::kNullAddress;
  return candidates[probeRng_.index(candidates.size())];
}

void RsuDetector::sendHardenedProbe(Session& session) {
  // Fresh disposable identity and destination every round: the suspect can
  // never correlate rounds, and identities are single-use by construction.
  ch_.node().removeAlias(session.disposable);
  session.disposable = allocProbeAddress();
  ch_.node().addAlias(session.disposable);

  auto rreq = net::makeMutablePayload<aodv::RouteRequest>();
  rreq->rreqId = common::RreqId{nextProbeRreqId_++};
  session.stageRreqIds.clear();  // one countable reply per round
  session.stageRreqIds.push_back(rreq->rreqId.value());
  rreq->origin = session.disposable;
  rreq->originSeq = 1;
  rreq->ttl = 1;

  common::Address destination = common::kNullAddress;
  if (session.round % 2 == 0) destination = pickRealDestination(session);
  if (destination != common::kNullAddress) {
    // Type B: a destination the suspect has plausibly overheard, with a
    // sequence number no honest cache can match — only a forger replies.
    rreq->destSeq = config_.hardening.inflatedSeq;
    rreq->unknownDestSeq = false;
    rreq->inquireNextHop = true;
  } else {
    // Type A: invented destination from the plausible vehicle address
    // space; unknown sequence number, like a genuine first discovery.
    destination = common::Address{static_cast<std::uint64_t>(probeRng_.uniformInt(
        static_cast<std::int64_t>(config_.hardening.plausibleAddressLo),
        static_cast<std::int64_t>(config_.hardening.plausibleAddressHi)))};
    rreq->destSeq = 0;
    rreq->unknownDestSeq = true;
  }
  session.fakeDestination = destination;
  rreq->destination = destination;
  if (config_.recordProbeIdentities) {
    probeIdentityLog_.push_back({session.disposable, destination});
  }

  ++stats_.probesSent;
  session.packets += 1;
  if (!session.probeStartedAt) session.probeStartedAt = simulator_.now();
  traceDetector(simulator_, ch_, obs::DetectorOp::kProbeSent, session.id,
                session.suspect, session.suspect,
                static_cast<std::uint64_t>(session.round));
  ch_.node().sendFromAlias(session.disposable, session.suspect,
                           std::move(rreq));
  armTimer(session);
}

void RsuDetector::exonerateReporters(const Session& session) {
  ++stats_.exonerations;
  traceDetector(simulator_, ch_, obs::DetectorOp::kExonerated, session.id,
                session.suspect, {},
                static_cast<std::uint64_t>(session.round));
  for (const Reporter& reporter : session.reporters) {
    const bool crossed = ledger_.demerit(reporter.address);
    ++stats_.reporterDemerits;
    traceDetector(simulator_, ch_, obs::DetectorOp::kReporterDemerited,
                  session.id, session.suspect, reporter.address,
                  static_cast<std::uint64_t>(
                      ledger_.demeritScore(reporter.address)));
    if (crossed) {
      // The accuser is a systematic liar: quarantine it through the TA
      // exactly like a confirmed black hole.
      ++stats_.reportersQuarantined;
      traceDetector(simulator_, ch_, obs::DetectorOp::kReporterQuarantined,
                    session.id, session.suspect, reporter.address);
      taNetwork_.reportMisbehaviour(reporter.address);
    }
  }
}

void RsuDetector::sendProbe(common::Address target, Session& session) {
  auto rreq = net::makeMutablePayload<aodv::RouteRequest>();
  rreq->rreqId = common::RreqId{nextProbeRreqId_++};
  session.stageRreqIds.push_back(rreq->rreqId.value());
  rreq->origin = session.disposable;
  rreq->originSeq = 1;
  rreq->destination = session.fakeDestination;
  rreq->ttl = 1;  // probe must not propagate past the suspect

  if (session.stage == 1) {
    // RREQ₂: one above RREP₁'s sequence number + next-hop inquiry. An honest
    // node cannot know a fresher route to a destination that does not exist.
    session.rreq2Seq = session.rrep1Seq + 1;
    rreq->destSeq = session.rreq2Seq;
    rreq->unknownDestSeq = false;
    rreq->inquireNextHop = true;
  } else {
    rreq->destSeq = 0;
    rreq->unknownDestSeq = true;
  }

  ++stats_.probesSent;
  session.packets += 1;
  if (!session.probeStartedAt) session.probeStartedAt = simulator_.now();
  traceDetector(simulator_, ch_, obs::DetectorOp::kProbeSent, session.id,
                session.suspect, target,
                static_cast<std::uint64_t>(session.stage));
  ch_.node().sendFromAlias(session.disposable, target, std::move(rreq));
  armTimer(session);
}

void RsuDetector::armTimer(Session& session) {
  const std::uint32_t gen = ++session.timerGen;
  session.timerKind = 1;
  session.timerDeadline = simulator_.now() + config_.probeTimeout;
  session.timerArmSeq = ++*armSeqCounter_;
  simulator_.schedule(config_.probeTimeout,
                      [this, suspect = session.suspect, gen] {
                        onProbeTimeout(suspect, gen);
                      });
}

void RsuDetector::onProbeTimeout(common::Address suspect, std::uint32_t gen) {
  Session* live = active_.find(suspect);
  if (live == nullptr || live->timerGen != gen) return;
  Session& session = *live;
  session.timerKind = 0;  // this timer is being consumed
  traceDetector(simulator_, ch_, obs::DetectorOp::kProbeTimeout, session.id,
                session.suspect, {},
                static_cast<std::uint64_t>(session.stage));

  if (session.stage == 2) {
    if (session.retriesLeft > 0) {
      --session.retriesLeft;
      sendProbe(session.accomplice, session);
      return;
    }
    // Teammate stayed silent: the primary attacker is still confirmed.
    Session done = std::move(session);
    active_.erase(suspect);
    done.accomplice = common::kNullAddress;
    finishSession(std::move(done), Verdict::kSingleBlackHole);
    return;
  }

  if (!ch_.isMember(suspect) && !session.degraded) {
    // The suspect moved on mid-probe (flee scenario): hand the session,
    // including probe state, to the next cluster head. Hardened campaigns
    // forward at stage 0 (the next CH restarts its own campaign).
    Session moved = std::move(session);
    active_.erase(suspect);
    ch_.node().removeAlias(moved.disposable);
    if (moved.forwardCount < config_.maxForwards) {
      if (const auto next = guessNextCluster(suspect)) {
        forwardSession(std::move(moved), *next);
        return;
      }
    }
    finishSession(std::move(moved), Verdict::kUnreachable);
    return;
  }

  if (session.hardened) {
    // A silent round: no violation. Rounds are the redundancy mechanism, so
    // there are no per-round retries — move straight to the next round.
    ++session.round;
    if (session.round < config_.hardening.probeRounds) {
      scheduleHardenedRound(session);
      return;
    }
    Session done = std::move(session);
    active_.erase(suspect);
    if (done.violations == 0) {
      // Full campaign, zero violations: the accusation was baseless.
      exonerateReporters(done);
    }
    finishSession(std::move(done), Verdict::kNotConfirmed);
    return;
  }

  // Retry budget: stage 0 uses probeRetries (seed behaviour); stages 1/2
  // use stageRetries, reset on every stage advance.
  if (session.retriesLeft > 0) {
    --session.retriesLeft;
    sendProbe(suspect, session);
    return;
  }

  // Silence under probing: no AODV violation observed. The suspect behaved
  // legitimately (or evaded); BlackDP prevents the attack but does not
  // confirm it.
  Session done = std::move(session);
  active_.erase(suspect);
  finishSession(std::move(done), Verdict::kNotConfirmed);
}

void RsuDetector::handleProbeReply(const aodv::RouteReply& rrep,
                                   const net::Frame& frame) {
  // Match the reply against the current stage's probe generation (original
  // or any retransmission); replies to an earlier stage's probes no longer
  // match — their ids were cleared on the stage advance.
  Session* match = nullptr;
  active_.forEach([&](common::Address, Session& s) {
    if (match == nullptr && s.fakeDestination == rrep.destination &&
        std::find(s.stageRreqIds.begin(), s.stageRreqIds.end(),
                  rrep.rreqId.value()) != s.stageRreqIds.end()) {
      match = &s;
    }
  });
  if (match == nullptr) return;
  Session& session = *match;
  const common::Address suspectKey = session.suspect;
  session.packets += 1;
  ++session.timerGen;  // disarm the pending timeout
  session.timerKind = 0;
  traceDetector(simulator_, ch_, obs::DetectorOp::kProbeReply, session.id,
                session.suspect, frame.src,
                static_cast<std::uint64_t>(session.stage));

  if (session.hardened && session.stage == 0) {
    // Only the suspect can incriminate itself: a third party answering the
    // (unicast) probe — e.g. an accusation flooder trying to frame the
    // suspect — is ignored outright.
    if (frame.src != session.suspect) return;
    session.stageRreqIds.clear();  // duplicates of this round don't recount
    ++session.violations;
    ++stats_.probeViolations;
    traceDetector(simulator_, ch_, obs::DetectorOp::kProbeViolation,
                  session.id, session.suspect, frame.src,
                  static_cast<std::uint64_t>(session.round));
    if (rrep.claimedNextHop != common::kNullAddress &&
        rrep.claimedNextHop != session.suspect) {
      session.accomplice = rrep.claimedNextHop;
    }
    if (session.violations >= config_.hardening.violationQuorum) {
      ++stats_.confirmations;
      if (session.accomplice != common::kNullAddress) {
        // Teammate probe must use a destination that does not exist: with a
        // real one, an honest "teammate" holding a genuine route could be
        // framed by replying legitimately. It also gets its own disposable
        // identity — identities stay single-use even across the stage-2
        // escalation, so the accomplice can't link it to earlier rounds.
        ch_.node().removeAlias(session.disposable);
        session.disposable = allocProbeAddress();
        ch_.node().addAlias(session.disposable);
        session.fakeDestination = allocProbeAddress();
        session.stage = 2;
        session.stageRreqIds.clear();
        session.retriesLeft = config_.stageRetries;
        if (config_.recordProbeIdentities) {
          probeIdentityLog_.push_back(
              {session.disposable, session.fakeDestination});
        }
        sendProbe(session.accomplice, session);
        return;
      }
      Session done = std::move(session);
      active_.erase(suspectKey);
      finishSession(std::move(done), Verdict::kSingleBlackHole);
      return;
    }
    ++session.round;
    if (session.round < config_.hardening.probeRounds) {
      scheduleHardenedRound(session);
      return;
    }
    // Rounds exhausted below quorum: suspicious but unconfirmed. The
    // reporters are *not* demerited — the suspect did violate.
    Session done = std::move(session);
    active_.erase(suspectKey);
    finishSession(std::move(done), Verdict::kNotConfirmed);
    return;
  }

  switch (session.stage) {
    case 0: {
      // RREP₁ for a non-existent destination: first violation. Confirm with
      // RREQ₂ — unless the suspect has just left, in which case the next CH
      // completes the detection (paper's 8-packet scenario).
      session.rrep1Seq = rrep.destSeq;
      session.stage = 1;
      session.stageRreqIds.clear();
      session.retriesLeft = config_.stageRetries;
      if (!ch_.isMember(session.suspect) && !session.degraded) {
        Session moved = std::move(session);
        active_.erase(suspectKey);
        ch_.node().removeAlias(moved.disposable);
        if (moved.forwardCount < config_.maxForwards) {
          if (const auto next = guessNextCluster(moved.suspect)) {
            forwardSession(std::move(moved), *next);
            return;
          }
        }
        finishSession(std::move(moved), Verdict::kUnreachable);
        return;
      }
      sendProbe(session.suspect, session);
      return;
    }
    case 1: {
      // RREP₂: confirmed iff it claims a sequence number above RREQ₂'s —
      // an impossible claim ("a node must not send a RREP if it does not
      // have a higher SN than the received RREQ").
      const bool violation = aodv::seqNewer(rrep.destSeq, session.rreq2Seq);
      if (!violation) {
        Session done = std::move(session);
        active_.erase(suspectKey);
        finishSession(std::move(done), Verdict::kNotConfirmed);
        return;
      }
      ++stats_.confirmations;
      if (rrep.claimedNextHop != common::kNullAddress &&
          rrep.claimedNextHop != session.suspect) {
        // The suspect named a teammate: probe it the same way (§III-B1).
        session.accomplice = rrep.claimedNextHop;
        session.stage = 2;
        session.stageRreqIds.clear();
        session.retriesLeft = config_.stageRetries;
        sendProbe(session.accomplice, session);
        return;
      }
      Session done = std::move(session);
      active_.erase(suspectKey);
      finishSession(std::move(done), Verdict::kSingleBlackHole);
      return;
    }
    case 2: {
      // Teammate answered a route request for the fake destination: it
      // supports the primary attacker's claim — cooperative attack.
      if (frame.src != session.accomplice) return;
      Session done = std::move(session);
      active_.erase(suspectKey);
      finishSession(std::move(done), Verdict::kCooperativeBlackHole);
      return;
    }
    default:
      BDP_ASSERT_MSG(false, "invalid probe stage");
  }
}

// ---------------------------------------------------------------- verdicts

void RsuDetector::finishSession(Session session, Verdict verdict) {
  ch_.node().removeAlias(session.disposable);
  if (session.disposable != common::kNullAddress) {
    traceTable(simulator_, ch_, obs::ChTableOp::kVerificationErase, session.id,
               session.suspect);
  }
  traceDetector(simulator_, ch_, obs::DetectorOp::kVerdict, session.id,
                session.suspect, session.accomplice,
                static_cast<std::uint64_t>(verdict),
                std::string{toString(verdict)});

  std::optional<sim::TimePoint> isolatedAt;
  if (verdict == Verdict::kSingleBlackHole ||
      verdict == Verdict::kCooperativeBlackHole) {
    isolate(session, verdict);
    isolatedAt = simulator_.now();
    if (session.hardened) {
      // Confirmed accusations buy back reporter reputation.
      for (const Reporter& reporter : session.reporters) {
        ledger_.credit(reporter.address);
      }
    }
  }

  // Answer every reporter; account for the packets each answer costs.
  for (const Reporter& reporter : session.reporters) {
    if (reporter.cluster == ch_.clusterId() || reporter.cluster.value() == 0) {
      auto response = net::makeMutablePayload<DetectionResponse>();
      response->reporter = reporter.address;
      response->suspect = session.suspect;
      response->verdict = verdict;
      response->accomplice = session.accomplice;
      session.packets += 1;  // the over-the-air response
      ch_.node().sendTo(reporter.address, std::move(response));
    } else {
      auto result = net::makeMutablePayload<DetectionResult>();
      result->session = session.id;
      result->reporter = reporter.address;
      result->suspect = session.suspect;
      result->verdict = verdict;
      result->accomplice = session.accomplice;
      // Backbone relay + the peer CH's over-the-air response.
      session.packets += 2;
      result->packetsUsed = session.packets;
      ch_.sendOnBackbone(reporter.cluster, std::move(result));
    }
  }

  SessionRecord record;
  record.id = session.id;
  record.suspect = session.suspect;
  record.reporter = session.reporters.empty()
                        ? common::kNullAddress
                        : session.reporters.front().address;
  record.verdict = verdict;
  record.accomplice = verdict == Verdict::kCooperativeBlackHole
                          ? session.accomplice
                          : common::kNullAddress;
  record.packetsUsed = session.packets;
  record.startedAt = session.startedAt;
  record.endedAt = simulator_.now();
  record.probeStartedAt = session.probeStartedAt;
  record.isolatedAt = isolatedAt;
  completed_.push_back(std::move(record));
  ++completedTotal_;
  if (config_.completedCap > 0 && completed_.size() > config_.completedCap) {
    const std::size_t excess = completed_.size() - config_.completedCap;
    completed_.erase(completed_.begin(),
                     completed_.begin() + static_cast<std::ptrdiff_t>(excess));
    stats_.completedEvicted += excess;
  }
}

void RsuDetector::isolate(const Session& session, Verdict verdict) {
  // Certificate revocation request to the trusted authority; the TA pauses
  // pseudonym renewal and pushes revocation notices to every subscribed CH
  // (which blacklist, announce to members, and inform newly joined
  // vehicles via JREP).
  ++stats_.isolations;
  traceDetector(simulator_, ch_, obs::DetectorOp::kIsolated, session.id,
                session.suspect,
                verdict == Verdict::kCooperativeBlackHole ? session.accomplice
                                                          : common::Address{});
  taNetwork_.reportMisbehaviour(session.suspect);
  if (verdict == Verdict::kCooperativeBlackHole &&
      session.accomplice != common::kNullAddress) {
    taNetwork_.reportMisbehaviour(session.accomplice);
  }
}

// ------------------------------------------------------- TTL sweep & relay

void RsuDetector::armSweep() {
  // Lazy: the sweep timer exists only while the verification table is
  // non-empty, so an idle detector never keeps Simulator::run() alive.
  if (config_.sessionTtl.us() <= 0 || sweepArmed_ || active_.empty()) return;
  sweepArmed_ = true;
  sweepDeadline_ = simulator_.now() + config_.sessionTtl;
  sweepArmSeq_ = ++*armSeqCounter_;
  simulator_.schedule(config_.sessionTtl, [this] { onSweep(); });
}

void RsuDetector::onSweep() {
  sweepArmed_ = false;
  const sim::TimePoint now = simulator_.now();
  // The idle-ledger TTL rides the same timer: one sweep bounds both tables.
  stats_.ledgerEvictions += ledger_.evictIdle(now);
  std::vector<common::Address> stale;
  active_.forEach([&](common::Address suspect, const Session& session) {
    if (now - session.startedAt >= config_.sessionTtl) {
      stale.push_back(suspect);
    }
  });
  // Address order, not hash-map order: a restored world's table has a
  // different insertion history, and expiry processing must not depend on it.
  std::sort(stale.begin(), stale.end());
  for (const common::Address suspect : stale) {
    Session done = std::move(*active_.find(suspect));
    active_.erase(suspect);
    ++stats_.expiredSessions;
    traceTable(simulator_, ch_, obs::ChTableOp::kVerificationExpired, done.id,
               done.suspect);
    // The probe never concluded (suspect unreachable, timers lost to a
    // crash/recovery window, …): answer the reporters rather than leaking
    // the entry forever.
    finishSession(std::move(done), Verdict::kUnreachable);
  }
  armSweep();
}

void RsuDetector::relayResult(const DetectionResult& result) {
  traceDetector(simulator_, ch_, obs::DetectorOp::kResultRelayed,
                result.session, result.suspect, result.reporter);
  auto response = net::makeMutablePayload<DetectionResponse>();
  response->reporter = result.reporter;
  response->suspect = result.suspect;
  response->verdict = result.verdict;
  response->accomplice = result.accomplice;
  ch_.node().sendTo(result.reporter, std::move(response));
}

// ----------------------------------------------------- checkpoint / restore

void RsuDetector::shareArmSequence(std::uint64_t* counter) {
  armSeqCounter_ = counter != nullptr ? counter : &armSeqLocal_;
}

namespace {

void writeOptionalTime(common::ByteWriter& w,
                       const std::optional<sim::TimePoint>& t) {
  w.writeBool(t.has_value());
  w.writeI64(t ? t->us() : 0);
}

std::optional<sim::TimePoint> readOptionalTime(common::ByteReader& r) {
  const bool has = r.readBool();
  const std::int64_t us = r.readI64();
  if (!has) return std::nullopt;
  return sim::TimePoint::fromUs(us);
}

void writeRecord(common::ByteWriter& w, const SessionRecord& rec) {
  w.writeId(rec.id);
  w.writeId(rec.suspect);
  w.writeId(rec.reporter);
  w.writeU8(static_cast<std::uint8_t>(rec.verdict));
  w.writeId(rec.accomplice);
  w.writeU32(rec.packetsUsed);
  w.writeI64(rec.startedAt.us());
  w.writeI64(rec.endedAt.us());
  writeOptionalTime(w, rec.probeStartedAt);
  writeOptionalTime(w, rec.isolatedAt);
}

SessionRecord readRecord(common::ByteReader& r) {
  SessionRecord rec;
  rec.id = r.readId<common::DetectionSessionId>();
  rec.suspect = r.readId<common::Address>();
  rec.reporter = r.readId<common::Address>();
  rec.verdict = static_cast<Verdict>(r.readU8());
  rec.accomplice = r.readId<common::Address>();
  rec.packetsUsed = r.readU32();
  rec.startedAt = sim::TimePoint::fromUs(r.readI64());
  rec.endedAt = sim::TimePoint::fromUs(r.readI64());
  rec.probeStartedAt = readOptionalTime(r);
  rec.isolatedAt = readOptionalTime(r);
  return rec;
}

}  // namespace

void RsuDetector::saveState(common::ByteWriter& w) const {
  w.writeU64(stats_.dreqReceived);
  w.writeU64(stats_.dreqRejectedAuth);
  w.writeU64(stats_.dreqDeduplicated);
  w.writeU64(stats_.sessionsAdopted);
  w.writeU64(stats_.sessionsForwarded);
  w.writeU64(stats_.probesSent);
  w.writeU64(stats_.confirmations);
  w.writeU64(stats_.isolations);
  w.writeU64(stats_.forwardsFailed);
  w.writeU64(stats_.resultRelaysFailed);
  w.writeU64(stats_.dreqRateLimited);
  w.writeU64(stats_.dreqReplayed);
  w.writeU64(stats_.probeViolations);
  w.writeU64(stats_.exonerations);
  w.writeU64(stats_.reporterDemerits);
  w.writeU64(stats_.reportersQuarantined);
  w.writeU64(stats_.expiredSessions);
  w.writeU64(stats_.completedEvicted);
  w.writeU64(stats_.ledgerEvictions);

  w.writeU64(completedTotal_);
  w.writeU32(static_cast<std::uint32_t>(completed_.size()));
  for (const SessionRecord& rec : completed_) writeRecord(w, rec);

  w.writeU64(nextSessionLocal_);
  w.writeU64(nextProbeAddress_);
  w.writeU32(nextProbeRreqId_);
  w.writeU64(armSeqLocal_);

  // mt19937_64's stream operators are the only portable way to round-trip
  // its 2.5 KB of internal state; the textual form is deterministic.
  std::ostringstream rng;
  rng << probeRng_.engine();
  w.writeString(rng.str());

  ledger_.saveState(w);

  w.writeBool(sweepArmed_);
  w.writeI64(sweepDeadline_.us());
  w.writeU64(sweepArmSeq_);

  std::vector<common::Address> order;
  order.reserve(active_.size());
  active_.forEach(
      [&](common::Address suspect, const Session&) { order.push_back(suspect); });
  std::sort(order.begin(), order.end());
  w.writeU32(static_cast<std::uint32_t>(order.size()));
  for (const common::Address suspect : order) {
    const Session& s = *active_.find(suspect);
    w.writeId(s.id);
    w.writeId(s.suspect);
    w.writeU32(static_cast<std::uint32_t>(s.reporters.size()));
    for (const Reporter& rep : s.reporters) {
      w.writeId(rep.address);
      w.writeId(rep.cluster);
    }
    w.writeU8(static_cast<std::uint8_t>(s.stage));
    w.writeU32(s.rrep1Seq);
    w.writeU32(s.rreq2Seq);
    w.writeId(s.disposable);
    w.writeId(s.fakeDestination);
    w.writeU32(static_cast<std::uint32_t>(s.stageRreqIds.size()));
    for (const std::uint32_t id : s.stageRreqIds) w.writeU32(id);
    w.writeI64(s.retriesLeft);
    w.writeU32(s.packets);
    w.writeU8(s.forwardCount);
    w.writeBool(s.degraded);
    w.writeId(s.accomplice);
    w.writeU32(s.timerGen);
    w.writeI64(s.startedAt.us());
    writeOptionalTime(w, s.probeStartedAt);
    w.writeBool(s.hardened);
    w.writeI64(s.round);
    w.writeI64(s.violations);
    w.writeI64(s.timerDeadline.us());
    w.writeU8(s.timerKind);
    w.writeU64(s.timerArmSeq);
  }

  w.writeU32(static_cast<std::uint32_t>(probeIdentityLog_.size()));
  for (const ProbeIdentity& pi : probeIdentityLog_) {
    w.writeId(pi.disposable);
    w.writeId(pi.destination);
  }
}

void RsuDetector::restoreState(common::ByteReader& r,
                               std::vector<PendingTimer>& rearm) {
  stats_.dreqReceived = r.readU64();
  stats_.dreqRejectedAuth = r.readU64();
  stats_.dreqDeduplicated = r.readU64();
  stats_.sessionsAdopted = r.readU64();
  stats_.sessionsForwarded = r.readU64();
  stats_.probesSent = r.readU64();
  stats_.confirmations = r.readU64();
  stats_.isolations = r.readU64();
  stats_.forwardsFailed = r.readU64();
  stats_.resultRelaysFailed = r.readU64();
  stats_.dreqRateLimited = r.readU64();
  stats_.dreqReplayed = r.readU64();
  stats_.probeViolations = r.readU64();
  stats_.exonerations = r.readU64();
  stats_.reporterDemerits = r.readU64();
  stats_.reportersQuarantined = r.readU64();
  stats_.expiredSessions = r.readU64();
  stats_.completedEvicted = r.readU64();
  stats_.ledgerEvictions = r.readU64();

  completedTotal_ = r.readU64();
  completed_.clear();
  const std::uint32_t recordCount = r.readU32();
  completed_.reserve(recordCount);
  for (std::uint32_t i = 0; i < recordCount; ++i) {
    completed_.push_back(readRecord(r));
  }

  nextSessionLocal_ = r.readU64();
  nextProbeAddress_ = r.readU64();
  nextProbeRreqId_ = r.readU32();
  armSeqLocal_ = r.readU64();

  std::istringstream rng{r.readString()};
  rng >> probeRng_.engine();
  BDP_ASSERT_MSG(!rng.fail(), "corrupt probe RNG state in checkpoint");

  ledger_.restoreState(r);

  sweepArmed_ = r.readBool();
  sweepDeadline_ = sim::TimePoint::fromUs(r.readI64());
  sweepArmSeq_ = r.readU64();
  if (sweepArmed_) {
    rearm.push_back({sweepArmSeq_, sweepDeadline_, [this] { onSweep(); }});
  }

  active_.clear();
  const std::uint32_t sessionCount = r.readU32();
  for (std::uint32_t i = 0; i < sessionCount; ++i) {
    Session s;
    s.id = r.readId<common::DetectionSessionId>();
    s.suspect = r.readId<common::Address>();
    const std::uint32_t reporterCount = r.readU32();
    for (std::uint32_t k = 0; k < reporterCount; ++k) {
      Reporter rep;
      rep.address = r.readId<common::Address>();
      rep.cluster = r.readId<common::ClusterId>();
      s.reporters.push_back(rep);
    }
    s.stage = r.readU8();
    s.rrep1Seq = r.readU32();
    s.rreq2Seq = r.readU32();
    s.disposable = r.readId<common::Address>();
    s.fakeDestination = r.readId<common::Address>();
    const std::uint32_t rreqIdCount = r.readU32();
    for (std::uint32_t k = 0; k < rreqIdCount; ++k) {
      s.stageRreqIds.push_back(r.readU32());
    }
    s.retriesLeft = static_cast<int>(r.readI64());
    s.packets = r.readU32();
    s.forwardCount = r.readU8();
    s.degraded = r.readBool();
    s.accomplice = r.readId<common::Address>();
    s.timerGen = r.readU32();
    s.startedAt = sim::TimePoint::fromUs(r.readI64());
    s.probeStartedAt = readOptionalTime(r);
    s.hardened = r.readBool();
    s.round = static_cast<int>(r.readI64());
    s.violations = static_cast<int>(r.readI64());
    s.timerDeadline = sim::TimePoint::fromUs(r.readI64());
    s.timerKind = r.readU8();
    s.timerArmSeq = r.readU64();

    // The fresh world's CH node has no probe aliases yet; rebind so the
    // suspect's replies still reach this detector.
    if (s.disposable != common::kNullAddress) {
      ch_.node().addAlias(s.disposable);
    }

    const common::Address suspect = s.suspect;
    const std::uint32_t gen = s.timerGen;
    if (s.timerKind == 1) {
      rearm.push_back({s.timerArmSeq, s.timerDeadline,
                       [this, suspect, gen] { onProbeTimeout(suspect, gen); }});
    } else if (s.timerKind == 2) {
      rearm.push_back({s.timerArmSeq, s.timerDeadline, [this, suspect, gen] {
                         Session* live = active_.find(suspect);
                         if (live == nullptr || live->timerGen != gen) return;
                         live->timerKind = 0;
                         sendHardenedProbe(*live);
                       }});
    }
    // timerKind 0: no live timer (a reply disarmed it; the TTL sweep is the
    // only way such a session ends — exactly as in the uninterrupted run).

    active_[suspect] = std::move(s);
  }

  probeIdentityLog_.clear();
  const std::uint32_t logCount = r.readU32();
  probeIdentityLog_.reserve(logCount);
  for (std::uint32_t i = 0; i < logCount; ++i) {
    ProbeIdentity pi;
    pi.disposable = r.readId<common::Address>();
    pi.destination = r.readId<common::Address>();
    probeIdentityLog_.push_back(pi);
  }
}

}  // namespace blackdp::core
