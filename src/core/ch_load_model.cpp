#include "core/ch_load_model.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace blackdp::core {

void ChLoadModel::submit(Completion done) {
  BDP_ASSERT(done != nullptr);
  ++stats_.jobsSubmitted;
  queue_.push_back(Job{std::move(done), simulator_.now()});
  stats_.maxQueueDepth = std::max<std::uint64_t>(stats_.maxQueueDepth,
                                                 queue_.size());
  startNext();
}

void ChLoadModel::startNext() {
  if (idleServers_ == 0 || queue_.empty()) return;
  --idleServers_;
  Job job = std::move(queue_.front());
  queue_.pop_front();

  stats_.totalWait = stats_.totalWait + (simulator_.now() - job.submittedAt);
  stats_.totalBusy = stats_.totalBusy + config_.verificationService;

  simulator_.schedule(config_.verificationService,
                      [this, done = std::move(job.done)] {
                        ++idleServers_;
                        ++stats_.jobsCompleted;
                        done();
                        startNext();
                      });
}

}  // namespace blackdp::core
