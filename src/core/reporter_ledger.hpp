// Reporter reputation ledger (accusation-channel defense).
//
// The d_req channel is itself an attack surface: a compromised-but-certified
// vehicle can flood forged reports against honest nodes to weaponize the
// quarantine machinery (cf. Sen et al.; Baadache & Belmehdi). Each hardened
// detector keeps one ledger over the reporters it has heard from:
//
//  - rate limiting: at most `windowMax` accusations per reporter within a
//    sliding `window`;
//  - replay protection: a bounded per-reporter cache of d_req nonces — a
//    re-sent (captured) d_req is rejected even though its signature verifies;
//  - demerit score: every accusation whose suspect passes a full probe
//    campaign with zero violations costs the accuser one demerit; a
//    confirmed accusation earns one credit (floor 0). Crossing
//    `demeritThreshold` marks the reporter a liar, exactly once — the
//    detector then quarantines it through the TA like any other attacker.
//
// The ledger is pure bookkeeping (no simulator, no I/O), so its state
// machine is property-testable in isolation.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "common/address_registry.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "sim/time.hpp"

namespace blackdp::core {

struct ReporterLedgerConfig {
  /// Demerits at which a reporter is declared a liar.
  int demeritThreshold{5};
  /// Accusations admitted per reporter within `window`.
  std::uint32_t windowMax{8};
  sim::Duration window{sim::Duration::seconds(10)};
  /// Per-reporter replay-cache capacity (oldest nonce evicted first).
  std::size_t nonceCacheMax{64};
  /// Streaming-service bound: entries idle longer than this are evicted by
  /// evictIdle() (quarantined entries are kept — they are the verdicts the
  /// ledger exists to remember, and their count is bounded by the attacker
  /// population). 0 (default) disables eviction: batch trials are short and
  /// their tests inspect the full ledger afterwards.
  sim::Duration entryTtl{};
};

class ReporterLedger {
 public:
  explicit ReporterLedger(ReporterLedgerConfig config = {})
      : config_{config} {}

  /// Sliding-window rate limit. Returns false (and does not record the
  /// accusation) when the reporter is over budget or already quarantined.
  [[nodiscard]] bool admitAccusation(common::Address reporter,
                                     sim::TimePoint now);

  /// Replay check. Returns false when this (reporter, nonce) pair was seen
  /// before; nonce 0 (legacy unstamped d_req) is always admitted. `now`
  /// refreshes the entry's idle clock for TTL eviction; callers without a
  /// clock (unit tests) may omit it.
  [[nodiscard]] bool admitNonce(common::Address reporter, std::uint64_t nonce,
                                sim::TimePoint now = {});

  /// Charges one demerit (exoneration of the accused). Returns true exactly
  /// when this demerit crosses the liar threshold — the caller quarantines.
  [[nodiscard]] bool demerit(common::Address reporter);

  /// Rewards a confirmed accusation: one demerit forgiven (floor 0).
  void credit(common::Address reporter);

  /// Drops non-quarantined entries idle longer than config.entryTtl. No-op
  /// (returns 0) when the TTL is 0. Returns the number of entries evicted.
  std::size_t evictIdle(sim::TimePoint now);

  [[nodiscard]] int demeritScore(common::Address reporter) const;
  [[nodiscard]] bool isQuarantined(common::Address reporter) const;
  [[nodiscard]] std::size_t trackedReporters() const { return entries_.size(); }
  /// Total nonces cached across all entries (memory-watermark input).
  [[nodiscard]] std::size_t noncesCached() const;
  [[nodiscard]] const ReporterLedgerConfig& config() const { return config_; }

  /// Checkpoint support. Entries are written sorted by reporter address so
  /// identical logical state always serializes to identical bytes, whatever
  /// the hash-map iteration order. restoreState replaces all entries.
  void saveState(common::ByteWriter& w) const;
  void restoreState(common::ByteReader& r);

 private:
  struct Entry {
    std::deque<sim::TimePoint> recent;  ///< accusation times inside `window`
    std::deque<std::uint64_t> nonceOrder;
    std::unordered_set<std::uint64_t> nonces;
    int demerits{0};
    bool quarantined{false};
    sim::TimePoint lastTouched{};  ///< idle clock for TTL eviction
  };

  Entry& entry(common::Address reporter) { return entries_[reporter]; }

  ReporterLedgerConfig config_;
  /// Dense-slot map: the per-d_req rate/replay checks probe once and index.
  common::DenseAddressMap<Entry> entries_;
};

}  // namespace blackdp::core
