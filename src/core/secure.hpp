// Secure-packet helpers (paper §III-B1).
//
// A "secure packet" is {message, certificate, d_sign(message, K⁻)}. Signing
// hashes the canonical message bytes and signs with the sender's private
// key; verification checks (1) the certificate against the TA (issuer
// signature, expiry), (2) that the certificate's pseudonym matches the
// claimed sender, (3) the payload signature under the certified key, and
// optionally (4) local revocation state.
#pragma once

#include <string>

#include "aodv/agent.hpp"
#include "crypto/revocation_store.hpp"
#include "crypto/trusted_authority.hpp"

namespace blackdp::core {

/// Signs `body` with the node's credentials.
[[nodiscard]] aodv::SecureEnvelope makeEnvelope(
    const common::Bytes& body, const aodv::Credentials& credentials,
    const crypto::CryptoEngine& engine);

struct EnvelopeCheck {
  bool ok{false};
  std::string reason;  ///< failure category when !ok ("no-envelope", ...)
};

/// Full secure-packet verification.
[[nodiscard]] EnvelopeCheck verifyEnvelope(
    const common::Bytes& body,
    const std::optional<aodv::SecureEnvelope>& envelope,
    common::Address expectedPseudonym, const crypto::TaNetwork& taNetwork,
    const crypto::CryptoEngine& engine, sim::TimePoint now,
    const crypto::RevocationStore* revocations = nullptr);

}  // namespace blackdp::core
