// BlackDP protocol messages (paper §III-B).
//
//  - AuthHello: the secure Hello used for destination authentication after an
//    intermediate node's RREP. Rides inside an AODV DataPacket so it is
//    forwarded along the advertised route — and silently dropped by a black
//    hole that has no route.
//  - DetectionRequest (d_req = ⟨v_i, CH(v_i), v_B, CH(v_B)⟩): vehicle → CH
//    report of a suspicious route establishment.
//  - ForwardedDetection: CH → CH backbone transfer of an in-progress
//    detection (when the suspect resides in, or has fled to, another cluster).
//  - DetectionResult: detecting CH → reporter's CH backbone result relay.
//  - DetectionResponse: CH → reporter over-the-air verification verdict.
#pragma once

#include <optional>

#include "aodv/messages.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "net/frame.hpp"

namespace blackdp::core {

/// Verdict of a detection session.
enum class Verdict {
  kNotConfirmed,          ///< suspect never violated AODV under probing
  kSingleBlackHole,       ///< confirmed; no teammate claimed/confirmed
  kCooperativeBlackHole,  ///< confirmed, teammate confirmed too
  kUnreachable,           ///< suspect left the network before confirmation
};

[[nodiscard]] std::string_view toString(Verdict verdict);

/// Secure end-to-end Hello for destination authentication (§III-B1).
class AuthHello final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind = net::PayloadKind::kAuthHello;
  AuthHello() : Payload(kKind) {}

  std::uint64_t helloId{0};
  common::Address origin{};       ///< the verifying source
  common::Address destination{};  ///< the claimed destination
  bool isReply{false};
  common::Address responder{};    ///< who produced the reply
  std::optional<aodv::SecureEnvelope> envelope{};

  [[nodiscard]] std::string_view typeName() const override { return "hello"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override {
    return envelope ? 152u : 40u;
  }

  [[nodiscard]] common::Bytes canonicalBytes() const;
};

/// d_req — the detection request a legitimate node sends to its cluster head.
class DetectionRequest final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind =
      net::PayloadKind::kDetectionRequest;
  DetectionRequest() : Payload(kKind) {}

  common::Address reporter{};
  common::ClusterId reporterCluster{};
  common::Address suspect{};
  common::ClusterId suspectCluster{};
  /// Anti-replay nonce, fresh per transmission and covered by the envelope
  /// signature. 0 = legacy unstamped report (hardened detectors admit it;
  /// they cannot tell a replay from a retry without one).
  std::uint64_t nonce{0};
  /// Reporter authentication (the RSU verifies reports come from certified
  /// nodes, §III-C).
  std::optional<aodv::SecureEnvelope> envelope{};

  [[nodiscard]] std::string_view typeName() const override { return "dreq"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override {
    return envelope ? 168u : 56u;
  }

  [[nodiscard]] common::Bytes canonicalBytes() const;
};

/// CH → CH: continue a detection in the receiving CH's cluster.
class ForwardedDetection final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind =
      net::PayloadKind::kForwardedDetection;
  ForwardedDetection() : Payload(kKind) {}

  common::DetectionSessionId session{};
  common::Address reporter{};
  common::ClusterId reporterCluster{};
  common::Address suspect{};
  /// Probe state transfer: 0 = start from RREQ₁; 1 = RREP₁ already obtained,
  /// continue with RREQ₂ using `lastSeenSeq`.
  std::uint8_t stage{0};
  aodv::SeqNum lastSeenSeq{0};
  /// Detection packets already spent by previous CHs (Fig. 5 accounting).
  std::uint32_t packetsSoFar{0};
  /// How many CH→CH forwards this session has undergone (loop bound).
  std::uint8_t forwardCount{0};
  /// When the first CH accepted the original d_req (latency accounting).
  sim::TimePoint startedAt{};

  [[nodiscard]] std::string_view typeName() const override { return "dfwd"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 72; }
};

/// Detecting CH → reporter's CH: final verdict for relay to the reporter.
class DetectionResult final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind =
      net::PayloadKind::kDetectionResult;
  DetectionResult() : Payload(kKind) {}

  common::DetectionSessionId session{};
  common::Address reporter{};
  common::Address suspect{};
  Verdict verdict{Verdict::kNotConfirmed};
  common::Address accomplice{common::kNullAddress};
  std::uint32_t packetsUsed{0};

  [[nodiscard]] std::string_view typeName() const override { return "dres"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 64; }
};

/// CH → reporter (over the air): the verification verdict.
class DetectionResponse final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind =
      net::PayloadKind::kDetectionResponse;
  DetectionResponse() : Payload(kKind) {}

  common::Address reporter{};
  common::Address suspect{};
  Verdict verdict{Verdict::kNotConfirmed};
  common::Address accomplice{common::kNullAddress};

  [[nodiscard]] std::string_view typeName() const override { return "dresp"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 48; }
};

}  // namespace blackdp::core
