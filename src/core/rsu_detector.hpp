// RSU-side BlackDP: suspicious node examination and isolation (§III-B).
//
// Each cluster head runs a detector. On a d_req from an authenticated member
// it opens a detection session (deduplicating concurrent reports against the
// same suspect in the verification table), locates the suspect, and probes it
// under a disposable identity:
//
//   RREQ₁ — fake, non-existent destination, unknown sequence number.
//           An honest node stays silent (nothing to reply with, TTL 1
//           forbids rebroadcast); a black hole answers immediately.
//   RREQ₂ — same fake destination, destination sequence number set one above
//           RREP₁'s, plus a next-hop inquiry. A reply with a yet higher
//           sequence number is an AODV-impossible claim: attack confirmed.
//   RREQ₃ — sent to a claimed next hop (cooperative teammate); a reply
//           confirms the cooperative attack.
//
// If the suspect has left for an adjacent cluster mid-probe the session is
// forwarded over the backbone with its probe state (the paper's 8/9-packet
// scenarios). On confirmation the detector triggers certificate revocation
// at the TA, applies local isolation, and answers every reporter.
//
// Every packet a CH sends or receives for a session is counted; the counts
// are what bench/fig5_packets reports.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/cluster_head.hpp"
#include "core/messages.hpp"
#include "core/secure.hpp"
#include "sim/rng.hpp"

namespace blackdp::core {

struct DetectorConfig {
  /// How long a probe waits for the suspect's RREP.
  sim::Duration probeTimeout{sim::Duration::milliseconds(400)};
  /// RREQ₁ resends after silence before concluding (paper Fig. 5's
  /// no-attacker case spends 2 probe packets).
  int probeRetries{1};
  /// Retry budget for the later probe stages (RREQ₂/RREQ₃) under lossy
  /// conditions. 0 (default) replays the seed behaviour: a lost stage-1/2
  /// probe ends the session on its first timeout.
  int stageRetries{0};
  /// Upper bound on CH→CH session forwards (chasing a moving suspect).
  std::uint8_t maxForwards{3};
};

/// Completed-session record (the finishing CH keeps it; packetsUsed includes
/// the relay packets it can account for deterministically).
struct SessionRecord {
  common::DetectionSessionId id{};
  common::Address suspect{};
  common::Address reporter{};
  Verdict verdict{Verdict::kNotConfirmed};
  common::Address accomplice{common::kNullAddress};
  std::uint32_t packetsUsed{0};
  sim::TimePoint startedAt{};  ///< first CH accepted the d_req
  sim::TimePoint endedAt{};    ///< verdict reached
  /// First probe out of the *finishing* CH; unset when no probe was sent
  /// (e.g. the session terminated as kUnreachable before probing).
  std::optional<sim::TimePoint> probeStartedAt{};
  /// Revocation requested at the TA; unset for unconfirmed verdicts.
  std::optional<sim::TimePoint> isolatedAt{};

  [[nodiscard]] sim::Duration latency() const { return endedAt - startedAt; }
};

struct DetectorStats {
  std::uint64_t dreqReceived{0};
  std::uint64_t dreqRejectedAuth{0};  ///< reporter failed authentication
  std::uint64_t dreqDeduplicated{0};  ///< merged into an existing session
  std::uint64_t sessionsAdopted{0};   ///< received via backbone forward
  std::uint64_t sessionsForwarded{0};
  std::uint64_t probesSent{0};
  std::uint64_t confirmations{0};
  std::uint64_t isolations{0};
  std::uint64_t forwardsFailed{0};      ///< backbone forward undeliverable
  std::uint64_t resultRelaysFailed{0};  ///< backbone result undeliverable
};

class RsuDetector {
 public:
  RsuDetector(sim::Simulator& simulator, cluster::ClusterHead& clusterHead,
              crypto::TaNetwork& taNetwork, const crypto::CryptoEngine& engine,
              DetectorConfig config = {});

  RsuDetector(const RsuDetector&) = delete;
  RsuDetector& operator=(const RsuDetector&) = delete;

  [[nodiscard]] const std::vector<SessionRecord>& completedSessions() const {
    return completed_;
  }
  [[nodiscard]] const DetectorStats& stats() const { return stats_; }
  /// Verification-table size (active sessions).
  [[nodiscard]] std::size_t activeSessions() const { return active_.size(); }

 private:
  struct Reporter {
    common::Address address{};
    common::ClusterId cluster{};
  };
  /// One verification-table entry (§III-B1 "Suspicious Node Examination").
  struct Session {
    common::DetectionSessionId id{};
    common::Address suspect{};
    std::vector<Reporter> reporters;
    int stage{0};  ///< 0: awaiting RREP₁, 1: awaiting RREP₂, 2: teammate
    aodv::SeqNum rrep1Seq{0};
    aodv::SeqNum rreq2Seq{0};
    common::Address disposable{};
    common::Address fakeDestination{};
    /// Probe ids of the *current* stage (original + retransmissions) — a
    /// late reply to any of them matches; replies to earlier stages do not.
    std::vector<std::uint32_t> stageRreqIds;
    int retriesLeft{0};
    std::uint32_t packets{0};
    std::uint8_t forwardCount{0};
    /// Adopted after a backbone forward failed (target CH dead): probe the
    /// suspect over the air from here and skip the membership-based
    /// forwarding logic — there is nowhere left to hand the session.
    bool degraded{false};
    common::Address accomplice{common::kNullAddress};
    std::uint32_t timerGen{0};
    sim::TimePoint startedAt{};
    std::optional<sim::TimePoint> probeStartedAt{};
  };

  bool onFrame(const net::Frame& frame);
  void onBackbone(common::ClusterId from, const net::PayloadPtr& payload);
  void onBackboneSendFailed(common::ClusterId to, const net::PayloadPtr& payload);

  void handleDreq(const DetectionRequest& dreq);
  void adoptForwarded(const ForwardedDetection& fwd);
  void relayResult(const DetectionResult& result);

  /// Dispatches a session: probe locally, forward, or give up.
  void placeSession(Session session);
  void beginProbing(Session session);
  void sendProbe(common::Address suspectOrTeammate, Session& session);
  void armTimer(Session& session);
  void onProbeTimeout(common::Address suspect, std::uint32_t gen);
  void handleProbeReply(const aodv::RouteReply& rrep, const net::Frame& frame);

  /// Hands the session to the CH of an adjacent / reported cluster.
  void forwardSession(Session session, common::ClusterId target);
  /// Picks where a vanished member likely went (direction of travel).
  [[nodiscard]] std::optional<common::ClusterId> guessNextCluster(
      common::Address suspect) const;

  void finishSession(Session session, Verdict verdict);
  void isolate(const Session& session, Verdict verdict);

  common::Address allocProbeAddress();

  sim::Simulator& simulator_;
  cluster::ClusterHead& ch_;
  crypto::TaNetwork& taNetwork_;
  const crypto::CryptoEngine& engine_;
  DetectorConfig config_;
  DetectorStats stats_;
  /// Verification table, keyed by suspect.
  std::unordered_map<common::Address, Session> active_;
  std::vector<SessionRecord> completed_;
  std::uint64_t nextSessionLocal_{1};
  std::uint64_t nextProbeAddress_{1};
  std::uint32_t nextProbeRreqId_{1};
};

}  // namespace blackdp::core
