// RSU-side BlackDP: suspicious node examination and isolation (§III-B).
//
// Each cluster head runs a detector. On a d_req from an authenticated member
// it opens a detection session (deduplicating concurrent reports against the
// same suspect in the verification table), locates the suspect, and probes it
// under a disposable identity:
//
//   RREQ₁ — fake, non-existent destination, unknown sequence number.
//           An honest node stays silent (nothing to reply with, TTL 1
//           forbids rebroadcast); a black hole answers immediately.
//   RREQ₂ — same fake destination, destination sequence number set one above
//           RREP₁'s, plus a next-hop inquiry. A reply with a yet higher
//           sequence number is an AODV-impossible claim: attack confirmed.
//   RREQ₃ — sent to a claimed next hop (cooperative teammate); a reply
//           confirms the cooperative attack.
//
// If the suspect has left for an adjacent cluster mid-probe the session is
// forwarded over the backbone with its probe state (the paper's 8/9-packet
// scenarios). On confirmation the detector triggers certificate revocation
// at the TA, applies local isolation, and answers every reporter.
//
// Every packet a CH sends or receives for a session is counted; the counts
// are what bench/fig5_packets reports.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "cluster/cluster_head.hpp"
#include "common/address_registry.hpp"
#include "core/messages.hpp"
#include "core/reporter_ledger.hpp"
#include "core/secure.hpp"
#include "sim/rng.hpp"

namespace blackdp::core {

/// Adversarially hardened probing (all off by default; the naive ladder
/// above replays the paper exactly).
///
/// The naive probe is evadable: its fake destination comes from a reserved
/// address range no vehicle has ever heard of, so a *selective* black hole
/// that only answers RREQs for destinations it has overheard stays silent
/// and passes. The hardened campaign randomizes K-of-N rounds:
///
///   type B (even rounds) — destination is a *real* member the suspect has
///     plausibly overheard (preferring the reporter, whose discovery the
///     suspect answered), with an absurdly inflated destination sequence
///     number. No honest node can have a route that fresh, so any reply
///     from the suspect is an AODV-impossible claim.
///   type A (odd rounds)  — an invented destination drawn from the plausible
///     vehicle address space (not the reserved probe range), unknown
///     sequence number: the classic non-existent-destination probe, but
///     indistinguishable from a genuine discovery.
///
/// Each round uses a fresh disposable identity and destination and a
/// jittered send time. Violations only count when the reply's link-layer
/// source is the suspect itself (nobody can be framed by third-party
/// replies). Reaching `violationQuorum` confirms; a full campaign with zero
/// violations exonerates the suspect and demerits every accuser.
struct DetectorHardening {
  bool enabled{false};
  /// N — probe rounds per campaign (alternating B,A,B,…).
  int probeRounds{3};
  /// K — violations that confirm the suspect.
  int violationQuorum{2};
  /// Uniform random delay added before each round's probe.
  sim::Duration probeJitterMax{sim::Duration::milliseconds(120)};
  /// Destination sequence number for type-B rounds; far above anything a
  /// vehicle can legitimately have cached.
  aodv::SeqNum inflatedSeq{0x20000000};
  /// Invented type-A destinations are drawn from this (inclusive) range of
  /// the plausible vehicle address space.
  std::uint64_t plausibleAddressLo{0x10000000};
  std::uint64_t plausibleAddressHi{0x1FFFFFFF};
  /// Reporter rate-limit / replay / demerit policy.
  ReporterLedgerConfig ledger{};
};

struct DetectorConfig {
  /// How long a probe waits for the suspect's RREP.
  sim::Duration probeTimeout{sim::Duration::milliseconds(400)};
  /// RREQ₁ resends after silence before concluding (paper Fig. 5's
  /// no-attacker case spends 2 probe packets).
  int probeRetries{1};
  /// Retry budget for the later probe stages (RREQ₂/RREQ₃) under lossy
  /// conditions. 0 (default) replays the seed behaviour: a lost stage-1/2
  /// probe ends the session on its first timeout.
  int stageRetries{0};
  /// Upper bound on CH→CH session forwards (chasing a moving suspect).
  std::uint8_t maxForwards{3};
  /// Anti-evasion probe campaign + accusation-channel defense (default off).
  DetectorHardening hardening{};
  /// Verification-table TTL: sessions older than this are expired as
  /// kUnreachable by a lazy sweep. 0 (default) disables the sweep entirely
  /// (seed behaviour; sessions always terminate via probe timeouts).
  sim::Duration sessionTtl{};
  /// Seed of the detector's private random stream (round jitter, type-A/B
  /// destination draws). Derive per-CH from the scenario seed.
  std::uint64_t probeSeed{0};
  /// Keep a log of every (disposable identity, probe destination) pair for
  /// invariant checking (soak harness); off by default to save memory.
  bool recordProbeIdentities{false};
  /// Bound on retained completed-session records (streaming service mode):
  /// the oldest records are dropped once the vector exceeds the cap.
  /// 0 (default, batch mode) keeps everything — short trials inspect the
  /// full history afterwards. completedTotal() stays exact either way.
  std::size_t completedCap{0};
};

/// Completed-session record (the finishing CH keeps it; packetsUsed includes
/// the relay packets it can account for deterministically).
struct SessionRecord {
  common::DetectionSessionId id{};
  common::Address suspect{};
  common::Address reporter{};
  Verdict verdict{Verdict::kNotConfirmed};
  common::Address accomplice{common::kNullAddress};
  std::uint32_t packetsUsed{0};
  sim::TimePoint startedAt{};  ///< first CH accepted the d_req
  sim::TimePoint endedAt{};    ///< verdict reached
  /// First probe out of the *finishing* CH; unset when no probe was sent
  /// (e.g. the session terminated as kUnreachable before probing).
  std::optional<sim::TimePoint> probeStartedAt{};
  /// Revocation requested at the TA; unset for unconfirmed verdicts.
  std::optional<sim::TimePoint> isolatedAt{};

  [[nodiscard]] sim::Duration latency() const { return endedAt - startedAt; }
};

struct DetectorStats {
  std::uint64_t dreqReceived{0};
  std::uint64_t dreqRejectedAuth{0};  ///< reporter failed authentication
  std::uint64_t dreqDeduplicated{0};  ///< merged into an existing session
  std::uint64_t sessionsAdopted{0};   ///< received via backbone forward
  std::uint64_t sessionsForwarded{0};
  std::uint64_t probesSent{0};
  std::uint64_t confirmations{0};
  std::uint64_t isolations{0};
  std::uint64_t forwardsFailed{0};      ///< backbone forward undeliverable
  std::uint64_t resultRelaysFailed{0};  ///< backbone result undeliverable
  // --- hardening (all zero when DetectorHardening is off) ---
  std::uint64_t dreqRateLimited{0};  ///< over reporter budget / quarantined
  std::uint64_t dreqReplayed{0};     ///< nonce seen before
  std::uint64_t probeViolations{0};  ///< per-round AODV-impossible replies
  std::uint64_t exonerations{0};     ///< campaigns with zero violations
  std::uint64_t reporterDemerits{0};
  std::uint64_t reportersQuarantined{0};
  std::uint64_t expiredSessions{0};  ///< TTL-swept verification entries
  std::uint64_t completedEvicted{0};  ///< records dropped by completedCap
  std::uint64_t ledgerEvictions{0};   ///< idle ledger entries TTL-evicted
};

/// One probe identity the detector has put on the air (for invariant
/// checking: disposable identities must never be reused).
struct ProbeIdentity {
  common::Address disposable{};
  common::Address destination{};
};

/// A detector timer that was pending at checkpoint time, handed back from
/// restoreState() so the restoring world can reschedule *all* detectors'
/// timers in their original global arm order (armSeq ascending). Rescheduling
/// per detector would break FIFO tie-breaks between detectors whose timers
/// share a deadline.
struct PendingTimer {
  std::uint64_t armSeq{0};
  sim::TimePoint deadline{};
  std::function<void()> fire;
};

class RsuDetector {
 public:
  RsuDetector(sim::Simulator& simulator, cluster::ClusterHead& clusterHead,
              crypto::TaNetwork& taNetwork, const crypto::CryptoEngine& engine,
              DetectorConfig config = {});

  RsuDetector(const RsuDetector&) = delete;
  RsuDetector& operator=(const RsuDetector&) = delete;

  [[nodiscard]] const std::vector<SessionRecord>& completedSessions() const {
    return completed_;
  }
  [[nodiscard]] const DetectorStats& stats() const { return stats_; }
  /// Verification-table size (active sessions).
  [[nodiscard]] std::size_t activeSessions() const { return active_.size(); }
  [[nodiscard]] const DetectorConfig& config() const { return config_; }
  /// Reporter reputation state (rate limits, replay cache, demerits).
  [[nodiscard]] const ReporterLedger& reporterLedger() const { return ledger_; }
  /// Every (disposable, destination) pair sent, when
  /// `recordProbeIdentities` is on; empty otherwise.
  [[nodiscard]] const std::vector<ProbeIdentity>& probeIdentities() const {
    return probeIdentityLog_;
  }
  /// Exact number of sessions ever finished, independent of completedCap
  /// eviction (completedSessions().size() may be smaller).
  [[nodiscard]] std::uint64_t completedTotal() const { return completedTotal_; }
  /// Mutable ledger access for checkpoint/restore and TTL-eviction tests.
  [[nodiscard]] ReporterLedger& reporterLedger() { return ledger_; }

  /// Points every timer arm at a world-shared sequence counter (pass nullptr
  /// to fall back to the private one). Timers armed by *different* detectors
  /// at the same deadline tie-break by scheduling order; a world that
  /// checkpoints must record that global order, which a per-detector counter
  /// cannot express. Call before any session is opened.
  void shareArmSequence(std::uint64_t* counter);

  /// Checkpoint support. saveState writes every dynamic field (verification
  /// table sorted by suspect, completed records, stats, allocators, ledger,
  /// probe RNG, sweep timer). restoreState replaces them and appends one
  /// PendingTimer per live timer to `rearm` WITHOUT scheduling anything —
  /// the caller sorts timers from all detectors by armSeq and schedules
  /// them, reproducing the interrupted run's event order exactly.
  void saveState(common::ByteWriter& w) const;
  void restoreState(common::ByteReader& r, std::vector<PendingTimer>& rearm);

 private:
  struct Reporter {
    common::Address address{};
    common::ClusterId cluster{};
  };
  /// One verification-table entry (§III-B1 "Suspicious Node Examination").
  struct Session {
    common::DetectionSessionId id{};
    common::Address suspect{};
    std::vector<Reporter> reporters;
    int stage{0};  ///< 0: awaiting RREP₁, 1: awaiting RREP₂, 2: teammate
    aodv::SeqNum rrep1Seq{0};
    aodv::SeqNum rreq2Seq{0};
    common::Address disposable{};
    common::Address fakeDestination{};
    /// Probe ids of the *current* stage (original + retransmissions) — a
    /// late reply to any of them matches; replies to earlier stages do not.
    std::vector<std::uint32_t> stageRreqIds;
    int retriesLeft{0};
    std::uint32_t packets{0};
    std::uint8_t forwardCount{0};
    /// Adopted after a backbone forward failed (target CH dead): probe the
    /// suspect over the air from here and skip the membership-based
    /// forwarding logic — there is nowhere left to hand the session.
    bool degraded{false};
    common::Address accomplice{common::kNullAddress};
    std::uint32_t timerGen{0};
    sim::TimePoint startedAt{};
    std::optional<sim::TimePoint> probeStartedAt{};
    /// Hardened K-of-N campaign state (stage stays 0 while rounds run;
    /// stage 2 is reused for the teammate probe after quorum).
    bool hardened{false};
    int round{0};
    int violations{0};
    /// Checkpoint metadata for the session's one live timer. The simulator
    /// cannot serialize closures, so the detector records what it armed:
    /// kind 0 = none (disarmed or consumed), 1 = probe timeout,
    /// 2 = hardened-round jitter delay. restoreState() rebuilds the closure
    /// from (kind, deadline) and replays the arm order via timerArmSeq.
    sim::TimePoint timerDeadline{};
    std::uint8_t timerKind{0};
    std::uint64_t timerArmSeq{0};
  };

  bool onFrame(const net::Frame& frame);
  void onBackbone(common::ClusterId from, const net::PayloadPtr& payload);
  void onBackboneSendFailed(common::ClusterId to, const net::PayloadPtr& payload);

  void handleDreq(const DetectionRequest& dreq);
  void adoptForwarded(const ForwardedDetection& fwd);
  void relayResult(const DetectionResult& result);

  /// Dispatches a session: probe locally, forward, or give up.
  void placeSession(Session session);
  void beginProbing(Session session);
  void sendProbe(common::Address suspectOrTeammate, Session& session);
  void armTimer(Session& session);
  void onProbeTimeout(common::Address suspect, std::uint32_t gen);
  void handleProbeReply(const aodv::RouteReply& rrep, const net::Frame& frame);

  // Hardened campaign (see DetectorHardening).
  /// Schedules the current round's probe after a jittered delay.
  void scheduleHardenedRound(Session& session);
  /// Puts one round's probe on the air under a fresh disposable identity.
  void sendHardenedProbe(Session& session);
  /// A type-B destination the suspect has plausibly overheard (reporter
  /// first, then a random member ≠ suspect); null → fall back to type A.
  [[nodiscard]] common::Address pickRealDestination(const Session& session);
  /// Campaign ended with zero violations: demerit (and possibly quarantine)
  /// every accuser.
  void exonerateReporters(const Session& session);

  // Verification-table TTL sweep (lazy: armed only while sessions exist,
  // so an idle detector never keeps the simulator alive).
  void armSweep();
  void onSweep();

  /// Hands the session to the CH of an adjacent / reported cluster.
  void forwardSession(Session session, common::ClusterId target);
  /// Picks where a vanished member likely went (direction of travel).
  [[nodiscard]] std::optional<common::ClusterId> guessNextCluster(
      common::Address suspect) const;

  void finishSession(Session session, Verdict verdict);
  void isolate(const Session& session, Verdict verdict);

  common::Address allocProbeAddress();

  sim::Simulator& simulator_;
  cluster::ClusterHead& ch_;
  crypto::TaNetwork& taNetwork_;
  const crypto::CryptoEngine& engine_;
  DetectorConfig config_;
  DetectorStats stats_;
  /// Verification table, keyed by suspect (dense slots; one probe + array
  /// read per probe-reply match, slots recycled as sessions close).
  common::DenseAddressMap<Session> active_;
  std::vector<SessionRecord> completed_;
  std::uint64_t completedTotal_{0};
  std::uint64_t nextSessionLocal_{1};
  std::uint64_t nextProbeAddress_{1};
  std::uint32_t nextProbeRreqId_{1};
  ReporterLedger ledger_;
  sim::Rng probeRng_;
  std::vector<ProbeIdentity> probeIdentityLog_;
  bool sweepArmed_{false};
  sim::TimePoint sweepDeadline_{};
  std::uint64_t sweepArmSeq_{0};
  /// Timer arm-order counter; points at armSeqLocal_ unless the world
  /// shares one across detectors (see shareArmSequence).
  std::uint64_t armSeqLocal_{0};
  std::uint64_t* armSeqCounter_{&armSeqLocal_};
};

}  // namespace blackdp::core
