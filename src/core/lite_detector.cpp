#include "core/lite_detector.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace blackdp::core {

std::string_view toString(LiteVerdict verdict) {
  switch (verdict) {
    case LiteVerdict::kConfirmed: return "confirmed";
    case LiteVerdict::kExonerated: return "exonerated";
    case LiteVerdict::kUnreachable: return "unreachable";
  }
  return "?";
}

void LiteSessionState::serialize(common::ByteWriter& w) const {
  w.writeId(suspect);
  w.writeId(firstReporter);
  w.writeI64(firstReportAtUs);
  w.writeU32(violations);
  w.writeU32(probesSent);
  w.writeU32(forwards);
  w.writeU8(travelDirection);
}

LiteSessionState LiteSessionState::deserialize(common::ByteReader& r) {
  LiteSessionState s;
  s.suspect = r.readId<common::Address>();
  s.firstReporter = r.readId<common::Address>();
  s.firstReportAtUs = r.readI64();
  s.violations = r.readU32();
  s.probesSent = r.readU32();
  s.forwards = r.readU32();
  s.travelDirection = r.readU8();
  return s;
}

LiteDetector::LiteDetector(Config config, Hooks hooks)
    : config_{config}, hooks_{std::move(hooks)} {
  BDP_ASSERT_MSG(config_.probesToConfirm > 0 &&
                     config_.probesToConfirm <= config_.maxProbes,
                 "need 1 <= probesToConfirm <= maxProbes");
}

bool LiteDetector::report(common::Address suspect, common::Address reporter,
                          std::int64_t nowUs, std::uint8_t travelDirection) {
  if (sessions_.contains(suspect)) {
    ++stats_.duplicateReports;
    return false;
  }
  LiteSessionState& s = sessions_[suspect];
  s.suspect = suspect;
  s.firstReporter = reporter;
  s.firstReportAtUs = nowUs;
  s.travelDirection = travelDirection;
  ++stats_.sessionsOpened;
  return true;
}

void LiteDetector::conclude(const LiteSessionState& state,
                            LiteVerdict verdict) {
  switch (verdict) {
    case LiteVerdict::kConfirmed: ++stats_.confirmed; break;
    case LiteVerdict::kExonerated: ++stats_.exonerated; break;
    case LiteVerdict::kUnreachable: ++stats_.unreachable; break;
  }
  if (hooks_.onVerdict) hooks_.onVerdict(state, verdict);
}

void LiteDetector::onProbeReply(common::Address suspect) {
  LiteSessionState* s = sessions_.find(suspect);
  if (s == nullptr) return;  // verdict already landed this epoch
  ++s->violations;
  ++stats_.violations;
  if (s->violations >= config_.probesToConfirm) {
    const LiteSessionState done = *s;
    sessions_.erase(suspect);
    conclude(done, LiteVerdict::kConfirmed);
  }
}

void LiteDetector::onProbeUnreachable(common::Address suspect) {
  LiteSessionState* s = sessions_.find(suspect);
  if (s == nullptr) return;
  ++stats_.probesUnreachable;
  if (s->probesSent > 0) --s->probesSent;  // the round never happened
}

void LiteDetector::beginEpoch(
    const std::function<bool(common::Address)>& present) {
  sessions_.eraseIf([&](common::Address suspect, LiteSessionState& s) {
    if (s.probesSent >= config_.maxProbes) {
      conclude(s, LiteVerdict::kExonerated);
      return true;
    }
    if (!present(suspect)) {
      ++s.forwards;
      if (s.forwards > config_.maxForwards) {
        conclude(s, LiteVerdict::kUnreachable);
      } else {
        ++stats_.handoffsOut;
        if (hooks_.onHandoff) hooks_.onHandoff(s);
      }
      return true;
    }
    ++s.probesSent;
    ++stats_.probeRounds;
    if (hooks_.sendProbe) hooks_.sendProbe(s);
    return false;
  });
}

void LiteDetector::adopt(const LiteSessionState& state) {
  ++stats_.adopted;
  LiteSessionState* existing = sessions_.find(state.suspect);
  if (existing == nullptr) {
    sessions_[state.suspect] = state;
    return;
  }
  // The suspect migrated here and was re-reported locally before the
  // handoff envelope caught up (it trails by one epoch). Merge the two
  // sessions: earliest report wins the clock, evidence accumulates.
  if (state.firstReportAtUs < existing->firstReportAtUs) {
    existing->firstReportAtUs = state.firstReportAtUs;
    existing->firstReporter = state.firstReporter;
  }
  existing->violations += state.violations;
  existing->probesSent = std::max(existing->probesSent, state.probesSent);
  existing->forwards = std::max(existing->forwards, state.forwards);
  existing->travelDirection = state.travelDirection;
  if (existing->violations >= config_.probesToConfirm) {
    const LiteSessionState done = *existing;
    sessions_.erase(state.suspect);
    conclude(done, LiteVerdict::kConfirmed);
  }
}

void LiteDetector::saveState(common::ByteWriter& w) const {
  w.writeU32(static_cast<std::uint32_t>(sessions_.size()));
  sessions_.forEach([&](common::Address, const LiteSessionState& s) {
    s.serialize(w);
  });
  w.writeU64(stats_.sessionsOpened);
  w.writeU64(stats_.duplicateReports);
  w.writeU64(stats_.probeRounds);
  w.writeU64(stats_.violations);
  w.writeU64(stats_.probesUnreachable);
  w.writeU64(stats_.confirmed);
  w.writeU64(stats_.exonerated);
  w.writeU64(stats_.unreachable);
  w.writeU64(stats_.handoffsOut);
  w.writeU64(stats_.adopted);
}

void LiteDetector::restoreState(common::ByteReader& r) {
  BDP_ASSERT_MSG(sessions_.empty(), "restoreState into a non-empty detector");
  const std::uint32_t count = r.readU32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const LiteSessionState s = LiteSessionState::deserialize(r);
    sessions_[s.suspect] = s;
  }
  stats_.sessionsOpened = r.readU64();
  stats_.duplicateReports = r.readU64();
  stats_.probeRounds = r.readU64();
  stats_.violations = r.readU64();
  stats_.probesUnreachable = r.readU64();
  stats_.confirmed = r.readU64();
  stats_.exonerated = r.readU64();
  stats_.unreachable = r.readU64();
  stats_.handoffsOut = r.readU64();
  stats_.adopted = r.readU64();
}

LiteSessionState LiteDetector::extract(common::Address suspect) {
  LiteSessionState* s = sessions_.find(suspect);
  BDP_ASSERT_MSG(s != nullptr, "extract of unknown suspect");
  const LiteSessionState out = *s;
  sessions_.erase(suspect);
  return out;
}

}  // namespace blackdp::core
