// Vehicle-side BlackDP: source & destination verification (paper §III-B1).
//
// Wraps AODV route discovery in the verification state machine:
//
//   discovery → pick freshest cached RREP (skipping blacklisted repliers) →
//     RREP from destination  → verify secure envelope → done / redo / report
//     RREP from intermediate → secure Hello to the destination over the route
//         reply verifies            → route verified
//         reply from wrong identity → "anonymity response": report at once
//         timeout                   → second discovery; second silent Hello
//                                     → suspect: send d_req to the CH
//
// The verifier also answers incoming secure Hellos when this vehicle is the
// destination, and listens for the CH's DetectionResponse verdict.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "aodv/agent.hpp"
#include "cluster/membership_client.hpp"
#include "core/messages.hpp"
#include "core/secure.hpp"

namespace blackdp::core {

enum class Outcome {
  kRouteVerified,        ///< destination authenticated; route usable
  kAttackerConfirmed,    ///< CH confirmed the black hole and isolated it
  kSuspectNotConfirmed,  ///< reported, but the CH could not confirm
  kNoRoute,              ///< discovery failed (includes prevented attacks)
  kLocallyQuarantined,   ///< no CH reachable; suspect blacklisted locally
};

[[nodiscard]] std::string_view toString(Outcome outcome);

struct VerificationReport {
  Outcome outcome{Outcome::kNoRoute};
  common::Address destination{};
  common::Address suspect{common::kNullAddress};
  Verdict chVerdict{Verdict::kNotConfirmed};
  int discoveryRounds{0};
  int helloProbes{0};
  bool reported{false};  ///< a d_req was sent
  int dreqAttempts{0};   ///< d_req transmissions (1 + retries)
  // Stage timestamps for latency accounting; unset when the stage never ran.
  std::optional<sim::TimePoint> suspectedAt{};     ///< formal suspicion
  std::optional<sim::TimePoint> dreqFirstSentAt{};  ///< first d_req out
  sim::TimePoint finishedAt{};                     ///< callback time
};

struct VerifierConfig {
  sim::Duration helloTimeout{sim::Duration::milliseconds(400)};
  sim::Duration responseTimeout{sim::Duration::seconds(10)};
  /// When the CH answers "not confirmed" (e.g. the freshest RREP came from
  /// an honest node whose cache the attacker had poisoned), the source still
  /// has no verified route — it restarts verification from a fresh
  /// discovery, up to this many times.
  int maxRestarts{2};
  /// Retransmissions of an unACKed d_req, with capped exponential backoff.
  /// Each attempt re-reads the CH address, so a membership failover between
  /// attempts redirects the report to the neighbor CH. 0 (default) replays
  /// the seed behaviour exactly: one shot, then the response timeout.
  int dreqRetries{0};
  sim::Duration dreqRetryBase{sim::Duration::milliseconds(500)};
  sim::Duration dreqRetryCap{sim::Duration::seconds(4)};
  /// Degraded isolation when no CH is reachable after all retries: blacklist
  /// the suspect locally (this vehicle only) instead of giving up.
  bool localQuarantine{false};
};

class SourceVerifier {
 public:
  using Callback = std::function<void(const VerificationReport&)>;

  SourceVerifier(sim::Simulator& simulator, net::BasicNode& node,
                 aodv::AodvAgent& agent, cluster::MembershipClient& membership,
                 const crypto::TaNetwork& taNetwork,
                 const crypto::CryptoEngine& engine,
                 VerifierConfig config = {});

  SourceVerifier(const SourceVerifier&) = delete;
  SourceVerifier& operator=(const SourceVerifier&) = delete;

  /// Runs the full verified route establishment toward `destination`.
  /// Exactly one verification may be in flight at a time.
  void establishVerifiedRoute(common::Address destination, Callback callback);

  [[nodiscard]] bool busy() const { return session_.has_value(); }

 private:
  struct CachedRrep {
    aodv::RouteReply rrep;
    common::Address previousHop{};
  };
  struct Session {
    common::Address destination{};
    Callback callback;
    int round{1};
    int helloProbes{0};
    std::vector<CachedRrep> cache;
    std::optional<CachedRrep> chosen;
    std::uint64_t awaitedHelloId{0};
    sim::EventHandle helloTimer{};
    sim::EventHandle responseTimer{};
    sim::EventHandle dreqRetryTimer{};
    bool reported{false};
    common::Address suspect{common::kNullAddress};
    common::ClusterId suspectCluster{};
    Verdict chVerdict{Verdict::kNotConfirmed};
    int restartsLeft{0};
    int dreqRetriesLeft{0};
    int dreqAttempts{0};
    std::optional<sim::TimePoint> suspectedAt{};
    std::optional<sim::TimePoint> dreqFirstSentAt{};
  };

  void onRrep(const aodv::RouteReply& rrep, const net::Frame& frame);
  void onDiscoveryDone(bool success);
  void startRound();
  [[nodiscard]] std::optional<CachedRrep> pickFreshest() const;
  void sendHello();
  void onHelloTimeout();
  void onHelloReply(const AuthHello& hello);
  void reportSuspect(const CachedRrep& suspectRrep);
  /// One d_req transmission toward the current CH. Returns false when no CH
  /// is known at all (the session was finished via the degraded path).
  bool sendDreq();
  void onDreqSendFailed();
  /// All delivery attempts failed: local quarantine or give up.
  void degradeToLocal();
  void finish(Outcome outcome);

  bool onFrame(const net::Frame& frame);
  void onDataDelivered(const aodv::DataPacket& packet, const net::Frame& frame);
  void answerHello(const AuthHello& hello);

  sim::Simulator& simulator_;
  net::BasicNode& node_;
  aodv::AodvAgent& agent_;
  cluster::MembershipClient& membership_;
  const crypto::TaNetwork& taNetwork_;
  const crypto::CryptoEngine& engine_;
  VerifierConfig config_;
  std::optional<Session> session_;
  std::uint64_t nextHelloId_{1};
  /// d_req anti-replay nonces; fresh per transmission (retries re-sign, so a
  /// hardened CH can tell a captured replay from an honest retransmission).
  std::uint64_t nextNonce_{1};
};

}  // namespace blackdp::core
