#include "cluster/cluster_head.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace blackdp::cluster {
namespace {

void traceCh(sim::Simulator& simulator, net::BasicNode& node,
             common::ClusterId cluster, obs::ChTableOp op,
             common::Address vehicle = {}) {
  if (auto* tr = obs::Trace::active()) {
    tr->record({simulator.now().us(), obs::EventKind::kChTable,
                static_cast<std::uint8_t>(op), node.id().value(),
                cluster.value(), vehicle.value()});
  }
}

}  // namespace

ClusterHead::ClusterHead(sim::Simulator& simulator, net::BasicNode& node,
                         net::Backbone& backbone,
                         const mobility::ZoneMap& zones,
                         common::ClusterId clusterId)
    : simulator_{simulator},
      node_{node},
      backbone_{backbone},
      zones_{zones},
      clusterId_{clusterId} {
  node_.addHandler([this](const net::Frame& frame) { return onFrame(frame); });
  backbone_.attach(clusterId_, *this);
}

ClusterHead::~ClusterHead() {
  if (!crashed_) backbone_.detach(clusterId_);
}

void ClusterHead::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++stats_.crashes;
  traceCh(simulator_, node_, clusterId_, obs::ChTableOp::kCrashed);
  backbone_.detach(clusterId_);
  node_.detachFromMedium();
  // Volatile member table is lost; what a rebooted RSU could recover from
  // persistent logs is modelled as the history table.
  for (const auto& [addr, record] : members_) history_[addr] = record;
  members_.clear();
}

void ClusterHead::recover() {
  if (!crashed_) return;
  crashed_ = false;
  ++stats_.recoveries;
  traceCh(simulator_, node_, clusterId_, obs::ChTableOp::kRecovered);
  node_.attachToMedium();
  backbone_.attach(clusterId_, *this);
}

bool ClusterHead::onFrame(const net::Frame& frame) {
  if (const auto* jreq = net::payloadAs<JoinRequest>(frame.payload)) {
    handleJoin(*jreq);
    return true;
  }
  if (const auto* leave = net::payloadAs<LeaveNotice>(frame.payload)) {
    handleLeave(*leave);
    return true;
  }
  if (frameHook_) return frameHook_(frame);
  return false;
}

void ClusterHead::handleJoin(const JoinRequest& jreq) {
  // In an overlapped zone the JREQ reaches several CHs; only the CH whose
  // zone contains the vehicle's reported position claims it.
  const auto cluster = zones_.zoneOf(jreq.position);
  if (!cluster || *cluster != clusterId_) {
    ++stats_.joinsIgnored;
    return;
  }

  MemberRecord record;
  record.vehicle = jreq.vehicle;
  record.joinedAt = simulator_.now();
  record.lastPosition = jreq.position;
  record.speedMps = jreq.speedMps;
  record.direction = jreq.direction;
  members_[jreq.vehicle] = record;
  history_.erase(jreq.vehicle);
  ++stats_.joinsAccepted;
  traceCh(simulator_, node_, clusterId_, obs::ChTableOp::kMemberJoined,
          jreq.vehicle);

  auto jrep = net::makeMutablePayload<JoinReply>();
  jrep->vehicle = jreq.vehicle;
  jrep->cluster = clusterId_;
  jrep->clusterHeadAddress = node_.localAddress();
  // Newly joined vehicles are told about certificates revoked but not yet
  // expired (paper §III-B2).
  jrep->activeRevocations = revocations_.active();
  jrep->neighbors = neighborAnnouncement_;
  node_.sendTo(jreq.vehicle, jrep);
}

void ClusterHead::handleLeave(const LeaveNotice& leave) {
  const auto it = members_.find(leave.vehicle);
  if (it == members_.end()) return;
  history_[leave.vehicle] = it->second;
  members_.erase(it);
  ++stats_.leaves;
  traceCh(simulator_, node_, clusterId_, obs::ChTableOp::kMemberLeft,
          leave.vehicle);
}

std::vector<common::Address> ClusterHead::members() const {
  std::vector<common::Address> out;
  out.reserve(members_.size());
  for (const auto& [addr, record] : members_) out.push_back(addr);
  return out;
}

std::optional<MemberRecord> ClusterHead::historyRecord(
    common::Address vehicle) const {
  if (const auto it = history_.find(vehicle); it != history_.end()) {
    return it->second;
  }
  return std::nullopt;
}

std::optional<MemberRecord> ClusterHead::memberRecord(
    common::Address vehicle) const {
  if (const auto it = members_.find(vehicle); it != members_.end()) {
    return it->second;
  }
  return std::nullopt;
}

void ClusterHead::applyRevocation(const crypto::RevocationNotice& notice) {
  revocations_.add(notice);
  // Drop the attacker from membership; it is no longer served.
  if (members_.erase(notice.pseudonym) > 0) {
    history_.erase(notice.pseudonym);
  }
  auto announcement = net::makeMutablePayload<RevocationAnnouncement>();
  announcement->notice = notice;
  ++stats_.revocationsAnnounced;
  traceCh(simulator_, node_, clusterId_, obs::ChTableOp::kRevocationApplied,
          notice.pseudonym);
  node_.broadcast(announcement);
}

void ClusterHead::sendOnBackbone(common::ClusterId to, net::PayloadPtr payload) {
  backbone_.send(clusterId_, to, std::move(payload));
}

void ClusterHead::onBackboneMessage(common::ClusterId from,
                                    const net::PayloadPtr& payload) {
  if (backboneHook_) backboneHook_(from, payload);
}

void ClusterHead::onBackboneSendFailed(common::ClusterId to,
                                       const net::PayloadPtr& payload) {
  if (backboneFailureHook_) backboneFailureHook_(to, payload);
}

namespace {

// Doubles travel as bit patterns: byte-exact round-trip, no locale/precision
// surprises, and identical logical state always hashes to identical bytes.
void writeMemberTable(
    common::ByteWriter& w,
    const std::unordered_map<common::Address, MemberRecord>& table) {
  std::vector<common::Address> order;
  order.reserve(table.size());
  for (const auto& [addr, record] : table) order.push_back(addr);
  std::sort(order.begin(), order.end());
  w.writeU32(static_cast<std::uint32_t>(order.size()));
  for (const common::Address addr : order) {
    const MemberRecord& record = table.at(addr);
    w.writeU64(addr.value());
    w.writeI64(record.joinedAt.us());
    w.writeU64(std::bit_cast<std::uint64_t>(record.lastPosition.x));
    w.writeU64(std::bit_cast<std::uint64_t>(record.lastPosition.y));
    w.writeU64(std::bit_cast<std::uint64_t>(record.speedMps));
    w.writeU8(static_cast<std::uint8_t>(record.direction));
  }
}

void readMemberTable(common::ByteReader& r,
                     std::unordered_map<common::Address, MemberRecord>& table) {
  table.clear();
  const std::uint32_t count = r.readU32();
  for (std::uint32_t i = 0; i < count; ++i) {
    MemberRecord record;
    record.vehicle = common::Address{r.readU64()};
    record.joinedAt = sim::TimePoint::fromUs(r.readI64());
    record.lastPosition.x = std::bit_cast<double>(r.readU64());
    record.lastPosition.y = std::bit_cast<double>(r.readU64());
    record.speedMps = std::bit_cast<double>(r.readU64());
    record.direction = static_cast<mobility::Direction>(r.readU8());
    table.emplace(record.vehicle, record);
  }
}

}  // namespace

void ClusterHead::saveState(common::ByteWriter& w) const {
  writeMemberTable(w, members_);
  writeMemberTable(w, history_);

  std::vector<crypto::RevocationNotice> notices = revocations_.active();
  std::sort(notices.begin(), notices.end(),
            [](const crypto::RevocationNotice& a,
               const crypto::RevocationNotice& b) { return a.serial < b.serial; });
  w.writeU32(static_cast<std::uint32_t>(notices.size()));
  for (const crypto::RevocationNotice& n : notices) {
    w.writeU64(n.pseudonym.value());
    w.writeU64(n.serial.value());
    w.writeI64(n.certExpiry.us());
  }

  w.writeU64(stats_.joinsAccepted);
  w.writeU64(stats_.joinsIgnored);
  w.writeU64(stats_.leaves);
  w.writeU64(stats_.revocationsAnnounced);
  w.writeU64(stats_.crashes);
  w.writeU64(stats_.recoveries);
}

void ClusterHead::restoreState(common::ByteReader& r) {
  BDP_ASSERT_MSG(!crashed_, "restoring state into a crashed cluster head");
  readMemberTable(r, members_);
  readMemberTable(r, history_);

  // The freshly built world starts with an empty store; add() is idempotent
  // either way.
  const std::uint32_t revCount = r.readU32();
  for (std::uint32_t i = 0; i < revCount; ++i) {
    crypto::RevocationNotice n;
    n.pseudonym = common::Address{r.readU64()};
    n.serial = common::CertSerial{r.readU64()};
    n.certExpiry = sim::TimePoint::fromUs(r.readI64());
    revocations_.add(n);
  }

  stats_.joinsAccepted = r.readU64();
  stats_.joinsIgnored = r.readU64();
  stats_.leaves = r.readU64();
  stats_.revocationsAnnounced = r.readU64();
  stats_.crashes = r.readU64();
  stats_.recoveries = r.readU64();
}

}  // namespace blackdp::cluster
