#include "cluster/membership_client.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "mobility/zone_tracking.hpp"

namespace blackdp::cluster {

MembershipClient::MembershipClient(sim::Simulator& simulator,
                                   net::BasicNode& node,
                                   const mobility::ZoneMap& zones)
    : simulator_{simulator}, node_{node}, zones_{zones} {
  node_.addHandler([this](const net::Frame& frame) { return onFrame(frame); });
  // Registered in the constructor so that on a failed unicast to a dead CH
  // the re-homing below runs before components registered later (the source
  // verifier retries against the *new* CH address).
  node_.addFailureHandler(
      [this](const net::Frame& frame) { onSendFailed(frame); });
}

void MembershipClient::start() {
  BDP_ASSERT_MSG(!started_, "MembershipClient started twice");
  started_ = true;
  sendJoin();
  scheduleBoundaryCrossing();
}

bool MembershipClient::onFrame(const net::Frame& frame) {
  if (const auto* jrep = net::payloadAs<JoinReply>(frame.payload)) {
    if (jrep->vehicle != node_.localAddress()) return true;
    currentCluster_ = jrep->cluster;
    clusterHead_ = jrep->clusterHeadAddress;
    fallbacks_ = jrep->neighbors;
    ++stats_.joinsConfirmed;
    for (const auto& notice : jrep->activeRevocations) {
      if (blacklist_.insert(notice.pseudonym).second) {
        ++stats_.revocationsLearned;
      }
    }
    if (onJoined_) onJoined_(jrep->cluster, jrep->clusterHeadAddress);
    return true;
  }
  if (const auto* announcement =
          net::payloadAs<RevocationAnnouncement>(frame.payload)) {
    if (blacklist_.insert(announcement->notice.pseudonym).second) {
      ++stats_.revocationsLearned;
    }
    return true;
  }
  return false;
}

void MembershipClient::onSendFailed(const net::Frame& frame) {
  // A unicast to the cluster head went unACKed — the CH is crashed or out of
  // range. Re-home to the next advertised neighbor CH (if any) so retries by
  // upper layers go somewhere alive. Each candidate is consumed: if it too is
  // dead, the next failure rotates onward.
  if (!clusterHead_ || frame.dst != *clusterHead_) return;
  if (fallbacks_.empty()) return;
  const NeighborChInfo next = fallbacks_.front();
  fallbacks_.erase(fallbacks_.begin());
  currentCluster_ = next.cluster;
  clusterHead_ = next.address;
  ++stats_.chFailovers;
  if (onJoined_) onJoined_(next.cluster, next.address);
}

void MembershipClient::blacklistLocally(common::Address address) {
  if (blacklist_.insert(address).second) ++stats_.localBlacklists;
}

void MembershipClient::sendJoin() {
  auto jreq = net::makeMutablePayload<JoinRequest>();
  jreq->vehicle = node_.localAddress();
  jreq->position = node_.radioPosition();
  jreq->speedMps = node_.motion().speedMps();
  jreq->direction = node_.motion().direction();
  ++stats_.joinsSent;
  // Broadcast: in an overlapped zone several CHs hear it; the one whose
  // segment contains the reported position replies.
  node_.broadcast(jreq);
}

void MembershipClient::scheduleBoundaryCrossing() {
  const mobility::LinearMotion& motion = node_.motion();
  if (motion.speedMps() <= 0.0) return;  // stationary node never crosses

  const auto change =
      mobility::nextZoneChange(motion, zones_, simulator_.now());
  if (!change) return;  // no boundary within the tracking horizon
  boundaryTimer_ = simulator_.scheduleAt(
      change->when, [this] { onBoundaryCrossing(); });
}

void MembershipClient::forceRejoin() {
  simulator_.cancel(boundaryTimer_);
  onBoundaryCrossing();
}

void MembershipClient::onBoundaryCrossing() {
  const mobility::Position pos = node_.radioPosition();
  const auto newCluster = zones_.zoneOf(pos);

  // Leaving the current cluster.
  if (currentCluster_ && clusterHead_ && newCluster != currentCluster_) {
    auto leave = net::makeMutablePayload<LeaveNotice>();
    leave->vehicle = node_.localAddress();
    ++stats_.leavesSent;
    node_.sendTo(*clusterHead_, leave);
  }

  if (!newCluster) {
    // Off the highway: the vehicle exits the network.
    currentCluster_.reset();
    clusterHead_.reset();
    if (onExit_) onExit_();
    return;
  }

  sendJoin();
  scheduleBoundaryCrossing();
}

}  // namespace blackdp::cluster
