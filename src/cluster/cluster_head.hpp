// Cluster head (RSU) runtime.
//
// One stationary RSU per cluster, centred in its segment, connected to peers
// and the TA over the wired backbone. The cluster head maintains the member
// table ("routing table" in the paper's wording — it is how an RSU decides
// whether a suspect resides in its cluster), a history table of departed
// members, and the revocation blacklist it announces to members. The BlackDP
// detector (src/core) composes with this class through the extension hooks.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/messages.hpp"
#include "common/bytes.hpp"
#include "crypto/revocation_store.hpp"
#include "mobility/zone_map.hpp"
#include "net/backbone.hpp"
#include "net/node.hpp"

namespace blackdp::cluster {

struct MemberRecord {
  common::Address vehicle{};
  sim::TimePoint joinedAt{};
  mobility::Position lastPosition{};
  double speedMps{0.0};
  mobility::Direction direction{mobility::Direction::kEastbound};
};

struct ClusterHeadStats {
  std::uint64_t joinsAccepted{0};
  std::uint64_t joinsIgnored{0};   ///< JREQ for a position outside the segment
  std::uint64_t leaves{0};
  std::uint64_t revocationsAnnounced{0};
  std::uint64_t crashes{0};
  std::uint64_t recoveries{0};
};

class ClusterHead : public net::BackboneEndpoint {
 public:
  /// Invoked for frames no cluster-management handler consumed (the BlackDP
  /// detector receives d_req packets and probe replies through this hook).
  using FrameHook = std::function<bool(const net::Frame&)>;
  /// Invoked for backbone payloads the cluster layer does not understand
  /// (forwarded d_req, detection responses).
  using BackboneHook =
      std::function<void(common::ClusterId from, const net::PayloadPtr&)>;
  /// Invoked when a backbone send by this CH could not be delivered; the
  /// detector uses it to degrade gracefully instead of losing the session.
  using BackboneFailureHook =
      std::function<void(common::ClusterId to, const net::PayloadPtr&)>;

  /// The RSU node is created by the caller (stationary at its zone's
  /// centre) and must outlive the cluster head.
  ClusterHead(sim::Simulator& simulator, net::BasicNode& node,
              net::Backbone& backbone, const mobility::ZoneMap& zones,
              common::ClusterId clusterId);
  ~ClusterHead() override;

  ClusterHead(const ClusterHead&) = delete;
  ClusterHead& operator=(const ClusterHead&) = delete;

  [[nodiscard]] common::ClusterId clusterId() const { return clusterId_; }
  [[nodiscard]] common::Address address() const {
    return node_.localAddress();
  }

  // ---- membership ----
  [[nodiscard]] bool isMember(common::Address vehicle) const {
    return members_.contains(vehicle);
  }
  [[nodiscard]] bool isFormerMember(common::Address vehicle) const {
    return history_.contains(vehicle);
  }
  [[nodiscard]] std::size_t memberCount() const { return members_.size(); }
  [[nodiscard]] std::vector<common::Address> members() const;
  /// Record of a member that has left (history table), if any.
  [[nodiscard]] std::optional<MemberRecord> historyRecord(
      common::Address vehicle) const;
  [[nodiscard]] std::optional<MemberRecord> memberRecord(
      common::Address vehicle) const;

  [[nodiscard]] const mobility::ZoneMap& zones() const { return zones_; }

  // ---- revocation / blacklist ----
  /// Records a revocation (from the TA subscription), drops the member, and
  /// broadcasts an announcement so members blacklist the attacker.
  void applyRevocation(const crypto::RevocationNotice& notice);
  [[nodiscard]] const crypto::RevocationStore& revocations() const {
    return revocations_;
  }
  [[nodiscard]] crypto::RevocationStore& revocations() { return revocations_; }

  // ---- extension hooks ----
  void setFrameHook(FrameHook hook) { frameHook_ = std::move(hook); }
  void setBackboneHook(BackboneHook hook) { backboneHook_ = std::move(hook); }
  void setBackboneFailureHook(BackboneFailureHook hook) {
    backboneFailureHook_ = std::move(hook);
  }

  // ---- failover ----
  /// Advertises the adjacent cluster heads in every JREP so members can
  /// re-home when this CH dies. Off (empty) by default — the wire format and
  /// byte counters of an unfaulted run stay identical to the seed.
  void setNeighborAnnouncement(std::vector<NeighborChInfo> neighbors) {
    neighborAnnouncement_ = std::move(neighbors);
  }

  // ---- fault injection ----
  /// RSU failure: off the air, off the backbone, volatile member table lost
  /// (members move to the history table, mirroring what a rebooted RSU could
  /// reconstruct from persistent logs). Idempotent.
  void crash();
  /// RSU recovery: back on the air and the backbone. Members must re-join.
  void recover();
  [[nodiscard]] bool isCrashed() const { return crashed_; }

  /// Sends a payload to a peer CH over the wired backbone.
  void sendOnBackbone(common::ClusterId to, net::PayloadPtr payload);

  void onBackboneMessage(common::ClusterId from,
                         const net::PayloadPtr& payload) override;
  void onBackboneSendFailed(common::ClusterId to,
                            const net::PayloadPtr& payload) override;

  [[nodiscard]] const ClusterHeadStats& stats() const { return stats_; }
  [[nodiscard]] net::BasicNode& node() { return node_; }
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }

  /// Checkpoint support: member + history tables (sorted by vehicle address
  /// for canonical bytes), the revocation store, and counters. Hooks, the
  /// neighbor announcement, and the node wiring are rebuilt from config by
  /// the restoring world. Restoring into a crashed CH is a caller error.
  void saveState(common::ByteWriter& w) const;
  void restoreState(common::ByteReader& r);

 private:
  bool onFrame(const net::Frame& frame);
  void handleJoin(const JoinRequest& jreq);
  void handleLeave(const LeaveNotice& leave);

  sim::Simulator& simulator_;
  net::BasicNode& node_;
  net::Backbone& backbone_;
  const mobility::ZoneMap& zones_;
  common::ClusterId clusterId_;
  std::unordered_map<common::Address, MemberRecord> members_;
  std::unordered_map<common::Address, MemberRecord> history_;
  crypto::RevocationStore revocations_;
  ClusterHeadStats stats_;
  FrameHook frameHook_;
  BackboneHook backboneHook_;
  BackboneFailureHook backboneFailureHook_;
  std::vector<NeighborChInfo> neighborAnnouncement_;
  bool crashed_{false};
};

}  // namespace blackdp::cluster
