// Vehicle-side cluster membership.
//
// Tracks which cluster the vehicle is in, performs the join/leave protocol
// as the trajectory crosses segment boundaries, learns the cluster head's
// address from the JREP, and maintains the local blacklist fed by CH
// revocation announcements (and by the revocation list piggybacked on JREP
// for newly joined vehicles).
#pragma once

#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "cluster/messages.hpp"
#include "mobility/zone_map.hpp"
#include "net/node.hpp"

namespace blackdp::cluster {

struct MembershipStats {
  std::uint64_t joinsSent{0};
  std::uint64_t joinsConfirmed{0};
  std::uint64_t leavesSent{0};
  std::uint64_t revocationsLearned{0};
  std::uint64_t chFailovers{0};        ///< re-homed to a neighbor CH
  std::uint64_t localBlacklists{0};    ///< quarantined without TA revocation
};

class MembershipClient {
 public:
  using JoinedCallback = std::function<void(common::ClusterId cluster,
                                            common::Address chAddress)>;
  /// Invoked when the vehicle's trajectory leaves the highway.
  using ExitCallback = std::function<void()>;

  MembershipClient(sim::Simulator& simulator, net::BasicNode& node,
                   const mobility::ZoneMap& zones);

  MembershipClient(const MembershipClient&) = delete;
  MembershipClient& operator=(const MembershipClient&) = delete;

  /// Joins the cluster containing the current position and starts tracking
  /// boundary crossings along the trajectory.
  void start();

  [[nodiscard]] std::optional<common::ClusterId> currentCluster() const {
    return currentCluster_;
  }
  [[nodiscard]] std::optional<common::Address> clusterHeadAddress() const {
    return clusterHead_;
  }

  /// True iff `address` has been blacklisted via a revocation announcement
  /// or a local quarantine decision.
  [[nodiscard]] bool isBlacklisted(common::Address address) const {
    return blacklist_.contains(address);
  }
  [[nodiscard]] std::size_t blacklistSize() const { return blacklist_.size(); }

  /// Local quarantine: blacklists `address` on this vehicle only, without a
  /// TA revocation. The degraded isolation mode the source verifier falls
  /// back to when no cluster head is reachable.
  void blacklistLocally(common::Address address);

  /// Neighbor CHs advertised in the latest JREP (failover candidates).
  [[nodiscard]] const std::vector<NeighborChInfo>& fallbackHeads() const {
    return fallbacks_;
  }

  void setJoinedCallback(JoinedCallback cb) { onJoined_ = std::move(cb); }
  void setExitCallback(ExitCallback cb) { onExit_ = std::move(cb); }

  /// Re-runs leave/join after the node's trajectory changed out of band
  /// (pseudonym renewal re-join, or an attacker fleeing to another segment).
  /// Sends a LeaveNotice to the old CH when the cluster changed, then a
  /// fresh JREQ, and reschedules boundary tracking.
  void forceRejoin();

  [[nodiscard]] const MembershipStats& stats() const { return stats_; }

 private:
  bool onFrame(const net::Frame& frame);
  void onSendFailed(const net::Frame& frame);
  void sendJoin();
  void scheduleBoundaryCrossing();
  void onBoundaryCrossing();

  sim::Simulator& simulator_;
  net::BasicNode& node_;
  const mobility::ZoneMap& zones_;
  std::optional<common::ClusterId> currentCluster_;
  std::optional<common::Address> clusterHead_;
  std::vector<NeighborChInfo> fallbacks_;
  std::unordered_set<common::Address> blacklist_;
  MembershipStats stats_;
  JoinedCallback onJoined_;
  ExitCallback onExit_;
  sim::EventHandle boundaryTimer_;
  bool started_{false};
};

}  // namespace blackdp::cluster
