// Cluster-management messages (paper §III-A, "Connected Vehicles Network
// Model"): join request/reply, leave notice, and the CH→members revocation
// announcement used during black hole isolation.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "crypto/certificate.hpp"
#include "mobility/motion.hpp"
#include "net/frame.hpp"

namespace blackdp::cluster {

/// JREQ: vehicle identity, speed, position and direction (broadcast in
/// overlapped zones so the appropriate CH can claim the vehicle).
class JoinRequest final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind = net::PayloadKind::kJoinRequest;
  JoinRequest() : Payload(kKind) {}

  common::Address vehicle{};
  mobility::Position position{};
  double speedMps{0.0};
  mobility::Direction direction{mobility::Direction::kEastbound};

  [[nodiscard]] std::string_view typeName() const override { return "jreq"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 56; }
};

/// Adjacent cluster head advertised in a JREP (failover candidate).
struct NeighborChInfo {
  common::ClusterId cluster{};
  common::Address address{};
};

/// JREP: carries the cluster head identity the vehicle must include in
/// subsequent packets, plus the currently active revocation notices so a
/// newly joined vehicle learns about attackers immediately. When CH failover
/// is enabled the reply also advertises the adjacent cluster heads so a
/// member losing its CH can re-home without re-discovery.
class JoinReply final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind = net::PayloadKind::kJoinReply;
  JoinReply() : Payload(kKind) {}

  common::Address vehicle{};            ///< addressee
  common::ClusterId cluster{};
  common::Address clusterHeadAddress{};
  std::vector<crypto::RevocationNotice> activeRevocations{};
  std::vector<NeighborChInfo> neighbors{};  ///< empty unless failover enabled

  [[nodiscard]] std::string_view typeName() const override { return "jrep"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override {
    return 40 + static_cast<std::uint32_t>(activeRevocations.size()) * 24 +
           static_cast<std::uint32_t>(neighbors.size()) * 12;
  }
};

/// Leaving-cluster packet: the CH moves the member to its history table.
class LeaveNotice final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind = net::PayloadKind::kLeaveNotice;
  LeaveNotice() : Payload(kKind) {}

  common::Address vehicle{};

  [[nodiscard]] std::string_view typeName() const override { return "leave"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 24; }
};

/// CH → members: a certificate has been revoked; blacklist its holder.
class RevocationAnnouncement final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind =
      net::PayloadKind::kRevocationAnnouncement;
  RevocationAnnouncement() : Payload(kKind) {}

  crypto::RevocationNotice notice{};

  [[nodiscard]] std::string_view typeName() const override { return "revoke"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 48; }
};

}  // namespace blackdp::cluster
