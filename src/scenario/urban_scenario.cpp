#include "scenario/urban_scenario.hpp"

#include "common/assert.hpp"

namespace blackdp::scenario {

namespace {
constexpr std::uint32_t kRsuNodeIdBase = 200'000;
constexpr std::uint64_t kRsuAddressBase = 500;
}  // namespace

UrbanScenario::UrbanScenario(UrbanConfig config)
    : config_{config},
      seeds_{config.seed},
      rng_{seeds_.stream("urban-placement")},
      grid_{config.blocksX, config.blocksY, config.blockM} {
  engine_ =
      std::make_unique<crypto::CryptoEngine>(seeds_.deriveSeed("crypto"));
  taNetwork_ =
      std::make_unique<crypto::TaNetwork>(simulator_, *engine_, config_.ta);
  net::MediumConfig mediumConfig = config_.medium;
  mediumConfig.transmissionRangeM = config_.transmissionRangeM;
  medium_ = std::make_unique<net::WirelessMedium>(
      simulator_, seeds_.stream("medium"), mediumConfig);
  backbone_ = std::make_unique<net::Backbone>(simulator_);
  buildWorld();
}

UrbanScenario::~UrbanScenario() = default;

void UrbanScenario::buildWorld() {
  for (std::uint32_t i = 0; i < std::max(config_.taCount, 1u); ++i) {
    taIds_.push_back(taNetwork_->addAuthority());
  }

  // One RSU per intersection.
  for (std::uint32_t zone = 1; zone <= grid_.zoneCount(); ++zone) {
    auto rsu = std::make_unique<RsuEntity>();
    rsu->cluster = common::ClusterId{zone};
    rsu->node = std::make_unique<net::BasicNode>(
        simulator_, *medium_, common::NodeId{kRsuNodeIdBase + zone},
        mobility::LinearMotion::stationary(
            grid_.zoneCenter(common::ClusterId{zone})));
    rsu->node->setLocalAddress(common::Address{kRsuAddressBase + zone});
    rsu->head = std::make_unique<cluster::ClusterHead>(
        simulator_, *rsu->node, *backbone_, grid_, rsu->cluster);
    rsu->detector = std::make_unique<core::RsuDetector>(
        simulator_, *rsu->head, *taNetwork_, *engine_, config_.detector);
    taNetwork_->subscribeRevocations(
        [head = rsu->head.get()](const crypto::RevocationNotice& notice) {
          head->applyRevocation(notice);
        });
    rsus_.push_back(std::move(rsu));
  }

  // Source at the south-west corner, destination at the north-east corner —
  // the longest multi-hop path the grid offers.
  source_ = &addVehicle(0, 0, false, attack::AttackRole::kSingle);
  destination_ = &addVehicle(grid_.intersectionsX() - 1,
                             grid_.intersectionsY() - 1, false,
                             attack::AttackRole::kSingle);

  if (config_.attack != AttackType::kNone) {
    const attack::AttackRole primaryRole =
        config_.attack == AttackType::kCooperative
            ? attack::AttackRole::kPrimary
            : attack::AttackRole::kSingle;
    primaryAttacker_ = &addVehicle(config_.attackerIx, config_.attackerIy,
                                   true, primaryRole);
    const double separation = mobility::distance(
        primaryAttacker_->node->radioPosition(),
        destination_->node->radioPosition());
    BDP_ASSERT_MSG(separation > config_.transmissionRangeM,
                   "attacker must start out of the destination's range");
    if (config_.attack == AttackType::kCooperative) {
      // Teammate at the same intersection (mutual range guaranteed).
      accomplice_ = &addVehicle(config_.attackerIx, config_.attackerIy, true,
                                attack::AttackRole::kAccomplice);
      primaryAttacker_->attacker->setTeammate(accomplice_->address());
    }
  }

  // Background fleet: round-robin over intersections.
  std::uint32_t next = 0;
  while (vehicles_.size() < config_.vehicleCount) {
    const std::uint32_t ix = next % grid_.intersectionsX();
    const std::uint32_t iy =
        (next / grid_.intersectionsX()) % grid_.intersectionsY();
    ++next;
    addVehicle(ix, iy, false, attack::AttackRole::kSingle);
  }
}

VehicleEntity& UrbanScenario::addVehicle(std::uint32_t ix, std::uint32_t iy,
                                         bool isAttacker,
                                         attack::AttackRole role) {
  auto vehicle = std::make_unique<VehicleEntity>();
  vehicle->nodeId = common::NodeId{nextNodeId_++};
  vehicle->node = std::make_unique<net::BasicNode>(
      simulator_, *medium_, vehicle->nodeId,
      mobility::LinearMotion::stationary(grid_.intersectionAt(ix, iy)));
  vehicle->membership = std::make_unique<cluster::MembershipClient>(
      simulator_, *vehicle->node, grid_);

  if (isAttacker) {
    attack::BlackHoleConfig attackConfig;  // no evasion in the urban study
    auto agent = std::make_unique<attack::BlackHoleAgent>(
        simulator_, *vehicle->node, role, attackConfig,
        seeds_.stream("attacker-" + std::to_string(vehicle->nodeId.value())));
    vehicle->attacker = agent.get();
    vehicle->agent = std::move(agent);
  } else {
    vehicle->agent = std::make_unique<aodv::AodvAgent>(
        simulator_, *vehicle->node, config_.aodv);
  }

  enroll(*vehicle);

  vehicle->membership->setJoinedCallback(
      [agent = vehicle->agent.get()](common::ClusterId joined,
                                     common::Address) {
        agent->setCurrentCluster(joined);
      });
  vehicle->membership->setExitCallback(
      [node = vehicle->node.get()] { node->detachFromMedium(); });

  if (!isAttacker) {
    vehicle->verifier = std::make_unique<core::SourceVerifier>(
        simulator_, *vehicle->node, *vehicle->agent, *vehicle->membership,
        *taNetwork_, *engine_, config_.verifier);
  }

  // Turn-by-turn driver. The leg callback re-arms zone tracking (and the
  // leave/join protocol) against the new trajectory.
  const double speed = mobility::kmhToMps(
      rng_.uniformReal(config_.minSpeedKmh, config_.maxSpeedKmh));
  auto driver = std::make_unique<mobility::UrbanMobilityController>(
      simulator_, grid_, speed,
      seeds_.stream("driver-" + std::to_string(vehicle->nodeId.value())),
      [node = vehicle->node.get()](const mobility::LinearMotion& motion) {
        node->setMotion(motion);
      });

  vehicle->membership->start();
  driver->setLegCallback(
      [membership = vehicle->membership.get()] { membership->forceRejoin(); });
  const auto exits = grid_.exitsFrom(ix, iy);
  driver->start(ix, iy, exits[rng_.index(exits.size())]);

  drivers_.push_back(std::move(driver));
  vehicles_.push_back(std::move(vehicle));
  return *vehicles_.back();
}

void UrbanScenario::enroll(VehicleEntity& vehicle) {
  vehicle.ta = taIds_[vehicle.nodeId.value() % taIds_.size()];
  auto enrollment = taNetwork_->enroll(vehicle.ta, vehicle.nodeId);
  BDP_ASSERT(enrollment.ok());
  const crypto::Enrollment& e = enrollment.value();
  vehicle.node->setLocalAddress(e.certificate.pseudonym);
  vehicle.agent->setCredentials({e.certificate, e.privateKey}, engine_.get());
  if (vehicle.isAttacker()) {
    attackerPseudonyms_[e.certificate.pseudonym] = vehicle.nodeId;
  }
}

void UrbanScenario::runFor(sim::Duration span) {
  simulator_.run(simulator_.now() + span);
}

bool UrbanScenario::runUntil(const std::function<bool()>& predicate,
                             sim::Duration cap) {
  const sim::TimePoint deadline = simulator_.now() + cap;
  while (!predicate()) {
    if (simulator_.now() > deadline) break;
    if (!simulator_.step()) break;
  }
  return predicate();
}

core::VerificationReport UrbanScenario::runVerification() {
  runFor(sim::Duration::milliseconds(500));
  core::VerificationReport report;
  bool done = false;
  source_->verifier->establishVerifiedRoute(
      destination_->address(), [&](const core::VerificationReport& r) {
        report = r;
        done = true;
      });
  const bool finished = runUntil([&] { return done; }, config_.trialTimeout);
  BDP_ASSERT_MSG(finished, "urban verification did not complete");
  runFor(sim::Duration::seconds(2));
  return report;
}

DetectionSummary UrbanScenario::detectionSummary() const {
  DetectionSummary summary;
  for (const auto& rsu : rsus_) {
    for (const core::SessionRecord& record :
         rsu->detector->completedSessions()) {
      summary.sessions.push_back(record);
      const bool confirmed =
          record.verdict == core::Verdict::kSingleBlackHole ||
          record.verdict == core::Verdict::kCooperativeBlackHole;
      if (confirmed) {
        summary.anyConfirmed = true;
        summary.verdict = record.verdict;
        if (attackerPseudonyms_.contains(record.suspect)) {
          summary.confirmedOnAttacker = true;
        } else {
          summary.falsePositive = true;
        }
      }
      if (summary.packetsUsed == 0) summary.packetsUsed = record.packetsUsed;
    }
  }
  return summary;
}

}  // namespace blackdp::scenario
