// Streaming-ingest detector world (detector-as-a-service mode).
//
// Batch scenarios (HighwayScenario) model a finite trial: vehicles drive,
// attacks happen, the run ends and tests inspect the full history. A
// *service* deployment is different: the detector fleet ingests an unbounded
// d_req stream, must hold a hard memory watermark (no table may grow with
// stream length), and must survive being killed at an arbitrary epoch
// boundary and resumed from a checkpoint byte-identically.
//
// StreamWorld is the deterministic harness for that mode. Topology is
// deliberately degenerate — one stationary driver node per cluster hosts
// every population member (honest reporters, liar reporters, honest
// suspects, black holes, accomplices) as an alias at the cluster centre and
// answers the detector's probes in-character — because the subject under
// test is the detector service (verification table, reporter ledger, CH
// tables, TA state), not mobility. All latencies are zero, so every
// injection's cascade completes within its own timestamp and an epoch
// boundary is a natural cut: the only events crossing it are re-armable
// detector timers, which checkpoint as (kind, deadline, armSeq) metadata.
//
// Determinism contract:
//   - planEpoch(k) is a pure function of (seed, k): the injection schedule
//     never depends on world state, so a resumed run plans exactly the
//     epochs an uninterrupted run would have planned.
//   - all cross-detector timer arms draw from one shared arm-sequence
//     counter, so a checkpoint can replay the global FIFO order of timers
//     that share a deadline.
//   - saveCheckpoint() at epoch boundary k, restored into a freshly built
//     world, replays epochs k.. byte-identically (pinned by tests and CI).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "codec/checkpoint.hpp"
#include "common/result.hpp"
#include "core/rsu_detector.hpp"
#include "crypto/trusted_authority.hpp"
#include "mobility/highway.hpp"
#include "net/backbone.hpp"
#include "net/medium.hpp"
#include "net/node.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace blackdp::scenario {

/// Per-cluster population sizes. Every member is an alias on the cluster's
/// driver node, enrolled at the TA and joined to the CH at t = 0.
struct StreamPopulation {
  std::uint32_t honestReporters{4};
  std::uint32_t liarReporters{2};
  std::uint32_t honestSuspects{2};
  std::uint32_t blackHoles{2};
  std::uint32_t accomplices{1};
};

/// Detector defaults for service mode: hardening + accusation-channel
/// defense on, verification-table TTL sweep on, completed-record cap and
/// idle-ledger TTL set — every table the stream can touch is bounded.
[[nodiscard]] core::DetectorConfig streamDetectorDefaults();

struct StreamConfig {
  std::uint64_t seed{2024};
  std::uint32_t clusters{3};
  StreamPopulation population{};
  /// d_req injections per cluster per epoch.
  std::uint32_t dreqsPerEpoch{6};
  sim::Duration epochLength{sim::Duration::seconds(1)};
  /// Long-lived certificates: a service soak spans many nominal cert
  /// lifetimes and re-enrollment is not the subject under test.
  sim::Duration certificateLifetime{sim::Duration::seconds(7200)};
  core::DetectorConfig detector{streamDetectorDefaults()};
};

/// What one injected d_req is (the recorded trace replays these).
enum class InjectionKind : std::uint8_t {
  kHonestAccusation = 0,  ///< honest reporter accuses a black hole
  kFalseAccusation = 1,   ///< liar reporter accuses an honest suspect
  kReplayedDreq = 2,      ///< byte-identical duplicate of an earlier d_req
  kBadSignature = 3,      ///< envelope signature corrupted in flight
  kUnknownSuspect = 4,    ///< invented suspect claimed in another cluster
};
inline constexpr std::size_t kInjectionKinds = 5;

[[nodiscard]] std::string_view toString(InjectionKind kind);

/// One planned d_req injection. Pure data: crafting the packet from a spec
/// is deterministic, so the generator and the trace replayer share one code
/// path and produce identical traffic.
struct InjectionSpec {
  std::uint32_t cluster{1};  ///< 1-based, reporter's home cluster
  std::int64_t offsetUs{0};  ///< offset inside the epoch, 0 < offset < E
  InjectionKind kind{InjectionKind::kHonestAccusation};
  std::uint32_t reporterIndex{0};  ///< into the honest- or liar-reporter pool
  std::uint32_t targetIndex{0};    ///< into the kind's target pool
  std::uint64_t suspectAddr{0};    ///< kUnknownSuspect: invented address
  std::uint32_t targetCluster{0};  ///< kUnknownSuspect: claimed cluster
  std::uint64_t nonce{0};

  friend bool operator==(const InjectionSpec&, const InjectionSpec&) = default;
};

/// One line of the recorded d_req trace (JSONL). `epoch` keys the line to
/// its epoch so a replay drives the same specs through the same boundaries.
void appendInjectionJson(std::string& out, std::uint64_t epoch,
                         const InjectionSpec& spec);
/// Parses a trace line. nullopt on malformed input.
[[nodiscard]] std::optional<std::pair<std::uint64_t, InjectionSpec>>
parseInjectionJson(std::string_view line);

/// A verdict the stream population received (DetectionResponse timeline).
/// Recorded only when verdict recording is on (replay server A/B diffing);
/// the rolling hash and counters are always maintained.
struct VerdictEvent {
  std::int64_t timeUs{0};
  std::uint64_t reporter{0};
  std::uint64_t suspect{0};
  std::uint8_t verdict{0};
  std::uint64_t accomplice{0};

  friend bool operator==(const VerdictEvent&, const VerdictEvent&) = default;
};

/// Aggregated deterministic counters. Two runs of the same (seed, epochs)
/// — interrupted or not — must produce identical metrics; CI pins this.
struct StreamMetrics {
  std::uint64_t epochsRun{0};
  std::uint64_t injectedByKind[kInjectionKinds]{};
  std::uint64_t responsesByVerdict[4]{};
  /// FNV-1a over every DetectionResponse (time, reporter, suspect, verdict,
  /// accomplice) in delivery order: one number pins the whole timeline.
  std::uint64_t verdictHash{14695981039346656037ull};
  std::uint64_t revocationAnnouncements{0};
  // Detector-fleet aggregates (sums over clusters).
  std::uint64_t dreqReceived{0};
  std::uint64_t dreqRejectedAuth{0};
  std::uint64_t dreqRateLimited{0};
  std::uint64_t dreqReplayed{0};
  std::uint64_t dreqDeduplicated{0};
  std::uint64_t probesSent{0};
  std::uint64_t confirmations{0};
  std::uint64_t isolations{0};
  std::uint64_t exonerations{0};
  std::uint64_t expiredSessions{0};
  std::uint64_t completedTotal{0};
  std::uint64_t completedEvicted{0};
  std::uint64_t ledgerEvictions{0};
  // Gauges (watermark inputs; bounded by checkInvariants()).
  std::uint64_t activeSessions{0};
  std::uint64_t trackedReporters{0};
  std::uint64_t noncesCached{0};
  std::uint64_t completedRetained{0};
  std::uint64_t pendingEvents{0};

  /// Flat JSON object with a stable key order (CI compares byte-wise).
  [[nodiscard]] std::string toJson() const;
};

class StreamWorld {
 public:
  explicit StreamWorld(StreamConfig config);
  ~StreamWorld();

  StreamWorld(const StreamWorld&) = delete;
  StreamWorld& operator=(const StreamWorld&) = delete;

  [[nodiscard]] const StreamConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t clusterCount() const {
    return config_.clusters;
  }
  /// Next epoch to run (== epochs completed so far).
  [[nodiscard]] std::uint64_t nextEpoch() const { return nextEpoch_; }
  [[nodiscard]] sim::TimePoint now() const { return simulator_.now(); }
  /// The shared radio medium (bench instrumentation: frame counters).
  [[nodiscard]] const net::WirelessMedium& medium() const { return *medium_; }

  /// The injection schedule for epoch k — a pure function of (seed, k).
  [[nodiscard]] std::vector<InjectionSpec> planEpoch(std::uint64_t epoch) const;

  /// Plans and runs the next epoch: schedules every injection, runs the
  /// simulator to the epoch boundary, pins the clock there.
  void runEpoch();
  /// Replay path: runs the next epoch from an explicit spec list (recorded
  /// trace) instead of planEpoch. Same crafting code, same boundaries.
  void runEpochFromSpecs(const std::vector<InjectionSpec>& specs);

  /// Serializes the whole detection-service state into one checkpoint
  /// envelope. Call only at an epoch boundary (immediately after runEpoch).
  [[nodiscard]] common::Bytes saveCheckpoint();
  /// Restores a checkpoint into this world. The world must be freshly
  /// built (no epoch run yet) with the same StreamConfig; a config or
  /// version mismatch is a typed error and leaves the world untouched only
  /// in the mismatch cases checked up front.
  [[nodiscard]] common::Status restoreCheckpoint(
      std::span<const std::uint8_t> blob);

  [[nodiscard]] StreamMetrics metrics() const;

  /// Hard memory-watermark invariants: every detector-service table is
  /// bounded by the configured caps, independent of how many epochs have
  /// streamed through. Returns human-readable violations (empty = healthy).
  [[nodiscard]] std::vector<std::string> checkInvariants() const;

  /// Retain the full DetectionResponse timeline (replay server A/B diff).
  /// Off by default — a soak only keeps the rolling hash and counters.
  void recordVerdicts(bool on) { recordVerdicts_ = on; }
  [[nodiscard]] const std::vector<VerdictEvent>& verdictTimeline() const {
    return verdictTimeline_;
  }

  [[nodiscard]] const core::RsuDetector& detector(std::uint32_t cluster) const;

 private:
  enum class Role : std::uint8_t {
    kHonestReporter,
    kLiarReporter,
    kHonestSuspect,
    kBlackHole,
    kAccomplice,
  };
  struct Member {
    common::NodeId nodeId{};
    common::Address address{};
    aodv::Credentials creds{};
  };
  struct ClusterWorld {
    common::ClusterId id{};
    std::unique_ptr<net::BasicNode> rsuNode;
    std::unique_ptr<cluster::ClusterHead> head;
    std::unique_ptr<core::RsuDetector> detector;
    /// Hosts every population alias; answers probes in-character.
    std::unique_ptr<net::BasicNode> driver;
    std::vector<Member> honestReporters;
    std::vector<Member> liarReporters;
    std::vector<Member> honestSuspects;
    std::vector<Member> blackHoles;
    std::vector<Member> accomplices;
    std::unordered_map<common::Address, Role> roles;
  };

  void buildWorld();
  Member enrollMember(ClusterWorld& cw, common::TaId ta, common::NodeId nodeId);
  bool onDriverFrame(ClusterWorld& cw, const net::Frame& frame);
  void answerProbe(ClusterWorld& cw, const aodv::RouteRequest& rreq,
                   common::Address probedAlias, bool supportive);
  void injectFromSpec(const InjectionSpec& spec);
  void runEpochInternal(const std::vector<InjectionSpec>& specs);
  [[nodiscard]] std::uint64_t configHash() const;

  StreamConfig config_;
  sim::SeedSequence seeds_;
  sim::Simulator simulator_;
  mobility::Highway highway_;
  std::unique_ptr<crypto::CryptoEngine> engine_;
  std::unique_ptr<crypto::TaNetwork> taNetwork_;
  std::unique_ptr<net::WirelessMedium> medium_;
  std::unique_ptr<net::Backbone> backbone_;
  std::vector<std::unique_ptr<ClusterWorld>> clusters_;

  std::uint64_t nextEpoch_{0};
  /// Shared timer arm-order counter (see RsuDetector::shareArmSequence).
  std::uint64_t armSeq_{0};

  // Stream-driver dynamic state (checkpointed in the kStream section).
  std::uint64_t injectedByKind_[kInjectionKinds]{};
  std::uint64_t responsesByVerdict_[4]{};
  std::uint64_t verdictHash_{14695981039346656037ull};
  std::uint64_t revocationAnnouncements_{0};

  bool recordVerdicts_{false};
  std::vector<VerdictEvent> verdictTimeline_;
};

}  // namespace blackdp::scenario
