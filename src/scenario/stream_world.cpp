#include "scenario/stream_world.hpp"

#include <algorithm>
#include <sstream>
#include <string>

#include "cluster/messages.hpp"
#include "common/assert.hpp"
#include "core/secure.hpp"
#include "obs/json.hpp"

namespace blackdp::scenario {
namespace {

// Node-id / address blocks disjoint from the TA's pseudonym counter (1000+),
// the detector's reserved probe range, and the invented-suspect range.
constexpr std::uint32_t kStreamRsuNodeIdBase = 600'000;
constexpr std::uint32_t kStreamDriverNodeIdBase = 500'000;
constexpr std::uint64_t kStreamRsuAddressBase = 100;
/// Invented suspects come from the plausible vehicle address space (the
/// same range hardened type-A probes draw from — nobody owns it).
constexpr std::uint64_t kUnknownSuspectBase = 0x10000000ull;
constexpr std::uint64_t kUnknownSuspectSpan = 0x0FFFFFFFull;

constexpr double kClusterLengthM = 1000.0;
constexpr double kHighwayWidthM = 200.0;
/// Below the 1000 m cluster spacing: clusters are radio-isolated, so
/// cross-cluster detection traffic travels the backbone only.
constexpr double kTransmissionRangeM = 400.0;

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

core::DetectorConfig streamDetectorDefaults() {
  core::DetectorConfig config;
  // Service mode: anti-evasion probing plus the accusation-channel defense
  // (rate limit, replay cache, demerits) — the stream is adversarial.
  config.hardening.enabled = true;
  // Every table the stream touches gets a bound: verification entries are
  // TTL-swept, completed records are capped, idle ledger entries evicted.
  config.sessionTtl = sim::Duration::seconds(5);
  config.completedCap = 256;
  config.hardening.ledger.entryTtl = sim::Duration::seconds(30);
  return config;
}

std::string_view toString(InjectionKind kind) {
  switch (kind) {
    case InjectionKind::kHonestAccusation: return "honest";
    case InjectionKind::kFalseAccusation: return "false-accusation";
    case InjectionKind::kReplayedDreq: return "replay";
    case InjectionKind::kBadSignature: return "bad-signature";
    case InjectionKind::kUnknownSuspect: return "unknown-suspect";
  }
  return "?";
}

// ----------------------------------------------------------- construction

StreamWorld::StreamWorld(StreamConfig config)
    : config_{config},
      seeds_{config.seed},
      highway_{static_cast<double>(config.clusters) * kClusterLengthM,
               kHighwayWidthM, kClusterLengthM} {
  BDP_ASSERT_MSG(config_.clusters >= 1, "stream world needs a cluster");
  BDP_ASSERT_MSG(config_.dreqsPerEpoch >= 1, "stream world needs traffic");
  BDP_ASSERT_MSG(config_.epochLength.us() >
                     static_cast<std::int64_t>(config_.dreqsPerEpoch),
                 "epoch too short for the injection slots");
  const StreamPopulation& pop = config_.population;
  BDP_ASSERT_MSG(pop.honestReporters >= 1 && pop.liarReporters >= 1 &&
                     pop.honestSuspects >= 1 && pop.blackHoles >= 1,
                 "every injection kind needs a non-empty pool");

  engine_ = std::make_unique<crypto::CryptoEngine>(seeds_.deriveSeed("crypto"));
  crypto::TaConfig taConfig;
  taConfig.certificateLifetime = config_.certificateLifetime;
  // Zero-latency world: all cascades complete within their own timestamp,
  // so an epoch boundary only ever has re-armable detector timers pending.
  taConfig.propagationDelay = sim::Duration{};
  taNetwork_ =
      std::make_unique<crypto::TaNetwork>(simulator_, *engine_, taConfig);
  net::MediumConfig mediumConfig;
  mediumConfig.transmissionRangeM = kTransmissionRangeM;
  mediumConfig.perHopLatency = sim::Duration{};
  mediumConfig.maxJitter = sim::Duration{};
  medium_ = std::make_unique<net::WirelessMedium>(
      simulator_, seeds_.stream("medium"), mediumConfig);
  backbone_ = std::make_unique<net::Backbone>(simulator_, sim::Duration{});
  buildWorld();
}

StreamWorld::~StreamWorld() = default;

void StreamWorld::buildWorld() {
  const common::TaId ta = taNetwork_->addAuthority();

  for (std::uint32_t c = 1; c <= config_.clusters; ++c) {
    auto world = std::make_unique<ClusterWorld>();
    world->id = common::ClusterId{c};
    const mobility::Position center = highway_.clusterCenter(world->id);

    world->rsuNode = std::make_unique<net::BasicNode>(
        simulator_, *medium_, common::NodeId{kStreamRsuNodeIdBase + c},
        mobility::LinearMotion::stationary(center));
    world->rsuNode->setLocalAddress(common::Address{kStreamRsuAddressBase + c});
    world->head = std::make_unique<cluster::ClusterHead>(
        simulator_, *world->rsuNode, *backbone_, highway_, world->id);
    taNetwork_->subscribeRevocations(
        [head = world->head.get()](const crypto::RevocationNotice& notice) {
          head->applyRevocation(notice);
        });

    core::DetectorConfig detectorConfig = config_.detector;
    if (detectorConfig.probeSeed == 0) {
      detectorConfig.probeSeed =
          seeds_.deriveSeed("stream-detector-" + std::to_string(c));
    }
    world->detector = std::make_unique<core::RsuDetector>(
        simulator_, *world->head, *taNetwork_, *engine_, detectorConfig);
    // One world-shared arm counter: timers armed by different detectors at
    // the same deadline keep their global FIFO order across a checkpoint.
    world->detector->shareArmSequence(&armSeq_);

    world->driver = std::make_unique<net::BasicNode>(
        simulator_, *medium_, common::NodeId{kStreamDriverNodeIdBase + c},
        mobility::LinearMotion::stationary(center));
    world->driver->addHandler(
        [this, cw = world.get()](const net::Frame& frame) {
          return onDriverFrame(*cw, frame);
        });

    clusters_.push_back(std::move(world));
  }

  // Enrollment in a fixed global order: the TA's pseudonym/serial counters
  // and the crypto engine's key-generation stream advance identically every
  // build, so a restored world reconstructs the exact same identities.
  std::uint32_t nextNodeId = 1;
  const StreamPopulation& pop = config_.population;
  for (const auto& world : clusters_) {
    auto fill = [&](std::vector<Member>& group, std::uint32_t count,
                    Role role) {
      for (std::uint32_t i = 0; i < count; ++i) {
        Member member = enrollMember(*world, ta, common::NodeId{nextNodeId++});
        world->roles.emplace(member.address, role);
        group.push_back(std::move(member));
      }
    };
    fill(world->honestReporters, pop.honestReporters, Role::kHonestReporter);
    fill(world->liarReporters, pop.liarReporters, Role::kLiarReporter);
    fill(world->honestSuspects, pop.honestSuspects, Role::kHonestSuspect);
    fill(world->blackHoles, pop.blackHoles, Role::kBlackHole);
    fill(world->accomplices, pop.accomplices, Role::kAccomplice);
  }

  // Every member joins its cluster head (broadcast JREQ; the zone owner
  // claims it). Zero latency: the join handshakes all land at t = 0.
  for (const auto& world : clusters_) {
    const mobility::Position center = highway_.clusterCenter(world->id);
    auto join = [&](const std::vector<Member>& group) {
      for (const Member& member : group) {
        auto jreq = net::makeMutablePayload<cluster::JoinRequest>();
        jreq->vehicle = member.address;
        jreq->position = center;
        jreq->speedMps = 0.0;
        jreq->direction = mobility::Direction::kEastbound;
        world->driver->sendFromAlias(member.address, common::kBroadcastAddress,
                                     jreq);
      }
    };
    join(world->honestReporters);
    join(world->liarReporters);
    join(world->honestSuspects);
    join(world->blackHoles);
    join(world->accomplices);
  }

  // Flush the t = 0 setup cascade so the world starts an epoch with an
  // empty queue — restoreCheckpoint() fast-forwards over this point and
  // must not skip live events.
  simulator_.run(sim::TimePoint::fromUs(0));

  const std::size_t expectedMembers = pop.honestReporters + pop.liarReporters +
                                      pop.honestSuspects + pop.blackHoles +
                                      pop.accomplices;
  for (const auto& cluster : clusters_) {
    BDP_ASSERT_MSG(cluster->head->memberCount() == expectedMembers,
                   "stream population failed to join its cluster head");
  }
}

StreamWorld::Member StreamWorld::enrollMember(ClusterWorld& cw,
                                              common::TaId ta,
                                              common::NodeId nodeId) {
  auto enrollment = taNetwork_->enroll(ta, nodeId);
  BDP_ASSERT_MSG(enrollment.ok(), "stream member enrollment failed");
  Member member;
  member.nodeId = nodeId;
  member.address = enrollment.value().certificate.pseudonym;
  member.creds = {enrollment.value().certificate,
                  enrollment.value().privateKey};
  cw.driver->addAlias(member.address);
  return member;
}

// -------------------------------------------------------------- the driver

bool StreamWorld::onDriverFrame(ClusterWorld& cw, const net::Frame& frame) {
  if (const auto* rreq = net::payloadAs<aodv::RouteRequest>(frame.payload)) {
    const auto role = cw.roles.find(frame.dst);
    if (role == cw.roles.end()) return false;
    switch (role->second) {
      case Role::kBlackHole:
        answerProbe(cw, *rreq, frame.dst, /*supportive=*/false);
        return true;
      case Role::kAccomplice:
        answerProbe(cw, *rreq, frame.dst, /*supportive=*/true);
        return true;
      default:
        // Honest members have nothing to reply with (unknown destination /
        // no fresher route) and TTL 1 forbids rebroadcast: silence.
        return true;
    }
  }
  if (const auto* resp =
          net::payloadAs<core::DetectionResponse>(frame.payload)) {
    if (!cw.roles.contains(frame.dst)) return false;
    const auto verdict = static_cast<std::uint8_t>(resp->verdict);
    BDP_ASSERT_MSG(verdict < 4, "verdict out of range");
    ++responsesByVerdict_[verdict];
    auto mix = [this](std::uint64_t v) {
      for (int shift = 56; shift >= 0; shift -= 8) {
        verdictHash_ ^= (v >> shift) & 0xFFu;
        verdictHash_ *= 1099511628211ull;
      }
    };
    mix(static_cast<std::uint64_t>(simulator_.now().us()));
    mix(resp->reporter.value());
    mix(resp->suspect.value());
    mix(verdict);
    mix(resp->accomplice.value());
    if (recordVerdicts_) {
      verdictTimeline_.push_back({simulator_.now().us(),
                                  resp->reporter.value(),
                                  resp->suspect.value(), verdict,
                                  resp->accomplice.value()});
    }
    return true;
  }
  if (net::payloadAs<cluster::JoinReply>(frame.payload)) return true;
  if (net::payloadAs<cluster::RevocationAnnouncement>(frame.payload)) {
    ++revocationAnnouncements_;
    return true;
  }
  return false;
}

void StreamWorld::answerProbe(ClusterWorld& cw, const aodv::RouteRequest& rreq,
                              common::Address probedAlias, bool supportive) {
  auto rrep = net::makeMutablePayload<aodv::RouteReply>();
  rrep->rreqId = rreq.rreqId;
  rrep->origin = rreq.origin;
  rrep->destination = rreq.destination;
  // The defining black-hole lie: always a fresher route than asked for.
  rrep->destSeq = rreq.unknownDestSeq ? aodv::SeqNum{50000} : rreq.destSeq + 1;
  rrep->hopCount = 1;
  rrep->replier = probedAlias;
  rrep->replierCluster = cw.id;
  if (!supportive && rreq.inquireNextHop && !cw.accomplices.empty()) {
    // Cooperative attack: the primary names its teammate, pinned by the
    // black hole's own index so the pairing is stable.
    std::size_t bhIndex = 0;
    for (std::size_t i = 0; i < cw.blackHoles.size(); ++i) {
      if (cw.blackHoles[i].address == probedAlias) bhIndex = i;
    }
    rrep->claimedNextHop =
        cw.accomplices[bhIndex % cw.accomplices.size()].address;
  }
  cw.driver->sendFromAlias(probedAlias, rreq.origin, std::move(rrep));
}

// --------------------------------------------------------------- the plan

std::vector<InjectionSpec> StreamWorld::planEpoch(std::uint64_t epoch) const {
  // Pure in (seed, epoch): the schedule never reads world state, so a
  // resumed run plans exactly what the uninterrupted run would have.
  sim::Rng rng{sim::deriveTrialSeed(seeds_.deriveSeed("stream-plan"), epoch)};
  std::vector<InjectionSpec> specs;
  specs.reserve(static_cast<std::size_t>(config_.clusters) *
                config_.dreqsPerEpoch);
  const std::int64_t slot =
      config_.epochLength.us() / (config_.dreqsPerEpoch + 1);
  for (std::uint32_t c = 1; c <= config_.clusters; ++c) {
    std::vector<std::size_t> honestSpecs;  // replay candidates, this cluster
    for (std::uint32_t i = 0; i < config_.dreqsPerEpoch; ++i) {
      InjectionSpec spec;
      spec.cluster = c;
      spec.offsetUs = slot * static_cast<std::int64_t>(i + 1);
      spec.reporterIndex =
          static_cast<std::uint32_t>(rng.uniformInt(0, 1'000'000));
      spec.targetIndex =
          static_cast<std::uint32_t>(rng.uniformInt(0, 1'000'000));
      spec.nonce = rng.nextU64();
      const std::int64_t roll = rng.uniformInt(0, 99);
      if (roll < 30) {
        spec.kind = InjectionKind::kHonestAccusation;
      } else if (roll < 50) {
        spec.kind = InjectionKind::kFalseAccusation;
      } else if (roll < 75) {
        if (honestSpecs.empty()) {
          spec.kind = InjectionKind::kHonestAccusation;
        } else {
          // Byte-identical duplicate of an earlier-in-epoch honest d_req
          // (deterministic signing ⇒ identical envelope): the replay cache
          // must reject it even though the signature verifies.
          const InjectionSpec& original =
              specs[honestSpecs[rng.index(honestSpecs.size())]];
          spec.kind = InjectionKind::kReplayedDreq;
          spec.reporterIndex = original.reporterIndex;
          spec.targetIndex = original.targetIndex;
          spec.nonce = original.nonce;
        }
      } else if (roll < 85) {
        spec.kind = InjectionKind::kBadSignature;
      } else {
        spec.kind = InjectionKind::kUnknownSuspect;
        spec.suspectAddr =
            kUnknownSuspectBase +
            static_cast<std::uint64_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(kUnknownSuspectSpan)));
        if (config_.clusters > 1) {
          // Claim the suspect lives in some *other* cluster: the d_req is
          // forwarded over the backbone and dies remotely as kUnreachable.
          std::uint32_t pick = static_cast<std::uint32_t>(
              1 + rng.index(config_.clusters - 1));
          if (pick >= c) ++pick;
          spec.targetCluster = pick;
        } else {
          spec.targetCluster = c;
        }
      }
      if (spec.kind == InjectionKind::kHonestAccusation) {
        honestSpecs.push_back(specs.size());
      }
      specs.push_back(spec);
    }
  }
  return specs;
}

void StreamWorld::injectFromSpec(const InjectionSpec& spec) {
  BDP_ASSERT_MSG(spec.cluster >= 1 && spec.cluster <= config_.clusters,
                 "injection spec names an unknown cluster");
  ClusterWorld& cw = *clusters_[spec.cluster - 1];
  const Member* reporter = nullptr;
  common::Address suspect{};
  common::ClusterId suspectCluster = cw.id;
  switch (spec.kind) {
    case InjectionKind::kHonestAccusation:
    case InjectionKind::kReplayedDreq:
    case InjectionKind::kBadSignature:
      reporter = &cw.honestReporters[spec.reporterIndex %
                                     cw.honestReporters.size()];
      suspect =
          cw.blackHoles[spec.targetIndex % cw.blackHoles.size()].address;
      break;
    case InjectionKind::kFalseAccusation:
      reporter =
          &cw.liarReporters[spec.reporterIndex % cw.liarReporters.size()];
      suspect =
          cw.honestSuspects[spec.targetIndex % cw.honestSuspects.size()]
              .address;
      break;
    case InjectionKind::kUnknownSuspect:
      reporter = &cw.honestReporters[spec.reporterIndex %
                                     cw.honestReporters.size()];
      suspect = common::Address{spec.suspectAddr};
      suspectCluster = common::ClusterId{spec.targetCluster};
      break;
  }
  BDP_ASSERT(reporter != nullptr);

  auto dreq = net::makeMutablePayload<core::DetectionRequest>();
  dreq->reporter = reporter->address;
  dreq->reporterCluster = cw.id;
  dreq->suspect = suspect;
  dreq->suspectCluster = suspectCluster;
  dreq->nonce = spec.nonce;
  dreq->envelope =
      core::makeEnvelope(dreq->canonicalBytes(), reporter->creds, *engine_);
  if (spec.kind == InjectionKind::kBadSignature) {
    dreq->envelope->signature.mac[0] ^= 0xFF;
  }
  cw.driver->sendFromAlias(reporter->address, cw.head->address(),
                           std::move(dreq));
  ++injectedByKind_[static_cast<std::size_t>(spec.kind)];
}

void StreamWorld::runEpoch() { runEpochInternal(planEpoch(nextEpoch_)); }

void StreamWorld::runEpochFromSpecs(const std::vector<InjectionSpec>& specs) {
  runEpochInternal(specs);
}

void StreamWorld::runEpochInternal(const std::vector<InjectionSpec>& specs) {
  const sim::TimePoint epochStart = sim::TimePoint::fromUs(
      static_cast<std::int64_t>(nextEpoch_) * config_.epochLength.us());
  const sim::TimePoint epochEnd = epochStart + config_.epochLength;
  BDP_ASSERT_MSG(simulator_.now() == epochStart,
                 "epoch must start at its boundary");
  for (const InjectionSpec& spec : specs) {
    BDP_ASSERT_MSG(
        spec.offsetUs > 0 && spec.offsetUs < config_.epochLength.us(),
        "injection offset outside its epoch");
    simulator_.scheduleAt(
        epochStart + sim::Duration::microseconds(spec.offsetUs),
        [this, spec] { injectFromSpec(spec); });
  }
  simulator_.run(epochEnd);
  // run() leaves the clock at the last executed event; pin it to the
  // boundary so state checkpointed here ages identically after a restore.
  simulator_.fastForward(epochEnd);
  ++nextEpoch_;
}

// ------------------------------------------------------------- checkpoint

std::uint64_t StreamWorld::configHash() const {
  common::ByteWriter w;
  w.writeU64(config_.seed);
  w.writeU32(config_.clusters);
  w.writeU32(config_.population.honestReporters);
  w.writeU32(config_.population.liarReporters);
  w.writeU32(config_.population.honestSuspects);
  w.writeU32(config_.population.blackHoles);
  w.writeU32(config_.population.accomplices);
  w.writeU32(config_.dreqsPerEpoch);
  w.writeI64(config_.epochLength.us());
  w.writeI64(config_.certificateLifetime.us());
  const core::DetectorConfig& d = config_.detector;
  w.writeI64(d.probeTimeout.us());
  w.writeI64(d.probeRetries);
  w.writeI64(d.stageRetries);
  w.writeU8(d.maxForwards);
  w.writeI64(d.sessionTtl.us());
  w.writeU64(d.probeSeed);
  w.writeBool(d.recordProbeIdentities);
  w.writeU64(d.completedCap);
  const core::DetectorHardening& h = d.hardening;
  w.writeBool(h.enabled);
  w.writeI64(h.probeRounds);
  w.writeI64(h.violationQuorum);
  w.writeI64(h.probeJitterMax.us());
  w.writeU32(h.inflatedSeq);
  w.writeU64(h.plausibleAddressLo);
  w.writeU64(h.plausibleAddressHi);
  const core::ReporterLedgerConfig& l = h.ledger;
  w.writeI64(l.demeritThreshold);
  w.writeU32(l.windowMax);
  w.writeI64(l.window.us());
  w.writeU64(l.nonceCacheMax);
  w.writeI64(l.entryTtl.us());
  return fnv1a(w.bytes());
}

common::Bytes StreamWorld::saveCheckpoint() {
  codec::CheckpointBuilder builder;
  {
    common::ByteWriter w;
    w.writeU64(configHash());
    w.writeU64(config_.seed);
    w.writeU64(nextEpoch_);
    w.writeI64(simulator_.now().us());
    builder.add(codec::CheckpointTag::kMeta, std::move(w).take());
  }
  {
    common::ByteWriter w;
    std::ostringstream state;
    state << medium_->rng().engine();
    w.writeString(state.str());
    builder.add(codec::CheckpointTag::kMedium, std::move(w).take());
  }
  {
    common::ByteWriter w;
    taNetwork_->saveState(w);
    builder.add(codec::CheckpointTag::kTa, std::move(w).take());
  }
  {
    common::ByteWriter w;
    w.writeU64(armSeq_);
    for (const std::uint64_t count : injectedByKind_) w.writeU64(count);
    for (const std::uint64_t count : responsesByVerdict_) w.writeU64(count);
    w.writeU64(verdictHash_);
    w.writeU64(revocationAnnouncements_);
    builder.add(codec::CheckpointTag::kStream, std::move(w).take());
  }
  for (const auto& cluster : clusters_) {
    common::ByteWriter w;
    w.writeU32(cluster->id.value());
    cluster->head->saveState(w);
    cluster->detector->saveState(w);
    builder.add(codec::CheckpointTag::kCluster, std::move(w).take());
  }
  return builder.finish();
}

common::Status StreamWorld::restoreCheckpoint(
    std::span<const std::uint8_t> blob) {
  BDP_ASSERT_MSG(nextEpoch_ == 0 && simulator_.now().us() == 0,
                 "restore requires a freshly built world");
  auto decoded = codec::decodeCheckpoint(blob);
  if (!decoded.ok()) return decoded.error();
  const codec::Checkpoint& checkpoint = decoded.value();

  // Section bodies are parsed under a truncation guard: a section that was
  // valid at the envelope level (CRC intact) but structurally short is a
  // typed "malformed" error, never UB. Note the world may be part-mutated
  // on a mid-restore failure — callers discard it and rebuild.
  try {
    const common::Bytes* meta = checkpoint.find(codec::CheckpointTag::kMeta);
    if (!meta) return common::Error{"malformed", "missing meta section"};
    std::uint64_t epoch = 0;
    std::int64_t simNowUs = 0;
    {
      common::ByteReader r{*meta};
      const std::uint64_t hash = r.readU64();
      const std::uint64_t seed = r.readU64();
      if (hash != configHash() || seed != config_.seed) {
        return common::Error{"config-mismatch",
                             "checkpoint was taken under a different stream "
                             "configuration"};
      }
      epoch = r.readU64();
      simNowUs = r.readI64();
      if (!r.exhausted()) {
        return common::Error{"malformed", "trailing bytes in meta section"};
      }
    }
    if (simNowUs !=
        static_cast<std::int64_t>(epoch) * config_.epochLength.us()) {
      return common::Error{"malformed",
                           "checkpoint clock is not at its epoch boundary"};
    }
    simulator_.fastForward(sim::TimePoint::fromUs(simNowUs));

    const common::Bytes* medium =
        checkpoint.find(codec::CheckpointTag::kMedium);
    if (!medium) return common::Error{"malformed", "missing medium section"};
    {
      common::ByteReader r{*medium};
      std::istringstream state{r.readString()};
      state >> medium_->rng().engine();
      if (state.fail()) {
        return common::Error{"malformed", "medium RNG state unreadable"};
      }
      if (!r.exhausted()) {
        return common::Error{"malformed", "trailing bytes in medium section"};
      }
    }

    const common::Bytes* ta = checkpoint.find(codec::CheckpointTag::kTa);
    if (!ta) return common::Error{"malformed", "missing TA section"};
    {
      common::ByteReader r{*ta};
      taNetwork_->restoreState(r);
      if (!r.exhausted()) {
        return common::Error{"malformed", "trailing bytes in TA section"};
      }
    }

    const common::Bytes* stream =
        checkpoint.find(codec::CheckpointTag::kStream);
    if (!stream) return common::Error{"malformed", "missing stream section"};
    {
      common::ByteReader r{*stream};
      armSeq_ = r.readU64();
      for (std::uint64_t& count : injectedByKind_) count = r.readU64();
      for (std::uint64_t& count : responsesByVerdict_) count = r.readU64();
      verdictHash_ = r.readU64();
      revocationAnnouncements_ = r.readU64();
      if (!r.exhausted()) {
        return common::Error{"malformed", "trailing bytes in stream section"};
      }
    }

    const auto clusterSections =
        checkpoint.findAll(codec::CheckpointTag::kCluster);
    if (clusterSections.size() != clusters_.size()) {
      return common::Error{"config-mismatch",
                           "checkpoint cluster count differs from the world"};
    }
    std::vector<core::PendingTimer> rearm;
    std::vector<bool> restored(clusters_.size(), false);
    for (const common::Bytes* body : clusterSections) {
      common::ByteReader r{*body};
      const std::uint32_t clusterId = r.readU32();
      if (clusterId < 1 || clusterId > clusters_.size() ||
          restored[clusterId - 1]) {
        return common::Error{"malformed", "bad cluster section id"};
      }
      restored[clusterId - 1] = true;
      ClusterWorld& cluster = *clusters_[clusterId - 1];
      cluster.head->restoreState(r);
      cluster.detector->restoreState(r, rearm);
      if (!r.exhausted()) {
        return common::Error{"malformed",
                             "trailing bytes in cluster section"};
      }
    }

    // Reschedule every live detector timer in its original global arm
    // order: the simulator's FIFO tie-break then reproduces the
    // interrupted run's event order exactly.
    std::sort(rearm.begin(), rearm.end(),
              [](const core::PendingTimer& a, const core::PendingTimer& b) {
                return a.armSeq < b.armSeq;
              });
    for (core::PendingTimer& timer : rearm) {
      simulator_.scheduleAt(timer.deadline, std::move(timer.fire));
    }
    nextEpoch_ = epoch;
  } catch (const std::out_of_range&) {
    return common::Error{"malformed", "checkpoint section truncated"};
  }
  return common::Status::success();
}

// ------------------------------------------------------ metrics/invariants

StreamMetrics StreamWorld::metrics() const {
  StreamMetrics m;
  m.epochsRun = nextEpoch_;
  for (std::size_t i = 0; i < kInjectionKinds; ++i) {
    m.injectedByKind[i] = injectedByKind_[i];
  }
  for (std::size_t i = 0; i < 4; ++i) {
    m.responsesByVerdict[i] = responsesByVerdict_[i];
  }
  m.verdictHash = verdictHash_;
  m.revocationAnnouncements = revocationAnnouncements_;
  for (const auto& cluster : clusters_) {
    const core::DetectorStats& s = cluster->detector->stats();
    m.dreqReceived += s.dreqReceived;
    m.dreqRejectedAuth += s.dreqRejectedAuth;
    m.dreqRateLimited += s.dreqRateLimited;
    m.dreqReplayed += s.dreqReplayed;
    m.dreqDeduplicated += s.dreqDeduplicated;
    m.probesSent += s.probesSent;
    m.confirmations += s.confirmations;
    m.isolations += s.isolations;
    m.exonerations += s.exonerations;
    m.expiredSessions += s.expiredSessions;
    m.completedEvicted += s.completedEvicted;
    m.ledgerEvictions += s.ledgerEvictions;
    m.completedTotal += cluster->detector->completedTotal();
    m.activeSessions += cluster->detector->activeSessions();
    m.trackedReporters += cluster->detector->reporterLedger().trackedReporters();
    m.noncesCached += cluster->detector->reporterLedger().noncesCached();
    m.completedRetained += cluster->detector->completedSessions().size();
  }
  m.pendingEvents = simulator_.pendingEvents();
  return m;
}

std::string StreamMetrics::toJson() const {
  std::string out = "{";
  auto field = [&out](std::string_view key, std::uint64_t value,
                      bool first = false) {
    if (!first) out += ",";
    obs::appendJsonString(out, key);
    out += ":";
    obs::appendJsonNumber(out, value);
  };
  field("epochs", epochsRun, /*first=*/true);
  field("injected_honest", injectedByKind[0]);
  field("injected_false_accusation", injectedByKind[1]);
  field("injected_replay", injectedByKind[2]);
  field("injected_bad_signature", injectedByKind[3]);
  field("injected_unknown_suspect", injectedByKind[4]);
  field("verdict_not_confirmed", responsesByVerdict[0]);
  field("verdict_single", responsesByVerdict[1]);
  field("verdict_cooperative", responsesByVerdict[2]);
  field("verdict_unreachable", responsesByVerdict[3]);
  field("verdict_hash", verdictHash);
  field("revocation_announcements", revocationAnnouncements);
  field("dreq_received", dreqReceived);
  field("dreq_rejected_auth", dreqRejectedAuth);
  field("dreq_rate_limited", dreqRateLimited);
  field("dreq_replayed", dreqReplayed);
  field("dreq_deduplicated", dreqDeduplicated);
  field("probes_sent", probesSent);
  field("confirmations", confirmations);
  field("isolations", isolations);
  field("exonerations", exonerations);
  field("expired_sessions", expiredSessions);
  field("completed_total", completedTotal);
  field("completed_evicted", completedEvicted);
  field("ledger_evictions", ledgerEvictions);
  field("active_sessions", activeSessions);
  field("tracked_reporters", trackedReporters);
  field("nonces_cached", noncesCached);
  field("completed_retained", completedRetained);
  // pendingEvents is deliberately NOT serialized: disarmed (generation-
  // mismatched) timer closures from before a checkpoint still sit in an
  // uninterrupted run's queue as no-ops but are not recreated on restore,
  // so the gauge may differ while every byte of detector state is equal.
  out += "}";
  return out;
}

std::vector<std::string> StreamWorld::checkInvariants() const {
  std::vector<std::string> violations;
  const StreamPopulation& pop = config_.population;
  const std::int64_t epochUs = config_.epochLength.us();
  const std::int64_t ttlUs = config_.detector.sessionTtl.us();
  const std::uint64_t ttlEpochs =
      ttlUs > 0 ? static_cast<std::uint64_t>((ttlUs + epochUs - 1) / epochUs)
                : 1;
  // A session can only be born from an injected d_req and lives at most
  // ttl + probe-campaign epochs; forwarded sessions add cross-cluster load,
  // so each detector is bounded by the *world's* per-epoch injection rate.
  const std::uint64_t sessionCap = static_cast<std::uint64_t>(
      config_.dreqsPerEpoch) * config_.clusters * (ttlEpochs + 2);
  const std::uint64_t reporterCap = pop.honestReporters + pop.liarReporters;
  std::uint64_t totalSessions = 0;

  for (const auto& cluster : clusters_) {
    const std::string where = "cluster " + std::to_string(cluster->id.value());
    const core::RsuDetector& detector = *cluster->detector;
    totalSessions += detector.activeSessions();
    if (detector.activeSessions() > sessionCap) {
      violations.push_back(
          where + ": verification table " +
          std::to_string(detector.activeSessions()) + " > cap " +
          std::to_string(sessionCap));
    }
    const std::size_t cap = config_.detector.completedCap;
    if (cap > 0 && detector.completedSessions().size() > cap) {
      violations.push_back(
          where + ": completed records " +
          std::to_string(detector.completedSessions().size()) + " > cap " +
          std::to_string(cap));
    }
    const core::ReporterLedger& ledger = detector.reporterLedger();
    if (ledger.trackedReporters() > reporterCap) {
      violations.push_back(where + ": ledger tracks " +
                           std::to_string(ledger.trackedReporters()) +
                           " reporters > population " +
                           std::to_string(reporterCap));
    }
    const std::uint64_t nonceCap =
        reporterCap * config_.detector.hardening.ledger.nonceCacheMax;
    if (ledger.noncesCached() > nonceCap) {
      violations.push_back(where + ": nonce cache " +
                           std::to_string(ledger.noncesCached()) + " > cap " +
                           std::to_string(nonceCap));
    }
  }

  // Timers are never cancelled, only generation-disarmed, so the queue
  // holds at most a couple of closures per session plus per-detector
  // sweeps and this epoch's injections.
  const std::uint64_t pendingCap =
      totalSessions * 2 + config_.clusters +
      static_cast<std::uint64_t>(config_.dreqsPerEpoch) * config_.clusters +
      64;
  if (simulator_.pendingEvents() > pendingCap) {
    violations.push_back("simulator queue " +
                         std::to_string(simulator_.pendingEvents()) +
                         " > cap " + std::to_string(pendingCap));
  }
  return violations;
}

const core::RsuDetector& StreamWorld::detector(std::uint32_t cluster) const {
  BDP_ASSERT(cluster >= 1 && cluster <= clusters_.size());
  return *clusters_[cluster - 1]->detector;
}

// ------------------------------------------------------------- trace JSONL

void appendInjectionJson(std::string& out, std::uint64_t epoch,
                         const InjectionSpec& spec) {
  out += "{\"epoch\":";
  obs::appendJsonNumber(out, epoch);
  out += ",\"cluster\":";
  obs::appendJsonNumber(out, static_cast<std::uint64_t>(spec.cluster));
  out += ",\"offset_us\":";
  obs::appendJsonNumber(out, spec.offsetUs);
  out += ",\"kind\":";
  obs::appendJsonNumber(out, static_cast<std::uint64_t>(spec.kind));
  out += ",\"reporter\":";
  obs::appendJsonNumber(out, static_cast<std::uint64_t>(spec.reporterIndex));
  out += ",\"target\":";
  obs::appendJsonNumber(out, static_cast<std::uint64_t>(spec.targetIndex));
  out += ",\"suspect_addr\":";
  obs::appendJsonNumber(out, spec.suspectAddr);
  out += ",\"target_cluster\":";
  obs::appendJsonNumber(out, static_cast<std::uint64_t>(spec.targetCluster));
  out += ",\"nonce\":";
  obs::appendJsonNumber(out, spec.nonce);
  out += "}";
}

std::optional<std::pair<std::uint64_t, InjectionSpec>> parseInjectionJson(
    std::string_view line) {
  const auto object = obs::FlatJsonObject::parse(line);
  if (!object) return std::nullopt;
  const auto epoch = object->u64("epoch");
  const auto cluster = object->u64("cluster");
  const auto offsetUs = object->i64("offset_us");
  const auto kind = object->u64("kind");
  const auto reporter = object->u64("reporter");
  const auto target = object->u64("target");
  const auto suspectAddr = object->u64("suspect_addr");
  const auto targetCluster = object->u64("target_cluster");
  const auto nonce = object->u64("nonce");
  if (!epoch || !cluster || !offsetUs || !kind || !reporter || !target ||
      !suspectAddr || !targetCluster || !nonce) {
    return std::nullopt;
  }
  if (*kind >= kInjectionKinds) return std::nullopt;
  InjectionSpec spec;
  spec.cluster = static_cast<std::uint32_t>(*cluster);
  spec.offsetUs = *offsetUs;
  spec.kind = static_cast<InjectionKind>(*kind);
  spec.reporterIndex = static_cast<std::uint32_t>(*reporter);
  spec.targetIndex = static_cast<std::uint32_t>(*target);
  spec.suspectAddr = *suspectAddr;
  spec.targetCluster = static_cast<std::uint32_t>(*targetCluster);
  spec.nonce = *nonce;
  return std::make_pair(*epoch, spec);
}

}  // namespace blackdp::scenario
