// World-level metrics collection: folds a scenario's substrate stats
// (medium, backbone, faults) and every RSU's detector activity into a
// MetricsRegistry, so all benches snapshot the same names into
// BENCH_<name>.json instead of keeping private tally structs.
#pragma once

#include "fault/fault_injector.hpp"
#include "net/backbone.hpp"
#include "net/medium.hpp"
#include "obs/registry.hpp"

namespace blackdp::scenario {

class HighwayScenario;
class UrbanScenario;

/// medium.* counters (frames sent/delivered plus per-cause drop counts).
void addMediumStats(obs::MetricsRegistry& registry,
                    const net::MediumStats& stats);

/// backbone.* counters.
void addBackboneStats(obs::MetricsRegistry& registry,
                      const net::BackboneStats& stats);

/// fault.* counters.
void addFaultStats(obs::MetricsRegistry& registry,
                   const fault::FaultStats& stats);

/// Everything at once: substrate stats, aggregated detector stats across
/// all RSUs, and per-stage latency telemetry for every completed session.
void collectWorldMetrics(obs::MetricsRegistry& registry,
                         HighwayScenario& world);
void collectWorldMetrics(obs::MetricsRegistry& registry, UrbanScenario& world);

}  // namespace blackdp::scenario
