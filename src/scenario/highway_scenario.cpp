#include "scenario/highway_scenario.hpp"

#include <string>

#include "common/assert.hpp"

namespace blackdp::scenario {

std::string_view toString(AttackType type) {
  switch (type) {
    case AttackType::kNone: return "none";
    case AttackType::kSingle: return "single";
    case AttackType::kCooperative: return "cooperative";
    case AttackType::kSelective: return "selective";
  }
  return "?";
}

namespace {
constexpr std::uint32_t kRsuNodeIdBase = 100'000;
constexpr std::uint64_t kRsuAddressBase = 100;
}  // namespace

HighwayScenario::HighwayScenario(ScenarioConfig config)
    : config_{config},
      seeds_{config.seed},
      rng_{seeds_.stream("placement")},
      highway_{config.highwayLengthM, config.highwayWidthM,
               config.clusterLengthM} {
  engine_ = std::make_unique<crypto::CryptoEngine>(seeds_.deriveSeed("crypto"));
  taNetwork_ =
      std::make_unique<crypto::TaNetwork>(simulator_, *engine_, config_.ta);
  net::MediumConfig mediumConfig = config_.medium;
  mediumConfig.transmissionRangeM = config_.transmissionRangeM;
  medium_ = std::make_unique<net::WirelessMedium>(
      simulator_, seeds_.stream("medium"), mediumConfig);
  backbone_ = std::make_unique<net::Backbone>(simulator_);
  if (!config_.faults.empty()) {
    faultInjector_ = std::make_unique<fault::FaultInjector>(
        simulator_, seeds_.stream("faults"), config_.faults);
    faultInjector_->install(*medium_, *backbone_);
  }
  buildWorld();
}

HighwayScenario::~HighwayScenario() = default;

void HighwayScenario::buildWorld() {
  // --- trusted authorities ---
  const std::uint32_t taCount = std::max(config_.taCount, 1u);
  for (std::uint32_t i = 0; i < taCount; ++i) {
    taIds_.push_back(taNetwork_->addAuthority());
  }

  // --- one RSU / cluster head / detector per segment ---
  for (std::uint32_t c = 1; c <= highway_.clusterCount(); ++c) {
    auto rsu = std::make_unique<RsuEntity>();
    rsu->cluster = common::ClusterId{c};
    rsu->node = std::make_unique<net::BasicNode>(
        simulator_, *medium_, common::NodeId{kRsuNodeIdBase + c},
        mobility::LinearMotion::stationary(
            highway_.clusterCenter(rsu->cluster)));
    rsu->node->setLocalAddress(common::Address{kRsuAddressBase + c});
    rsu->head = std::make_unique<cluster::ClusterHead>(
        simulator_, *rsu->node, *backbone_, highway_, rsu->cluster);
    if (config_.chFailover) {
      // Advertise the adjacent CHs (next in travel direction first) so
      // members can re-home when this RSU dies.
      std::vector<cluster::NeighborChInfo> neighbors;
      if (c + 1 <= highway_.clusterCount()) {
        neighbors.push_back({common::ClusterId{c + 1},
                             common::Address{kRsuAddressBase + c + 1}});
      }
      if (c >= 2) {
        neighbors.push_back({common::ClusterId{c - 1},
                             common::Address{kRsuAddressBase + c - 1}});
      }
      rsu->head->setNeighborAnnouncement(std::move(neighbors));
    }
    if (faultInjector_) {
      faultInjector_->registerRsu(rsu->cluster, *rsu->head);
    }
    // Each detector gets its own derived probe stream (jitter + hardened
    // destination draws). deriveSeed is pure, so this never perturbs any
    // other stream — with hardening off the stream is simply never drawn.
    core::DetectorConfig detectorConfig = config_.detector;
    if (detectorConfig.probeSeed == 0) {
      detectorConfig.probeSeed =
          seeds_.deriveSeed("detector-" + std::to_string(c));
    }
    rsu->detector = std::make_unique<core::RsuDetector>(
        simulator_, *rsu->head, *taNetwork_, *engine_, detectorConfig);
    // Revocation notices from the TA reach every CH (blacklist + member
    // announcement + JREP piggyback for newly joined vehicles).
    taNetwork_->subscribeRevocations(
        [head = rsu->head.get()](const crypto::RevocationNotice& notice) {
          head->applyRevocation(notice);
        });
    rsus_.push_back(std::move(rsu));
  }

  const std::uint32_t clusterCount = highway_.clusterCount();
  const double clusterLen = highway_.clusterLength();

  // --- placement (paper §IV-A) ---
  const common::ClusterId attackerCluster =
      config_.attackerCluster.value_or(common::ClusterId{static_cast<
          std::uint32_t>(rng_.uniformInt(1, clusterCount))});

  const auto randomY = [this] {
    return rng_.uniformReal(2.0, highway_.width() - 2.0);
  };
  const auto randomSpeed = [this] {
    return mobility::kmhToMps(
        rng_.uniformReal(config_.minSpeedKmh, config_.maxSpeedKmh));
  };

  // Source car at the beginning of the highway.
  const mobility::Position sourcePos{rng_.uniformReal(50.0, clusterLen * 0.4),
                                     randomY()};
  source_ = &addVehicle(sourcePos, randomSpeed(),
                        mobility::Direction::kEastbound, false,
                        attack::AttackRole::kSingle, {});

  // Attacker(s): inside the chosen cluster; cooperative pairs within range
  // of each other.
  if (config_.attack != AttackType::kNone) {
    const double base = highway_.clusterBegin(attackerCluster);
    const mobility::Position primaryPos{
        base + rng_.uniformReal(0.45, 0.6) * clusterLen, randomY()};
    const attack::AttackRole primaryRole =
        config_.attack == AttackType::kCooperative
            ? attack::AttackRole::kPrimary
            : attack::AttackRole::kSingle;
    primaryAttacker_ =
        &addVehicle(primaryPos, randomSpeed(), mobility::Direction::kEastbound,
                    true, primaryRole,
                    makeAttackConfig(attackerCluster, primaryRole));
    if (config_.attack == AttackType::kCooperative) {
      // Ahead of the primary, still inside the segment: within range of the
      // primary (cooperation), of this segment's RSU, and of the next
      // segment's RSU (which may inherit the detection if the primary
      // flees).
      const mobility::Position accomplicePos{
          std::min(primaryPos.x + rng_.uniformReal(150.0, 300.0),
                   highway_.clusterEnd(attackerCluster) - 10.0),
          randomY()};
      accomplice_ = &addVehicle(
          accomplicePos, randomSpeed(), mobility::Direction::kEastbound, true,
          attack::AttackRole::kAccomplice,
          makeAttackConfig(attackerCluster, attack::AttackRole::kAccomplice));
      primaryAttacker_->attacker->setTeammate(accomplice_->address());
    }
  }

  // Destination: far enough from the attacker that it can never be in the
  // attacker's transmission range during the trial.
  std::uint32_t destCluster;
  const std::uint32_t ac = attackerCluster.value();
  if (config_.attack == AttackType::kNone) {
    destCluster = std::min(5u, clusterCount);
  } else if (ac + 3 <= clusterCount) {
    destCluster = static_cast<std::uint32_t>(
        rng_.uniformInt(ac + 3, clusterCount));
  } else {
    BDP_ASSERT_MSG(ac >= 4, "highway too short to separate attacker and "
                            "destination");
    destCluster = static_cast<std::uint32_t>(rng_.uniformInt(1, ac - 3));
  }
  mobility::Position destPos{};
  for (int attempt = 0; attempt < 64; ++attempt) {
    destPos =
        mobility::Position{highway_.clusterBegin(common::ClusterId{destCluster}) +
                               rng_.uniformReal(0.1, 0.9) * clusterLen,
                           randomY()};
    if (primaryAttacker_ == nullptr ||
        mobility::distance(destPos,
                           primaryAttacker_->node->radioPosition()) >
            config_.transmissionRangeM + 500.0) {
      break;
    }
  }
  destination_ = &addVehicle(destPos, randomSpeed(),
                             mobility::Direction::kEastbound, false,
                             attack::AttackRole::kSingle, {});

  // Background fleet: vehicles are "randomly distributed within the
  // clusters" (§IV-A) — round-robin over segments, uniform inside each, so
  // the whole highway stays covered and multi-hop connectivity holds.
  std::uint32_t nextCluster = 0;
  while (vehicles_.size() < config_.vehicleCount) {
    const common::ClusterId cluster{(nextCluster++ % clusterCount) + 1};
    const mobility::Position pos{
        highway_.clusterBegin(cluster) +
            rng_.uniformReal(0.02, 0.98) * clusterLen,
        randomY()};
    const auto direction = rng_.bernoulli(0.5)
                               ? mobility::Direction::kEastbound
                               : mobility::Direction::kWestbound;
    addVehicle(pos, randomSpeed(), direction, false,
               attack::AttackRole::kSingle, {});
  }

  // Accusation flooders ride on top of the fleet (spawned last so default
  // configurations keep the placement stream's draw sequence untouched).
  for (std::uint32_t i = 0; i < config_.accusationFlooders; ++i) {
    spawnAccusationFlooder(attackerCluster, config_.flooder);
  }
}

attack::BlackHoleConfig HighwayScenario::makeAttackConfig(
    common::ClusterId cluster, attack::AttackRole role) {
  (void)role;
  attack::BlackHoleConfig attackConfig;
  attackConfig.sendFakeHelloReply = config_.attackerFakesHelloReply;

  // Evasion is a per-trial behavioural choice (the paper's cluster 8–10
  // reasons: acted legitimately, renewed its certificate, or fled). The
  // per-cluster probabilities pick the trial's behaviour once; the chosen
  // behaviour then applies at every detection checkpoint.
  const EvasionPolicy& policy = config_.evasion;
  const std::uint32_t c = cluster.value();
  if (c >= policy.firstEvasiveCluster) {
    const auto k = static_cast<double>(c - policy.firstEvasiveCluster);
    if (rng_.bernoulli(policy.actLegitBase + k * policy.actLegitStep)) {
      attackConfig.actLegitProbability = 1.0;
    } else if (rng_.bernoulli(policy.renewBase + k * policy.renewStep)) {
      attackConfig.renewProbability = 1.0;
    } else if (c == highway_.clusterCount() &&
               rng_.bernoulli(policy.fleeOffHighway)) {
      attackConfig.fleeMode = attack::FleeMode::kBeforeReply;
    }
  }
  if (config_.forcedFleeMode) {
    attackConfig.fleeMode =
        static_cast<attack::FleeMode>(*config_.forcedFleeMode);
  }
  return attackConfig;
}

VehicleEntity& HighwayScenario::addVehicle(
    mobility::Position position, double speedMps,
    mobility::Direction direction, bool isAttacker, attack::AttackRole role,
    const attack::BlackHoleConfig& attackConfig) {
  auto vehicle = std::make_unique<VehicleEntity>();
  vehicle->nodeId = common::NodeId{nextNodeId_++};
  vehicle->node = std::make_unique<net::BasicNode>(
      simulator_, *medium_, vehicle->nodeId,
      mobility::LinearMotion{position, speedMps, direction,
                             simulator_.now()});
  vehicle->membership = std::make_unique<cluster::MembershipClient>(
      simulator_, *vehicle->node, highway_);

  if (isAttacker) {
    sim::Rng attackerRng = seeds_.stream(
        "attacker-" + std::to_string(vehicle->nodeId.value()));
    if (config_.attack == AttackType::kSelective) {
      auto agent = std::make_unique<attack::SelectiveBlackHoleAgent>(
          simulator_, *vehicle->node, role, attackConfig,
          std::move(attackerRng));
      vehicle->selective = agent.get();
      vehicle->attacker = agent.get();
      vehicle->agent = std::move(agent);
    } else {
      auto agent = std::make_unique<attack::BlackHoleAgent>(
          simulator_, *vehicle->node, role, attackConfig,
          std::move(attackerRng));
      vehicle->attacker = agent.get();
      vehicle->agent = std::move(agent);
    }
  } else {
    vehicle->agent = std::make_unique<aodv::AodvAgent>(
        simulator_, *vehicle->node, config_.aodv);
  }

  enroll(*vehicle);

  // Keep the agent's cluster stamp current; drop off the air on exit.
  vehicle->membership->setJoinedCallback(
      [agent = vehicle->agent.get()](common::ClusterId joined,
                                     common::Address) {
        agent->setCurrentCluster(joined);
      });
  vehicle->membership->setExitCallback(
      [node = vehicle->node.get()] { node->detachFromMedium(); });

  if (!isAttacker) {
    vehicle->verifier = std::make_unique<core::SourceVerifier>(
        simulator_, *vehicle->node, *vehicle->agent, *vehicle->membership,
        *taNetwork_, *engine_, config_.verifier);
  } else {
    wireAttackerCallbacks(*vehicle);
  }

  vehicle->agent->startHello();  // no-op unless config enables beaconing
  vehicle->membership->start();
  vehicles_.push_back(std::move(vehicle));
  return *vehicles_.back();
}

void HighwayScenario::enroll(VehicleEntity& vehicle) {
  vehicle.ta = taIds_[vehicle.nodeId.value() % taIds_.size()];
  auto enrollment = taNetwork_->enroll(vehicle.ta, vehicle.nodeId);
  BDP_ASSERT(enrollment.ok());
  const crypto::Enrollment& e = enrollment.value();
  vehicle.node->setLocalAddress(e.certificate.pseudonym);
  vehicle.agent->setCredentials({e.certificate, e.privateKey}, engine_.get());
  if (vehicle.isAttacker() || vehicle.attacker != nullptr) {
    attackerPseudonyms_[e.certificate.pseudonym] = vehicle.nodeId;
  }
}

void HighwayScenario::wireAttackerCallbacks(VehicleEntity& vehicle) {
  // Fleeing = a short hop just across the segment boundary: the attacker
  // leaves its cluster (leave notice + join at the neighbour CH) but stays
  // close enough that in-flight replies still reach the old CH. From the
  // last cluster the hop leaves the highway entirely.
  vehicle.attacker->setFleeCallback([this, v = &vehicle] {
    const mobility::Position pos = v->node->radioPosition();
    const auto cluster = highway_.clusterAt(pos.x);
    double newX = 0.0;
    if (v->node->motion().direction() == mobility::Direction::kEastbound) {
      newX = (cluster ? highway_.clusterEnd(*cluster) : highway_.length()) +
             120.0;
    } else {
      newX = (cluster ? highway_.clusterBegin(*cluster) : 0.0) - 120.0;
    }
    relocateVehicle(*v, newX);
  });
  vehicle.attacker->setRenewCallback([this, v = &vehicle]() -> bool {
    auto renewed = taNetwork_->renew(v->ta, v->nodeId);
    if (!renewed.ok()) return false;  // renewal paused: isolation worked
    const crypto::Enrollment& e = renewed.value();
    v->node->setLocalAddress(e.certificate.pseudonym);
    v->agent->setCredentials({e.certificate, e.privateKey}, engine_.get());
    attackerPseudonyms_[e.certificate.pseudonym] = v->nodeId;
    v->membership->forceRejoin();
    return true;
  });
}

void HighwayScenario::relocateVehicle(VehicleEntity& vehicle, double newX) {
  const mobility::LinearMotion old = vehicle.node->motion();
  const double y = vehicle.node->radioPosition().y;
  vehicle.node->setMotion(mobility::LinearMotion{
      mobility::Position{newX, y}, old.speedMps(), old.direction(),
      simulator_.now()});
  vehicle.membership->forceRejoin();
}

VehicleEntity& HighwayScenario::spawnGrayHole(
    common::ClusterId cluster, attack::GrayHoleConfig grayConfig) {
  auto vehicle = std::make_unique<VehicleEntity>();
  vehicle->nodeId = common::NodeId{nextNodeId_++};
  const mobility::Position position{
      highway_.clusterBegin(cluster) +
          rng_.uniformReal(0.3, 0.7) * highway_.clusterLength(),
      rng_.uniformReal(2.0, highway_.width() - 2.0)};
  const double speed = mobility::kmhToMps(
      rng_.uniformReal(config_.minSpeedKmh, config_.maxSpeedKmh));
  vehicle->node = std::make_unique<net::BasicNode>(
      simulator_, *medium_, vehicle->nodeId,
      mobility::LinearMotion{position, speed,
                             mobility::Direction::kEastbound,
                             simulator_.now()});
  vehicle->membership = std::make_unique<cluster::MembershipClient>(
      simulator_, *vehicle->node, highway_);

  auto agent = std::make_unique<attack::GrayHoleAgent>(
      simulator_, *vehicle->node, grayConfig,
      seeds_.stream("grayhole-" + std::to_string(vehicle->nodeId.value())));
  vehicle->grayHole = agent.get();
  vehicle->agent = std::move(agent);

  enroll(*vehicle);
  vehicle->membership->setJoinedCallback(
      [agentPtr = vehicle->agent.get()](common::ClusterId joined,
                                        common::Address) {
        agentPtr->setCurrentCluster(joined);
      });
  vehicle->membership->setExitCallback(
      [node = vehicle->node.get()] { node->detachFromMedium(); });
  vehicle->membership->start();
  vehicles_.push_back(std::move(vehicle));
  return *vehicles_.back();
}

VehicleEntity& HighwayScenario::spawnAccusationFlooder(
    common::ClusterId cluster, attack::FlooderConfig flooderConfig) {
  auto vehicle = std::make_unique<VehicleEntity>();
  vehicle->nodeId = common::NodeId{nextNodeId_++};
  const mobility::Position position{
      highway_.clusterBegin(cluster) +
          rng_.uniformReal(0.3, 0.7) * highway_.clusterLength(),
      rng_.uniformReal(2.0, highway_.width() - 2.0)};
  const double speed = mobility::kmhToMps(
      rng_.uniformReal(config_.minSpeedKmh, config_.maxSpeedKmh));
  vehicle->node = std::make_unique<net::BasicNode>(
      simulator_, *medium_, vehicle->nodeId,
      mobility::LinearMotion{position, speed,
                             mobility::Direction::kEastbound,
                             simulator_.now()});
  vehicle->membership = std::make_unique<cluster::MembershipClient>(
      simulator_, *vehicle->node, highway_);

  auto agent = std::make_unique<attack::AccusationFlooderAgent>(
      simulator_, *vehicle->node, *vehicle->membership, *engine_,
      flooderConfig,
      seeds_.stream("flooder-" + std::to_string(vehicle->nodeId.value())));
  vehicle->flooder = agent.get();
  vehicle->agent = std::move(agent);

  enroll(*vehicle);
  vehicle->membership->setJoinedCallback(
      [agentPtr = vehicle->agent.get()](common::ClusterId joined,
                                        common::Address) {
        agentPtr->setCurrentCluster(joined);
      });
  vehicle->membership->setExitCallback(
      [node = vehicle->node.get()] { node->detachFromMedium(); });
  vehicle->membership->start();
  vehicles_.push_back(std::move(vehicle));
  return *vehicles_.back();
}

std::size_t HighwayScenario::honestRevocations() const {
  std::size_t count = 0;
  for (const crypto::RevocationNotice& notice : taNetwork_->revocations()) {
    if (!isAttackerPseudonym(notice.pseudonym)) ++count;
  }
  return count;
}

HighwayScenario::DataTransferResult HighwayScenario::sendDataBurst(
    std::uint32_t count, sim::Duration gap) {
  DataTransferResult result;
  const std::uint64_t deliveredBefore =
      destination_->agent->stats().dataDelivered;
  const common::Address dest = destination_->address();
  for (std::uint32_t i = 0; i < count; ++i) {
    simulator_.schedule(gap * static_cast<std::int64_t>(i),
                        [this, dest, &result] {
                          ++result.sent;
                          if (source_->agent->sendData(dest)) {
                            ++result.routable;
                            return;
                          }
                          // Route broke (mobility, RERR): re-discover and
                          // send this packet late, as a real application
                          // stack would.
                          source_->agent->findRoute(
                              dest, [this, dest, &result](bool ok) {
                                if (ok && source_->agent->sendData(dest)) {
                                  ++result.routable;
                                }
                              });
                        });
  }
  runFor(gap * static_cast<std::int64_t>(count) + sim::Duration::seconds(2));
  result.delivered = static_cast<std::uint32_t>(
      destination_->agent->stats().dataDelivered - deliveredBefore);
  return result;
}

RsuEntity& HighwayScenario::rsu(common::ClusterId cluster) {
  BDP_ASSERT(cluster.value() >= 1 && cluster.value() <= rsus_.size());
  return *rsus_[cluster.value() - 1];
}

bool HighwayScenario::isAttackerPseudonym(common::Address pseudonym) const {
  return attackerPseudonyms_.contains(pseudonym);
}

void HighwayScenario::runFor(sim::Duration span) {
  simulator_.run(simulator_.now() + span);
}

bool HighwayScenario::runUntil(const std::function<bool()>& predicate,
                               sim::Duration cap) {
  const sim::TimePoint deadline = simulator_.now() + cap;
  while (!predicate()) {
    if (simulator_.now() > deadline) break;
    if (!simulator_.step()) break;
  }
  return predicate();
}

core::VerificationReport HighwayScenario::runVerification(int rounds) {
  BDP_ASSERT(rounds >= 1);
  // Let the fleet join its clusters first.
  runFor(sim::Duration::milliseconds(500));

  core::VerificationReport report;
  for (int round = 0; round < rounds; ++round) {
    bool done = false;
    source_->verifier->establishVerifiedRoute(
        destination_->address(), [&](const core::VerificationReport& r) {
          report = r;
          done = true;
        });
    const bool finished = runUntil([&] { return done; }, config_.trialTimeout);
    BDP_ASSERT_MSG(finished, "verification did not complete within the trial "
                             "timeout");
  }
  // Allow isolation / revocation propagation to finish.
  runFor(sim::Duration::seconds(2));
  return report;
}

DetectionSummary HighwayScenario::detectionSummary() const {
  DetectionSummary summary;
  for (const auto& rsu : rsus_) {
    for (const core::SessionRecord& record :
         rsu->detector->completedSessions()) {
      summary.sessions.push_back(record);
      const bool confirmed =
          record.verdict == core::Verdict::kSingleBlackHole ||
          record.verdict == core::Verdict::kCooperativeBlackHole;
      if (confirmed) {
        summary.anyConfirmed = true;
        summary.verdict = record.verdict;
        if (isAttackerPseudonym(record.suspect)) {
          summary.confirmedOnAttacker = true;
        } else {
          summary.falsePositive = true;
        }
      }
      if (summary.packetsUsed == 0) summary.packetsUsed = record.packetsUsed;
    }
  }
  return summary;
}

void HighwayScenario::injectDetectionRequest(VehicleEntity& reporter,
                                             common::Address suspect,
                                             common::ClusterId suspectCluster) {
  const auto chAddress = reporter.membership->clusterHeadAddress();
  const auto myCluster = reporter.membership->currentCluster();
  BDP_ASSERT_MSG(chAddress && myCluster,
                 "reporter has not joined a cluster yet");
  auto dreq = net::makeMutablePayload<core::DetectionRequest>();
  dreq->reporter = reporter.address();
  dreq->reporterCluster = *myCluster;
  dreq->suspect = suspect;
  dreq->suspectCluster = suspectCluster;
  BDP_ASSERT(reporter.agent->credentials().has_value());
  dreq->envelope = core::makeEnvelope(dreq->canonicalBytes(),
                                      *reporter.agent->credentials(), *engine_);
  reporter.node->sendTo(*chAddress, std::move(dreq));
}

VehicleEntity* HighwayScenario::findHonestVehicleIn(common::ClusterId cluster) {
  for (const auto& vehicle : vehicles_) {
    if (vehicle->isAttacker()) continue;
    if (vehicle.get() == source_ || vehicle.get() == destination_) continue;
    if (vehicle->membership->currentCluster() == cluster) {
      return vehicle.get();
    }
  }
  return nullptr;
}

}  // namespace blackdp::scenario
