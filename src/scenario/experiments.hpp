// Experiment runners for the paper's evaluation (§IV) and the ablations.
//
// These are shared by the bench binaries (which print the tables) and by the
// integration tests (which assert the paper-shape properties: zero false
// positives, 100% detection in clusters 1–7, degradation in 8–10, and the
// Fig. 5 packet-count ranges).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "metrics/confusion.hpp"
#include "obs/registry.hpp"
#include "scenario/highway_scenario.hpp"
#include "sim/parallel.hpp"

namespace blackdp::scenario {

// ---------------------------------------------------------------- Figure 4

struct Fig4Cell {
  common::ClusterId cluster{};
  AttackType attack{AttackType::kSingle};
  std::uint32_t trials{0};
  std::uint32_t detected{0};        ///< confirmed on a true attacker
  std::uint32_t falsePositives{0};  ///< trials confirming an honest node
  std::uint32_t prevented{0};       ///< undetected but route never verified
                                    ///< through the attacker

  [[nodiscard]] double detectionAccuracy() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(detected) /
                             static_cast<double>(trials);
  }
  [[nodiscard]] double falsePositiveRate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(falsePositives) /
                             static_cast<double>(trials);
  }
  [[nodiscard]] double falseNegativeRate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(trials - detected) /
                             static_cast<double>(trials);
  }
};

/// Runs `trials` seeded repetitions of one (cluster, attack-type) treatment.
/// With a registry, every trial's verifier report and completed detection
/// sessions fold into it (per-stage latency histograms, verdict counters).
[[nodiscard]] Fig4Cell runFig4Cell(AttackType attack, common::ClusterId cluster,
                                   std::uint32_t trials,
                                   std::uint64_t seedBase,
                                   const ScenarioConfig& base = {},
                                   obs::MetricsRegistry* registry = nullptr);

/// Full sweep: clusters 1..10 × {single, cooperative}. With a runner, the
/// flattened (treatment × trial) grid fans out across its workers; trial
/// results — including per-trial telemetry snapshots when a registry is
/// given — fold in submission order, so the cells and the registry contents
/// are independent of the worker count.
[[nodiscard]] std::vector<Fig4Cell> runFig4Sweep(
    std::uint32_t trials, std::uint64_t seedBase,
    const std::function<void(const Fig4Cell&)>& onCell = nullptr,
    obs::MetricsRegistry* registry = nullptr,
    const sim::ParallelRunner* runner = nullptr);

// ---------------------------------------------------------------- Figure 5

struct Fig5Case {
  std::string label;
  AttackType attack{AttackType::kNone};
  bool suspectInReporterCluster{true};
  bool flees{false};  ///< attacker answers RREQ₁ then crosses the boundary
};

struct Fig5Result {
  std::string label;
  std::uint32_t detectionPackets{0};
  core::Verdict verdict{core::Verdict::kNotConfirmed};
  /// d_req accepted → verdict reached, at the detecting CH chain.
  sim::Duration latency{};
  /// The full completed-session record (stage timestamps included), for
  /// telemetry folding via core::recordSessionTelemetry.
  core::SessionRecord record{};
};

/// Scripted packet-count measurement for one placement.
[[nodiscard]] Fig5Result runFig5Case(const Fig5Case& c, std::uint64_t seed);

/// The paper's full set of Fig. 5 placements.
[[nodiscard]] std::vector<Fig5Case> fig5Cases();

// ------------------------------------------------- baseline ablation (§V)

struct BaselineCell {
  std::string detector;  ///< "blackdp", "first-rrep-comparison", ...
  AttackType attack{AttackType::kSingle};
  metrics::ConfusionMatrix matrix;
  /// Trials in which the method had ≥2 RREPs to compare (the single-RREP
  /// blind spot the paper describes).
  std::uint32_t trialsWithComparison{0};
};

/// Runs BlackDP and the §V source-side baselines over the same seeded
/// treatments and grades each against ground truth. The PEAK baseline is
/// stateful across a treatment's discoveries by design, so the runner may
/// only fan out at the attack-treatment level (two tasks), never per trial.
[[nodiscard]] std::vector<BaselineCell> runBaselineComparison(
    std::uint32_t trials, std::uint64_t seedBase,
    common::ClusterId attackerCluster = common::ClusterId{2},
    const sim::ParallelRunner* runner = nullptr);

// The density × range sensitivity sweep that used to live here is now the
// built-in "sensitivity" campaign spec (src/campaign/) — the bench is a thin
// front-end over the campaign engine.

}  // namespace blackdp::scenario
