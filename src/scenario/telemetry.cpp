#include "scenario/telemetry.hpp"

#include "core/telemetry.hpp"
#include "scenario/highway_scenario.hpp"
#include "scenario/urban_scenario.hpp"

namespace blackdp::scenario {

void addMediumStats(obs::MetricsRegistry& registry,
                    const net::MediumStats& stats) {
  registry.counter("medium.frames_sent").add(stats.framesSent);
  registry.counter("medium.frames_delivered").add(stats.framesDelivered);
  registry.counter("medium.frames_lost").add(stats.framesLost);
  registry.counter("medium.frames_fault_dropped").add(stats.framesFaultDropped);
  registry.counter("medium.frames_burst_dropped").add(stats.framesBurstDropped);
  registry.counter("medium.frames_jam_dropped").add(stats.framesJamDropped);
  registry.counter("medium.send_failures").add(stats.sendFailures);
  registry.counter("medium.bytes_sent").add(stats.bytesSent);
  registry.counter("medium.grid_rebuilds").add(stats.gridRebuilds);
}

void addBackboneStats(obs::MetricsRegistry& registry,
                      const net::BackboneStats& stats) {
  registry.counter("backbone.messages_sent").add(stats.messagesSent);
  registry.counter("backbone.bytes_sent").add(stats.bytesSent);
  registry.counter("backbone.messages_delivered").add(stats.messagesDelivered);
  registry.counter("backbone.messages_dropped").add(stats.messagesDropped);
  registry.counter("backbone.link_blocked").add(stats.linkBlocked);
  registry.counter("backbone.sends_from_unattached")
      .add(stats.sendsFromUnattached);
  registry.counter("backbone.dead_endpoint_drops").add(stats.deadEndpointDrops);
}

void addFaultStats(obs::MetricsRegistry& registry,
                   const fault::FaultStats& stats) {
  registry.counter("fault.rsu_crashes").add(stats.rsuCrashes);
  registry.counter("fault.rsu_recoveries").add(stats.rsuRecoveries);
  registry.counter("fault.frames_jammed").add(stats.framesJammed);
  registry.counter("fault.frames_burst_lost").add(stats.framesBurstLost);
}

namespace {

template <typename Rsus>
void collectDetectors(obs::MetricsRegistry& registry, Rsus& rsus) {
  // DetectorStats folds in via add(), so per-RSU calls aggregate naturally.
  for (const auto& rsu : rsus) {
    core::recordDetectorStats(registry, rsu->detector->stats());
    for (const auto& record : rsu->detector->completedSessions()) {
      core::recordSessionTelemetry(registry, record);
    }
  }
}

}  // namespace

void collectWorldMetrics(obs::MetricsRegistry& registry,
                         HighwayScenario& world) {
  addMediumStats(registry, world.medium().stats());
  addBackboneStats(registry, world.backbone().stats());
  if (auto* injector = world.faultInjector()) {
    addFaultStats(registry, injector->stats());
  }
  collectDetectors(registry, world.rsus());
}

void collectWorldMetrics(obs::MetricsRegistry& registry, UrbanScenario& world) {
  addMediumStats(registry, world.medium().stats());
  addBackboneStats(registry, world.backbone().stats());
  collectDetectors(registry, world.rsus());
}

}  // namespace blackdp::scenario
