// The megacity national corridor: a 100+ km, 10k-vehicle sharded world.
//
// The corridor is a chain of 1 km SEGMENTS, one RSU each. Segments are the
// unit of locality: every radio interaction is intra-segment by
// construction (segment j's radios sit at y = j * 3000 m, three times the
// 1000 m transmission range, so cross-segment delivery is physically
// impossible), and every INTER-segment effect — a vehicle crossing a
// segment boundary, a detection session chasing a migrating suspect, a
// revocation gossiping outward — travels as a shard::Envelope applied at
// the next epoch boundary, even between segments of the same shard. Because
// segment boundaries and shard boundaries are handled identically, grouping
// segments into 1 shard or N is unobservable: metrics and the canonical
// per-segment log are byte-identical (pinned by tests/shard_test and CI).
//
// Epoch safety: epochs last 1 s and vehicles drive at most 90 km/h = 25 m/s,
// so a vehicle bound to its segment at an epoch boundary drifts <= 25 m
// before the next one — it stays within RSU range (<= 525 m < 1000 m) all
// epoch and can cross at most into an ADJACENT segment per epoch, which is
// exactly the shard layer's maxSegmentHops = 1 envelope bound.
//
// Determinism without RNG: every per-vehicle property (speed, direction,
// entry point, entry/departure epoch, attacker role) and every per-epoch
// offset (beacon time, data-chain send time, relay pick, probe time) is a
// pure hash of (seed, vehicle, epoch, purpose). No stateful generator
// exists anywhere in the corridor, and the medium is configured jitter- and
// loss-free, so it draws no RNG either — the whole world is a pure function
// of (config, epoch count), independently of partitioning and thread count.
//
// Protocol per epoch, per segment (all offsets from the epoch start):
//   +200 us  RSU broadcasts the member digest (sorted, isolated excluded)
//   1-5 ms   every vehicle broadcasts a beacon
//   10-300 ms ~half the vehicles start a data chain: origin -> relay ->
//             destination -> ack, relay and destination hash-picked from
//             the digest. A black-hole relay silently drops; the origin's
//             200 ms ack timeout then files a REPORT with the RSU.
//   epoch start: the RSU's LiteDetector runs one probe round per live
//             session (fake-destination probe at 400-500 ms; a reply is a
//             violation, K = 2 violations confirm, quiet rounds exonerate).
//   verdict: confirmed suspects are dropped from future digests, announced
//             in-segment, and revoked outward via ttl-2 directional gossip.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/lite_detector.hpp"
#include "fault/fault_plan.hpp"
#include "net/frame.hpp"
#include "net/medium.hpp"
#include "net/node.hpp"
#include "obs/registry.hpp"
#include "shard/envelope.hpp"
#include "shard/sharded_sim.hpp"
#include "sim/simulator.hpp"

namespace blackdp::scenario {

// ---------------------------------------------------------------- payloads

class CorridorBeacon final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind = net::PayloadKind::kCorridorBeacon;
  CorridorBeacon() : Payload{kKind} {}
  [[nodiscard]] std::string_view typeName() const override { return "cbeacon"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 32; }
};

class CorridorDigest final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind = net::PayloadKind::kCorridorDigest;
  CorridorDigest(std::uint32_t segmentIn, std::uint32_t epochIn,
                 common::Address rsuIn,
                 std::vector<common::Address> membersIn)
      : Payload{kKind},
        segment{segmentIn},
        epoch{epochIn},
        rsu{rsuIn},
        members{std::move(membersIn)} {}
  [[nodiscard]] std::string_view typeName() const override { return "cdigest"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override {
    return 20 + 8 * static_cast<std::uint32_t>(members.size());
  }
  std::uint32_t segment;
  std::uint32_t epoch;  ///< issue epoch; chains refuse a stale digest
  common::Address rsu;
  std::vector<common::Address> members;  ///< sorted, isolated excluded
};

class CorridorData final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind = net::PayloadKind::kCorridorData;
  CorridorData(std::uint64_t chainIdIn, common::Address originIn,
               common::Address relayIn, common::Address finalDstIn,
               std::uint8_t hopIn)
      : Payload{kKind},
        chainId{chainIdIn},
        origin{originIn},
        relay{relayIn},
        finalDst{finalDstIn},
        hop{hopIn} {}
  [[nodiscard]] std::string_view typeName() const override { return "cdata"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 512; }
  std::uint64_t chainId;
  common::Address origin;
  common::Address relay;
  common::Address finalDst;
  std::uint8_t hop;  ///< 0 = origin -> relay, 1 = relay -> finalDst
};

class CorridorAck final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind = net::PayloadKind::kCorridorAck;
  explicit CorridorAck(std::uint64_t chainIdIn)
      : Payload{kKind}, chainId{chainIdIn} {}
  [[nodiscard]] std::string_view typeName() const override { return "cack"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 32; }
  std::uint64_t chainId;
};

class CorridorReport final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind = net::PayloadKind::kCorridorReport;
  CorridorReport(common::Address suspectIn, std::uint64_t chainIdIn)
      : Payload{kKind}, suspect{suspectIn}, chainId{chainIdIn} {}
  [[nodiscard]] std::string_view typeName() const override { return "creport"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 48; }
  common::Address suspect;
  std::uint64_t chainId;
};

class CorridorProbe final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind = net::PayloadKind::kCorridorProbe;
  CorridorProbe(std::uint64_t probeIdIn, common::Address fakeDstIn)
      : Payload{kKind}, probeId{probeIdIn}, fakeDst{fakeDstIn} {}
  [[nodiscard]] std::string_view typeName() const override { return "cprobe"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 48; }
  std::uint64_t probeId;
  common::Address fakeDst;  ///< nonexistent; honest nodes stay silent
};

class CorridorProbeReply final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind =
      net::PayloadKind::kCorridorProbeReply;
  explicit CorridorProbeReply(std::uint64_t probeIdIn)
      : Payload{kKind}, probeId{probeIdIn} {}
  [[nodiscard]] std::string_view typeName() const override { return "cpreply"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 32; }
  std::uint64_t probeId;
};

class CorridorIsolation final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind =
      net::PayloadKind::kCorridorIsolation;
  explicit CorridorIsolation(common::Address suspectIn)
      : Payload{kKind}, suspect{suspectIn} {}
  [[nodiscard]] std::string_view typeName() const override { return "ciso"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 40; }
  common::Address suspect;
};

// ------------------------------------------------------------------ config

struct CorridorConfig {
  std::uint64_t seed{42};
  std::uint32_t segments{100};  ///< 1 km each -> corridor length in km
  std::uint32_t vehicles{10000};
  std::uint32_t attackerPermille{10};  ///< ~1% black holes
  std::uint32_t departPermille{20};    ///< ~2% leave mid-run (epochs 6-9)
  core::LiteDetector::Config detector{};
  /// Scripted infrastructure faults. Only shardCrashes and rsuOutages are
  /// meaningful in the corridor; both are epoch-indexed and part of the
  /// config hash, so a checkpoint can only resume under the same plan.
  fault::FaultPlan faults{};
  /// Supervisor snapshot interval in epochs. 0 = auto: supervision turns on
  /// (every 2 epochs) iff faults.shardCrashes is non-empty.
  std::uint32_t supervisionEvery{0};
};

/// Everything there is to know about one vehicle, as a pure hash of
/// (config.seed, id) — shards recompute specs instead of shipping them.
struct VehicleSpec {
  double speedMps{0.0};
  bool eastbound{true};
  double entryX{0.0};         ///< position at entry time, metres
  std::uint32_t entryEpoch{0};
  std::uint32_t departEpoch{0xffff'ffffu};  ///< scripted leave (churn)
  bool attacker{false};
};

[[nodiscard]] VehicleSpec vehicleSpec(const CorridorConfig& config,
                                      std::uint32_t id);

/// Vehicle x at simulated time `atUs` (entry position + constant velocity).
[[nodiscard]] double vehicleX(const VehicleSpec& spec, std::int64_t atUs);

inline constexpr double kSegmentLengthM = 1000.0;
inline constexpr double kSegmentYSpacingM = 3000.0;
inline constexpr std::int64_t kEpochUs = 1'000'000;

inline constexpr std::uint64_t kVehicleAddressBase = 0x1'0000'0000ull;
inline constexpr std::uint64_t kRsuAddressBase = 0x2'0000'0000ull;
inline constexpr std::uint64_t kFakeAddressBase = 0x3'0000'0000ull;

[[nodiscard]] inline common::Address vehicleAddress(std::uint32_t id) {
  return common::Address{kVehicleAddressBase + id};
}
[[nodiscard]] inline common::Address rsuAddress(std::uint32_t segment) {
  return common::Address{kRsuAddressBase + segment};
}

/// Cross-segment envelope kinds (shard::Envelope::kind).
enum class CorridorEnvelopeKind : std::uint8_t {
  kMigration = 1,      ///< vehicle crossed a boundary: id + blacklist
  kSessionHandoff,     ///< LiteSessionState chasing a migrated suspect
  kRevocation,         ///< directional isolation gossip: suspect + dir + ttl
};

// ----------------------------------------------------------- canonical log

/// One compact control-plane record. The per-segment streams of these,
/// concatenated segment-ascending, form the partition-invariant canonical
/// trace the byte-identity tests compare.
struct CorridorLogRecord {
  std::uint32_t epoch{0};
  std::uint8_t kind{0};  ///< CorridorLogKind
  std::uint64_t a{0};
  std::uint64_t b{0};
  std::uint64_t value{0};

  friend bool operator==(const CorridorLogRecord&,
                         const CorridorLogRecord&) = default;
};

enum class CorridorLogKind : std::uint8_t {
  kJoin = 1,
  kLeave,
  kMigrateOut,
  kMigrateIn,
  kReport,
  kProbe,
  kViolation,
  kVerdict,
  kIsolation,
  kHandoffOut,
  kHandoffIn,
  kRevocationApplied,
};

[[nodiscard]] std::string_view toString(CorridorLogKind kind);

// ------------------------------------------------------------ shard world

/// One region of the corridor: a private Simulator + WirelessMedium + RSUs
/// + currently-resident vehicles for a contiguous span of segments.
class CorridorShard final : public shard::ShardWorld {
 public:
  CorridorShard(const CorridorConfig& config, std::uint32_t firstSegment,
                std::uint32_t segmentCount);
  ~CorridorShard() override;

  void runEpoch(std::uint32_t epoch, std::span<const shard::Envelope> inbox,
                std::vector<shard::Envelope>& outbox) override;

  /// Serializes the shard's complete epoch-boundary state: per-segment
  /// isolation lists, detector sessions + stats, resident vehicles (id,
  /// motion anchor, blacklist), the full canonical log, the metrics
  /// registry, and the effective medium stats. Everything transient
  /// (digests, chains, ack timers) is dead at a boundary by construction,
  /// so it is not saved.
  void saveState(common::ByteWriter& writer) const override;

  /// Inverse of saveState into a freshly constructed shard. Restored
  /// vehicles re-anchor their LinearMotion at the ORIGINAL anchor time, so
  /// positions stay bit-identical to the uninterrupted run.
  void restoreState(common::ByteReader& reader) override;

  /// Folds detector and medium stats into the registry; call once, after
  /// the final epoch. gridRebuilds is deliberately NOT folded — it depends
  /// on per-shard attach patterns and is the one non-invariant medium stat.
  void foldFinalStats();

  [[nodiscard]] const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// Effective medium stats: live counters plus the restored baseline of
  /// every pre-checkpoint epoch.
  [[nodiscard]] net::MediumStats mediumStats() const;
  [[nodiscard]] std::uint32_t firstSegment() const { return firstSegment_; }
  [[nodiscard]] std::uint32_t segmentCount() const {
    return static_cast<std::uint32_t>(segments_.size());
  }
  /// Canonical log of global segment `segment` (owned by this shard).
  [[nodiscard]] const std::vector<CorridorLogRecord>& segmentLog(
      std::uint32_t segment) const;

  /// Read-only walk over owned segments ascending: global index, isolation
  /// list, detector — the soak invariants' inspection surface.
  void forEachSegment(
      const std::function<void(std::uint32_t segment,
                               const std::vector<common::Address>& isolated,
                               const core::LiteDetector& detector)>& fn) const;

 private:
  struct Vehicle;
  struct Segment;

  Segment& segmentAt(std::uint32_t globalSegment);
  void applyEnvelope(const shard::Envelope& envelope);
  void beginEpoch(Segment& segment, std::uint32_t epoch);
  void endEpoch(Segment& segment, std::uint32_t epoch);
  void spawnVehicle(Segment& segment, std::uint32_t id,
                    std::vector<common::Address> blacklist,
                    CorridorLogKind logKind, std::uint32_t epoch);
  void buildVehicle(Segment& segment, std::uint32_t id,
                    std::vector<common::Address> blacklist,
                    std::int64_t anchorUs);
  void emit(Segment& from, std::uint32_t dstSegment, CorridorEnvelopeKind kind,
            common::Bytes body);
  void installRsuHandlers(Segment& segment);
  void installVehicleHandlers(Segment& segment, Vehicle& vehicle);
  void startDataChain(Segment& segment, Vehicle& vehicle, std::uint32_t epoch);
  /// True while `segment`'s RSU is scripted dark for `epoch`.
  [[nodiscard]] bool rsuDark(std::uint32_t segment, std::uint32_t epoch) const;

  CorridorConfig config_;
  std::uint32_t firstSegment_;
  sim::Simulator sim_;
  net::WirelessMedium medium_;
  obs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<Segment>> segments_;
  /// entrants_[epoch] = vehicle ids entering an owned segment, sorted;
  /// precomputed so beginEpoch never scans the whole fleet.
  std::vector<std::vector<std::uint32_t>> entrants_;
  std::vector<shard::Envelope>* outbox_{nullptr};
  std::uint32_t currentEpoch_{0};
  bool folded_{false};
  bool epochsRun_{false};  ///< guards restoreState into a used shard
  /// Medium stats accumulated before the restore point (restoreState sets
  /// it; the live medium counts only post-restore traffic).
  net::MediumStats mediumBaseline_{};
};

// ------------------------------------------------------------------ world

/// The whole corridor: builds the plan, the shards, and the
/// ShardedSimulation on a borrowed thread pool, and exposes the two
/// partition-invariant surfaces (metrics JSON, canonical log) plus the
/// machine-dependent shard stats for the bench sidecar.
class CorridorWorld {
 public:
  CorridorWorld(CorridorConfig config, std::uint32_t shards,
                sim::ThreadPool& pool);
  ~CorridorWorld();

  /// Runs up to the ABSOLUTE epoch target (so a restored world continues
  /// from its checkpoint), then folds final stats. Equivalent to
  /// `while (nextEpoch() < epochs) step(); finish();`.
  void run(std::uint32_t epochs);

  /// Advances one epoch, applying any scripted shard crash for this epoch
  /// first (the supervisor rebuilds the crashed shard from its snapshot and
  /// replays the retained inboxes before the epoch runs).
  void step();

  /// Folds final stats into the per-shard registries; idempotent. The
  /// metrics surfaces are meaningful only after this.
  void finish();

  /// The next epoch step() would run (== epochs completed so far).
  [[nodiscard]] std::uint32_t nextEpoch() const;

  /// Serializes the whole world at the current epoch boundary as a BDPC
  /// checkpoint envelope: config hash + per-shard state + the in-flight
  /// cross-shard inboxes.
  [[nodiscard]] common::Bytes saveCheckpoint() const;

  /// Restores a saveCheckpoint blob into this FRESHLY CONSTRUCTED world
  /// (same config, same shard count — both enforced via the config hash).
  /// Returns the typed decode error ("bad-magic", "bad-crc", ...),
  /// "config-mismatch", or "malformed" on failure; the world must be
  /// discarded after a failed restore.
  [[nodiscard]] common::Status restoreCheckpoint(
      std::span<const std::uint8_t> blob);

  /// Read-only walk over ALL segments ascending (soak invariants).
  void forEachSegment(
      const std::function<void(std::uint32_t segment,
                               const std::vector<common::Address>& isolated,
                               const core::LiteDetector& detector)>& fn) const;

  /// Deterministic, partition-invariant: merged per-shard registries
  /// (segment-ascending) rendered as a metrics snapshot JSON document.
  [[nodiscard]] std::string metricsJson() const;

  /// Same merged registry as metricsJson, as a snapshot (for bench JSON).
  [[nodiscard]] obs::Snapshot metricsSnapshot() const;

  /// Deterministic, partition-invariant: per-segment control-plane records,
  /// segments ascending, one line each.
  [[nodiscard]] std::string canonicalLog() const;

  /// Deterministic: total medium deliveries (for bench fps).
  [[nodiscard]] std::uint64_t framesDelivered() const;

  /// Machine-dependent: per-shard busy seconds + envelope counts.
  [[nodiscard]] const shard::ShardStats& shardStats() const;

  [[nodiscard]] std::uint32_t shards() const;

 private:
  /// Pure hash over every behavior-determining config field (seed, sizes,
  /// permilles, detector knobs, shard count, supervision, fault plan) —
  /// the resume guard in the checkpoint meta section.
  [[nodiscard]] std::uint64_t configHash() const;

  CorridorConfig config_;
  shard::ShardPlan plan_;
  std::vector<std::unique_ptr<CorridorShard>> shards_;
  std::optional<shard::ShardedSimulation> sharded_;
  bool finished_{false};
};

}  // namespace blackdp::scenario
