#include "scenario/experiments.hpp"

#include "baselines/rrep_detectors.hpp"
#include "common/assert.hpp"
#include "core/telemetry.hpp"

namespace blackdp::scenario {

namespace {

/// Mixes treatment coordinates into per-trial seeds so every trial draws an
/// independent world, deterministically.
std::uint64_t trialSeed(std::uint64_t seedBase, std::uint32_t cluster,
                        AttackType attack, std::uint32_t trial) {
  std::uint64_t h = seedBase;
  h = h * 1000003ull + cluster;
  h = h * 1000003ull + static_cast<std::uint64_t>(attack);
  h = h * 1000003ull + trial;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

}  // namespace

// ---------------------------------------------------------------- Figure 4

Fig4Cell runFig4Cell(AttackType attack, common::ClusterId cluster,
                     std::uint32_t trials, std::uint64_t seedBase,
                     const ScenarioConfig& base,
                     obs::MetricsRegistry* registry) {
  Fig4Cell cell;
  cell.cluster = cluster;
  cell.attack = attack;
  cell.trials = trials;

  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    ScenarioConfig config = base;
    config.seed = trialSeed(seedBase, cluster.value(), attack, trial);
    config.attack = attack;
    config.attackerCluster = cluster;

    HighwayScenario scenario(config);
    const core::VerificationReport report = scenario.runVerification();
    const DetectionSummary summary = scenario.detectionSummary();
    if (registry) {
      core::recordVerifierTelemetry(*registry, report);
      for (const core::SessionRecord& record : summary.sessions) {
        core::recordSessionTelemetry(*registry, record);
      }
    }

    if (summary.falsePositive) ++cell.falsePositives;
    if (summary.confirmedOnAttacker) {
      ++cell.detected;
    } else {
      // The verifier never routes data through an unverified claim, so an
      // undetected attacker still failed to establish its black hole.
      ++cell.prevented;
    }
  }
  return cell;
}

std::vector<Fig4Cell> runFig4Sweep(
    std::uint32_t trials, std::uint64_t seedBase,
    const std::function<void(const Fig4Cell&)>& onCell,
    obs::MetricsRegistry* registry) {
  std::vector<Fig4Cell> cells;
  for (const AttackType attack :
       {AttackType::kSingle, AttackType::kCooperative}) {
    for (std::uint32_t c = 1; c <= 10; ++c) {
      cells.push_back(runFig4Cell(attack, common::ClusterId{c}, trials,
                                  seedBase, {}, registry));
      if (onCell) onCell(cells.back());
    }
  }
  return cells;
}

// ---------------------------------------------------------------- Figure 5

std::vector<Fig5Case> fig5Cases() {
  return {
      {"no attacker, suspect in reporter's cluster", AttackType::kNone, true,
       false},
      {"no attacker, suspect in another cluster", AttackType::kNone, false,
       false},
      {"single, same cluster", AttackType::kSingle, true, false},
      {"single, same cluster, flees mid-detection", AttackType::kSingle, true,
       true},
      {"single, other cluster", AttackType::kSingle, false, false},
      {"single, other cluster, flees mid-detection", AttackType::kSingle,
       false, true},
      {"cooperative, same cluster", AttackType::kCooperative, true, false},
      {"cooperative, same cluster, flees mid-detection",
       AttackType::kCooperative, true, true},
      {"cooperative, other cluster", AttackType::kCooperative, false, false},
      {"cooperative, other cluster, flees mid-detection",
       AttackType::kCooperative, false, true},
  };
}

Fig5Result runFig5Case(const Fig5Case& c, std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  // Deterministic frame ordering: the flee scenarios rely on the leaving
  // notice arriving before the forged reply.
  config.medium.maxJitter = sim::Duration{};
  config.attack = c.attack;
  const common::ClusterId suspectCluster{c.suspectInReporterCluster ? 1u : 2u};
  config.attackerCluster = suspectCluster;
  // Scripted placements: no random evasion, only the forced flee.
  config.evasion.firstEvasiveCluster = 99;
  if (c.flees) {
    config.forcedFleeMode =
        static_cast<int>(attack::FleeMode::kAfterFirstReply);
  }

  HighwayScenario scenario(config);
  scenario.runFor(sim::Duration::milliseconds(500));

  common::Address suspect{};
  common::ClusterId reportedCluster = suspectCluster;
  if (c.attack == AttackType::kNone) {
    const common::ClusterId honestCluster{c.suspectInReporterCluster ? 1u
                                                                     : 3u};
    reportedCluster = honestCluster;
    VehicleEntity* honest = scenario.findHonestVehicleIn(honestCluster);
    BDP_ASSERT_MSG(honest != nullptr, "no honest vehicle in target cluster");
    suspect = honest->address();
  } else {
    suspect = scenario.primaryAttacker()->address();
  }

  scenario.injectDetectionRequest(scenario.source(), suspect, reportedCluster);

  const auto findSession = [&]() -> const core::SessionRecord* {
    for (auto& rsu : scenario.rsus()) {
      for (const core::SessionRecord& record :
           rsu->detector->completedSessions()) {
        if (record.suspect == suspect) return &record;
      }
    }
    return nullptr;
  };
  const bool finished = scenario.runUntil(
      [&] { return findSession() != nullptr; }, sim::Duration::seconds(30));
  BDP_ASSERT_MSG(finished, "detection session did not complete");

  const core::SessionRecord* record = findSession();
  return Fig5Result{c.label, record->packetsUsed, record->verdict,
                    record->latency(), *record};
}

// ------------------------------------------------- baseline ablation (§V)

std::vector<BaselineCell> runBaselineComparison(
    std::uint32_t trials, std::uint64_t seedBase,
    common::ClusterId attackerCluster) {
  std::vector<BaselineCell> cells;

  for (const AttackType attack :
       {AttackType::kSingle, AttackType::kCooperative}) {
    BaselineCell blackdp{"blackdp", attack, {}, 0};
    BaselineCell jaiswal{"first-rrep-comparison", attack, {}, 0};
    BaselineCell peakCell{"peak", attack, {}, 0};
    BaselineCell tanSmall{"static-threshold-small", attack, {}, 0};
    BaselineCell tan{"static-threshold-medium", attack, {}, 0};

    // PEAK is stateful across discoveries by design.
    baselines::FirstRrepComparisonDetector jaiswalDetector;
    baselines::PeakThresholdDetector peakDetector;
    baselines::StaticThresholdDetector tanSmallDetector(
        baselines::Environment::kSmall);
    baselines::StaticThresholdDetector tanDetector(
        baselines::Environment::kMedium);

    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      ScenarioConfig config;
      config.seed =
          trialSeed(seedBase, attackerCluster.value(), attack, trial);
      config.attack = attack;
      config.attackerCluster = attackerCluster;

      // --- BlackDP: the full protocol on this world ---
      {
        HighwayScenario scenario(config);
        (void)scenario.runVerification();
        const DetectionSummary summary = scenario.detectionSummary();
        if (summary.confirmedOnAttacker) {
          blackdp.matrix.addTruePositive();
        } else {
          blackdp.matrix.addFalseNegative();
        }
        if (summary.falsePositive) blackdp.matrix.addFalsePositive();
      }

      // --- Source-side baselines: same world, plain route discovery ---
      {
        HighwayScenario scenario(config);
        scenario.runFor(sim::Duration::milliseconds(500));

        std::vector<aodv::RouteReply> rreps;
        scenario.source().agent->setRrepObserver(
            [&rreps](const aodv::RouteReply& rrep, const net::Frame&) {
              rreps.push_back(rrep);
            });
        bool done = false;
        scenario.source().agent->findRoute(
            scenario.destination().address(), [&done](bool) { done = true; });
        scenario.runUntil([&] { return done; }, sim::Duration::seconds(10));

        const auto grade = [&](BaselineCell& cell,
                               baselines::RrepDetector& detector) {
          const std::vector<common::Address> flagged =
              detector.classify(rreps);
          bool hitAttacker = false;
          for (const common::Address& address : flagged) {
            if (scenario.isAttackerPseudonym(address)) {
              hitAttacker = true;
            } else {
              cell.matrix.addFalsePositive();
            }
          }
          if (hitAttacker) {
            cell.matrix.addTruePositive();
          } else {
            cell.matrix.addFalseNegative();
          }
          if (rreps.size() >= 2) ++cell.trialsWithComparison;
        };
        grade(jaiswal, jaiswalDetector);
        grade(peakCell, peakDetector);
        grade(tanSmall, tanSmallDetector);
        grade(tan, tanDetector);
      }
    }

    cells.push_back(std::move(blackdp));
    cells.push_back(std::move(jaiswal));
    cells.push_back(std::move(peakCell));
    cells.push_back(std::move(tanSmall));
    cells.push_back(std::move(tan));
  }
  return cells;
}

}  // namespace blackdp::scenario
