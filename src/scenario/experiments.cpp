#include "scenario/experiments.hpp"

#include "baselines/rrep_detectors.hpp"
#include "common/assert.hpp"
#include "core/telemetry.hpp"

namespace blackdp::scenario {

namespace {

/// Mixes treatment coordinates into per-trial seeds so every trial draws an
/// independent world, deterministically.
std::uint64_t trialSeed(std::uint64_t seedBase, std::uint32_t cluster,
                        AttackType attack, std::uint32_t trial) {
  std::uint64_t h = seedBase;
  h = h * 1000003ull + cluster;
  h = h * 1000003ull + static_cast<std::uint64_t>(attack);
  h = h * 1000003ull + trial;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

}  // namespace

// ---------------------------------------------------------------- Figure 4

Fig4Cell runFig4Cell(AttackType attack, common::ClusterId cluster,
                     std::uint32_t trials, std::uint64_t seedBase,
                     const ScenarioConfig& base,
                     obs::MetricsRegistry* registry) {
  Fig4Cell cell;
  cell.cluster = cluster;
  cell.attack = attack;
  cell.trials = trials;

  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    ScenarioConfig config = base;
    config.seed = trialSeed(seedBase, cluster.value(), attack, trial);
    config.attack = attack;
    config.attackerCluster = cluster;

    HighwayScenario scenario(config);
    const core::VerificationReport report = scenario.runVerification();
    const DetectionSummary summary = scenario.detectionSummary();
    if (registry) {
      core::recordVerifierTelemetry(*registry, report);
      for (const core::SessionRecord& record : summary.sessions) {
        core::recordSessionTelemetry(*registry, record);
      }
    }

    if (summary.falsePositive) ++cell.falsePositives;
    if (summary.confirmedOnAttacker) {
      ++cell.detected;
    } else {
      // The verifier never routes data through an unverified claim, so an
      // undetected attacker still failed to establish its black hole.
      ++cell.prevented;
    }
  }
  return cell;
}

namespace {

/// One Fig. 4 trial's foldable outcome. Telemetry is carried as a snapshot
/// of a trial-local registry so the caller can merge in submission order.
struct Fig4TrialOutcome {
  bool falsePositive{false};
  bool confirmedOnAttacker{false};
  obs::Snapshot telemetry;
};

Fig4TrialOutcome runFig4Trial(AttackType attack, common::ClusterId cluster,
                              std::uint64_t seed, bool wantTelemetry) {
  ScenarioConfig config;
  config.seed = seed;
  config.attack = attack;
  config.attackerCluster = cluster;

  HighwayScenario scenario(config);
  const core::VerificationReport report = scenario.runVerification();
  const DetectionSummary summary = scenario.detectionSummary();

  Fig4TrialOutcome outcome;
  outcome.falsePositive = summary.falsePositive;
  outcome.confirmedOnAttacker = summary.confirmedOnAttacker;
  if (wantTelemetry) {
    obs::MetricsRegistry local;
    core::recordVerifierTelemetry(local, report);
    for (const core::SessionRecord& record : summary.sessions) {
      core::recordSessionTelemetry(local, record);
    }
    outcome.telemetry = local.snapshot();
  }
  return outcome;
}

}  // namespace

std::vector<Fig4Cell> runFig4Sweep(
    std::uint32_t trials, std::uint64_t seedBase,
    const std::function<void(const Fig4Cell&)>& onCell,
    obs::MetricsRegistry* registry, const sim::ParallelRunner* runner) {
  struct Treatment {
    AttackType attack;
    common::ClusterId cluster;
  };
  std::vector<Treatment> treatments;
  for (const AttackType attack :
       {AttackType::kSingle, AttackType::kCooperative}) {
    for (std::uint32_t c = 1; c <= 10; ++c) {
      treatments.push_back({attack, common::ClusterId{c}});
    }
  }

  // Flatten to (treatment × trial) so small sweeps still fill every worker.
  const sim::ParallelRunner inlineRunner{1};
  const sim::ParallelRunner& pool = runner ? *runner : inlineRunner;
  const std::vector<Fig4TrialOutcome> outcomes =
      pool.map<Fig4TrialOutcome>(treatments.size() * trials, [&](std::size_t i) {
        const Treatment& treatment = treatments[i / trials];
        const auto trial = static_cast<std::uint32_t>(i % trials);
        return runFig4Trial(
            treatment.attack, treatment.cluster,
            trialSeed(seedBase, treatment.cluster.value(), treatment.attack,
                      trial),
            registry != nullptr);
      });

  // Fold in submission order: identical for any worker count, and identical
  // cell counts to the serial runFig4Cell loop.
  std::vector<Fig4Cell> cells;
  for (std::size_t t = 0; t < treatments.size(); ++t) {
    Fig4Cell cell;
    cell.cluster = treatments[t].cluster;
    cell.attack = treatments[t].attack;
    cell.trials = trials;
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      const Fig4TrialOutcome& outcome = outcomes[t * trials + trial];
      if (registry) registry->merge(outcome.telemetry);
      if (outcome.falsePositive) ++cell.falsePositives;
      if (outcome.confirmedOnAttacker) {
        ++cell.detected;
      } else {
        ++cell.prevented;
      }
    }
    cells.push_back(cell);
    if (onCell) onCell(cells.back());
  }
  return cells;
}

// ---------------------------------------------------------------- Figure 5

std::vector<Fig5Case> fig5Cases() {
  return {
      {"no attacker, suspect in reporter's cluster", AttackType::kNone, true,
       false},
      {"no attacker, suspect in another cluster", AttackType::kNone, false,
       false},
      {"single, same cluster", AttackType::kSingle, true, false},
      {"single, same cluster, flees mid-detection", AttackType::kSingle, true,
       true},
      {"single, other cluster", AttackType::kSingle, false, false},
      {"single, other cluster, flees mid-detection", AttackType::kSingle,
       false, true},
      {"cooperative, same cluster", AttackType::kCooperative, true, false},
      {"cooperative, same cluster, flees mid-detection",
       AttackType::kCooperative, true, true},
      {"cooperative, other cluster", AttackType::kCooperative, false, false},
      {"cooperative, other cluster, flees mid-detection",
       AttackType::kCooperative, false, true},
  };
}

Fig5Result runFig5Case(const Fig5Case& c, std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  // Deterministic frame ordering: the flee scenarios rely on the leaving
  // notice arriving before the forged reply.
  config.medium.maxJitter = sim::Duration{};
  config.attack = c.attack;
  const common::ClusterId suspectCluster{c.suspectInReporterCluster ? 1u : 2u};
  config.attackerCluster = suspectCluster;
  // Scripted placements: no random evasion, only the forced flee.
  config.evasion.firstEvasiveCluster = 99;
  if (c.flees) {
    config.forcedFleeMode =
        static_cast<int>(attack::FleeMode::kAfterFirstReply);
  }

  HighwayScenario scenario(config);
  scenario.runFor(sim::Duration::milliseconds(500));

  common::Address suspect{};
  common::ClusterId reportedCluster = suspectCluster;
  if (c.attack == AttackType::kNone) {
    const common::ClusterId honestCluster{c.suspectInReporterCluster ? 1u
                                                                     : 3u};
    reportedCluster = honestCluster;
    VehicleEntity* honest = scenario.findHonestVehicleIn(honestCluster);
    BDP_ASSERT_MSG(honest != nullptr, "no honest vehicle in target cluster");
    suspect = honest->address();
  } else {
    suspect = scenario.primaryAttacker()->address();
  }

  scenario.injectDetectionRequest(scenario.source(), suspect, reportedCluster);

  const auto findSession = [&]() -> const core::SessionRecord* {
    for (auto& rsu : scenario.rsus()) {
      for (const core::SessionRecord& record :
           rsu->detector->completedSessions()) {
        if (record.suspect == suspect) return &record;
      }
    }
    return nullptr;
  };
  const bool finished = scenario.runUntil(
      [&] { return findSession() != nullptr; }, sim::Duration::seconds(30));
  BDP_ASSERT_MSG(finished, "detection session did not complete");

  const core::SessionRecord* record = findSession();
  return Fig5Result{c.label, record->packetsUsed, record->verdict,
                    record->latency(), *record};
}

// ------------------------------------------------- baseline ablation (§V)

namespace {

/// One attack treatment's full baseline run. Kept whole (not per-trial):
/// the PEAK detector accumulates state across the treatment's discoveries,
/// so splitting trials would change its classifications.
std::vector<BaselineCell> runBaselineTreatment(
    AttackType attack, std::uint32_t trials, std::uint64_t seedBase,
    common::ClusterId attackerCluster) {
    BaselineCell blackdp{"blackdp", attack, {}, 0};
    BaselineCell jaiswal{"first-rrep-comparison", attack, {}, 0};
    BaselineCell peakCell{"peak", attack, {}, 0};
    BaselineCell tanSmall{"static-threshold-small", attack, {}, 0};
    BaselineCell tan{"static-threshold-medium", attack, {}, 0};

    // PEAK is stateful across discoveries by design.
    baselines::FirstRrepComparisonDetector jaiswalDetector;
    baselines::PeakThresholdDetector peakDetector;
    baselines::StaticThresholdDetector tanSmallDetector(
        baselines::Environment::kSmall);
    baselines::StaticThresholdDetector tanDetector(
        baselines::Environment::kMedium);

    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      ScenarioConfig config;
      config.seed =
          trialSeed(seedBase, attackerCluster.value(), attack, trial);
      config.attack = attack;
      config.attackerCluster = attackerCluster;

      // --- BlackDP: the full protocol on this world ---
      {
        HighwayScenario scenario(config);
        (void)scenario.runVerification();
        const DetectionSummary summary = scenario.detectionSummary();
        if (summary.confirmedOnAttacker) {
          blackdp.matrix.addTruePositive();
        } else {
          blackdp.matrix.addFalseNegative();
        }
        if (summary.falsePositive) blackdp.matrix.addFalsePositive();
      }

      // --- Source-side baselines: same world, plain route discovery ---
      {
        HighwayScenario scenario(config);
        scenario.runFor(sim::Duration::milliseconds(500));

        std::vector<aodv::RouteReply> rreps;
        scenario.source().agent->setRrepObserver(
            [&rreps](const aodv::RouteReply& rrep, const net::Frame&) {
              rreps.push_back(rrep);
            });
        bool done = false;
        scenario.source().agent->findRoute(
            scenario.destination().address(), [&done](bool) { done = true; });
        scenario.runUntil([&] { return done; }, sim::Duration::seconds(10));

        const auto grade = [&](BaselineCell& cell,
                               baselines::RrepDetector& detector) {
          const std::vector<common::Address> flagged =
              detector.classify(rreps);
          bool hitAttacker = false;
          for (const common::Address& address : flagged) {
            if (scenario.isAttackerPseudonym(address)) {
              hitAttacker = true;
            } else {
              cell.matrix.addFalsePositive();
            }
          }
          if (hitAttacker) {
            cell.matrix.addTruePositive();
          } else {
            cell.matrix.addFalseNegative();
          }
          if (rreps.size() >= 2) ++cell.trialsWithComparison;
        };
        grade(jaiswal, jaiswalDetector);
        grade(peakCell, peakDetector);
        grade(tanSmall, tanSmallDetector);
        grade(tan, tanDetector);
      }
    }

    std::vector<BaselineCell> cells;
    cells.push_back(std::move(blackdp));
    cells.push_back(std::move(jaiswal));
    cells.push_back(std::move(peakCell));
    cells.push_back(std::move(tanSmall));
    cells.push_back(std::move(tan));
    return cells;
}

}  // namespace

std::vector<BaselineCell> runBaselineComparison(
    std::uint32_t trials, std::uint64_t seedBase,
    common::ClusterId attackerCluster, const sim::ParallelRunner* runner) {
  const std::vector<AttackType> attacks{AttackType::kSingle,
                                        AttackType::kCooperative};
  const sim::ParallelRunner inlineRunner{1};
  const sim::ParallelRunner& pool = runner ? *runner : inlineRunner;
  const std::vector<std::vector<BaselineCell>> perAttack =
      pool.map<std::vector<BaselineCell>>(attacks.size(), [&](std::size_t i) {
        return runBaselineTreatment(attacks[i], trials, seedBase,
                                    attackerCluster);
      });

  std::vector<BaselineCell> cells;
  for (const std::vector<BaselineCell>& treatment : perAttack) {
    cells.insert(cells.end(), treatment.begin(), treatment.end());
  }
  return cells;
}

}  // namespace blackdp::scenario
