// Scenario configuration (paper Table I + §IV-A placement rules).
#pragma once

#include <cstdint>
#include <optional>

#include "aodv/agent.hpp"
#include "attack/accusation_flooder.hpp"
#include "common/ids.hpp"
#include "core/rsu_detector.hpp"
#include "core/source_verifier.hpp"
#include "crypto/trusted_authority.hpp"
#include "fault/fault_plan.hpp"
#include "net/medium.hpp"

namespace blackdp::scenario {

enum class AttackType : std::uint32_t {
  kNone,
  kSingle,
  kCooperative,
  /// Probe-evading single black hole: only forges replies for destinations
  /// it has overheard on the air (defeats the naive fake-destination probe).
  kSelective,
};

[[nodiscard]] std::string_view toString(AttackType type);

/// Evasive behaviours available to attackers placed in the paper's
/// certificate-renewal clusters (8–10 by default).
struct EvasionPolicy {
  /// First cluster (inclusive) where evasion/renewal is possible.
  std::uint32_t firstEvasiveCluster{8};
  /// Per-trial probability that the attacker adopts the "act legitimately
  /// during detection" behaviour; grows linearly per evasive cluster.
  double actLegitBase{0.10};
  double actLegitStep{0.08};
  /// Per-trial probability of the pseudonym-renewal behaviour.
  double renewBase{0.08};
  double renewStep{0.07};
  /// Probability of fleeing off the highway when probed in the last cluster.
  double fleeOffHighway{0.30};
};

struct ScenarioConfig {
  // --- Table I ---
  double highwayLengthM{10'000.0};
  double highwayWidthM{200.0};
  double clusterLengthM{1'000.0};
  double transmissionRangeM{1'000.0};
  std::uint32_t vehicleCount{100};
  double minSpeedKmh{50.0};
  double maxSpeedKmh{90.0};
  std::uint32_t taCount{2};

  // --- treatment ---
  std::uint64_t seed{1};
  AttackType attack{AttackType::kSingle};
  /// Cluster the (primary) attacker starts in (1-based). nullopt = random.
  std::optional<common::ClusterId> attackerCluster{common::ClusterId{2}};
  EvasionPolicy evasion{};
  /// Force a flee mode regardless of evasion draws (Fig. 5 scripting).
  std::optional<int> forcedFleeMode{};  // values of attack::FleeMode
  /// Attacker answers Hello probes with a forged reply instead of dropping.
  bool attackerFakesHelloReply{false};
  /// Certified-but-compromised vehicles flooding forged d_reqs against
  /// honest members (spawned in the attacker cluster). 0 (default) spawns
  /// none and replays the seed byte-for-byte.
  std::uint32_t accusationFlooders{0};
  attack::FlooderConfig flooder{};

  // --- robustness / fault injection ---
  /// Scheduled infrastructure faults. Empty (default) = no fault layer is
  /// installed and the run replays the unfaulted seed bit-for-bit.
  fault::FaultPlan faults{};
  /// CHs advertise their neighbors in JREPs and vehicles re-home to them on
  /// CH silence. Off by default (seed wire format).
  bool chFailover{false};

  // --- component configs ---
  net::MediumConfig medium{};
  aodv::AodvConfig aodv{};
  core::VerifierConfig verifier{};
  core::DetectorConfig detector{};
  crypto::TaConfig ta{};

  /// Simulated-time budget per trial.
  sim::Duration trialTimeout{sim::Duration::seconds(60)};
};

}  // namespace blackdp::scenario
