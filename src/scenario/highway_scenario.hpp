// Fully wired highway world (paper §IV-A).
//
// Builds, from a ScenarioConfig: the simulator, crypto engine, TA network,
// wireless medium, RSU backbone, one cluster head + BlackDP detector per
// segment, and the vehicle fleet (honest AODV + verifier, or black hole
// agents with their evasion callbacks). Placement follows the paper: the
// source car at the beginning of the highway, attacker(s) in a chosen
// cluster but never within range of the destination, cooperative attackers
// within range of each other.
//
// The scenario also keeps the ground-truth ledger (every pseudonym ever
// issued to an attacker node) that Fig. 4's accuracy/FP/FN accounting needs.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "attack/accusation_flooder.hpp"
#include "attack/black_hole_agent.hpp"
#include "attack/gray_hole_agent.hpp"
#include "attack/selective_black_hole.hpp"
#include "cluster/cluster_head.hpp"
#include "cluster/membership_client.hpp"
#include "core/rsu_detector.hpp"
#include "core/source_verifier.hpp"
#include "fault/fault_injector.hpp"
#include "net/backbone.hpp"
#include "scenario/config.hpp"

namespace blackdp::scenario {

struct VehicleEntity {
  common::NodeId nodeId{};
  common::TaId ta{};
  std::unique_ptr<net::BasicNode> node;
  std::unique_ptr<cluster::MembershipClient> membership;
  std::unique_ptr<aodv::AodvAgent> agent;
  /// Non-owning view when `agent` is a BlackHoleAgent.
  attack::BlackHoleAgent* attacker{nullptr};
  /// Non-owning view when `agent` is (additionally) a
  /// SelectiveBlackHoleAgent.
  attack::SelectiveBlackHoleAgent* selective{nullptr};
  /// Non-owning view when `agent` is a GrayHoleAgent.
  attack::GrayHoleAgent* grayHole{nullptr};
  /// Non-owning view when `agent` is an AccusationFlooderAgent.
  attack::AccusationFlooderAgent* flooder{nullptr};
  std::unique_ptr<core::SourceVerifier> verifier;  ///< honest vehicles only

  [[nodiscard]] bool isAttacker() const {
    return attacker != nullptr || grayHole != nullptr || flooder != nullptr;
  }
  [[nodiscard]] common::Address address() const {
    return node->localAddress();
  }
};

struct RsuEntity {
  common::ClusterId cluster{};
  std::unique_ptr<net::BasicNode> node;
  std::unique_ptr<cluster::ClusterHead> head;
  std::unique_ptr<core::RsuDetector> detector;
};

/// Aggregate of all detector activity in a trial.
struct DetectionSummary {
  bool anyConfirmed{false};
  bool confirmedOnAttacker{false};
  bool falsePositive{false};
  core::Verdict verdict{core::Verdict::kNotConfirmed};
  std::uint32_t packetsUsed{0};  ///< of the first completed session
  std::vector<core::SessionRecord> sessions;
};

class HighwayScenario {
 public:
  explicit HighwayScenario(ScenarioConfig config);
  ~HighwayScenario();

  HighwayScenario(const HighwayScenario&) = delete;
  HighwayScenario& operator=(const HighwayScenario&) = delete;

  // ---- accessors ----
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] const mobility::Highway& highway() const { return highway_; }
  [[nodiscard]] crypto::TaNetwork& taNetwork() { return *taNetwork_; }
  [[nodiscard]] crypto::CryptoEngine& engine() { return *engine_; }
  [[nodiscard]] net::WirelessMedium& medium() { return *medium_; }
  [[nodiscard]] net::Backbone& backbone() { return *backbone_; }
  /// Non-null iff the config carries a non-empty FaultPlan.
  [[nodiscard]] fault::FaultInjector* faultInjector() {
    return faultInjector_.get();
  }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }

  [[nodiscard]] std::vector<std::unique_ptr<VehicleEntity>>& vehicles() {
    return vehicles_;
  }
  [[nodiscard]] std::vector<std::unique_ptr<RsuEntity>>& rsus() {
    return rsus_;
  }
  [[nodiscard]] VehicleEntity& source() { return *source_; }
  [[nodiscard]] VehicleEntity& destination() { return *destination_; }
  [[nodiscard]] VehicleEntity* primaryAttacker() { return primaryAttacker_; }
  [[nodiscard]] VehicleEntity* accomplice() { return accomplice_; }
  [[nodiscard]] RsuEntity& rsu(common::ClusterId cluster);

  /// Ground truth: was this pseudonym ever issued to an attacker node?
  [[nodiscard]] bool isAttackerPseudonym(common::Address pseudonym) const;

  // ---- running ----
  /// Runs the simulation for a fixed span (joins, settling, propagation).
  void runFor(sim::Duration span);
  /// Steps until `predicate()` or the cap elapses; true if it fired.
  bool runUntil(const std::function<bool()>& predicate, sim::Duration cap);

  /// The headline trial: the source establishes a verified route to the
  /// destination; returns the verifier's report (of the last round).
  /// Includes a settling run for joins before and isolation propagation
  /// after. `rounds > 1` repeats the establishment back-to-back — a
  /// selective (cache-gated) black hole sits out the first discovery and
  /// strikes the rediscovery, so single-round trials under-report it.
  [[nodiscard]] core::VerificationReport runVerification(int rounds = 1);

  /// Collects all detector session records and grades them against ground
  /// truth.
  [[nodiscard]] DetectionSummary detectionSummary() const;

  /// Crafts and transmits a signed d_req from `reporter` (Fig. 5 scripting).
  void injectDetectionRequest(VehicleEntity& reporter, common::Address suspect,
                              common::ClusterId suspectCluster);

  /// Some honest, currently-joined vehicle in `cluster` (not source or
  /// destination); nullptr if none.
  [[nodiscard]] VehicleEntity* findHonestVehicleIn(common::ClusterId cluster);

  /// Moves a vehicle to a new longitudinal position and re-runs the cluster
  /// join protocol (used for flee behaviour and test scripting).
  void relocateVehicle(VehicleEntity& vehicle, double newX);

  /// Adds a gray hole (selective dropper, honest control plane) to the
  /// fleet after construction — used by the PDR ablation and the boundary
  /// tests. Unlike a black hole it may sit anywhere, including on the real
  /// path between source and destination.
  VehicleEntity& spawnGrayHole(common::ClusterId cluster,
                               attack::GrayHoleConfig grayConfig);

  /// Adds an accusation-flooding vehicle (certified, honest data plane,
  /// forged d_reqs) to the fleet after construction. Also invoked by
  /// buildWorld for `config.accusationFlooders`.
  VehicleEntity& spawnAccusationFlooder(common::ClusterId cluster,
                                        attack::FlooderConfig flooderConfig);

  /// Ground-truth robustness check: revocation notices issued against
  /// pseudonyms that never belonged to an attacker node (must stay 0 — no
  /// honest vehicle may ever be isolated).
  [[nodiscard]] std::size_t honestRevocations() const;

  /// Data-plane measurement: the source sends `count` packets to the
  /// destination, one every `gap`. Returns attempted vs. delivered counts
  /// (delivery measured at the destination's agent).
  struct DataTransferResult {
    std::uint32_t sent{0};
    std::uint32_t routable{0};  ///< had an active route at send time
    std::uint32_t delivered{0};
    [[nodiscard]] double pdr() const {
      return sent == 0 ? 0.0
                       : static_cast<double>(delivered) /
                             static_cast<double>(sent);
    }
  };
  DataTransferResult sendDataBurst(
      std::uint32_t count, sim::Duration gap = sim::Duration::milliseconds(20));

 private:
  VehicleEntity& addVehicle(mobility::Position position, double speedMps,
                            mobility::Direction direction, bool isAttacker,
                            attack::AttackRole role,
                            const attack::BlackHoleConfig& attackConfig);
  void enroll(VehicleEntity& vehicle);
  void wireAttackerCallbacks(VehicleEntity& vehicle);
  [[nodiscard]] attack::BlackHoleConfig makeAttackConfig(
      common::ClusterId cluster, attack::AttackRole role);
  void buildWorld();

  ScenarioConfig config_;
  sim::Simulator simulator_;
  sim::SeedSequence seeds_;
  sim::Rng rng_;  ///< placement/topology stream
  mobility::Highway highway_;
  std::unique_ptr<crypto::CryptoEngine> engine_;
  std::unique_ptr<crypto::TaNetwork> taNetwork_;
  std::unique_ptr<net::WirelessMedium> medium_;
  std::unique_ptr<net::Backbone> backbone_;
  std::unique_ptr<fault::FaultInjector> faultInjector_;
  std::vector<common::TaId> taIds_;
  std::vector<std::unique_ptr<RsuEntity>> rsus_;
  std::vector<std::unique_ptr<VehicleEntity>> vehicles_;
  VehicleEntity* source_{nullptr};
  VehicleEntity* destination_{nullptr};
  VehicleEntity* primaryAttacker_{nullptr};
  VehicleEntity* accomplice_{nullptr};
  std::uint32_t nextNodeId_{1};
  /// Every pseudonym issued to an attacker node (incl. renewals).
  std::unordered_map<common::Address, common::NodeId> attackerPseudonyms_;
};

}  // namespace blackdp::scenario
