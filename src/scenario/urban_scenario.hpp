// Urban-grid world (paper §VI future work).
//
// A Manhattan grid with one RSU per intersection (each intersection is an
// RSU zone), vehicles driving turn-by-turn street legs, and the same
// trusted-authority / cluster / BlackDP stack as the highway. This is the
// extension experiment the paper names: "the proposed detection protocol
// does not yet account for an urban topology network" — here it does, and
// bench/urban_detection measures how well.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "mobility/urban.hpp"
#include "mobility/urban_mobility.hpp"
#include "scenario/highway_scenario.hpp"

namespace blackdp::scenario {

struct UrbanConfig {
  std::uint32_t blocksX{4};
  std::uint32_t blocksY{4};
  /// Block edge. Kept below the urban radio range so that adjacent
  /// intersections are in range of each other and the street mesh stays
  /// connected even when traffic momentarily clumps at intersections.
  double blockM{500.0};
  /// Urban DSRC range is shorter than open-highway range (buildings).
  double transmissionRangeM{600.0};
  std::uint32_t vehicleCount{80};
  double minSpeedKmh{30.0};
  double maxSpeedKmh{60.0};
  std::uint32_t taCount{2};
  std::uint64_t seed{1};
  AttackType attack{AttackType::kSingle};
  /// Grid coordinates of the (primary) attacker's home intersection.
  std::uint32_t attackerIx{1};
  std::uint32_t attackerIy{1};

  net::MediumConfig medium{};
  aodv::AodvConfig aodv{};
  core::VerifierConfig verifier{};
  core::DetectorConfig detector{};
  crypto::TaConfig ta{};
  sim::Duration trialTimeout{sim::Duration::seconds(60)};
};

class UrbanScenario {
 public:
  explicit UrbanScenario(UrbanConfig config);
  ~UrbanScenario();

  UrbanScenario(const UrbanScenario&) = delete;
  UrbanScenario& operator=(const UrbanScenario&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] const mobility::UrbanGrid& grid() const { return grid_; }
  [[nodiscard]] crypto::TaNetwork& taNetwork() { return *taNetwork_; }
  [[nodiscard]] net::WirelessMedium& medium() { return *medium_; }
  [[nodiscard]] net::Backbone& backbone() { return *backbone_; }
  [[nodiscard]] std::vector<std::unique_ptr<VehicleEntity>>& vehicles() {
    return vehicles_;
  }
  [[nodiscard]] std::vector<std::unique_ptr<RsuEntity>>& rsus() {
    return rsus_;
  }
  [[nodiscard]] VehicleEntity& source() { return *source_; }
  [[nodiscard]] VehicleEntity& destination() { return *destination_; }
  [[nodiscard]] VehicleEntity* primaryAttacker() { return primaryAttacker_; }
  [[nodiscard]] VehicleEntity* accomplice() { return accomplice_; }

  [[nodiscard]] bool isAttackerPseudonym(common::Address pseudonym) const {
    return attackerPseudonyms_.contains(pseudonym);
  }

  void runFor(sim::Duration span);
  bool runUntil(const std::function<bool()>& predicate, sim::Duration cap);

  /// Source establishes a verified route to the destination (same protocol
  /// flow as the highway scenario).
  [[nodiscard]] core::VerificationReport runVerification();

  [[nodiscard]] DetectionSummary detectionSummary() const;

 private:
  VehicleEntity& addVehicle(std::uint32_t ix, std::uint32_t iy,
                            bool isAttacker, attack::AttackRole role);
  void enroll(VehicleEntity& vehicle);
  void buildWorld();

  UrbanConfig config_;
  sim::Simulator simulator_;
  sim::SeedSequence seeds_;
  sim::Rng rng_;
  mobility::UrbanGrid grid_;
  std::unique_ptr<crypto::CryptoEngine> engine_;
  std::unique_ptr<crypto::TaNetwork> taNetwork_;
  std::unique_ptr<net::WirelessMedium> medium_;
  std::unique_ptr<net::Backbone> backbone_;
  std::vector<common::TaId> taIds_;
  std::vector<std::unique_ptr<RsuEntity>> rsus_;
  std::vector<std::unique_ptr<VehicleEntity>> vehicles_;
  /// Per-vehicle turn-by-turn drivers (parallel to vehicles_).
  std::vector<std::unique_ptr<mobility::UrbanMobilityController>> drivers_;
  VehicleEntity* source_{nullptr};
  VehicleEntity* destination_{nullptr};
  VehicleEntity* primaryAttacker_{nullptr};
  VehicleEntity* accomplice_{nullptr};
  std::uint32_t nextNodeId_{1};
  std::unordered_map<common::Address, common::NodeId> attackerPseudonyms_;
};

}  // namespace blackdp::scenario
