#include "scenario/corridor_world.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "common/assert.hpp"
#include "common/address_registry.hpp"
#include "common/bytes.hpp"
#include "codec/checkpoint.hpp"
#include "mobility/motion.hpp"
#include "sim/rng.hpp"

namespace blackdp::scenario {
namespace {

/// The corridor's only "randomness": a pure stateless hash of
/// (seed, entity, epoch-or-zero, purpose). Pure functions are what make the
/// world partition-invariant — no shard ever consumes another's draws.
std::uint64_t corridorHash(std::uint64_t seed, std::uint64_t entity,
                           std::uint64_t epoch, std::uint64_t purpose) {
  std::uint64_t h = common::mixAddress(seed + (purpose + 1) *
                                                  0x9e3779b97f4a7c15ull);
  h = common::mixAddress(h ^ (entity + 0x9e3779b97f4a7c15ull));
  h = common::mixAddress(h ^ (epoch + 0xbf58476d1ce4e5b9ull));
  return h;
}

void insertSorted(std::vector<common::Address>& sorted,
                  common::Address value) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), value);
  if (it == sorted.end() || *it != value) sorted.insert(it, value);
}

[[nodiscard]] bool containsSorted(const std::vector<common::Address>& sorted,
                                  common::Address value) {
  return std::binary_search(sorted.begin(), sorted.end(), value);
}

constexpr std::uint32_t kNeverDeparts = 0xffff'ffffu;

/// Effective supervisor snapshot interval: explicit setting wins; otherwise
/// supervision turns on (every 2 epochs) iff shard crashes are scripted.
std::uint32_t effectiveSupervisionEvery(const CorridorConfig& config) {
  if (config.supervisionEvery != 0) return config.supervisionEvery;
  return config.faults.shardCrashes.empty() ? 0u : 2u;
}

net::MediumConfig corridorMediumConfig() {
  net::MediumConfig config;
  config.transmissionRangeM = 1000.0;
  // Jitter and loss OFF: with both zero the medium draws no RNG at all, so
  // delivery timing is a pure function of the send sequence — required for
  // the shards=1 == shards=N byte-identity guarantee.
  config.maxJitter = sim::Duration{};
  config.lossProbability = 0.0;
  config.spatialGrid = true;
  return config;
}

}  // namespace

VehicleSpec vehicleSpec(const CorridorConfig& config, std::uint32_t id) {
  VehicleSpec spec;
  const std::uint64_t h1 = corridorHash(config.seed, id, 0, 1);
  spec.speedMps = mobility::kmhToMps(50.0 + static_cast<double>(h1 % 41));
  spec.eastbound = ((h1 >> 8) & 1) == 0;
  const double lengthM = config.segments * kSegmentLengthM;
  const std::uint64_t h2 = corridorHash(config.seed, id, 0, 2);
  // Integral metres + 0.5 so an entry point never sits exactly on a
  // segment boundary.
  spec.entryX =
      0.5 + static_cast<double>(h2 % static_cast<std::uint64_t>(lengthM - 1.0));
  const std::uint64_t h3 = corridorHash(config.seed, id, 0, 3);
  spec.entryEpoch = (h3 % 10) < 8 ? 0 : 1 + static_cast<std::uint32_t>(
                                                (h3 >> 8) % 5);
  const std::uint64_t h4 = corridorHash(config.seed, id, 0, 4);
  spec.departEpoch = (h4 % 1000) < config.departPermille
                         ? 6 + static_cast<std::uint32_t>((h4 >> 10) % 4)
                         : kNeverDeparts;
  const std::uint64_t h5 = corridorHash(config.seed, id, 0, 5);
  spec.attacker = (h5 % 1000) < config.attackerPermille;
  return spec;
}

double vehicleX(const VehicleSpec& spec, std::int64_t atUs) {
  const std::int64_t entryUs =
      static_cast<std::int64_t>(spec.entryEpoch) * kEpochUs;
  const double dx =
      spec.speedMps * (static_cast<double>(atUs - entryUs) / 1e6);
  return spec.entryX + (spec.eastbound ? dx : -dx);
}

std::string_view toString(CorridorLogKind kind) {
  switch (kind) {
    case CorridorLogKind::kJoin: return "join";
    case CorridorLogKind::kLeave: return "leave";
    case CorridorLogKind::kMigrateOut: return "migrate-out";
    case CorridorLogKind::kMigrateIn: return "migrate-in";
    case CorridorLogKind::kReport: return "report";
    case CorridorLogKind::kProbe: return "probe";
    case CorridorLogKind::kViolation: return "violation";
    case CorridorLogKind::kVerdict: return "verdict";
    case CorridorLogKind::kIsolation: return "isolation";
    case CorridorLogKind::kHandoffOut: return "handoff-out";
    case CorridorLogKind::kHandoffIn: return "handoff-in";
    case CorridorLogKind::kRevocationApplied: return "revocation";
  }
  return "?";
}

// ----------------------------------------------------------- CorridorShard

struct CorridorShard::Vehicle {
  std::uint32_t id{0};
  VehicleSpec spec;
  /// Time the current LinearMotion was anchored (spawn or migrate-in).
  /// Checkpointed: a restored vehicle MUST re-anchor at this original
  /// instant — anchoring at restore time would split one x = x0 + v*dt
  /// into two float additions and break bit-identity.
  std::int64_t anchorUs{0};
  std::unique_ptr<net::BasicNode> node;
  std::shared_ptr<const CorridorDigest> digest;
  std::vector<common::Address> blacklist;  ///< sorted; migrates with vehicle
  std::uint64_t pendingChain{0};
  common::Address pendingRelay{};
  sim::EventHandle ackTimer{};
};

struct CorridorShard::Segment {
  std::uint32_t index{0};  ///< global segment id
  std::unique_ptr<net::BasicNode> rsu;
  std::unique_ptr<core::LiteDetector> detector;
  /// Resident vehicles, keyed (and scanned) by id — deterministic order.
  std::map<std::uint32_t, std::unique_ptr<Vehicle>> vehicles;
  std::vector<common::Address> isolated;  ///< sorted; excluded from digests
  std::vector<CorridorLogRecord> log;
  std::uint32_t seq{0};  ///< envelope emission counter, reset each epoch
};

CorridorShard::CorridorShard(const CorridorConfig& config,
                             std::uint32_t firstSegment,
                             std::uint32_t segmentCount)
    : config_{config},
      firstSegment_{firstSegment},
      medium_{sim_, sim::Rng{config.seed ^ 0xC0441D04ull},
              corridorMediumConfig()} {
  // Satellite contract: pre-size the medium's interning tables for the
  // whole fleet before the attach storm (bench/micro_substrates measures
  // what this saves). Over-reserving for a small shard costs a few KB.
  medium_.reserve(config_.vehicles + segmentCount + 1,
                  config_.vehicles + segmentCount + 1);

  segments_.reserve(segmentCount);
  for (std::uint32_t s = 0; s < segmentCount; ++s) {
    const std::uint32_t index = firstSegment_ + s;
    auto segment = std::make_unique<Segment>();
    segment->index = index;
    const mobility::Position rsuPos{index * kSegmentLengthM +
                                        kSegmentLengthM / 2,
                                    index * kSegmentYSpacingM};
    segment->rsu = std::make_unique<net::BasicNode>(
        sim_, medium_, common::NodeId{1'000'000 + index},
        mobility::LinearMotion::stationary(rsuPos));
    segment->rsu->setLocalAddress(rsuAddress(index));

    Segment* seg = segment.get();
    core::LiteDetector::Hooks hooks;
    hooks.sendProbe = [this, seg](const core::LiteSessionState& state) {
      const common::Address suspect = state.suspect;
      const std::uint64_t h =
          corridorHash(config_.seed, suspect.value(), currentEpoch_, 13);
      const std::uint64_t probeId =
          corridorHash(config_.seed, suspect.value(), currentEpoch_, 14);
      seg->log.push_back({currentEpoch_,
                          static_cast<std::uint8_t>(CorridorLogKind::kProbe),
                          suspect.value(), 0, state.probesSent});
      sim_.schedule(
          sim::Duration::microseconds(400'000 +
                                      static_cast<std::int64_t>(h % 100'000)),
          [seg, suspect, probeId] {
            seg->rsu->sendTo(suspect,
                             net::makePayload<CorridorProbe>(
                                 probeId, common::Address{kFakeAddressBase +
                                                          (probeId & 0xffff)}));
          });
    };
    hooks.onVerdict = [this, seg](const core::LiteSessionState& state,
                                  core::LiteVerdict verdict) {
      const std::int64_t latencyUs =
          sim_.now().us() - state.firstReportAtUs;
      seg->log.push_back(
          {currentEpoch_,
           static_cast<std::uint8_t>(CorridorLogKind::kVerdict),
           state.suspect.value(), static_cast<std::uint64_t>(verdict),
           static_cast<std::uint64_t>(latencyUs)});
      if (verdict != core::LiteVerdict::kConfirmed) return;
      // Whole milliseconds: integer-valued doubles sum exactly, so the
      // merged histogram sum is independent of observation order — fractional
      // latencies would make shards=1 vs shards=N differ in the last ulp.
      metrics_
          .histogram("corridor.detection_latency_ms", obs::latencyBucketsMs())
          .observe(static_cast<double>(latencyUs / 1000));
      insertSorted(seg->isolated, state.suspect);
      seg->rsu->broadcast(net::makePayload<CorridorIsolation>(state.suspect));
      metrics_.counter("corridor.isolation_broadcasts").add(1);
      seg->log.push_back(
          {currentEpoch_,
           static_cast<std::uint8_t>(CorridorLogKind::kIsolation),
           state.suspect.value(), 0, 0});
      for (const std::uint8_t dir : {std::uint8_t{0}, std::uint8_t{1}}) {
        const std::int64_t next = dir == 0
                                      ? static_cast<std::int64_t>(seg->index) + 1
                                      : static_cast<std::int64_t>(seg->index) - 1;
        if (next < 0 || next >= static_cast<std::int64_t>(config_.segments)) {
          continue;
        }
        common::ByteWriter w;
        w.writeId(state.suspect);
        w.writeU8(dir);
        w.writeU8(2);  // ttl: isolation gossips two segments each way
        emit(*seg, static_cast<std::uint32_t>(next),
             CorridorEnvelopeKind::kRevocation, std::move(w).take());
      }
    };
    hooks.onHandoff = [this, seg](const core::LiteSessionState& state) {
      const std::int64_t next =
          state.travelDirection == 0
              ? static_cast<std::int64_t>(seg->index) + 1
              : static_cast<std::int64_t>(seg->index) - 1;
      if (next < 0 || next >= static_cast<std::int64_t>(config_.segments)) {
        metrics_.counter("corridor.handoffs_dropped").add(1);
        return;
      }
      seg->log.push_back(
          {currentEpoch_,
           static_cast<std::uint8_t>(CorridorLogKind::kHandoffOut),
           state.suspect.value(), static_cast<std::uint64_t>(next),
           state.forwards});
      common::ByteWriter w;
      state.serialize(w);
      emit(*seg, static_cast<std::uint32_t>(next),
           CorridorEnvelopeKind::kSessionHandoff, std::move(w).take());
    };
    segment->detector = std::make_unique<core::LiteDetector>(config_.detector,
                                                             std::move(hooks));
    installRsuHandlers(*segment);
    segments_.push_back(std::move(segment));
  }

  // Precompute entrants per entry epoch (0..5) for the owned segments, in
  // ascending id order, so beginEpoch never rescans the fleet.
  entrants_.resize(6);
  for (std::uint32_t id = 0; id < config_.vehicles; ++id) {
    const VehicleSpec spec = vehicleSpec(config_, id);
    const auto entrySegment =
        static_cast<std::uint32_t>(spec.entryX / kSegmentLengthM);
    if (entrySegment < firstSegment_ ||
        entrySegment >= firstSegment_ + segmentCount) {
      continue;
    }
    entrants_[spec.entryEpoch].push_back(id);
  }
}

CorridorShard::~CorridorShard() = default;

CorridorShard::Segment& CorridorShard::segmentAt(std::uint32_t globalSegment) {
  BDP_ASSERT_MSG(globalSegment >= firstSegment_ &&
                     globalSegment < firstSegment_ + segments_.size(),
                 "segment not owned by this shard");
  return *segments_[globalSegment - firstSegment_];
}

const std::vector<CorridorLogRecord>& CorridorShard::segmentLog(
    std::uint32_t segment) const {
  BDP_ASSERT(segment >= firstSegment_ &&
             segment < firstSegment_ + segments_.size());
  return segments_[segment - firstSegment_]->log;
}

net::MediumStats CorridorShard::mediumStats() const {
  const net::MediumStats& live = medium_.stats();
  net::MediumStats total = mediumBaseline_;
  total.framesSent += live.framesSent;
  total.framesDelivered += live.framesDelivered;
  total.framesLost += live.framesLost;
  total.framesFaultDropped += live.framesFaultDropped;
  total.framesBurstDropped += live.framesBurstDropped;
  total.framesJamDropped += live.framesJamDropped;
  total.sendFailures += live.sendFailures;
  total.bytesSent += live.bytesSent;
  total.gridRebuilds += live.gridRebuilds;
  return total;
}

bool CorridorShard::rsuDark(std::uint32_t segment, std::uint32_t epoch) const {
  for (const fault::SegmentRsuOutageEvent& outage : config_.faults.rsuOutages) {
    if (outage.segment == segment && epoch >= outage.fromEpoch &&
        epoch < outage.untilEpoch) {
      return true;
    }
  }
  return false;
}

void CorridorShard::forEachSegment(
    const std::function<void(std::uint32_t segment,
                             const std::vector<common::Address>& isolated,
                             const core::LiteDetector& detector)>& fn) const {
  for (const auto& segment : segments_) {
    fn(segment->index, segment->isolated, *segment->detector);
  }
}

void CorridorShard::installRsuHandlers(Segment& segment) {
  Segment* seg = &segment;
  segment.rsu->addHandler([this, seg](const net::Frame& frame) {
    // A dark RSU is off the air: frames are consumed but never observed, so
    // no reports, no probes, no verdicts originate here during an outage.
    if (rsuDark(seg->index, currentEpoch_)) return true;
    switch (frame.payload->kind()) {
      case net::PayloadKind::kCorridorBeacon:
        metrics_.counter("corridor.beacons").add(1);
        return true;
      case net::PayloadKind::kCorridorReport: {
        const auto* report =
            static_cast<const CorridorReport*>(frame.payload.get());
        metrics_.counter("corridor.reports").add(1);
        seg->log.push_back(
            {currentEpoch_,
             static_cast<std::uint8_t>(CorridorLogKind::kReport),
             report->suspect.value(), frame.src.value(), report->chainId});
        if (containsSorted(seg->isolated, report->suspect)) return true;
        const auto suspectId = static_cast<std::uint32_t>(
            report->suspect.value() - kVehicleAddressBase);
        const VehicleSpec spec = vehicleSpec(config_, suspectId);
        seg->detector->report(report->suspect, frame.src, sim_.now().us(),
                              spec.eastbound ? 0 : 1);
        return true;
      }
      case net::PayloadKind::kCorridorProbeReply: {
        const auto* reply =
            static_cast<const CorridorProbeReply*>(frame.payload.get());
        seg->log.push_back(
            {currentEpoch_,
             static_cast<std::uint8_t>(CorridorLogKind::kViolation),
             frame.src.value(), 0, reply->probeId});
        seg->detector->onProbeReply(frame.src);
        return true;
      }
      default:
        return false;
    }
  });
  segment.rsu->addFailureHandler([this, seg](const net::Frame& frame) {
    if (rsuDark(seg->index, currentEpoch_)) return;
    if (frame.payload->kind() == net::PayloadKind::kCorridorProbe) {
      seg->detector->onProbeUnreachable(frame.dst);
    }
  });
}

void CorridorShard::buildVehicle(Segment& segment, std::uint32_t id,
                                 std::vector<common::Address> blacklist,
                                 std::int64_t anchorUs) {
  auto vehicle = std::make_unique<Vehicle>();
  vehicle->id = id;
  vehicle->spec = vehicleSpec(config_, id);
  vehicle->anchorUs = anchorUs;
  vehicle->blacklist = std::move(blacklist);
  const double x = vehicleX(vehicle->spec, anchorUs);
  const double vx = vehicle->spec.eastbound ? vehicle->spec.speedMps
                                            : -vehicle->spec.speedMps;
  vehicle->node = std::make_unique<net::BasicNode>(
      sim_, medium_, common::NodeId{1 + id},
      mobility::LinearMotion::withVelocity(
          {x, segment.index * kSegmentYSpacingM}, vx, 0.0,
          sim::TimePoint::fromUs(anchorUs)));
  vehicle->node->setLocalAddress(vehicleAddress(id));
  installVehicleHandlers(segment, *vehicle);
  segment.vehicles.emplace(id, std::move(vehicle));
}

void CorridorShard::spawnVehicle(Segment& segment, std::uint32_t id,
                                 std::vector<common::Address> blacklist,
                                 CorridorLogKind logKind, std::uint32_t epoch) {
  buildVehicle(segment, id, std::move(blacklist), sim_.now().us());
  segment.log.push_back({epoch, static_cast<std::uint8_t>(logKind),
                         vehicleAddress(id).value(), 0, 0});
  if (logKind == CorridorLogKind::kJoin) {
    metrics_.counter("corridor.joins").add(1);
  }
}

void CorridorShard::installVehicleHandlers(Segment& /*segment*/,
                                           Vehicle& vehicle) {
  Vehicle* v = &vehicle;
  vehicle.node->addHandler([this, v](const net::Frame& frame) {
    switch (frame.payload->kind()) {
      case net::PayloadKind::kCorridorDigest:
        v->digest =
            std::static_pointer_cast<const CorridorDigest>(frame.payload);
        return true;
      case net::PayloadKind::kCorridorBeacon:
        return true;
      case net::PayloadKind::kCorridorData: {
        const auto* data =
            static_cast<const CorridorData*>(frame.payload.get());
        const common::Address self = v->node->localAddress();
        if (data->hop == 0 && data->relay == self) {
          if (v->spec.attacker) {
            // The black hole: accept the packet, forward nothing.
            metrics_.counter("corridor.blackhole_drops").add(1);
            return true;
          }
          v->node->sendTo(data->finalDst,
                          net::makePayload<CorridorData>(
                              data->chainId, data->origin, data->relay,
                              data->finalDst, 1));
          return true;
        }
        if (data->hop == 1 && data->finalDst == self) {
          v->node->sendTo(data->origin,
                          net::makePayload<CorridorAck>(data->chainId));
          return true;
        }
        return true;
      }
      case net::PayloadKind::kCorridorAck: {
        const auto* ack = static_cast<const CorridorAck*>(frame.payload.get());
        if (ack->chainId == v->pendingChain && v->pendingChain != 0) {
          v->pendingChain = 0;
          v->node->simulator().cancel(v->ackTimer);
          metrics_.counter("corridor.data_acked").add(1);
        }
        return true;
      }
      case net::PayloadKind::kCorridorProbe: {
        if (v->spec.attacker) {
          // Claims it delivered to the nonexistent destination — the
          // fingerprint the probe exists to elicit.
          const auto* probe =
              static_cast<const CorridorProbe*>(frame.payload.get());
          v->node->sendTo(frame.src,
                          net::makePayload<CorridorProbeReply>(probe->probeId));
        }
        return true;
      }
      case net::PayloadKind::kCorridorIsolation: {
        const auto* iso =
            static_cast<const CorridorIsolation*>(frame.payload.get());
        insertSorted(v->blacklist, iso->suspect);
        return true;
      }
      default:
        return false;
    }
  });
  vehicle.node->addFailureHandler([this, v](const net::Frame& frame) {
    // Origin-to-relay MAC failure: the relay never got the packet, so an
    // accusation would be baseless — the chain is abandoned instead.
    if (frame.payload->kind() != net::PayloadKind::kCorridorData) return;
    const auto* data = static_cast<const CorridorData*>(frame.payload.get());
    if (data->hop == 0 && data->chainId == v->pendingChain &&
        v->pendingChain != 0) {
      v->pendingChain = 0;
      v->node->simulator().cancel(v->ackTimer);
      metrics_.counter("corridor.chain_send_failed").add(1);
    }
  });
}

void CorridorShard::startDataChain(Segment& /*segment*/, Vehicle& vehicle,
                                   std::uint32_t epoch) {
  // A stale digest (previous epoch, or restored-from-checkpoint null) must
  // not seed a chain: membership may have changed, and a dark RSU issues no
  // digest at all — both cases correctly suppress this epoch's traffic.
  if (vehicle.digest == nullptr || vehicle.digest->epoch != epoch ||
      vehicle.digest->members.size() < 3) {
    return;
  }
  const common::Address self = vehicle.node->localAddress();
  const auto& members = vehicle.digest->members;
  const auto pick = [&](std::uint64_t h, common::Address avoid) {
    const std::size_t n = members.size();
    std::size_t i = static_cast<std::size_t>(h % n);
    for (std::size_t step = 0; step < n; ++step, i = (i + 1) % n) {
      const common::Address candidate = members[i];
      if (candidate == self || candidate == avoid) continue;
      if (containsSorted(vehicle.blacklist, candidate)) continue;
      return candidate;
    }
    return common::kNullAddress;
  };
  const std::uint64_t h = corridorHash(config_.seed, vehicle.id, epoch, 12);
  const common::Address relay =
      pick(h, common::kNullAddress);
  if (relay == common::kNullAddress) return;
  const common::Address finalDst = pick(h >> 16, relay);
  if (finalDst == common::kNullAddress) return;

  const std::uint64_t chainId =
      (static_cast<std::uint64_t>(vehicle.id) << 20) | epoch;
  vehicle.pendingChain = chainId;
  vehicle.pendingRelay = relay;
  metrics_.counter("corridor.data_chains").add(1);
  vehicle.node->sendTo(
      relay, net::makePayload<CorridorData>(chainId, self, relay, finalDst, 0));
  Vehicle* v = &vehicle;
  vehicle.ackTimer =
      sim_.schedule(sim::Duration::milliseconds(200), [this, v, chainId] {
        if (v->pendingChain != chainId) return;
        v->pendingChain = 0;
        metrics_.counter("corridor.data_dropped").add(1);
        if (v->digest != nullptr) {
          v->node->sendTo(v->digest->rsu, net::makePayload<CorridorReport>(
                                              v->pendingRelay, chainId));
        }
      });
}

void CorridorShard::beginEpoch(Segment& segment, std::uint32_t epoch) {
  // A dark RSU issues no digest and runs no detector round. Vehicles still
  // beacon and try to chain, but the digest-epoch gate suppresses chains, so
  // the dark segment generates no reports — only envelope-borne effects
  // (revocation gossip, migrations, handoffs) advance its state.
  if (!rsuDark(segment.index, epoch)) {
    // Member digest at +200 us: membership is fixed for the whole epoch, so
    // the payload is built now and shared by every receiver.
    std::vector<common::Address> members;
    members.reserve(segment.vehicles.size());
    for (const auto& [id, vehicle] : segment.vehicles) {
      const common::Address address = vehicleAddress(id);
      if (!containsSorted(segment.isolated, address)) {
        members.push_back(address);
      }
    }
    const net::PayloadPtr digest = net::makePayload<CorridorDigest>(
        segment.index, epoch, rsuAddress(segment.index), std::move(members));
    net::BasicNode* rsu = segment.rsu.get();
    sim_.schedule(sim::Duration::microseconds(200),
                  [rsu, digest] { rsu->broadcast(digest); });

    // One probe round per live session; absent suspects hand off.
    segment.detector->beginEpoch([&segment](common::Address suspect) {
      if (suspect.value() < kVehicleAddressBase) return false;
      const auto id =
          static_cast<std::uint32_t>(suspect.value() - kVehicleAddressBase);
      return segment.vehicles.find(id) != segment.vehicles.end();
    });
  }

  // Per-vehicle traffic: a beacon each, a data chain for roughly half.
  for (const auto& [id, vehiclePtr] : segment.vehicles) {
    Vehicle* vehicle = vehiclePtr.get();
    const std::uint64_t hb = corridorHash(config_.seed, id, epoch, 10);
    sim_.schedule(sim::Duration::microseconds(
                      1000 + static_cast<std::int64_t>(hb % 4000)),
                  [vehicle] {
                    vehicle->node->broadcast(
                        net::makePayload<CorridorBeacon>());
                  });
    const std::uint64_t hd = corridorHash(config_.seed, id, epoch, 11);
    if (hd % 100 < 50) {
      Segment* seg = &segment;
      sim_.schedule(
          sim::Duration::microseconds(
              10'000 + static_cast<std::int64_t>((hd >> 8) % 290'000)),
          [this, seg, vehicle, epoch] {
            startDataChain(*seg, *vehicle, epoch);
          });
    }
  }
}

void CorridorShard::endEpoch(Segment& segment, std::uint32_t epoch) {
  const std::int64_t nowUs = sim_.now().us();
  const double lengthM = config_.segments * kSegmentLengthM;
  std::vector<std::uint32_t> leaving;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> migrating;
  for (const auto& [id, vehicle] : segment.vehicles) {
    const double x = vehicleX(vehicle->spec, nowUs);
    if (vehicle->spec.departEpoch == epoch || x < 0.0 || x >= lengthM) {
      leaving.push_back(id);
      continue;
    }
    const auto newSegment = static_cast<std::uint32_t>(x / kSegmentLengthM);
    if (newSegment != segment.index) migrating.push_back({id, newSegment});
  }
  for (const std::uint32_t id : leaving) {
    segment.log.push_back({epoch,
                           static_cast<std::uint8_t>(CorridorLogKind::kLeave),
                           vehicleAddress(id).value(), 0, 0});
    metrics_.counter("corridor.leaves").add(1);
    segment.vehicles.erase(id);  // ~BasicNode detaches from the medium
  }
  for (const auto& [id, newSegment] : migrating) {
    Vehicle& vehicle = *segment.vehicles.at(id);
    segment.log.push_back(
        {epoch, static_cast<std::uint8_t>(CorridorLogKind::kMigrateOut),
         vehicleAddress(id).value(), newSegment, 0});
    metrics_.counter("corridor.migrations").add(1);
    common::ByteWriter w;
    w.writeU32(id);
    w.writeU32(static_cast<std::uint32_t>(vehicle.blacklist.size()));
    for (const common::Address address : vehicle.blacklist) {
      w.writeId(address);
    }
    emit(segment, newSegment, CorridorEnvelopeKind::kMigration,
         std::move(w).take());
    segment.vehicles.erase(id);
  }
}

void CorridorShard::emit(Segment& from, std::uint32_t dstSegment,
                         CorridorEnvelopeKind kind, common::Bytes body) {
  BDP_ASSERT_MSG(outbox_ != nullptr, "emit outside runEpoch");
  outbox_->push_back({from.index, dstSegment, from.seq++,
                      static_cast<std::uint8_t>(kind), std::move(body)});
}

void CorridorShard::applyEnvelope(const shard::Envelope& envelope) {
  Segment& segment = segmentAt(envelope.dstSegment);
  common::ByteReader reader{envelope.body};
  switch (static_cast<CorridorEnvelopeKind>(envelope.kind)) {
    case CorridorEnvelopeKind::kMigration: {
      const std::uint32_t id = reader.readU32();
      const std::uint32_t count = reader.readU32();
      std::vector<common::Address> blacklist;
      blacklist.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        blacklist.push_back(reader.readId<common::Address>());
      }
      spawnVehicle(segment, id, std::move(blacklist),
                   CorridorLogKind::kMigrateIn, currentEpoch_);
      break;
    }
    case CorridorEnvelopeKind::kSessionHandoff: {
      const core::LiteSessionState state =
          core::LiteSessionState::deserialize(reader);
      if (containsSorted(segment.isolated, state.suspect)) {
        metrics_.counter("corridor.handoffs_dropped").add(1);
        break;
      }
      segment.log.push_back(
          {currentEpoch_,
           static_cast<std::uint8_t>(CorridorLogKind::kHandoffIn),
           state.suspect.value(), envelope.srcSegment, state.forwards});
      segment.detector->adopt(state);
      break;
    }
    case CorridorEnvelopeKind::kRevocation: {
      const auto suspect = reader.readId<common::Address>();
      const std::uint8_t direction = reader.readU8();
      const std::uint8_t ttl = reader.readU8();
      if (!containsSorted(segment.isolated, suspect)) {
        insertSorted(segment.isolated, suspect);
        metrics_.counter("corridor.revocations_applied").add(1);
        segment.log.push_back(
            {currentEpoch_,
             static_cast<std::uint8_t>(CorridorLogKind::kRevocationApplied),
             suspect.value(), direction, ttl});
      }
      if (ttl > 1) {
        const std::int64_t next =
            direction == 0 ? static_cast<std::int64_t>(segment.index) + 1
                           : static_cast<std::int64_t>(segment.index) - 1;
        if (next >= 0 && next < static_cast<std::int64_t>(config_.segments)) {
          common::ByteWriter w;
          w.writeId(suspect);
          w.writeU8(direction);
          w.writeU8(static_cast<std::uint8_t>(ttl - 1));
          emit(segment, static_cast<std::uint32_t>(next),
               CorridorEnvelopeKind::kRevocation, std::move(w).take());
        }
      }
      break;
    }
  }
}

void CorridorShard::runEpoch(std::uint32_t epoch,
                             std::span<const shard::Envelope> inbox,
                             std::vector<shard::Envelope>& outbox) {
  const sim::TimePoint start =
      sim::TimePoint::fromUs(static_cast<std::int64_t>(epoch) * kEpochUs);
  const sim::TimePoint end =
      sim::TimePoint::fromUs(static_cast<std::int64_t>(epoch + 1) * kEpochUs);
  BDP_ASSERT_MSG(sim_.now() == start, "epochs must run in order");

  epochsRun_ = true;
  outbox_ = &outbox;
  currentEpoch_ = epoch;
  for (auto& segment : segments_) segment->seq = 0;

  // 1. Cross-boundary arrivals from the last epoch, in canonical order.
  for (const shard::Envelope& envelope : inbox) applyEnvelope(envelope);

  // 2. Scripted entrants (ascending id; each into its entry segment).
  if (epoch < entrants_.size()) {
    for (const std::uint32_t id : entrants_[epoch]) {
      const VehicleSpec spec = vehicleSpec(config_, id);
      const auto entrySegment =
          static_cast<std::uint32_t>(spec.entryX / kSegmentLengthM);
      spawnVehicle(segmentAt(entrySegment), id, {}, CorridorLogKind::kJoin,
                   epoch);
    }
  }

  // 3. Kick off the epoch's protocol work, segments ascending.
  for (auto& segment : segments_) beginEpoch(*segment, epoch);

  // 4. Run the epoch. Every scheduled chain resolves well before the
  //    boundary (max offset ~501 ms), so the queue must drain — a pending
  //    event here would mean protocol state about to leak across the
  //    barrier outside an envelope.
  sim_.run(end);
  BDP_ASSERT_MSG(sim_.pendingEvents() == 0,
                 "events may not cross an epoch boundary");
  sim_.fastForward(end);

  // 5. Departures and boundary crossings, segments ascending.
  for (auto& segment : segments_) endEpoch(*segment, epoch);

  outbox_ = nullptr;
}

void CorridorShard::foldFinalStats() {
  if (folded_) return;
  folded_ = true;
  for (const auto& segment : segments_) {
    const core::LiteDetector::Stats& stats = segment->detector->stats();
    metrics_.counter("corridor.sessions_opened").add(stats.sessionsOpened);
    metrics_.counter("corridor.duplicate_reports").add(stats.duplicateReports);
    metrics_.counter("corridor.probe_rounds").add(stats.probeRounds);
    metrics_.counter("corridor.violations").add(stats.violations);
    metrics_.counter("corridor.probes_unreachable")
        .add(stats.probesUnreachable);
    metrics_.counter("corridor.confirmed").add(stats.confirmed);
    metrics_.counter("corridor.exonerated").add(stats.exonerated);
    metrics_.counter("corridor.session_unreachable").add(stats.unreachable);
    metrics_.counter("corridor.handoffs_out").add(stats.handoffsOut);
    metrics_.counter("corridor.handoffs_adopted").add(stats.adopted);
  }
  // Medium stats minus gridRebuilds: rebuild cadence depends on per-shard
  // attach/invalidate patterns, so it is the one non-invariant stat.
  const net::MediumStats m = mediumStats();
  metrics_.counter("medium.frames_sent").add(m.framesSent);
  metrics_.counter("medium.frames_delivered").add(m.framesDelivered);
  metrics_.counter("medium.send_failures").add(m.sendFailures);
  metrics_.counter("medium.bytes_sent").add(m.bytesSent);
}

void CorridorShard::saveState(common::ByteWriter& writer) const {
  BDP_ASSERT_MSG(outbox_ == nullptr, "saveState mid-epoch");
  writer.writeI64(sim_.now().us());
  writer.writeU32(static_cast<std::uint32_t>(segments_.size()));
  for (const auto& segment : segments_) {
    writer.writeU32(segment->index);
    writer.writeU32(static_cast<std::uint32_t>(segment->isolated.size()));
    for (const common::Address address : segment->isolated) {
      writer.writeId(address);
    }
    segment->detector->saveState(writer);
    writer.writeU32(static_cast<std::uint32_t>(segment->vehicles.size()));
    for (const auto& [id, vehicle] : segment->vehicles) {
      writer.writeU32(id);
      writer.writeI64(vehicle->anchorUs);
      writer.writeU32(static_cast<std::uint32_t>(vehicle->blacklist.size()));
      for (const common::Address address : vehicle->blacklist) {
        writer.writeId(address);
      }
    }
    writer.writeU32(static_cast<std::uint32_t>(segment->log.size()));
    for (const CorridorLogRecord& record : segment->log) {
      writer.writeU32(record.epoch);
      writer.writeU8(record.kind);
      writer.writeU64(record.a);
      writer.writeU64(record.b);
      writer.writeU64(record.value);
    }
  }
  obs::serializeSnapshot(metrics_.snapshot(), writer);
  // Effective medium stats become the restored shard's baseline; the live
  // medium then counts only post-restore traffic. gridRebuilds is excluded
  // on purpose (non-invariant, never folded).
  const net::MediumStats m = mediumStats();
  writer.writeU64(m.framesSent);
  writer.writeU64(m.framesDelivered);
  writer.writeU64(m.framesLost);
  writer.writeU64(m.framesFaultDropped);
  writer.writeU64(m.framesBurstDropped);
  writer.writeU64(m.framesJamDropped);
  writer.writeU64(m.sendFailures);
  writer.writeU64(m.bytesSent);
}

void CorridorShard::restoreState(common::ByteReader& reader) {
  BDP_ASSERT_MSG(!epochsRun_ && !folded_,
                 "restoreState requires a freshly constructed shard");
  const std::int64_t nowUs = reader.readI64();
  if (nowUs < 0 || nowUs % kEpochUs != 0) {
    throw std::out_of_range{"corridor restore: clock not an epoch boundary"};
  }
  sim_.fastForward(sim::TimePoint::fromUs(nowUs));
  currentEpoch_ = static_cast<std::uint32_t>(nowUs / kEpochUs);
  const std::uint32_t segmentCount = reader.readU32();
  if (segmentCount != segments_.size()) {
    throw std::out_of_range{"corridor restore: segment count mismatch"};
  }
  for (auto& segment : segments_) {
    const std::uint32_t index = reader.readU32();
    if (index != segment->index) {
      throw std::out_of_range{"corridor restore: segment index mismatch"};
    }
    const std::uint32_t isolatedCount = reader.readU32();
    for (std::uint32_t i = 0; i < isolatedCount; ++i) {
      segment->isolated.push_back(reader.readId<common::Address>());
    }
    if (!std::is_sorted(segment->isolated.begin(), segment->isolated.end())) {
      throw std::out_of_range{"corridor restore: isolation list not sorted"};
    }
    segment->detector->restoreState(reader);
    const std::uint32_t vehicleCount = reader.readU32();
    for (std::uint32_t i = 0; i < vehicleCount; ++i) {
      const std::uint32_t id = reader.readU32();
      const std::int64_t anchorUs = reader.readI64();
      const std::uint32_t blacklistCount = reader.readU32();
      std::vector<common::Address> blacklist;
      for (std::uint32_t j = 0; j < blacklistCount; ++j) {
        blacklist.push_back(reader.readId<common::Address>());
      }
      if (id >= config_.vehicles || anchorUs < 0 || anchorUs > nowUs) {
        throw std::out_of_range{"corridor restore: implausible vehicle"};
      }
      buildVehicle(*segment, id, std::move(blacklist), anchorUs);
    }
    const std::uint32_t logCount = reader.readU32();
    segment->log.reserve(logCount < 4096 ? logCount : 4096);
    for (std::uint32_t i = 0; i < logCount; ++i) {
      CorridorLogRecord record;
      record.epoch = reader.readU32();
      record.kind = reader.readU8();
      record.a = reader.readU64();
      record.b = reader.readU64();
      record.value = reader.readU64();
      segment->log.push_back(record);
    }
  }
  metrics_.merge(obs::deserializeSnapshot(reader));
  mediumBaseline_ = net::MediumStats{};
  mediumBaseline_.framesSent = reader.readU64();
  mediumBaseline_.framesDelivered = reader.readU64();
  mediumBaseline_.framesLost = reader.readU64();
  mediumBaseline_.framesFaultDropped = reader.readU64();
  mediumBaseline_.framesBurstDropped = reader.readU64();
  mediumBaseline_.framesJamDropped = reader.readU64();
  mediumBaseline_.sendFailures = reader.readU64();
  mediumBaseline_.bytesSent = reader.readU64();
}

// ----------------------------------------------------------- CorridorWorld

CorridorWorld::CorridorWorld(CorridorConfig config, std::uint32_t shards,
                             sim::ThreadPool& pool)
    : config_{config},
      plan_{shard::ShardPlan::contiguous(config.segments, shards)} {
  shards_.reserve(shards);
  std::vector<shard::ShardWorld*> worlds;
  worlds.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<CorridorShard>(
        config_, plan_.firstSegment(s), plan_.segmentCount(s)));
    worlds.push_back(shards_.back().get());
  }
  shard::ShardedSimulation::Config shardConfig;
  shardConfig.snapshotEvery = effectiveSupervisionEvery(config_);
  sharded_.emplace(plan_, std::move(worlds), pool, shardConfig);
}

CorridorWorld::~CorridorWorld() = default;

void CorridorWorld::run(std::uint32_t epochs) {
  while (nextEpoch() < epochs) step();
  finish();
}

void CorridorWorld::step() {
  BDP_ASSERT_MSG(!finished_, "step after finish");
  const std::uint32_t epoch = sharded_->epoch();
  for (const fault::ShardCrashEvent& crash : config_.faults.shardCrashes) {
    if (crash.epoch != epoch) continue;
    BDP_ASSERT_MSG(crash.shard < plan_.shards(),
                   "scripted crash for a nonexistent shard");
    auto fresh = std::make_unique<CorridorShard>(
        config_, plan_.firstSegment(crash.shard),
        plan_.segmentCount(crash.shard));
    sharded_->restartShard(crash.shard, fresh.get());
    shards_[crash.shard] = std::move(fresh);
  }
  sharded_->runEpoch();
}

void CorridorWorld::finish() {
  if (finished_) return;
  finished_ = true;
  for (auto& shard : shards_) shard->foldFinalStats();
}

std::uint32_t CorridorWorld::nextEpoch() const { return sharded_->epoch(); }

common::Bytes CorridorWorld::saveCheckpoint() const {
  codec::CheckpointBuilder builder;
  {
    common::ByteWriter w;
    w.writeU64(configHash());
    w.writeU64(config_.seed);
    w.writeU32(sharded_->epoch());
    w.writeU32(plan_.shards());
    w.writeU32(config_.segments);
    w.writeU32(config_.vehicles);
    builder.add(codec::CheckpointTag::kCorridorMeta, std::move(w).take());
  }
  for (const auto& shard : shards_) {
    common::ByteWriter w;
    shard->saveState(w);
    builder.add(codec::CheckpointTag::kCorridorShard, std::move(w).take());
  }
  {
    common::ByteWriter w;
    const auto& inboxes = sharded_->inboxes();
    w.writeU32(static_cast<std::uint32_t>(inboxes.size()));
    for (const auto& inbox : inboxes) {
      w.writeU32(static_cast<std::uint32_t>(inbox.size()));
      for (const shard::Envelope& envelope : inbox) {
        shard::serializeEnvelope(envelope, w);
      }
    }
    builder.add(codec::CheckpointTag::kCorridorExchange, std::move(w).take());
  }
  return builder.finish();
}

common::Status CorridorWorld::restoreCheckpoint(
    std::span<const std::uint8_t> blob) {
  BDP_ASSERT_MSG(sharded_->epoch() == 0 && !finished_,
                 "restore requires a freshly constructed world");
  const auto malformed = [](const std::string& detail) {
    return common::Status{common::Error{"malformed", detail}};
  };
  auto decoded = codec::decodeCheckpoint(blob);
  if (!decoded.ok()) return common::Status{decoded.error()};
  const codec::Checkpoint& checkpoint = decoded.value();

  const common::Bytes* meta =
      checkpoint.find(codec::CheckpointTag::kCorridorMeta);
  if (meta == nullptr) return malformed("missing corridor meta section");
  std::uint32_t epoch = 0;
  try {
    common::ByteReader reader{*meta};
    const std::uint64_t hash = reader.readU64();
    const std::uint64_t seed = reader.readU64();
    epoch = reader.readU32();
    const std::uint32_t shardCount = reader.readU32();
    const std::uint32_t segments = reader.readU32();
    const std::uint32_t vehicles = reader.readU32();
    if (!reader.exhausted()) return malformed("trailing meta bytes");
    if (hash != configHash() || seed != config_.seed ||
        shardCount != plan_.shards() || segments != config_.segments ||
        vehicles != config_.vehicles) {
      return common::Status{common::Error{
          "config-mismatch",
          "checkpoint was written under a different corridor config"}};
    }
  } catch (const std::exception&) {
    return malformed("truncated corridor meta section");
  }

  const std::vector<const common::Bytes*> shardSections =
      checkpoint.findAll(codec::CheckpointTag::kCorridorShard);
  if (shardSections.size() != plan_.shards()) {
    return malformed("shard section count does not match the plan");
  }
  try {
    for (std::uint32_t s = 0; s < plan_.shards(); ++s) {
      common::ByteReader reader{*shardSections[s]};
      shards_[s]->restoreState(reader);
      if (!reader.exhausted()) return malformed("trailing shard bytes");
    }
    const common::Bytes* exchange =
        checkpoint.find(codec::CheckpointTag::kCorridorExchange);
    if (exchange == nullptr) return malformed("missing exchange section");
    common::ByteReader reader{*exchange};
    const std::uint32_t count = reader.readU32();
    if (count != plan_.shards()) {
      return malformed("exchange inbox count does not match the plan");
    }
    std::vector<std::vector<shard::Envelope>> inboxes(count);
    for (std::uint32_t s = 0; s < count; ++s) {
      const std::uint32_t envelopes = reader.readU32();
      for (std::uint32_t i = 0; i < envelopes; ++i) {
        inboxes[s].push_back(shard::deserializeEnvelope(reader));
      }
    }
    if (!reader.exhausted()) return malformed("trailing exchange bytes");
    sharded_->restoreExchange(epoch, std::move(inboxes));
  } catch (const std::exception& e) {
    // ByteReader underruns (std::out_of_range), semantic cross-checks in
    // restoreState, and allocation blow-ups on fuzzed counts all land here:
    // typed error out, never UB. The world is torn and must be discarded.
    return malformed(e.what());
  }
  return common::Status::success();
}

std::uint64_t CorridorWorld::configHash() const {
  std::uint64_t h = corridorHash(config_.seed, config_.segments,
                                 config_.vehicles, 90);
  h = corridorHash(h, config_.attackerPermille, config_.departPermille, 91);
  h = corridorHash(h, config_.detector.probesToConfirm,
                   config_.detector.maxProbes, 92);
  h = corridorHash(h, config_.detector.maxForwards, plan_.shards(), 93);
  h = corridorHash(h, effectiveSupervisionEvery(config_), 0, 94);
  for (const fault::ShardCrashEvent& crash : config_.faults.shardCrashes) {
    h = corridorHash(h, crash.epoch, crash.shard, 95);
  }
  for (const fault::SegmentRsuOutageEvent& outage : config_.faults.rsuOutages) {
    h = corridorHash(h, outage.segment, outage.fromEpoch, 96);
    h = corridorHash(h, outage.untilEpoch, 0, 97);
  }
  return h;
}

void CorridorWorld::forEachSegment(
    const std::function<void(std::uint32_t segment,
                             const std::vector<common::Address>& isolated,
                             const core::LiteDetector& detector)>& fn) const {
  // Shards hold contiguous ascending regions, so walking shards in order
  // visits segments 0..segments-1 ascending.
  for (const auto& shard : shards_) shard->forEachSegment(fn);
}

obs::Snapshot CorridorWorld::metricsSnapshot() const {
  obs::MetricsRegistry merged;
  for (const auto& shard : shards_) merged.merge(shard->metrics().snapshot());
  // Deterministic integrity counters (zero on every healthy run, regardless
  // of partition) join the invariant surface; the machine-dependent and
  // recovery-path counters stay in the bench sidecar only.
  const shard::ShardStats& stats = sharded_->stats();
  merged.counter("shard.epoch_violations").add(stats.epochViolations);
  merged.counter("shard.seq_violations").add(stats.seqViolations);
  merged.counter("shard.crc_rejects").add(stats.crcRejects);
  return merged.snapshot();
}

std::string CorridorWorld::metricsJson() const {
  return metricsSnapshot().toJson();
}

std::string CorridorWorld::canonicalLog() const {
  std::string out;
  for (std::uint32_t segment = 0; segment < config_.segments; ++segment) {
    const CorridorShard& shard = *shards_[plan_.shardOf(segment)];
    for (const CorridorLogRecord& record : shard.segmentLog(segment)) {
      out += "seg=";
      out += std::to_string(segment);
      out += " epoch=";
      out += std::to_string(record.epoch);
      out += " ";
      out += toString(static_cast<CorridorLogKind>(record.kind));
      out += " a=";
      out += std::to_string(record.a);
      out += " b=";
      out += std::to_string(record.b);
      out += " v=";
      out += std::to_string(record.value);
      out += "\n";
    }
  }
  return out;
}

std::uint64_t CorridorWorld::framesDelivered() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->mediumStats().framesDelivered;
  }
  return total;
}

const shard::ShardStats& CorridorWorld::shardStats() const {
  return sharded_->stats();
}

std::uint32_t CorridorWorld::shards() const { return plan_.shards(); }

}  // namespace blackdp::scenario
