// Highway geometry (paper §III-A, Table I).
//
// A straight controlled-access highway of length l and fixed width, divided
// into equal clusters of length r (= the DSRC transmission range); one RSU
// per cluster, centred. Clusters are numbered 1..p with p = l / r.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>

#include "common/ids.hpp"
#include "mobility/zone_map.hpp"

namespace blackdp::mobility {

/// A point on the plane (metres). x runs along the highway, y across it.
struct Position {
  double x{0.0};
  double y{0.0};

  friend bool operator==(const Position&, const Position&) = default;
};

/// Euclidean distance in metres.
[[nodiscard]] inline double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Static highway geometry.
class Highway : public ZoneMap {
 public:
  /// @param lengthM        total highway length (Table I: 10 km)
  /// @param widthM         highway width (Table I: 200 m)
  /// @param clusterLengthM cluster length (Table I: 1000 m, = DSRC range)
  Highway(double lengthM, double widthM, double clusterLengthM);

  [[nodiscard]] double length() const { return lengthM_; }
  [[nodiscard]] double width() const { return widthM_; }
  [[nodiscard]] double clusterLength() const { return clusterLengthM_; }

  /// Number of clusters p = ceil(l / r).
  [[nodiscard]] std::uint32_t clusterCount() const { return clusterCount_; }

  /// Cluster containing longitudinal coordinate x, or nullopt if x is off
  /// the highway. Clusters are 1-based as in the paper (cluster 1..10).
  [[nodiscard]] std::optional<common::ClusterId> clusterAt(double x) const;

  /// Centre position of a cluster (where its RSU is stationed).
  [[nodiscard]] Position clusterCenter(common::ClusterId cluster) const;

  /// Longitudinal interval [begin, end) covered by a cluster.
  [[nodiscard]] double clusterBegin(common::ClusterId cluster) const;
  [[nodiscard]] double clusterEnd(common::ClusterId cluster) const;

  /// True iff the position lies on the highway surface.
  [[nodiscard]] bool contains(const Position& p) const;

  // ---- ZoneMap ----
  [[nodiscard]] std::optional<common::ClusterId> zoneOf(
      const Position& position) const override {
    return clusterAt(position.x);
  }
  [[nodiscard]] std::uint32_t zoneCount() const override {
    return clusterCount();
  }
  [[nodiscard]] Position zoneCenter(common::ClusterId zone) const override {
    return clusterCenter(zone);
  }
  [[nodiscard]] std::optional<common::ClusterId> neighborToward(
      common::ClusterId zone, Direction direction) const override;

 private:
  double lengthM_;
  double widthM_;
  double clusterLengthM_;
  std::uint32_t clusterCount_;
};

}  // namespace blackdp::mobility
