// Urban turn-by-turn mobility.
//
// Drives a vehicle along street legs of an UrbanGrid: straight at constant
// speed between intersections, then a seeded random turn (straight is
// preferred, U-turns are a last resort). The controller owns no network
// state — it publishes each new leg through a motion-setter callback, so the
// scenario layer can rebind the node's trajectory and re-run cluster joins.
#pragma once

#include <functional>

#include "mobility/urban.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace blackdp::mobility {

struct TurnPolicy {
  /// Probability of continuing straight when possible.
  double straightBias{0.5};
};

class UrbanMobilityController {
 public:
  using MotionSetter = std::function<void(const LinearMotion&)>;
  /// Invoked right after every new leg begins (membership re-join hook).
  using LegCallback = std::function<void()>;

  UrbanMobilityController(sim::Simulator& simulator, const UrbanGrid& grid,
                          double speedMps, sim::Rng rng,
                          MotionSetter setMotion, TurnPolicy policy = {});

  UrbanMobilityController(const UrbanMobilityController&) = delete;
  UrbanMobilityController& operator=(const UrbanMobilityController&) = delete;

  /// Starts driving from intersection (ix, iy) with the given heading (must
  /// be an exit of that intersection).
  void start(std::uint32_t ix, std::uint32_t iy, Heading initial);

  void stop();

  void setLegCallback(LegCallback callback) {
    onLeg_ = std::move(callback);
  }

  [[nodiscard]] Heading currentHeading() const { return heading_; }
  [[nodiscard]] std::uint64_t legsDriven() const { return legsDriven_; }

 private:
  void beginLeg(std::uint32_t ix, std::uint32_t iy, Heading heading);
  void onArrival(std::uint32_t ix, std::uint32_t iy);
  [[nodiscard]] Heading pickTurn(std::uint32_t ix, std::uint32_t iy);

  sim::Simulator& simulator_;
  const UrbanGrid& grid_;
  double speedMps_;
  sim::Rng rng_;
  MotionSetter setMotion_;
  TurnPolicy policy_;
  LegCallback onLeg_;
  Heading heading_{Heading::kEast};
  std::uint64_t legsDriven_{0};
  bool running_{false};
  std::uint32_t generation_{0};  ///< invalidates stale arrival events
};

}  // namespace blackdp::mobility
