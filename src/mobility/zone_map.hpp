// Zone abstraction over road geometries.
//
// The paper's protocol needs only three geometric facts: which RSU zone a
// position belongs to, where each zone's RSU sits, and which zone a vehicle
// probably moved to. The highway implements them with linear segments
// (§III-A); the urban grid (the paper's §VI future work) implements them
// with intersection cells. Everything above mobility — cluster management,
// the detector's pursuit heuristic, scenarios — works against this
// interface.
#pragma once

#include <optional>

#include "common/ids.hpp"

namespace blackdp::mobility {

struct Position;
enum class Direction : int;  // defined in mobility/motion.hpp

class ZoneMap {
 public:
  virtual ~ZoneMap() = default;

  /// Zone containing `position` (1-based ids), or nullopt if off-road.
  [[nodiscard]] virtual std::optional<common::ClusterId> zoneOf(
      const Position& position) const = 0;

  [[nodiscard]] virtual std::uint32_t zoneCount() const = 0;

  /// Where the zone's RSU is stationed.
  [[nodiscard]] virtual Position zoneCenter(common::ClusterId zone) const = 0;

  /// Best guess for the zone a vehicle that left `zone` travelling
  /// `direction` is now in (the detector's pursuit heuristic); nullopt if it
  /// would have left the covered area.
  [[nodiscard]] virtual std::optional<common::ClusterId> neighborToward(
      common::ClusterId zone, Direction direction) const = 0;
};

}  // namespace blackdp::mobility
