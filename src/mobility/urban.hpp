// Urban Manhattan-grid topology (the paper's §VI future work: "the proposed
// detection protocol does not yet account for an urban topology network").
//
// Streets form a regular grid: vertical streets at x = i·block and
// horizontal streets at y = j·block, with intersections where they cross.
// Each intersection carries one RSU; its zone is the Voronoi cell around the
// intersection (a block-sized square). Vehicles drive street legs at
// constant velocity and turn at intersections (see UrbanMobilityController).
#pragma once

#include <cstdint>

#include "mobility/highway.hpp"
#include "mobility/motion.hpp"

namespace blackdp::mobility {

/// Compass heading of a street leg.
enum class Heading { kNorth, kEast, kSouth, kWest };

[[nodiscard]] constexpr Heading opposite(Heading h) {
  switch (h) {
    case Heading::kNorth: return Heading::kSouth;
    case Heading::kEast: return Heading::kWest;
    case Heading::kSouth: return Heading::kNorth;
    case Heading::kWest: return Heading::kEast;
  }
  return Heading::kNorth;
}

/// Unit velocity vector of a heading.
[[nodiscard]] constexpr std::pair<double, double> unitVector(Heading h) {
  switch (h) {
    case Heading::kNorth: return {0.0, 1.0};
    case Heading::kEast: return {1.0, 0.0};
    case Heading::kSouth: return {0.0, -1.0};
    case Heading::kWest: return {-1.0, 0.0};
  }
  return {0.0, 0.0};
}

class UrbanGrid : public ZoneMap {
 public:
  /// @param blocksX  number of blocks along x (→ blocksX+1 vertical streets)
  /// @param blocksY  number of blocks along y
  /// @param blockM   block edge length in metres
  UrbanGrid(std::uint32_t blocksX, std::uint32_t blocksY, double blockM);

  [[nodiscard]] std::uint32_t intersectionsX() const { return blocksX_ + 1; }
  [[nodiscard]] std::uint32_t intersectionsY() const { return blocksY_ + 1; }
  [[nodiscard]] double blockLength() const { return blockM_; }
  [[nodiscard]] double width() const {
    return static_cast<double>(blocksX_) * blockM_;
  }
  [[nodiscard]] double height() const {
    return static_cast<double>(blocksY_) * blockM_;
  }

  /// 1-based zone id of the intersection at grid coordinates (ix, iy).
  [[nodiscard]] common::ClusterId zoneIdAt(std::uint32_t ix,
                                           std::uint32_t iy) const;
  /// Inverse of zoneIdAt.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> gridCoordinates(
      common::ClusterId zone) const;

  /// Physical position of a zone's intersection.
  [[nodiscard]] Position intersectionAt(std::uint32_t ix,
                                        std::uint32_t iy) const {
    return Position{static_cast<double>(ix) * blockM_,
                    static_cast<double>(iy) * blockM_};
  }

  /// True iff the position lies on (within tolerance of) some street.
  [[nodiscard]] bool isOnStreet(const Position& position,
                                double toleranceM = 5.0) const;

  /// True iff the position lies within the covered area.
  [[nodiscard]] bool contains(const Position& position) const;

  /// Headings available when standing at intersection (ix, iy) — border
  /// intersections lack some of them.
  [[nodiscard]] std::vector<Heading> exitsFrom(std::uint32_t ix,
                                               std::uint32_t iy) const;

  // ---- ZoneMap ----
  [[nodiscard]] std::optional<common::ClusterId> zoneOf(
      const Position& position) const override;
  [[nodiscard]] std::uint32_t zoneCount() const override {
    return intersectionsX() * intersectionsY();
  }
  [[nodiscard]] Position zoneCenter(common::ClusterId zone) const override;
  [[nodiscard]] std::optional<common::ClusterId> neighborToward(
      common::ClusterId zone, Direction direction) const override;

 private:
  std::uint32_t blocksX_;
  std::uint32_t blocksY_;
  double blockM_;
};

}  // namespace blackdp::mobility
