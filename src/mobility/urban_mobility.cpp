#include "mobility/urban_mobility.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace blackdp::mobility {

UrbanMobilityController::UrbanMobilityController(
    sim::Simulator& simulator, const UrbanGrid& grid, double speedMps,
    sim::Rng rng, MotionSetter setMotion, TurnPolicy policy)
    : simulator_{simulator},
      grid_{grid},
      speedMps_{speedMps},
      rng_{rng},
      setMotion_{std::move(setMotion)},
      policy_{policy} {
  BDP_ASSERT(setMotion_ != nullptr);
  BDP_ASSERT_MSG(speedMps > 0.0, "urban vehicles must move");
}

void UrbanMobilityController::start(std::uint32_t ix, std::uint32_t iy,
                                    Heading initial) {
  const auto exits = grid_.exitsFrom(ix, iy);
  BDP_ASSERT_MSG(std::find(exits.begin(), exits.end(), initial) != exits.end(),
                 "initial heading leaves the grid");
  running_ = true;
  beginLeg(ix, iy, initial);
}

void UrbanMobilityController::stop() {
  running_ = false;
  ++generation_;
}

void UrbanMobilityController::beginLeg(std::uint32_t ix, std::uint32_t iy,
                                       Heading heading) {
  heading_ = heading;
  ++legsDriven_;

  const Position from = grid_.intersectionAt(ix, iy);
  const auto [ux, uy] = unitVector(heading);
  setMotion_(LinearMotion::withVelocity(from, ux * speedMps_, uy * speedMps_,
                                        simulator_.now()));
  if (onLeg_) onLeg_();

  std::uint32_t nx = ix;
  std::uint32_t ny = iy;
  switch (heading) {
    case Heading::kNorth: ++ny; break;
    case Heading::kEast: ++nx; break;
    case Heading::kSouth: --ny; break;
    case Heading::kWest: --nx; break;
  }
  const double legSeconds = grid_.blockLength() / speedMps_;
  const std::uint32_t gen = ++generation_;
  simulator_.schedule(sim::Duration::fromSeconds(legSeconds),
                      [this, nx, ny, gen] {
                        if (running_ && generation_ == gen) onArrival(nx, ny);
                      });
}

void UrbanMobilityController::onArrival(std::uint32_t ix, std::uint32_t iy) {
  beginLeg(ix, iy, pickTurn(ix, iy));
}

Heading UrbanMobilityController::pickTurn(std::uint32_t ix,
                                          std::uint32_t iy) {
  const std::vector<Heading> exits = grid_.exitsFrom(ix, iy);
  BDP_ASSERT(!exits.empty());

  const bool straightPossible =
      std::find(exits.begin(), exits.end(), heading_) != exits.end();
  if (straightPossible && rng_.bernoulli(policy_.straightBias)) {
    return heading_;
  }
  // Otherwise a uniform turn, avoiding the U-turn unless nothing else goes.
  std::vector<Heading> options;
  for (const Heading exit : exits) {
    if (exit != opposite(heading_)) options.push_back(exit);
  }
  if (options.empty()) return opposite(heading_);  // dead end: turn around
  return options[rng_.index(options.size())];
}

}  // namespace blackdp::mobility
