#include "mobility/motion.hpp"

namespace blackdp::mobility {

std::optional<sim::TimePoint> LinearMotion::whenAtAxis(
    double from, double target, double velocity, sim::TimePoint startTime) {
  if (velocity == 0.0) {
    return from == target ? std::optional{startTime} : std::nullopt;
  }
  const double seconds = (target - from) / velocity;
  if (seconds < 0.0) return std::nullopt;  // moving away
  return startTime + sim::Duration::fromSeconds(seconds);
}

std::optional<sim::TimePoint> LinearMotion::whenAtX(double x) const {
  return whenAtAxis(start_.x, x, vx_, startTime_);
}

std::optional<sim::TimePoint> LinearMotion::whenAtY(double y) const {
  return whenAtAxis(start_.y, y, vy_, startTime_);
}

}  // namespace blackdp::mobility
