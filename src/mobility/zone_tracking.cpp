#include "mobility/zone_tracking.hpp"

namespace blackdp::mobility {

std::optional<ZoneChange> nextZoneChange(const LinearMotion& motion,
                                         const ZoneMap& zones,
                                         sim::TimePoint from,
                                         double maxLookaheadM,
                                         double coarseStepM) {
  const double speed = motion.speedMps();
  if (speed <= 0.0) return std::nullopt;

  const auto zoneAtDistance =
      [&](double metres) -> std::optional<common::ClusterId> {
    const sim::TimePoint t =
        from + sim::Duration::fromSeconds(metres / speed);
    return zones.zoneOf(motion.positionAt(t));
  };

  const std::optional<common::ClusterId> startZone = zoneAtDistance(0.0);

  // Coarse scan for the first sample in a different zone.
  double lo = 0.0;
  double hi = 0.0;
  bool found = false;
  for (double d = coarseStepM; d <= maxLookaheadM; d += coarseStepM) {
    if (zoneAtDistance(d) != startZone) {
      hi = d;
      found = true;
      break;
    }
    lo = d;
  }
  if (!found) return std::nullopt;

  // Bisect the boundary down to half a metre.
  while (hi - lo > 0.5) {
    const double mid = (lo + hi) / 2.0;
    if (zoneAtDistance(mid) != startZone) {
      hi = mid;
    } else {
      lo = mid;
    }
  }

  // Just past the boundary (plus a nudge so rounding cannot land us back in
  // the old zone at event time).
  const double crossing = hi + 0.5;
  return ZoneChange{from + sim::Duration::fromSeconds(crossing / speed),
                    zoneAtDistance(crossing)};
}

}  // namespace blackdp::mobility
