#include "mobility/urban.hpp"

#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"

namespace blackdp::mobility {

UrbanGrid::UrbanGrid(std::uint32_t blocksX, std::uint32_t blocksY,
                     double blockM)
    : blocksX_{blocksX}, blocksY_{blocksY}, blockM_{blockM} {
  if (blocksX == 0 || blocksY == 0 || blockM <= 0.0) {
    throw std::invalid_argument("UrbanGrid: dimensions must be positive");
  }
}

common::ClusterId UrbanGrid::zoneIdAt(std::uint32_t ix,
                                      std::uint32_t iy) const {
  BDP_ASSERT_MSG(ix < intersectionsX() && iy < intersectionsY(),
                 "intersection out of grid");
  return common::ClusterId{iy * intersectionsX() + ix + 1};
}

std::pair<std::uint32_t, std::uint32_t> UrbanGrid::gridCoordinates(
    common::ClusterId zone) const {
  BDP_ASSERT_MSG(zone.value() >= 1 && zone.value() <= zoneCount(),
                 "zone out of grid");
  const std::uint32_t index = zone.value() - 1;
  return {index % intersectionsX(), index / intersectionsX()};
}

bool UrbanGrid::isOnStreet(const Position& position,
                           double toleranceM) const {
  if (!contains(position)) return false;
  const double xo = std::remainder(position.x, blockM_);
  const double yo = std::remainder(position.y, blockM_);
  return std::abs(xo) <= toleranceM || std::abs(yo) <= toleranceM;
}

bool UrbanGrid::contains(const Position& position) const {
  const double slack = 1e-9;
  return position.x >= -slack && position.x <= width() + slack &&
         position.y >= -slack && position.y <= height() + slack;
}

std::vector<Heading> UrbanGrid::exitsFrom(std::uint32_t ix,
                                          std::uint32_t iy) const {
  std::vector<Heading> exits;
  if (iy + 1 < intersectionsY()) exits.push_back(Heading::kNorth);
  if (ix + 1 < intersectionsX()) exits.push_back(Heading::kEast);
  if (iy > 0) exits.push_back(Heading::kSouth);
  if (ix > 0) exits.push_back(Heading::kWest);
  return exits;
}

std::optional<common::ClusterId> UrbanGrid::zoneOf(
    const Position& position) const {
  if (!contains(position)) return std::nullopt;
  // Voronoi cell: the nearest intersection.
  const auto ix = static_cast<std::uint32_t>(std::min(
      std::max(std::floor(position.x / blockM_ + 0.5), 0.0),
      static_cast<double>(blocksX_)));
  const auto iy = static_cast<std::uint32_t>(std::min(
      std::max(std::floor(position.y / blockM_ + 0.5), 0.0),
      static_cast<double>(blocksY_)));
  return zoneIdAt(ix, iy);
}

Position UrbanGrid::zoneCenter(common::ClusterId zone) const {
  const auto [ix, iy] = gridCoordinates(zone);
  return intersectionAt(ix, iy);
}

std::optional<common::ClusterId> UrbanGrid::neighborToward(
    common::ClusterId zone, Direction direction) const {
  const auto [ix, iy] = gridCoordinates(zone);
  if (direction == Direction::kEastbound) {
    if (ix + 1 >= intersectionsX()) return std::nullopt;
    return zoneIdAt(ix + 1, iy);
  }
  if (ix == 0) return std::nullopt;
  return zoneIdAt(ix - 1, iy);
}

}  // namespace blackdp::mobility
