// Vehicle kinematics.
//
// Vehicles move at constant velocity; positions are computed analytically
// from the event time — no periodic position-update events, which keeps the
// event queue small and trajectories exact. The highway uses pure x-axis
// motion (paper: uniform 50–90 km/h, two directions); the urban grid (§VI
// future work) uses the general velocity form, one straight leg per street
// segment.
#pragma once

#include <cmath>
#include <optional>

#include "mobility/highway.hpp"
#include "sim/time.hpp"

namespace blackdp::mobility {

/// Travel direction along the highway axis.
enum class Direction { kEastbound, kWestbound };

[[nodiscard]] constexpr double signOf(Direction d) {
  return d == Direction::kEastbound ? 1.0 : -1.0;
}

/// Converts km/h (the paper's unit) to m/s.
[[nodiscard]] constexpr double kmhToMps(double kmh) { return kmh / 3.6; }

/// Constant-velocity trajectory anchored at (startPosition, startTime).
class LinearMotion {
 public:
  LinearMotion() = default;

  /// Highway form: speed along the x axis in the given direction.
  LinearMotion(Position start, double speedMps, Direction direction,
               sim::TimePoint startTime)
      : start_{start},
        vx_{signOf(direction) * speedMps},
        startTime_{startTime} {}

  /// General form: an explicit velocity vector (urban street legs).
  [[nodiscard]] static LinearMotion withVelocity(Position start, double vx,
                                                 double vy,
                                                 sim::TimePoint startTime) {
    LinearMotion m;
    m.start_ = start;
    m.vx_ = vx;
    m.vy_ = vy;
    m.startTime_ = startTime;
    return m;
  }

  /// A stationary trajectory (RSUs).
  [[nodiscard]] static LinearMotion stationary(Position where) {
    return LinearMotion{where, 0.0, Direction::kEastbound, sim::TimePoint{}};
  }

  /// Exact position at time t (may lie beyond the road — callers decide
  /// what leaving the covered area means).
  [[nodiscard]] Position positionAt(sim::TimePoint t) const {
    const double dt = (t - startTime_).toSeconds();
    return Position{start_.x + vx_ * dt, start_.y + vy_ * dt};
  }

  /// Earliest time >= startTime at which the trajectory reaches
  /// longitudinal coordinate x, or nullopt if it never does.
  [[nodiscard]] std::optional<sim::TimePoint> whenAtX(double x) const;
  /// Same for the y axis.
  [[nodiscard]] std::optional<sim::TimePoint> whenAtY(double y) const;

  /// Scalar speed (velocity magnitude).
  [[nodiscard]] double speedMps() const { return std::hypot(vx_, vy_); }
  /// Dominant x-axis direction (the highway notion; pure-y motion reports
  /// eastbound by convention).
  [[nodiscard]] Direction direction() const {
    return vx_ >= 0.0 ? Direction::kEastbound : Direction::kWestbound;
  }
  [[nodiscard]] double vx() const { return vx_; }
  [[nodiscard]] double vy() const { return vy_; }
  [[nodiscard]] sim::TimePoint startTime() const { return startTime_; }
  [[nodiscard]] const Position& startPosition() const { return start_; }

 private:
  [[nodiscard]] static std::optional<sim::TimePoint> whenAtAxis(
      double from, double target, double velocity, sim::TimePoint startTime);

  Position start_{};
  double vx_{0.0};
  double vy_{0.0};
  sim::TimePoint startTime_{};
};

}  // namespace blackdp::mobility
