#include "mobility/highway.hpp"

#include <stdexcept>

#include "common/assert.hpp"
#include "mobility/motion.hpp"

namespace blackdp::mobility {

Highway::Highway(double lengthM, double widthM, double clusterLengthM)
    : lengthM_{lengthM}, widthM_{widthM}, clusterLengthM_{clusterLengthM} {
  if (lengthM <= 0 || widthM <= 0 || clusterLengthM <= 0) {
    throw std::invalid_argument("Highway: dimensions must be positive");
  }
  clusterCount_ =
      static_cast<std::uint32_t>(std::ceil(lengthM / clusterLengthM));
  BDP_ASSERT(clusterCount_ >= 1);
}

std::optional<common::ClusterId> Highway::clusterAt(double x) const {
  if (x < 0.0 || x >= lengthM_) return std::nullopt;
  const auto index = static_cast<std::uint32_t>(x / clusterLengthM_);
  return common::ClusterId{std::min(index, clusterCount_ - 1) + 1};
}

Position Highway::clusterCenter(common::ClusterId cluster) const {
  return Position{(clusterBegin(cluster) + clusterEnd(cluster)) / 2.0,
                  widthM_ / 2.0};
}

double Highway::clusterBegin(common::ClusterId cluster) const {
  BDP_ASSERT_MSG(cluster.value() >= 1 && cluster.value() <= clusterCount_,
                 "cluster id out of range");
  return static_cast<double>(cluster.value() - 1) * clusterLengthM_;
}

double Highway::clusterEnd(common::ClusterId cluster) const {
  return std::min(clusterBegin(cluster) + clusterLengthM_, lengthM_);
}

bool Highway::contains(const Position& p) const {
  return p.x >= 0.0 && p.x < lengthM_ && p.y >= 0.0 && p.y <= widthM_;
}

std::optional<common::ClusterId> Highway::neighborToward(
    common::ClusterId zone, Direction direction) const {
  if (direction == Direction::kEastbound) {
    if (zone.value() >= clusterCount_) return std::nullopt;
    return common::ClusterId{zone.value() + 1};
  }
  if (zone.value() <= 1) return std::nullopt;
  return common::ClusterId{zone.value() - 1};
}

}  // namespace blackdp::mobility
