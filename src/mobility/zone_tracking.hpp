// Zone-boundary prediction along a straight trajectory.
//
// Works for any ZoneMap: samples the trajectory ahead, then bisects to the
// boundary. Membership clients use it to schedule leave/join exactly when a
// vehicle crosses into the next RSU zone — on the highway and on the urban
// grid alike.
#pragma once

#include <optional>

#include "mobility/motion.hpp"
#include "mobility/zone_map.hpp"

namespace blackdp::mobility {

struct ZoneChange {
  sim::TimePoint when;
  /// Zone entered (nullopt = the trajectory leaves the covered area).
  std::optional<common::ClusterId> into;
};

/// Finds the first zone change strictly after `from` along `motion`, looking
/// at most `maxLookaheadM` metres ahead. Returns nullopt when the motion is
/// stationary or no change occurs within the horizon. The returned time is
/// nudged just past the boundary so zoneOf(positionAt(when)) is already the
/// new zone.
[[nodiscard]] std::optional<ZoneChange> nextZoneChange(
    const LinearMotion& motion, const ZoneMap& zones, sim::TimePoint from,
    double maxLookaheadM = 4'000.0, double coarseStepM = 25.0);

}  // namespace blackdp::mobility
