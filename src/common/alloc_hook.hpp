// Optional global allocation-counter hook.
//
// Perf-gated builds (the e2e throughput bench, tests/alloc_guard_test) link
// the `blackdp_alloc_hook` object library, which replaces the global
// operator new/delete family with counting forwarders to malloc/free. Code
// that wants to *measure* allocations includes this header and reads the
// per-thread counters; when the hook is not linked the weak fallbacks below
// report the hook inactive and the counters stay zero, so production
// binaries pay nothing.
//
// Counters are thread-local on purpose: a measurement brackets a span of
// work on one thread (a steady-state frame loop) and must not see noise
// from google-benchmark timer threads or parallel-runner workers.
#pragma once

#include <cstdint>

namespace blackdp::common {

struct AllocCounters {
  std::uint64_t allocations{0};    ///< operator new calls on this thread
  std::uint64_t deallocations{0};  ///< operator delete calls on this thread

  friend bool operator==(const AllocCounters&, const AllocCounters&) = default;
};

/// This thread's counters since thread start. Always {0, 0} when the hook
/// library is not linked.
[[nodiscard]] AllocCounters threadAllocCounters();

/// True iff the counting operator new/delete replacements are linked into
/// this binary (i.e. the numbers above mean something).
[[nodiscard]] bool allocHookActive();

}  // namespace blackdp::common
