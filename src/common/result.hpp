// Minimal expected-style result type (C++20 has no std::expected yet).
//
// Used at API boundaries where failure is a normal outcome (e.g. signature
// verification, certificate validation) rather than a programming error.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace blackdp::common {

/// Error payload: a machine-readable code plus human-readable detail.
struct Error {
  std::string code;
  std::string detail;

  friend bool operator==(const Error&, const Error&) = default;
};

/// Result<T>: either a value or an Error. Intentionally tiny; supports the
/// handful of idioms the code base needs (ok(), value(), error(), map-free).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_{std::move(value)} {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_{std::move(error)} {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().code);
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().code);
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Result::error() on success");
    return std::get<Error>(storage_);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result<void> specialisation-equivalent: success or error.
class [[nodiscard]] Status {
 public:
  Status() = default;                                       // success
  Status(Error error) : error_{std::move(error)} {}         // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Status::error() on success");
    return *error_;
  }

  [[nodiscard]] static Status success() { return {}; }

 private:
  std::optional<Error> error_;
};

}  // namespace blackdp::common
