// Canonical byte serialisation.
//
// Secure packets are signed over a canonical encoding of their contents, so
// the encoding must be deterministic and platform independent: all integers
// are written big-endian, strings and blobs are length-prefixed.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"

namespace blackdp::common {

using Bytes = std::vector<std::uint8_t>;

/// Appends primitives to a byte vector in canonical (big-endian) form.
class ByteWriter {
 public:
  ByteWriter() = default;

  void writeU8(std::uint8_t v);
  void writeU16(std::uint16_t v);
  void writeU32(std::uint32_t v);
  void writeU64(std::uint64_t v);
  void writeI64(std::int64_t v);
  void writeBool(bool v);
  /// Length-prefixed (u32) raw bytes.
  void writeBlob(std::span<const std::uint8_t> blob);
  /// Length-prefixed (u32) UTF-8 string.
  void writeString(std::string_view s);

  template <typename Tag, typename Rep>
  void writeId(StrongId<Tag, Rep> id) {
    if constexpr (sizeof(Rep) == 8) {
      writeU64(static_cast<std::uint64_t>(id.value()));
    } else {
      writeU32(static_cast<std::uint32_t>(id.value()));
    }
  }

  [[nodiscard]] const Bytes& bytes() const { return buffer_; }
  [[nodiscard]] Bytes take() && { return std::move(buffer_); }

 private:
  Bytes buffer_;
};

/// Reads primitives back out of a canonical encoding.
///
/// Throws std::out_of_range on truncated input — decoding errors are
/// programming errors in this simulator (we never decode untrusted bytes; the
/// canonical encoding only feeds hashing and round-trip tests).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_{data} {}

  [[nodiscard]] std::uint8_t readU8();
  [[nodiscard]] std::uint16_t readU16();
  [[nodiscard]] std::uint32_t readU32();
  [[nodiscard]] std::uint64_t readU64();
  [[nodiscard]] std::int64_t readI64();
  [[nodiscard]] bool readBool();
  [[nodiscard]] Bytes readBlob();
  [[nodiscard]] std::string readString();

  template <typename Id>
  [[nodiscard]] Id readId() {
    using Rep = typename Id::rep_type;
    if constexpr (sizeof(Rep) == 8) {
      return Id{static_cast<Rep>(readU64())};
    } else {
      return Id{static_cast<Rep>(readU32())};
    }
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - offset_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t offset_{0};
};

/// Hex encoding (lowercase) of a byte span; used by logs and tests.
[[nodiscard]] std::string toHex(std::span<const std::uint8_t> data);

/// Decodes a lowercase/uppercase hex string. Throws std::invalid_argument on
/// malformed input.
[[nodiscard]] Bytes fromHex(std::string_view hex);

}  // namespace blackdp::common
