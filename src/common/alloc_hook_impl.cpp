// Counting replacements for the global operator new/delete family.
//
// Built as an OBJECT library (`blackdp_alloc_hook`) so that linking it into
// a binary is guaranteed to override both the libstdc++ allocators and the
// weak inactive fallbacks in alloc_hook_stub.cpp. Every operator forwards to
// malloc/free — allocation behaviour is unchanged, only counted.

#include <cstddef>
#include <cstdlib>
#include <new>

#include "common/alloc_hook.hpp"

namespace blackdp::common {
namespace {

thread_local AllocCounters tlsCounters;

void* countedAlloc(std::size_t size, std::size_t align) {
  ++tlsCounters.allocations;
  if (size == 0) size = 1;
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void countedFree(void* p) {
  if (p == nullptr) return;
  ++tlsCounters.deallocations;
  std::free(p);
}

}  // namespace

AllocCounters threadAllocCounters() { return tlsCounters; }

bool allocHookActive() { return true; }

}  // namespace blackdp::common

void* operator new(std::size_t size) {
  return blackdp::common::countedAlloc(size, 0);
}
void* operator new[](std::size_t size) {
  return blackdp::common::countedAlloc(size, 0);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return blackdp::common::countedAlloc(size,
                                       static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return blackdp::common::countedAlloc(size,
                                       static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return blackdp::common::countedAlloc(size, 0);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return blackdp::common::countedAlloc(size, 0);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { blackdp::common::countedFree(p); }
void operator delete[](void* p) noexcept { blackdp::common::countedFree(p); }
void operator delete(void* p, std::size_t) noexcept {
  blackdp::common::countedFree(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  blackdp::common::countedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  blackdp::common::countedFree(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  blackdp::common::countedFree(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  blackdp::common::countedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  blackdp::common::countedFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  blackdp::common::countedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  blackdp::common::countedFree(p);
}
