#include "common/bytes.hpp"

#include <stdexcept>

namespace blackdp::common {

void ByteWriter::writeU8(std::uint8_t v) { buffer_.push_back(v); }

void ByteWriter::writeU16(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
  buffer_.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void ByteWriter::writeU32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    buffer_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void ByteWriter::writeU64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    buffer_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void ByteWriter::writeI64(std::int64_t v) {
  writeU64(static_cast<std::uint64_t>(v));
}

void ByteWriter::writeBool(bool v) { writeU8(v ? 1 : 0); }

void ByteWriter::writeBlob(std::span<const std::uint8_t> blob) {
  writeU32(static_cast<std::uint32_t>(blob.size()));
  buffer_.insert(buffer_.end(), blob.begin(), blob.end());
}

void ByteWriter::writeString(std::string_view s) {
  writeU32(static_cast<std::uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw std::out_of_range("ByteReader: truncated input");
  }
}

std::uint8_t ByteReader::readU8() {
  require(1);
  return data_[offset_++];
}

std::uint16_t ByteReader::readU16() {
  require(2);
  auto hi = static_cast<std::uint16_t>(data_[offset_]);
  auto lo = static_cast<std::uint16_t>(data_[offset_ + 1]);
  offset_ += 2;
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

std::uint32_t ByteReader::readU32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | data_[offset_ + static_cast<std::size_t>(i)];
  }
  offset_ += 4;
  return v;
}

std::uint64_t ByteReader::readU64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | data_[offset_ + static_cast<std::size_t>(i)];
  }
  offset_ += 8;
  return v;
}

std::int64_t ByteReader::readI64() {
  return static_cast<std::int64_t>(readU64());
}

bool ByteReader::readBool() { return readU8() != 0; }

Bytes ByteReader::readBlob() {
  const std::uint32_t len = readU32();
  require(len);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
            data_.begin() + static_cast<std::ptrdiff_t>(offset_ + len));
  offset_ += len;
  return out;
}

std::string ByteReader::readString() {
  const std::uint32_t len = readU32();
  require(len);
  std::string out(reinterpret_cast<const char*>(data_.data() + offset_), len);
  offset_ += len;
  return out;
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("fromHex: invalid hex digit");
}
}  // namespace

std::string toHex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

Bytes fromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("fromHex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((hexNibble(hex[i]) << 4) |
                                            hexNibble(hex[i + 1])));
  }
  return out;
}

}  // namespace blackdp::common
