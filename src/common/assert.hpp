// Always-on invariant checks.
//
// The simulator's correctness claims (e.g. "FP = 0 by construction") lean on
// internal invariants; violating one is a bug, so checks stay enabled in all
// build types and throw, which tests can assert on.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace blackdp::common {

/// Thrown when an internal invariant is violated.
class AssertionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void assertionFailure(const char* expr, const char* file,
                                          int line, const std::string& msg) {
  std::ostringstream os;
  os << "assertion failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw AssertionError(os.str());
}

}  // namespace blackdp::common

#define BDP_ASSERT(expr)                                                     \
  do {                                                                       \
    if (!(expr))                                                             \
      ::blackdp::common::assertionFailure(#expr, __FILE__, __LINE__, {});    \
  } while (false)

#define BDP_ASSERT_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr))                                                             \
      ::blackdp::common::assertionFailure(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
