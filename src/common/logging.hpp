// Lightweight component-tagged logging.
//
// The simulator is silent by default (benchmarks run millions of events); a
// test or example can raise the level to trace protocol behaviour. Log lines
// are routed through a sink so tests can capture them.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace blackdp::common {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view toString(LogLevel level);

/// Global logging configuration. Level and sink are set once at startup from
/// the main thread; emission itself is serialised so parallel trial workers
/// (sim/parallel.hpp) cannot interleave lines.
class Logging {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  std::string_view message)>;

  static LogLevel level() { return level_; }
  static void setLevel(LogLevel level) { level_ = level; }

  /// The installed sink; nullptr when the stderr default is active.
  static const Sink& sink() { return sink_; }

  /// Replaces the sink (default writes to stderr). Pass nullptr to restore
  /// the default.
  static void setSink(Sink sink);

  static void emit(LogLevel level, std::string_view component,
                   std::string_view message);

 private:
  static LogLevel level_;
  static Sink sink_;
};

/// RAII save/restore of the global level + sink, so a test that installs a
/// capture sink (or raises the level) cannot leak it into later tests when
/// it fails or returns early.
class ScopedLogging {
 public:
  ScopedLogging() : level_{Logging::level()}, sink_{Logging::sink()} {}
  /// Convenience: save, then immediately apply the given configuration.
  ScopedLogging(LogLevel level, Logging::Sink sink) : ScopedLogging() {
    Logging::setLevel(level);
    Logging::setSink(std::move(sink));
  }
  ~ScopedLogging() {
    Logging::setLevel(level_);
    Logging::setSink(std::move(sink_));
  }

  ScopedLogging(const ScopedLogging&) = delete;
  ScopedLogging& operator=(const ScopedLogging&) = delete;

 private:
  LogLevel level_;
  Logging::Sink sink_;
};

namespace detail {
/// Stream-style log statement builder; emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_{level}, component_{component} {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logging::emit(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace blackdp::common

// Usage: BDP_LOG(kDebug, "aodv") << "rreq id=" << id;
#define BDP_LOG(lvl, component)                                        \
  if (::blackdp::common::Logging::level() <=                           \
      ::blackdp::common::LogLevel::lvl)                                \
  ::blackdp::common::detail::LogLine(::blackdp::common::LogLevel::lvl, \
                                     component)
