// Strong typedef machinery for identifiers.
//
// The simulator distinguishes many kinds of small integral identifiers
// (physical node ids, pseudonymous radio addresses, cluster ids, ...). Mixing
// them up is the classic source of silent bugs in network simulators, so every
// identifier is a distinct type that cannot implicitly convert to another.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace blackdp::common {

/// A strongly typed integral identifier.
///
/// @tparam Tag   phantom type that distinguishes id families
/// @tparam Rep   underlying integral representation
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_{value} {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr bool operator==(StrongId, StrongId) = default;
  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  Rep value_{0};
};

}  // namespace blackdp::common

// Hash support so strong ids can key unordered containers.
template <typename Tag, typename Rep>
struct std::hash<blackdp::common::StrongId<Tag, Rep>> {
  std::size_t operator()(blackdp::common::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
