#include "common/logging.hpp"

#include <iostream>

namespace blackdp::common {

LogLevel Logging::level_ = LogLevel::kOff;
Logging::Sink Logging::sink_ = nullptr;

std::string_view toString(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Logging::setSink(Sink sink) { sink_ = std::move(sink); }

void Logging::emit(LogLevel level, std::string_view component,
                   std::string_view message) {
  if (level < level_) return;
  if (sink_) {
    sink_(level, component, message);
    return;
  }
  std::cerr << '[' << toString(level) << "] [" << component << "] " << message
            << '\n';
}

}  // namespace blackdp::common
