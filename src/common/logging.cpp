#include "common/logging.hpp"

#include <iostream>
#include <mutex>

namespace blackdp::common {

LogLevel Logging::level_ = LogLevel::kOff;
Logging::Sink Logging::sink_ = nullptr;

std::string_view toString(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Logging::setSink(Sink sink) { sink_ = std::move(sink); }

void Logging::emit(LogLevel level, std::string_view component,
                   std::string_view message) {
  if (level < level_) return;
  // Level/sink configuration stays main-thread-only (set once at startup);
  // the emission itself is serialised so parallel trial workers cannot
  // interleave half-lines or race a capturing test sink.
  static std::mutex mutex;
  const std::scoped_lock lock{mutex};
  if (sink_) {
    sink_(level, component, message);
    return;
  }
  std::cerr << '[' << toString(level) << "] [" << component << "] " << message
            << '\n';
}

}  // namespace blackdp::common
