// Dense address interning (the map-array idiom).
//
// Hot simulation paths key several tables by common::Address — a sparse,
// pseudonymous 64-bit id. Hashing that id on every frame is the dominant
// probe cost once payloads stop allocating, so:
//
//   - AddressRegistry interns addresses into dense u32 ids at attach/bind
//     time. Structures that never remove keys (the medium's address->owner
//     table) pair it with a flat vector indexed by dense id; the sparse
//     Address survives only at codec/trace boundaries.
//   - DenseKeyMap<Key, T> is the erase-capable variant used by per-agent
//     routing/pending/neighbour tables and the detector/ledger: an
//     open-addressing index over stable value slots, with freed slots
//     recycled through a free list so memory tracks the peak *live*
//     population, not every address ever seen.
//
// Determinism: iteration (forEach) walks value slots in insertion order
// (with recycled slots keeping their position), which is a pure function of
// the operation sequence — two runs of the same binary see identical orders.
// No RNG is consumed anywhere here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/ids.hpp"

namespace blackdp::common {

/// Mixes a sparse 64-bit address into a table hash (splitmix64 finalizer).
[[nodiscard]] constexpr std::uint64_t mixAddress(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Monotone interner: Address -> dense u32 id, never recycled. Use where
/// keys are only ever added (or logically disabled, like an unbound
/// address's owner slot) so a dense id stays valid for the table's lifetime.
class AddressRegistry {
 public:
  static constexpr std::uint32_t kNoId = 0xffff'ffffu;

  AddressRegistry() : buckets_(kInitialBuckets, Bucket{}) {}

  /// Returns the existing id for `address` or assigns the next dense one.
  std::uint32_t intern(Address address) {
    const std::uint64_t key = address.value();
    std::size_t i = mixAddress(key) & (buckets_.size() - 1);
    while (buckets_[i].id != kNoId) {
      if (buckets_[i].key == key) return buckets_[i].id;
      i = (i + 1) & (buckets_.size() - 1);
    }
    const auto id = static_cast<std::uint32_t>(addresses_.size());
    addresses_.push_back(address);
    buckets_[i] = Bucket{key, id};
    if ((addresses_.size() + 1) * 4 >= buckets_.size() * 3) grow();
    return id;
  }

  /// kNoId when the address was never interned.
  [[nodiscard]] std::uint32_t find(Address address) const {
    const std::uint64_t key = address.value();
    std::size_t i = mixAddress(key) & (buckets_.size() - 1);
    while (buckets_[i].id != kNoId) {
      if (buckets_[i].key == key) return buckets_[i].id;
      i = (i + 1) & (buckets_.size() - 1);
    }
    return kNoId;
  }

  [[nodiscard]] Address addressOf(std::uint32_t id) const {
    BDP_ASSERT(id < addresses_.size());
    return addresses_[id];
  }

  /// Number of dense ids handed out.
  [[nodiscard]] std::size_t size() const { return addresses_.size(); }

  /// Pre-sizes the table for `expected` distinct addresses so a bulk intern
  /// storm (a 10k-vehicle scenario attaching its whole fleet) never grows the
  /// bucket array or the dense-id vector mid-loop. Growing is amortised-cheap
  /// but not free — every grow rehashes all entries. No-op when the table is
  /// already large enough; safe with entries present.
  void reserve(std::size_t expected) {
    addresses_.reserve(expected);
    while ((expected + 1) * 4 >= buckets_.size() * 3) grow();
  }

 private:
  struct Bucket {
    std::uint64_t key{0};
    std::uint32_t id{kNoId};
  };
  static constexpr std::size_t kInitialBuckets = 64;

  void grow() {
    std::vector<Bucket> old = std::move(buckets_);
    buckets_.assign(old.size() * 2, Bucket{});
    for (const Bucket& b : old) {
      if (b.id == kNoId) continue;
      std::size_t i = mixAddress(b.key) & (buckets_.size() - 1);
      while (buckets_[i].id != kNoId) i = (i + 1) & (buckets_.size() - 1);
      buckets_[i] = b;
    }
  }

  std::vector<Bucket> buckets_;
  std::vector<Address> addresses_;  ///< dense id -> sparse address
};

/// Erase-capable strong-id-keyed map over stable dense slots (works for
/// Address, NodeId, or any StrongId). Lookup is one open-addressing probe
/// plus a direct array access; values never move after insertion (holding a
/// pointer across unrelated inserts is NOT safe — the slot vector may
/// reallocate — but slot *indices* are stable and recycled only after an
/// erase).
template <typename Key, typename T>
class DenseKeyMap {
 public:
  DenseKeyMap() : buckets_(kInitialBuckets, Bucket{}) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] T* find(Key key) {
    const std::uint32_t slot = findSlot(rawKey(key));
    return slot == kEmpty ? nullptr : &slots_[slot].value;
  }
  [[nodiscard]] const T* find(Key key) const {
    const std::uint32_t slot = findSlot(rawKey(key));
    return slot == kEmpty ? nullptr : &slots_[slot].value;
  }
  [[nodiscard]] bool contains(Key key) const {
    return findSlot(rawKey(key)) != kEmpty;
  }

  /// unordered_map-style: default-constructs on first access.
  T& operator[](Key key) { return insertSlot(key)->value; }

  /// True when an entry was removed. Frees the value immediately (the slot
  /// is recycled by a later insert).
  bool erase(Key key) {
    const std::uint64_t raw = rawKey(key);
    std::size_t i = mixAddress(raw) & (buckets_.size() - 1);
    while (buckets_[i].slot != kEmpty) {
      if (buckets_[i].slot != kTombstone && buckets_[i].key == raw) {
        const std::uint32_t slot = buckets_[i].slot;
        buckets_[i].slot = kTombstone;
        ++tombstones_;
        slots_[slot].present = false;
        slots_[slot].value = T{};
        freeSlots_.push_back(slot);
        --size_;
        return true;
      }
      i = (i + 1) & (buckets_.size() - 1);
    }
    return false;
  }

  /// Visits (Key, T&) over live entries in slot (insertion) order.
  template <typename Fn>
  void forEach(Fn&& fn) {
    for (Slot& slot : slots_) {
      if (slot.present) fn(slot.key, slot.value);
    }
  }
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.present) fn(slot.key, slot.value);
    }
  }

  /// forEach with erase: `fn` returning true removes the entry.
  template <typename Fn>
  void eraseIf(Fn&& fn) {
    for (Slot& slot : slots_) {
      if (slot.present && fn(slot.key, slot.value)) erase(slot.key);
    }
  }

  void clear() {
    buckets_.assign(kInitialBuckets, Bucket{});
    slots_.clear();
    freeSlots_.clear();
    size_ = 0;
    tombstones_ = 0;
  }

  /// Pre-sizes for `expected` live entries: reserves the stable slot vector
  /// and widens the bucket array past the load-factor trigger, so a bulk
  /// insert storm (scenario setup attaching thousands of nodes) runs without
  /// a single mid-loop rehash or slot reallocation. Safe with entries
  /// present; never shrinks.
  void reserve(std::size_t expected) {
    slots_.reserve(expected);
    std::size_t target = buckets_.size();
    while ((expected + tombstones_ + 1) * 4 >= target * 3) target *= 2;
    if (target != buckets_.size()) rehashTo(target);
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xffff'ffffu;
  static constexpr std::uint32_t kTombstone = 0xffff'fffeu;
  static constexpr std::size_t kInitialBuckets = 16;

  struct Bucket {
    std::uint64_t key{0};
    std::uint32_t slot{kEmpty};
  };
  struct Slot {
    Key key{};
    bool present{false};
    T value{};
  };

  [[nodiscard]] static std::uint64_t rawKey(Key key) {
    return static_cast<std::uint64_t>(key.value());
  }

  [[nodiscard]] std::uint32_t findSlot(std::uint64_t raw) const {
    std::size_t i = mixAddress(raw) & (buckets_.size() - 1);
    while (buckets_[i].slot != kEmpty) {
      if (buckets_[i].slot != kTombstone && buckets_[i].key == raw) {
        return buckets_[i].slot;
      }
      i = (i + 1) & (buckets_.size() - 1);
    }
    return kEmpty;
  }

  Slot* insertSlot(Key key) {
    const std::uint64_t raw = rawKey(key);
    std::size_t i = mixAddress(raw) & (buckets_.size() - 1);
    std::size_t firstTomb = static_cast<std::size_t>(-1);
    while (buckets_[i].slot != kEmpty) {
      if (buckets_[i].slot == kTombstone) {
        if (firstTomb == static_cast<std::size_t>(-1)) firstTomb = i;
      } else if (buckets_[i].key == raw) {
        return &slots_[buckets_[i].slot];
      }
      i = (i + 1) & (buckets_.size() - 1);
    }
    if (firstTomb != static_cast<std::size_t>(-1)) {
      i = firstTomb;
      --tombstones_;
    }
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
      slot = freeSlots_.back();
      freeSlots_.pop_back();
      slots_[slot].key = key;
      slots_[slot].present = true;
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(Slot{key, true, T{}});
    }
    buckets_[i] = Bucket{raw, slot};
    ++size_;
    if ((size_ + tombstones_ + 1) * 4 >= buckets_.size() * 3) rehash();
    return &slots_[slot];
  }

  void rehash() {
    const std::size_t target =
        size_ * 4 >= buckets_.size() ? buckets_.size() * 2 : buckets_.size();
    rehashTo(target);
  }

  void rehashTo(std::size_t target) {
    std::vector<Bucket> fresh(target, Bucket{});
    for (std::uint32_t s = 0; s < slots_.size(); ++s) {
      if (!slots_[s].present) continue;
      const std::uint64_t raw = rawKey(slots_[s].key);
      std::size_t i = mixAddress(raw) & (fresh.size() - 1);
      while (fresh[i].slot != kEmpty) i = (i + 1) & (fresh.size() - 1);
      fresh[i] = Bucket{raw, s};
    }
    buckets_ = std::move(fresh);
    tombstones_ = 0;
  }

  std::vector<Bucket> buckets_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> freeSlots_;
  std::size_t size_{0};
  std::size_t tombstones_{0};
};

/// The address-keyed spelling used by routing/pending/neighbour tables, the
/// detector's session table, and the reporter ledger.
template <typename T>
using DenseAddressMap = DenseKeyMap<Address, T>;

}  // namespace blackdp::common
