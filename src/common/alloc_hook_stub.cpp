#include "common/alloc_hook.hpp"

// Weak fallbacks: linked binaries that do not pull in blackdp_alloc_hook get
// an inactive hook. The strong definitions live in alloc_hook_impl.cpp,
// which is an OBJECT library so its symbols always win when linked.

namespace blackdp::common {

__attribute__((weak)) AllocCounters threadAllocCounters() { return {}; }

__attribute__((weak)) bool allocHookActive() { return false; }

}  // namespace blackdp::common
