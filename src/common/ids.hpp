// Identifier families used throughout the BlackDP code base.
#pragma once

#include <cstdint>

#include "common/strong_id.hpp"

namespace blackdp::common {

namespace detail {
struct NodeTag {};
struct AddressTag {};
struct ClusterTag {};
struct TaTag {};
struct CertSerialTag {};
struct RreqTag {};
struct SessionTag {};
}  // namespace detail

/// Physical node identity. Stable for the lifetime of a simulation; never
/// transmitted in packets (vehicles are pseudonymous on the air).
using NodeId = StrongId<detail::NodeTag>;

/// Pseudonymous radio address (IEEE 1609.2 temporary id). This is what appears
/// in packet headers and routing tables; it changes on pseudonym renewal.
using Address = StrongId<detail::AddressTag, std::uint64_t>;

/// Cluster (= RSU / cluster head) identity. One per highway segment.
using ClusterId = StrongId<detail::ClusterTag>;

/// Trusted authority node identity.
using TaId = StrongId<detail::TaTag>;

/// Certificate serial number, unique per issued certificate.
using CertSerial = StrongId<detail::CertSerialTag, std::uint64_t>;

/// AODV route-request id (unique per originator).
using RreqId = StrongId<detail::RreqTag>;

/// BlackDP detection session id, unique per d_req accepted by an RSU. Tags all
/// detection traffic so packet accounting (Fig. 5) is measured, not assumed.
using DetectionSessionId = StrongId<detail::SessionTag, std::uint64_t>;

/// Address value reserved for link-level broadcast.
inline constexpr Address kBroadcastAddress{~std::uint64_t{0}};

/// Address value meaning "no address" / unset.
inline constexpr Address kNullAddress{0};

}  // namespace blackdp::common
