// Chaos-soak harness: long, randomized adversarial scenarios with
// invariant checking (ROADMAP "adversarial robustness" item).
//
// Each trial draws a random scenario — attacker sophistication (none /
// single / cooperative / selective), detector hardening on or off,
// accusation flooders riding along, an infrastructure-fault preset — runs
// it to quiescence, and then asserts properties that must hold for EVERY
// configuration, not just the paper's:
//
//   honest-isolation    no honest vehicle is ever revoked/isolated,
//                       whatever the attacker or accusation mix;
//   tables-drained      every CH verification table is empty once the
//                       world settles (no leaked/stuck sessions);
//   probe-identity-unique  disposable probe identities are never reused,
//                       across rounds, sessions, and detectors;
//   trace-reconciled    the structured trace agrees with the detector
//                       counters (probes sent, verdicts issued);
//   no-swallowed-failures  the parallel runner recorded no suppressed
//                       worker exceptions.
//
// Everything is a pure function of (masterSeed, trialIndex): a failing
// trial prints one replay line (`soak_run --seed S --trial K`) that
// reproduces the violation deterministically, on one thread, regardless
// of the jobs count or wall-clock budget of the original run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace_event.hpp"
#include "scenario/config.hpp"

namespace blackdp::soak {

struct SoakOptions {
  std::uint64_t masterSeed{1};
  /// Stop launching new trial batches once this much wall clock has burned.
  double wallClockBudgetS{30.0};
  /// Hard cap on trials (0 = until the wall-clock budget runs out).
  std::uint64_t maxTrials{0};
  /// Worker threads, sim::resolveJobCount semantics (0 = env/hardware).
  unsigned jobs{0};
  /// Deliberately revoke an honest vehicle in every trial, so the
  /// honest-isolation invariant MUST fire — used to prove the harness
  /// actually detects violations and that replays reproduce them.
  bool injectViolation{false};
  /// Stop scheduling new batches after the first violating batch.
  bool failFast{true};
  /// Progress/outcome narration (nullptr = silent).
  std::ostream* log{nullptr};
};

/// One invariant breach, carrying everything needed to replay it.
struct SoakViolation {
  std::uint64_t trialIndex{0};
  std::uint64_t trialSeed{0};
  std::string invariant;  ///< e.g. "honest-isolation"
  std::string detail;
};

/// One finished trial: the resolved plan plus any violations it produced.
struct SoakTrialReport {
  std::uint64_t trialIndex{0};
  std::uint64_t trialSeed{0};
  std::string description;  ///< human-readable resolved plan
  std::vector<SoakViolation> violations;
};

struct SoakResult {
  std::uint64_t trialsRun{0};
  double wallClockS{0.0};
  std::vector<SoakViolation> violations;
  [[nodiscard]] bool passed() const { return violations.empty(); }
};

class SoakRunner {
 public:
  explicit SoakRunner(SoakOptions options);

  /// The per-trial seed contract (SplitMix64 jump): pure in
  /// (masterSeed, trialIndex), so replays need only those two numbers.
  [[nodiscard]] static std::uint64_t seedForTrial(std::uint64_t masterSeed,
                                                  std::uint64_t trialIndex);

  /// A fully resolved trial plan.
  struct Plan {
    scenario::ScenarioConfig config;
    /// Back-to-back verified establishments (2 exposes cache-gated
    /// selective attackers, which sit out the first discovery).
    int verifyRounds{1};
    std::string description;
  };

  /// The plan a given trial will run (pure; exposed for tests and for
  /// `soak_run --trial` narration).
  [[nodiscard]] Plan planTrial(std::uint64_t trialIndex) const;

  /// Runs exactly one trial on the calling thread — the replay entry point.
  /// `traceOut`, when non-null, receives the trial's full structured trace
  /// (the same events the reconciliation invariant checks), for post-mortem
  /// via tools/trace_report.
  [[nodiscard]] SoakTrialReport runTrial(
      std::uint64_t trialIndex,
      std::vector<obs::TraceEvent>* traceOut = nullptr) const;

  /// Runs batches of trials until the wall-clock budget or maxTrials is
  /// reached (or the first violation, under failFast).
  [[nodiscard]] SoakResult run() const;

  [[nodiscard]] const SoakOptions& options() const { return options_; }

 private:
  SoakOptions options_;
};

}  // namespace blackdp::soak
