// Streaming soak with crash-consistent checkpointing (detector-as-a-service
// counterpart to the chaos SoakRunner).
//
// Drives a StreamWorld for a configured number of epochs, optionally writing
// a checkpoint every K epochs into a checkpoint directory with a JSONL
// manifest, and optionally stopping early to emulate a kill. A later
// invocation with `resume = true` rebuilds the world from the newest
// manifest entry and continues — and because StreamWorld's restore is
// byte-identical, the resumed run's metrics JSON and final checkpoint bytes
// equal an uninterrupted run's (CI pins both).
//
// Layout of a checkpoint directory:
//
//   ckpt-000010.bdpc     checkpoint envelope at epoch boundary 10
//   ckpt-000020.bdpc     ...
//   manifest.jsonl       one line per checkpoint:
//                        {"epoch":10,"file":"ckpt-000010.bdpc",
//                         "bytes":N,"crc32":C,"seed":S}
//
// Crash-consistency contract: the checkpoint file is written atomically
// (temp + rename) BEFORE the manifest is rewritten (also atomically), so a
// kill at any instant leaves the manifest pointing at a complete, verified
// checkpoint — at worst the previous one. scripts/validate_bench_json.py
// re-verifies every manifest entry (file exists, size and binascii CRC
// match) without linking the codec.
//
// Every epoch boundary runs the hard memory-watermark invariants
// (StreamWorld::checkInvariants). A violation fails fast and carries the
// deterministic replay recipe (seed + epoch) in its detail.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "scenario/stream_world.hpp"

namespace blackdp::soak {

struct StreamSoakOptions {
  scenario::StreamConfig stream{};
  /// Total epochs the run should reach (absolute — a resumed run counts the
  /// epochs already in the checkpoint towards this target).
  std::uint64_t epochs{40};
  /// Checkpoint every K epoch boundaries (0 = never checkpoint).
  std::uint64_t checkpointEvery{0};
  /// Directory for checkpoints + manifest. Required when checkpointEvery > 0
  /// or resume is set; created if missing.
  std::string checkpointDir{};
  /// Rebuild from the newest manifest entry in checkpointDir and continue.
  bool resume{false};
  /// Emulated kill: exit cleanly once the world holds this many epochs
  /// (0 = run to `epochs`). Checkpoints written up to that point stay valid.
  std::uint64_t stopAfter{0};
  /// Record every injected d_req spec as JSONL ("" = off). Appended when
  /// resuming, truncated otherwise; feeds tools/replay_serve.
  std::string tracePath{};
  /// Run the memory-watermark invariants at every epoch boundary.
  bool checkInvariants{true};
  /// Progress narration (nullptr = silent).
  std::ostream* log{nullptr};
};

/// One soak failure, replayable from (invariant, epoch, detail).
struct StreamSoakViolation {
  std::uint64_t epoch{0};
  std::string invariant;  ///< "memory-watermark", "checkpoint-write",
                          ///< "checkpoint-resume", "trace-io"
  std::string detail;
};

/// One manifest.jsonl line, parsed.
struct ManifestEntry {
  std::uint64_t epoch{0};
  std::string file;  ///< relative to the checkpoint directory
  std::uint64_t bytes{0};
  std::uint64_t crc32{0};
  std::uint64_t seed{0};
};

[[nodiscard]] std::string manifestPath(const std::string& checkpointDir);
/// Parses the manifest, skipping malformed lines (a torn trailing line from
/// a kill mid-append is expected and harmless). Empty when absent.
[[nodiscard]] std::vector<ManifestEntry> readManifest(
    const std::string& checkpointDir);
/// The checkpoint file name for an epoch boundary ("ckpt-%06llu.bdpc").
[[nodiscard]] std::string checkpointFileName(std::uint64_t epoch);
/// One manifest.jsonl line (shared by the stream and megacity soaks).
[[nodiscard]] std::string encodeManifestEntry(const ManifestEntry& entry);
/// Atomically rewrites the manifest — call strictly AFTER the checkpoint
/// file itself landed, so a kill between the two leaves the manifest
/// pointing at the previous complete checkpoint.
[[nodiscard]] common::Status writeManifest(
    const std::string& checkpointDir,
    const std::vector<ManifestEntry>& entries);

struct StreamSoakResult {
  std::uint64_t startEpoch{0};  ///< 0, or the resumed checkpoint's epoch
  std::uint64_t endEpoch{0};    ///< epochs held by the world at exit
  std::string metricsJson;      ///< StreamMetrics::toJson at exit
  std::string lastCheckpointPath;
  std::vector<StreamSoakViolation> violations;

  [[nodiscard]] bool passed() const { return violations.empty(); }
};

[[nodiscard]] StreamSoakResult runStreamSoak(const StreamSoakOptions& options);

}  // namespace blackdp::soak
