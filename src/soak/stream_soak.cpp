#include "soak/stream_soak.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <system_error>
#include <utility>
#include <vector>

#include "codec/checkpoint.hpp"
#include "obs/json.hpp"

namespace blackdp::soak {

namespace {

void narrate(std::ostream* log, const std::string& line) {
  if (log != nullptr) *log << line << '\n';
}

}  // namespace

std::string encodeManifestEntry(const ManifestEntry& entry) {
  std::string out = "{\"epoch\":";
  obs::appendJsonNumber(out, entry.epoch);
  out += ",\"file\":";
  obs::appendJsonString(out, entry.file);
  out += ",\"bytes\":";
  obs::appendJsonNumber(out, entry.bytes);
  out += ",\"crc32\":";
  obs::appendJsonNumber(out, entry.crc32);
  out += ",\"seed\":";
  obs::appendJsonNumber(out, entry.seed);
  out += "}";
  return out;
}

common::Status writeManifest(const std::string& checkpointDir,
                             const std::vector<ManifestEntry>& entries) {
  std::string text;
  for (const ManifestEntry& entry : entries) {
    text += encodeManifestEntry(entry);
    text += '\n';
  }
  return codec::writeFileAtomic(
      manifestPath(checkpointDir),
      {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
}

namespace {

/// Rebuilds `world` from the newest manifest entry. The manifest entry is
/// verified against the file (size + CRC) before the envelope's own checks
/// run, so a torn or swapped checkpoint is caught with a precise message.
std::optional<StreamSoakViolation> resumeWorld(
    const StreamSoakOptions& options, scenario::StreamWorld& world,
    std::vector<ManifestEntry>& manifest, std::string& resumedPath) {
  manifest = readManifest(options.checkpointDir);
  if (manifest.empty()) {
    return StreamSoakViolation{
        0, "checkpoint-resume",
        "no usable manifest entry in " + options.checkpointDir};
  }
  const ManifestEntry& entry = manifest.back();
  if (entry.seed != options.stream.seed) {
    return StreamSoakViolation{
        entry.epoch, "checkpoint-resume",
        "manifest seed " + std::to_string(entry.seed) +
            " != configured seed " + std::to_string(options.stream.seed)};
  }
  const std::string path = options.checkpointDir + "/" + entry.file;
  const auto blob = codec::readFile(path);
  if (!blob.ok()) {
    return StreamSoakViolation{entry.epoch, "checkpoint-resume",
                               path + ": " + blob.error().detail};
  }
  if (blob.value().size() != entry.bytes) {
    return StreamSoakViolation{
        entry.epoch, "checkpoint-resume",
        path + ": size " + std::to_string(blob.value().size()) +
            " != manifest bytes " + std::to_string(entry.bytes)};
  }
  if (codec::crc32(blob.value()) != entry.crc32) {
    return StreamSoakViolation{entry.epoch, "checkpoint-resume",
                               path + ": CRC mismatch vs manifest"};
  }
  if (const auto restored = world.restoreCheckpoint(blob.value());
      !restored.ok()) {
    return StreamSoakViolation{
        entry.epoch, "checkpoint-resume",
        path + ": " + restored.error().code + ": " + restored.error().detail};
  }
  resumedPath = path;
  return std::nullopt;
}

}  // namespace

std::string manifestPath(const std::string& checkpointDir) {
  return checkpointDir + "/manifest.jsonl";
}

std::string checkpointFileName(std::uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "ckpt-%06llu.bdpc",
                static_cast<unsigned long long>(epoch));
  return buf;
}

std::vector<ManifestEntry> readManifest(const std::string& checkpointDir) {
  std::vector<ManifestEntry> entries;
  const auto data = codec::readFile(manifestPath(checkpointDir));
  if (!data.ok()) return entries;
  std::string_view text{reinterpret_cast<const char*>(data.value().data()),
                        data.value().size()};
  while (!text.empty()) {
    const std::size_t newline = text.find('\n');
    const std::string_view line = text.substr(0, newline);
    text = newline == std::string_view::npos ? std::string_view{}
                                             : text.substr(newline + 1);
    if (line.empty()) continue;
    const auto object = obs::FlatJsonObject::parse(line);
    if (!object) continue;  // torn trailing line from a kill mid-write
    const auto epoch = object->u64("epoch");
    const auto file = object->string("file");
    const auto bytes = object->u64("bytes");
    const auto crc = object->u64("crc32");
    const auto seed = object->u64("seed");
    if (!epoch || !file || !bytes || !crc || !seed) continue;
    entries.push_back({*epoch, std::string{*file}, *bytes, *crc, *seed});
  }
  return entries;
}

StreamSoakResult runStreamSoak(const StreamSoakOptions& options) {
  StreamSoakResult result;
  const bool usesCheckpointDir = options.checkpointEvery > 0 || options.resume;
  if (usesCheckpointDir) {
    if (options.checkpointDir.empty()) {
      result.violations.push_back(
          {0, "checkpoint-write",
           "checkpointDir is required when checkpointing or resuming"});
      return result;
    }
    std::error_code ec;
    std::filesystem::create_directories(options.checkpointDir, ec);
    if (ec) {
      result.violations.push_back(
          {0, "checkpoint-write",
           options.checkpointDir + ": " + ec.message()});
      return result;
    }
  }

  auto world = std::make_unique<scenario::StreamWorld>(options.stream);
  std::vector<ManifestEntry> manifest;
  if (options.resume) {
    std::string resumedPath;
    if (auto violation = resumeWorld(options, *world, manifest, resumedPath)) {
      result.violations.push_back(std::move(*violation));
      return result;
    }
    result.lastCheckpointPath = resumedPath;
    narrate(options.log, "[stream-soak] resumed at epoch " +
                             std::to_string(world->nextEpoch()) + " from " +
                             resumedPath);
  }
  result.startEpoch = world->nextEpoch();

  std::ofstream trace;
  if (!options.tracePath.empty()) {
    trace.open(options.tracePath,
               options.resume ? std::ios::app : std::ios::trunc);
    if (!trace) {
      result.violations.push_back({result.startEpoch, "trace-io",
                                   "cannot open " + options.tracePath});
      result.endEpoch = world->nextEpoch();
      result.metricsJson = world->metrics().toJson();
      return result;
    }
  }

  const std::uint64_t target =
      options.stopAfter > 0 ? std::min(options.epochs, options.stopAfter)
                            : options.epochs;

  while (world->nextEpoch() < target) {
    const std::uint64_t epoch = world->nextEpoch();
    const std::vector<scenario::InjectionSpec> specs = world->planEpoch(epoch);
    if (trace.is_open()) {
      std::string line;
      for (const scenario::InjectionSpec& spec : specs) {
        line.clear();
        scenario::appendInjectionJson(line, epoch, spec);
        trace << line << '\n';
      }
    }
    world->runEpochFromSpecs(specs);

    if (options.checkInvariants) {
      std::vector<std::string> broken = world->checkInvariants();
      if (!broken.empty()) {
        for (std::string& b : broken) {
          result.violations.push_back(
              {epoch, "memory-watermark",
               std::move(b) + " (replay: soak_run --stream --stream-seed " +
                   std::to_string(options.stream.seed) + " --epochs " +
                   std::to_string(epoch + 1) + ")"});
        }
        break;  // fail fast: the watermark is a hard invariant
      }
    }

    const std::uint64_t done = world->nextEpoch();
    if (options.checkpointEvery > 0 && done % options.checkpointEvery == 0) {
      const common::Bytes blob = world->saveCheckpoint();
      ManifestEntry entry{done, checkpointFileName(done), blob.size(),
                         codec::crc32(blob), options.stream.seed};
      const std::string path = options.checkpointDir + "/" + entry.file;
      if (const auto wrote = codec::writeFileAtomic(path, blob); !wrote.ok()) {
        result.violations.push_back(
            {done, "checkpoint-write", path + ": " + wrote.error().detail});
        break;
      }
      manifest.push_back(std::move(entry));
      // Manifest strictly after the checkpoint file: a kill between the two
      // leaves the manifest pointing at the previous complete checkpoint.
      if (const auto wrote = writeManifest(options.checkpointDir, manifest);
          !wrote.ok()) {
        result.violations.push_back(
            {done, "checkpoint-write",
             "manifest: " + wrote.error().detail});
        break;
      }
      result.lastCheckpointPath = path;
      narrate(options.log,
              "[stream-soak] epoch " + std::to_string(done) + "/" +
                  std::to_string(options.epochs) + " checkpoint " +
                  manifest.back().file + " (" +
                  std::to_string(manifest.back().bytes) + " bytes)");
    } else if (done % 100 == 0) {
      narrate(options.log, "[stream-soak] epoch " + std::to_string(done) +
                               "/" + std::to_string(options.epochs));
    }
  }

  if (trace.is_open()) trace.flush();
  result.endEpoch = world->nextEpoch();
  result.metricsJson = world->metrics().toJson();
  if (options.stopAfter > 0 && result.endEpoch < options.epochs &&
      result.violations.empty()) {
    narrate(options.log, "[stream-soak] stopped after epoch " +
                             std::to_string(result.endEpoch) +
                             " (emulated kill)");
  }
  return result;
}

}  // namespace blackdp::soak
