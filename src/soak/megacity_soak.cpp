#include "soak/megacity_soak.hpp"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "codec/checkpoint.hpp"
#include "common/ids.hpp"
#include "core/lite_detector.hpp"

namespace blackdp::soak {

namespace {

void narrate(std::ostream* log, const std::string& line) {
  if (log != nullptr) *log << line << '\n';
}

std::string replayRecipe(const MegacitySoakOptions& options,
                         std::uint32_t epochs) {
  return "replay: soak_run --megacity --megacity-seed " +
         std::to_string(options.config.seed) + " --segments " +
         std::to_string(options.config.segments) + " --vehicles " +
         std::to_string(options.config.vehicles) + " --shards " +
         std::to_string(options.shards) + " --epochs " +
         std::to_string(epochs);
}

std::optional<StreamSoakViolation> resumeWorld(
    const MegacitySoakOptions& options, scenario::CorridorWorld& world,
    std::vector<ManifestEntry>& manifest, std::string& resumedPath) {
  manifest = readManifest(options.checkpointDir);
  if (manifest.empty()) {
    return StreamSoakViolation{
        0, "checkpoint-resume",
        "no usable manifest entry in " + options.checkpointDir};
  }
  const ManifestEntry& entry = manifest.back();
  if (entry.seed != options.config.seed) {
    return StreamSoakViolation{
        entry.epoch, "checkpoint-resume",
        "manifest seed " + std::to_string(entry.seed) +
            " != configured seed " + std::to_string(options.config.seed)};
  }
  const std::string path = options.checkpointDir + "/" + entry.file;
  const auto blob = codec::readFile(path);
  if (!blob.ok()) {
    return StreamSoakViolation{entry.epoch, "checkpoint-resume",
                               path + ": " + blob.error().detail};
  }
  if (blob.value().size() != entry.bytes) {
    return StreamSoakViolation{
        entry.epoch, "checkpoint-resume",
        path + ": size " + std::to_string(blob.value().size()) +
            " != manifest bytes " + std::to_string(entry.bytes)};
  }
  if (codec::crc32(blob.value()) != entry.crc32) {
    return StreamSoakViolation{entry.epoch, "checkpoint-resume",
                               path + ": CRC mismatch vs manifest"};
  }
  if (const auto restored = world.restoreCheckpoint(blob.value());
      !restored.ok()) {
    return StreamSoakViolation{
        entry.epoch, "checkpoint-resume",
        path + ": " + restored.error().code + ": " + restored.error().detail};
  }
  resumedPath = path;
  return std::nullopt;
}

MegacitySoakResult runOnce(const MegacitySoakOptions& options,
                           sim::ThreadPool& pool) {
  MegacitySoakResult result;
  const bool usesCheckpointDir = options.checkpointEvery > 0 || options.resume;
  if (usesCheckpointDir) {
    if (options.checkpointDir.empty()) {
      result.violations.push_back(
          {0, "checkpoint-write",
           "checkpointDir is required when checkpointing or resuming"});
      return result;
    }
    std::error_code ec;
    std::filesystem::create_directories(options.checkpointDir, ec);
    if (ec) {
      result.violations.push_back(
          {0, "checkpoint-write", options.checkpointDir + ": " + ec.message()});
      return result;
    }
  }

  auto world = std::make_unique<scenario::CorridorWorld>(
      options.config, options.shards, pool);
  std::vector<ManifestEntry> manifest;
  if (options.resume) {
    std::string resumedPath;
    if (auto violation = resumeWorld(options, *world, manifest, resumedPath)) {
      result.violations.push_back(std::move(*violation));
      return result;
    }
    result.lastCheckpointPath = resumedPath;
    narrate(options.log, "[megacity-soak] resumed at epoch " +
                             std::to_string(world->nextEpoch()) + " from " +
                             resumedPath);
  }
  result.startEpoch = world->nextEpoch();

  const std::uint32_t target =
      options.stopAfter > 0 ? std::min(options.epochs, options.stopAfter)
                            : options.epochs;

  while (world->nextEpoch() < target) {
    const std::uint32_t epoch = world->nextEpoch();
    world->step();

    if (options.checkInvariants) {
      std::vector<std::string> broken =
          checkCorridorInvariants(options.config, *world);
      if (!broken.empty()) {
        for (std::string& b : broken) {
          result.violations.push_back(
              {epoch, "corridor-invariant",
               std::move(b) + " (" + replayRecipe(options, epoch + 1) + ")"});
        }
        break;  // fail fast: these are hard invariants
      }
    }

    const std::uint32_t done = world->nextEpoch();
    if (options.checkpointEvery > 0 && done % options.checkpointEvery == 0) {
      const common::Bytes blob = world->saveCheckpoint();
      ManifestEntry entry{done, checkpointFileName(done), blob.size(),
                          codec::crc32(blob), options.config.seed};
      const std::string path = options.checkpointDir + "/" + entry.file;
      if (const auto wrote = codec::writeFileAtomic(path, blob); !wrote.ok()) {
        result.violations.push_back(
            {done, "checkpoint-write", path + ": " + wrote.error().detail});
        break;
      }
      manifest.push_back(std::move(entry));
      // Manifest strictly after the checkpoint file: a kill between the two
      // leaves the manifest pointing at the previous complete checkpoint.
      if (const auto wrote = writeManifest(options.checkpointDir, manifest);
          !wrote.ok()) {
        result.violations.push_back(
            {done, "checkpoint-write", "manifest: " + wrote.error().detail});
        break;
      }
      result.lastCheckpointPath = path;
      narrate(options.log, "[megacity-soak] epoch " + std::to_string(done) +
                               "/" + std::to_string(options.epochs) +
                               " checkpoint " + manifest.back().file + " (" +
                               std::to_string(manifest.back().bytes) +
                               " bytes)");
    }
  }

  world->finish();
  result.endEpoch = world->nextEpoch();
  result.metricsJson = world->metricsJson();
  result.canonicalLog = world->canonicalLog();
  if (options.stopAfter > 0 && result.endEpoch < options.epochs &&
      result.violations.empty()) {
    narrate(options.log, "[megacity-soak] stopped after epoch " +
                             std::to_string(result.endEpoch) +
                             " (emulated kill)");
  }
  return result;
}

MegacitySoakResult runChaos(const MegacitySoakOptions& options,
                            sim::ThreadPool& pool) {
  MegacitySoakResult result;
  if (options.epochs < 2) {
    result.violations.push_back(
        {0, "kill-resume-identity", "chaos mode needs at least 2 epochs"});
    return result;
  }
  if (options.checkpointDir.empty()) {
    result.violations.push_back(
        {0, "kill-resume-identity",
         "checkpointDir is required for chaos mode"});
    return result;
  }

  // Uninterrupted reference run: its surfaces are the ground truth every
  // kill/resume cycle must reproduce byte for byte.
  MegacitySoakOptions reference = options;
  reference.chaosKills = 0;
  reference.checkpointEvery = 0;
  reference.checkpointDir.clear();
  reference.resume = false;
  reference.stopAfter = 0;
  result = runOnce(reference, pool);
  if (!result.passed()) return result;

  const std::uint32_t every =
      options.checkpointEvery > 0 ? options.checkpointEvery : 1;
  if (options.epochs <= every) {
    result.violations.push_back(
        {0, "kill-resume-identity",
         "chaos mode needs epochs > checkpointEvery so a checkpoint exists "
         "before every kill"});
    return result;
  }
  for (std::uint32_t kill = 0; kill < options.chaosKills; ++kill) {
    // Hashed kill epoch in [every, epochs-1]: at least one checkpoint lands
    // before the kill (the kill may still fall between checkpoints, so the
    // resume re-runs the uncheckpointed tail) and at least one epoch runs
    // after the resume.
    const std::uint64_t h = common::mixAddress(
        options.config.seed ^ ((kill + 1) * 0x9e3779b97f4a7c15ull));
    const std::uint32_t killEpoch =
        every + static_cast<std::uint32_t>(h % (options.epochs - every));

    MegacitySoakOptions cut = options;
    cut.chaosKills = 0;
    cut.checkpointEvery = every;
    cut.checkpointDir =
        options.checkpointDir + "/kill-" + std::to_string(kill);
    cut.resume = false;
    cut.stopAfter = killEpoch;
    narrate(options.log, "[megacity-soak] chaos kill " +
                             std::to_string(kill + 1) + "/" +
                             std::to_string(options.chaosKills) +
                             " at epoch " + std::to_string(killEpoch));
    const MegacitySoakResult interrupted = runOnce(cut, pool);
    if (!interrupted.passed()) {
      result.violations = interrupted.violations;
      return result;
    }

    MegacitySoakOptions resumed = cut;
    resumed.resume = true;
    resumed.stopAfter = 0;
    const MegacitySoakResult continued = runOnce(resumed, pool);
    if (!continued.passed()) {
      result.violations = continued.violations;
      return result;
    }
    if (continued.metricsJson != result.metricsJson ||
        continued.canonicalLog != result.canonicalLog) {
      result.violations.push_back(
          {killEpoch, "kill-resume-identity",
           "resumed surfaces differ from the uninterrupted run (" +
               replayRecipe(options, options.epochs) + " --checkpoint-every " +
               std::to_string(every) + " --stop-after " +
               std::to_string(killEpoch) + ", then --resume)"});
      return result;
    }
  }
  return result;
}

}  // namespace

std::vector<std::string> checkCorridorInvariants(
    const scenario::CorridorConfig& config,
    const scenario::CorridorWorld& world) {
  std::vector<std::string> broken;
  std::size_t totalSessions = 0;
  world.forEachSegment([&](std::uint32_t segment,
                           const std::vector<common::Address>& isolated,
                           const core::LiteDetector& detector) {
    for (const common::Address address : isolated) {
      const bool isVehicle =
          address.value() >= scenario::kVehicleAddressBase &&
          address.value() <
              scenario::kVehicleAddressBase + config.vehicles;
      const auto id = static_cast<std::uint32_t>(
          address.value() - scenario::kVehicleAddressBase);
      if (!isVehicle || !scenario::vehicleSpec(config, id).attacker) {
        broken.push_back("honest-isolation: segment " +
                         std::to_string(segment) + " isolated " +
                         std::to_string(address.value()) +
                         " which is not a scripted attacker");
      }
    }
    totalSessions += detector.activeSessions();
    detector.forEachSession([&](const core::LiteSessionState& session) {
      if (session.probesSent > config.detector.maxProbes ||
          session.forwards > config.detector.maxForwards ||
          session.violations >= config.detector.probesToConfirm) {
        broken.push_back(
            "tables-drained: segment " + std::to_string(segment) +
            " session for " + std::to_string(session.suspect.value()) +
            " exceeds its budgets (probes " +
            std::to_string(session.probesSent) + ", forwards " +
            std::to_string(session.forwards) + ", violations " +
            std::to_string(session.violations) + ")");
      }
    });
  });
  if (totalSessions > config.vehicles) {
    broken.push_back("tables-drained: " + std::to_string(totalSessions) +
                     " live sessions exceed the fleet of " +
                     std::to_string(config.vehicles));
  }
  return broken;
}

MegacitySoakResult runMegacitySoak(const MegacitySoakOptions& options,
                                   sim::ThreadPool& pool) {
  if (options.chaosKills > 0) return runChaos(options, pool);
  return runOnce(options, pool);
}

}  // namespace blackdp::soak
