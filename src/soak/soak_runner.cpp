#include "soak/soak_runner.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <unordered_set>
#include <utility>

#include "campaign/spec.hpp"
#include "obs/trace.hpp"
#include "scenario/highway_scenario.hpp"
#include "sim/parallel.hpp"
#include "sim/rng.hpp"

namespace blackdp::soak {

namespace {

/// Simulated settling appended after the verification run, long enough for
/// every probe ladder, flooder campaign, TTL sweep, and fault recovery in
/// any plan this harness can draw to run to completion.
constexpr sim::Duration kSettle = sim::Duration::seconds(30);

std::string_view attackName(scenario::AttackType type) {
  return scenario::toString(type);
}

}  // namespace

SoakRunner::SoakRunner(SoakOptions options) : options_{std::move(options)} {}

std::uint64_t SoakRunner::seedForTrial(std::uint64_t masterSeed,
                                       std::uint64_t trialIndex) {
  return sim::deriveTrialSeed(masterSeed, trialIndex);
}

SoakRunner::Plan SoakRunner::planTrial(std::uint64_t trialIndex) const {
  const std::uint64_t seed = seedForTrial(options_.masterSeed, trialIndex);
  // The planning stream is derived from (not equal to) the scenario seed,
  // so the plan draws never alias the world's own streams.
  sim::Rng plan{sim::SeedSequence{seed}.deriveSeed("soak-plan")};

  Plan result;
  scenario::ScenarioConfig& config = result.config;
  config.seed = seed;

  static constexpr scenario::AttackType kAttacks[] = {
      scenario::AttackType::kNone, scenario::AttackType::kSingle,
      scenario::AttackType::kCooperative, scenario::AttackType::kSelective};
  config.attack = kAttacks[plan.index(4)];
  config.attackerCluster =
      common::ClusterId{static_cast<std::uint32_t>(plan.uniformInt(2, 5))};

  static constexpr std::uint32_t kFleets[] = {40, 60, 80};
  config.vehicleCount = kFleets[plan.index(3)];

  const bool hardened = plan.bernoulli(0.5);
  config.detector.hardening.enabled = hardened;
  if (hardened) config.detector.sessionTtl = sim::Duration::seconds(8);
  // Always record probe identities: the uniqueness invariant needs the log.
  config.detector.recordProbeIdentities = true;

  config.accusationFlooders = static_cast<std::uint32_t>(plan.index(3));
  config.flooder.start = sim::Duration::seconds(2);
  config.flooder.interval = sim::Duration::milliseconds(400);
  config.flooder.maxAccusations = 8;

  const std::vector<std::string>& presets = campaign::faultPresetNames();
  const std::string& preset = presets[plan.index(presets.size())];
  config.faults = campaign::makeFaultPreset(preset);

  result.verifyRounds = 1 + static_cast<int>(plan.bernoulli(0.5));

  result.description =
      "attack=" + std::string{attackName(config.attack)} + " cluster=" +
      std::to_string(config.attackerCluster->value()) +
      " vehicles=" + std::to_string(config.vehicleCount) +
      " hardened=" + (hardened ? "yes" : "no") +
      " flooders=" + std::to_string(config.accusationFlooders) +
      " rounds=" + std::to_string(result.verifyRounds) + " fault=" + preset;
  return result;
}

SoakTrialReport SoakRunner::runTrial(
    std::uint64_t trialIndex, std::vector<obs::TraceEvent>* traceOut) const {
  SoakTrialReport report;
  report.trialIndex = trialIndex;
  report.trialSeed = seedForTrial(options_.masterSeed, trialIndex);
  const Plan plan = planTrial(trialIndex);
  report.description = plan.description;

  const auto violate = [&report](std::string invariant, std::string detail) {
    report.violations.push_back({report.trialIndex, report.trialSeed,
                                 std::move(invariant), std::move(detail)});
  };

  // Per-thread recorder: the trace-reconciliation invariant replays the
  // world's own structured events against the detector counters.
  obs::MemoryRecorder recorder;
  obs::ScopedTraceRecorder scoped{&recorder};

  try {
    scenario::HighwayScenario world(plan.config);
    (void)world.runVerification(plan.verifyRounds);

    if (options_.injectViolation) {
      // Deterministically break the honest-isolation invariant: revoke the
      // first honest bystander. Proves the harness detects violations and
      // that a replay reproduces this exact one.
      for (const auto& vehicle : world.vehicles()) {
        if (vehicle->isAttacker() || vehicle.get() == &world.source() ||
            vehicle.get() == &world.destination()) {
          continue;
        }
        (void)world.taNetwork().reportMisbehaviour(vehicle->address());
        break;
      }
    }

    world.runFor(kSettle);

    // Fault presets can delay a flooder's cluster join by tens of seconds
    // (a lost JREQ is only retried at the next boundary crossing), so its
    // accusation campaign — and the probe ladders it triggers — may still
    // be in flight when the nominal settle ends. Grant bounded grace: a
    // session that is merely in flight drains within a window or two; a
    // genuinely leaked session never drains and still trips the invariant.
    const auto openSessions = [&world] {
      std::size_t open = 0;
      for (const auto& rsu : world.rsus()) {
        open += rsu->detector->activeSessions();
      }
      return open;
    };
    for (int grace = 0; grace < 6 && openSessions() > 0; ++grace) {
      world.runFor(sim::Duration::seconds(5));
    }

    // --- honest-isolation ---------------------------------------------
    if (const std::size_t honest = world.honestRevocations(); honest != 0) {
      violate("honest-isolation",
              std::to_string(honest) +
                  " revocation notice(s) against honest pseudonyms");
    }

    // --- tables-drained / probe-identity-unique / counters ------------
    std::unordered_set<std::uint64_t> disposables;
    std::uint64_t probesSent = 0;
    std::uint64_t verdicts = 0;
    for (const auto& rsu : world.rsus()) {
      const core::RsuDetector& detector = *rsu->detector;
      if (const std::size_t open = detector.activeSessions(); open != 0) {
        violate("tables-drained",
                "cluster " + std::to_string(rsu->cluster.value()) + " still holds " +
                    std::to_string(open) + " verification session(s)");
      }
      for (const core::ProbeIdentity& identity : detector.probeIdentities()) {
        if (!disposables.insert(identity.disposable.value()).second) {
          violate("probe-identity-unique",
                  "disposable probe identity " +
                      std::to_string(identity.disposable.value()) +
                      " was used twice");
        }
      }
      probesSent += detector.stats().probesSent;
      verdicts += detector.completedSessions().size();
    }

    // --- trace-reconciled ----------------------------------------------
    std::uint64_t tracedProbes = 0;
    std::uint64_t tracedVerdicts = 0;
    for (const obs::TraceEvent& event : recorder.events()) {
      if (event.kind != obs::EventKind::kDetector) continue;
      const auto op = static_cast<obs::DetectorOp>(event.op);
      if (op == obs::DetectorOp::kProbeSent) ++tracedProbes;
      if (op == obs::DetectorOp::kVerdict) ++tracedVerdicts;
    }
    if (tracedProbes != probesSent) {
      violate("trace-reconciled",
              "trace saw " + std::to_string(tracedProbes) +
                  " probe sends, detector counters say " +
                  std::to_string(probesSent));
    }
    if (tracedVerdicts != verdicts) {
      violate("trace-reconciled",
              "trace saw " + std::to_string(tracedVerdicts) +
                  " verdicts, detectors completed " + std::to_string(verdicts) +
                  " sessions");
    }
  } catch (const std::exception& e) {
    violate("trial-exception", e.what());
  }
  if (traceOut != nullptr) *traceOut = recorder.events();
  return report;
}

SoakResult SoakRunner::run() const {
  const auto start = std::chrono::steady_clock::now();
  const auto elapsedS = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  sim::ParallelRunner runner{options_.jobs};
  SoakResult result;
  std::uint64_t next = 0;
  while (elapsedS() < options_.wallClockBudgetS) {
    if (options_.maxTrials != 0 && next >= options_.maxTrials) break;
    std::uint64_t batch = runner.jobs();
    if (options_.maxTrials != 0) {
      batch = std::min<std::uint64_t>(batch, options_.maxTrials - next);
    }
    const std::vector<SoakTrialReport> reports =
        runner.map<SoakTrialReport>(static_cast<std::size_t>(batch),
                                    [&](std::size_t i) {
                                      return runTrial(next + i);
                                    });
    next += batch;
    result.trialsRun += batch;
    for (const SoakTrialReport& report : reports) {
      if (options_.log != nullptr) {
        *options_.log << "soak trial " << report.trialIndex << " ["
                      << report.description << "]: "
                      << (report.violations.empty() ? "ok" : "VIOLATION")
                      << '\n';
      }
      result.violations.insert(result.violations.end(),
                               report.violations.begin(),
                               report.violations.end());
    }
    // --- no-swallowed-failures -----------------------------------------
    // Trial bodies convert their own exceptions into violations, so any
    // suppressed worker exception here is a harness bug worth failing on.
    for (const sim::WorkerFailure& failure : runner.swallowedFailures()) {
      result.violations.push_back(
          {next - batch + failure.index,
           seedForTrial(options_.masterSeed, next - batch + failure.index),
           "no-swallowed-failures", failure.what});
    }
    if (options_.failFast && !result.violations.empty()) break;
  }
  result.wallClockS = elapsedS();
  if (options_.log != nullptr) {
    *options_.log << "soak: " << result.trialsRun << " trial(s), "
                  << result.violations.size() << " violation(s), "
                  << result.wallClockS << "s wall clock\n";
  }
  return result;
}

}  // namespace blackdp::soak
