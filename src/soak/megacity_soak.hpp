// Megacity soak: kill/resume chaos for the sharded corridor.
//
// Drives a CorridorWorld epoch by epoch, optionally writing a BDPC
// checkpoint every K epoch boundaries into the same manifest.jsonl layout
// the stream soak uses (file atomically BEFORE manifest, torn trailing
// lines skipped on read), and optionally resuming from the newest manifest
// entry. Because CorridorWorld's restore is byte-identical, a resumed run's
// merged metrics JSON and canonical per-segment log equal an uninterrupted
// run's — the chaos mode proves it end to end: for each scripted kill it
// runs cut-at-a-hashed-epoch + resume and byte-compares both surfaces
// against an uninterrupted reference run.
//
// Every epoch boundary runs the corridor hard invariants:
//   honest-isolation  every isolated address belongs to a scripted attacker
//                     (vehicleSpec(seed, id).attacker) — the detector never
//                     convicts an honest vehicle;
//   tables-drained    every live detection session respects its budgets
//                     (probesSent <= maxProbes, forwards <= maxForwards,
//                     violations < probesToConfirm) and the total session
//                     count never exceeds the fleet.
// A violation fails fast and carries the deterministic replay recipe
// (seed + epoch) in its detail.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "scenario/corridor_world.hpp"
#include "sim/thread_pool.hpp"
#include "soak/stream_soak.hpp"

namespace blackdp::soak {

struct MegacitySoakOptions {
  scenario::CorridorConfig config{};
  std::uint32_t shards{4};
  /// Total epochs the run should reach (absolute — a resumed run counts the
  /// epochs already in the checkpoint towards this target).
  std::uint32_t epochs{8};
  /// Checkpoint every K epoch boundaries (0 = never checkpoint).
  std::uint32_t checkpointEvery{0};
  /// Directory for checkpoints + manifest. Required when checkpointEvery > 0
  /// or resume is set; created if missing.
  std::string checkpointDir{};
  /// Rebuild from the newest manifest entry in checkpointDir and continue.
  bool resume{false};
  /// Emulated kill: exit cleanly once this many epochs ran (0 = run to
  /// `epochs`). Checkpoints written up to that point stay valid.
  std::uint32_t stopAfter{0};
  /// Run the corridor hard invariants at every epoch boundary.
  bool checkInvariants{true};
  /// Chaos mode: run an uninterrupted reference, then this many
  /// cut-at-a-hashed-epoch + resume cycles (each in its own subdirectory of
  /// checkpointDir), byte-comparing the final surfaces each time.
  std::uint32_t chaosKills{0};
  /// Progress narration (nullptr = silent).
  std::ostream* log{nullptr};
};

struct MegacitySoakResult {
  std::uint32_t startEpoch{0};  ///< 0, or the resumed checkpoint's epoch
  std::uint32_t endEpoch{0};    ///< epochs held by the world at exit
  std::string metricsJson;      ///< merged metrics surface at exit
  std::string canonicalLog;     ///< canonical per-segment log at exit
  std::string lastCheckpointPath;
  std::vector<StreamSoakViolation> violations;

  [[nodiscard]] bool passed() const { return violations.empty(); }
};

[[nodiscard]] MegacitySoakResult runMegacitySoak(
    const MegacitySoakOptions& options, sim::ThreadPool& pool);

/// The epoch-boundary hard invariants, exposed for tests. Empty = healthy.
[[nodiscard]] std::vector<std::string> checkCorridorInvariants(
    const scenario::CorridorConfig& config,
    const scenario::CorridorWorld& world);

}  // namespace blackdp::soak
