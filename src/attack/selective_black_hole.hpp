// Selective (probe-evading) black hole.
//
// The naive detector's RREQ₁ uses a fake destination from a reserved address
// range no vehicle has ever transmitted from. This attacker exploits exactly
// that: it runs in promiscuous mode, maintains a cache of every address it
// has overheard on the air (frame sources, RREQ origins, RREP endpoints,
// data endpoints), and only forges replies for destinations already in that
// cache — a request for an address nobody has ever used is treated as a
// probe and ignored.
//
// Cache admission rules (the selectivity hinges on them):
//  - the destination of a *broadcast* RREQ is cached AFTER the current
//    request is decided. A genuine discovery therefore primes the cache on
//    its first flood and gets attacked on the AODV retry; the naive
//    detector's unicast TTL-1 probes never enter the cache, so repeating
//    them is futile.
//  - unicast RREQ destinations are never cached: a request addressed only
//    to this node is precisely what a probe looks like.
//
// What defeats it: the hardened detector's type-B rounds probe with a real
// address the attacker has provably overheard (the reporter whose discovery
// it answered), carrying an impossibly fresh sequence number — the cache
// check passes, the attacker forges, and the forgery is the violation.
#pragma once

#include <unordered_set>

#include "attack/black_hole_agent.hpp"

namespace blackdp::attack {

struct SelectiveStats {
  std::uint64_t probesIgnored{0};     ///< requests for never-heard addresses
  std::uint64_t cachedAttacks{0};     ///< forgeries allowed by the cache
};

class SelectiveBlackHoleAgent final : public BlackHoleAgent {
 public:
  SelectiveBlackHoleAgent(sim::Simulator& simulator, net::BasicNode& node,
                          AttackRole role, BlackHoleConfig config,
                          sim::Rng rng,
                          aodv::AodvConfig aodvConfig = fastAodvConfig());

  [[nodiscard]] const SelectiveStats& selectiveStats() const {
    return selectiveStats_;
  }
  [[nodiscard]] std::size_t overheardCount() const { return overheard_.size(); }
  [[nodiscard]] bool knowsAddress(common::Address address) const {
    return overheard_.count(address.value()) > 0;
  }

 protected:
  void handleRreq(const aodv::RouteRequest& rreq,
                  const net::Frame& frame) override;

 private:
  void observe(const net::Frame& frame);
  void remember(common::Address address);

  std::unordered_set<std::uint64_t> overheard_;
  SelectiveStats selectiveStats_;
};

}  // namespace blackdp::attack
