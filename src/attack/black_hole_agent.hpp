// Black hole attacker (paper §II-C, §IV-A).
//
// A compromised AODV node that answers any route request with a forged RREP
// whose destination sequence number exceeds anything offered (so the source
// always selects it), then silently drops all data attracted to it. Variants:
//
//  - Single: acts alone; refuses to disclose a next hop under inquiry.
//  - Primary (cooperative): names its teammate in the RREQ₂ next-hop
//    inquiry; may forge Hello replies claiming the teammate is the
//    destination.
//  - Accomplice: vouches for the primary by answering probes the same way.
//
// Evasive behaviours (enabled for clusters 8–10 in the paper's experiment):
// acting legitimately under probing, fleeing to the next cluster or off the
// highway, and renewing the pseudonym mid-detection.
#pragma once

#include <functional>
#include <map>
#include <utility>

#include "aodv/agent.hpp"
#include "core/messages.hpp"
#include "sim/rng.hpp"

namespace blackdp::attack {

enum class AttackRole { kSingle, kPrimary, kAccomplice };

enum class FleeMode {
  kNone,
  kAfterFirstReply,  ///< answer RREQ₁, then move to the next cluster
  kBeforeReply,      ///< vanish without answering any probe (cluster 10)
};

struct BlackHoleConfig {
  /// Forged SN = requested SN + boost ("the highest possible").
  aodv::SeqNum forgedSeqBoost{200};
  std::uint8_t forgedHopCount{4};
  /// Teammate named under next-hop inquiry (primary role only).
  common::Address teammate{common::kNullAddress};
  /// Answer destination-authentication Hellos with a forged reply claiming
  /// the attacker (or its teammate) is the destination.
  bool sendFakeHelloReply{false};
  /// P(stay silent / behave honestly) for each probing or repeated request.
  double actLegitProbability{0.0};
  /// P(renew pseudonym when probed) — identity change mid-detection.
  double renewProbability{0.0};
  FleeMode fleeMode{FleeMode::kNone};
  /// Window within which a repeated discovery (same origin & destination)
  /// counts as a "second RREQ" the attacker may dodge.
  sim::Duration repeatWindow{sim::Duration::seconds(10)};
  /// Unlike an honest router, the attacker answers several flood copies of
  /// the same RREQ (one per neighbour that relayed it) — redundant forged
  /// replies over distinct reverse paths make the attack robust to single
  /// link breaks. Bounded to keep traffic sane.
  std::uint32_t maxRepliesPerRreq{3};
};

struct AttackStats {
  std::uint64_t rrepsForged{0};
  std::uint64_t helloRepliesForged{0};
  std::uint64_t probesDodged{0};   ///< acted legitimately under a request
  std::uint64_t renewals{0};
  std::uint64_t fleeEvents{0};
};

class BlackHoleAgent : public aodv::AodvAgent {
 public:
  /// Relocates the vehicle (next cluster / off the highway); wired by the
  /// scenario layer which owns mobility and membership.
  using FleeCallback = std::function<void()>;
  /// Attempts pseudonym renewal; returns true when the identity changed.
  using RenewCallback = std::function<bool()>;

  BlackHoleAgent(sim::Simulator& simulator, net::BasicNode& node,
                 AttackRole role, BlackHoleConfig config, sim::Rng rng,
                 aodv::AodvConfig aodvConfig = fastAodvConfig());

  [[nodiscard]] AttackRole role() const { return role_; }
  [[nodiscard]] const AttackStats& attackStats() const { return attackStats_; }

  void setFleeCallback(FleeCallback cb) { onFlee_ = std::move(cb); }
  void setRenewCallback(RenewCallback cb) { onRenew_ = std::move(cb); }
  void setTeammate(common::Address teammate) { config_.teammate = teammate; }

  /// The attacker replies "as fast as it can": a fraction of the honest
  /// processing delay.
  [[nodiscard]] static aodv::AodvConfig fastAodvConfig();

 protected:
  void handleRreq(const aodv::RouteRequest& rreq,
                  const net::Frame& frame) override;
  void handleData(const aodv::DataPacket& packet,
                  const net::Frame& frame) override;
  [[nodiscard]] bool shouldForwardData(const aodv::DataPacket&) override {
    return false;  // the black hole: attract, then drop
  }

 private:
  [[nodiscard]] bool isRepeatedRequest(const aodv::RouteRequest& rreq);
  void forgeReply(const aodv::RouteRequest& rreq, const net::Frame& frame);
  void forgeHelloReply(const core::AuthHello& hello, const net::Frame& frame);

  AttackRole role_;
  BlackHoleConfig config_;
  sim::Rng rng_;
  AttackStats attackStats_;
  FleeCallback onFlee_;
  RenewCallback onRenew_;
  bool fled_{false};
  /// (origin, destination) of recent discoveries → last seen time.
  std::map<std::pair<std::uint64_t, std::uint64_t>, sim::TimePoint> recent_;
  /// (origin, rreq id) → forged replies already sent for that request.
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::uint32_t> replies_;
};

}  // namespace blackdp::attack
