#include "attack/gray_hole_agent.hpp"

namespace blackdp::attack {

GrayHoleAgent::GrayHoleAgent(sim::Simulator& simulator, net::BasicNode& node,
                             GrayHoleConfig config, sim::Rng rng,
                             aodv::AodvConfig aodvConfig)
    : aodv::AodvAgent{simulator, node, aodvConfig},
      config_{config},
      rng_{rng} {}

bool GrayHoleAgent::shouldForwardData(const aodv::DataPacket&) {
  ++grayStats_.dataSeen;
  if (rng_.bernoulli(config_.dropProbability)) {
    ++grayStats_.dataDroppedSelectively;
    return false;
  }
  return true;
}

void GrayHoleAgent::handleRreq(const aodv::RouteRequest& rreq,
                               const net::Frame& frame) {
  if (config_.advertiseBoost == 0) {
    // Fully honest control plane.
    aodv::AodvAgent::handleRreq(rreq, frame);
    return;
  }
  // Mild freshness inflation: only when it genuinely has a route (unlike a
  // black hole, it never invents one — probes for fake destinations still
  // get silence).
  if (rreq.origin == node().localAddress()) return;
  if (checkAndRecordRreq(rreq.origin, rreq.rreqId)) return;
  const auto route =
      routingTable().activeRoute(rreq.destination, simulator().now());
  if (route && route->validSeq) {
    replyToRreq(rreq, frame, route->destSeq + config_.advertiseBoost,
                route->hopCount);
    return;
  }
  processRreqAsRouter(rreq, frame);
}

}  // namespace blackdp::attack
