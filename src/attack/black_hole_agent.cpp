#include "attack/black_hole_agent.hpp"

#include "common/logging.hpp"
#include "core/secure.hpp"

namespace blackdp::attack {

aodv::AodvConfig BlackHoleAgent::fastAodvConfig() {
  aodv::AodvConfig config;
  config.processingDelay = sim::Duration::microseconds(50);
  return config;
}

BlackHoleAgent::BlackHoleAgent(sim::Simulator& simulator, net::BasicNode& node,
                               AttackRole role, BlackHoleConfig config,
                               sim::Rng rng, aodv::AodvConfig aodvConfig)
    : aodv::AodvAgent{simulator, node, aodvConfig},
      role_{role},
      config_{config},
      rng_{rng} {}

bool BlackHoleAgent::isRepeatedRequest(const aodv::RouteRequest& rreq) {
  const auto key = std::pair{rreq.origin.value(), rreq.destination.value()};
  const sim::TimePoint now = simulator().now();
  for (auto it = recent_.begin(); it != recent_.end();) {
    it = (now - it->second > config_.repeatWindow) ? recent_.erase(it)
                                                   : std::next(it);
  }
  const auto [it, inserted] = recent_.emplace(key, now);
  if (!inserted) {
    it->second = now;
    return true;
  }
  return false;
}

void BlackHoleAgent::handleRreq(const aodv::RouteRequest& rreq,
                                const net::Frame& frame) {
  if (rreq.origin == node().localAddress()) return;

  // An honest router deduplicates flood copies; the attacker instead answers
  // up to maxRepliesPerRreq of them, seeding its forged route along several
  // reverse paths at once.
  const bool firstCopy = !checkAndRecordRreq(rreq.origin, rreq.rreqId);
  auto& replyCount = replies_[{rreq.origin.value(), rreq.rreqId.value()}];
  if (!firstCopy && replyCount >= config_.maxRepliesPerRreq) return;

  // Unicast RREQs only ever come from a prober; repeated discoveries are the
  // source double-checking. Both are the moments an evasive attacker dodges.
  const bool targeted = !frame.isBroadcast();
  const bool repeated = firstCopy && isRepeatedRequest(rreq);
  if (!firstCopy && replyCount == 0) return;  // evaded this request already

  // The accomplice (B₂) does not race to answer discoveries — it blends in
  // with the flood and only vouches when asked directly (the paper's "B₂
  // will approve B₁'s message").
  if (role_ == AttackRole::kAccomplice && !targeted) {
    if (firstCopy) processRreqAsRouter(rreq, frame);
    return;
  }

  // Once fled to dodge a prober, stay silent toward further probes.
  if (fled_ && config_.fleeMode == FleeMode::kBeforeReply && targeted) return;

  if (targeted || repeated) {
    if (config_.fleeMode == FleeMode::kBeforeReply && targeted && !fled_) {
      // Vanish without answering any detection packet (cluster 10).
      ++attackStats_.fleeEvents;
      fled_ = true;
      if (onFlee_) onFlee_();
      return;
    }
    if (config_.renewProbability > 0.0 &&
        rng_.bernoulli(config_.renewProbability) && onRenew_ && onRenew_()) {
      // Identity changed mid-detection; the probe address is now dead.
      ++attackStats_.renewals;
      return;
    }
    if (config_.actLegitProbability > 0.0 &&
        rng_.bernoulli(config_.actLegitProbability)) {
      // Behave like an honest node with no route: silence under a TTL-1
      // probe, normal flood participation otherwise.
      ++attackStats_.probesDodged;
      if (!targeted) aodv::AodvAgent::handleRreq(rreq, frame);
      return;
    }
  }

  if (config_.fleeMode == FleeMode::kAfterFirstReply && targeted && !fled_) {
    // Answer the first detection packet but move on to the next cluster
    // (the paper's 8-packet scenario). The relocation happens first so the
    // leaving-cluster notice precedes the forged reply at the CH — which is
    // what makes the CH hand the rest of the detection to its neighbour —
    // while the short hop keeps the reply itself within the CH's range.
    ++attackStats_.fleeEvents;
    fled_ = true;
    if (onFlee_) onFlee_();
  }

  ++replyCount;
  forgeReply(rreq, frame);
}

void BlackHoleAgent::forgeReply(const aodv::RouteRequest& rreq,
                                const net::Frame& frame) {
  // Like any AODV router, the attacker keeps a reverse route to the victim —
  // it needs one to send forged Hello replies back to the source.
  aodv::RouteEntry reverse;
  reverse.destination = rreq.origin;
  reverse.nextHop = frame.src;
  reverse.hopCount = static_cast<std::uint8_t>(rreq.hopCount + 1);
  reverse.destSeq = rreq.originSeq;
  reverse.validSeq = true;
  reverse.expiresAt = simulator().now() + config().activeRouteTimeout;
  routingTable().update(reverse, simulator().now());

  // "Set its SN to the highest possible to guarantee its RREP is selected":
  // top whatever freshness the request already knows about.
  const aodv::SeqNum base = rreq.unknownDestSeq ? 0 : rreq.destSeq;
  const aodv::SeqNum forged = base + config_.forgedSeqBoost;
  const common::Address claimed =
      role_ == AttackRole::kPrimary ? config_.teammate : common::kNullAddress;
  ++attackStats_.rrepsForged;
  BDP_LOG(kDebug, "attack") << "forging rrep seq=" << forged << " for "
                            << rreq.origin << "->" << rreq.destination
                            << " via " << frame.src << " at "
                            << simulator().now();
  replyToRreq(rreq, frame, forged, config_.forgedHopCount, claimed);
}

void BlackHoleAgent::handleData(const aodv::DataPacket& packet,
                                const net::Frame& frame) {
  if (config_.sendFakeHelloReply &&
      packet.destination != node().localAddress() && packet.inner != nullptr) {
    if (const auto* hello =
            dynamic_cast<const core::AuthHello*>(packet.inner.get());
        hello != nullptr && !hello->isReply) {
      forgeHelloReply(*hello, frame);
      return;
    }
  }
  // Everything else takes the normal path — where shouldForwardData()
  // returning false makes the black hole swallow it.
  aodv::AodvAgent::handleData(packet, frame);
}

void BlackHoleAgent::forgeHelloReply(const core::AuthHello& hello,
                                     const net::Frame&) {
  // The "anonymity response": claim that the attacker itself (or the
  // teammate) is the destination. The envelope is signed with the
  // attacker's own (valid!) certificate — the pseudonym mismatch is what
  // gives it away at the verifier.
  auto reply = net::makeMutablePayload<core::AuthHello>();
  reply->helloId = hello.helloId;
  reply->origin = hello.origin;
  reply->destination = hello.destination;
  reply->isReply = true;
  reply->responder = role_ == AttackRole::kPrimary &&
                             config_.teammate != common::kNullAddress
                         ? config_.teammate
                         : node().localAddress();
  if (credentials()) {
    reply->envelope = core::makeEnvelope(reply->canonicalBytes(),
                                         *credentials(), *signingEngine());
  }
  ++attackStats_.helloRepliesForged;
  // The reverse route toward the origin was installed by the RREQ flood.
  sendData(hello.origin, reply, 0);
}

}  // namespace blackdp::attack
