// Gray hole (selective black hole) attacker.
//
// The paper's related work (§V, Jhaveri et al.; Su's "selective black hole")
// distinguishes the gray hole: a node that participates in routing
// *honestly* — real routes, no forged sequence numbers, probes answered
// like any honest node — but selectively drops a fraction of the data it
// forwards. Because it commits no AODV violation, BlackDP's probe pair
// cannot confirm it; because it forwards the secure Hello, destination
// authentication passes. This agent exists to measure that boundary
// honestly: bench/ablation_pdr quantifies the damage a gray hole does under
// BlackDP, and the tests pin down that BlackDP neither confirms it (no
// false accusation — it truly violated nothing when probed) nor stops its
// selective dropping. Detecting gray holes needs forwarding-observation
// schemes (see baselines::TrustManager), which the paper leaves out of
// scope.
#pragma once

#include "aodv/agent.hpp"
#include "sim/rng.hpp"

namespace blackdp::attack {

struct GrayHoleConfig {
  /// Probability of dropping each data packet in transit.
  double dropProbability{0.5};
  /// Optionally advertise slightly inflated freshness (+boost) to attract
  /// more traffic while staying under naive thresholds. 0 = fully honest
  /// control plane.
  aodv::SeqNum advertiseBoost{0};
};

struct GrayHoleStats {
  std::uint64_t dataSeen{0};
  std::uint64_t dataDroppedSelectively{0};
};

class GrayHoleAgent : public aodv::AodvAgent {
 public:
  GrayHoleAgent(sim::Simulator& simulator, net::BasicNode& node,
                GrayHoleConfig config, sim::Rng rng,
                aodv::AodvConfig aodvConfig = {});

  [[nodiscard]] const GrayHoleStats& grayStats() const { return grayStats_; }

 protected:
  [[nodiscard]] bool shouldForwardData(const aodv::DataPacket& packet) override;
  void handleRreq(const aodv::RouteRequest& rreq,
                  const net::Frame& frame) override;

 private:
  GrayHoleConfig config_;
  sim::Rng rng_;
  GrayHoleStats grayStats_;
};

}  // namespace blackdp::attack
