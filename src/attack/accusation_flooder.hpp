// Accusation flooder: weaponizing the detection channel itself.
//
// A certified-but-compromised vehicle that files forged d_reqs against
// honest neighbours it has overheard, trying to get them quarantined (or at
// least to drown the CH's verification table in junk sessions). Every
// accusation carries a valid signature — the reporter IS enrolled — so
// envelope verification alone cannot stop it. Some transmissions replay the
// previous signed d_req verbatim (captured-message replay), which a nonce
// cache must catch.
//
// Against a naive detector this cannot cause a false quarantine (an honest
// suspect stays silent under probing → kNotConfirmed), but it costs a full
// probe ladder per accusation and the flooder itself is never punished. The
// hardened detector rate-limits the reporter, rejects replays, demerits it
// on every exoneration, and ultimately quarantines it as a liar.
#pragma once

#include <unordered_set>
#include <vector>

#include "aodv/agent.hpp"
#include "cluster/membership_client.hpp"
#include "core/messages.hpp"
#include "sim/rng.hpp"

namespace blackdp::attack {

struct FlooderConfig {
  /// First accusation goes out this long after construction (lets the
  /// flooder enroll and overhear some victims first).
  sim::Duration start{sim::Duration::seconds(2)};
  sim::Duration interval{sim::Duration::milliseconds(500)};
  /// Total transmissions (fresh + replayed); the timer chain ends after
  /// this many, so the simulation can terminate.
  std::uint32_t maxAccusations{40};
  /// P(resend the previous signed d_req verbatim instead of forging a new
  /// one) — exercises the replay defense.
  double replayProbability{0.25};
};

struct FlooderStats {
  std::uint64_t accusationsSent{0};  ///< freshly forged d_reqs
  std::uint64_t replaysSent{0};      ///< verbatim retransmissions
};

class AccusationFlooderAgent final : public aodv::AodvAgent {
 public:
  AccusationFlooderAgent(sim::Simulator& simulator, net::BasicNode& node,
                         cluster::MembershipClient& membership,
                         const crypto::CryptoEngine& engine,
                         FlooderConfig config, sim::Rng rng);

  [[nodiscard]] const FlooderStats& flooderStats() const {
    return flooderStats_;
  }
  [[nodiscard]] std::size_t victimPoolSize() const { return victims_.size(); }

 private:
  void observe(const net::Frame& frame);
  void tick();

  cluster::MembershipClient& membership_;
  const crypto::CryptoEngine& engine_;
  FlooderConfig flooderConfig_;
  sim::Rng rng_;
  FlooderStats flooderStats_;
  /// Overheard honest addresses, in first-heard order for deterministic
  /// victim draws.
  std::vector<common::Address> victims_;
  std::unordered_set<std::uint64_t> victimSet_;
  std::shared_ptr<core::DetectionRequest> lastDreq_;
  std::uint64_t nextNonce_{1};
  std::uint32_t sent_{0};
};

}  // namespace blackdp::attack
