#include "attack/accusation_flooder.hpp"

#include "common/logging.hpp"
#include "core/secure.hpp"

namespace blackdp::attack {

namespace {
/// Real vehicle pseudonyms live far below the RSU/probe reserved ranges;
/// accusing a disposable probe identity would only expose the flooder.
constexpr std::uint64_t kPlausibleVictimCeiling = 1ull << 32;
}  // namespace

AccusationFlooderAgent::AccusationFlooderAgent(
    sim::Simulator& simulator, net::BasicNode& node,
    cluster::MembershipClient& membership, const crypto::CryptoEngine& engine,
    FlooderConfig config, sim::Rng rng)
    : aodv::AodvAgent{simulator, node},
      membership_{membership},
      engine_{engine},
      flooderConfig_{config},
      rng_{rng} {
  node.setPromiscuousTap([this](const net::Frame& frame) { observe(frame); });
  simulator.schedule(flooderConfig_.start, [this] { tick(); });
}

void AccusationFlooderAgent::observe(const net::Frame& frame) {
  const common::Address src = frame.src;
  if (src == common::kNullAddress || src == common::kBroadcastAddress ||
      src == node().localAddress() ||
      src.value() >= kPlausibleVictimCeiling) {
    return;
  }
  if (victimSet_.insert(src.value()).second) victims_.push_back(src);
}

void AccusationFlooderAgent::tick() {
  if (sent_ >= flooderConfig_.maxAccusations) return;  // chain ends here

  const auto chAddress = membership_.clusterHeadAddress();
  const auto cluster = membership_.currentCluster();
  if (chAddress && cluster) {
    // Never accuse the CH we report to — it knows it is not a black hole.
    std::vector<common::Address> pool;
    for (const common::Address v : victims_) {
      if (v != *chAddress) pool.push_back(v);
    }
    const bool replay = lastDreq_ != nullptr &&
                        rng_.bernoulli(flooderConfig_.replayProbability);
    if (replay) {
      ++flooderStats_.replaysSent;
      ++sent_;
      node().sendTo(*chAddress, lastDreq_);
    } else if (!pool.empty()) {
      auto dreq = net::makeMutablePayload<core::DetectionRequest>();
      dreq->reporter = node().localAddress();
      dreq->reporterCluster = *cluster;
      dreq->suspect = pool[rng_.index(pool.size())];
      dreq->suspectCluster = *cluster;
      dreq->nonce = nextNonce_++;
      if (credentials()) {
        dreq->envelope = core::makeEnvelope(dreq->canonicalBytes(),
                                            *credentials(), engine_);
      }
      ++flooderStats_.accusationsSent;
      ++sent_;
      BDP_LOG(kDebug, "attack")
          << "flooder accusing " << dreq->suspect << " to " << *chAddress;
      lastDreq_ = dreq;
      node().sendTo(*chAddress, std::move(dreq));
    }
  }
  if (sent_ < flooderConfig_.maxAccusations) {
    simulator().schedule(flooderConfig_.interval, [this] { tick(); });
  }
}

}  // namespace blackdp::attack
