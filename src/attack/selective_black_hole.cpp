#include "attack/selective_black_hole.hpp"

#include "common/logging.hpp"

namespace blackdp::attack {

SelectiveBlackHoleAgent::SelectiveBlackHoleAgent(sim::Simulator& simulator,
                                                net::BasicNode& node,
                                                AttackRole role,
                                                BlackHoleConfig config,
                                                sim::Rng rng,
                                                aodv::AodvConfig aodvConfig)
    : BlackHoleAgent{simulator, node, role, config, rng, aodvConfig} {
  node.setPromiscuousTap([this](const net::Frame& frame) { observe(frame); });
}

void SelectiveBlackHoleAgent::remember(common::Address address) {
  if (address == common::kNullAddress ||
      address == common::kBroadcastAddress ||
      address == node().localAddress()) {
    return;
  }
  overheard_.insert(address.value());
}

void SelectiveBlackHoleAgent::observe(const net::Frame& frame) {
  // Every transmitter within radio range betrays its address; protocol
  // payloads betray the endpoints they speak about. RREQ *destinations* are
  // deliberately not harvested here — see handleRreq.
  remember(frame.src);
  if (const auto* rreq = net::payloadAs<aodv::RouteRequest>(frame.payload)) {
    remember(rreq->origin);
  } else if (const auto* rrep =
                 net::payloadAs<aodv::RouteReply>(frame.payload)) {
    remember(rrep->origin);
    remember(rrep->destination);
    remember(rrep->replier);
  } else if (const auto* data =
                 net::payloadAs<aodv::DataPacket>(frame.payload)) {
    remember(data->origin);
    remember(data->destination);
  }
}

void SelectiveBlackHoleAgent::handleRreq(const aodv::RouteRequest& rreq,
                                         const net::Frame& frame) {
  if (rreq.origin == node().localAddress()) return;

  // Decide on the cache as it stood BEFORE this request, then admit the
  // destination (broadcast floods only): the first genuine discovery runs
  // clean and the AODV retry gets attacked, while a prober that repeats its
  // own invented destination learns nothing.
  const bool known = overheard_.count(rreq.destination.value()) > 0;
  if (frame.isBroadcast()) remember(rreq.destination);

  if (!known) {
    ++selectiveStats_.probesIgnored;
    BDP_LOG(kDebug, "attack")
        << "selective: ignoring rreq for unheard " << rreq.destination;
    // Blend in: participate in the flood like an honest router with no
    // route; stay silent toward unicast (probe-shaped) requests.
    if (frame.isBroadcast()) aodv::AodvAgent::handleRreq(rreq, frame);
    return;
  }

  ++selectiveStats_.cachedAttacks;
  BlackHoleAgent::handleRreq(rreq, frame);
}

}  // namespace blackdp::attack
