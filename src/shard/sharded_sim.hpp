// Region-partitioned simulation with deterministic epoch exchange.
//
// ShardedSimulation runs one ShardWorld per contiguous corridor region, each
// owning a full private stack (Simulator, WirelessMedium, nodes, detectors,
// metrics), and advances all of them in lock-step epochs on a shared
// sim::ThreadPool. Within an epoch the shards never communicate; at the
// epoch barrier every shard's outbox of Envelopes is merged into the
// canonical (srcSegment, seq) order and routed to the owning shards' inboxes
// for the next epoch.
//
// Determinism: because envelopes are segment-addressed and the merge order
// is canonical, the inbox sequence each SEGMENT observes is independent of
// the partition — running the same world as one shard or as N produces
// byte-identical metrics and canonical traces (pinned by tests/shard_test
// and the CI megacity smoke). The epoch length is chosen by the world so
// that no physical interaction can cross a region boundary within one epoch
// (epoch <= range / v_max); the shard layer enforces the structural half of
// that argument by validating every envelope travels at most
// `maxSegmentHops` segments.
//
// Integrity: each worker seals its epoch outbox with a CRC-32 BatchSeal;
// the coordinator re-verifies the seal before merging and then checks plan
// membership, the hop bound, and per-source-segment seq contiguity
// (0..n-1, emission-ordered). Every violation increments a ShardStats
// counter and throws a typed, catchable ShardIntegrityError (see
// shard/integrity.hpp) instead of asserting.
//
// Supervision: with Config::snapshotEvery > 0 the coordinator snapshots
// every world's serialized state (ShardWorld::saveState) every K epochs and
// retains the inter-epoch inboxes since the last snapshot. restartShard()
// rebuilds one crashed shard from the snapshot and deterministically
// replays the missed epochs from the retained inbox buffer — the
// regenerated outboxes are discarded because the other shards already
// consumed the originals.
//
// Threading: epochs fan out through ThreadPool::parallelFor, so a
// ShardedSimulation embedded in a parallel campaign trial degrades to
// serial via the nested-parallelism guard instead of oversubscribing (the
// jobs budget stays with the outermost level). Per-shard busy time is
// accumulated for the load-balance sidecar of BENCH_megacity.json.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "shard/envelope.hpp"
#include "shard/integrity.hpp"
#include "sim/thread_pool.hpp"

namespace blackdp::shard {

/// One region's world. Implementations own every stateful object of their
/// region and must touch nothing shared from runEpoch (it runs on a pool
/// worker; the thread-local trace recorder is not installed there).
class ShardWorld {
 public:
  virtual ~ShardWorld() = default;

  /// Advances the region's simulator across epoch `epoch`, applying `inbox`
  /// (cross-boundary envelopes addressed to this region, already in
  /// canonical order) at the epoch start and appending this epoch's outgoing
  /// envelopes to `outbox` with per-source-segment emission-order `seq`.
  virtual void runEpoch(std::uint32_t epoch, std::span<const Envelope> inbox,
                        std::vector<Envelope>& outbox) = 0;

  /// Serializes the region's full state at an epoch boundary. The default
  /// is a no-op so stateless test worlds keep working; worlds that want
  /// supervision or checkpoints override both hooks symmetrically.
  virtual void saveState(common::ByteWriter& writer) const {
    (void)writer;
  }

  /// Restores state saved by saveState into a FRESHLY CONSTRUCTED world.
  /// Throws std::out_of_range on truncated input (ByteReader contract).
  virtual void restoreState(common::ByteReader& reader) { (void)reader; }
};

/// Aggregate run statistics. busySeconds is wall clock (machine dependent);
/// the integrity and recovery counters are deterministic — zero on a
/// healthy run regardless of partition.
struct ShardStats {
  std::uint64_t epochsRun{0};
  std::uint64_t envelopesExchanged{0};
  std::uint64_t epochViolations{0};   ///< hop-bound (epoch-safety) rejects
  std::uint64_t seqViolations{0};     ///< seq gap/duplicate/reorder + plan rejects
  std::uint64_t crcRejects{0};        ///< BatchSeal mismatches
  std::uint64_t shardRestarts{0};     ///< supervisor restarts performed
  std::uint64_t envelopesReplayed{0}; ///< inbox envelopes re-applied on restart
  std::uint64_t recoveryEpochs{0};    ///< epochs re-run during restarts
  std::vector<double> busySeconds;    ///< per shard, summed over epochs
};

class ShardedSimulation {
 public:
  struct Config {
    /// Maximum segments an envelope may travel (epoch-safety bound): with
    /// epoch <= range / v_max nothing physical can move further than one
    /// segment per epoch. Exceeding it is a recoverable
    /// ShardIntegrityError (kEpochHops), not an assert.
    std::uint32_t maxSegmentHops{1};
    /// Supervisor snapshot interval in epochs; 0 disables supervision
    /// (restartShard then requires a crash before the first epoch).
    std::uint32_t snapshotEvery{0};
    /// Verify each outbox's worker-computed BatchSeal on the coordinator.
    bool verifySeals{true};
    /// Test/fault-injection seam: mutates a shard's outbox AFTER its seal
    /// was computed and BEFORE the coordinator verifies it — models
    /// corruption in transit between worker and barrier.
    std::function<void(std::uint32_t epoch, std::uint32_t s,
                       std::vector<Envelope>& outbox)>
        tamperOutboxHook;
  };

  /// `worlds` holds one ShardWorld per plan region (worlds[s] owns segments
  /// [plan.firstSegment(s), plan.firstSegment(s) + plan.segmentCount(s))).
  /// The pool is borrowed — typically sim::ParallelRunner::threadPool() —
  /// and must outlive this object.
  ShardedSimulation(ShardPlan plan, std::vector<ShardWorld*> worlds,
                    sim::ThreadPool& pool, Config config);
  ShardedSimulation(ShardPlan plan, std::vector<ShardWorld*> worlds,
                    sim::ThreadPool& pool);

  /// Runs one lock-step epoch across all shards, then exchanges envelopes.
  /// Worker exceptions propagate after all shards have stopped (lowest shard
  /// index wins, mirroring ParallelRunner). Throws ShardIntegrityError on a
  /// barrier integrity violation (counter incremented first).
  void runEpoch();

  void runEpochs(std::uint32_t count) {
    for (std::uint32_t i = 0; i < count; ++i) runEpoch();
  }

  /// Supervisor entry point: replaces crashed shard `s` with `fresh` (a
  /// newly constructed world for the same region), restoring the last
  /// snapshot into it and replaying the retained inboxes of every epoch
  /// since. The pending inbox for the CURRENT epoch is coordinator state
  /// and survives the crash untouched. Requires snapshotEvery > 0 or
  /// epoch() == 0.
  void restartShard(std::uint32_t s, ShardWorld* fresh);

  /// Pending per-shard inboxes for the next epoch, canonical order
  /// (checkpointed by worlds as the in-flight exchange state).
  [[nodiscard]] const std::vector<std::vector<Envelope>>& inboxes() const {
    return inboxes_;
  }

  /// Restores the exchange state saved from inboxes(): sets the epoch
  /// counter and the pending inboxes. Only valid on a fresh simulation
  /// (epoch() == 0) whose worlds were restored to the same boundary.
  void restoreExchange(std::uint32_t epoch,
                       std::vector<std::vector<Envelope>> inboxes);

  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }
  [[nodiscard]] const ShardPlan& plan() const { return plan_; }
  [[nodiscard]] const ShardStats& stats() const { return stats_; }

 private:
  void takeSnapshots();
  void verifyOutbox(std::uint32_t epoch, std::uint32_t s,
                    const BatchSeal& seal);
  void verifyMerged(std::uint32_t epoch);

  ShardPlan plan_;
  std::vector<ShardWorld*> worlds_;
  sim::ThreadPool& pool_;
  Config config_;
  std::uint32_t epoch_{0};
  ShardStats stats_;
  std::vector<std::vector<Envelope>> inboxes_;   ///< per shard, canonical order
  std::vector<std::vector<Envelope>> outboxes_;  ///< per shard, emission order
  std::vector<Envelope> merged_;                 ///< barrier scratch
  // Supervision state: serialized world snapshots at epoch snapshotEpoch_
  // plus the inboxes of every epoch since (history_[i] = inboxes for epoch
  // snapshotEpoch_ + i) — the bounded replay buffer for restartShard.
  bool hasSnapshot_{false};
  std::uint32_t snapshotEpoch_{0};
  std::vector<common::Bytes> snapshots_;  ///< per shard
  std::vector<std::vector<std::vector<Envelope>>> history_;
};

}  // namespace blackdp::shard
