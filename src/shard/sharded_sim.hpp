// Region-partitioned simulation with deterministic epoch exchange.
//
// ShardedSimulation runs one ShardWorld per contiguous corridor region, each
// owning a full private stack (Simulator, WirelessMedium, nodes, detectors,
// metrics), and advances all of them in lock-step epochs on a shared
// sim::ThreadPool. Within an epoch the shards never communicate; at the
// epoch barrier every shard's outbox of Envelopes is merged into the
// canonical (srcSegment, seq) order and routed to the owning shards' inboxes
// for the next epoch.
//
// Determinism: because envelopes are segment-addressed and the merge order
// is canonical, the inbox sequence each SEGMENT observes is independent of
// the partition — running the same world as one shard or as N produces
// byte-identical metrics and canonical traces (pinned by tests/shard_test
// and the CI megacity smoke). The epoch length is chosen by the world so
// that no physical interaction can cross a region boundary within one epoch
// (epoch <= range / v_max); the shard layer enforces the structural half of
// that argument by asserting every envelope travels at most
// `maxSegmentHops` segments.
//
// Threading: epochs fan out through ThreadPool::parallelFor, so a
// ShardedSimulation embedded in a parallel campaign trial degrades to
// serial via the nested-parallelism guard instead of oversubscribing (the
// jobs budget stays with the outermost level). Per-shard busy time is
// accumulated for the load-balance sidecar of BENCH_megacity.json.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "shard/envelope.hpp"
#include "sim/thread_pool.hpp"

namespace blackdp::shard {

/// One region's world. Implementations own every stateful object of their
/// region and must touch nothing shared from runEpoch (it runs on a pool
/// worker; the thread-local trace recorder is not installed there).
class ShardWorld {
 public:
  virtual ~ShardWorld() = default;

  /// Advances the region's simulator across epoch `epoch`, applying `inbox`
  /// (cross-boundary envelopes addressed to this region, already in
  /// canonical order) at the epoch start and appending this epoch's outgoing
  /// envelopes to `outbox` with per-source-segment emission-order `seq`.
  virtual void runEpoch(std::uint32_t epoch, std::span<const Envelope> inbox,
                        std::vector<Envelope>& outbox) = 0;
};

/// Aggregate, machine-dependent run statistics (NOT part of the
/// deterministic metrics surface — busy seconds are wall clock).
struct ShardStats {
  std::uint64_t epochsRun{0};
  std::uint64_t envelopesExchanged{0};
  std::vector<double> busySeconds;  ///< per shard, summed over epochs
};

class ShardedSimulation {
 public:
  struct Config {
    /// Maximum segments an envelope may travel (epoch-safety assert):
    /// with epoch <= range / v_max nothing physical can move further than
    /// one segment per epoch.
    std::uint32_t maxSegmentHops{1};
  };

  /// `worlds` holds one ShardWorld per plan region (worlds[s] owns segments
  /// [plan.firstSegment(s), plan.firstSegment(s) + plan.segmentCount(s))).
  /// The pool is borrowed — typically sim::ParallelRunner::threadPool() —
  /// and must outlive this object.
  ShardedSimulation(ShardPlan plan, std::vector<ShardWorld*> worlds,
                    sim::ThreadPool& pool, Config config);
  ShardedSimulation(ShardPlan plan, std::vector<ShardWorld*> worlds,
                    sim::ThreadPool& pool);

  /// Runs one lock-step epoch across all shards, then exchanges envelopes.
  /// Worker exceptions propagate after all shards have stopped (lowest shard
  /// index wins, mirroring ParallelRunner).
  void runEpoch();

  void runEpochs(std::uint32_t count) {
    for (std::uint32_t i = 0; i < count; ++i) runEpoch();
  }

  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }
  [[nodiscard]] const ShardPlan& plan() const { return plan_; }
  [[nodiscard]] const ShardStats& stats() const { return stats_; }

 private:
  ShardPlan plan_;
  std::vector<ShardWorld*> worlds_;
  sim::ThreadPool& pool_;
  Config config_;
  std::uint32_t epoch_{0};
  ShardStats stats_;
  std::vector<std::vector<Envelope>> inboxes_;   ///< per shard, canonical order
  std::vector<std::vector<Envelope>> outboxes_;  ///< per shard, emission order
  std::vector<Envelope> merged_;                 ///< barrier scratch
};

}  // namespace blackdp::shard
