#include "shard/envelope.hpp"

#include "codec/checkpoint.hpp"

namespace blackdp::shard {

void serializeEnvelope(const Envelope& envelope, common::ByteWriter& writer) {
  writer.writeU32(envelope.srcSegment);
  writer.writeU32(envelope.dstSegment);
  writer.writeU32(envelope.seq);
  writer.writeU8(envelope.kind);
  writer.writeBlob(envelope.body);
}

Envelope deserializeEnvelope(common::ByteReader& reader) {
  Envelope envelope;
  envelope.srcSegment = reader.readU32();
  envelope.dstSegment = reader.readU32();
  envelope.seq = reader.readU32();
  envelope.kind = reader.readU8();
  envelope.body = reader.readBlob();
  return envelope;
}

BatchSeal sealBatch(std::span<const Envelope> batch) {
  common::ByteWriter writer;
  for (const Envelope& envelope : batch) serializeEnvelope(envelope, writer);
  const common::Bytes bytes = std::move(writer).take();
  return BatchSeal{static_cast<std::uint32_t>(batch.size()),
                   codec::crc32(bytes)};
}

}  // namespace blackdp::shard
