// Typed, recoverable integrity failures of the cross-shard epoch exchange.
//
// The epoch barrier validates every batch of Envelopes before routing it:
// batch CRC seals, (srcSegment, seq) contiguity, plan membership, and the
// epoch-safety hop bound. Violations used to be hard asserts; they are now
// ShardIntegrityError — a catchable exception carrying a machine-readable
// kind — so a supervisor (or a test) can observe the failure, read the
// counters in ShardStats, and decide whether to restart the shard instead
// of taking the whole process down.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace blackdp::shard {

/// What exactly the barrier rejected.
enum class IntegrityViolation : std::uint8_t {
  kOutOfPlan = 0,     ///< src/dst segment outside the plan, or src not owned
                      ///< by the emitting shard
  kEpochHops = 1,     ///< envelope travels further than maxSegmentHops
  kSeqDuplicate = 2,  ///< two envelopes share (srcSegment, seq)
  kSeqGap = 3,        ///< a (srcSegment, seq) value is missing from 0..n-1
  kSeqReorder = 4,    ///< emission order regressed within a source segment
  kCrcMismatch = 5,   ///< batch CRC seal does not match the envelope bytes
};

[[nodiscard]] constexpr std::string_view toString(IntegrityViolation v) {
  switch (v) {
    case IntegrityViolation::kOutOfPlan: return "out-of-plan";
    case IntegrityViolation::kEpochHops: return "epoch-hops";
    case IntegrityViolation::kSeqDuplicate: return "seq-duplicate";
    case IntegrityViolation::kSeqGap: return "seq-gap";
    case IntegrityViolation::kSeqReorder: return "seq-reorder";
    case IntegrityViolation::kCrcMismatch: return "crc-mismatch";
  }
  return "unknown";
}

/// Thrown by ShardedSimulation::runEpoch at the barrier. The corresponding
/// ShardStats counter is incremented BEFORE the throw, so a catcher always
/// sees the violation reflected in the stats.
class ShardIntegrityError : public std::runtime_error {
 public:
  ShardIntegrityError(IntegrityViolation kind, std::uint32_t epoch,
                      const std::string& detail)
      : std::runtime_error{"shard integrity violation [" +
                           std::string{toString(kind)} + "] at epoch " +
                           std::to_string(epoch) + ": " + detail},
        kind_{kind},
        epoch_{epoch} {}

  [[nodiscard]] IntegrityViolation kind() const { return kind_; }
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }

 private:
  IntegrityViolation kind_;
  std::uint32_t epoch_;
};

}  // namespace blackdp::shard
