// Cross-shard epoch-exchange envelopes and the region partition plan.
//
// The sharded simulation partitions the corridor's segments into contiguous
// regions, one shard per region. Inside an epoch the shards run fully
// independent Simulators; the ONLY way state crosses a region boundary is an
// Envelope handed over at the epoch barrier. Envelopes are addressed segment
// to segment (not shard to shard), so the set of envelopes a run produces is
// a property of the WORLD, independent of how segments are grouped into
// shards — the root of the shards=1 ≡ shards=N byte-for-byte guarantee.
//
// Determinism contract:
//   - `seq` numbers each source segment's emissions in emission order
//     (0, 1, 2, ... per source segment per epoch);
//   - the barrier merges all shards' outboxes into one canonical order,
//     ascending (srcSegment, seq), before routing — any shard interleaving
//     collapses to the same inbox sequence;
//   - each shard receives its inbox already in canonical order and must
//     apply envelopes in that order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bytes.hpp"

namespace blackdp::shard {

/// One unit of cross-segment state transfer, applied at an epoch boundary.
/// `kind` and `body` are opaque to the shard layer: the world defines its own
/// kind enum and serialises with common::ByteWriter.
struct Envelope {
  std::uint32_t srcSegment{0};  ///< emitting segment
  std::uint32_t dstSegment{0};  ///< receiving segment
  std::uint32_t seq{0};         ///< emission index within (srcSegment, epoch)
  std::uint8_t kind{0};            ///< world-defined discriminator
  std::vector<std::uint8_t> body;  ///< world-defined payload (ByteWriter)

  friend bool operator==(const Envelope&, const Envelope&) = default;
};

/// Canonical merge order at the epoch barrier. Comparing only
/// (srcSegment, seq) is total because seq is unique per source segment.
[[nodiscard]] inline bool canonicalLess(const Envelope& x, const Envelope& y) {
  if (x.srcSegment != y.srcSegment) return x.srcSegment < y.srcSegment;
  return x.seq < y.seq;
}

/// Canonical wire form of one envelope (checkpoints + batch seals):
/// u32 srcSegment | u32 dstSegment | u32 seq | u8 kind | blob body.
void serializeEnvelope(const Envelope& envelope, common::ByteWriter& writer);

/// Inverse of serializeEnvelope. Throws std::out_of_range on truncation
/// (the ByteReader contract); callers map that to a typed error.
[[nodiscard]] Envelope deserializeEnvelope(common::ByteReader& reader);

/// Integrity seal over one shard's epoch outbox: the envelope count plus a
/// CRC-32/ISO-HDLC over the concatenated canonical wire forms. Computed on
/// the emitting worker, verified on the coordinator before the merge — any
/// corruption of the batch between the two is a kCrcMismatch.
struct BatchSeal {
  std::uint32_t count{0};
  std::uint32_t crc{0};

  friend bool operator==(const BatchSeal&, const BatchSeal&) = default;
};

[[nodiscard]] BatchSeal sealBatch(std::span<const Envelope> batch);

/// Contiguous partition of `segments` corridor segments into `shards`
/// regions. The first `segments % shards` regions get one extra segment, so
/// region sizes differ by at most one — the static load-balance half of the
/// per-shard balance metric.
class ShardPlan {
 public:
  ShardPlan() = default;

  [[nodiscard]] static ShardPlan contiguous(std::uint32_t segments,
                                            std::uint32_t shards) {
    BDP_ASSERT_MSG(segments > 0, "plan needs at least one segment");
    BDP_ASSERT_MSG(shards > 0 && shards <= segments,
                   "plan needs 1..segments shards");
    ShardPlan plan;
    plan.segments_ = segments;
    plan.first_.reserve(shards + 1);
    const std::uint32_t base = segments / shards;
    const std::uint32_t extra = segments % shards;
    std::uint32_t next = 0;
    for (std::uint32_t s = 0; s < shards; ++s) {
      plan.first_.push_back(next);
      next += base + (s < extra ? 1 : 0);
    }
    plan.first_.push_back(next);
    return plan;
  }

  [[nodiscard]] std::uint32_t segments() const { return segments_; }

  [[nodiscard]] std::uint32_t shards() const {
    return static_cast<std::uint32_t>(first_.size()) - 1;
  }

  [[nodiscard]] std::uint32_t firstSegment(std::uint32_t shard) const {
    return first_[shard];
  }

  [[nodiscard]] std::uint32_t segmentCount(std::uint32_t shard) const {
    return first_[shard + 1] - first_[shard];
  }

  [[nodiscard]] std::uint32_t shardOf(std::uint32_t segment) const {
    BDP_ASSERT_MSG(segment < segments_, "segment outside the plan");
    // Regions are tiny in number (<= jobs); a linear scan beats binary
    // search for the sizes in play and is branch-predictable.
    std::uint32_t shard = 0;
    while (first_[shard + 1] <= segment) ++shard;
    return shard;
  }

 private:
  std::uint32_t segments_{0};
  /// first_[s] = first segment of shard s; one sentinel entry at the end.
  std::vector<std::uint32_t> first_;
};

}  // namespace blackdp::shard
