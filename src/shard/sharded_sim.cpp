#include "shard/sharded_sim.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace blackdp::shard {

ShardedSimulation::ShardedSimulation(ShardPlan plan,
                                     std::vector<ShardWorld*> worlds,
                                     sim::ThreadPool& pool, Config config)
    : plan_{std::move(plan)},
      worlds_{std::move(worlds)},
      pool_{pool},
      config_{std::move(config)} {
  BDP_ASSERT_MSG(worlds_.size() == plan_.shards(),
                 "one ShardWorld per plan region");
  for (ShardWorld* world : worlds_) {
    BDP_ASSERT_MSG(world != nullptr, "null ShardWorld");
  }
  inboxes_.resize(worlds_.size());
  outboxes_.resize(worlds_.size());
  snapshots_.resize(worlds_.size());
  stats_.busySeconds.assign(worlds_.size(), 0.0);
}

ShardedSimulation::ShardedSimulation(ShardPlan plan,
                                     std::vector<ShardWorld*> worlds,
                                     sim::ThreadPool& pool)
    : ShardedSimulation{std::move(plan), std::move(worlds), pool, Config{}} {}

void ShardedSimulation::takeSnapshots() {
  pool_.parallelFor(worlds_.size(), [&](std::size_t s) {
    common::ByteWriter writer;
    worlds_[s]->saveState(writer);
    snapshots_[s] = std::move(writer).take();
  });
  if (!pool_.failures().empty()) {
    std::rethrow_exception(pool_.failures().front().error);
  }
  hasSnapshot_ = true;
  snapshotEpoch_ = epoch_;
  history_.clear();
  history_.push_back(inboxes_);  // inboxes for epoch snapshotEpoch_
}

void ShardedSimulation::verifyOutbox(std::uint32_t epoch, std::uint32_t s,
                                     const BatchSeal& seal) {
  const std::vector<Envelope>& outbox = outboxes_[s];
  if (config_.verifySeals && sealBatch(outbox) != seal) {
    ++stats_.crcRejects;
    throw ShardIntegrityError{
        IntegrityViolation::kCrcMismatch, epoch,
        "shard " + std::to_string(s) + " outbox does not match its seal (" +
            std::to_string(outbox.size()) + " envelopes)"};
  }
  const std::uint32_t regionFirst = plan_.firstSegment(s);
  const std::uint32_t regionEnd = regionFirst + plan_.segmentCount(s);
  // lastSeq per source segment of this region, tracking emission order.
  std::vector<std::int64_t> lastSeq(regionEnd - regionFirst, -1);
  for (const Envelope& e : outbox) {
    if (e.srcSegment < regionFirst || e.srcSegment >= regionEnd ||
        e.dstSegment >= plan_.segments()) {
      ++stats_.seqViolations;
      throw ShardIntegrityError{
          IntegrityViolation::kOutOfPlan, epoch,
          "shard " + std::to_string(s) + " emitted src=" +
              std::to_string(e.srcSegment) + " dst=" +
              std::to_string(e.dstSegment) + " outside its region/plan"};
    }
    const std::uint32_t hops = e.dstSegment > e.srcSegment
                                   ? e.dstSegment - e.srcSegment
                                   : e.srcSegment - e.dstSegment;
    if (hops > config_.maxSegmentHops) {
      ++stats_.epochViolations;
      throw ShardIntegrityError{
          IntegrityViolation::kEpochHops, epoch,
          "envelope src=" + std::to_string(e.srcSegment) + " dst=" +
              std::to_string(e.dstSegment) + " travels " +
              std::to_string(hops) + " segments (bound " +
              std::to_string(config_.maxSegmentHops) + ")"};
    }
    std::int64_t& last = lastSeq[e.srcSegment - regionFirst];
    if (static_cast<std::int64_t>(e.seq) <= last) {
      ++stats_.seqViolations;
      const bool duplicate = static_cast<std::int64_t>(e.seq) == last;
      throw ShardIntegrityError{
          duplicate ? IntegrityViolation::kSeqDuplicate
                    : IntegrityViolation::kSeqReorder,
          epoch,
          "src=" + std::to_string(e.srcSegment) + " emitted seq " +
              std::to_string(e.seq) + " after seq " + std::to_string(last)};
    }
    last = static_cast<std::int64_t>(e.seq);
  }
}

void ShardedSimulation::verifyMerged(std::uint32_t epoch) {
  // Post-sort: per source segment the seq values must be exactly 0..n-1.
  // Duplicates and reorders were rejected per-outbox; what remains
  // detectable here is a missing emission (a gap), including a missing
  // seq 0 at the start of a segment's run.
  std::uint32_t expected = 0;
  for (std::size_t i = 0; i < merged_.size(); ++i) {
    const Envelope& e = merged_[i];
    if (i == 0 || merged_[i - 1].srcSegment != e.srcSegment) expected = 0;
    if (e.seq != expected) {
      ++stats_.seqViolations;
      throw ShardIntegrityError{
          IntegrityViolation::kSeqGap, epoch,
          "src=" + std::to_string(e.srcSegment) + " expected seq " +
              std::to_string(expected) + " but saw " +
              std::to_string(e.seq)};
    }
    ++expected;
  }
}

void ShardedSimulation::runEpoch() {
  const std::uint32_t shards = plan_.shards();
  const std::uint32_t epoch = epoch_;

  // Supervisor snapshot: every K epochs (and unconditionally before the
  // first epoch after construction or restoreExchange) serialize every
  // world and restart the inbox replay buffer. Snapshots are read-only
  // with respect to the run, so the run's surfaces are unchanged.
  if (config_.snapshotEvery > 0 &&
      (!hasSnapshot_ || (epoch_ % config_.snapshotEvery) == 0)) {
    takeSnapshots();
  }

  // Fan out: each shard applies its inbox and runs one epoch, then seals
  // its outbox. Busy time and the seal are written into private slots per
  // shard — no sharing between workers.
  std::vector<double> epochBusy(shards, 0.0);
  std::vector<BatchSeal> seals(shards);
  pool_.parallelFor(shards, [&](std::size_t s) {
    const auto begin = std::chrono::steady_clock::now();
    outboxes_[s].clear();
    worlds_[s]->runEpoch(epoch, std::span<const Envelope>{inboxes_[s]},
                         outboxes_[s]);
    seals[s] = sealBatch(outboxes_[s]);
    epochBusy[s] = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - begin)
                       .count();
  });
  if (!pool_.failures().empty()) {
    std::rethrow_exception(pool_.failures().front().error);
  }

  for (std::uint32_t s = 0; s < shards; ++s) {
    stats_.busySeconds[s] += epochBusy[s];
    if (auto* tr = obs::Trace::active()) {
      tr->record({0, obs::EventKind::kShard,
                  static_cast<std::uint8_t>(obs::ShardOp::kEpochRun), s, 0,
                  outboxes_[s].size(), 0, 0, epoch});
    }
  }

  // Barrier: verify every outbox (seal, plan membership, hop bound,
  // emission order), then merge into the canonical (srcSegment, seq) order
  // and check per-source seq contiguity. Violations throw typed
  // ShardIntegrityErrors with their ShardStats counter already bumped.
  merged_.clear();
  for (std::uint32_t s = 0; s < shards; ++s) {
    if (config_.tamperOutboxHook) config_.tamperOutboxHook(epoch, s, outboxes_[s]);
    verifyOutbox(epoch, s, seals[s]);
    for (Envelope& e : outboxes_[s]) merged_.push_back(std::move(e));
    outboxes_[s].clear();
  }
  std::sort(merged_.begin(), merged_.end(), canonicalLess);
  verifyMerged(epoch);

  // Route: canonical order is preserved per destination shard because the
  // merged sequence is visited in order.
  for (auto& inbox : inboxes_) inbox.clear();
  for (Envelope& e : merged_) {
    inboxes_[plan_.shardOf(e.dstSegment)].push_back(std::move(e));
  }
  stats_.envelopesExchanged += merged_.size();
  if (auto* tr = obs::Trace::active()) {
    tr->record({0, obs::EventKind::kShard,
                static_cast<std::uint8_t>(obs::ShardOp::kExchange), 0, 0,
                epoch, 0, 0, merged_.size()});
  }
  merged_.clear();

  ++stats_.epochsRun;
  ++epoch_;

  // Retain the freshly routed inboxes (for epoch epoch_) in the replay
  // buffer; restartShard replays from snapshotEpoch_ up to the current
  // epoch using exactly these recorded sequences.
  if (config_.snapshotEvery > 0 && hasSnapshot_) {
    history_.push_back(inboxes_);
  }
}

void ShardedSimulation::restartShard(std::uint32_t s, ShardWorld* fresh) {
  BDP_ASSERT_MSG(s < worlds_.size(), "restartShard: shard outside the plan");
  BDP_ASSERT_MSG(fresh != nullptr, "restartShard: null replacement world");
  ++stats_.shardRestarts;
  if (hasSnapshot_) {
    common::ByteReader reader{snapshots_[s]};
    fresh->restoreState(reader);
    std::vector<Envelope> discarded;
    for (std::uint32_t e = snapshotEpoch_; e < epoch_; ++e) {
      const std::vector<Envelope>& inbox = history_[e - snapshotEpoch_][s];
      discarded.clear();
      // Replay: the regenerated outbox is discarded — every other shard
      // already consumed the original emission before the crash.
      fresh->runEpoch(e, std::span<const Envelope>{inbox}, discarded);
      stats_.envelopesReplayed += inbox.size();
      ++stats_.recoveryEpochs;
    }
  } else {
    BDP_ASSERT_MSG(epoch_ == 0,
                   "restartShard without supervision snapshots mid-run");
  }
  worlds_[s] = fresh;
}

void ShardedSimulation::restoreExchange(
    std::uint32_t epoch, std::vector<std::vector<Envelope>> inboxes) {
  BDP_ASSERT_MSG(epoch_ == 0, "restoreExchange on a running simulation");
  BDP_ASSERT_MSG(inboxes.size() == worlds_.size(),
                 "restoreExchange: one inbox per shard");
  epoch_ = epoch;
  inboxes_ = std::move(inboxes);
  // Supervision restarts from scratch: the next runEpoch takes a fresh
  // snapshot (hasSnapshot_ is false), so restartShard never reaches back
  // across the restore point.
  hasSnapshot_ = false;
  history_.clear();
}

}  // namespace blackdp::shard
