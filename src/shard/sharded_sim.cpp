#include "shard/sharded_sim.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace blackdp::shard {

ShardedSimulation::ShardedSimulation(ShardPlan plan,
                                     std::vector<ShardWorld*> worlds,
                                     sim::ThreadPool& pool, Config config)
    : plan_{std::move(plan)},
      worlds_{std::move(worlds)},
      pool_{pool},
      config_{config} {
  BDP_ASSERT_MSG(worlds_.size() == plan_.shards(),
                 "one ShardWorld per plan region");
  for (ShardWorld* world : worlds_) {
    BDP_ASSERT_MSG(world != nullptr, "null ShardWorld");
  }
  inboxes_.resize(worlds_.size());
  outboxes_.resize(worlds_.size());
  stats_.busySeconds.assign(worlds_.size(), 0.0);
}

ShardedSimulation::ShardedSimulation(ShardPlan plan,
                                     std::vector<ShardWorld*> worlds,
                                     sim::ThreadPool& pool)
    : ShardedSimulation{std::move(plan), std::move(worlds), pool, Config{}} {}

void ShardedSimulation::runEpoch() {
  const std::uint32_t shards = plan_.shards();
  const std::uint32_t epoch = epoch_;

  // Fan out: each shard applies its inbox and runs one epoch. Busy time is
  // written into a private slot per shard — no sharing between workers.
  std::vector<double> epochBusy(shards, 0.0);
  pool_.parallelFor(shards, [&](std::size_t s) {
    const auto begin = std::chrono::steady_clock::now();
    outboxes_[s].clear();
    worlds_[s]->runEpoch(epoch, std::span<const Envelope>{inboxes_[s]},
                         outboxes_[s]);
    epochBusy[s] = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - begin)
                       .count();
  });
  if (!pool_.failures().empty()) {
    std::rethrow_exception(pool_.failures().front().error);
  }

  for (std::uint32_t s = 0; s < shards; ++s) {
    stats_.busySeconds[s] += epochBusy[s];
    if (auto* tr = obs::Trace::active()) {
      tr->record({0, obs::EventKind::kShard,
                  static_cast<std::uint8_t>(obs::ShardOp::kEpochRun), s, 0,
                  outboxes_[s].size(), 0, 0, epoch});
    }
  }

  // Barrier: merge every outbox into the canonical (srcSegment, seq) order.
  // Shards emit in emission order, so within one source segment seq is
  // already ascending; the sort only interleaves segments, and the validity
  // sweep below rejects duplicate or out-of-plan envelopes outright.
  merged_.clear();
  for (std::uint32_t s = 0; s < shards; ++s) {
    for (Envelope& e : outboxes_[s]) merged_.push_back(std::move(e));
    outboxes_[s].clear();
  }
  std::sort(merged_.begin(), merged_.end(), canonicalLess);
  for (std::size_t i = 0; i < merged_.size(); ++i) {
    const Envelope& e = merged_[i];
    BDP_ASSERT_MSG(e.srcSegment < plan_.segments() &&
                       e.dstSegment < plan_.segments(),
                   "envelope outside the plan");
    const std::uint32_t hops = e.dstSegment > e.srcSegment
                                   ? e.dstSegment - e.srcSegment
                                   : e.srcSegment - e.dstSegment;
    BDP_ASSERT_MSG(hops <= config_.maxSegmentHops,
                   "envelope travels further than the epoch-safety bound");
    if (i > 0 && merged_[i - 1].srcSegment == e.srcSegment) {
      BDP_ASSERT_MSG(merged_[i - 1].seq < e.seq,
                     "duplicate envelope seq within a source segment");
    }
  }

  // Route: canonical order is preserved per destination shard because the
  // merged sequence is visited in order.
  for (auto& inbox : inboxes_) inbox.clear();
  for (Envelope& e : merged_) {
    inboxes_[plan_.shardOf(e.dstSegment)].push_back(std::move(e));
  }
  stats_.envelopesExchanged += merged_.size();
  if (auto* tr = obs::Trace::active()) {
    tr->record({0, obs::EventKind::kShard,
                static_cast<std::uint8_t>(obs::ShardOp::kExchange), 0, 0,
                epoch, 0, 0, merged_.size()});
  }
  merged_.clear();

  ++stats_.epochsRun;
  ++epoch_;
}

}  // namespace blackdp::shard
