#include "baselines/rrep_detectors.hpp"

#include <algorithm>

namespace blackdp::baselines {

std::vector<common::Address> FirstRrepComparisonDetector::classify(
    const std::vector<aodv::RouteReply>& rreps) {
  if (rreps.empty()) return {};
  // The comparison is between distinct repliers (an attacker may push
  // several copies of the same forgery along different paths).
  const aodv::RouteReply& first = rreps.front();
  aodv::SeqNum bestOther = 0;
  bool haveOther = false;
  for (std::size_t i = 1; i < rreps.size(); ++i) {
    if (rreps[i].replier == first.replier) continue;
    bestOther = std::max(bestOther, rreps[i].destSeq);
    haveOther = true;
  }
  // Needs at least two distinct repliers: the scheme assumes "there are
  // always multiple RREPs for a specific RREQ" — its documented blind spot.
  if (!haveOther) return {};
  if (first.destSeq > bestOther + margin_) {
    return {first.replier};
  }
  return {};
}

std::vector<common::Address> PeakThresholdDetector::classify(
    const std::vector<aodv::RouteReply>& rreps) {
  std::vector<common::Address> flagged;
  aodv::SeqNum maxAccepted = 0;
  for (const aodv::RouteReply& rrep : rreps) {
    if (rrep.destSeq > peak_) {
      flagged.push_back(rrep.replier);
    } else {
      maxAccepted = std::max(maxAccepted, rrep.destSeq);
    }
  }
  // PEAK is re-derived from legitimately observed traffic each interval.
  peak_ = std::max(peak_, maxAccepted) + allowance_;
  return flagged;
}

StaticThresholdDetector::StaticThresholdDetector(Environment environment)
    : threshold_{[&] {
        switch (environment) {
          case Environment::kSmall: return aodv::SeqNum{100};
          case Environment::kMedium: return aodv::SeqNum{500};
          case Environment::kLarge: return aodv::SeqNum{2000};
        }
        return aodv::SeqNum{500};
      }()} {}

std::vector<common::Address> StaticThresholdDetector::classify(
    const std::vector<aodv::RouteReply>& rreps) {
  std::vector<common::Address> flagged;
  for (const aodv::RouteReply& rrep : rreps) {
    if (rrep.destSeq > threshold_) flagged.push_back(rrep.replier);
  }
  return flagged;
}

}  // namespace blackdp::baselines
