#include "baselines/watchdog.hpp"

namespace blackdp::baselines {

Watchdog::Watchdog(sim::Simulator& simulator, net::BasicNode& node,
                   WatchdogConfig config)
    : simulator_{simulator},
      node_{node},
      config_{config},
      trust_{config.trust} {
  node_.setPromiscuousTap(
      [this](const net::Frame& frame) { onOverheard(frame); });
}

void Watchdog::onOverheard(const net::Frame& frame) {
  const auto* packet = net::payloadAs<aodv::DataPacket>(frame.payload);
  if (packet == nullptr) return;

  // Did a watched neighbour just retransmit a packet it was handed?
  const auto key = std::pair{frame.src.value(), packet->packetId};
  if (const auto it = pending_.find(key); it != pending_.end()) {
    pending_.erase(it);
    ++stats_.forwardsObserved;
    trust_.observe(frame.src, true);
  }

  // A handoff *we* made to an intermediate (not the final destination):
  // that neighbour now owes the channel a retransmission. Only our own
  // handoffs are watched — the sender is guaranteed to have been in range
  // of the next hop a moment ago, whereas a third-party observer may be
  // audible to the sender but not to the forwarder, and would rack up
  // unfair charges (the trust-scheme noise the paper criticises).
  if (frame.isBroadcast() || packet->destination == frame.dst) return;
  if (frame.src != node_.localAddress()) return;
  const auto handoff = std::pair{frame.dst.value(), packet->packetId};
  if (pending_.contains(handoff)) return;
  pending_[handoff] = true;
  ++stats_.handoffsWatched;
  simulator_.schedule(config_.patience,
                      [this, neighbour = frame.dst,
                       packetId = packet->packetId] {
                        charge(neighbour, packetId);
                      });
}

void Watchdog::charge(common::Address neighbour, std::uint64_t packetId) {
  const auto key = std::pair{neighbour.value(), packetId};
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;  // retransmission was observed in time
  pending_.erase(it);
  ++stats_.dropsCharged;
  trust_.observe(neighbour, false);
}

}  // namespace blackdp::baselines
