// Cryptography-based baseline (paper §V-B, Sachan & Khilar style).
//
// Authenticates the non-mutable fields of AODV route messages with
// HMAC-SHA-256 under a network-wide shared key. The paper's criticism: the
// shared-key assumption means every joining node must already know the
// secret — workable in a small, centrally managed network, not in a CV
// highway with arbitrary churn; and it secures *messages*, not *behaviour*
// (a compromised insider holding the key can still run a black hole).
#pragma once

#include <span>

#include "aodv/messages.hpp"
#include "crypto/hmac.hpp"

namespace blackdp::baselines {

/// Network-wide symmetric key.
struct SharedKey {
  std::array<std::uint8_t, 32> bytes{};
};

/// MAC over the non-mutable RREQ fields (hop count excluded — it mutates in
/// flight).
[[nodiscard]] crypto::Digest macRouteRequest(const SharedKey& key,
                                             const aodv::RouteRequest& rreq);

/// MAC over the non-mutable RREP fields.
[[nodiscard]] crypto::Digest macRouteReply(const SharedKey& key,
                                           const aodv::RouteReply& rrep);

[[nodiscard]] bool verifyRouteRequest(const SharedKey& key,
                                      const aodv::RouteRequest& rreq,
                                      const crypto::Digest& mac);

[[nodiscard]] bool verifyRouteReply(const SharedKey& key,
                                    const aodv::RouteReply& rrep,
                                    const crypto::Digest& mac);

}  // namespace blackdp::baselines
