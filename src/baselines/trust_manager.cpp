#include "baselines/trust_manager.hpp"

#include <algorithm>

namespace blackdp::baselines {

TrustManager::Record& TrustManager::recordFor(common::Address node) {
  const auto [it, inserted] =
      records_.try_emplace(node, Record{config_.initialTrust, 0});
  return it->second;
}

void TrustManager::observe(common::Address node, bool forwarded) {
  Record& record = recordFor(node);
  const double sample = forwarded ? 1.0 : 0.0;
  record.trust = (1.0 - config_.observationWeight) * record.trust +
                 config_.observationWeight * sample;
  ++record.observations;
}

void TrustManager::gossip(common::Address about, double claimedTrust) {
  Record& record = recordFor(about);
  const double w = config_.observationWeight / 2.0;
  record.trust = (1.0 - w) * record.trust +
                 w * std::clamp(claimedTrust, 0.0, 1.0);
  ++record.observations;
}

double TrustManager::trust(common::Address node) const {
  const auto it = records_.find(node);
  return it == records_.end() ? config_.initialTrust : it->second.trust;
}

std::uint32_t TrustManager::observations(common::Address node) const {
  const auto it = records_.find(node);
  return it == records_.end() ? 0 : it->second.observations;
}

bool TrustManager::isMalicious(common::Address node) const {
  const auto it = records_.find(node);
  if (it == records_.end()) return false;
  return it->second.observations >= config_.minObservations &&
         it->second.trust < config_.maliciousThreshold;
}

std::vector<common::Address> TrustManager::maliciousNodes() const {
  std::vector<common::Address> out;
  for (const auto& [node, record] : records_) {
    if (record.observations >= config_.minObservations &&
        record.trust < config_.maliciousThreshold) {
      out.push_back(node);
    }
  }
  return out;
}

}  // namespace blackdp::baselines
