// Watchdog forwarding observation (Marti et al. style; the mechanism behind
// the paper's §V-C trust schemes).
//
// When a node hands a data packet to its next hop, it keeps listening: on a
// shared channel it will overhear the neighbour's retransmission. If none
// happens within a patience window, the neighbour is charged with a drop.
// Observations feed a TrustManager, which is what catches the *gray hole*
// that slips past BlackDP's control-plane probing (see
// bench/ablation_watchdog). The paper's criticisms still apply — high
// mobility makes observations stale, and a verdict here is local opinion,
// not trusted-infrastructure proof — which is why this ships as a baseline
// component, not as part of BlackDP.
#pragma once

#include <map>

#include "aodv/messages.hpp"
#include "baselines/trust_manager.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"

namespace blackdp::baselines {

struct WatchdogConfig {
  /// How long to wait for the neighbour's retransmission.
  sim::Duration patience{sim::Duration::milliseconds(50)};
  TrustConfig trust{};
};

struct WatchdogStats {
  std::uint64_t handoffsWatched{0};
  std::uint64_t forwardsObserved{0};
  std::uint64_t dropsCharged{0};
};

/// Attach one per vehicle; it installs itself as the node's promiscuous tap.
class Watchdog {
 public:
  Watchdog(sim::Simulator& simulator, net::BasicNode& node,
           WatchdogConfig config = {});

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  [[nodiscard]] const TrustManager& trust() const { return trust_; }
  [[nodiscard]] TrustManager& trust() { return trust_; }
  [[nodiscard]] const WatchdogStats& stats() const { return stats_; }

  /// Nodes this watchdog currently believes are packet droppers.
  [[nodiscard]] std::vector<common::Address> suspects() const {
    return trust_.maliciousNodes();
  }

 private:
  void onOverheard(const net::Frame& frame);
  void charge(common::Address neighbour, std::uint64_t packetId);

  sim::Simulator& simulator_;
  net::BasicNode& node_;
  WatchdogConfig config_;
  TrustManager trust_;
  WatchdogStats stats_;
  /// (neighbour, packetId) → outstanding handoff awaiting retransmission.
  std::map<std::pair<std::uint64_t, std::uint64_t>, bool> pending_;
};

}  // namespace blackdp::baselines
