// Source-side black hole detectors from the paper's Related Work (§V-A).
//
// All three operate on the set of RREPs a source collects during one route
// discovery — which is exactly their weakness the paper exploits: when the
// attacker is the only replier (e.g. it bridges two network segments on a
// highway) there is nothing to compare against, and none of them examines
// behaviour, so cooperative confirmation fools trust in the route.
//
//  - Jaiswal & Kumar 2012: compare the first RREP's sequence number against
//    the later ones; an outlier first reply marks its sender malicious.
//  - Jhaveri et al. 2012: maintain PEAK, the maximum plausible sequence
//    number given what the node has legitimately observed; any RREP above
//    PEAK is malicious.
//  - Tan & Kim 2013: static per-environment thresholds (small/medium/large);
//    RREPs above the threshold are discarded as malicious.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "aodv/messages.hpp"

namespace blackdp::baselines {

/// Common interface: classify the repliers of one discovery's RREPs.
class RrepDetector {
 public:
  virtual ~RrepDetector() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// RREPs in arrival order; returns the addresses judged malicious.
  [[nodiscard]] virtual std::vector<common::Address> classify(
      const std::vector<aodv::RouteReply>& rreps) = 0;
};

/// Jaiswal-style first-reply comparison.
class FirstRrepComparisonDetector final : public RrepDetector {
 public:
  /// The first RREP is malicious when its SN exceeds the best later SN by
  /// more than `margin`.
  explicit FirstRrepComparisonDetector(aodv::SeqNum margin = 50)
      : margin_{margin} {}

  [[nodiscard]] std::string_view name() const override {
    return "first-rrep-comparison";
  }
  [[nodiscard]] std::vector<common::Address> classify(
      const std::vector<aodv::RouteReply>& rreps) override;

 private:
  aodv::SeqNum margin_;
};

/// Jhaveri-style adaptive PEAK threshold. Stateful across discoveries: the
/// highest believed-legitimate sequence number plus an allowance forms the
/// ceiling for the next round.
class PeakThresholdDetector final : public RrepDetector {
 public:
  explicit PeakThresholdDetector(aodv::SeqNum initialPeak = 100,
                                 aodv::SeqNum allowancePerRound = 100)
      : peak_{initialPeak}, allowance_{allowancePerRound} {}

  [[nodiscard]] std::string_view name() const override { return "peak"; }
  [[nodiscard]] std::vector<common::Address> classify(
      const std::vector<aodv::RouteReply>& rreps) override;

  [[nodiscard]] aodv::SeqNum currentPeak() const { return peak_; }

 private:
  aodv::SeqNum peak_;
  aodv::SeqNum allowance_;
};

/// Tan & Kim static thresholds for small / medium / large environments.
enum class Environment { kSmall, kMedium, kLarge };

class StaticThresholdDetector final : public RrepDetector {
 public:
  explicit StaticThresholdDetector(Environment environment);

  [[nodiscard]] std::string_view name() const override {
    return "static-threshold";
  }
  [[nodiscard]] std::vector<common::Address> classify(
      const std::vector<aodv::RouteReply>& rreps) override;

  [[nodiscard]] aodv::SeqNum threshold() const { return threshold_; }

 private:
  aodv::SeqNum threshold_;
};

}  // namespace blackdp::baselines
