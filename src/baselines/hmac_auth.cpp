#include "baselines/hmac_auth.hpp"

#include "common/bytes.hpp"

namespace blackdp::baselines {

namespace {

common::Bytes nonMutableRreqFields(const aodv::RouteRequest& rreq) {
  common::ByteWriter w;
  w.writeString("hmac-rreq");
  w.writeId(rreq.rreqId);
  w.writeId(rreq.origin);
  w.writeU32(rreq.originSeq);
  w.writeId(rreq.destination);
  w.writeU32(rreq.destSeq);
  w.writeBool(rreq.unknownDestSeq);
  return std::move(w).take();
}

common::Bytes nonMutableRrepFields(const aodv::RouteReply& rrep) {
  common::ByteWriter w;
  w.writeString("hmac-rrep");
  w.writeId(rrep.origin);
  w.writeId(rrep.destination);
  w.writeU32(rrep.destSeq);
  w.writeId(rrep.replier);
  return std::move(w).take();
}

crypto::Digest macOver(const SharedKey& key, const common::Bytes& bytes) {
  return crypto::hmacSha256(
      std::span<const std::uint8_t>{key.bytes.data(), key.bytes.size()},
      std::span<const std::uint8_t>{bytes.data(), bytes.size()});
}

}  // namespace

crypto::Digest macRouteRequest(const SharedKey& key,
                               const aodv::RouteRequest& rreq) {
  return macOver(key, nonMutableRreqFields(rreq));
}

crypto::Digest macRouteReply(const SharedKey& key,
                             const aodv::RouteReply& rrep) {
  return macOver(key, nonMutableRrepFields(rrep));
}

bool verifyRouteRequest(const SharedKey& key, const aodv::RouteRequest& rreq,
                        const crypto::Digest& mac) {
  return crypto::digestEquals(macRouteRequest(key, rreq), mac);
}

bool verifyRouteReply(const SharedKey& key, const aodv::RouteReply& rrep,
                      const crypto::Digest& mac) {
  return crypto::digestEquals(macRouteReply(key, rrep), mac);
}

}  // namespace blackdp::baselines
