// Opinion/trust-based baseline (paper §V-C, Kaur & Singh / Dangore style).
//
// Every node accumulates a forwarding trust score for its neighbours from
// observed deliver/drop behaviour; nodes below a threshold are treated as
// black holes. The paper's criticism — high speeds and constant churn make
// the observations stale and the scores unreliable, and attackers that
// participate in scoring can frame honest nodes — is directly measurable
// with this implementation (see bench/ablation_baselines).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"

namespace blackdp::baselines {

struct TrustConfig {
  double initialTrust{0.5};
  /// Exponential moving-average weight of a new observation.
  double observationWeight{0.2};
  /// Below this, a node is classified malicious.
  double maliciousThreshold{0.25};
  /// Minimum observations before a verdict is allowed.
  std::uint32_t minObservations{5};
};

class TrustManager {
 public:
  explicit TrustManager(TrustConfig config = {}) : config_{config} {}

  /// Records that `node` forwarded (true) or dropped (false) a packet.
  void observe(common::Address node, bool forwarded);

  /// Second-hand opinion from a peer (weight halved; attackers may lie).
  void gossip(common::Address about, double claimedTrust);

  [[nodiscard]] double trust(common::Address node) const;
  [[nodiscard]] bool isMalicious(common::Address node) const;
  [[nodiscard]] std::vector<common::Address> maliciousNodes() const;
  [[nodiscard]] std::uint32_t observations(common::Address node) const;

 private:
  struct Record {
    double trust;
    std::uint32_t observations{0};
  };

  Record& recordFor(common::Address node);

  TrustConfig config_;
  std::unordered_map<common::Address, Record> records_;
};

}  // namespace blackdp::baselines
