// AODV routing table.
//
// Entries follow RFC 3561: per-destination next hop, hop count, destination
// sequence number with a validity flag, lifetime, and route validity. The
// update rules (§6.2: fresher sequence number wins; equal sequence number
// with fewer hops wins; anything beats an invalid route) are what the black
// hole attacker games with a forged high sequence number.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "aodv/seqnum.hpp"
#include "common/address_registry.hpp"
#include "common/ids.hpp"
#include "sim/time.hpp"

namespace blackdp::aodv {

struct RouteEntry {
  common::Address destination{};
  common::Address nextHop{};
  std::uint8_t hopCount{0};
  SeqNum destSeq{0};
  bool validSeq{false};
  bool valid{true};
  sim::TimePoint expiresAt{};
};

class RoutingTable {
 public:
  /// Valid, unexpired entry for `destination`, if any.
  [[nodiscard]] std::optional<RouteEntry> activeRoute(
      common::Address destination, sim::TimePoint now) const;

  /// Entry regardless of validity/expiry (nullptr if absent).
  [[nodiscard]] const RouteEntry* find(common::Address destination) const;

  /// Applies RFC 3561 §6.2 update rules; returns true if the entry was
  /// installed/overwritten.
  bool update(const RouteEntry& candidate, sim::TimePoint now);

  /// Unconditionally installs/overwrites (reverse-route setup).
  void install(const RouteEntry& entry);

  /// Marks the route invalid and bumps its sequence number (route error).
  void invalidate(common::Address destination);

  /// Invalidates every valid route whose next hop is `neighbor` (link-layer
  /// failure feedback, RFC 3561 §6.11 precursor handling); returns how many
  /// routes were invalidated.
  std::size_t invalidateVia(common::Address neighbor);

  /// Removes entries expired before `now`; returns how many were removed.
  std::size_t purgeExpired(sim::TimePoint now);

  [[nodiscard]] bool contains(common::Address destination) const {
    return entries_.contains(destination);
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Snapshot of all entries (tests / RSU membership checks).
  [[nodiscard]] std::vector<RouteEntry> snapshot() const;

 private:
  /// Dense-slot map: per-packet next-hop lookups are one probe + one array
  /// read, and purged destinations recycle their slots.
  common::DenseAddressMap<RouteEntry> entries_;
};

}  // namespace blackdp::aodv
