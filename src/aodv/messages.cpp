#include "aodv/messages.hpp"

namespace blackdp::aodv {

common::Bytes RouteRequest::canonicalBytes() const {
  common::ByteWriter w;
  w.writeString("rreq-v1");
  w.writeId(rreqId);
  w.writeId(origin);
  w.writeU32(originSeq);
  w.writeId(destination);
  w.writeU32(destSeq);
  w.writeBool(unknownDestSeq);
  w.writeU8(hopCount);
  w.writeU8(ttl);
  w.writeBool(inquireNextHop);
  return std::move(w).take();
}

common::Bytes RouteReply::canonicalBytes() const {
  // Signed (non-mutable) fields only: hopCount is incremented at every
  // forwarding hop and must stay outside the signature, or a perfectly
  // honest relay would invalidate it.
  common::ByteWriter w;
  w.writeString("rrep-v1");
  w.writeId(rreqId);
  w.writeId(origin);
  w.writeId(destination);
  w.writeU32(destSeq);
  w.writeId(replier);
  w.writeId(replierCluster);
  w.writeI64(lifetime.us());
  w.writeId(claimedNextHop);
  return std::move(w).take();
}

}  // namespace blackdp::aodv
