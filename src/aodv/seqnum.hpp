// AODV sequence-number arithmetic (RFC 3561 §6.1).
//
// Sequence numbers are unsigned 32-bit values compared with signed rollover
// arithmetic. Freshness ("newer") drives every routing decision — and is
// exactly what a black hole attacker forges.
#pragma once

#include <cstdint>

namespace blackdp::aodv {

using SeqNum = std::uint32_t;

/// True iff a is strictly fresher than b under circular comparison.
[[nodiscard]] constexpr bool seqNewer(SeqNum a, SeqNum b) {
  return static_cast<std::int32_t>(a - b) > 0;
}

/// True iff a is at least as fresh as b.
[[nodiscard]] constexpr bool seqAtLeast(SeqNum a, SeqNum b) {
  return static_cast<std::int32_t>(a - b) >= 0;
}

}  // namespace blackdp::aodv
