// AODV protocol agent (RFC 3561 semantics, per Perkins & Royer).
//
// One agent per node. Route discovery floods RREQs; repliers answer with
// RREPs that travel back along the reverse path; data packets are forwarded
// hop by hop along installed routes. Discovery collects replies for a short
// window and installs the freshest route — the "routing cache" behaviour the
// paper's source node exhibits when it compares the attacker's RREP (SN=200)
// with an honest one (SN=75).
//
// The protected virtuals are the override points used by the attack library
// (forged replies, dropped data) — the honest implementation lives here.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "aodv/messages.hpp"
#include "aodv/routing_table.hpp"
#include "common/address_registry.hpp"
#include "crypto/keys.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"

namespace blackdp::aodv {

struct AodvConfig {
  /// Route lifetime granted by RREPs and reverse-route setup.
  sim::Duration activeRouteTimeout{sim::Duration::seconds(10)};
  /// How long discovery collects RREPs before selecting the freshest route.
  sim::Duration rrepWaitWindow{sim::Duration::milliseconds(120)};
  /// Additional discovery attempts after the first window closes empty.
  int rreqRetries{2};
  std::uint8_t initialTtl{16};
  /// Expanding-ring search (RFC 3561 §6.4): when enabled, discovery floods
  /// start at ttlStart and grow by ttlIncrement per retry up to initialTtl,
  /// trading worst-case latency for much smaller flood footprints when the
  /// destination is near.
  bool expandingRing{false};
  std::uint8_t ttlStart{2};
  std::uint8_t ttlIncrement{2};
  /// Per-node handling time between receiving a packet and reacting.
  sim::Duration processingDelay{sim::Duration::microseconds(200)};
  /// How long (origin, rreq-id) pairs stay in the dedup cache.
  sim::Duration rreqCacheLifetime{sim::Duration::seconds(10)};
  /// HELLO beacon period (RFC 3561 §6.9). Zero disables link maintenance
  /// (MAC ACK feedback still detects breaks on transmission).
  sim::Duration helloInterval{};
  /// A neighbour is declared lost after this many missed HELLO periods.
  int allowedHelloLoss{2};
};

struct AodvStats {
  std::uint64_t hellosSent{0};
  std::uint64_t neighboursExpired{0};
  std::uint64_t rreqOriginated{0};
  std::uint64_t rreqRebroadcast{0};
  std::uint64_t rrepOriginated{0};
  std::uint64_t rrepForwarded{0};
  std::uint64_t rrepReceived{0};  ///< as discovery originator
  std::uint64_t rerrSent{0};
  std::uint64_t dataOriginated{0};
  std::uint64_t dataForwarded{0};
  std::uint64_t dataDelivered{0};
  std::uint64_t dataDropped{0};
  std::uint64_t discoveriesSucceeded{0};
  std::uint64_t discoveriesFailed{0};
  std::uint64_t rreqSeenEvicted{0};  ///< dedup-cache entries TTL-pruned
};

/// Signing material for secure packets (BlackDP §III-B1). When present, the
/// agent signs the RREPs it originates; when absent, replies are plain AODV.
struct Credentials {
  crypto::Certificate certificate;
  crypto::PrivateKey privateKey;
};

class AodvAgent {
 public:
  using RouteCallback = std::function<void(bool success)>;
  using DeliveryHandler =
      std::function<void(const DataPacket&, const net::Frame&)>;
  using RrepObserver =
      std::function<void(const RouteReply&, const net::Frame&)>;

  /// Registers itself as a frame handler on `node`.
  AodvAgent(sim::Simulator& simulator, net::BasicNode& node,
            AodvConfig config = {});
  virtual ~AodvAgent() = default;

  AodvAgent(const AodvAgent&) = delete;
  AodvAgent& operator=(const AodvAgent&) = delete;

  /// Asynchronous route discovery. Invokes `callback(true)` once a valid
  /// route to `destination` is installed, or `callback(false)` after all
  /// retries fail. If an active route already exists the callback fires on
  /// the next event-loop turn.
  void findRoute(common::Address destination, RouteCallback callback);

  /// Sends an application packet along the installed route.
  /// Returns false (and sends nothing) when no active route exists.
  bool sendData(common::Address destination, net::PayloadPtr inner = nullptr,
                std::uint32_t bodyBytes = 512);

  /// Drops the route so the next findRoute() re-floods (used by the BlackDP
  /// verifier for its confirmation discovery).
  void invalidateRoute(common::Address destination);

  /// Starts periodic HELLO beaconing + neighbour tracking (no-op when
  /// config.helloInterval is zero).
  void startHello();

  /// Liveness view of the one-hop neighbourhood (only maintained while
  /// HELLO is running; any received frame refreshes its sender).
  [[nodiscard]] bool isNeighbourAlive(common::Address neighbour) const;
  [[nodiscard]] std::size_t neighbourCount() const {
    return neighbours_.size();
  }

  /// Live (unexpired) entries in the RREQ dedup cache — regression guard
  /// that the cache stays bounded by the TTL window, not by run length.
  [[nodiscard]] std::size_t rreqSeenSize() const {
    return rreqSeen_.size() - rreqSeenHead_;
  }

  [[nodiscard]] RoutingTable& routingTable() { return table_; }
  [[nodiscard]] const RoutingTable& routingTable() const { return table_; }
  [[nodiscard]] const AodvStats& stats() const { return stats_; }
  [[nodiscard]] SeqNum ownSeq() const { return ownSeq_; }
  [[nodiscard]] common::Address address() const {
    return node_.localAddress();
  }

  void setDeliveryHandler(DeliveryHandler handler) {
    deliveryHandler_ = std::move(handler);
  }
  /// Observer sees every RREP received as discovery originator — the
  /// BlackDP verifier taps the "routing cache" here.
  void setRrepObserver(RrepObserver observer) {
    rrepObserver_ = std::move(observer);
  }

  /// Predicate applied to every received RREP before it is installed or
  /// forwarded; returning false discards it. Wired to the membership
  /// blacklist so routes through revoked attackers are rejected.
  using RrepFilter = std::function<bool(const RouteReply&, const net::Frame&)>;
  void setRrepFilter(RrepFilter filter) { rrepFilter_ = std::move(filter); }

  /// Installs signing material; the engine must outlive the agent.
  void setCredentials(Credentials credentials,
                      const crypto::CryptoEngine* engine);

  /// Cluster stamped into originated RREPs (kept current by the membership
  /// layer; ClusterId{0} = not joined yet).
  void setCurrentCluster(common::ClusterId cluster) {
    currentCluster_ = cluster;
  }
  [[nodiscard]] common::ClusterId currentCluster() const {
    return currentCluster_;
  }
  [[nodiscard]] const std::optional<Credentials>& credentials() const {
    return credentials_;
  }

 protected:
  // ---- override points (attackers / instrumented nodes) ----
  virtual void handleRreq(const RouteRequest& rreq, const net::Frame& frame);
  virtual void handleRrep(const RouteReply& rrep, const net::Frame& frame);
  virtual void handleData(const DataPacket& packet, const net::Frame& frame);
  virtual void handleRerr(const RouteError& rerr, const net::Frame& frame);
  /// Honest nodes forward; a black hole returns false (drop).
  [[nodiscard]] virtual bool shouldForwardData(const DataPacket& packet);

  // ---- helpers available to subclasses ----
  /// Unicasts an RREP for `rreq` back to the previous hop after the
  /// processing delay; signs it when credentials are installed.
  void replyToRreq(const RouteRequest& rreq, const net::Frame& frame,
                   SeqNum destSeq, std::uint8_t hopCount,
                   common::Address claimedNextHop = common::kNullAddress);

  [[nodiscard]] net::BasicNode& node() { return node_; }
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] const AodvConfig& config() const { return config_; }
  [[nodiscard]] AodvStats& mutableStats() { return stats_; }

  /// True if this (origin, id) flood was already processed.
  bool checkAndRecordRreq(common::Address origin, common::RreqId id);

  /// Engine installed with the credentials (nullptr when unsigned).
  [[nodiscard]] const crypto::CryptoEngine* signingEngine() const {
    return engine_;
  }

  /// Honest RREQ processing (reverse route, reply-or-rebroadcast); exposed
  /// so overriding agents can fall back to honest behaviour after their own
  /// bookkeeping.
  void processRreqAsRouter(const RouteRequest& rreq, const net::Frame& frame);

 private:
  struct PendingDiscovery {
    int retriesLeft{0};
    std::uint8_t currentTtl{0};
    std::vector<RouteCallback> callbacks;
  };

  bool onFrame(const net::Frame& frame);
  void onLinkFailure(const net::Frame& frame);
  void onHelloTick();
  void refreshNeighbour(common::Address neighbour);
  void startDiscoveryRound(common::Address destination);
  void onDiscoveryWindow(common::Address destination);
  void sendRerr(const DataPacket& packet);

  sim::Simulator& simulator_;
  net::BasicNode& node_;
  AodvConfig config_;
  RoutingTable table_;
  AodvStats stats_;
  SeqNum ownSeq_{1};
  std::uint32_t nextRreqId_{1};
  std::uint64_t nextPacketId_{1};
  /// One RREQ flood seen from `origin` with id `id`, expiring at
  /// `expiresAt`. Expiry = insertion time + a constant lifetime, so entries
  /// expire in FIFO order and the cache is a vector pruned from the front.
  struct RreqSeenEntry {
    std::uint64_t origin;
    std::uint32_t id;
    sim::TimePoint expiresAt;
  };

  common::DenseAddressMap<PendingDiscovery> pending_;
  /// RREQ dedup cache, FIFO over [rreqSeenHead_, size). TTL-pruned on every
  /// insert so it tracks the flood rate × lifetime, never the run length.
  std::vector<RreqSeenEntry> rreqSeen_;
  std::size_t rreqSeenHead_{0};
  DeliveryHandler deliveryHandler_;
  RrepObserver rrepObserver_;
  RrepFilter rrepFilter_;
  std::optional<Credentials> credentials_;
  const crypto::CryptoEngine* engine_{nullptr};
  common::ClusterId currentCluster_{};
  /// neighbour address → last time we heard anything from it.
  common::DenseAddressMap<sim::TimePoint> neighbours_;
  bool helloRunning_{false};
};

}  // namespace blackdp::aodv
