#include "aodv/agent.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace blackdp::aodv {
namespace {

void traceAodv(sim::Simulator& simulator, net::BasicNode& node, obs::AodvOp op,
               common::Address a, common::Address b = {},
               std::uint64_t value = 0) {
  if (auto* tr = obs::Trace::active()) {
    tr->record({simulator.now().us(), obs::EventKind::kAodv,
                static_cast<std::uint8_t>(op), node.id().value(), 0, a.value(),
                b.value(), 0, value});
  }
}

}  // namespace

AodvAgent::AodvAgent(sim::Simulator& simulator, net::BasicNode& node,
                     AodvConfig config)
    : simulator_{simulator}, node_{node}, config_{config} {
  node_.addHandler([this](const net::Frame& frame) { return onFrame(frame); });
  node_.addFailureHandler(
      [this](const net::Frame& frame) { onLinkFailure(frame); });
}

void AodvAgent::onLinkFailure(const net::Frame& frame) {
  // MAC feedback: the neighbour at frame.dst did not acknowledge. Every
  // route through it is dead (RFC 3561 §6.11).
  const std::size_t invalidated = table_.invalidateVia(frame.dst);
  if (invalidated == 0) return;

  // A lost data packet is additionally reported toward its originator so
  // upstream hops (and the source) stop using the path.
  if (const auto* data = net::payloadAs<DataPacket>(frame.payload)) {
    ++stats_.dataDropped;
    if (data->origin != node_.localAddress()) {
      sendRerr(*data);
    }
  }
}

void AodvAgent::setCredentials(Credentials credentials,
                               const crypto::CryptoEngine* engine) {
  BDP_ASSERT_MSG(engine != nullptr, "credentials without a crypto engine");
  credentials_ = std::move(credentials);
  engine_ = engine;
}

void AodvAgent::startHello() {
  if (config_.helloInterval <= sim::Duration{} || helloRunning_) return;
  helloRunning_ = true;
  onHelloTick();
}

void AodvAgent::onHelloTick() {
  // Expire neighbours we have not heard from, invalidating routes through
  // them (RFC 3561 §6.11 via §6.9 liveness).
  const sim::TimePoint now = simulator_.now();
  const sim::Duration lifetime =
      config_.helloInterval * config_.allowedHelloLoss;
  neighbours_.eraseIf([&](common::Address neighbour, sim::TimePoint last) {
    if (now - last <= lifetime) return false;
    ++stats_.neighboursExpired;
    table_.invalidateVia(neighbour);
    return true;
  });

  auto hello = net::makeMutablePayload<HelloBeacon>();
  hello->origin = node_.localAddress();
  hello->originSeq = ownSeq_;
  ++stats_.hellosSent;
  node_.broadcast(hello);

  simulator_.schedule(config_.helloInterval, [this] { onHelloTick(); });
}

void AodvAgent::refreshNeighbour(common::Address neighbour) {
  if (!helloRunning_) return;
  neighbours_[neighbour] = simulator_.now();
}

bool AodvAgent::isNeighbourAlive(common::Address neighbour) const {
  const sim::TimePoint* last = neighbours_.find(neighbour);
  if (last == nullptr) return false;
  return simulator_.now() - *last <=
         config_.helloInterval * config_.allowedHelloLoss;
}

bool AodvAgent::onFrame(const net::Frame& frame) {
  refreshNeighbour(frame.src);
  if (const auto* hello = net::payloadAs<HelloBeacon>(frame.payload)) {
    // A HELLO also refreshes the one-hop route to its sender (§6.9).
    RouteEntry direct;
    direct.destination = hello->origin;
    direct.nextHop = hello->origin;
    direct.hopCount = 1;
    direct.destSeq = hello->originSeq;
    direct.validSeq = true;
    direct.expiresAt = simulator_.now() +
                       config_.helloInterval * (config_.allowedHelloLoss + 1);
    table_.update(direct, simulator_.now());
    return true;
  }
  if (const auto* rreq = net::payloadAs<RouteRequest>(frame.payload)) {
    handleRreq(*rreq, frame);
    return true;
  }
  if (const auto* rrep = net::payloadAs<RouteReply>(frame.payload)) {
    handleRrep(*rrep, frame);
    return true;
  }
  if (const auto* data = net::payloadAs<DataPacket>(frame.payload)) {
    handleData(*data, frame);
    return true;
  }
  if (const auto* rerr = net::payloadAs<RouteError>(frame.payload)) {
    handleRerr(*rerr, frame);
    return true;
  }
  return false;  // not an AODV frame; let other components look at it
}

// ---------------------------------------------------------------- discovery

void AodvAgent::findRoute(common::Address destination,
                          RouteCallback callback) {
  BDP_ASSERT(callback != nullptr);
  if (table_.activeRoute(destination, simulator_.now())) {
    // Already routable; report success asynchronously for a uniform API.
    simulator_.schedule(sim::Duration{},
                        [cb = std::move(callback)] { cb(true); });
    return;
  }
  auto& pending = pending_[destination];
  pending.callbacks.push_back(std::move(callback));
  if (pending.callbacks.size() > 1) return;  // discovery already in flight

  pending.retriesLeft = config_.rreqRetries;
  pending.currentTtl =
      config_.expandingRing ? config_.ttlStart : config_.initialTtl;
  traceAodv(simulator_, node_, obs::AodvOp::kDiscoveryStart, destination);
  startDiscoveryRound(destination);
}

void AodvAgent::startDiscoveryRound(common::Address destination) {
  ++ownSeq_;  // RFC 3561 §6.1: bump own sequence number before an RREQ

  auto rreq = net::makeMutablePayload<RouteRequest>();
  rreq->rreqId = common::RreqId{nextRreqId_++};
  rreq->origin = node_.localAddress();
  rreq->originSeq = ownSeq_;
  rreq->destination = destination;
  if (const RouteEntry* known = table_.find(destination)) {
    rreq->destSeq = known->destSeq;
    rreq->unknownDestSeq = !known->validSeq;
  }
  const PendingDiscovery* pend = pending_.find(destination);
  rreq->ttl = pend != nullptr && pend->currentTtl > 0 ? pend->currentTtl
                                                      : config_.initialTtl;

  // Remember our own flood so echoes are ignored.
  checkAndRecordRreq(rreq->origin, rreq->rreqId);

  ++stats_.rreqOriginated;
  traceAodv(simulator_, node_, obs::AodvOp::kRreqFlood, destination, {},
            rreq->ttl);
  node_.broadcast(rreq);

  simulator_.schedule(config_.rrepWaitWindow, [this, destination] {
    onDiscoveryWindow(destination);
  });
}

void AodvAgent::onDiscoveryWindow(common::Address destination) {
  PendingDiscovery* pend = pending_.find(destination);
  if (pend == nullptr) return;

  if (table_.activeRoute(destination, simulator_.now())) {
    ++stats_.discoveriesSucceeded;
    traceAodv(simulator_, node_, obs::AodvOp::kDiscoverySucceeded,
              destination);
    auto callbacks = std::move(pend->callbacks);
    pending_.erase(destination);
    for (auto& cb : callbacks) cb(true);
    return;
  }
  if (pend->retriesLeft > 0) {
    --pend->retriesLeft;
    if (config_.expandingRing) {
      // Widen the ring (§6.4) until the configured network diameter.
      const unsigned widened = pend->currentTtl + config_.ttlIncrement;
      pend->currentTtl = static_cast<std::uint8_t>(
          std::min<unsigned>(widened, config_.initialTtl));
    }
    startDiscoveryRound(destination);
    return;
  }
  ++stats_.discoveriesFailed;
  traceAodv(simulator_, node_, obs::AodvOp::kDiscoveryFailed, destination);
  auto callbacks = std::move(pend->callbacks);
  pending_.erase(destination);
  for (auto& cb : callbacks) cb(false);
}

bool AodvAgent::checkAndRecordRreq(common::Address origin, common::RreqId id) {
  const sim::TimePoint now = simulator_.now();
  // Expiry = insertion time + a constant lifetime, so the FIFO front holds
  // the oldest expiry: prune from the front until it is live and the cache
  // is bounded by (flood rate × lifetime) without scanning live entries.
  while (rreqSeenHead_ < rreqSeen_.size() &&
         now >= rreqSeen_[rreqSeenHead_].expiresAt) {
    ++rreqSeenHead_;
    ++stats_.rreqSeenEvicted;
  }
  if (rreqSeenHead_ == rreqSeen_.size()) {
    rreqSeen_.clear();  // keeps capacity
    rreqSeenHead_ = 0;
  } else if (rreqSeenHead_ > 32 && rreqSeenHead_ > rreqSeen_.size() / 2) {
    // Compact once the dead prefix dominates, keeping memory ∝ live entries.
    rreqSeen_.erase(rreqSeen_.begin(),
                    rreqSeen_.begin() + static_cast<std::ptrdiff_t>(
                                            rreqSeenHead_));
    rreqSeenHead_ = 0;
  }
  for (std::size_t i = rreqSeenHead_; i < rreqSeen_.size(); ++i) {
    if (rreqSeen_[i].origin == origin.value() &&
        rreqSeen_[i].id == id.value()) {
      return true;
    }
  }
  rreqSeen_.push_back(
      RreqSeenEntry{origin.value(), id.value(), now + config_.rreqCacheLifetime});
  return false;
}

// ------------------------------------------------------------------- RREQ

void AodvAgent::handleRreq(const RouteRequest& rreq, const net::Frame& frame) {
  if (rreq.origin == node_.localAddress()) return;  // own flood echo
  if (checkAndRecordRreq(rreq.origin, rreq.rreqId)) return;  // duplicate
  processRreqAsRouter(rreq, frame);
}

void AodvAgent::processRreqAsRouter(const RouteRequest& rreq,
                                    const net::Frame& frame) {
  const sim::TimePoint now = simulator_.now();

  // Reverse route toward the originator through the previous hop.
  RouteEntry reverse;
  reverse.destination = rreq.origin;
  reverse.nextHop = frame.src;
  reverse.hopCount = static_cast<std::uint8_t>(rreq.hopCount + 1);
  reverse.destSeq = rreq.originSeq;
  reverse.validSeq = true;
  reverse.expiresAt = now + config_.activeRouteTimeout;
  const bool reverseUpdated = table_.update(reverse, now);
  BDP_LOG(kTrace, "aodv") << node_.localAddress() << " rreq id="
                          << rreq.rreqId << " from " << rreq.origin
                          << " oseq=" << rreq.originSeq << " via "
                          << frame.src << " reverse-updated="
                          << reverseUpdated;

  if (rreq.destination == node_.localAddress()) {
    // RFC 3561 §6.6.1: the destination updates its own sequence number to
    // max(own, requested) before replying.
    if (!rreq.unknownDestSeq && seqNewer(rreq.destSeq, ownSeq_)) {
      ownSeq_ = rreq.destSeq;
    }
    replyToRreq(rreq, frame, ownSeq_, 0);
    return;
  }

  // Intermediate node with a fresh-enough valid route replies on the
  // destination's behalf (§6.6.2).
  if (const auto route = table_.activeRoute(rreq.destination, now)) {
    const bool freshEnough =
        route->validSeq &&
        (rreq.unknownDestSeq || seqAtLeast(route->destSeq, rreq.destSeq));
    if (freshEnough) {
      replyToRreq(rreq, frame, route->destSeq, route->hopCount,
                  rreq.inquireNextHop ? route->nextHop : common::kNullAddress);
      return;
    }
  }

  // Otherwise rebroadcast while TTL lasts.
  if (rreq.ttl <= 1) return;
  auto fwd = net::makeMutablePayload<RouteRequest>(rreq);
  fwd->hopCount = static_cast<std::uint8_t>(rreq.hopCount + 1);
  fwd->ttl = static_cast<std::uint8_t>(rreq.ttl - 1);
  simulator_.schedule(config_.processingDelay, [this, fwd] {
    ++stats_.rreqRebroadcast;
    node_.broadcast(fwd);
  });
}

void AodvAgent::replyToRreq(const RouteRequest& rreq, const net::Frame& frame,
                            SeqNum destSeq, std::uint8_t hopCount,
                            common::Address claimedNextHop) {
  auto rrep = net::makeMutablePayload<RouteReply>();
  rrep->rreqId = rreq.rreqId;
  rrep->origin = rreq.origin;
  rrep->destination = rreq.destination;
  rrep->destSeq = destSeq;
  rrep->hopCount = hopCount;
  rrep->replier = node_.localAddress();
  rrep->replierCluster = currentCluster_;
  rrep->lifetime = config_.activeRouteTimeout;
  if (rreq.inquireNextHop) rrep->claimedNextHop = claimedNextHop;

  if (credentials_) {
    const common::Bytes body = rrep->canonicalBytes();
    rrep->envelope = SecureEnvelope{
        credentials_->certificate,
        engine_->sign(credentials_->privateKey,
                      std::span<const std::uint8_t>{body.data(), body.size()})};
  }

  const common::Address previousHop = frame.src;
  simulator_.schedule(config_.processingDelay, [this, rrep, previousHop] {
    ++stats_.rrepOriginated;
    node_.sendTo(previousHop, rrep);
  });
}

// ------------------------------------------------------------------- RREP

void AodvAgent::handleRrep(const RouteReply& rrep, const net::Frame& frame) {
  if (rrepFilter_ && !rrepFilter_(rrep, frame)) return;
  const sim::TimePoint now = simulator_.now();

  // Install/refresh the forward route toward the reply's destination.
  RouteEntry forward;
  forward.destination = rrep.destination;
  forward.nextHop = frame.src;
  forward.hopCount = static_cast<std::uint8_t>(rrep.hopCount + 1);
  forward.destSeq = rrep.destSeq;
  forward.validSeq = true;
  forward.expiresAt = now + rrep.lifetime;
  table_.update(forward, now);

  if (rrep.origin == node_.localAddress()) {
    ++stats_.rrepReceived;
    traceAodv(simulator_, node_, obs::AodvOp::kRrepReceived, rrep.destination,
              rrep.replier, rrep.hopCount);
    if (rrepObserver_) rrepObserver_(rrep, frame);
    return;
  }

  // Forward along the reverse path toward the originator.
  const auto reverse = table_.activeRoute(rrep.origin, now);
  if (!reverse) {
    BDP_LOG(kDebug, "aodv") << node_.localAddress()
                            << " dropping rrep from " << rrep.replier
                            << ": no reverse route to " << rrep.origin;
    return;  // reverse route evaporated; RREP dies here
  }
  BDP_LOG(kTrace, "aodv") << node_.localAddress() << " forwarding rrep from "
                          << rrep.replier << " toward " << rrep.origin
                          << " via " << reverse->nextHop;
  auto fwd = net::makeMutablePayload<RouteReply>(rrep);
  fwd->hopCount = forward.hopCount;
  simulator_.schedule(config_.processingDelay,
                      [this, fwd, nextHop = reverse->nextHop] {
                        ++stats_.rrepForwarded;
                        node_.sendTo(nextHop, fwd);
                      });
}

// ------------------------------------------------------------------- data

bool AodvAgent::sendData(common::Address destination, net::PayloadPtr inner,
                         std::uint32_t bodyBytes) {
  const auto route = table_.activeRoute(destination, simulator_.now());
  if (!route) return false;
  auto packet = net::makeMutablePayload<DataPacket>();
  packet->origin = node_.localAddress();
  packet->destination = destination;
  packet->packetId = nextPacketId_++;
  packet->bodyBytes = bodyBytes;
  packet->inner = std::move(inner);
  ++stats_.dataOriginated;
  node_.sendTo(route->nextHop, packet);
  return true;
}

void AodvAgent::handleData(const DataPacket& packet, const net::Frame& frame) {
  if (packet.destination == node_.localAddress()) {
    ++stats_.dataDelivered;
    if (deliveryHandler_) deliveryHandler_(packet, frame);
    return;
  }
  if (!shouldForwardData(packet)) {
    ++stats_.dataDropped;
    return;
  }
  const auto route = table_.activeRoute(packet.destination, simulator_.now());
  if (!route) {
    ++stats_.dataDropped;
    sendRerr(packet);
    return;
  }
  auto fwd = net::makeMutablePayload<DataPacket>(packet);
  fwd->hopsTraversed = static_cast<std::uint8_t>(packet.hopsTraversed + 1);
  simulator_.schedule(config_.processingDelay,
                      [this, fwd, nextHop = route->nextHop] {
                        ++stats_.dataForwarded;
                        node_.sendTo(nextHop, fwd);
                      });
}

bool AodvAgent::shouldForwardData(const DataPacket&) { return true; }

void AodvAgent::sendRerr(const DataPacket& packet) {
  auto rerr = net::makeMutablePayload<RouteError>();
  rerr->destination = packet.destination;
  rerr->origin = packet.origin;
  if (const RouteEntry* entry = table_.find(packet.destination)) {
    rerr->destSeq = entry->destSeq + 1;
  }
  table_.invalidate(packet.destination);

  // Route the error back toward the data originator when possible.
  const auto reverse = table_.activeRoute(packet.origin, simulator_.now());
  ++stats_.rerrSent;
  if (reverse) {
    node_.sendTo(reverse->nextHop, rerr);
  } else {
    node_.broadcast(rerr);
  }
}

void AodvAgent::handleRerr(const RouteError& rerr, const net::Frame& frame) {
  // Invalidate our route if it runs through the reporting hop.
  if (const RouteEntry* entry = table_.find(rerr.destination);
      entry != nullptr && entry->valid && entry->nextHop == frame.src) {
    table_.invalidate(rerr.destination);
  }
  if (rerr.origin == node_.localAddress()) return;
  // Relay toward the data originator.
  if (const auto reverse = table_.activeRoute(rerr.origin, simulator_.now())) {
    node_.sendTo(reverse->nextHop, net::makeMutablePayload<RouteError>(rerr));
  }
}

void AodvAgent::invalidateRoute(common::Address destination) {
  table_.invalidate(destination);
}

}  // namespace blackdp::aodv
