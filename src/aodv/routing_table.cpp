#include "aodv/routing_table.hpp"

namespace blackdp::aodv {

std::optional<RouteEntry> RoutingTable::activeRoute(
    common::Address destination, sim::TimePoint now) const {
  const auto it = entries_.find(destination);
  if (it == entries_.end()) return std::nullopt;
  const RouteEntry& e = it->second;
  if (!e.valid || now >= e.expiresAt) return std::nullopt;
  return e;
}

const RouteEntry* RoutingTable::find(common::Address destination) const {
  const auto it = entries_.find(destination);
  return it == entries_.end() ? nullptr : &it->second;
}

bool RoutingTable::update(const RouteEntry& candidate, sim::TimePoint now) {
  const auto it = entries_.find(candidate.destination);
  if (it == entries_.end()) {
    entries_.emplace(candidate.destination, candidate);
    return true;
  }
  RouteEntry& existing = it->second;
  const bool existingUsable = existing.valid && now < existing.expiresAt;

  bool accept = false;
  if (!existingUsable) {
    accept = true;
  } else if (candidate.validSeq && existing.validSeq) {
    if (seqNewer(candidate.destSeq, existing.destSeq)) {
      accept = true;
    } else if (candidate.destSeq == existing.destSeq &&
               candidate.hopCount < existing.hopCount) {
      accept = true;
    }
  } else if (candidate.validSeq && !existing.validSeq) {
    accept = true;
  }

  if (accept) existing = candidate;
  return accept;
}

void RoutingTable::install(const RouteEntry& entry) {
  entries_[entry.destination] = entry;
}

void RoutingTable::invalidate(common::Address destination) {
  const auto it = entries_.find(destination);
  if (it == entries_.end()) return;
  it->second.valid = false;
  // RFC 3561 §6.11: increment the sequence number so stale information
  // cannot resurrect the route.
  it->second.destSeq += 1;
}

std::size_t RoutingTable::invalidateVia(common::Address neighbor) {
  std::size_t count = 0;
  for (auto& [dest, entry] : entries_) {
    if (entry.valid && entry.nextHop == neighbor) {
      entry.valid = false;
      entry.destSeq += 1;
      ++count;
    }
  }
  return count;
}

std::size_t RoutingTable::purgeExpired(sim::TimePoint now) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now >= it->second.expiresAt) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<RouteEntry> RoutingTable::snapshot() const {
  std::vector<RouteEntry> out;
  out.reserve(entries_.size());
  for (const auto& [addr, entry] : entries_) out.push_back(entry);
  return out;
}

}  // namespace blackdp::aodv
