#include "aodv/routing_table.hpp"

namespace blackdp::aodv {

std::optional<RouteEntry> RoutingTable::activeRoute(
    common::Address destination, sim::TimePoint now) const {
  const RouteEntry* e = entries_.find(destination);
  if (e == nullptr) return std::nullopt;
  if (!e->valid || now >= e->expiresAt) return std::nullopt;
  return *e;
}

const RouteEntry* RoutingTable::find(common::Address destination) const {
  return entries_.find(destination);
}

bool RoutingTable::update(const RouteEntry& candidate, sim::TimePoint now) {
  RouteEntry* existingPtr = entries_.find(candidate.destination);
  if (existingPtr == nullptr) {
    entries_[candidate.destination] = candidate;
    return true;
  }
  RouteEntry& existing = *existingPtr;
  const bool existingUsable = existing.valid && now < existing.expiresAt;

  bool accept = false;
  if (!existingUsable) {
    accept = true;
  } else if (candidate.validSeq && existing.validSeq) {
    if (seqNewer(candidate.destSeq, existing.destSeq)) {
      accept = true;
    } else if (candidate.destSeq == existing.destSeq &&
               candidate.hopCount < existing.hopCount) {
      accept = true;
    }
  } else if (candidate.validSeq && !existing.validSeq) {
    accept = true;
  }

  if (accept) existing = candidate;
  return accept;
}

void RoutingTable::install(const RouteEntry& entry) {
  entries_[entry.destination] = entry;
}

void RoutingTable::invalidate(common::Address destination) {
  RouteEntry* e = entries_.find(destination);
  if (e == nullptr) return;
  e->valid = false;
  // RFC 3561 §6.11: increment the sequence number so stale information
  // cannot resurrect the route.
  e->destSeq += 1;
}

std::size_t RoutingTable::invalidateVia(common::Address neighbor) {
  std::size_t count = 0;
  entries_.forEach([&](common::Address, RouteEntry& entry) {
    if (entry.valid && entry.nextHop == neighbor) {
      entry.valid = false;
      entry.destSeq += 1;
      ++count;
    }
  });
  return count;
}

std::size_t RoutingTable::purgeExpired(sim::TimePoint now) {
  std::size_t removed = 0;
  entries_.eraseIf([&](common::Address, RouteEntry& entry) {
    if (now >= entry.expiresAt) {
      ++removed;
      return true;
    }
    return false;
  });
  return removed;
}

std::vector<RouteEntry> RoutingTable::snapshot() const {
  std::vector<RouteEntry> out;
  out.reserve(entries_.size());
  entries_.forEach(
      [&](common::Address, const RouteEntry& entry) { out.push_back(entry); });
  return out;
}

}  // namespace blackdp::aodv
