// AODV control and data messages.
//
// RouteRequest/RouteReply carry the fields the paper's protocol inspects
// (hop count, destination sequence number) plus two BlackDP extensions:
// a secure envelope on replies (certificate + signature, §III-B1) and a
// next-hop inquiry used by the RSU's second probe (RREQ₂, §III-B1).
#pragma once

#include <optional>

#include "aodv/seqnum.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/certificate.hpp"
#include "net/frame.hpp"
#include "sim/time.hpp"

namespace blackdp::aodv {

/// Certificate + signature attached to a secure packet (the paper's
/// {msg, CR, d_sign(msg, K⁻)} construction).
struct SecureEnvelope {
  crypto::Certificate certificate;
  crypto::Signature signature;

  friend bool operator==(const SecureEnvelope&, const SecureEnvelope&) = default;
};

/// Route request (RREQ), flooded by the originator; also used unicast by the
/// BlackDP detector as a probe.
class RouteRequest final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind = net::PayloadKind::kRouteRequest;
  RouteRequest() : Payload(kKind) {}

  common::RreqId rreqId{};
  common::Address origin{};
  SeqNum originSeq{0};
  common::Address destination{};
  SeqNum destSeq{0};
  bool unknownDestSeq{true};
  std::uint8_t hopCount{0};
  std::uint8_t ttl{16};
  /// BlackDP RREQ₂ extension: ask the replier to disclose its next hop.
  bool inquireNextHop{false};

  [[nodiscard]] std::string_view typeName() const override { return "rreq"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 48; }

  /// Canonical bytes (used by HMAC-authentication baselines and tests).
  [[nodiscard]] common::Bytes canonicalBytes() const;
};

/// Route reply (RREP), unicast back along the reverse path.
class RouteReply final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind = net::PayloadKind::kRouteReply;
  RouteReply() : Payload(kKind) {}

  common::RreqId rreqId{};          ///< request being answered
  common::Address origin{};         ///< RREQ originator (reply travels to it)
  common::Address destination{};    ///< route subject
  SeqNum destSeq{0};
  std::uint8_t hopCount{0};
  common::Address replier{};        ///< who generated this RREP
  /// The replier's cluster (the paper's JREP hands every member its CH
  /// identity "to be included in the packets"); lets a source address its
  /// d_req correctly.
  common::ClusterId replierCluster{};
  sim::Duration lifetime{sim::Duration::seconds(3)};
  /// Answer to inquireNextHop: the replier's claimed next hop toward the
  /// destination (a cooperative attacker names its teammate here).
  common::Address claimedNextHop{common::kNullAddress};
  /// Secure packet envelope; absent on plain AODV replies.
  std::optional<SecureEnvelope> envelope{};

  [[nodiscard]] std::string_view typeName() const override { return "rrep"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override {
    return envelope ? 160u : 44u;
  }

  /// Canonical bytes covered by the envelope signature.
  [[nodiscard]] common::Bytes canonicalBytes() const;
};

/// Periodic HELLO beacon (RFC 3561 §6.9): advertises the sender's liveness
/// to its one-hop neighbourhood. This is AODV's own link maintenance,
/// distinct from BlackDP's end-to-end destination-authentication Hello
/// (core::AuthHello).
class HelloBeacon final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind = net::PayloadKind::kHelloBeacon;
  HelloBeacon() : Payload(kKind) {}

  common::Address origin{};
  SeqNum originSeq{0};

  [[nodiscard]] std::string_view typeName() const override { return "hellob"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 24; }
};

/// Route error (RERR): a hop discovered the next hop toward `destination`
/// is gone/unroutable.
class RouteError final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind = net::PayloadKind::kRouteError;
  RouteError() : Payload(kKind) {}

  common::Address destination{};
  SeqNum destSeq{0};
  common::Address origin{};  ///< data originator being informed

  [[nodiscard]] std::string_view typeName() const override { return "rerr"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 32; }
};

/// Routed end-to-end packet. Applications (including BlackDP's secure Hello
/// destination-authentication probe) ride in `inner`; AODV forwards hop by
/// hop along established routes. A black hole simply never forwards these.
class DataPacket final : public net::Payload {
 public:
  static constexpr net::PayloadKind kKind = net::PayloadKind::kDataPacket;
  DataPacket() : Payload(kKind) {}

  common::Address origin{};
  common::Address destination{};
  std::uint64_t packetId{0};
  std::uint8_t hopsTraversed{0};
  std::uint32_t bodyBytes{512};
  net::PayloadPtr inner{};  ///< optional application payload

  [[nodiscard]] std::string_view typeName() const override { return "data"; }
  [[nodiscard]] std::uint32_t sizeBytes() const override {
    return 32 + bodyBytes + (inner ? inner->sizeBytes() : 0);
  }
};

}  // namespace blackdp::aodv
