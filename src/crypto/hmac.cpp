#include "crypto/hmac.hpp"

#include <array>

namespace blackdp::crypto {

Digest hmacSha256(std::span<const std::uint8_t> key,
                  std::span<const std::uint8_t> message) {
  constexpr std::size_t kBlockSize = 64;

  // Keys longer than the block size are hashed first.
  std::array<std::uint8_t, kBlockSize> keyBlock{};
  if (key.size() > kBlockSize) {
    const Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), keyBlock.begin());
  } else {
    std::copy(key.begin(), key.end(), keyBlock.begin());
  }

  std::array<std::uint8_t, kBlockSize> ipad;
  std::array<std::uint8_t, kBlockSize> opad;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(keyBlock[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(keyBlock[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(std::span<const std::uint8_t>{ipad.data(), ipad.size()});
  inner.update(message);
  const Digest innerDigest = inner.finish();

  Sha256 outer;
  outer.update(std::span<const std::uint8_t>{opad.data(), opad.size()});
  outer.update(std::span<const std::uint8_t>{innerDigest.data(), innerDigest.size()});
  return outer.finish();
}

Digest hmacSha256(std::string_view key, std::string_view message) {
  return hmacSha256(
      std::span<const std::uint8_t>{
          reinterpret_cast<const std::uint8_t*>(key.data()), key.size()},
      std::span<const std::uint8_t>{
          reinterpret_cast<const std::uint8_t*>(message.data()),
          message.size()});
}

bool digestEquals(const Digest& a, const Digest& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff = static_cast<std::uint8_t>(diff | (a[i] ^ b[i]));
  }
  return diff == 0;
}

}  // namespace blackdp::crypto
