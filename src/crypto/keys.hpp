// Simulated asymmetric signatures.
//
// The paper uses ECDSA per IEEE 1609.2. Inside the simulation only two
// properties of ECDSA matter: (1) a signature verifies against the matching
// public key, and (2) nobody can produce a valid signature without the
// private key. We model this with HMAC-SHA-256 under a per-key secret seed.
// The CryptoEngine owns the key-id → seed mapping and stands in for "the
// math": verification resolves the seed through the engine, while signing
// requires possession of the PrivateKey object. No modelled adversary can
// reach another node's PrivateKey, so unforgeability holds exactly as it
// would with ECDSA. Signing/verification *cost* is modelled separately as a
// configurable latency (see CryptoCosts).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace blackdp::crypto {

/// Public half of a key pair: an opaque fingerprint.
struct PublicKey {
  std::uint64_t keyId{0};

  friend bool operator==(PublicKey, PublicKey) = default;
};

/// Private half of a key pair. Only its owner's code path holds it.
class PrivateKey {
 public:
  PrivateKey() = default;

  [[nodiscard]] std::uint64_t keyId() const { return keyId_; }

 private:
  friend class CryptoEngine;
  std::uint64_t keyId_{0};
  std::array<std::uint8_t, 32> seed_{};
};

struct KeyPair {
  PublicKey pub;
  PrivateKey priv;
};

/// A signature: the signing key's fingerprint plus the MAC over the message.
struct Signature {
  std::uint64_t keyId{0};
  Digest mac{};

  friend bool operator==(const Signature&, const Signature&) = default;
};

/// Latency model for cryptographic operations (IEEE 1609.2 ECDSA-P256-class
/// costs on automotive hardware; configurable for overhead studies).
struct CryptoCosts {
  sim::Duration sign{sim::Duration::microseconds(800)};
  sim::Duration verify{sim::Duration::microseconds(1500)};
  sim::Duration hash{sim::Duration::microseconds(20)};
};

/// Per-simulation signature engine; see the file comment for the model.
class CryptoEngine {
 public:
  explicit CryptoEngine(std::uint64_t seed,
                        CryptoCosts costs = {})
      : rng_{seed}, costs_{costs} {}

  CryptoEngine(const CryptoEngine&) = delete;
  CryptoEngine& operator=(const CryptoEngine&) = delete;

  /// Generates a fresh key pair and registers it with the engine.
  [[nodiscard]] KeyPair generateKeyPair();

  /// Signs `message` with `key`. Deterministic given key and message.
  [[nodiscard]] Signature sign(const PrivateKey& key,
                               std::span<const std::uint8_t> message) const;

  /// True iff `sig` is a valid signature of `message` under `pub`.
  [[nodiscard]] bool verify(const PublicKey& pub,
                            std::span<const std::uint8_t> message,
                            const Signature& sig) const;

  [[nodiscard]] const CryptoCosts& costs() const { return costs_; }

  [[nodiscard]] std::size_t registeredKeys() const { return seeds_.size(); }

 private:
  sim::Rng rng_;
  CryptoCosts costs_;
  std::unordered_map<std::uint64_t, std::array<std::uint8_t, 32>> seeds_;
};

}  // namespace blackdp::crypto
