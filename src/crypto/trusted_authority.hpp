// Trusted Authority network.
//
// The paper assumes a root of trust (e.g. the Department of Motor Vehicles)
// deployed as several TA nodes close to the RSUs (fog style). Each TA issues
// pseudonymous certificates for the region it serves; on a misbehaviour
// report from a CH the responsible TA revokes the attacker's certificate,
// *pauses pseudonym renewal* for the underlying node, synchronises both facts
// with its peer TAs, and pushes a revocation notice to subscribed CHs.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "crypto/certificate.hpp"
#include "crypto/keys.hpp"
#include "sim/simulator.hpp"

namespace blackdp::crypto {

/// Credentials handed to a node on (re-)enrollment.
struct Enrollment {
  Certificate certificate;
  PrivateKey privateKey;
};

class TaNetwork;

/// A single TA node. Created and owned by a TaNetwork.
class TrustedAuthority {
 public:
  [[nodiscard]] common::TaId id() const { return id_; }
  [[nodiscard]] const PublicKey& publicKey() const { return keys_.pub; }

  /// Certificates this TA has issued and not superseded, by node.
  [[nodiscard]] std::optional<Certificate> currentCertificate(
      common::NodeId node) const;

 private:
  friend class TaNetwork;
  TrustedAuthority(common::TaId id, KeyPair keys) : id_{id}, keys_{std::move(keys)} {}

  common::TaId id_;
  KeyPair keys_;
  /// node → latest certificate issued by this TA.
  std::unordered_map<common::NodeId, Certificate> latestCert_;
  /// pseudonym → owning node (for misbehaviour reports against pseudonyms).
  std::unordered_map<common::Address, common::NodeId> pseudonymOwner_;
};

/// Configuration for the TA network.
struct TaConfig {
  sim::Duration certificateLifetime{sim::Duration::seconds(600)};
  /// Latency for TA↔TA and TA→CH propagation over the wired backbone.
  sim::Duration propagationDelay{sim::Duration::milliseconds(5)};
};

/// The collection of cooperating TA nodes plus the pseudonym address space.
class TaNetwork {
 public:
  using RevocationSubscriber = std::function<void(const RevocationNotice&)>;

  TaNetwork(sim::Simulator& simulator, CryptoEngine& engine, TaConfig config = {});

  /// Creates a TA node; returns its id.
  common::TaId addAuthority();

  [[nodiscard]] const TrustedAuthority& authority(common::TaId id) const;
  [[nodiscard]] std::size_t authorityCount() const { return authorities_.size(); }

  /// Enrolls `node` at TA `ta`: allocates a fresh pseudonym, issues a signed
  /// certificate. The same node may re-enroll (pseudonym renewal) unless its
  /// renewal has been paused by a misbehaviour report.
  [[nodiscard]] common::Result<Enrollment> enroll(common::TaId ta,
                                                  common::NodeId node);

  /// Pseudonym renewal: new address + certificate from the same TA.
  /// Fails with code "renewal-paused" if the node was reported.
  [[nodiscard]] common::Result<Enrollment> renew(common::TaId ta,
                                                 common::NodeId node);

  /// A CH reports `pseudonym` as a confirmed black hole. Returns the
  /// revocation notice if the pseudonym is known to some TA. All TAs pause
  /// renewal for the owning node; subscribers are notified after the backbone
  /// propagation delay.
  std::optional<RevocationNotice> reportMisbehaviour(common::Address pseudonym);

  /// Validates a certificate: known issuer, issuer signature, not expired.
  /// (Revocation is checked separately against the local RevocationStore —
  /// notices propagate asynchronously, as in the paper.)
  [[nodiscard]] bool validateCertificate(const Certificate& cert,
                                         sim::TimePoint now) const;

  /// Registers a callback invoked (after propagation delay) for every
  /// revocation notice. Cluster heads subscribe here.
  void subscribeRevocations(RevocationSubscriber subscriber);

  [[nodiscard]] bool isRenewalPaused(common::NodeId node) const {
    return pausedNodes_.contains(node);
  }

  [[nodiscard]] const std::vector<RevocationNotice>& revocations() const {
    return revocations_;
  }

  /// Checkpoint support for the TA network's *dynamic* state: paused nodes,
  /// the revocation log, and the pseudonym/serial allocators. Issued
  /// certificates and per-TA key material are setup-time state the restoring
  /// world rebuilds from its config; they are deliberately not serialized.
  void saveState(common::ByteWriter& w) const;
  void restoreState(common::ByteReader& r);

 private:
  common::Result<Enrollment> issue(TrustedAuthority& ta, common::NodeId node);
  TrustedAuthority* findAuthority(common::TaId id);

  sim::Simulator& simulator_;
  CryptoEngine& engine_;
  TaConfig config_;
  std::vector<std::unique_ptr<TrustedAuthority>> authorities_;
  std::uint32_t nextTaId_{1};
  std::uint64_t nextPseudonym_{1000};  // low values reserved for fixed ids
  std::uint64_t nextSerial_{1};
  std::unordered_set<common::NodeId> pausedNodes_;
  std::vector<RevocationNotice> revocations_;
  std::vector<RevocationSubscriber> subscribers_;
};

}  // namespace blackdp::crypto
