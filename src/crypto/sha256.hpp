// SHA-256 (FIPS 180-4).
//
// BlackDP signs every secure packet over a SHA-256 digest of its canonical
// serialisation (the paper's d_sign / one-way hash step), so the hash is
// implemented for real and validated against the published NIST vectors.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace blackdp::crypto {

/// A 256-bit digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);
  [[nodiscard]] Digest finish();

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data);
  [[nodiscard]] static Digest hash(std::string_view data);

 private:
  void processBlock(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t bufferLen_{0};
  std::uint64_t totalLen_{0};
};

/// Lowercase hex rendering of a digest.
[[nodiscard]] std::string toHex(const Digest& digest);

}  // namespace blackdp::crypto
