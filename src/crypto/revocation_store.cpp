#include "crypto/revocation_store.hpp"

namespace blackdp::crypto {

void RevocationStore::add(const RevocationNotice& notice) {
  const auto [it, inserted] = bySerial_.emplace(notice.serial, notice);
  if (inserted) {
    byPseudonym_.emplace(notice.pseudonym, notice.serial);
  }
}

bool RevocationStore::isRevokedSerial(common::CertSerial serial) const {
  return bySerial_.contains(serial);
}

bool RevocationStore::isRevokedPseudonym(common::Address pseudonym) const {
  return byPseudonym_.contains(pseudonym);
}

std::vector<RevocationNotice> RevocationStore::active() const {
  std::vector<RevocationNotice> out;
  out.reserve(bySerial_.size());
  for (const auto& [serial, notice] : bySerial_) out.push_back(notice);
  return out;
}

std::size_t RevocationStore::purgeExpired(sim::TimePoint now) {
  std::size_t purged = 0;
  for (auto it = bySerial_.begin(); it != bySerial_.end();) {
    if (now >= it->second.certExpiry) {
      const auto [lo, hi] = byPseudonym_.equal_range(it->second.pseudonym);
      for (auto p = lo; p != hi; ++p) {
        if (p->second == it->first) {
          byPseudonym_.erase(p);
          break;
        }
      }
      it = bySerial_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  return purged;
}

}  // namespace blackdp::crypto
