#include "crypto/certificate.hpp"

namespace blackdp::crypto {

common::Bytes Certificate::tbsBytes() const {
  common::ByteWriter w;
  w.writeString("cert-v1");
  w.writeId(pseudonym);
  w.writeU64(subjectKey.keyId);
  w.writeId(serial);
  w.writeI64(issuedAt.us());
  w.writeI64(expiresAt.us());
  w.writeId(issuer);
  return std::move(w).take();
}

}  // namespace blackdp::crypto
