// HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//
// Used by the simulated signature scheme and by the Sachan-style HMAC
// authentication baseline; validated against RFC 4231 test vectors.
#pragma once

#include <span>
#include <string_view>

#include "crypto/sha256.hpp"

namespace blackdp::crypto {

[[nodiscard]] Digest hmacSha256(std::span<const std::uint8_t> key,
                                std::span<const std::uint8_t> message);

[[nodiscard]] Digest hmacSha256(std::string_view key, std::string_view message);

/// Constant-time digest comparison (hygiene; the simulator has no real timing
/// side channel, but verification code should model the correct idiom).
[[nodiscard]] bool digestEquals(const Digest& a, const Digest& b);

}  // namespace blackdp::crypto
