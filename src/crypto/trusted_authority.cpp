#include "crypto/trusted_authority.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace blackdp::crypto {

std::optional<Certificate> TrustedAuthority::currentCertificate(
    common::NodeId node) const {
  if (const auto it = latestCert_.find(node); it != latestCert_.end()) {
    return it->second;
  }
  return std::nullopt;
}

TaNetwork::TaNetwork(sim::Simulator& simulator, CryptoEngine& engine,
                     TaConfig config)
    : simulator_{simulator}, engine_{engine}, config_{config} {}

common::TaId TaNetwork::addAuthority() {
  const common::TaId id{nextTaId_++};
  authorities_.push_back(std::unique_ptr<TrustedAuthority>(
      new TrustedAuthority{id, engine_.generateKeyPair()}));
  return id;
}

const TrustedAuthority& TaNetwork::authority(common::TaId id) const {
  for (const auto& ta : authorities_) {
    if (ta->id() == id) return *ta;
  }
  throw std::out_of_range("TaNetwork::authority: unknown TA id");
}

TrustedAuthority* TaNetwork::findAuthority(common::TaId id) {
  for (auto& ta : authorities_) {
    if (ta->id() == id) return ta.get();
  }
  return nullptr;
}

common::Result<Enrollment> TaNetwork::issue(TrustedAuthority& ta,
                                            common::NodeId node) {
  const common::Address pseudonym{nextPseudonym_++};
  const KeyPair keys = engine_.generateKeyPair();

  Certificate cert;
  cert.pseudonym = pseudonym;
  cert.subjectKey = keys.pub;
  cert.serial = common::CertSerial{nextSerial_++};
  cert.issuedAt = simulator_.now();
  cert.expiresAt = simulator_.now() + config_.certificateLifetime;
  cert.issuer = ta.id();
  const common::Bytes tbs = cert.tbsBytes();
  cert.issuerSignature = engine_.sign(
      ta.keys_.priv, std::span<const std::uint8_t>{tbs.data(), tbs.size()});

  ta.latestCert_[node] = cert;
  ta.pseudonymOwner_[pseudonym] = node;
  return Enrollment{cert, keys.priv};
}

common::Result<Enrollment> TaNetwork::enroll(common::TaId taId,
                                             common::NodeId node) {
  TrustedAuthority* ta = findAuthority(taId);
  if (ta == nullptr) return common::Error{"unknown-ta", "no such TA"};
  return issue(*ta, node);
}

common::Result<Enrollment> TaNetwork::renew(common::TaId taId,
                                            common::NodeId node) {
  TrustedAuthority* ta = findAuthority(taId);
  if (ta == nullptr) return common::Error{"unknown-ta", "no such TA"};
  if (pausedNodes_.contains(node)) {
    return common::Error{"renewal-paused",
                         "node was reported for misbehaviour; renewal paused"};
  }
  return issue(*ta, node);
}

std::optional<RevocationNotice> TaNetwork::reportMisbehaviour(
    common::Address pseudonym) {
  // The report may land at any TA; TAs search cooperatively for the owner.
  for (auto& ta : authorities_) {
    const auto ownerIt = ta->pseudonymOwner_.find(pseudonym);
    if (ownerIt == ta->pseudonymOwner_.end()) continue;

    const common::NodeId node = ownerIt->second;
    // "Inform other trusted authority nodes to pause attacker renewal":
    // the paused set is shared TA-network state, synchronised here.
    pausedNodes_.insert(node);

    const auto certIt = ta->latestCert_.find(node);
    BDP_ASSERT_MSG(certIt != ta->latestCert_.end(),
                   "pseudonym owner without a certificate");
    const Certificate& cert = certIt->second;
    const RevocationNotice notice{cert.pseudonym, cert.serial, cert.expiresAt};
    revocations_.push_back(notice);

    // Push to CH subscribers after the backbone propagation delay.
    for (const auto& subscriber : subscribers_) {
      simulator_.schedule(config_.propagationDelay,
                          [subscriber, notice] { subscriber(notice); });
    }
    return notice;
  }
  return std::nullopt;  // unknown pseudonym (e.g. attacker already renewed)
}

bool TaNetwork::validateCertificate(const Certificate& cert,
                                    sim::TimePoint now) const {
  if (cert.isExpired(now)) return false;
  for (const auto& ta : authorities_) {
    if (ta->id() != cert.issuer) continue;
    const common::Bytes tbs = cert.tbsBytes();
    return engine_.verify(ta->publicKey(),
                          std::span<const std::uint8_t>{tbs.data(), tbs.size()},
                          cert.issuerSignature);
  }
  return false;  // unknown issuer
}

void TaNetwork::subscribeRevocations(RevocationSubscriber subscriber) {
  BDP_ASSERT(subscriber != nullptr);
  subscribers_.push_back(std::move(subscriber));
}

void TaNetwork::saveState(common::ByteWriter& w) const {
  std::vector<common::NodeId> paused(pausedNodes_.begin(), pausedNodes_.end());
  std::sort(paused.begin(), paused.end());
  w.writeU32(static_cast<std::uint32_t>(paused.size()));
  for (const common::NodeId node : paused) w.writeU32(node.value());

  w.writeU32(static_cast<std::uint32_t>(revocations_.size()));
  for (const RevocationNotice& n : revocations_) {
    w.writeU64(n.pseudonym.value());
    w.writeU64(n.serial.value());
    w.writeI64(n.certExpiry.us());
  }

  w.writeU64(nextPseudonym_);
  w.writeU64(nextSerial_);
}

void TaNetwork::restoreState(common::ByteReader& r) {
  pausedNodes_.clear();
  const std::uint32_t pausedCount = r.readU32();
  for (std::uint32_t i = 0; i < pausedCount; ++i) {
    pausedNodes_.insert(common::NodeId{r.readU32()});
  }

  revocations_.clear();
  const std::uint32_t revCount = r.readU32();
  for (std::uint32_t i = 0; i < revCount; ++i) {
    RevocationNotice n;
    n.pseudonym = common::Address{r.readU64()};
    n.serial = common::CertSerial{r.readU64()};
    n.certExpiry = sim::TimePoint::fromUs(r.readI64());
    revocations_.push_back(n);
  }

  nextPseudonym_ = r.readU64();
  nextSerial_ = r.readU64();
}

}  // namespace blackdp::crypto
