// Revocation notice store kept by every cluster head.
//
// Per the paper (§III-B2), a CH stores revocation notices until the revoked
// certificate would have expired naturally, then purges them to bound storage
// overhead and avoid reporting stale information.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "crypto/certificate.hpp"

namespace blackdp::crypto {

class RevocationStore {
 public:
  /// Records a notice. Re-adding the same serial is idempotent.
  void add(const RevocationNotice& notice);

  /// True iff this certificate serial has been revoked (and not yet purged).
  [[nodiscard]] bool isRevokedSerial(common::CertSerial serial) const;

  /// True iff this pseudonym appears in any stored notice. Used to warn
  /// members and newly joined vehicles about attackers still holding a
  /// formally revoked but unexpired certificate.
  [[nodiscard]] bool isRevokedPseudonym(common::Address pseudonym) const;

  /// Drops every notice whose certificate has expired by `now`.
  /// Returns the number of purged notices.
  std::size_t purgeExpired(sim::TimePoint now);

  /// Snapshot of all stored (not yet purged) notices.
  [[nodiscard]] std::vector<RevocationNotice> active() const;

  [[nodiscard]] std::size_t size() const { return bySerial_.size(); }

 private:
  std::unordered_map<common::CertSerial, RevocationNotice> bySerial_;
  std::unordered_multimap<common::Address, common::CertSerial> byPseudonym_;
};

}  // namespace blackdp::crypto
