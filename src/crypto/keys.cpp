#include "crypto/keys.hpp"

#include "common/assert.hpp"

namespace blackdp::crypto {

KeyPair CryptoEngine::generateKeyPair() {
  PrivateKey priv;
  for (std::size_t i = 0; i < priv.seed_.size(); i += 8) {
    const std::uint64_t word = rng_.nextU64();
    for (std::size_t j = 0; j < 8; ++j) {
      priv.seed_[i + j] = static_cast<std::uint8_t>((word >> (8 * j)) & 0xff);
    }
  }

  // The key id is a fingerprint of the seed; collisions are astronomically
  // unlikely but would corrupt the registry, so they are checked.
  const Digest fp = Sha256::hash(
      std::span<const std::uint8_t>{priv.seed_.data(), priv.seed_.size()});
  std::uint64_t keyId = 0;
  for (std::size_t i = 0; i < 8; ++i) keyId = (keyId << 8) | fp[i];
  BDP_ASSERT_MSG(!seeds_.contains(keyId), "key-id collision");

  priv.keyId_ = keyId;
  seeds_.emplace(keyId, priv.seed_);
  return KeyPair{PublicKey{keyId}, priv};
}

Signature CryptoEngine::sign(const PrivateKey& key,
                             std::span<const std::uint8_t> message) const {
  BDP_ASSERT_MSG(key.keyId_ != 0, "signing with an uninitialised key");
  return Signature{
      key.keyId_,
      hmacSha256(std::span<const std::uint8_t>{key.seed_.data(),
                                               key.seed_.size()},
                 message)};
}

bool CryptoEngine::verify(const PublicKey& pub,
                          std::span<const std::uint8_t> message,
                          const Signature& sig) const {
  if (sig.keyId != pub.keyId) return false;
  const auto it = seeds_.find(pub.keyId);
  if (it == seeds_.end()) return false;  // unknown key: cannot verify
  const Digest expected = hmacSha256(
      std::span<const std::uint8_t>{it->second.data(), it->second.size()},
      message);
  return digestEquals(expected, sig.mac);
}

}  // namespace blackdp::crypto
