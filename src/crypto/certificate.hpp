// Pseudonymous certificates (IEEE 1609.2 style).
//
// A certificate binds a temporary pseudonym (the node's radio address) to a
// public key and carries the issuing Trusted Authority's signature. Vehicles
// attach their certificate to every secure packet; receivers validate the TA
// signature, the expiry, and the revocation status.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/keys.hpp"
#include "sim/time.hpp"

namespace blackdp::crypto {

struct Certificate {
  common::Address pseudonym{};    ///< subject temporary id (radio address)
  PublicKey subjectKey{};         ///< subject's public key
  common::CertSerial serial{};    ///< unique per issued certificate
  sim::TimePoint issuedAt{};
  sim::TimePoint expiresAt{};
  common::TaId issuer{};
  Signature issuerSignature{};    ///< TA signature over tbsBytes()

  /// Canonical "to be signed" encoding (everything except the signature).
  [[nodiscard]] common::Bytes tbsBytes() const;

  [[nodiscard]] bool isExpired(sim::TimePoint now) const {
    return now >= expiresAt;
  }

  friend bool operator==(const Certificate&, const Certificate&) = default;
};

/// A revocation notice as distributed by the TA to cluster heads: latest
/// pseudonym, certificate serial, and the certificate's natural expiry (the
/// notice is stored until then and purged afterwards).
struct RevocationNotice {
  common::Address pseudonym{};
  common::CertSerial serial{};
  sim::TimePoint certExpiry{};

  friend bool operator==(const RevocationNotice&, const RevocationNotice&) = default;
};

}  // namespace blackdp::crypto
