// Built-in campaign specs: the paper's evaluation grids, embedded so
// `campaign_run fig4` works without a spec file on disk. Each builtin is
// mirrored by `campaigns/<name>.json` in the repo (the test suite pins the
// two in sync by comparing expanded treatment hashes).
#pragma once

#include <string_view>
#include <vector>

namespace blackdp::campaign {

struct BuiltinSpec {
  std::string_view name;
  std::string_view description;
  std::string_view json;
};

/// All embedded specs, in listing order.
[[nodiscard]] const std::vector<BuiltinSpec>& builtinSpecs();

/// nullptr when no builtin has that name.
[[nodiscard]] const BuiltinSpec* findBuiltinSpec(std::string_view name);

}  // namespace blackdp::campaign
