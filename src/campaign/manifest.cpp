#include "campaign/manifest.hpp"

#include <utility>

#include "common/logging.hpp"

namespace blackdp::campaign {

namespace {

void appendField(std::string& out, std::string_view key) {
  if (out.back() != '{') out += ',';
  obs::appendJsonString(out, key);
  out += ':';
}

void appendU64(std::string& out, std::string_view key, std::uint64_t value) {
  appendField(out, key);
  obs::appendJsonNumber(out, value);
}

void appendString(std::string& out, std::string_view key,
                  std::string_view value) {
  appendField(out, key);
  obs::appendJsonString(out, value);
}

}  // namespace

std::string manifestHeaderLine(const CampaignSpec& spec,
                               std::size_t treatmentCount) {
  std::string out = "{";
  appendString(out, "manifest", "campaign");
  appendU64(out, "manifest_version",
            static_cast<std::uint64_t>(kManifestVersion));
  appendString(out, "campaign", spec.name);
  appendString(out, "experiment", toString(spec.experiment));
  appendU64(out, "seed", spec.seed);
  appendU64(out, "trials", spec.trials);
  appendU64(out, "treatments", static_cast<std::uint64_t>(treatmentCount));
  out += '}';
  return out;
}

std::string manifestRowLine(const TrialRecord& record) {
  std::string out = "{";
  appendU64(out, "trial", record.trial);
  appendU64(out, "treatment", record.treatment);
  appendU64(out, "rep", record.rep);
  appendU64(out, "seed", record.seed);
  appendString(out, "config_hash", record.configHash);
  appendString(out, "label", record.label);
  appendU64(out, "attack_launched", record.attackLaunched ? 1 : 0);
  appendU64(out, "confirmed_on_attacker", record.confirmedOnAttacker ? 1 : 0);
  appendU64(out, "false_positive", record.falsePositive ? 1 : 0);
  appendU64(out, "detection_packets", record.detectionPackets);
  appendString(out, "verdict", record.verdict);
  appendU64(out, "frames_delivered", record.framesDelivered);
  appendString(out, "telemetry", record.telemetry.toJson());
  out += '}';
  return out;
}

std::optional<ManifestHeader> parseManifestHeader(std::string_view line) {
  const std::optional<obs::FlatJsonObject> obj =
      obs::FlatJsonObject::parse(line);
  if (!obj) return std::nullopt;
  if (obj->string("manifest").value_or("") != "campaign") return std::nullopt;
  if (obj->u64("manifest_version").value_or(0) !=
      static_cast<std::uint64_t>(kManifestVersion)) {
    return std::nullopt;
  }
  ManifestHeader header;
  const std::optional<std::string_view> campaign = obj->string("campaign");
  const std::optional<std::string_view> experiment = obj->string("experiment");
  const std::optional<std::uint64_t> seed = obj->u64("seed");
  const std::optional<std::uint64_t> trials = obj->u64("trials");
  const std::optional<std::uint64_t> treatments = obj->u64("treatments");
  if (!campaign || !experiment || !seed || !trials || !treatments) {
    return std::nullopt;
  }
  header.campaign = *campaign;
  header.experiment = *experiment;
  header.seed = *seed;
  header.trials = static_cast<std::uint32_t>(*trials);
  header.treatments = static_cast<std::uint32_t>(*treatments);
  return header;
}

std::optional<TrialRecord> parseManifestRow(std::string_view line) {
  const std::optional<obs::FlatJsonObject> obj =
      obs::FlatJsonObject::parse(line);
  if (!obj) return std::nullopt;

  TrialRecord record;
  const std::optional<std::uint64_t> trial = obj->u64("trial");
  const std::optional<std::uint64_t> treatment = obj->u64("treatment");
  const std::optional<std::uint64_t> rep = obj->u64("rep");
  const std::optional<std::uint64_t> seed = obj->u64("seed");
  const std::optional<std::string_view> hash = obj->string("config_hash");
  const std::optional<std::string_view> label = obj->string("label");
  const std::optional<std::uint64_t> launched = obj->u64("attack_launched");
  const std::optional<std::uint64_t> confirmed =
      obj->u64("confirmed_on_attacker");
  const std::optional<std::uint64_t> fp = obj->u64("false_positive");
  const std::optional<std::uint64_t> packets = obj->u64("detection_packets");
  const std::optional<std::string_view> verdict = obj->string("verdict");
  const std::optional<std::uint64_t> frames = obj->u64("frames_delivered");
  const std::optional<std::string_view> telemetry = obj->string("telemetry");
  if (!trial || !treatment || !rep || !seed || !hash || !label || !launched ||
      !confirmed || !fp || !packets || !verdict || !frames || !telemetry) {
    return std::nullopt;
  }
  std::optional<obs::Snapshot> snapshot = parseSnapshotJson(*telemetry);
  if (!snapshot) return std::nullopt;

  record.trial = *trial;
  record.treatment = static_cast<std::uint32_t>(*treatment);
  record.rep = static_cast<std::uint32_t>(*rep);
  record.seed = *seed;
  record.configHash = *hash;
  record.label = *label;
  record.attackLaunched = *launched != 0;
  record.confirmedOnAttacker = *confirmed != 0;
  record.falsePositive = *fp != 0;
  record.detectionPackets = static_cast<std::uint32_t>(*packets);
  record.verdict = *verdict;
  record.framesDelivered = *frames;
  record.telemetry = std::move(*snapshot);
  return record;
}

std::optional<obs::Snapshot> parseSnapshotJson(std::string_view text) {
  const std::optional<obs::JsonValue> doc = obs::JsonValue::parse(text);
  if (!doc || !doc->isObject()) return std::nullopt;
  const obs::JsonValue* counters = doc->find("counters");
  const obs::JsonValue* gauges = doc->find("gauges");
  const obs::JsonValue* histograms = doc->find("histograms");
  if (counters == nullptr || !counters->isObject() || gauges == nullptr ||
      !gauges->isObject() || histograms == nullptr ||
      !histograms->isObject()) {
    return std::nullopt;
  }

  obs::Snapshot snapshot;
  for (const auto& [name, value] : counters->members()) {
    const std::optional<std::uint64_t> count = value.asU64();
    if (!count) return std::nullopt;
    snapshot.counters[name] = *count;
  }
  for (const auto& [name, value] : gauges->members()) {
    const std::optional<double> number = value.asNumber();
    if (!number) return std::nullopt;
    snapshot.gauges[name] = *number;
  }
  for (const auto& [name, value] : histograms->members()) {
    obs::Snapshot::HistogramData data;
    const obs::JsonValue* edges = value.find("edges");
    const obs::JsonValue* bucketCounts = value.find("counts");
    const obs::JsonValue* count = value.find("count");
    const obs::JsonValue* sum = value.find("sum");
    const obs::JsonValue* min = value.find("min");
    const obs::JsonValue* max = value.find("max");
    if (edges == nullptr || !edges->isArray() || bucketCounts == nullptr ||
        !bucketCounts->isArray() || count == nullptr || sum == nullptr ||
        min == nullptr || max == nullptr) {
      return std::nullopt;
    }
    for (const obs::JsonValue& edge : edges->items()) {
      const std::optional<double> number = edge.asNumber();
      if (!number) return std::nullopt;
      data.edges.push_back(*number);
    }
    for (const obs::JsonValue& bucket : bucketCounts->items()) {
      const std::optional<std::uint64_t> number = bucket.asU64();
      if (!number) return std::nullopt;
      data.counts.push_back(*number);
    }
    const std::optional<std::uint64_t> total = count->asU64();
    const std::optional<double> sumValue = sum->asNumber();
    const std::optional<double> minValue = min->asNumber();
    const std::optional<double> maxValue = max->asNumber();
    if (!total || !sumValue || !minValue || !maxValue) return std::nullopt;
    data.count = *total;
    data.sum = *sumValue;
    data.min = *minValue;
    data.max = *maxValue;
    snapshot.histograms[name] = std::move(data);
  }
  return snapshot;
}

std::optional<ManifestContents> readManifest(const std::string& path,
                                             std::string* error) {
  std::ifstream in{path};
  if (!in) {
    if (error != nullptr) error->clear();
    return std::nullopt;
  }

  std::string line;
  if (!std::getline(in, line)) {
    if (error != nullptr) *error = path + ": empty manifest";
    return std::nullopt;
  }
  std::optional<ManifestHeader> header = parseManifestHeader(line);
  if (!header) {
    if (error != nullptr) *error = path + ": bad manifest header";
    return std::nullopt;
  }

  ManifestContents contents;
  contents.header = std::move(*header);
  std::size_t lineNo = 1;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    std::optional<TrialRecord> record = parseManifestRow(line);
    if (!record) {
      // A malformed line marks the truncation point of an interrupted
      // write; everything before it is still good.
      contents.truncatedAtLine = lineNo;
      break;
    }
    contents.rows.push_back(std::move(*record));
  }
  return contents;
}

ManifestWriter::ManifestWriter(const std::string& path,
                               const std::string& preamble,
                               std::vector<std::uint64_t> expectedIds)
    : out_{path, std::ios::trunc}, expectedIds_{std::move(expectedIds)} {
  if (!out_) {
    BDP_LOG(kWarn, "campaign") << "cannot write manifest " << path;
    return;
  }
  out_ << preamble;
  out_.flush();
  ok_ = true;
}

void ManifestWriter::add(std::uint64_t trialId, std::string line) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (!ok_) return;
  pending_.emplace(trialId, std::move(line));
  while (cursor_ < expectedIds_.size()) {
    const auto it = pending_.find(expectedIds_[cursor_]);
    if (it == pending_.end()) break;
    out_ << it->second << '\n';
    pending_.erase(it);
    ++cursor_;
  }
  out_.flush();
}

}  // namespace blackdp::campaign
