#include "campaign/runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "codec/checkpoint.hpp"
#include "common/assert.hpp"
#include "core/telemetry.hpp"
#include "obs/bench_json.hpp"
#include "scenario/experiments.hpp"
#include "scenario/highway_scenario.hpp"
#include "sim/parallel.hpp"

namespace blackdp::campaign {

namespace {

TrialRecord runDetectionTrial(const Treatment& treatment, TrialRecord record) {
  scenario::ScenarioConfig config = treatment.config.scenario;
  config.seed = record.seed;

  scenario::HighwayScenario world(config);
  const core::VerificationReport report = world.runVerification(
      static_cast<int>(treatment.config.verifyRounds));
  const scenario::DetectionSummary summary = world.detectionSummary();

  const scenario::VehicleEntity* attacker = world.primaryAttacker();
  record.attackLaunched = attacker != nullptr && attacker->attacker != nullptr &&
                          attacker->attacker->attackStats().rrepsForged > 0;
  record.confirmedOnAttacker = summary.confirmedOnAttacker;
  record.falsePositive = summary.falsePositive;
  record.detectionPackets = summary.packetsUsed;
  record.verdict = std::string{core::toString(summary.verdict)};
  record.framesDelivered = world.medium().stats().framesDelivered;

  obs::MetricsRegistry local;
  core::recordVerifierTelemetry(local, report);
  for (const core::SessionRecord& session : summary.sessions) {
    core::recordSessionTelemetry(local, session);
  }
  record.telemetry = local.snapshot();
  return record;
}

TrialRecord runFig5Trial(const Treatment& treatment, TrialRecord record) {
  scenario::Fig5Case scripted;
  scripted.label = treatment.label;
  scripted.attack = treatment.config.scenario.attack;
  scripted.suspectInReporterCluster =
      treatment.config.fig5.suspectInReporterCluster;
  scripted.flees = treatment.config.fig5.flees;

  const scenario::Fig5Result result =
      scenario::runFig5Case(scripted, record.seed);
  const bool confirmed = result.verdict == core::Verdict::kSingleBlackHole ||
                         result.verdict == core::Verdict::kCooperativeBlackHole;
  const bool attackPresent = scripted.attack != scenario::AttackType::kNone;
  record.attackLaunched = attackPresent;
  record.confirmedOnAttacker = attackPresent && confirmed;
  record.falsePositive = !attackPresent && confirmed;
  record.detectionPackets = result.detectionPackets;
  record.verdict = std::string{core::toString(result.verdict)};

  obs::MetricsRegistry local;
  core::recordSessionTelemetry(local, result.record);
  record.telemetry = local.snapshot();
  return record;
}

/// Folds one trial's outcome into its treatment cell (same grading as the
/// pre-campaign sensitivity sweep: launched→TP/FN, unlaunched→TN, plus FP).
void gradeInto(TreatmentCell& cell, const TrialRecord& record) {
  if (cell.trials == 0) {
    cell.packetsMin = record.detectionPackets;
    cell.packetsMax = record.detectionPackets;
  } else {
    cell.packetsMin = std::min(cell.packetsMin, record.detectionPackets);
    cell.packetsMax = std::max(cell.packetsMax, record.detectionPackets);
  }
  ++cell.trials;
  if (record.confirmedOnAttacker) ++cell.detected;
  if (record.attackLaunched) {
    ++cell.attacksLaunched;
    if (record.confirmedOnAttacker) {
      cell.matrix.addTruePositive();
    } else {
      cell.matrix.addFalseNegative();
    }
  } else {
    cell.matrix.addTrueNegative();
  }
  if (record.falsePositive) {
    ++cell.falsePositives;
    cell.matrix.addFalsePositive();
  }
}

[[noreturn]] void fail(const CampaignSpec& spec, const std::string& what) {
  throw std::runtime_error("campaign " + spec.name + ": " + what);
}

/// Verifies a resumed manifest against the freshly expanded spec: a changed
/// spec (different matrix shape, hashes, or seeds) is an error, never a
/// silent partial rerun over stale rows.
void checkResumedManifest(const CampaignSpec& spec,
                          const std::vector<Treatment>& treatments,
                          const ManifestContents& contents,
                          std::uint64_t totalTrials) {
  const ManifestHeader& header = contents.header;
  if (header.campaign != spec.name ||
      header.experiment != toString(spec.experiment) ||
      header.seed != spec.seed || header.trials != spec.trials ||
      header.treatments != treatments.size()) {
    fail(spec, "manifest header does not match the spec (was the spec "
               "edited since the interrupted run?)");
  }
  for (const TrialRecord& row : contents.rows) {
    if (row.trial >= totalTrials ||
        row.treatment != row.trial / spec.trials ||
        row.rep != row.trial % spec.trials) {
      fail(spec, "manifest row " + std::to_string(row.trial) +
                     " has inconsistent matrix coordinates");
    }
    const Treatment& treatment = treatments[row.treatment];
    if (row.configHash != treatment.configHash) {
      fail(spec, "manifest row " + std::to_string(row.trial) +
                     " config hash " + row.configHash +
                     " != spec treatment hash " + treatment.configHash);
    }
    if (row.seed != trialSeed(spec, treatment, row.rep)) {
      fail(spec, "manifest row " + std::to_string(row.trial) +
                     " seed does not match the derivation contract");
    }
  }
}

}  // namespace

TrialRecord runTrial(const CampaignSpec& spec, const Treatment& treatment,
                     std::uint32_t rep) {
  TrialRecord record;
  record.trial = trialId(spec, treatment.index, rep);
  record.treatment = treatment.index;
  record.rep = rep;
  record.seed = trialSeed(spec, treatment, rep);
  record.configHash = treatment.configHash;
  record.label = treatment.label;
  switch (spec.experiment) {
    case ExperimentKind::kDetection:
      return runDetectionTrial(treatment, std::move(record));
    case ExperimentKind::kFig5:
      return runFig5Trial(treatment, std::move(record));
  }
  BDP_ASSERT_MSG(false, "unknown experiment kind");
  return record;
}

CampaignRunner::CampaignRunner(CampaignOptions options)
    : options_{std::move(options)} {}

CampaignResult CampaignRunner::run(const CampaignSpec& spec) const {
  const obs::BenchTimer timer;

  std::string error;
  const std::optional<std::vector<Treatment>> treatments =
      expandTreatments(spec, &error);
  if (!treatments) fail(spec, error);

  CampaignResult result;
  result.trialsTotal =
      static_cast<std::uint64_t>(treatments->size()) * spec.trials;
  result.cells.reserve(treatments->size());
  for (const Treatment& treatment : *treatments) {
    TreatmentCell cell;
    cell.treatment = treatment;
    result.cells.push_back(std::move(cell));
  }
  if (options_.dryRun) return result;

  std::string outDir = options_.outDir;
  if (outDir.empty()) {
    const char* env = std::getenv("BLACKDP_BENCH_OUT");
    if (env != nullptr && *env != '\0') outDir = env;
  }
  if (outDir.empty()) outDir = ".";
  if (options_.writeManifest || options_.writeBench) {
    std::error_code ec;
    std::filesystem::create_directories(outDir, ec);
    if (ec) {
      fail(spec, "cannot create output directory " + outDir + ": " +
                     ec.message());
    }
  }
  const std::string manifestPath =
      outDir + "/" + spec.name + ".manifest.jsonl";

  // --resume: fold previously recorded trials back in instead of rerunning.
  std::map<std::uint64_t, TrialRecord> resumed;
  if (options_.resume) {
    std::string readError;
    const std::optional<ManifestContents> contents =
        readManifest(manifestPath, &readError);
    if (!contents && !readError.empty()) fail(spec, readError);
    if (contents) {
      checkResumedManifest(spec, *treatments, *contents, result.trialsTotal);
      for (const TrialRecord& row : contents->rows) {
        if (!resumed.emplace(row.trial, row).second) {
          fail(spec, "manifest repeats trial " + std::to_string(row.trial));
        }
      }
    }
  }

  std::vector<std::uint64_t> remaining;
  remaining.reserve(result.trialsTotal - resumed.size());
  for (std::uint64_t id = 0; id < result.trialsTotal; ++id) {
    if (resumed.find(id) == resumed.end()) remaining.push_back(id);
  }
  result.trialsResumed = resumed.size();
  result.trialsRun = remaining.size();

  if (options_.log != nullptr) {
    *options_.log << "campaign " << spec.name << ": " << treatments->size()
                  << " treatments x " << spec.trials << " trials ("
                  << result.trialsResumed << " resumed, " << result.trialsRun
                  << " to run)\n";
  }

  // Stream rows in trial-id order as workers finish; resumed rows ride in
  // the preamble so an interruption at any point leaves a resumable prefix.
  std::optional<ManifestWriter> writer;
  if (options_.writeManifest) {
    std::string preamble = manifestHeaderLine(spec, treatments->size());
    preamble += '\n';
    for (const auto& [id, row] : resumed) {
      preamble += manifestRowLine(row);
      preamble += '\n';
    }
    writer.emplace(manifestPath, preamble, remaining);
  }

  const sim::ParallelRunner runner{options_.jobs};
  const std::vector<TrialRecord> fresh = runner.map<TrialRecord>(
      remaining.size(), [&](std::size_t i) {
        const std::uint64_t id = remaining[i];
        const auto treatment = static_cast<std::uint32_t>(id / spec.trials);
        const auto rep = static_cast<std::uint32_t>(id % spec.trials);
        TrialRecord record = runTrial(spec, (*treatments)[treatment], rep);
        BDP_ASSERT_MSG(record.trial == id, "trial id drift");
        if (writer) writer->add(id, manifestRowLine(record));
        return record;
      });

  // Fold — resumed and fresh alike — in trial-id order, so the aggregate is
  // independent of worker count and of where any interruption happened.
  std::vector<const TrialRecord*> ordered(result.trialsTotal, nullptr);
  for (const auto& [id, row] : resumed) ordered[id] = &row;
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    ordered[remaining[i]] = &fresh[i];
  }

  obs::MetricsRegistry registry;
  for (const TrialRecord* record : ordered) {
    BDP_ASSERT_MSG(record != nullptr, "trial missing from fold");
    registry.merge(record->telemetry);
    result.framesDelivered += record->framesDelivered;
    gradeInto(result.cells[record->treatment], *record);
  }
  for (const TreatmentCell& cell : result.cells) {
    const std::string prefix = spec.name + "." + cell.treatment.label;
    obs::addConfusion(registry, prefix, cell.matrix);
    registry.counter(prefix + ".attacks_launched").add(cell.attacksLaunched);
    if (spec.experiment == ExperimentKind::kFig5) {
      registry.gauge(prefix + ".packets_min").set(cell.packetsMin);
      registry.gauge(prefix + ".packets_max").set(cell.packetsMax);
    }
  }
  registry.counter("campaign.trials").add(result.trialsTotal);
  registry.counter("campaign.frames_delivered").add(result.framesDelivered);
  result.snapshot = registry.snapshot();

  // Canonical rewrite: after a resume the streamed file has resumed rows in
  // the preamble; rewriting in trial-id order makes the finished manifest
  // byte-identical to an uninterrupted run's. Atomic (temp + rename): the
  // manifest doubles as the campaign's resume checkpoint, so a kill during
  // the rewrite must not tear it — either the streamed resumable file or
  // the complete canonical one survives, never a prefix of the latter.
  if (options_.writeManifest) {
    writer.reset();
    std::string canonical = manifestHeaderLine(spec, treatments->size());
    canonical += '\n';
    for (const TrialRecord* record : ordered) {
      canonical += manifestRowLine(*record);
      canonical += '\n';
    }
    const common::Status wrote = codec::writeFileAtomic(
        manifestPath,
        {reinterpret_cast<const std::uint8_t*>(canonical.data()),
         canonical.size()});
    if (!wrote.ok()) {
      fail(spec, "cannot rewrite manifest " + manifestPath + ": " +
                     wrote.error().detail);
    }
    result.manifestPath = manifestPath;
  }

  if (options_.writeBench) {
    const obs::BenchRunInfo info = options_.pinSidecar
                                       ? obs::BenchRunInfo{}
                                       : timer.info(result.framesDelivered);
    result.benchPath =
        obs::writeBenchJson(spec.name, result.snapshot, info, outDir);
  }
  return result;
}

}  // namespace blackdp::campaign
