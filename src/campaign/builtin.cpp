#include "campaign/builtin.hpp"

namespace blackdp::campaign {

namespace {

// Fig. 4: detection accuracy / FP / FN vs. attacker cluster, single and
// cooperative black holes, 150 repetitions per treatment (paper §IV-B).
constexpr std::string_view kFig4Json = R"json({
  "name": "fig4",
  "experiment": "detection",
  "seed": 20170605,
  "trials": 150,
  "axes": [
    {"key": "attack", "values": ["single", "cooperative"]},
    {"key": "attacker_cluster", "values": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]}
  ]
})json";

// Fig. 5: detection packets per scripted placement (paper §IV-C). One rep
// per placement; the bundles mirror scenario::fig5Cases().
constexpr std::string_view kFig5Json = R"json({
  "name": "fig5",
  "experiment": "fig5",
  "seed": 11,
  "trials": 1,
  "axes": [
    {"key": "case", "values": [
      {"attack": "none", "suspect_in_reporter_cluster": true, "flees": false},
      {"attack": "none", "suspect_in_reporter_cluster": false, "flees": false},
      {"attack": "single", "suspect_in_reporter_cluster": true, "flees": false},
      {"attack": "single", "suspect_in_reporter_cluster": true, "flees": true},
      {"attack": "single", "suspect_in_reporter_cluster": false, "flees": false},
      {"attack": "single", "suspect_in_reporter_cluster": false, "flees": true},
      {"attack": "cooperative", "suspect_in_reporter_cluster": true, "flees": false},
      {"attack": "cooperative", "suspect_in_reporter_cluster": true, "flees": true},
      {"attack": "cooperative", "suspect_in_reporter_cluster": false, "flees": false},
      {"attack": "cooperative", "suspect_in_reporter_cluster": false, "flees": true}
    ]}
  ]
})json";

// Sensitivity: detection robustness across vehicle density x DSRC range, a
// single black hole in cluster 2 with evasion disabled. Cluster length is
// swept together with range to keep the paper's geometric invariant (every
// RSU covers its segment).
constexpr std::string_view kSensitivityJson = R"json({
  "name": "sensitivity",
  "experiment": "detection",
  "seed": 31000,
  "trials": 40,
  "base": {"attacker_cluster": 2, "first_evasive_cluster": 99},
  "axes": [
    {"key": "vehicle_count", "values": [40, 70, 100, 150]},
    {"key": "radio", "values": [
      {"transmission_range_m": 600, "cluster_length_m": 600},
      {"transmission_range_m": 800, "cluster_length_m": 800},
      {"transmission_range_m": 1000, "cluster_length_m": 1000}
    ]}
  ]
})json";

// Adversarial-robustness grid: naive/selective attacker x naive/hardened
// detector, with and without accusation flooders riding along. Evasion is
// disabled so every miss is the selective attacker's probe-cache filtering,
// not a renewal/act-legit draw. The v2 knobs (detector_hardened,
// accusation_flooders, attack=selective) hash only when non-default, so the
// naive/naive corner reproduces the classic treatment hashes and seeds.
constexpr std::string_view kAdversarialJson = R"json({
  "name": "adversarial",
  "experiment": "detection",
  "seed": 47000,
  "trials": 30,
  "base": {"attacker_cluster": 2, "first_evasive_cluster": 99,
           "verify_rounds": 2},
  "axes": [
    {"key": "attack", "values": ["single", "selective"]},
    {"key": "detector_hardened", "values": [false, true]},
    {"key": "accusation_flooders", "values": [0, 2]}
  ]
})json";

// CI smoke: 2 treatments x 2 reps of a small dense fleet — exercises the
// full engine (expansion, manifest, resume, bench JSON) in seconds.
constexpr std::string_view kSmokeJson = R"json({
  "name": "smoke",
  "experiment": "detection",
  "seed": 7,
  "trials": 2,
  "base": {"vehicle_count": 60, "first_evasive_cluster": 99},
  "axes": [
    {"key": "attacker_cluster", "values": [2, 3]}
  ]
})json";

}  // namespace

const std::vector<BuiltinSpec>& builtinSpecs() {
  static const std::vector<BuiltinSpec> specs{
      {"fig4", "Fig. 4 grid: attack type x attacker cluster, 150 reps",
       kFig4Json},
      {"fig5", "Fig. 5 scripted placements: detection packet counts",
       kFig5Json},
      {"sensitivity", "density x radio-range robustness sweep", kSensitivityJson},
      {"adversarial",
       "attacker sophistication x detector hardening x accusation flooding",
       kAdversarialJson},
      {"smoke", "tiny 4-trial CI smoke campaign", kSmokeJson},
  };
  return specs;
}

const BuiltinSpec* findBuiltinSpec(std::string_view name) {
  for (const BuiltinSpec& spec : builtinSpecs()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

}  // namespace blackdp::campaign
