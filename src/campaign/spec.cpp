#include "campaign/spec.hpp"

#include <algorithm>

#include "sim/rng.hpp"

namespace blackdp::campaign {

namespace {

void setError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

std::string renderNumber(double value) {
  std::string out;
  obs::appendJsonNumber(out, value);
  return out;
}

std::string renderNumber(std::uint64_t value) {
  std::string out;
  obs::appendJsonNumber(out, value);
  return out;
}

std::string renderBool(bool value) { return value ? "true" : "false"; }

bool readPositiveDouble(const obs::JsonValue& value, double* out) {
  const std::optional<double> number = value.asNumber();
  if (!number || *number <= 0.0) return false;
  *out = *number;
  return true;
}

bool readUnit(const obs::JsonValue& value, double* out) {
  const std::optional<double> number = value.asNumber();
  if (!number || *number < 0.0 || *number > 1.0) return false;
  *out = *number;
  return true;
}

bool readU32(const obs::JsonValue& value, std::uint32_t* out) {
  const std::optional<std::uint64_t> number = value.asU64();
  if (!number || *number > 0xffffffffull) return false;
  *out = static_cast<std::uint32_t>(*number);
  return true;
}

bool readSmallInt(const obs::JsonValue& value, int* out) {
  const std::optional<std::int64_t> number = value.asI64();
  if (!number || *number < 0 || *number > 1000) return false;
  *out = static_cast<int>(*number);
  return true;
}

bool readBool(const obs::JsonValue& value, bool* out) {
  if (!value.isBool()) return false;
  *out = value.asBool();
  return true;
}

/// One knob: a spec key, its setter, and the canonical renderer of its
/// effective value (the hash covers render() of every knob, defaults
/// included, so explicit-default and absent hash identically).
struct Knob {
  std::string_view key;
  bool (*apply)(ResolvedConfig&, const obs::JsonValue&);
  std::string (*render)(const ResolvedConfig&);
  /// Knobs added after the treatment-hash contract was pinned. A v2 knob is
  /// hashed only when its effective value differs from the default, so every
  /// pre-existing treatment hash — and therefore every per-trial seed — is
  /// preserved. (Pinning a v2 knob at its default still hashes identically
  /// to leaving it out, same as v1 knobs.)
  bool v2{false};
};

// Keep this table sorted by key: its order is the canonical hash order.
const Knob kKnobs[] = {
    {"accusation_flooders",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       std::uint32_t count = 0;
       if (!readU32(v, &count) || count > 100) return false;
       c.scenario.accusationFlooders = count;
       return true;
     },
     [](const ResolvedConfig& c) {
       return renderNumber(
           static_cast<std::uint64_t>(c.scenario.accusationFlooders));
     },
     /*v2=*/true},
    {"attack",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       if (!v.isString()) return false;
       const std::string& s = v.asString();
       if (s == "none") {
         c.scenario.attack = scenario::AttackType::kNone;
       } else if (s == "single") {
         c.scenario.attack = scenario::AttackType::kSingle;
       } else if (s == "cooperative") {
         c.scenario.attack = scenario::AttackType::kCooperative;
       } else if (s == "selective") {
         // v2 value: never rendered by v1 specs, so old hashes are safe.
         c.scenario.attack = scenario::AttackType::kSelective;
       } else {
         return false;
       }
       return true;
     },
     [](const ResolvedConfig& c) {
       return std::string{scenario::toString(c.scenario.attack)};
     }},
    {"attacker_cluster",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       std::uint32_t cluster = 0;
       if (!readU32(v, &cluster)) return false;
       if (cluster == 0) {
         c.scenario.attackerCluster.reset();  // random placement
       } else {
         c.scenario.attackerCluster = common::ClusterId{cluster};
       }
       return true;
     },
     [](const ResolvedConfig& c) {
       return c.scenario.attackerCluster
                  ? renderNumber(static_cast<std::uint64_t>(
                        c.scenario.attackerCluster->value()))
                  : std::string{"random"};
     }},
    {"ch_failover",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       return readBool(v, &c.scenario.chFailover);
     },
     [](const ResolvedConfig& c) { return renderBool(c.scenario.chFailover); }},
    {"cluster_length_m",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       return readPositiveDouble(v, &c.scenario.clusterLengthM);
     },
     [](const ResolvedConfig& c) {
       return renderNumber(c.scenario.clusterLengthM);
     }},
    {"detector_hardened",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       return readBool(v, &c.scenario.detector.hardening.enabled);
     },
     [](const ResolvedConfig& c) {
       return renderBool(c.scenario.detector.hardening.enabled);
     },
     /*v2=*/true},
    {"dreq_retries",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       return readSmallInt(v, &c.scenario.verifier.dreqRetries);
     },
     [](const ResolvedConfig& c) {
       return renderNumber(
           static_cast<std::uint64_t>(c.scenario.verifier.dreqRetries));
     }},
    {"fault_preset",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       if (!v.isString()) return false;
       const std::vector<std::string>& names = faultPresetNames();
       if (std::find(names.begin(), names.end(), v.asString()) == names.end()) {
         return false;
       }
       c.faultPreset = v.asString();
       c.scenario.faults = makeFaultPreset(c.faultPreset);
       return true;
     },
     [](const ResolvedConfig& c) { return c.faultPreset; }},
    {"first_evasive_cluster",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       return readU32(v, &c.scenario.evasion.firstEvasiveCluster);
     },
     [](const ResolvedConfig& c) {
       return renderNumber(static_cast<std::uint64_t>(
           c.scenario.evasion.firstEvasiveCluster));
     }},
    {"flees",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       return readBool(v, &c.fig5.flees);
     },
     [](const ResolvedConfig& c) { return renderBool(c.fig5.flees); }},
    {"highway_length_m",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       return readPositiveDouble(v, &c.scenario.highwayLengthM);
     },
     [](const ResolvedConfig& c) {
       return renderNumber(c.scenario.highwayLengthM);
     }},
    {"local_quarantine",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       return readBool(v, &c.scenario.verifier.localQuarantine);
     },
     [](const ResolvedConfig& c) {
       return renderBool(c.scenario.verifier.localQuarantine);
     }},
    {"loss_probability",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       return readUnit(v, &c.scenario.medium.lossProbability);
     },
     [](const ResolvedConfig& c) {
       return renderNumber(c.scenario.medium.lossProbability);
     }},
    {"max_restarts",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       return readSmallInt(v, &c.scenario.verifier.maxRestarts);
     },
     [](const ResolvedConfig& c) {
       return renderNumber(
           static_cast<std::uint64_t>(c.scenario.verifier.maxRestarts));
     }},
    {"max_speed_kmh",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       return readPositiveDouble(v, &c.scenario.maxSpeedKmh);
     },
     [](const ResolvedConfig& c) { return renderNumber(c.scenario.maxSpeedKmh); }},
    {"min_speed_kmh",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       return readPositiveDouble(v, &c.scenario.minSpeedKmh);
     },
     [](const ResolvedConfig& c) { return renderNumber(c.scenario.minSpeedKmh); }},
    {"probe_retries",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       return readSmallInt(v, &c.scenario.detector.probeRetries);
     },
     [](const ResolvedConfig& c) {
       return renderNumber(
           static_cast<std::uint64_t>(c.scenario.detector.probeRetries));
     }},
    {"response_timeout_s",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       double seconds = 0.0;
       if (!readPositiveDouble(v, &seconds)) return false;
       c.scenario.verifier.responseTimeout = sim::Duration::fromSeconds(seconds);
       return true;
     },
     [](const ResolvedConfig& c) {
       return renderNumber(c.scenario.verifier.responseTimeout.toSeconds());
     }},
    {"stage_retries",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       return readSmallInt(v, &c.scenario.detector.stageRetries);
     },
     [](const ResolvedConfig& c) {
       return renderNumber(
           static_cast<std::uint64_t>(c.scenario.detector.stageRetries));
     }},
    {"suspect_in_reporter_cluster",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       return readBool(v, &c.fig5.suspectInReporterCluster);
     },
     [](const ResolvedConfig& c) {
       return renderBool(c.fig5.suspectInReporterCluster);
     }},
    {"transmission_range_m",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       return readPositiveDouble(v, &c.scenario.transmissionRangeM);
     },
     [](const ResolvedConfig& c) {
       return renderNumber(c.scenario.transmissionRangeM);
     }},
    {"trial_timeout_s",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       double seconds = 0.0;
       if (!readPositiveDouble(v, &seconds)) return false;
       c.scenario.trialTimeout = sim::Duration::fromSeconds(seconds);
       return true;
     },
     [](const ResolvedConfig& c) {
       return renderNumber(c.scenario.trialTimeout.toSeconds());
     }},
    {"verify_rounds",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       std::uint32_t rounds = 0;
       if (!readU32(v, &rounds) || rounds < 1 || rounds > 10) return false;
       c.verifyRounds = rounds;
       return true;
     },
     [](const ResolvedConfig& c) {
       return renderNumber(static_cast<std::uint64_t>(c.verifyRounds));
     },
     /*v2=*/true},
    {"vehicle_count",
     [](ResolvedConfig& c, const obs::JsonValue& v) {
       std::uint32_t count = 0;
       if (!readU32(v, &count) || count < 3) return false;  // src + dst + 1
       c.scenario.vehicleCount = count;
       return true;
     },
     [](const ResolvedConfig& c) {
       return renderNumber(static_cast<std::uint64_t>(c.scenario.vehicleCount));
     }},
};

const Knob* findKnob(std::string_view key) {
  for (const Knob& knob : kKnobs) {
    if (knob.key == key) return &knob;
  }
  return nullptr;
}

/// FNV-1a over the canonical knob text, with the SplitMix64 avalanche so
/// nearby configs land far apart. Stable across platforms and runs.
std::uint64_t hash64(std::string_view text) {
  std::uint64_t h = 14695981039346656037ull;
  for (char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

std::string toHex16(std::uint64_t bits) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[bits & 0xf];
    bits >>= 4;
  }
  return out;
}

/// "key=value\n" for every knob in table order — the hashed canonical form.
/// v2 knobs appear only when set away from their default (see Knob::v2).
std::string canonicalConfigText(const ResolvedConfig& config) {
  static const ResolvedConfig kDefaults{};
  std::string out;
  for (const Knob& knob : kKnobs) {
    std::string value = knob.render(config);
    if (knob.v2 && value == knob.render(kDefaults)) continue;
    out += knob.key;
    out += '=';
    out += value;
    out += '\n';
  }
  return out;
}

}  // namespace

std::string_view toString(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::kDetection: return "detection";
    case ExperimentKind::kFig5: return "fig5";
  }
  return "unknown";
}

const std::vector<std::string>& knobKeys() {
  static const std::vector<std::string> keys = [] {
    std::vector<std::string> out;
    for (const Knob& knob : kKnobs) out.emplace_back(knob.key);
    return out;
  }();
  return keys;
}

std::string renderKnob(const ResolvedConfig& config, std::string_view key) {
  const Knob* knob = findKnob(key);
  return knob != nullptr ? knob->render(config) : std::string{};
}

bool applyKnob(ResolvedConfig& config, std::string_view key,
               const obs::JsonValue& value, std::string* error) {
  const Knob* knob = findKnob(key);
  if (knob == nullptr) {
    setError(error, "unknown knob \"" + std::string{key} + "\"");
    return false;
  }
  if (!knob->apply(config, value)) {
    setError(error, "bad value for knob \"" + std::string{key} + "\"");
    return false;
  }
  return true;
}

const std::vector<std::string>& faultPresetNames() {
  static const std::vector<std::string> names = {
      "none", "burst_light", "burst_medium", "burst_heavy", "rsu2_flap",
      "jam_mid"};
  return names;
}

fault::FaultPlan makeFaultPreset(std::string_view name) {
  fault::FaultPlan plan;
  // Burst intensities mirror bench/ablation_faults' Gilbert–Elliott sweep.
  if (name == "burst_light") {
    plan.burstLoss.push_back({{0.02, 0.20, 0.0, 0.9}, sim::TimePoint{}});
  } else if (name == "burst_medium") {
    plan.burstLoss.push_back({{0.05, 0.15, 0.0, 0.9}, sim::TimePoint{}});
  } else if (name == "burst_heavy") {
    plan.burstLoss.push_back({{0.10, 0.10, 0.0, 0.9}, sim::TimePoint{}});
  } else if (name == "rsu2_flap") {
    // The attacker-side RSU goes dark mid-run and recovers.
    plan.rsuCrashes.push_back({common::ClusterId{2},
                               sim::TimePoint::fromUs(5'000'000),
                               sim::TimePoint::fromUs(20'000'000)});
  } else if (name == "jam_mid") {
    plan.jamZones.push_back({4'000.0, 6'000.0,
                             sim::TimePoint::fromUs(2'000'000),
                             sim::TimePoint::fromUs(20'000'000)});
  }
  return plan;
}

std::optional<CampaignSpec> parseCampaignSpec(std::string_view text,
                                              std::string* error) {
  const std::optional<obs::JsonValue> doc = obs::JsonValue::parse(text);
  if (!doc || !doc->isObject()) {
    setError(error, "spec is not a JSON object");
    return std::nullopt;
  }

  static const std::vector<std::string> kTopKeys = {
      "name", "experiment", "seed", "trials", "base", "axes"};
  for (const auto& [key, value] : doc->members()) {
    if (std::find(kTopKeys.begin(), kTopKeys.end(), key) == kTopKeys.end()) {
      setError(error, "unknown spec key \"" + key + "\"");
      return std::nullopt;
    }
  }

  CampaignSpec spec;
  const obs::JsonValue* name = doc->find("name");
  if (name == nullptr || !name->isString() || name->asString().empty()) {
    setError(error, "spec needs a non-empty \"name\"");
    return std::nullopt;
  }
  spec.name = name->asString();

  if (const obs::JsonValue* experiment = doc->find("experiment")) {
    if (experiment->asString() == "detection") {
      spec.experiment = ExperimentKind::kDetection;
    } else if (experiment->asString() == "fig5") {
      spec.experiment = ExperimentKind::kFig5;
    } else {
      setError(error, "unknown experiment \"" + experiment->asString() + "\"");
      return std::nullopt;
    }
  }

  if (const obs::JsonValue* seed = doc->find("seed")) {
    const std::optional<std::uint64_t> value = seed->asU64();
    if (!value) {
      setError(error, "\"seed\" must be a non-negative integer");
      return std::nullopt;
    }
    spec.seed = *value;
  }

  if (const obs::JsonValue* trials = doc->find("trials")) {
    const std::optional<std::uint64_t> value = trials->asU64();
    if (!value || *value == 0 || *value > 1'000'000) {
      setError(error, "\"trials\" must be in [1, 1000000]");
      return std::nullopt;
    }
    spec.trials = static_cast<std::uint32_t>(*value);
  }

  if (const obs::JsonValue* base = doc->find("base")) {
    if (!base->isObject()) {
      setError(error, "\"base\" must be an object of knobs");
      return std::nullopt;
    }
    spec.base = *base;
  }

  if (const obs::JsonValue* axes = doc->find("axes")) {
    if (!axes->isArray()) {
      setError(error, "\"axes\" must be an array");
      return std::nullopt;
    }
    for (const obs::JsonValue& entry : axes->items()) {
      const obs::JsonValue* key = entry.find("key");
      const obs::JsonValue* values = entry.find("values");
      if (!entry.isObject() || key == nullptr || !key->isString() ||
          key->asString().empty() || values == nullptr || !values->isArray() ||
          values->items().empty()) {
        setError(error, "each axis needs a \"key\" and non-empty \"values\"");
        return std::nullopt;
      }
      spec.axes.push_back(Axis{key->asString(), values->items()});
    }
  }

  // Validate knob application (base + every axis value) eagerly so a bad
  // spec fails at load, not mid-campaign.
  std::string expandError;
  if (!expandTreatments(spec, &expandError)) {
    setError(error, expandError);
    return std::nullopt;
  }
  return spec;
}

std::optional<std::vector<Treatment>> expandTreatments(
    const CampaignSpec& spec, std::string* error) {
  ResolvedConfig base;
  if (spec.base.isObject()) {
    for (const auto& [key, value] : spec.base.members()) {
      if (!applyKnob(base, key, value, error)) return std::nullopt;
    }
  }

  std::size_t count = 1;
  for (const Axis& axis : spec.axes) {
    if (count > 1'000'000 / axis.values.size()) {
      setError(error, "treatment matrix larger than 1000000");
      return std::nullopt;
    }
    count *= axis.values.size();
  }

  std::vector<Treatment> treatments;
  treatments.reserve(count);
  for (std::size_t index = 0; index < count; ++index) {
    Treatment treatment;
    treatment.index = static_cast<std::uint32_t>(index);
    treatment.config = base;

    // Decompose the flat index with the first axis outermost.
    std::size_t rem = index;
    std::size_t stride = count;
    std::string label;
    for (const Axis& axis : spec.axes) {
      stride /= axis.values.size();
      const obs::JsonValue& value = axis.values[rem / stride];
      rem %= stride;

      const auto appendLabel = [&label, &treatment](std::string_view key) {
        if (!label.empty()) label += ',';
        label += key;
        label += '=';
        label += renderKnob(treatment.config, key);
      };
      if (value.isObject()) {
        // Bundle axis: each member is a knob swept together (e.g. range and
        // cluster length); the axis key is just the bundle's name.
        for (const auto& [key, member] : value.members()) {
          if (!applyKnob(treatment.config, key, member, error)) {
            return std::nullopt;
          }
          appendLabel(key);
        }
      } else {
        if (!applyKnob(treatment.config, axis.key, value, error)) {
          return std::nullopt;
        }
        appendLabel(axis.key);
      }
    }
    treatment.label = label.empty() ? "base" : label;
    treatment.configHashBits = hash64(canonicalConfigText(treatment.config));
    treatment.configHash = toHex16(treatment.configHashBits);
    treatments.push_back(std::move(treatment));
  }
  return treatments;
}

std::uint64_t trialSeed(const CampaignSpec& spec, const Treatment& treatment,
                        std::uint32_t rep) {
  return sim::deriveTrialSeed(
      sim::deriveTrialSeed(spec.seed, treatment.configHashBits), rep);
}

}  // namespace blackdp::campaign
