// Campaign manifest: one JSONL file per campaign run.
//
// Line 1 is the header (campaign name, experiment, seed, trials-per-
// treatment, treatment count); every following line is one completed trial:
// its matrix coordinates, derived seed, treatment config hash, confusion
// booleans, and the trial's full telemetry snapshot embedded as an escaped
// JSON string. Rows are flat (FlatJsonObject-parseable) and are streamed in
// trial-id order — a contiguous-prefix flusher holds back out-of-order
// completions — so an interrupted manifest is always a clean, resumable
// prefix and the finished file is byte-identical for any worker count.
//
// --resume reads the manifest back, verifies each row's config hash and
// seed against the freshly expanded spec (a changed spec is an error, not a
// silent partial rerun), and re-folds the recorded outcomes so the final
// aggregate is bit-identical to an uninterrupted run.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "obs/registry.hpp"

namespace blackdp::campaign {

inline constexpr int kManifestVersion = 1;

/// One completed trial, exactly as a manifest row carries it.
struct TrialRecord {
  std::uint64_t trial{0};
  std::uint32_t treatment{0};
  std::uint32_t rep{0};
  std::uint64_t seed{0};
  std::string configHash;
  std::string label;
  bool attackLaunched{false};
  bool confirmedOnAttacker{false};
  bool falsePositive{false};
  std::uint32_t detectionPackets{0};
  std::string verdict;
  std::uint64_t framesDelivered{0};
  obs::Snapshot telemetry;
};

struct ManifestHeader {
  std::string campaign;
  std::string experiment;
  std::uint64_t seed{0};
  std::uint32_t trials{0};
  std::uint32_t treatments{0};
};

/// Compact single-line serialisations (no trailing newline).
[[nodiscard]] std::string manifestHeaderLine(const CampaignSpec& spec,
                                             std::size_t treatmentCount);
[[nodiscard]] std::string manifestRowLine(const TrialRecord& record);

[[nodiscard]] std::optional<ManifestHeader> parseManifestHeader(
    std::string_view line);
[[nodiscard]] std::optional<TrialRecord> parseManifestRow(
    std::string_view line);

/// Snapshot JSON round-trip for the embedded telemetry (the writer side is
/// obs::Snapshot::toJson). Number rendering is std::to_chars both ways, so
/// parse(toJson(s)) == s exactly.
[[nodiscard]] std::optional<obs::Snapshot> parseSnapshotJson(
    std::string_view text);

/// A manifest read back from disk: the header plus every parseable row (in
/// file order). Reading stops at the first malformed line — a mid-write
/// truncation point — and `truncatedAtLine` records it (0 = clean file).
struct ManifestContents {
  ManifestHeader header;
  std::vector<TrialRecord> rows;
  std::size_t truncatedAtLine{0};
};

/// nullopt when the file does not exist or has no valid header (and, when
/// `error` is non-null, why).
[[nodiscard]] std::optional<ManifestContents> readManifest(
    const std::string& path, std::string* error = nullptr);

/// Streams rows in trial-id order: completions arrive in any order from the
/// worker pool, but a row is only written once every earlier expected id has
/// been written, so the on-disk file is always an ordered prefix.
class ManifestWriter {
 public:
  /// Opens `path` for writing (truncating), writes `preamble` (header +
  /// any resumed rows, newline-terminated), and expects one add() per id in
  /// `expectedIds` (must be sorted ascending).
  ManifestWriter(const std::string& path, const std::string& preamble,
                 std::vector<std::uint64_t> expectedIds);

  /// True when the file opened; a failed writer swallows add() calls (the
  /// campaign still runs, it just is not resumable).
  [[nodiscard]] bool ok() const { return ok_; }

  /// Thread-safe; flushes the contiguous prefix of buffered rows.
  void add(std::uint64_t trialId, std::string line);

 private:
  std::mutex mutex_;
  std::ofstream out_;
  bool ok_{false};
  std::vector<std::uint64_t> expectedIds_;
  std::size_t cursor_{0};
  std::map<std::uint64_t, std::string> pending_;
};

}  // namespace blackdp::campaign
