// Campaign execution: fan a spec's trial matrix out over the parallel trial
// runner, stream the manifest, fold the aggregate.
//
// Determinism contract: the aggregate (per-treatment cells, merged metrics
// registry, manifest contents) is a pure function of the spec — independent
// of worker count, and independent of whether the campaign ran in one piece
// or was interrupted and resumed any number of times. Trials fold in trial-
// id order; resumed trials re-fold from their recorded manifest rows, whose
// embedded telemetry snapshots round-trip byte-exactly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/spec.hpp"
#include "metrics/confusion.hpp"
#include "obs/registry.hpp"

namespace blackdp::campaign {

/// One treatment's folded outcome.
struct TreatmentCell {
  Treatment treatment;
  std::uint32_t trials{0};
  /// Trials where the attacker's forged RREP reached a discovery (always 0
  /// for attack=none treatments).
  std::uint32_t attacksLaunched{0};
  /// Trials confirming a true attacker.
  std::uint32_t detected{0};
  /// Trials confirming an honest node.
  std::uint32_t falsePositives{0};
  /// Graded confusion: launched→TP/FN, unlaunched/no-attacker→TN, plus FP.
  metrics::ConfusionMatrix matrix;
  /// Detection-packet range across the cell's trials (fig5 experiments).
  std::uint32_t packetsMin{0};
  std::uint32_t packetsMax{0};

  [[nodiscard]] double detectionAccuracy() const {
    return attacksLaunched == 0 ? 0.0 : matrix.recall();
  }
};

struct CampaignOptions {
  /// Worker count as per sim::resolveJobCount (0 = env / hardware default).
  unsigned jobs{0};
  /// Output directory for the manifest and BENCH_<name>.json; empty = the
  /// BLACKDP_BENCH_OUT environment variable, falling back to ".".
  std::string outDir;
  /// Skip trials already recorded in the manifest (error if the manifest
  /// disagrees with the spec's matrix, seeds, or config hashes).
  bool resume{false};
  /// Expand and report the matrix without running any trial.
  bool dryRun{false};
  /// Write BENCH_<name>.json with a zeroed wall-clock sidecar so the whole
  /// file — not just its metrics subtree — is byte-reproducible.
  bool pinSidecar{false};
  bool writeManifest{true};
  bool writeBench{true};
  /// Progress lines (campaign banner, resume counts); nullptr = silent.
  std::ostream* log{nullptr};
};

struct CampaignResult {
  std::vector<TreatmentCell> cells;
  /// The merged deterministic metrics (what BENCH_<name>.json's "metrics"
  /// subtree serialises).
  obs::Snapshot snapshot;
  std::string manifestPath;
  std::string benchPath;
  std::uint64_t trialsTotal{0};
  std::uint64_t trialsRun{0};      ///< executed this invocation
  std::uint64_t trialsResumed{0};  ///< re-folded from the manifest
  std::uint64_t framesDelivered{0};
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {});

  /// Runs (or resumes) the campaign. Throws std::runtime_error on spec
  /// expansion failures and on manifest/spec mismatches under --resume.
  [[nodiscard]] CampaignResult run(const CampaignSpec& spec) const;

 private:
  CampaignOptions options_;
};

/// Executes one trial of the spec's experiment kind and returns its
/// manifest record (exposed for tests pinning single-trial behaviour).
[[nodiscard]] TrialRecord runTrial(const CampaignSpec& spec,
                                   const Treatment& treatment,
                                   std::uint32_t rep);

}  // namespace blackdp::campaign
