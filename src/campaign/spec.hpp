// Declarative experiment campaigns (spec side).
//
// A CampaignSpec is the JSON description of a whole evaluation grid: a named
// experiment kind, a campaign seed, a repetition count, a set of base knob
// overrides, and sweep axes whose cartesian product expands into a
// deterministic treatment matrix. The paper's Fig. 4 grid (attack type ×
// attacker cluster × 150 trials), Fig. 5's scripted placements, and the
// density×range sensitivity sweep are all instances — a new study is a JSON
// file, not a new bench binary.
//
// Spec grammar (all knobs optional; unknown keys are errors):
//
//   {
//     "name": "fig4",                  // bench/manifest name
//     "experiment": "detection",       // or "fig5"
//     "seed": 20170605,                // campaign seed
//     "trials": 150,                   // repetitions per treatment
//     "base": { "<knob>": <value>, ... },
//     "axes": [
//       {"key": "<knob>", "values": [v, ...]},          // scalar axis
//       {"key": "<label>", "values": [{...}, ...]}      // object axis:
//     ]                                //   each value sets several knobs
//   }
//
// Seed-derivation contract: a treatment is hashed over the *full* resolved
// knob set (defaults filled in), so a knob pinned at its default value by an
// axis hashes identically to the axis being absent; the per-trial master
// seed is deriveTrialSeed(deriveTrialSeed(campaignSeed, configHash), rep).
// Adding an axis therefore never perturbs the seeds — or the results — of
// treatments whose resolved configuration is unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "scenario/config.hpp"

namespace blackdp::campaign {

enum class ExperimentKind : std::uint8_t {
  kDetection,  ///< seeded HighwayScenario::runVerification + grading
  kFig5,       ///< scripted Fig. 5 placement, detection packets counted
};

[[nodiscard]] std::string_view toString(ExperimentKind kind);

/// Fig. 5 scripted-placement knobs (kFig5 experiments only).
struct Fig5Knobs {
  bool suspectInReporterCluster{true};
  bool flees{false};
};

/// Fully resolved per-treatment configuration: the scenario plus the
/// campaign-level sidecars the ScenarioConfig cannot carry canonically.
struct ResolvedConfig {
  scenario::ScenarioConfig scenario{};
  std::string faultPreset{"none"};
  Fig5Knobs fig5{};
  /// Back-to-back verified establishments per detection trial (v2 knob):
  /// round 2+ exposes cache-gated selective black holes that sit out the
  /// first discovery.
  std::uint32_t verifyRounds{1};
};

/// One sweep axis: a knob key with the values it takes, or (object-valued)
/// a label with knob bundles — e.g. range and cluster length swept together.
struct Axis {
  std::string key;
  std::vector<obs::JsonValue> values;
};

struct CampaignSpec {
  std::string name;
  ExperimentKind experiment{ExperimentKind::kDetection};
  std::uint64_t seed{1};
  std::uint32_t trials{1};
  obs::JsonValue base;  ///< object of knob overrides (or null)
  std::vector<Axis> axes;
};

/// One expanded treatment: its position in the matrix, a human label
/// ("attack=single,attacker_cluster=2"), the canonical 64-bit hash of the
/// full resolved knob set, and the resolved configuration itself.
struct Treatment {
  std::uint32_t index{0};
  std::string label;
  std::string configHash;  ///< 16 lowercase hex digits of configHashBits
  std::uint64_t configHashBits{0};
  ResolvedConfig config;
};

/// Parses a campaign spec document. On failure returns nullopt and, when
/// `error` is non-null, stores a one-line diagnostic.
[[nodiscard]] std::optional<CampaignSpec> parseCampaignSpec(
    std::string_view text, std::string* error = nullptr);

/// Applies one knob to a resolved config; false (with *error) on an unknown
/// key or a type/value mismatch.
bool applyKnob(ResolvedConfig& config, std::string_view key,
               const obs::JsonValue& value, std::string* error = nullptr);

/// Every knob key the grammar accepts, in canonical (hash) order.
[[nodiscard]] const std::vector<std::string>& knobKeys();

/// Canonical text of one knob's effective value in `config` (used for
/// hashing, labels, and the --dry-run matrix listing).
[[nodiscard]] std::string renderKnob(const ResolvedConfig& config,
                                     std::string_view key);

/// The canned fault plans the "fault_preset" knob names. Unknown names are
/// rejected by applyKnob; "none" is the empty plan.
[[nodiscard]] const std::vector<std::string>& faultPresetNames();
[[nodiscard]] fault::FaultPlan makeFaultPreset(std::string_view name);

/// Expands the axes' cartesian product (first axis outermost) into the
/// deterministic treatment list. nullopt (with *error) when a knob fails to
/// apply.
[[nodiscard]] std::optional<std::vector<Treatment>> expandTreatments(
    const CampaignSpec& spec, std::string* error = nullptr);

/// Global trial id of (treatment, rep) in the flattened matrix.
[[nodiscard]] inline std::uint64_t trialId(const CampaignSpec& spec,
                                           std::uint32_t treatment,
                                           std::uint32_t rep) {
  return static_cast<std::uint64_t>(treatment) * spec.trials + rep;
}

/// The per-trial master seed (see the seed-derivation contract above).
[[nodiscard]] std::uint64_t trialSeed(const CampaignSpec& spec,
                                      const Treatment& treatment,
                                      std::uint32_t rep);

}  // namespace blackdp::campaign
