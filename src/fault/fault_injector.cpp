#include "fault/fault_injector.hpp"

#include <utility>

#include "obs/trace.hpp"

namespace blackdp::fault {
namespace {

void traceFault(sim::Simulator& simulator, obs::FaultOp op,
                common::ClusterId cluster) {
  if (auto* tr = obs::Trace::active()) {
    tr->record({simulator.now().us(), obs::EventKind::kFault,
                static_cast<std::uint8_t>(op), 0, cluster.value()});
  }
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulator& simulator, sim::Rng rng,
                             FaultPlan plan)
    : simulator_{simulator}, rng_{rng}, plan_{std::move(plan)} {
  burstBad_.assign(plan_.burstLoss.size(), false);
}

void FaultInjector::install(net::WirelessMedium& medium,
                            net::Backbone& backbone) {
  medium.setFaultHook(this);
  backbone.setLinkFilter([this](common::ClusterId from, common::ClusterId to) {
    return linkUp(from, to);
  });
}

void FaultInjector::registerRsu(common::ClusterId cluster,
                                cluster::ClusterHead& head) {
  rsus_[cluster] = &head;
  scheduleRsuEvents(cluster);
}

void FaultInjector::scheduleRsuEvents(common::ClusterId cluster) {
  for (const RsuCrashEvent& event : plan_.rsuCrashes) {
    if (event.cluster != cluster) continue;
    simulator_.scheduleAt(event.at, [this, cluster] {
      if (const auto it = rsus_.find(cluster); it != rsus_.end()) {
        traceFault(simulator_, obs::FaultOp::kRsuCrash, cluster);
        it->second->crash();
        ++stats_.rsuCrashes;
      }
    });
    if (event.recoverAt) {
      simulator_.scheduleAt(*event.recoverAt, [this, cluster] {
        if (const auto it = rsus_.find(cluster); it != rsus_.end()) {
          traceFault(simulator_, obs::FaultOp::kRsuRecovery, cluster);
          it->second->recover();
          ++stats_.rsuRecoveries;
        }
      });
    }
  }
}

bool FaultInjector::linkUp(common::ClusterId from,
                           common::ClusterId to) const {
  const sim::TimePoint now = simulator_.now();
  for (const BackboneLinkDownEvent& event : plan_.backboneLinksDown) {
    if (now < event.from || now >= event.until) continue;
    if ((from == event.a && to == event.b) ||
        (from == event.b && to == event.a)) {
      return false;
    }
  }
  for (const BackbonePartitionEvent& event : plan_.backbonePartitions) {
    if (now < event.from || now >= event.until) continue;
    if ((from <= event.boundary) != (to <= event.boundary)) return false;
  }
  return true;
}

obs::DropCause FaultInjector::dropDelivery(
    common::NodeId /*sender*/, common::NodeId /*receiver*/,
    const mobility::Position& senderPos,
    const mobility::Position& receiverPos) {
  const sim::TimePoint now = simulator_.now();
  for (const JamZoneEvent& zone : plan_.jamZones) {
    if (now < zone.from || now >= zone.until) continue;
    const bool senderIn = senderPos.x >= zone.xMin && senderPos.x <= zone.xMax;
    const bool receiverIn =
        receiverPos.x >= zone.xMin && receiverPos.x <= zone.xMax;
    if (senderIn || receiverIn) {
      ++stats_.framesJammed;
      return obs::DropCause::kJam;
    }
  }
  bool lost = false;
  // Every active chain advances once per delivery decision (the channels are
  // independent processes); the frame is lost if any active chain says so.
  for (std::size_t i = 0; i < plan_.burstLoss.size(); ++i) {
    const BurstLossEvent& event = plan_.burstLoss[i];
    if (now < event.from || now >= event.until) continue;
    const GilbertElliott& ge = event.channel;
    bool bad = burstBad_[i];
    bad = bad ? !rng_.bernoulli(ge.pBadToGood) : rng_.bernoulli(ge.pGoodToBad);
    burstBad_[i] = bad;
    if (rng_.bernoulli(bad ? ge.lossBad : ge.lossGood)) lost = true;
  }
  if (!lost) return obs::DropCause::kNone;
  ++stats_.framesBurstLost;
  return obs::DropCause::kBurstLoss;
}

}  // namespace blackdp::fault
