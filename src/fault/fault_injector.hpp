// Fault injector.
//
// Replays a FaultPlan on the simulator clock: crashes and recovers registered
// RSUs at their scheduled instants, answers the backbone's link filter from
// the link-down / partition windows, and implements the medium's fault hook
// (jam zones checked first, then each active Gilbert–Elliott burst channel).
// All randomness comes from the injector's own named stream, so installing an
// injector with an empty plan — or none at all — leaves every other stream,
// and therefore the whole simulation, bit-for-bit unchanged.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/cluster_head.hpp"
#include "fault/fault_plan.hpp"
#include "net/backbone.hpp"
#include "net/medium.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace blackdp::fault {

struct FaultStats {
  std::uint64_t rsuCrashes{0};
  std::uint64_t rsuRecoveries{0};
  std::uint64_t framesJammed{0};      ///< per-receiver jam-zone drops
  std::uint64_t framesBurstLost{0};   ///< per-receiver Gilbert–Elliott drops
};

class FaultInjector final : public net::MediumFaultHook {
 public:
  FaultInjector(sim::Simulator& simulator, sim::Rng rng, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs the medium hook and the backbone link filter. The injector must
  /// outlive both (in scenarios it does: it is destroyed with the world).
  void install(net::WirelessMedium& medium, net::Backbone& backbone);

  /// Registers a cluster head for the plan's crash/recovery schedule. Events
  /// naming unregistered clusters are ignored (plans can be reused across
  /// topologies of different sizes).
  void registerRsu(common::ClusterId cluster, cluster::ClusterHead& head);

  /// Backbone link state at `now` (true = up). Exposed for tests; the
  /// backbone consults it through the installed filter.
  [[nodiscard]] bool linkUp(common::ClusterId from, common::ClusterId to) const;

  /// net::MediumFaultHook — one decision per (frame, receiver) delivery,
  /// attributing any drop to its fault (kJam or kBurstLoss).
  obs::DropCause dropDelivery(common::NodeId sender, common::NodeId receiver,
                              const mobility::Position& senderPos,
                              const mobility::Position& receiverPos) override;

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  void scheduleRsuEvents(common::ClusterId cluster);

  sim::Simulator& simulator_;
  sim::Rng rng_;
  FaultPlan plan_;
  FaultStats stats_;
  std::unordered_map<common::ClusterId, cluster::ClusterHead*> rsus_;
  /// One chain state per burst event; advanced transition-then-draw.
  std::vector<bool> burstBad_;
};

}  // namespace blackdp::fault
