// Scriptable fault plan.
//
// The paper's evaluation treats the infrastructure as perfect: RSUs never
// crash, the wired backbone never partitions, and the medium's only
// impairment is i.i.d. frame loss. A FaultPlan is a deterministic schedule of
// infrastructure faults — RSU crashes with optional recovery, backbone link
// cuts and range partitions, Gilbert–Elliott burst loss and jammed highway
// stretches — that a FaultInjector replays on the simulator clock. Plans are
// plain data so benches and tests can script identical fault sequences across
// treatments; an empty plan means the fault layer is not installed at all and
// every component behaves exactly as in the unfaulted build.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "sim/time.hpp"

namespace blackdp::fault {

/// Latest representable instant; events "until forever" use it.
[[nodiscard]] constexpr sim::TimePoint endOfTime() {
  return sim::TimePoint::fromUs(std::numeric_limits<std::int64_t>::max());
}

/// Two-state Gilbert–Elliott channel. The chain advances one step per
/// delivery decision; `lossGood`/`lossBad` are the per-delivery loss
/// probabilities in each state. With pGoodToBad = 0 this degenerates to the
/// medium's i.i.d. model at rate `lossGood`.
struct GilbertElliott {
  double pGoodToBad{0.01};
  double pBadToGood{0.25};
  double lossGood{0.0};
  double lossBad{0.9};

  /// Stationary mean loss rate (sanity metric for sweeps).
  [[nodiscard]] double meanLoss() const {
    const double denom = pGoodToBad + pBadToGood;
    if (denom <= 0.0) return lossGood;
    const double pBad = pGoodToBad / denom;
    return (1.0 - pBad) * lossGood + pBad * lossBad;
  }
};

/// RSU goes dark at `at`: off the air, off the backbone, soft state lost.
/// With `recoverAt` set it re-attaches (with an empty member table) there.
struct RsuCrashEvent {
  common::ClusterId cluster{};
  sim::TimePoint at{};
  std::optional<sim::TimePoint> recoverAt{};
};

/// One backbone link is cut (bidirectionally) during [from, until).
struct BackboneLinkDownEvent {
  common::ClusterId a{};
  common::ClusterId b{};
  sim::TimePoint from{};
  sim::TimePoint until{endOfTime()};
};

/// The backbone splits between cluster ranges during [from, until): clusters
/// with id <= boundary cannot exchange messages with clusters above it.
struct BackbonePartitionEvent {
  common::ClusterId boundary{};
  sim::TimePoint from{};
  sim::TimePoint until{endOfTime()};
};

/// Burst loss on the wireless medium during [from, until), driven by a
/// Gilbert–Elliott chain with its own deterministic state.
struct BurstLossEvent {
  GilbertElliott channel{};
  sim::TimePoint from{};
  sim::TimePoint until{endOfTime()};
};

/// A jammed stretch of road during [from, until): every frame whose sender
/// or receiver sits inside [xMin, xMax] at transmission time is lost.
struct JamZoneEvent {
  double xMin{0.0};
  double xMax{0.0};
  sim::TimePoint from{};
  sim::TimePoint until{endOfTime()};
};

/// A megacity shard process dies at the START of `epoch` (before running
/// it): its in-memory world is discarded and the ShardedSimulation
/// supervisor rebuilds it from the last snapshot, replaying the retained
/// epoch inboxes. Epoch-indexed, not clock-indexed, because shard crashes
/// are only observable at epoch barriers.
struct ShardCrashEvent {
  std::uint32_t epoch{0};
  std::uint32_t shard{0};
};

/// A corridor segment's RSU goes dark during epochs [fromEpoch, untilEpoch):
/// no digest broadcasts, no detector rounds, all received frames ignored.
/// Cross-segment envelopes (revocation gossip, migrations, handoffs) still
/// apply — the degraded-mode guarantee that neighbors keep isolating
/// confirmed black holes inside the dark segment.
struct SegmentRsuOutageEvent {
  std::uint32_t segment{0};
  std::uint32_t fromEpoch{0};
  std::uint32_t untilEpoch{0};
};

struct FaultPlan {
  std::vector<RsuCrashEvent> rsuCrashes;
  std::vector<BackboneLinkDownEvent> backboneLinksDown;
  std::vector<BackbonePartitionEvent> backbonePartitions;
  std::vector<BurstLossEvent> burstLoss;
  std::vector<JamZoneEvent> jamZones;
  std::vector<ShardCrashEvent> shardCrashes;
  std::vector<SegmentRsuOutageEvent> rsuOutages;

  [[nodiscard]] bool empty() const {
    return rsuCrashes.empty() && backboneLinksDown.empty() &&
           backbonePartitions.empty() && burstLoss.empty() &&
           jamZones.empty() && shardCrashes.empty() && rsuOutages.empty();
  }
};

}  // namespace blackdp::fault
