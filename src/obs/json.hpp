// Minimal JSON support for the observability exporters.
//
// The repo deliberately has no third-party JSON dependency; the exporters
// only ever need (a) escaped string / shortest-round-trip number output and
// (b) parsing of flat one-level objects (one JSONL trace line). Both live
// here. The parser rejects nesting — trace lines are flat by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace blackdp::obs {

/// Appends `s` as a quoted, escaped JSON string.
void appendJsonString(std::string& out, std::string_view s);

/// Appends a double using the shortest representation that round-trips
/// (std::to_chars); non-finite values become `null`.
void appendJsonNumber(std::string& out, double value);

void appendJsonNumber(std::string& out, std::uint64_t value);
void appendJsonNumber(std::string& out, std::int64_t value);

/// One parsed flat JSON object: string keys mapping to scalar values
/// (strings or numbers). Duplicate keys keep the last occurrence.
class FlatJsonObject {
 public:
  /// Parses `{"k": v, ...}` with scalar values only. Returns nullopt on any
  /// syntax error, nesting, or trailing garbage.
  [[nodiscard]] static std::optional<FlatJsonObject> parse(
      std::string_view text);

  [[nodiscard]] std::optional<std::string_view> string(
      std::string_view key) const;
  [[nodiscard]] std::optional<std::uint64_t> u64(std::string_view key) const;
  [[nodiscard]] std::optional<std::int64_t> i64(std::string_view key) const;
  [[nodiscard]] std::optional<double> number(std::string_view key) const;

 private:
  enum class FieldType : std::uint8_t { kString, kNumber };
  struct Field {
    std::string key;
    FieldType type;
    std::string text;  ///< unescaped string, or the raw numeric token
  };

  [[nodiscard]] const Field* find(std::string_view key) const;

  std::vector<Field> fields_;
};

}  // namespace blackdp::obs
