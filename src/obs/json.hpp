// Minimal JSON support for the observability exporters and readers.
//
// The repo deliberately has no third-party JSON dependency; this header
// holds (a) escaped string / shortest-round-trip number output, (b) a flat
// one-level object parser (one JSONL trace or manifest line — rejects
// nesting by construction), and (c) a small recursive-descent JsonValue
// reader for the few places that consume nested documents (campaign specs,
// embedded metrics snapshots).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace blackdp::obs {

/// Appends `s` as a quoted, escaped JSON string.
void appendJsonString(std::string& out, std::string_view s);

/// Appends a double using the shortest representation that round-trips
/// (std::to_chars); non-finite values become `null`.
void appendJsonNumber(std::string& out, double value);

void appendJsonNumber(std::string& out, std::uint64_t value);
void appendJsonNumber(std::string& out, std::int64_t value);

/// One parsed flat JSON object: string keys mapping to scalar values
/// (strings or numbers). Duplicate keys keep the last occurrence.
class FlatJsonObject {
 public:
  /// Parses `{"k": v, ...}` with scalar values only. Returns nullopt on any
  /// syntax error, nesting, or trailing garbage.
  [[nodiscard]] static std::optional<FlatJsonObject> parse(
      std::string_view text);

  [[nodiscard]] std::optional<std::string_view> string(
      std::string_view key) const;
  [[nodiscard]] std::optional<std::uint64_t> u64(std::string_view key) const;
  [[nodiscard]] std::optional<std::int64_t> i64(std::string_view key) const;
  [[nodiscard]] std::optional<double> number(std::string_view key) const;

 private:
  enum class FieldType : std::uint8_t { kString, kNumber };
  struct Field {
    std::string key;
    FieldType type;
    std::string text;  ///< unescaped string, or the raw numeric token
  };

  [[nodiscard]] const Field* find(std::string_view key) const;

  std::vector<Field> fields_;
};

/// One parsed JSON value of any shape (recursive-descent reader). Object
/// members preserve document order; a duplicate key keeps the last
/// occurrence. Numbers keep their raw token so 64-bit integers survive the
/// round-trip exactly. Nesting is capped at 64 levels.
class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  /// Parses one complete document (trailing garbage rejected). Returns
  /// nullopt on any syntax error.
  [[nodiscard]] static std::optional<JsonValue> parse(std::string_view text);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool isNull() const { return type_ == Type::kNull; }
  [[nodiscard]] bool isBool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool isNumber() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool isString() const { return type_ == Type::kString; }
  [[nodiscard]] bool isArray() const { return type_ == Type::kArray; }
  [[nodiscard]] bool isObject() const { return type_ == Type::kObject; }

  /// false for non-bool values.
  [[nodiscard]] bool asBool() const {
    return type_ == Type::kBool && bool_;
  }
  /// nullopt unless the value is a number (and, for the integer accessors,
  /// the token is an in-range integer).
  [[nodiscard]] std::optional<double> asNumber() const;
  [[nodiscard]] std::optional<std::uint64_t> asU64() const;
  [[nodiscard]] std::optional<std::int64_t> asI64() const;
  /// Empty for non-string values.
  [[nodiscard]] const std::string& asString() const { return scalar_; }

  /// Array elements (empty for non-arrays).
  [[nodiscard]] const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in document order (empty for non-objects).
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const {
    return members_;
  }
  /// Member lookup on an object; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

 private:
  Type type_{Type::kNull};
  bool bool_{false};
  std::string scalar_;  ///< unescaped string, or the raw numeric token
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace blackdp::obs
