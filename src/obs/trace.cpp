#include "obs/trace.hpp"

namespace blackdp::obs {

thread_local TraceRecorder* Trace::recorder_ = nullptr;

std::string_view toString(EventKind kind) {
  switch (kind) {
    case EventKind::kFrameTx: return "frame-tx";
    case EventKind::kFrameRx: return "frame-rx";
    case EventKind::kFrameDrop: return "frame-drop";
    case EventKind::kFrameSendFailed: return "frame-send-failed";
    case EventKind::kBackboneTx: return "backbone-tx";
    case EventKind::kBackboneRx: return "backbone-rx";
    case EventKind::kBackboneDrop: return "backbone-drop";
    case EventKind::kAodv: return "aodv";
    case EventKind::kVerifier: return "verifier";
    case EventKind::kDetector: return "detector";
    case EventKind::kChTable: return "ch-table";
    case EventKind::kFault: return "fault";
    case EventKind::kSimRun: return "sim-run";
    case EventKind::kParallel: return "parallel";
    case EventKind::kShard: return "shard";
  }
  return "?";
}

std::string_view toString(DropCause cause) {
  switch (cause) {
    case DropCause::kNone: return "none";
    case DropCause::kRandomLoss: return "random-loss";
    case DropCause::kBurstLoss: return "burst-loss";
    case DropCause::kJam: return "jam";
    case DropCause::kLinkCut: return "link-cut";
    case DropCause::kDeadEndpoint: return "dead-endpoint";
    case DropCause::kSenderCrashed: return "sender-crashed";
    case DropCause::kUnreachable: return "unreachable";
  }
  return "?";
}

std::string_view toString(AodvOp op) {
  switch (op) {
    case AodvOp::kDiscoveryStart: return "discovery-start";
    case AodvOp::kRreqFlood: return "rreq-flood";
    case AodvOp::kRrepReceived: return "rrep-received";
    case AodvOp::kDiscoverySucceeded: return "discovery-succeeded";
    case AodvOp::kDiscoveryFailed: return "discovery-failed";
  }
  return "?";
}

std::string_view toString(VerifierOp op) {
  switch (op) {
    case VerifierOp::kRoundStarted: return "round-started";
    case VerifierOp::kRrepChosen: return "rrep-chosen";
    case VerifierOp::kHelloSent: return "hello-sent";
    case VerifierOp::kHelloTimeout: return "hello-timeout";
    case VerifierOp::kSuspected: return "suspected";
    case VerifierOp::kDreqSent: return "dreq-sent";
    case VerifierOp::kDreqSendFailed: return "dreq-send-failed";
    case VerifierOp::kLocalQuarantine: return "local-quarantine";
    case VerifierOp::kVerdictReceived: return "verdict-received";
    case VerifierOp::kFinished: return "finished";
  }
  return "?";
}

std::string_view toString(DetectorOp op) {
  switch (op) {
    case DetectorOp::kDreqReceived: return "dreq-received";
    case DetectorOp::kDreqRejected: return "dreq-rejected";
    case DetectorOp::kDreqDeduplicated: return "dreq-deduplicated";
    case DetectorOp::kSessionOpened: return "session-opened";
    case DetectorOp::kSessionForwarded: return "session-forwarded";
    case DetectorOp::kSessionAdopted: return "session-adopted";
    case DetectorOp::kAdoptedDegraded: return "adopted-degraded";
    case DetectorOp::kProbeSent: return "probe-sent";
    case DetectorOp::kProbeReply: return "probe-reply";
    case DetectorOp::kProbeTimeout: return "probe-timeout";
    case DetectorOp::kVerdict: return "verdict";
    case DetectorOp::kIsolated: return "isolated";
    case DetectorOp::kResultRelayed: return "result-relayed";
    case DetectorOp::kDreqRateLimited: return "dreq-rate-limited";
    case DetectorOp::kDreqReplayed: return "dreq-replayed";
    case DetectorOp::kProbeViolation: return "probe-violation";
    case DetectorOp::kExonerated: return "exonerated";
    case DetectorOp::kReporterDemerited: return "reporter-demerited";
    case DetectorOp::kReporterQuarantined: return "reporter-quarantined";
  }
  return "?";
}

std::string_view toString(ChTableOp op) {
  switch (op) {
    case ChTableOp::kMemberJoined: return "member-joined";
    case ChTableOp::kMemberLeft: return "member-left";
    case ChTableOp::kRevocationApplied: return "revocation-applied";
    case ChTableOp::kCrashed: return "crashed";
    case ChTableOp::kRecovered: return "recovered";
    case ChTableOp::kVerificationInsert: return "verification-insert";
    case ChTableOp::kVerificationMerge: return "verification-merge";
    case ChTableOp::kVerificationErase: return "verification-erase";
    case ChTableOp::kVerificationExpired: return "verification-expired";
  }
  return "?";
}

std::string_view toString(FaultOp op) {
  switch (op) {
    case FaultOp::kRsuCrash: return "rsu-crash";
    case FaultOp::kRsuRecovery: return "rsu-recovery";
  }
  return "?";
}

std::string_view toString(SimRunOp op) {
  switch (op) {
    case SimRunOp::kRunBegin: return "run-begin";
    case SimRunOp::kRunEnd: return "run-end";
  }
  return "?";
}

std::string_view toString(ParallelOp op) {
  switch (op) {
    case ParallelOp::kWorkerFailure: return "worker-failure";
  }
  return "?";
}

std::string_view toString(ShardOp op) {
  switch (op) {
    case ShardOp::kEpochRun: return "epoch-run";
    case ShardOp::kExchange: return "exchange";
  }
  return "?";
}

std::string_view opName(EventKind kind, std::uint8_t op) {
  switch (kind) {
    case EventKind::kFrameTx:
    case EventKind::kFrameRx:
      return "";
    case EventKind::kFrameDrop:
    case EventKind::kFrameSendFailed:
    case EventKind::kBackboneDrop:
      return toString(static_cast<DropCause>(op));
    case EventKind::kBackboneTx:
    case EventKind::kBackboneRx:
      return "";
    case EventKind::kAodv: return toString(static_cast<AodvOp>(op));
    case EventKind::kVerifier: return toString(static_cast<VerifierOp>(op));
    case EventKind::kDetector: return toString(static_cast<DetectorOp>(op));
    case EventKind::kChTable: return toString(static_cast<ChTableOp>(op));
    case EventKind::kFault: return toString(static_cast<FaultOp>(op));
    case EventKind::kSimRun: return toString(static_cast<SimRunOp>(op));
    case EventKind::kParallel: return toString(static_cast<ParallelOp>(op));
    case EventKind::kShard: return toString(static_cast<ShardOp>(op));
  }
  return "";
}

}  // namespace blackdp::obs
