// Named metrics: counters, gauges, fixed-bucket histograms.
//
// A MetricsRegistry is a passive container a bench or scenario owns; the
// instrumented code never sees it. At the end of a run the owner folds
// whatever it measured (medium/backbone stats, confusion matrices, stage
// latencies) into one registry and snapshots it to JSON — that snapshot is
// the `BENCH_<name>.json` contract CI validates.
//
// Names are dotted paths ("medium.frames_sent", "detect.latency.total_ms").
// Lookups create on first use; metric handles stay valid for the registry's
// lifetime (std::map storage — no reallocation).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace blackdp::metrics {
class ConfusionMatrix;
class RunningStat;
}  // namespace blackdp::metrics

namespace blackdp::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_{0};
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_{0.0};
};

/// Immutable copy of a registry's state, serialisable to JSON.
struct Snapshot {
  struct HistogramData {
    std::vector<double> edges;
    std::vector<std::uint64_t> counts;
    std::uint64_t count{0};
    double sum{0.0};
    double min{0.0};
    double max{0.0};
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Renders `{"counters": {...}, "gauges": {...}, "histograms": {...}}`
  /// pretty-printed at `indent` leading spaces per level, starting the
  /// opening brace at the current position.
  [[nodiscard]] std::string toJson(int indent = 2) const;
};

/// Fixed-bucket histogram. Bucket i counts observations with
/// value <= edges[i] (and > edges[i-1]); one implicit overflow bucket
/// collects everything above the last edge, so counts().size() ==
/// edges().size() + 1.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upperEdges);

  void observe(double value);

  /// Adds a snapshotted histogram bucket-wise; `data.edges` must equal this
  /// histogram's edges.
  void mergeFrom(const Snapshot::HistogramData& data);

  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  /// 0 when empty.
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_{0};
  double sum_{0.0};
  double min_{0.0};
  double max_{0.0};
};

class MetricsRegistry {
 public:
  /// Returns the named counter, creating it on first use.
  Counter& counter(std::string_view name);
  /// Returns the named gauge, creating it on first use.
  Gauge& gauge(std::string_view name);
  /// Returns the named histogram, creating it with `upperEdges` on first
  /// use; later calls ignore the edges argument and return the existing one.
  Histogram& histogram(std::string_view name, std::vector<double> upperEdges);

  /// Folds another registry's snapshot in: counters add, gauges overwrite
  /// (last writer wins, matching what re-running the producing code against
  /// this registry would do), histograms add bucket-wise (edges of
  /// same-named histograms must match). This is how the parallel trial
  /// runner merges per-trial registries — always in submission order, so
  /// the merged result is independent of the worker count.
  void merge(const Snapshot& other);

  [[nodiscard]] Snapshot snapshot() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Canonical byte form of a Snapshot (checkpoints). Doubles are written as
/// their IEEE-754 bit patterns, so serialize -> deserialize -> merge into an
/// empty registry reproduces the original snapshot byte-for-byte.
void serializeSnapshot(const Snapshot& snapshot, common::ByteWriter& writer);

/// Inverse of serializeSnapshot. Throws std::out_of_range on truncation.
[[nodiscard]] Snapshot deserializeSnapshot(common::ByteReader& reader);

/// Folds a confusion matrix in under `prefix`: raw cell counters
/// (`<prefix>.tp` ...) plus derived-rate gauges (`<prefix>.accuracy` ...).
void addConfusion(MetricsRegistry& registry, std::string_view prefix,
                  const metrics::ConfusionMatrix& matrix);

/// Folds a RunningStat in under `prefix`: a `<prefix>.count` counter plus
/// mean/min/max/stddev/ci95 gauges.
void addRunningStat(MetricsRegistry& registry, std::string_view prefix,
                    const metrics::RunningStat& stat);

/// The shared bucket edges (milliseconds) for every per-stage
/// detection-latency histogram, so stage histograms are comparable across
/// benches: 1,2,5 decades from 1 ms to 10 s.
[[nodiscard]] const std::vector<double>& latencyBucketsMs();

}  // namespace blackdp::obs
