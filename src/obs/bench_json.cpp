#include "obs/bench_json.hpp"

#include <cstdlib>
#include <fstream>

#include "common/logging.hpp"
#include "obs/json.hpp"

namespace blackdp::obs {

std::string benchJson(std::string_view name, const Snapshot& snapshot) {
  std::string out;
  out += "{\n  \"bench\": ";
  appendJsonString(out, name);
  out += ",\n  \"schema_version\": ";
  appendJsonNumber(out, static_cast<std::int64_t>(kBenchJsonSchemaVersion));
  out += ",\n  \"metrics\": ";

  // Re-indent the snapshot body under the "metrics" key.
  const std::string body = snapshot.toJson();
  for (std::size_t i = 0; i < body.size(); ++i) {
    out.push_back(body[i]);
    if (body[i] == '\n' && i + 1 < body.size()) out += "  ";
  }
  out += "\n}\n";
  return out;
}

std::string writeBenchJson(std::string_view name, const Snapshot& snapshot,
                           std::string_view outDir) {
  std::string dir{outDir};
  if (dir.empty()) {
    if (const char* env = std::getenv("BLACKDP_BENCH_OUT")) dir = env;
  }
  if (dir.empty()) dir = ".";

  std::string path = dir;
  if (path.back() != '/') path += '/';
  path += "BENCH_";
  path += name;
  path += ".json";

  std::ofstream os{path};
  if (!os) {
    BDP_LOG(kWarn, "obs") << "cannot write " << path;
    return {};
  }
  os << benchJson(name, snapshot);
  if (!os) {
    BDP_LOG(kWarn, "obs") << "short write to " << path;
    return {};
  }
  BDP_LOG(kInfo, "obs") << "wrote " << path;
  return path;
}

}  // namespace blackdp::obs
