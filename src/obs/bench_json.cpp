#include "obs/bench_json.hpp"

#include <cstdlib>
#include <fstream>
#include <string_view>

#include "common/logging.hpp"
#include "obs/json.hpp"

namespace blackdp::obs {
namespace {

/// Total medium deliveries recorded in the snapshot: the canonical
/// "medium.frames_delivered" counter plus any prefixed variants a bench
/// folded in per treatment.
std::uint64_t framesDeliveredIn(const Snapshot& snapshot) {
  constexpr std::string_view kSuffix = "frames_delivered";
  std::uint64_t total = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.size() < kSuffix.size()) continue;
    const std::string_view tail =
        std::string_view{name}.substr(name.size() - kSuffix.size());
    if (tail != kSuffix) continue;
    // Accept "frames_delivered" itself or any dotted prefix of it.
    if (name.size() > kSuffix.size() &&
        name[name.size() - kSuffix.size() - 1] != '.') {
      continue;
    }
    total += value;
  }
  return total;
}

}  // namespace

std::string benchJson(std::string_view name, const Snapshot& snapshot,
                      const BenchRunInfo& info) {
  const std::uint64_t frames = info.framesDelivered != 0
                                   ? info.framesDelivered
                                   : framesDeliveredIn(snapshot);
  const double fps = info.wallClockSeconds > 0.0
                         ? static_cast<double>(frames) / info.wallClockSeconds
                         : 0.0;

  std::string out;
  out += "{\n  \"bench\": ";
  appendJsonString(out, name);
  out += ",\n  \"schema_version\": ";
  appendJsonNumber(out, static_cast<std::int64_t>(kBenchJsonSchemaVersion));
  out += ",\n  \"wall_clock_seconds\": ";
  appendJsonNumber(out, info.wallClockSeconds);
  out += ",\n  \"throughput\": {\n    \"frames_delivered\": ";
  appendJsonNumber(out, frames);
  out += ",\n    \"frames_per_second\": ";
  appendJsonNumber(out, fps);
  if (info.allocationsPerFrame >= 0.0) {
    out += ",\n    \"allocations_per_frame\": ";
    appendJsonNumber(out, info.allocationsPerFrame);
  }
  out += "\n  },\n  ";
  for (const BenchExtraSection& extra : info.extras) {
    if (extra.key.empty() || extra.json.empty()) continue;
    appendJsonString(out, extra.key);
    out += ": ";
    out += extra.json;
    out += ",\n  ";
  }
  out += "\"metrics\": ";

  // Re-indent the snapshot body under the "metrics" key.
  const std::string body = snapshot.toJson();
  for (std::size_t i = 0; i < body.size(); ++i) {
    out.push_back(body[i]);
    if (body[i] == '\n' && i + 1 < body.size()) out += "  ";
  }
  out += "\n}\n";
  return out;
}

std::string writeBenchJson(std::string_view name, const Snapshot& snapshot,
                           const BenchRunInfo& info, std::string_view outDir) {
  std::string dir{outDir};
  if (dir.empty()) {
    // Temporary + move assignment sidesteps a GCC 12 -Wrestrict false
    // positive (PR 105329) on char* assignment after inlining.
    const char* env = std::getenv("BLACKDP_BENCH_OUT");
    dir = std::string{env != nullptr && *env != '\0' ? env : "."};
  }

  std::string path = dir;
  if (path.back() != '/') path += '/';
  path += "BENCH_";
  path += name;
  path += ".json";

  std::ofstream os{path};
  if (!os) {
    BDP_LOG(kWarn, "obs") << "cannot write " << path;
    return {};
  }
  os << benchJson(name, snapshot, info);
  if (!os) {
    BDP_LOG(kWarn, "obs") << "short write to " << path;
    return {};
  }
  BDP_LOG(kInfo, "obs") << "wrote " << path;
  return path;
}

}  // namespace blackdp::obs
