#include "obs/registry.hpp"

#include <bit>
#include <utility>

#include "common/assert.hpp"
#include "metrics/confusion.hpp"
#include "metrics/stats.hpp"
#include "obs/json.hpp"

namespace blackdp::obs {
namespace {

void appendIndent(std::string& out, int spaces) {
  out.append(static_cast<std::size_t>(spaces), ' ');
}

}  // namespace

Histogram::Histogram(std::vector<double> upperEdges)
    : edges_{std::move(upperEdges)}, counts_(edges_.size() + 1, 0) {}

void Histogram::observe(double value) {
  std::size_t bucket = edges_.size();  // overflow unless an edge holds it
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (value <= edges_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  sum_ += value;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
}

void Histogram::mergeFrom(const Snapshot::HistogramData& data) {
  BDP_ASSERT_MSG(data.edges == edges_, "merging histograms with different "
                                       "bucket edges");
  if (data.count == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += data.counts[i];
  if (count_ == 0 || data.min < min_) min_ = data.min;
  if (count_ == 0 || data.max > max_) max_ = data.max;
  count_ += data.count;
  sum_ += data.sum;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string{name}, Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string{name}, Gauge{}).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upperEdges) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string{name}, Histogram{std::move(upperEdges)})
             .first;
  }
  return it->second;
}

void MetricsRegistry::merge(const Snapshot& other) {
  for (const auto& [name, value] : other.counters) counter(name).add(value);
  for (const auto& [name, value] : other.gauges) gauge(name).set(value);
  for (const auto& [name, data] : other.histograms) {
    Histogram& hist = histogram(name, data.edges);
    hist.mergeFrom(data);
  }
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter.value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge.value());
  }
  for (const auto& [name, hist] : histograms_) {
    Snapshot::HistogramData data;
    data.edges = hist.edges();
    data.counts = hist.counts();
    data.count = hist.count();
    data.sum = hist.sum();
    data.min = hist.min();
    data.max = hist.max();
    snap.histograms.emplace(name, std::move(data));
  }
  return snap;
}

std::string Snapshot::toJson(int indent) const {
  std::string out;
  const int l1 = indent;
  const int l2 = indent * 2;
  const int l3 = indent * 3;

  out += "{\n";
  appendIndent(out, l1);
  out += "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    appendIndent(out, l2);
    appendJsonString(out, name);
    out += ": ";
    appendJsonNumber(out, value);
  }
  if (!first) {
    out += "\n";
    appendIndent(out, l1);
  }
  out += "},\n";

  appendIndent(out, l1);
  out += "\"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    appendIndent(out, l2);
    appendJsonString(out, name);
    out += ": ";
    appendJsonNumber(out, value);
  }
  if (!first) {
    out += "\n";
    appendIndent(out, l1);
  }
  out += "},\n";

  appendIndent(out, l1);
  out += "\"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    appendIndent(out, l2);
    appendJsonString(out, name);
    out += ": {\n";

    appendIndent(out, l3);
    out += "\"edges\": [";
    for (std::size_t i = 0; i < hist.edges.size(); ++i) {
      if (i != 0) out += ", ";
      appendJsonNumber(out, hist.edges[i]);
    }
    out += "],\n";

    appendIndent(out, l3);
    out += "\"counts\": [";
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      if (i != 0) out += ", ";
      appendJsonNumber(out, hist.counts[i]);
    }
    out += "],\n";

    appendIndent(out, l3);
    out += "\"count\": ";
    appendJsonNumber(out, hist.count);
    out += ",\n";
    appendIndent(out, l3);
    out += "\"sum\": ";
    appendJsonNumber(out, hist.sum);
    out += ",\n";
    appendIndent(out, l3);
    out += "\"min\": ";
    appendJsonNumber(out, hist.min);
    out += ",\n";
    appendIndent(out, l3);
    out += "\"max\": ";
    appendJsonNumber(out, hist.max);
    out += "\n";

    appendIndent(out, l2);
    out += "}";
  }
  if (!first) {
    out += "\n";
    appendIndent(out, l1);
  }
  out += "}\n";
  out += "}";
  return out;
}

namespace {

// Doubles travel as IEEE-754 bit patterns: a snapshot restored from bytes
// must merge into an empty registry byte-for-byte, and a decimal detour
// would round histogram sums.
void writeF64(common::ByteWriter& w, double v) {
  w.writeU64(std::bit_cast<std::uint64_t>(v));
}

double readF64(common::ByteReader& r) {
  return std::bit_cast<double>(r.readU64());
}

}  // namespace

void serializeSnapshot(const Snapshot& snapshot, common::ByteWriter& writer) {
  writer.writeU32(static_cast<std::uint32_t>(snapshot.counters.size()));
  for (const auto& [name, value] : snapshot.counters) {
    writer.writeString(name);
    writer.writeU64(value);
  }
  writer.writeU32(static_cast<std::uint32_t>(snapshot.gauges.size()));
  for (const auto& [name, value] : snapshot.gauges) {
    writer.writeString(name);
    writeF64(writer, value);
  }
  writer.writeU32(static_cast<std::uint32_t>(snapshot.histograms.size()));
  for (const auto& [name, hist] : snapshot.histograms) {
    writer.writeString(name);
    writer.writeU32(static_cast<std::uint32_t>(hist.edges.size()));
    for (double edge : hist.edges) writeF64(writer, edge);
    writer.writeU32(static_cast<std::uint32_t>(hist.counts.size()));
    for (std::uint64_t count : hist.counts) writer.writeU64(count);
    writer.writeU64(hist.count);
    writeF64(writer, hist.sum);
    writeF64(writer, hist.min);
    writeF64(writer, hist.max);
  }
}

Snapshot deserializeSnapshot(common::ByteReader& reader) {
  Snapshot snapshot;
  const std::uint32_t counters = reader.readU32();
  for (std::uint32_t i = 0; i < counters; ++i) {
    const std::string name = reader.readString();
    snapshot.counters.emplace(name, reader.readU64());
  }
  const std::uint32_t gauges = reader.readU32();
  for (std::uint32_t i = 0; i < gauges; ++i) {
    const std::string name = reader.readString();
    snapshot.gauges.emplace(name, readF64(reader));
  }
  const std::uint32_t histograms = reader.readU32();
  for (std::uint32_t i = 0; i < histograms; ++i) {
    const std::string name = reader.readString();
    Snapshot::HistogramData data;
    const std::uint32_t edges = reader.readU32();
    data.edges.reserve(edges);
    for (std::uint32_t j = 0; j < edges; ++j) {
      data.edges.push_back(readF64(reader));
    }
    const std::uint32_t counts = reader.readU32();
    data.counts.reserve(counts);
    for (std::uint32_t j = 0; j < counts; ++j) {
      data.counts.push_back(reader.readU64());
    }
    data.count = reader.readU64();
    data.sum = readF64(reader);
    data.min = readF64(reader);
    data.max = readF64(reader);
    snapshot.histograms.emplace(name, std::move(data));
  }
  return snapshot;
}

void addConfusion(MetricsRegistry& registry, std::string_view prefix,
                  const metrics::ConfusionMatrix& matrix) {
  const std::string base{prefix};
  registry.counter(base + ".tp").add(matrix.tp());
  registry.counter(base + ".fp").add(matrix.fp());
  registry.counter(base + ".tn").add(matrix.tn());
  registry.counter(base + ".fn").add(matrix.fn());
  registry.gauge(base + ".accuracy").set(matrix.accuracy());
  registry.gauge(base + ".precision").set(matrix.precision());
  registry.gauge(base + ".recall").set(matrix.recall());
  registry.gauge(base + ".false_positive_rate")
      .set(matrix.falsePositiveRate());
  registry.gauge(base + ".false_negative_rate")
      .set(matrix.falseNegativeRate());
}

void addRunningStat(MetricsRegistry& registry, std::string_view prefix,
                    const metrics::RunningStat& stat) {
  const std::string base{prefix};
  registry.counter(base + ".count").add(stat.count());
  registry.gauge(base + ".mean").set(stat.mean());
  registry.gauge(base + ".min").set(stat.min());
  registry.gauge(base + ".max").set(stat.max());
  registry.gauge(base + ".stddev").set(stat.stddev());
  registry.gauge(base + ".ci95").set(stat.ci95());
}

const std::vector<double>& latencyBucketsMs() {
  static const std::vector<double> kEdges{1.0,   2.0,   5.0,    10.0,   20.0,
                                          50.0,  100.0, 200.0,  500.0,  1000.0,
                                          2000.0, 5000.0, 10000.0};
  return kEdges;
}

}  // namespace blackdp::obs
