// Trace exporters and the JSONL reader.
//
// Two on-disk formats:
//  - JSONL: one flat object per event, lossless (reads back equal), the
//    format trace_report consumes.
//  - Chrome trace_event: a JSON array of instant events loadable in
//    chrome://tracing / Perfetto; ts is the simulated microsecond, tid the
//    emitting node. Export-only.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace_event.hpp"

namespace blackdp::obs {

/// One compact JSON object (no trailing newline). Zero-valued generic
/// slots and empty details are omitted; parsing restores the defaults, so
/// toJsonLine/parseJsonLine round-trip exactly.
[[nodiscard]] std::string toJsonLine(const TraceEvent& event);

/// Inverse of toJsonLine. Nullopt on syntax errors, unknown kind/op names,
/// or missing required fields ("t", "kind").
[[nodiscard]] std::optional<TraceEvent> parseJsonLine(std::string_view line);

/// Writes one JSONL line per event.
void writeJsonl(const std::vector<TraceEvent>& events, std::ostream& os);

/// Reads a JSONL stream, skipping blank lines. Throws std::runtime_error
/// naming the 1-based line number of the first malformed line.
[[nodiscard]] std::vector<TraceEvent> readJsonl(std::istream& is);

/// Writes a Chrome trace_event JSON document (array-of-events form).
void writeChromeTrace(const std::vector<TraceEvent>& events, std::ostream& os);

/// Reverse lookups used by the JSONL reader (exposed for tests).
[[nodiscard]] std::optional<EventKind> kindFromString(std::string_view name);
[[nodiscard]] std::optional<std::uint8_t> opFromName(EventKind kind,
                                                     std::string_view name);

}  // namespace blackdp::obs
