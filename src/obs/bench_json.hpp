// The BENCH_<name>.json contract.
//
// Every bench funnels its results into a MetricsRegistry and ends with one
// writeBenchJson call; CI validates the emitted file against
// scripts/validate_bench_json.py and archives it. Schema (version 1):
//
//   {
//     "bench": "<name>",
//     "schema_version": 1,
//     "metrics": { "counters": {...}, "gauges": {...}, "histograms": {...} }
//   }
#pragma once

#include <string>
#include <string_view>

#include "obs/registry.hpp"

namespace blackdp::obs {

inline constexpr int kBenchJsonSchemaVersion = 1;

/// Renders the full document for `snapshot` under bench `name`.
[[nodiscard]] std::string benchJson(std::string_view name,
                                    const Snapshot& snapshot);

/// Writes `BENCH_<name>.json` into `outDir` and returns its path. The
/// directory is taken from the BLACKDP_BENCH_OUT environment variable when
/// `outDir` is empty, falling back to the current directory. Returns an
/// empty string (after logging a warning) when the file cannot be written —
/// benches still print their tables either way.
std::string writeBenchJson(std::string_view name, const Snapshot& snapshot,
                           std::string_view outDir = {});

}  // namespace blackdp::obs
