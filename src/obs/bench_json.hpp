// The BENCH_<name>.json contract.
//
// Every bench funnels its results into a MetricsRegistry and ends with one
// writeBenchJson call; CI validates the emitted file against
// scripts/validate_bench_json.py and archives it. Schema (version 2):
//
//   {
//     "bench": "<name>",
//     "schema_version": 2,
//     "wall_clock_seconds": <real elapsed time of the bench process>,
//     "throughput": {
//       "frames_delivered": <total medium deliveries across all trials>,
//       "frames_per_second": <frames_delivered / wall_clock_seconds>,
//       "allocations_per_frame": <heap allocs per delivered frame; only
//                                 present when the bench measured it>
//     },
//     "metrics": { "counters": {...}, "gauges": {...}, "histograms": {...} }
//   }
//
// The "metrics" subtree is fully deterministic (seeded trials, merged in
// submission order — identical for any --jobs value); wall clock and
// throughput are the one machine-dependent sidecar, kept top-level so
// determinism checks and bench_compare.py can treat them separately.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/registry.hpp"

namespace blackdp::obs {

inline constexpr int kBenchJsonSchemaVersion = 2;

/// One pre-rendered machine-dependent top-level section of the document.
struct BenchExtraSection {
  std::string key;   ///< top-level JSON key, e.g. "sharding"
  std::string json;  ///< pre-rendered JSON value
};

/// The non-deterministic sidecar of a bench run: real elapsed time and the
/// simulated work done in it. With framesDelivered == 0 the writer derives
/// the total from the snapshot's "*.frames_delivered" counters, so benches
/// that fold medium stats get throughput for free.
struct BenchRunInfo {
  double wallClockSeconds{0.0};
  std::uint64_t framesDelivered{0};
  /// Heap allocations per delivered frame in the measured steady-state span,
  /// from the common/alloc_hook counters. Negative means "not measured" and
  /// the field is omitted from the JSON.
  double allocationsPerFrame{-1.0};
  /// Optional extra machine-dependent top-level sections, emitted between
  /// "throughput" and "metrics" in order as `"<key>": <json>`. `json` must
  /// be a pre-rendered JSON value (usually an object); bench/megacity emits
  /// its "sharding" and "fault_tolerance" sidecars this way.
  std::vector<BenchExtraSection> extras;

  BenchRunInfo& addExtra(std::string key, std::string json) {
    extras.push_back({std::move(key), std::move(json)});
    return *this;
  }
};

/// Steady-clock stopwatch; benches start one at the top of main and hand
/// `timer.info()` (or `timer.info(framesDelivered)`) to writeBenchJson.
class BenchTimer {
 public:
  BenchTimer() : start_{std::chrono::steady_clock::now()} {}

  [[nodiscard]] double elapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  [[nodiscard]] BenchRunInfo info(std::uint64_t framesDelivered = 0) const {
    BenchRunInfo out;
    out.wallClockSeconds = elapsedSeconds();
    out.framesDelivered = framesDelivered;
    return out;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Renders the full document for `snapshot` under bench `name`.
[[nodiscard]] std::string benchJson(std::string_view name,
                                    const Snapshot& snapshot,
                                    const BenchRunInfo& info = {});

/// Writes `BENCH_<name>.json` into `outDir` and returns its path. The
/// directory is taken from the BLACKDP_BENCH_OUT environment variable when
/// `outDir` is empty, falling back to the current directory. Returns an
/// empty string (after logging a warning) when the file cannot be written —
/// benches still print their tables either way.
std::string writeBenchJson(std::string_view name, const Snapshot& snapshot,
                           const BenchRunInfo& info = {},
                           std::string_view outDir = {});

}  // namespace blackdp::obs
