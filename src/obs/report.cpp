#include "obs/report.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <ostream>

namespace blackdp::obs {
namespace {

std::string eventLabel(const TraceEvent& event) {
  std::string label{toString(event.kind)};
  const std::string_view op = opName(event.kind, event.op);
  if (!op.empty()) {
    label += '/';
    label += op;
  }
  if ((event.kind == EventKind::kDetector &&
       (event.op == static_cast<std::uint8_t>(DetectorOp::kProbeSent) ||
        event.op == static_cast<std::uint8_t>(DetectorOp::kProbeReply) ||
        event.op == static_cast<std::uint8_t>(DetectorOp::kProbeTimeout) ||
        event.op == static_cast<std::uint8_t>(DetectorOp::kProbeViolation)))) {
    label += " #" + std::to_string(event.value);
  }
  if (event.kind == EventKind::kDetector &&
      (event.op == static_cast<std::uint8_t>(DetectorOp::kReporterDemerited) ||
       event.op ==
           static_cast<std::uint8_t>(DetectorOp::kReporterQuarantined) ||
       event.op == static_cast<std::uint8_t>(DetectorOp::kDreqRateLimited) ||
       event.op == static_cast<std::uint8_t>(DetectorOp::kDreqReplayed))) {
    label += " reporter=" + std::to_string(event.b);
  }
  if (!event.detail.empty()) {
    label += " (" + event.detail + ")";
  }
  return label;
}

std::string formatMs(std::int64_t us) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%.3f",
                static_cast<double>(us) / 1000.0);
  return std::string{buf.data()};
}

void printStage(std::ostream& os, const char* name, std::int64_t fromUs,
                std::int64_t toUs, bool& any) {
  if (fromUs < 0 || toUs < 0) return;
  os << (any ? ", " : "  stage latencies: ") << name << ' '
     << formatMs(toUs - fromUs) << " ms";
  any = true;
}

}  // namespace

TraceReport buildReport(const std::vector<TraceEvent>& events) {
  TraceReport report;
  report.eventCount = events.size();
  if (!events.empty()) {
    report.firstUs = events.front().atUs;
    report.lastUs = events.back().atUs;
  }

  std::map<std::uint64_t, SessionTimeline> sessions;
  // Reporter-side verifier events, keyed by suspect address; a session's
  // prologue is stitched in from these after the CH-side pass.
  std::map<std::uint64_t, std::vector<const TraceEvent*>> verifierBySuspect;

  for (const auto& event : events) {
    ++report.eventsByKind[std::string{toString(event.kind)}];
    if (event.kind == EventKind::kFrameDrop ||
        event.kind == EventKind::kBackboneDrop) {
      ++report.dropsByCause[std::string{
          toString(static_cast<DropCause>(event.op))}];
    }
    if (event.kind == EventKind::kVerifier && event.a != 0) {
      verifierBySuspect[event.a].push_back(&event);
    }
    if (event.kind == EventKind::kDetector) {
      // Accusation-channel totals — counted even for events without a
      // session (rate-limit / replay rejections happen pre-session).
      switch (static_cast<DetectorOp>(event.op)) {
        case DetectorOp::kDreqRateLimited:
          ++report.accusationDefense.rateLimited;
          break;
        case DetectorOp::kDreqReplayed:
          ++report.accusationDefense.replayed;
          break;
        case DetectorOp::kExonerated:
          ++report.accusationDefense.exonerations;
          break;
        case DetectorOp::kReporterDemerited:
          ++report.accusationDefense.demerits;
          break;
        case DetectorOp::kReporterQuarantined:
          ++report.accusationDefense.reportersQuarantined;
          break;
        default:
          break;
      }
    }
    if ((event.kind == EventKind::kDetector ||
         event.kind == EventKind::kChTable) &&
        event.session != 0) {
      auto& timeline = sessions[event.session];
      timeline.session = event.session;
      timeline.entries.push_back({event.atUs, event.node, eventLabel(event)});
      if (event.kind != EventKind::kDetector) continue;
      switch (static_cast<DetectorOp>(event.op)) {
        case DetectorOp::kDreqReceived:
        case DetectorOp::kSessionOpened:
          if (timeline.suspect == 0) timeline.suspect = event.a;
          if (timeline.reporter == 0) timeline.reporter = event.b;
          break;
        case DetectorOp::kProbeSent:
          if (timeline.probeAtUs < 0) timeline.probeAtUs = event.atUs;
          break;
        case DetectorOp::kVerdict:
          timeline.verdictAtUs = event.atUs;
          timeline.verdict = event.detail;
          break;
        case DetectorOp::kIsolated:
          timeline.isolatedAtUs = event.atUs;
          break;
        case DetectorOp::kProbeViolation:
          ++timeline.probeViolations;
          break;
        case DetectorOp::kExonerated:
          timeline.exoneratedAtUs = event.atUs;
          break;
        case DetectorOp::kReporterDemerited:
          ++timeline.reporterDemerits;
          break;
        case DetectorOp::kReporterQuarantined:
          timeline.quarantinedReporters.push_back(event.b);
          break;
        default:
          break;
      }
    }
  }

  for (auto& [id, timeline] : sessions) {
    if (timeline.suspect == 0 || timeline.entries.empty()) continue;
    const std::int64_t sessionStartUs = timeline.entries.front().atUs;
    const auto it = verifierBySuspect.find(timeline.suspect);
    if (it == verifierBySuspect.end()) continue;
    for (const TraceEvent* event : it->second) {
      if (event->atUs > sessionStartUs) continue;
      timeline.entries.push_back(
          {event->atUs, event->node, eventLabel(*event)});
      const auto op = static_cast<VerifierOp>(event->op);
      if (op == VerifierOp::kSuspected) {
        timeline.suspectedAtUs = event->atUs;
      } else if (op == VerifierOp::kDreqSent) {
        timeline.dreqAtUs = event->atUs;
      }
    }
  }

  report.sessions.reserve(sessions.size());
  for (auto& [id, timeline] : sessions) {
    std::stable_sort(
        timeline.entries.begin(), timeline.entries.end(),
        [](const auto& lhs, const auto& rhs) { return lhs.atUs < rhs.atUs; });
    report.sessions.push_back(std::move(timeline));
  }
  return report;
}

void printReport(const TraceReport& report, std::ostream& os) {
  os << "trace: " << report.eventCount << " events";
  if (report.eventCount > 0) {
    os << ", " << formatMs(report.firstUs) << " ms .. "
       << formatMs(report.lastUs) << " ms";
  }
  os << "\n";

  if (!report.eventsByKind.empty()) {
    os << "events by kind:\n";
    for (const auto& [kind, count] : report.eventsByKind) {
      os << "  " << kind << ": " << count << "\n";
    }
  }
  if (!report.dropsByCause.empty()) {
    os << "drops by cause:\n";
    for (const auto& [cause, count] : report.dropsByCause) {
      os << "  " << cause << ": " << count << "\n";
    }
  }

  if (report.accusationDefense.any()) {
    const auto& d = report.accusationDefense;
    os << "accusation defense:\n"
       << "  d_req rate-limited: " << d.rateLimited << "\n"
       << "  d_req replays rejected: " << d.replayed << "\n"
       << "  suspects exonerated: " << d.exonerations << "\n"
       << "  reporter demerits: " << d.demerits << "\n"
       << "  reporters quarantined as liars: " << d.reportersQuarantined
       << "\n";
  }

  std::size_t complete = 0;
  for (const auto& session : report.sessions) {
    if (session.complete()) ++complete;
  }
  os << "detection sessions: " << report.sessions.size() << " (" << complete
     << " complete)\n";

  for (const auto& session : report.sessions) {
    os << "\nsession " << session.session << ": suspect=" << session.suspect
       << " reporter=" << session.reporter;
    if (!session.verdict.empty()) os << " verdict=" << session.verdict;
    os << (session.complete() ? " [complete]" : " [incomplete]") << "\n";

    bool any = false;
    printStage(os, "suspicion->d_req", session.suspectedAtUs, session.dreqAtUs,
               any);
    printStage(os, "d_req->probe", session.dreqAtUs, session.probeAtUs, any);
    printStage(os, "probe->verdict", session.probeAtUs, session.verdictAtUs,
               any);
    printStage(os, "verdict->isolation", session.verdictAtUs,
               session.isolatedAtUs, any);
    printStage(os, "total", session.suspectedAtUs,
               session.isolatedAtUs >= 0 ? session.isolatedAtUs
                                         : session.verdictAtUs,
               any);
    if (any) os << "\n";

    if (session.probeViolations > 0 || session.exoneratedAtUs >= 0 ||
        session.reporterDemerits > 0) {
      os << "  hardened campaign: " << session.probeViolations
         << " probe violation(s)";
      if (session.exoneratedAtUs >= 0) {
        os << ", suspect exonerated at " << formatMs(session.exoneratedAtUs)
           << " ms, " << session.reporterDemerits << " accuser demerit(s)";
      }
      if (!session.quarantinedReporters.empty()) {
        os << ", quarantined liar(s):";
        for (const std::uint64_t liar : session.quarantinedReporters) {
          os << ' ' << liar;
        }
      }
      os << "\n";
    }

    os << "  timeline:\n";
    for (const auto& entry : session.entries) {
      std::array<char, 32> buf{};
      std::snprintf(buf.data(), buf.size(), "%10lld",
                    static_cast<long long>(entry.atUs));
      os << "  " << buf.data() << " us  node " << entry.node << "  "
         << entry.label << "\n";
    }
  }
}

}  // namespace blackdp::obs
