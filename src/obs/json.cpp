#include "obs/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <functional>

namespace blackdp::obs {
namespace {

void appendUtf8(std::string& out, std::uint32_t codepoint) {
  if (codepoint < 0x80) {
    out.push_back(static_cast<char>(codepoint));
  } else if (codepoint < 0x800) {
    out.push_back(static_cast<char>(0xc0u | (codepoint >> 6)));
    out.push_back(static_cast<char>(0x80u | (codepoint & 0x3fu)));
  } else {
    out.push_back(static_cast<char>(0xe0u | (codepoint >> 12)));
    out.push_back(static_cast<char>(0x80u | ((codepoint >> 6) & 0x3fu)));
    out.push_back(static_cast<char>(0x80u | (codepoint & 0x3fu)));
  }
}

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_{text} {}

  void skipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool done() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  char take() { return text_[pos_++]; }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Parses a quoted string (cursor on the opening quote) into `out`.
  bool parseString(std::string& out) {
    if (!consume('"')) return false;
    while (!done()) {
      char c = take();
      if (c == '"') return true;
      if (c == '\\') {
        if (done()) return false;
        char esc = take();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            std::uint32_t code = 0;
            for (int i = 0; i < 4; ++i) {
              if (done()) return false;
              char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<std::uint32_t>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<std::uint32_t>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<std::uint32_t>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            appendUtf8(out, code);
            break;
          }
          default: return false;
        }
      } else {
        out.push_back(c);
      }
    }
    return false;  // unterminated
  }

  /// Consumes `keyword` verbatim (cursor on its first character).
  bool consumeKeyword(std::string_view keyword) {
    if (text_.substr(pos_, keyword.size()) != keyword) return false;
    pos_ += keyword.size();
    return true;
  }

  /// Parses a numeric token (cursor on its first character) verbatim.
  bool parseNumberToken(std::string& out) {
    bool any = false;
    if (!done() && (peek() == '-' || peek() == '+')) out.push_back(take());
    while (!done()) {
      char c = peek();
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '-' || c == '+') {
        out.push_back(take());
        any = true;
      } else {
        break;
      }
    }
    return any;
  }

 private:
  std::string_view text_;
  std::size_t pos_{0};
};

}  // namespace

void appendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf.data();
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void appendJsonNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  std::array<char, 32> buf{};
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), value);
  if (ec != std::errc{}) {
    out += "null";
    return;
  }
  out.append(buf.data(), ptr);
}

void appendJsonNumber(std::string& out, std::uint64_t value) {
  std::array<char, 24> buf{};
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), value);
  (void)ec;
  out.append(buf.data(), ptr);
}

void appendJsonNumber(std::string& out, std::int64_t value) {
  std::array<char, 24> buf{};
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), value);
  (void)ec;
  out.append(buf.data(), ptr);
}

std::optional<FlatJsonObject> FlatJsonObject::parse(std::string_view text) {
  Cursor cur{text};
  cur.skipSpace();
  if (!cur.consume('{')) return std::nullopt;

  FlatJsonObject obj;
  cur.skipSpace();
  if (cur.consume('}')) {
    cur.skipSpace();
    return cur.done() ? std::optional{std::move(obj)} : std::nullopt;
  }

  while (true) {
    cur.skipSpace();
    Field field;
    if (!cur.parseString(field.key)) return std::nullopt;
    cur.skipSpace();
    if (!cur.consume(':')) return std::nullopt;
    cur.skipSpace();
    if (cur.done()) return std::nullopt;
    if (cur.peek() == '"') {
      field.type = FieldType::kString;
      if (!cur.parseString(field.text)) return std::nullopt;
    } else if (cur.peek() == '{' || cur.peek() == '[') {
      return std::nullopt;  // nesting is out of scope for trace lines
    } else {
      field.type = FieldType::kNumber;
      if (!cur.parseNumberToken(field.text)) return std::nullopt;
    }
    // Last occurrence of a duplicate key wins.
    bool replaced = false;
    for (auto& existing : obj.fields_) {
      if (existing.key == field.key) {
        existing = field;
        replaced = true;
        break;
      }
    }
    if (!replaced) obj.fields_.push_back(std::move(field));

    cur.skipSpace();
    if (cur.consume('}')) break;
    if (!cur.consume(',')) return std::nullopt;
  }
  cur.skipSpace();
  if (!cur.done()) return std::nullopt;
  return obj;
}

const FlatJsonObject::Field* FlatJsonObject::find(std::string_view key) const {
  for (const auto& field : fields_) {
    if (field.key == key) return &field;
  }
  return nullptr;
}

std::optional<std::string_view> FlatJsonObject::string(
    std::string_view key) const {
  const Field* field = find(key);
  if (field == nullptr || field->type != FieldType::kString) {
    return std::nullopt;
  }
  return std::string_view{field->text};
}

std::optional<std::uint64_t> FlatJsonObject::u64(std::string_view key) const {
  const Field* field = find(key);
  if (field == nullptr || field->type != FieldType::kNumber) {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  const char* begin = field->text.data();
  const char* end = begin + field->text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<std::int64_t> FlatJsonObject::i64(std::string_view key) const {
  const Field* field = find(key);
  if (field == nullptr || field->type != FieldType::kNumber) {
    return std::nullopt;
  }
  std::int64_t value = 0;
  const char* begin = field->text.data();
  const char* end = begin + field->text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

namespace {

constexpr int kMaxJsonDepth = 64;

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  Cursor cur{text};

  // Recursive descent over the full grammar; depth-capped so hostile inputs
  // cannot blow the stack.
  const std::function<bool(JsonValue&, int)> parseValue = [&](JsonValue& out,
                                                              int depth) {
    if (depth > kMaxJsonDepth) return false;
    cur.skipSpace();
    if (cur.done()) return false;
    const char c = cur.peek();
    if (c == '"') {
      out.type_ = Type::kString;
      return cur.parseString(out.scalar_);
    }
    if (c == '{') {
      out.type_ = Type::kObject;
      cur.take();
      cur.skipSpace();
      if (cur.consume('}')) return true;
      while (true) {
        cur.skipSpace();
        std::string key;
        if (!cur.parseString(key)) return false;
        cur.skipSpace();
        if (!cur.consume(':')) return false;
        JsonValue member;
        if (!parseValue(member, depth + 1)) return false;
        // Last occurrence of a duplicate key wins.
        bool replaced = false;
        for (auto& existing : out.members_) {
          if (existing.first == key) {
            existing.second = std::move(member);
            replaced = true;
            break;
          }
        }
        if (!replaced) out.members_.emplace_back(std::move(key), std::move(member));
        cur.skipSpace();
        if (cur.consume('}')) return true;
        if (!cur.consume(',')) return false;
      }
    }
    if (c == '[') {
      out.type_ = Type::kArray;
      cur.take();
      cur.skipSpace();
      if (cur.consume(']')) return true;
      while (true) {
        JsonValue item;
        if (!parseValue(item, depth + 1)) return false;
        out.items_.push_back(std::move(item));
        cur.skipSpace();
        if (cur.consume(']')) return true;
        if (!cur.consume(',')) return false;
      }
    }
    if (c == 't') {
      out.type_ = Type::kBool;
      out.bool_ = true;
      return cur.consumeKeyword("true");
    }
    if (c == 'f') {
      out.type_ = Type::kBool;
      out.bool_ = false;
      return cur.consumeKeyword("false");
    }
    if (c == 'n') {
      out.type_ = Type::kNull;
      return cur.consumeKeyword("null");
    }
    out.type_ = Type::kNumber;
    return cur.parseNumberToken(out.scalar_);
  };

  JsonValue root;
  if (!parseValue(root, 0)) return std::nullopt;
  cur.skipSpace();
  if (!cur.done()) return std::nullopt;
  return root;
}

std::optional<double> JsonValue::asNumber() const {
  if (type_ != Type::kNumber) return std::nullopt;
  double value = 0.0;
  const char* begin = scalar_.data();
  const char* end = begin + scalar_.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> JsonValue::asU64() const {
  if (type_ != Type::kNumber) return std::nullopt;
  std::uint64_t value = 0;
  const char* begin = scalar_.data();
  const char* end = begin + scalar_.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<std::int64_t> JsonValue::asI64() const {
  if (type_ != Type::kNumber) return std::nullopt;
  std::int64_t value = 0;
  const char* begin = scalar_.data();
  const char* end = begin + scalar_.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::optional<double> FlatJsonObject::number(std::string_view key) const {
  const Field* field = find(key);
  if (field == nullptr || field->type != FieldType::kNumber) {
    return std::nullopt;
  }
  double value = 0.0;
  const char* begin = field->text.data();
  const char* end = begin + field->text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

}  // namespace blackdp::obs
