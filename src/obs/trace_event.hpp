// Structured trace events.
//
// One flat, POD-ish record type covers every instrumented subsystem: the
// medium and backbone (packet tx/rx/drop with cause), the AODV agent (route
// discovery lifecycle), the BlackDP verifier and detector (per-stage
// protocol transitions), the cluster head (membership / verification-table /
// revocation operations), the fault injector (activations), and the
// simulator (run windows). A per-kind sub-operation enum rides in `op`; the
// remaining fields are generic slots whose meaning the emitting site
// documents (a/b are addresses, session a detection-session id, value a
// count or byte size).
//
// Events carry their simulated timestamp explicitly (microseconds), so the
// obs layer needs nothing from the simulator and sits at the very bottom of
// the dependency order — every other subsystem may emit events.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace blackdp::obs {

/// Which subsystem emitted the event. The per-kind sub-operation lives in
/// TraceEvent::op.
enum class EventKind : std::uint8_t {
  kFrameTx,          ///< medium: transmission initiated (op unused)
  kFrameRx,          ///< medium: per-receiver delivery (op unused)
  kFrameDrop,        ///< medium: per-receiver loss; op = DropCause
  kFrameSendFailed,  ///< medium: unicast MAC ACK failure; op = DropCause
  kBackboneTx,       ///< backbone: message sent (op unused)
  kBackboneRx,       ///< backbone: message delivered (op unused)
  kBackboneDrop,     ///< backbone: message lost; op = DropCause
  kAodv,             ///< AODV agent; op = AodvOp
  kVerifier,         ///< source verifier; op = VerifierOp
  kDetector,         ///< RSU detector; op = DetectorOp
  kChTable,          ///< cluster-head table operation; op = ChTableOp
  kFault,            ///< fault injector activation; op = FaultOp
  kSimRun,           ///< simulator run window; op = SimRunOp
  kParallel,         ///< parallel-runner host event; op = ParallelOp
  kShard,            ///< sharded-simulation host event; op = ShardOp
};

/// Why a frame or backbone message was not delivered. Also used as the
/// return value of the medium's fault hook (kNone = deliver).
enum class DropCause : std::uint8_t {
  kNone = 0,       ///< not dropped
  kRandomLoss,     ///< the medium's own i.i.d. loss draw (collision model)
  kBurstLoss,      ///< fault layer: Gilbert–Elliott burst fade
  kJam,            ///< fault layer: jam zone
  kLinkCut,        ///< backbone: fault-layer link filter
  kDeadEndpoint,   ///< backbone: target CH detached/crashed at delivery
  kSenderCrashed,  ///< backbone: send() from a detached/crashed CH
  kUnreachable,    ///< medium: unicast addressee unknown or out of range
};

enum class AodvOp : std::uint8_t {
  kDiscoveryStart,      ///< findRoute with no active route; a = destination
  kRreqFlood,           ///< one discovery round flooded; value = ttl
  kRrepReceived,        ///< RREP accepted as originator; b = replier
  kDiscoverySucceeded,  ///< route installed; a = destination
  kDiscoveryFailed,     ///< all retries exhausted; a = destination
};

enum class VerifierOp : std::uint8_t {
  kRoundStarted,     ///< discovery round begins; value = round number
  kRrepChosen,       ///< freshest cached RREP picked; b = replier
  kHelloSent,        ///< secure Hello probe out; value = hello id
  kHelloTimeout,     ///< Hello went unanswered; value = round number
  kSuspected,        ///< replier now formally suspicious; a = suspect
  kDreqSent,         ///< d_req transmitted to the CH; a = suspect
  kDreqSendFailed,   ///< d_req MAC ACK failure; a = suspect
  kLocalQuarantine,  ///< degraded vehicle-local blacklist; a = suspect
  kVerdictReceived,  ///< CH verdict arrived; value = Verdict
  kFinished,         ///< verification over; value = Outcome
};

enum class DetectorOp : std::uint8_t {
  kDreqReceived,      ///< authenticated d_req accepted; a = suspect
  kDreqRejected,      ///< reporter failed authentication; b = reporter
  kDreqDeduplicated,  ///< merged into the active session for a suspect
  kSessionOpened,     ///< verification-table entry created; a = suspect
  kSessionForwarded,  ///< handed to a peer CH; value = target cluster
  kSessionAdopted,    ///< received via backbone forward
  kAdoptedDegraded,   ///< re-adopted after a failed forward (dead peer)
  kProbeSent,         ///< RREQ probe out; value = probe stage (0/1/2)
  kProbeReply,        ///< RREP matched the probe; value = probe stage
  kProbeTimeout,      ///< probe window expired; value = probe stage
  kVerdict,           ///< session concluded; value = Verdict
  kIsolated,          ///< revocation requested at the TA; a = suspect
  kResultRelayed,     ///< verdict relayed to the reporter over the air
  kDreqRateLimited,   ///< reporter over its accusation budget; b = reporter
  kDreqReplayed,      ///< nonce already seen for reporter; b = reporter
  kProbeViolation,    ///< hardened probe round violated; value = round
  kExonerated,        ///< suspect passed the probe campaign; a = suspect
  kReporterDemerited,  ///< accuser charged a demerit; b = reporter
  kReporterQuarantined,  ///< accuser crossed liar threshold; b = reporter
};

enum class ChTableOp : std::uint8_t {
  kMemberJoined,        ///< JREQ accepted; a = vehicle
  kMemberLeft,          ///< LEAVE processed; a = vehicle
  kRevocationApplied,   ///< TA notice applied + announced; a = vehicle
  kCrashed,             ///< RSU failure (member table lost)
  kRecovered,           ///< RSU back on the air
  kVerificationInsert,  ///< detector opened a table entry; a = suspect
  kVerificationMerge,   ///< concurrent report merged; a = suspect
  kVerificationErase,   ///< entry closed; a = suspect
  kVerificationExpired,  ///< entry TTL-swept; a = suspect
};

enum class FaultOp : std::uint8_t {
  kRsuCrash,     ///< scheduled RSU failure fired; cluster set
  kRsuRecovery,  ///< scheduled RSU recovery fired; cluster set
};

enum class SimRunOp : std::uint8_t {
  kRunBegin,  ///< Simulator::run() entered; value = pending events
  kRunEnd,    ///< Simulator::run() returned; value = events executed
};

/// Host-side parallel-runner events. Emitted on the calling thread after the
/// worker pool joins (workers themselves never touch the thread-local
/// recorder), so they carry wall-clock-free atUs = 0.
enum class ParallelOp : std::uint8_t {
  kWorkerFailure,  ///< swallowed worker exception; value = job index
};

/// Sharded-simulation host events. Like ParallelOp, these are emitted on the
/// coordinating thread (shard workers never touch the thread-local recorder);
/// the shard id rides in `node`, the epoch in `value`.
enum class ShardOp : std::uint8_t {
  kEpochRun,  ///< one shard ran one epoch; node = shard, value = epoch
  kExchange,  ///< epoch barrier merge; value = envelopes exchanged
};

[[nodiscard]] std::string_view toString(EventKind kind);
[[nodiscard]] std::string_view toString(DropCause cause);
[[nodiscard]] std::string_view toString(AodvOp op);
[[nodiscard]] std::string_view toString(VerifierOp op);
[[nodiscard]] std::string_view toString(DetectorOp op);
[[nodiscard]] std::string_view toString(ChTableOp op);
[[nodiscard]] std::string_view toString(FaultOp op);
[[nodiscard]] std::string_view toString(SimRunOp op);
[[nodiscard]] std::string_view toString(ParallelOp op);
[[nodiscard]] std::string_view toString(ShardOp op);

/// Human/exporter label for the sub-operation of `kind` stored in `op`.
[[nodiscard]] std::string_view opName(EventKind kind, std::uint8_t op);

/// One structured event. Generic slots keep recording allocation-free in
/// the common case (`detail` is usually empty). The constructor's trailing
/// defaults let emission sites spell out only the slots they use.
struct TraceEvent {
  TraceEvent() = default;
  TraceEvent(std::int64_t at, EventKind eventKind, std::uint8_t subOp = 0,
             std::uint32_t nodeId = 0, std::uint32_t clusterId = 0,
             std::uint64_t slotA = 0, std::uint64_t slotB = 0,
             std::uint64_t sessionId = 0, std::uint64_t slotValue = 0,
             std::string detailText = {})
      : atUs{at},
        kind{eventKind},
        op{subOp},
        node{nodeId},
        cluster{clusterId},
        a{slotA},
        b{slotB},
        session{sessionId},
        value{slotValue},
        detail{std::move(detailText)} {}

  std::int64_t atUs{0};           ///< simulated time, microseconds
  EventKind kind{EventKind::kSimRun};
  std::uint8_t op{0};             ///< per-kind sub-operation / DropCause
  std::uint32_t node{0};          ///< physical NodeId (0 = n/a)
  std::uint32_t cluster{0};       ///< ClusterId (0 = n/a)
  std::uint64_t a{0};             ///< primary address / entity
  std::uint64_t b{0};             ///< secondary address / entity
  std::uint64_t session{0};       ///< DetectionSessionId (0 = n/a)
  std::uint64_t value{0};         ///< count, byte size, stage, ttl, ...
  std::string detail;             ///< payload type name etc. (often empty)

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

}  // namespace blackdp::obs
