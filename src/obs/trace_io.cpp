#include "obs/trace_io.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "obs/json.hpp"

namespace blackdp::obs {
namespace {

// Upper bound on sub-operation enumerators per kind; reverse lookup scans
// this range. Generously above every enum's size.
constexpr std::uint8_t kMaxOps = 32;

void appendField(std::string& out, std::string_view key, std::uint64_t value,
                 bool omitZero = true) {
  if (omitZero && value == 0) return;
  out += ",\"";
  out += key;
  out += "\":";
  appendJsonNumber(out, value);
}

}  // namespace

std::string toJsonLine(const TraceEvent& event) {
  std::string out;
  out += "{\"t\":";
  appendJsonNumber(out, event.atUs);
  out += ",\"kind\":";
  appendJsonString(out, toString(event.kind));
  const std::string_view op = opName(event.kind, event.op);
  if (!op.empty()) {
    out += ",\"op\":";
    appendJsonString(out, op);
  }
  appendField(out, "node", event.node);
  appendField(out, "cluster", event.cluster);
  appendField(out, "a", event.a);
  appendField(out, "b", event.b);
  appendField(out, "session", event.session);
  appendField(out, "value", event.value);
  if (!event.detail.empty()) {
    out += ",\"detail\":";
    appendJsonString(out, event.detail);
  }
  out += "}";
  return out;
}

std::optional<TraceEvent> parseJsonLine(std::string_view line) {
  const auto obj = FlatJsonObject::parse(line);
  if (!obj) return std::nullopt;

  const auto at = obj->i64("t");
  const auto kindName = obj->string("kind");
  if (!at || !kindName) return std::nullopt;
  const auto kind = kindFromString(*kindName);
  if (!kind) return std::nullopt;

  TraceEvent event;
  event.atUs = *at;
  event.kind = *kind;
  if (const auto opLabel = obj->string("op")) {
    const auto op = opFromName(*kind, *opLabel);
    if (!op) return std::nullopt;
    event.op = *op;
  }
  event.node = static_cast<std::uint32_t>(obj->u64("node").value_or(0));
  event.cluster = static_cast<std::uint32_t>(obj->u64("cluster").value_or(0));
  event.a = obj->u64("a").value_or(0);
  event.b = obj->u64("b").value_or(0);
  event.session = obj->u64("session").value_or(0);
  event.value = obj->u64("value").value_or(0);
  if (const auto detail = obj->string("detail")) {
    event.detail = std::string{*detail};
  }
  return event;
}

void writeJsonl(const std::vector<TraceEvent>& events, std::ostream& os) {
  for (const auto& event : events) {
    os << toJsonLine(event) << '\n';
  }
}

std::vector<TraceEvent> readJsonl(std::istream& is) {
  std::vector<TraceEvent> events;
  std::string line;
  std::size_t lineNumber = 0;
  while (std::getline(is, line)) {
    ++lineNumber;
    if (line.empty()) continue;
    auto event = parseJsonLine(line);
    if (!event) {
      throw std::runtime_error{"malformed trace line " +
                               std::to_string(lineNumber)};
    }
    events.push_back(std::move(*event));
  }
  return events;
}

void writeChromeTrace(const std::vector<TraceEvent>& events,
                      std::ostream& os) {
  os << "[";
  bool first = true;
  for (const auto& event : events) {
    std::string line;
    line += first ? "\n" : ",\n";
    first = false;
    line += "{\"name\":";
    const std::string_view op = opName(event.kind, event.op);
    std::string name{toString(event.kind)};
    if (!op.empty()) {
      name += '/';
      name += op;
    }
    appendJsonString(line, name);
    line += ",\"cat\":";
    appendJsonString(line, toString(event.kind));
    line += ",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":";
    appendJsonNumber(line, static_cast<std::uint64_t>(event.node));
    line += ",\"ts\":";
    appendJsonNumber(line, event.atUs);
    line += ",\"args\":{";
    bool firstArg = true;
    const auto arg = [&](std::string_view key, std::uint64_t value) {
      if (value == 0) return;
      if (!firstArg) line += ",";
      firstArg = false;
      appendJsonString(line, key);
      line += ":";
      appendJsonNumber(line, value);
    };
    arg("cluster", event.cluster);
    arg("a", event.a);
    arg("b", event.b);
    arg("session", event.session);
    arg("value", event.value);
    if (!event.detail.empty()) {
      if (!firstArg) line += ",";
      firstArg = false;
      line += "\"detail\":";
      appendJsonString(line, event.detail);
    }
    line += "}}";
    os << line;
  }
  os << "\n]\n";
}

std::optional<EventKind> kindFromString(std::string_view name) {
  constexpr std::uint8_t kKindCount =
      static_cast<std::uint8_t>(EventKind::kShard) + 1;
  for (std::uint8_t i = 0; i < kKindCount; ++i) {
    const auto kind = static_cast<EventKind>(i);
    if (toString(kind) == name) return kind;
  }
  return std::nullopt;
}

std::optional<std::uint8_t> opFromName(EventKind kind, std::string_view name) {
  if (name.empty() || name == "?") return std::nullopt;
  for (std::uint8_t op = 0; op < kMaxOps; ++op) {
    if (opName(kind, op) == name) return op;
  }
  return std::nullopt;
}

}  // namespace blackdp::obs
