// Trace recording.
//
// A TraceRecorder receives every TraceEvent an instrumented subsystem emits.
// Recording is opt-in and global (the simulator is single-threaded by
// design, like Logging): with no recorder installed — the default — every
// instrumentation site reduces to one pointer load and branch, no event is
// constructed, no RNG stream is touched, and the simulation is byte-for-byte
// identical to an uninstrumented build. Tests pin that property.
//
// Usage at an instrumentation site:
//
//   if (auto* tr = obs::Trace::active()) {
//     tr->record({simulator_.now().us(), obs::EventKind::kDetector,
//                 static_cast<std::uint8_t>(obs::DetectorOp::kProbeSent),
//                 ...});
//   }
#pragma once

#include <cstddef>
#include <vector>

#include "obs/trace_event.hpp"

namespace blackdp::obs {

/// Receives every emitted event. Implementations must not re-enter the
/// simulation (record() runs inside protocol callbacks).
class TraceRecorder {
 public:
  virtual ~TraceRecorder() = default;
  virtual void record(const TraceEvent& event) = 0;
};

/// Swallows everything. Installing it exercises the full recording path
/// (event construction included) with no storage — the overhead-contract
/// tests use it; the *default* fast path is no recorder at all.
class NullRecorder final : public TraceRecorder {
 public:
  void record(const TraceEvent& event) override { (void)event; }
};

/// Buffers events in memory for export or inspection.
class MemoryRecorder final : public TraceRecorder {
 public:
  void record(const TraceEvent& event) override { events_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Per-thread recorder registry. Each simulator is single-threaded, but the
/// parallel trial runner (sim/parallel.hpp) executes independent simulators
/// on worker threads concurrently — a thread-local slot keeps installation
/// race-free and lets each trial record into its own sink without seeing its
/// neighbours' events. The null fast path is still one TLS load and branch.
class Trace {
 public:
  /// The recorder installed on THIS thread, or nullptr (the default,
  /// near-zero-cost path).
  [[nodiscard]] static TraceRecorder* active() { return recorder_; }

  /// Installs (or with nullptr removes) the calling thread's recorder. The
  /// recorder must outlive its installation; prefer ScopedTraceRecorder.
  /// A recorder installed on the main thread is NOT visible to pool
  /// workers — install per worker (or trace with --jobs 1).
  static void install(TraceRecorder* recorder) { recorder_ = recorder; }

 private:
  static thread_local TraceRecorder* recorder_;
};

/// RAII install/restore, so a throwing test cannot leak its recorder into
/// later tests.
class ScopedTraceRecorder {
 public:
  explicit ScopedTraceRecorder(TraceRecorder* recorder)
      : previous_{Trace::active()} {
    Trace::install(recorder);
  }
  ~ScopedTraceRecorder() { Trace::install(previous_); }

  ScopedTraceRecorder(const ScopedTraceRecorder&) = delete;
  ScopedTraceRecorder& operator=(const ScopedTraceRecorder&) = delete;

 private:
  TraceRecorder* previous_;
};

}  // namespace blackdp::obs
