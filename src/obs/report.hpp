// Trace analysis: per-session detection timelines and summary statistics.
//
// Pure functions over an event vector, kept apart from the trace_report CLI
// so the reconstruction logic is unit-testable against synthetic and real
// traces alike.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_event.hpp"

namespace blackdp::obs {

/// One detection session reconstructed from a trace: the CH-side events
/// carrying its DetectionSessionId plus the reporter-side verifier events
/// for the same suspect that led up to it.
struct SessionTimeline {
  std::uint64_t session{0};
  std::uint64_t suspect{0};
  std::uint64_t reporter{0};
  std::string verdict;  ///< detail of the kVerdict event, if any

  struct Entry {
    std::int64_t atUs{0};
    std::uint32_t node{0};
    std::string label;
  };
  std::vector<Entry> entries;  ///< time-ordered

  // Stage timestamps in simulated µs; -1 when the stage never happened.
  std::int64_t suspectedAtUs{-1};  ///< verifier formally suspected (Hello)
  std::int64_t dreqAtUs{-1};       ///< d_req sent by the reporter
  std::int64_t probeAtUs{-1};      ///< first CH probe RREQ out
  std::int64_t verdictAtUs{-1};    ///< CH verdict
  std::int64_t isolatedAtUs{-1};   ///< revocation requested at the TA
  // Accusation-channel defense (hardened detector only).
  std::int64_t exoneratedAtUs{-1};  ///< suspect passed the probe campaign
  std::uint64_t probeViolations{0};  ///< hardened rounds the suspect failed
  std::uint64_t reporterDemerits{0};
  std::vector<std::uint64_t> quarantinedReporters;  ///< liar addresses

  /// True when the suspicion → d_req → probe → verdict chain is complete.
  [[nodiscard]] bool complete() const {
    return suspectedAtUs >= 0 && dreqAtUs >= 0 && probeAtUs >= 0 &&
           verdictAtUs >= 0;
  }
};

struct TraceReport {
  std::size_t eventCount{0};
  std::int64_t firstUs{0};
  std::int64_t lastUs{0};
  std::map<std::string, std::uint64_t> eventsByKind;
  std::map<std::string, std::uint64_t> dropsByCause;  ///< medium + backbone
  std::vector<SessionTimeline> sessions;              ///< by session id

  /// Accusation-channel totals across all sessions (all zero when the
  /// hardened detector never engaged).
  struct AccusationDefense {
    std::uint64_t rateLimited{0};
    std::uint64_t replayed{0};
    std::uint64_t exonerations{0};
    std::uint64_t demerits{0};
    std::uint64_t reportersQuarantined{0};
    [[nodiscard]] bool any() const {
      return rateLimited + replayed + exonerations + demerits +
                 reportersQuarantined >
             0;
    }
  } accusationDefense;
};

/// Reconstructs sessions and summary counts from a (time-ordered) trace.
[[nodiscard]] TraceReport buildReport(const std::vector<TraceEvent>& events);

/// Renders the report: totals, drop attribution, and one timeline block per
/// session with stage latencies.
void printReport(const TraceReport& report, std::ostream& os);

}  // namespace blackdp::obs
