// Discrete-event simulation kernel.
//
// Single-threaded, deterministic: events at equal timestamps execute in
// scheduling order (FIFO tie-break by sequence number). All protocol code in
// this repository runs inside event callbacks; nothing blocks.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace blackdp::sim {

/// Handle for cancelling a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t seq) : seq_{seq} {}
  std::uint64_t seq_{0};
};

/// The event-driven simulator.
class Simulator {
 public:
  /// Pooled small-callable (see sim/event_fn.hpp): hot-path captures stay
  /// inline instead of hitting the heap like std::function's would.
  using Callback = EventFn;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` to run `delay` after now. Negative delays clamp to zero.
  EventHandle schedule(Duration delay, Callback fn);

  /// Schedules `fn` at an absolute time (>= now; earlier clamps to now).
  EventHandle scheduleAt(TimePoint when, Callback fn);

  /// Cancels a pending event. Cancelling an already-run or already-cancelled
  /// event is a harmless no-op (the common pattern for timeout timers).
  void cancel(EventHandle handle);

  /// Runs until the queue drains or `until` is reached (events at exactly
  /// `until` still run). Returns the number of events executed.
  std::size_t run(TimePoint until = TimePoint::fromUs(
                      std::numeric_limits<std::int64_t>::max()));

  /// Runs at most one event; returns false if the queue is empty.
  bool step();

  /// Advances the clock to `to` without running anything (earlier times are
  /// a no-op). run(until) leaves now() at the last executed event, not at
  /// `until`; checkpoint/restore needs the clock pinned to the epoch
  /// boundary so state restored into a fresh simulator ages identically.
  /// Must not skip over pending events — asserted.
  void fastForward(TimePoint to);

  /// Number of events waiting (including cancelled tombstones).
  [[nodiscard]] std::size_t pendingEvents() const { return heap_.size(); }

  /// Total events executed since construction.
  [[nodiscard]] std::size_t executedEvents() const { return executed_; }

 private:
  /// Heap node: the callable lives in `slots_` so percolation moves 24
  /// bytes instead of a 72-byte Event (and never relocates an EventFn).
  /// (when, seq) is a strict total order — pop order is identical to the
  /// old std::priority_queue<Event>, so replay traces are unchanged.
  struct HeapEntry {
    TimePoint when;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  void heapPush(HeapEntry entry);
  /// Removes the root entry (callers read heap_.front() first).
  void heapPopRoot();
  void freeSlot(std::uint32_t slot);

  TimePoint now_{};
  std::uint64_t nextSeq_{1};
  std::size_t executed_{0};
  /// 4-ary implicit heap over compact entries: shallower than a binary heap
  /// and each level's children share a cache line, which matters at the
  /// ~10^6 push/pop-per-simulated-second rates of the e2e benches.
  std::vector<HeapEntry> heap_;
  /// Pending callables, indexed by HeapEntry::slot; freed slots recycle so
  /// steady-state scheduling does not allocate.
  std::vector<Callback> slots_;
  std::vector<std::uint32_t> freeSlots_;
  /// Cancelled-event tombstones. Cancellation is rare (timeout timers that
  /// fired their happy path), so a small vector scanned linearly beats a
  /// node-allocating hash set on the per-event check.
  std::vector<std::uint64_t> cancelled_;
};

}  // namespace blackdp::sim
