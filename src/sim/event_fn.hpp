// Pooled small-callable event type.
//
// The simulator's hot timers (frame deliveries, per-hop forwards, beacon
// ticks) carry captures of a few dozen bytes. std::function heap-allocates
// anything over its ~16-byte small buffer, which charged one malloc/free
// pair to every delivered frame. EventFn is a move-only type-erased
// callable with a 48-byte inline buffer sized for the largest hot capture
// (the medium's delivery lambda: this + NodeId + Frame); larger or
// alignment-exotic callables fall back to the heap, so cold paths lose
// nothing but speed.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace blackdp::sim {

class EventFn {
 public:
  /// Sized for the medium delivery capture; every hot-path lambda must fit.
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for std::function
  EventFn(std::nullptr_t) {}

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for std::function
  EventFn(F&& fn) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = inlineOps<Fn>();
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = heapOps<Fn>();
    }
  }

  EventFn(EventFn&& other) noexcept { moveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs into `dst` and ends `src`'s lifetime (relocation).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static Fn* inlinePtr(void* storage) {
    return std::launder(reinterpret_cast<Fn*>(storage));
  }

  template <typename Fn>
  static const Ops* inlineOps() {
    static constexpr Ops ops{
        [](void* s) { (*inlinePtr<Fn>(s))(); },
        [](void* dst, void* src) {
          Fn* from = inlinePtr<Fn>(src);
          ::new (dst) Fn(std::move(*from));
          from->~Fn();
        },
        [](void* s) { inlinePtr<Fn>(s)->~Fn(); }};
    return &ops;
  }

  template <typename Fn>
  static const Ops* heapOps() {
    static constexpr Ops ops{
        [](void* s) { (**inlinePtr<Fn*>(s))(); },
        [](void* dst, void* src) {
          ::new (dst) Fn*(*inlinePtr<Fn*>(src));
        },
        [](void* s) { delete *inlinePtr<Fn*>(s); }};
    return &ops;
  }

  void moveFrom(EventFn& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes]{};
  const Ops* ops_{nullptr};
};

}  // namespace blackdp::sim
