// Persistent worker pool.
//
// ParallelRunner historically spawned fresh std::threads per forEachIndex
// call — fine for minute-long trial sweeps, wasteful for the sharded
// simulation, which fans out once per *epoch* (thousands of times per run).
// ThreadPool keeps the workers alive between calls: one condition-variable
// wakeup per parallelFor instead of thread creation, with the same atomic
// next-index work-stealing loop, so work distribution (and therefore any
// submission-order merge built on top) is identical to the per-call-thread
// implementation.
//
// Nested-parallelism guard: every pool worker (and a caller participating in
// a parallelFor) marks itself via a thread-local flag. A parallelFor issued
// from inside a worker — e.g. a sharded trial running inside a parallel
// campaign — executes inline on that worker instead of touching any pool.
// The jobs budget therefore always stays with the OUTERMOST parallel level;
// inner levels degrade to serial rather than oversubscribing the machine
// (jobs_outer * jobs_inner threads). Regression-tested in parallel_test.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

namespace blackdp::sim {

class ThreadPool {
 public:
  /// A task body that threw inside parallelFor. Failures are collected, not
  /// thrown — the caller decides the rethrow policy (ParallelRunner rethrows
  /// the lowest index after recording the rest).
  struct TaskFailure {
    std::size_t index{0};
    std::exception_ptr error;
  };

  /// `workers` >= 1. The calling thread participates in every parallelFor,
  /// so the pool spawns workers-1 background threads.
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned workers() const { return workers_; }

  /// True on a thread currently executing a parallelFor task (pool worker or
  /// participating caller). The flag is what makes nesting safe: see below.
  [[nodiscard]] static bool insideWorker();

  /// Runs fn(0) .. fn(count-1) across the pool and blocks until all have
  /// finished. Work is handed out through an atomic next-index counter, so
  /// any worker may run any index. Exceptions are caught per task and
  /// returned via failures(), sorted by task index — parallelFor itself
  /// never throws.
  ///
  /// Called from inside a worker (nested parallelism), the whole loop runs
  /// inline on the calling thread in index order; the pool is not touched.
  /// One parallelFor may be in flight at a time per pool (asserted); the
  /// inline nested path is exempt, which is exactly what lets a sharded
  /// simulation share its pool with the campaign runner that spawned it.
  void parallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

  /// Failures from the most recent parallelFor, in task-index order.
  [[nodiscard]] const std::vector<TaskFailure>& failures() const {
    return failures_;
  }

 private:
  struct Impl;
  Impl* impl_;           ///< pimpl: keeps <mutex>/<condition_variable> out of
                         ///< every include site of this hot-ish header
  unsigned workers_{1};
  std::vector<TaskFailure> failures_;
};

}  // namespace blackdp::sim
