// Parallel trial runner.
//
// Benches and sweeps repeat the same seeded experiment hundreds of times;
// the trials are embarrassingly parallel (each owns its simulator, RNG
// streams, scenario, and metrics), so the runner fans them out across a
// pool of std::thread workers and the caller folds the per-trial results
// *in submission order*. That ordering is the whole determinism contract:
// results are produced into a slot per index, never appended as they
// finish, so the merged output is bit-identical for any worker count.
//
// Rules for task bodies:
//   - own every stateful object (Simulator, SeedSequence, scenario world,
//     MetricsRegistry) — never share one between tasks;
//   - process-global observability is per-thread: a TraceRecorder installed
//     on the main thread is invisible inside a task (obs::Trace is
//     thread-local), and logging level/sink must not be reconfigured while
//     tasks run (emission itself is serialised);
//   - fold RNG-bearing results on the caller's thread after run()/map()
//     returns, in index order.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace blackdp::sim {

/// Resolves a worker count: `requested` when nonzero, else the BLACKDP_JOBS
/// environment variable, else std::thread::hardware_concurrency(); never
/// less than 1.
[[nodiscard]] unsigned resolveJobCount(unsigned requested = 0);

/// Strips every `--jobs N` / `--jobs=N` from argv (so benches can keep
/// parsing their positional arguments untouched) and returns the last
/// requested value, or 0 when the flag is absent.
[[nodiscard]] unsigned consumeJobsFlag(int& argc, char** argv);

class ParallelRunner {
 public:
  /// `jobs` as per resolveJobCount (0 = env / hardware default).
  explicit ParallelRunner(unsigned jobs = 0);

  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Runs fn(0) ... fn(count-1) across the pool and blocks until all have
  /// finished. With one job everything runs inline on the caller's thread.
  /// If any task throws, the exception of the lowest-indexed failing task is
  /// rethrown here after all workers have stopped.
  void forEachIndex(std::size_t count,
                    const std::function<void(std::size_t)>& fn) const;

  /// forEachIndex, collecting one result per index. Results come back in
  /// index order regardless of which worker ran what — fold them left to
  /// right for thread-count-independent output.
  template <typename R>
  [[nodiscard]] std::vector<R> map(
      std::size_t count, const std::function<R(std::size_t)>& fn) const {
    std::vector<R> results(count);
    forEachIndex(count, [&](std::size_t i) { results[i] = fn(i); });
    return results;
  }

 private:
  unsigned jobs_{1};
};

}  // namespace blackdp::sim
