// Parallel trial runner.
//
// Benches and sweeps repeat the same seeded experiment hundreds of times;
// the trials are embarrassingly parallel (each owns its simulator, RNG
// streams, scenario, and metrics), so the runner fans them out across a
// pool of std::thread workers and the caller folds the per-trial results
// *in submission order*. That ordering is the whole determinism contract:
// results are produced into a slot per index, never appended as they
// finish, so the merged output is bit-identical for any worker count.
//
// Rules for task bodies:
//   - own every stateful object (Simulator, SeedSequence, scenario world,
//     MetricsRegistry) — never share one between tasks;
//   - process-global observability is per-thread: a TraceRecorder installed
//     on the main thread is invisible inside a task (obs::Trace is
//     thread-local), and logging level/sink must not be reconfigured while
//     tasks run (emission itself is serialised);
//   - fold RNG-bearing results on the caller's thread after run()/map()
//     returns, in index order.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/thread_pool.hpp"

namespace blackdp::obs {
class MetricsRegistry;
}  // namespace blackdp::obs

namespace blackdp::sim {

/// Resolves a worker count: `requested` when nonzero, else the BLACKDP_JOBS
/// environment variable, else std::thread::hardware_concurrency(); never
/// less than 1.
[[nodiscard]] unsigned resolveJobCount(unsigned requested = 0);

/// Strips every `--jobs N` / `--jobs=N` from argv (so benches can keep
/// parsing their positional arguments untouched) and returns the last
/// requested value, or 0 when the flag is absent.
[[nodiscard]] unsigned consumeJobsFlag(int& argc, char** argv);

/// A worker exception that was caught but NOT rethrown by forEachIndex
/// (only the lowest-indexed failing task's exception propagates).
struct WorkerFailure {
  std::size_t index{0};  ///< task index whose body threw
  std::string what;      ///< exception message, or "unknown exception"
};

class ParallelRunner {
 public:
  /// `jobs` as per resolveJobCount (0 = env / hardware default).
  explicit ParallelRunner(unsigned jobs = 0);

  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Optional sink: every swallowed worker failure bumps the
  /// `parallel.worker_failures` counter there (recorded on the calling
  /// thread, before the rethrow). The registry must outlive the runner.
  void setMetrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Runs fn(0) ... fn(count-1) across the pool and blocks until all have
  /// finished. With one job everything runs inline on the caller's thread.
  /// If any task throws, the exception of the lowest-indexed failing task is
  /// rethrown here after all workers have stopped. Failures of OTHER tasks
  /// are never silently lost: each is logged, emitted as a
  /// kParallel/kWorkerFailure trace event (calling thread's recorder), and
  /// queryable via swallowedFailures() until the next run.
  ///
  /// Nested-parallelism guard: called from inside a pool worker (a task body
  /// that itself fans out — e.g. a sharded trial inside a parallel
  /// campaign), the loop runs inline and serially on that worker, exactly
  /// like jobs == 1. The jobs budget always stays with the outermost
  /// parallel level; inner levels never oversubscribe the machine with
  /// jobs_outer * jobs_inner threads. Submission-order folding is unaffected
  /// (serial in index order IS submission order).
  void forEachIndex(std::size_t count,
                    const std::function<void(std::size_t)>& fn) const;

  /// The runner's persistent worker pool, created on first use (so a
  /// jobs == 1 runner never spawns a thread). Exposed for reuse by
  /// shard::ShardedSimulation: one pool serves both the per-epoch shard
  /// fan-out and any trial-level forEachIndex, and the shared
  /// ThreadPool::insideWorker() flag keeps the two levels from nesting.
  [[nodiscard]] ThreadPool& threadPool() const;

  /// Failures from the most recent forEachIndex()/map() call that were not
  /// rethrown, in task-index order. Empty when at most one task failed.
  [[nodiscard]] const std::vector<WorkerFailure>& swallowedFailures() const {
    return swallowedFailures_;
  }

  /// forEachIndex, collecting one result per index. Results come back in
  /// index order regardless of which worker ran what — fold them left to
  /// right for thread-count-independent output.
  template <typename R>
  [[nodiscard]] std::vector<R> map(
      std::size_t count, const std::function<R(std::size_t)>& fn) const {
    std::vector<R> results(count);
    forEachIndex(count, [&](std::size_t i) { results[i] = fn(i); });
    return results;
  }

 private:
  unsigned jobs_{1};
  obs::MetricsRegistry* metrics_{nullptr};
  /// Lazily created by threadPool() / the first parallel forEachIndex.
  mutable std::unique_ptr<ThreadPool> pool_;
  /// Reset at the start of each forEachIndex call (caller thread only).
  mutable std::vector<WorkerFailure> swallowedFailures_;
};

}  // namespace blackdp::sim
