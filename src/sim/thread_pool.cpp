#include "sim/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/assert.hpp"

namespace blackdp::sim {

namespace {
thread_local bool tlInsideWorker = false;

/// RAII set/restore of the nested-parallelism flag (the caller participates
/// in its own parallelFor, so the flag must come back off afterwards).
struct WorkerScope {
  bool previous;
  WorkerScope() : previous{tlInsideWorker} { tlInsideWorker = true; }
  ~WorkerScope() { tlInsideWorker = previous; }
  WorkerScope(const WorkerScope&) = delete;
  WorkerScope& operator=(const WorkerScope&) = delete;
};
}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable wakeWorkers;
  std::condition_variable jobDone;
  std::vector<std::thread> threads;

  // Current job, published under `mutex`; generation bumps wake the workers.
  std::uint64_t generation{0};
  std::size_t count{0};
  const std::function<void(std::size_t)>* fn{nullptr};
  std::atomic<std::size_t> next{0};
  std::size_t activeWorkers{0};
  bool shutdown{false};
  bool jobInFlight{false};

  std::mutex failureMutex;
  std::vector<TaskFailure> rawFailures;

  void workLoop() {
    while (true) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) return;
      try {
        (*fn)(index);
      } catch (...) {
        const std::scoped_lock lock{failureMutex};
        rawFailures.push_back({index, std::current_exception()});
      }
    }
  }

  void workerThread() {
    std::uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock lock{mutex};
        wakeWorkers.wait(lock,
                         [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
      }
      {
        WorkerScope scope;
        workLoop();
      }
      {
        const std::scoped_lock lock{mutex};
        if (--activeWorkers == 0) jobDone.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(unsigned workers)
    : impl_{new Impl}, workers_{workers == 0 ? 1u : workers} {
  impl_->threads.reserve(workers_ - 1);
  for (unsigned w = 1; w < workers_; ++w) {
    impl_->threads.emplace_back([this] { impl_->workerThread(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock{impl_->mutex};
    impl_->shutdown = true;
  }
  impl_->wakeWorkers.notify_all();
  for (std::thread& thread : impl_->threads) thread.join();
  delete impl_;
}

bool ThreadPool::insideWorker() { return tlInsideWorker; }

void ThreadPool::parallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  failures_.clear();
  if (count == 0) return;

  // Nested call (or a one-worker pool): run inline on this thread. The
  // nested path must not wait on the pool — the pool's workers may be the
  // very threads executing the outer level.
  if (tlInsideWorker || workers_ == 1 || count == 1) {
    WorkerScope scope;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        failures_.push_back({i, std::current_exception()});
      }
    }
    return;
  }

  {
    std::scoped_lock lock{impl_->mutex};
    BDP_ASSERT_MSG(!impl_->jobInFlight,
                   "ThreadPool::parallelFor is not re-entrant from outside "
                   "the pool — one job at a time");
    impl_->jobInFlight = true;
    impl_->count = count;
    impl_->fn = &fn;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->activeWorkers = workers_ - 1;
    impl_->rawFailures.clear();
    ++impl_->generation;
  }
  impl_->wakeWorkers.notify_all();

  {
    WorkerScope scope;
    impl_->workLoop();  // the caller is the workers_-th worker
  }

  {
    std::unique_lock lock{impl_->mutex};
    impl_->jobDone.wait(lock, [&] { return impl_->activeWorkers == 0; });
    impl_->fn = nullptr;
    impl_->jobInFlight = false;
  }

  failures_ = std::move(impl_->rawFailures);
  impl_->rawFailures.clear();
  std::sort(failures_.begin(), failures_.end(),
            [](const TaskFailure& x, const TaskFailure& y) {
              return x.index < y.index;
            });
}

}  // namespace blackdp::sim
