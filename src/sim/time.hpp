// Simulated time.
//
// Integer microseconds keep the event queue deterministic across platforms
// (no floating-point tie ambiguity) and are fine-grained enough for both
// radio propagation (~µs) and protocol timeouts (~s).
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace blackdp::sim {

/// A span of simulated time, in microseconds.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration microseconds(std::int64_t us) {
    return Duration{us};
  }
  [[nodiscard]] static constexpr Duration milliseconds(std::int64_t ms) {
    return Duration{ms * 1000};
  }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) {
    return Duration{s * 1'000'000};
  }
  /// Fractional seconds, rounded to the nearest microsecond.
  [[nodiscard]] static constexpr Duration fromSeconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5))};
  }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double toSeconds() const {
    return static_cast<double>(us_) / 1e6;
  }

  friend constexpr bool operator==(Duration, Duration) = default;
  friend constexpr auto operator<=>(Duration, Duration) = default;

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.us_ + b.us_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.us_ - b.us_};
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration{a.us_ * k};
  }

  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.us_ << "us";
  }

 private:
  constexpr explicit Duration(std::int64_t us) : us_{us} {}
  std::int64_t us_{0};
};

/// An absolute point on the simulated clock. Time zero is simulation start.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint fromUs(std::int64_t us) {
    return TimePoint{us};
  }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double toSeconds() const {
    return static_cast<double>(us_) / 1e6;
  }

  friend constexpr bool operator==(TimePoint, TimePoint) = default;
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.us_ + d.us()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::microseconds(a.us_ - b.us_);
  }

  friend std::ostream& operator<<(std::ostream& os, TimePoint t) {
    return os << t.us_ << "us";
  }

 private:
  constexpr explicit TimePoint(std::int64_t us) : us_{us} {}
  std::int64_t us_{0};
};

}  // namespace blackdp::sim
