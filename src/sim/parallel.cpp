#include "sim/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "common/logging.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace blackdp::sim {

namespace {

std::string describeException(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

unsigned resolveJobCount(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("BLACKDP_JOBS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(parsed);
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

unsigned consumeJobsFlag(int& argc, char** argv) {
  unsigned jobs = 0;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      const long parsed = std::strtol(argv[i + 1], nullptr, 10);
      if (parsed > 0) jobs = static_cast<unsigned>(parsed);
      ++i;  // swallow the value
      continue;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      const long parsed = std::strtol(arg.c_str() + 7, nullptr, 10);
      if (parsed > 0) jobs = static_cast<unsigned>(parsed);
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return jobs;
}

ParallelRunner::ParallelRunner(unsigned jobs) : jobs_{resolveJobCount(jobs)} {}

ThreadPool& ParallelRunner::threadPool() const {
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(jobs_);
  return *pool_;
}

void ParallelRunner::forEachIndex(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  swallowedFailures_.clear();
  if (count == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, count));
  // Serial paths: one job, or a nested call from inside a pool worker (the
  // jobs budget belongs to the outer level — degrade to inline, identical
  // to jobs == 1, instead of oversubscribing).
  if (workers <= 1 || ThreadPool::insideWorker()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  threadPool().parallelFor(count, fn);
  const std::vector<ThreadPool::TaskFailure>& failures =
      threadPool().failures();
  if (failures.empty()) return;

  // Rethrow the lowest-indexed failure so the propagated exception is the
  // same whatever the interleaving — but first record every OTHER failure
  // (log + trace + metrics + swallowedFailures()), so a multi-failure run
  // is never diagnosed blind from just the one rethrown exception.
  // parallelFor already sorted by task index.
  for (std::size_t i = 1; i < failures.size(); ++i) {
    WorkerFailure swallowed{failures[i].index,
                            describeException(failures[i].error)};
    BDP_LOG(kWarn, "parallel")
        << "task " << swallowed.index << " also failed (suppressed by task "
        << failures.front().index << "): " << swallowed.what;
    if (auto* tr = obs::Trace::active()) {
      tr->record({0, obs::EventKind::kParallel,
                  static_cast<std::uint8_t>(obs::ParallelOp::kWorkerFailure),
                  0, 0, 0, 0, 0, swallowed.index, swallowed.what});
    }
    if (metrics_ != nullptr) {
      metrics_->counter("parallel.worker_failures").add(1);
    }
    swallowedFailures_.push_back(std::move(swallowed));
  }
  std::rethrow_exception(failures.front().error);
}

}  // namespace blackdp::sim
