#include "sim/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <thread>

namespace blackdp::sim {

unsigned resolveJobCount(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("BLACKDP_JOBS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(parsed);
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

unsigned consumeJobsFlag(int& argc, char** argv) {
  unsigned jobs = 0;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      const long parsed = std::strtol(argv[i + 1], nullptr, 10);
      if (parsed > 0) jobs = static_cast<unsigned>(parsed);
      ++i;  // swallow the value
      continue;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      const long parsed = std::strtol(arg.c_str() + 7, nullptr, 10);
      if (parsed > 0) jobs = static_cast<unsigned>(parsed);
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return jobs;
}

ParallelRunner::ParallelRunner(unsigned jobs) : jobs_{resolveJobCount(jobs)} {}

void ParallelRunner::forEachIndex(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, count));
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex failureMutex;
  std::exception_ptr failure;
  std::size_t failureIndex = std::numeric_limits<std::size_t>::max();

  const auto worker = [&] {
    while (true) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) return;
      try {
        fn(index);
      } catch (...) {
        const std::scoped_lock lock{failureMutex};
        // Keep the lowest-indexed failure so the rethrown exception is the
        // same whatever the interleaving.
        if (index < failureIndex) {
          failureIndex = index;
          failure = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& thread : pool) thread.join();

  if (failure) std::rethrow_exception(failure);
}

}  // namespace blackdp::sim
