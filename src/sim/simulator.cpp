#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace blackdp::sim {

namespace {
constexpr std::size_t kArity = 4;
}  // namespace

EventHandle Simulator::schedule(Duration delay, Callback fn) {
  if (delay < Duration{}) delay = Duration{};
  return scheduleAt(now_ + delay, std::move(fn));
}

EventHandle Simulator::scheduleAt(TimePoint when, Callback fn) {
  BDP_ASSERT_MSG(static_cast<bool>(fn), "scheduled a null callback");
  if (when < now_) when = now_;
  const std::uint64_t seq = nextSeq_++;
  std::uint32_t slot = 0;
  if (!freeSlots_.empty()) {
    slot = freeSlots_.back();
    freeSlots_.pop_back();
    slots_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(fn));
  }
  heapPush(HeapEntry{when, seq, slot});
  return EventHandle{seq};
}

void Simulator::heapPush(HeapEntry entry) {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Simulator::heapPopRoot() {
  if (heap_.size() > 1) heap_.front() = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void Simulator::freeSlot(std::uint32_t slot) {
  slots_[slot] = Callback{};
  freeSlots_.push_back(slot);
}

void Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  if (std::find(cancelled_.begin(), cancelled_.end(), handle.seq_) ==
      cancelled_.end()) {
    cancelled_.push_back(handle.seq_);
  }
}

std::size_t Simulator::run(TimePoint until) {
  if (auto* tr = obs::Trace::active()) {
    tr->record({now_.us(), obs::EventKind::kSimRun,
                static_cast<std::uint8_t>(obs::SimRunOp::kRunBegin), 0, 0, 0,
                0, 0, heap_.size()});
  }
  std::size_t ran = 0;
  while (!heap_.empty()) {
    if (heap_.front().when > until) break;
    if (step()) ++ran;
  }
  if (auto* tr = obs::Trace::active()) {
    tr->record({now_.us(), obs::EventKind::kSimRun,
                static_cast<std::uint8_t>(obs::SimRunOp::kRunEnd), 0, 0, 0, 0,
                0, ran});
  }
  return ran;
}

void Simulator::fastForward(TimePoint to) {
  if (to <= now_) return;
  // Peek past tombstones: jumping over a live pending event would reorder
  // causality (the event would then run "in the past").
  while (!heap_.empty()) {
    const auto it =
        std::find(cancelled_.begin(), cancelled_.end(), heap_.front().seq);
    if (it == cancelled_.end()) break;
    *it = cancelled_.back();
    cancelled_.pop_back();
    freeSlot(heap_.front().slot);
    heapPopRoot();
  }
  BDP_ASSERT_MSG(heap_.empty() || heap_.front().when >= to,
                 "fastForward would skip a pending event");
  now_ = to;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    heapPopRoot();
    if (!cancelled_.empty()) {
      const auto it = std::find(cancelled_.begin(), cancelled_.end(), top.seq);
      if (it != cancelled_.end()) {
        *it = cancelled_.back();
        cancelled_.pop_back();
        freeSlot(top.slot);
        continue;  // tombstone
      }
    }
    BDP_ASSERT_MSG(top.when >= now_, "event queue went backwards in time");
    now_ = top.when;
    ++executed_;
    // Move the callable out and recycle its slot before invoking: the event
    // may schedule again, and the freed slot is the one it should reuse.
    Callback fn = std::move(slots_[top.slot]);
    freeSlots_.push_back(top.slot);
    fn();
    return true;
  }
  return false;
}

}  // namespace blackdp::sim
