#include "sim/simulator.hpp"

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace blackdp::sim {

EventHandle Simulator::schedule(Duration delay, Callback fn) {
  if (delay < Duration{}) delay = Duration{};
  return scheduleAt(now_ + delay, std::move(fn));
}

EventHandle Simulator::scheduleAt(TimePoint when, Callback fn) {
  BDP_ASSERT_MSG(fn != nullptr, "scheduled a null callback");
  if (when < now_) when = now_;
  const std::uint64_t seq = nextSeq_++;
  queue_.push(Event{when, seq, std::move(fn)});
  return EventHandle{seq};
}

void Simulator::cancel(EventHandle handle) {
  if (handle.valid()) cancelled_.insert(handle.seq_);
}

std::size_t Simulator::run(TimePoint until) {
  if (auto* tr = obs::Trace::active()) {
    tr->record({now_.us(), obs::EventKind::kSimRun,
                static_cast<std::uint8_t>(obs::SimRunOp::kRunBegin), 0, 0, 0,
                0, 0, queue_.size()});
  }
  std::size_t ran = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > until) break;
    if (step()) ++ran;
  }
  if (now_ < until && queue_.empty()) {
    // Clock does not advance past the last event when the queue drains; the
    // caller asked to run *until* a bound, not to sleep to it.
  }
  if (auto* tr = obs::Trace::active()) {
    tr->record({now_.us(), obs::EventKind::kSimRun,
                static_cast<std::uint8_t>(obs::SimRunOp::kRunEnd), 0, 0, 0, 0,
                0, ran});
  }
  return ran;
}

void Simulator::fastForward(TimePoint to) {
  if (to <= now_) return;
  // Peek past tombstones: jumping over a live pending event would reorder
  // causality (the event would then run "in the past").
  while (!queue_.empty() && cancelled_.contains(queue_.top().seq)) {
    cancelled_.erase(queue_.top().seq);
    queue_.pop();
  }
  BDP_ASSERT_MSG(queue_.empty() || queue_.top().when >= to,
                 "fastForward would skip a pending event");
  now_ = to;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(ev.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;  // tombstone
    }
    BDP_ASSERT_MSG(ev.when >= now_, "event queue went backwards in time");
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

}  // namespace blackdp::sim
