// Deterministic random number generation.
//
// Every stochastic component draws from its own named stream derived from the
// master scenario seed, so adding a new consumer never perturbs the draws of
// existing ones — a prerequisite for comparing treatments (with/without
// attacker, BlackDP vs. baseline) on identical traffic.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace blackdp::sim {

/// One deterministic random stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_{seed} {}

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Bernoulli draw with probability p of true.
  [[nodiscard]] bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution{p}(engine_);
  }

  /// Uniform index in [0, n).
  [[nodiscard]] std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniformInt(0, static_cast<std::int64_t>(n) - 1));
  }

  [[nodiscard]] std::uint64_t nextU64() { return engine_(); }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }
  [[nodiscard]] const std::mt19937_64& engine() const { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Derives the master seed for one trial of a campaign from the campaign
/// seed and the trial's index (SplitMix64: a fixed-increment jump to the
/// index, then the avalanche finaliser). Each index gets an independent,
/// well-mixed seed as a pure function of (campaignSeed, trialIndex) — no
/// shared generator state — so trials can be computed in any order, on any
/// worker, and adding trials or axes never perturbs the seeds of existing
/// ones.
[[nodiscard]] constexpr std::uint64_t deriveTrialSeed(
    std::uint64_t campaignSeed, std::uint64_t trialIndex) {
  std::uint64_t z = campaignSeed + (trialIndex + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Derives independent child seeds/streams from a master seed by hashing the
/// stream name (FNV-1a) into the seed. Deterministic across platforms.
class SeedSequence {
 public:
  explicit SeedSequence(std::uint64_t masterSeed) : master_{masterSeed} {}

  [[nodiscard]] std::uint64_t deriveSeed(std::string_view streamName) const {
    std::uint64_t h = 14695981039346656037ull ^ master_;
    for (char c : streamName) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ull;
    }
    // Final avalanche (splitmix64 finaliser) so nearby seeds diverge.
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h;
  }

  [[nodiscard]] Rng stream(std::string_view streamName) const {
    return Rng{deriveSeed(streamName)};
  }

  [[nodiscard]] std::uint64_t masterSeed() const { return master_; }

 private:
  std::uint64_t master_;
};

}  // namespace blackdp::sim
