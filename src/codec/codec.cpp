#include "codec/codec.hpp"

#include <stdexcept>

#include "aodv/messages.hpp"
#include "cluster/messages.hpp"
#include "common/assert.hpp"
#include "core/messages.hpp"

namespace blackdp::codec {
using net::Frame;
using net::Payload;
using net::PayloadPtr;

namespace {

constexpr std::uint32_t kMagic = 0x42445046;  // "BDPF"
constexpr std::uint8_t kVersion = 1;

// ----------------------------------------------------------- field helpers

void writeSignature(common::ByteWriter& w, const crypto::Signature& sig) {
  w.writeU64(sig.keyId);
  w.writeBlob(std::span<const std::uint8_t>{sig.mac.data(), sig.mac.size()});
}

crypto::Signature readSignature(common::ByteReader& r) {
  crypto::Signature sig;
  sig.keyId = r.readU64();
  const common::Bytes mac = r.readBlob();
  if (mac.size() != sig.mac.size()) {
    throw std::invalid_argument("codec: bad signature length");
  }
  std::copy(mac.begin(), mac.end(), sig.mac.begin());
  return sig;
}

void writeCertificate(common::ByteWriter& w, const crypto::Certificate& cert) {
  w.writeId(cert.pseudonym);
  w.writeU64(cert.subjectKey.keyId);
  w.writeId(cert.serial);
  w.writeI64(cert.issuedAt.us());
  w.writeI64(cert.expiresAt.us());
  w.writeId(cert.issuer);
  writeSignature(w, cert.issuerSignature);
}

crypto::Certificate readCertificate(common::ByteReader& r) {
  crypto::Certificate cert;
  cert.pseudonym = r.readId<common::Address>();
  cert.subjectKey.keyId = r.readU64();
  cert.serial = r.readId<common::CertSerial>();
  cert.issuedAt = sim::TimePoint::fromUs(r.readI64());
  cert.expiresAt = sim::TimePoint::fromUs(r.readI64());
  cert.issuer = r.readId<common::TaId>();
  cert.issuerSignature = readSignature(r);
  return cert;
}

void writeEnvelope(common::ByteWriter& w,
                   const std::optional<aodv::SecureEnvelope>& envelope) {
  w.writeBool(envelope.has_value());
  if (!envelope) return;
  writeCertificate(w, envelope->certificate);
  writeSignature(w, envelope->signature);
}

std::optional<aodv::SecureEnvelope> readEnvelope(common::ByteReader& r) {
  if (!r.readBool()) return std::nullopt;
  aodv::SecureEnvelope envelope;
  envelope.certificate = readCertificate(r);
  envelope.signature = readSignature(r);
  return envelope;
}

void writeNotice(common::ByteWriter& w, const crypto::RevocationNotice& n) {
  w.writeId(n.pseudonym);
  w.writeId(n.serial);
  w.writeI64(n.certExpiry.us());
}

crypto::RevocationNotice readNotice(common::ByteReader& r) {
  crypto::RevocationNotice n;
  n.pseudonym = r.readId<common::Address>();
  n.serial = r.readId<common::CertSerial>();
  n.certExpiry = sim::TimePoint::fromUs(r.readI64());
  return n;
}

// ------------------------------------------------------------ per-payload

void encodePayload(common::ByteWriter& w, const Payload& payload);

/// Nested-payload depth cap (kData packets can carry an inner payload). A
/// crafted frame nesting thousands of kData headers would otherwise recurse
/// once per level and overflow the stack; honest traffic nests at most once.
constexpr int kMaxPayloadDepth = 8;

PayloadPtr decodePayload(common::ByteReader& r, int depth = 0);

/// Verdicts travel as a u8; anything outside the enum's range is a forgery
/// or corruption, not a value the detector should ever switch over.
core::Verdict readVerdict(common::ByteReader& r) {
  const std::uint8_t raw = r.readU8();
  if (raw > static_cast<std::uint8_t>(core::Verdict::kUnreachable)) {
    throw std::invalid_argument("codec: verdict out of range");
  }
  return static_cast<core::Verdict>(raw);
}

void encodeBody(common::ByteWriter& w, const aodv::RouteRequest& m) {
  w.writeU8(static_cast<std::uint8_t>(WireType::kRreq));
  w.writeId(m.rreqId);
  w.writeId(m.origin);
  w.writeU32(m.originSeq);
  w.writeId(m.destination);
  w.writeU32(m.destSeq);
  w.writeBool(m.unknownDestSeq);
  w.writeU8(m.hopCount);
  w.writeU8(m.ttl);
  w.writeBool(m.inquireNextHop);
}

void encodeBody(common::ByteWriter& w, const aodv::RouteReply& m) {
  w.writeU8(static_cast<std::uint8_t>(WireType::kRrep));
  w.writeId(m.rreqId);
  w.writeId(m.origin);
  w.writeId(m.destination);
  w.writeU32(m.destSeq);
  w.writeU8(m.hopCount);
  w.writeId(m.replier);
  w.writeId(m.replierCluster);
  w.writeI64(m.lifetime.us());
  w.writeId(m.claimedNextHop);
  writeEnvelope(w, m.envelope);
}

void encodeBody(common::ByteWriter& w, const aodv::RouteError& m) {
  w.writeU8(static_cast<std::uint8_t>(WireType::kRerr));
  w.writeId(m.destination);
  w.writeU32(m.destSeq);
  w.writeId(m.origin);
}

void encodeBody(common::ByteWriter& w, const aodv::DataPacket& m) {
  w.writeU8(static_cast<std::uint8_t>(WireType::kData));
  w.writeId(m.origin);
  w.writeId(m.destination);
  w.writeU64(m.packetId);
  w.writeU8(m.hopsTraversed);
  w.writeU32(m.bodyBytes);
  w.writeBool(m.inner != nullptr);
  if (m.inner) encodePayload(w, *m.inner);
}

void encodeBody(common::ByteWriter& w, const aodv::HelloBeacon& m) {
  w.writeU8(static_cast<std::uint8_t>(WireType::kHelloBeacon));
  w.writeId(m.origin);
  w.writeU32(m.originSeq);
}

void encodeBody(common::ByteWriter& w, const cluster::JoinRequest& m) {
  w.writeU8(static_cast<std::uint8_t>(WireType::kJoinRequest));
  w.writeId(m.vehicle);
  w.writeI64(static_cast<std::int64_t>(m.position.x * 1000.0));
  w.writeI64(static_cast<std::int64_t>(m.position.y * 1000.0));
  w.writeI64(static_cast<std::int64_t>(m.speedMps * 1000.0));
  w.writeU8(m.direction == mobility::Direction::kEastbound ? 0 : 1);
}

void encodeBody(common::ByteWriter& w, const cluster::JoinReply& m) {
  w.writeU8(static_cast<std::uint8_t>(WireType::kJoinReply));
  w.writeId(m.vehicle);
  w.writeId(m.cluster);
  w.writeId(m.clusterHeadAddress);
  w.writeU32(static_cast<std::uint32_t>(m.activeRevocations.size()));
  for (const crypto::RevocationNotice& notice : m.activeRevocations) {
    writeNotice(w, notice);
  }
  w.writeU32(static_cast<std::uint32_t>(m.neighbors.size()));
  for (const cluster::NeighborChInfo& neighbor : m.neighbors) {
    w.writeId(neighbor.cluster);
    w.writeId(neighbor.address);
  }
}

void encodeBody(common::ByteWriter& w, const cluster::LeaveNotice& m) {
  w.writeU8(static_cast<std::uint8_t>(WireType::kLeaveNotice));
  w.writeId(m.vehicle);
}

void encodeBody(common::ByteWriter& w,
                const cluster::RevocationAnnouncement& m) {
  w.writeU8(static_cast<std::uint8_t>(WireType::kRevocationAnnouncement));
  writeNotice(w, m.notice);
}

void encodeBody(common::ByteWriter& w, const core::AuthHello& m) {
  w.writeU8(static_cast<std::uint8_t>(WireType::kAuthHello));
  w.writeU64(m.helloId);
  w.writeId(m.origin);
  w.writeId(m.destination);
  w.writeBool(m.isReply);
  w.writeId(m.responder);
  writeEnvelope(w, m.envelope);
}

void encodeBody(common::ByteWriter& w, const core::DetectionRequest& m) {
  w.writeU8(static_cast<std::uint8_t>(WireType::kDetectionRequest));
  w.writeId(m.reporter);
  w.writeId(m.reporterCluster);
  w.writeId(m.suspect);
  w.writeId(m.suspectCluster);
  w.writeU64(m.nonce);
  writeEnvelope(w, m.envelope);
}

void encodeBody(common::ByteWriter& w, const core::ForwardedDetection& m) {
  w.writeU8(static_cast<std::uint8_t>(WireType::kForwardedDetection));
  w.writeId(m.session);
  w.writeId(m.reporter);
  w.writeId(m.reporterCluster);
  w.writeId(m.suspect);
  w.writeU8(m.stage);
  w.writeU32(m.lastSeenSeq);
  w.writeU32(m.packetsSoFar);
  w.writeU8(m.forwardCount);
  w.writeI64(m.startedAt.us());
}

void encodeBody(common::ByteWriter& w, const core::DetectionResult& m) {
  w.writeU8(static_cast<std::uint8_t>(WireType::kDetectionResult));
  w.writeId(m.session);
  w.writeId(m.reporter);
  w.writeId(m.suspect);
  w.writeU8(static_cast<std::uint8_t>(m.verdict));
  w.writeId(m.accomplice);
  w.writeU32(m.packetsUsed);
}

void encodeBody(common::ByteWriter& w, const core::DetectionResponse& m) {
  w.writeU8(static_cast<std::uint8_t>(WireType::kDetectionResponse));
  w.writeId(m.reporter);
  w.writeId(m.suspect);
  w.writeU8(static_cast<std::uint8_t>(m.verdict));
  w.writeId(m.accomplice);
}

template <typename T>
bool tryEncode(common::ByteWriter& w, const Payload& payload) {
  if (const auto* m = dynamic_cast<const T*>(&payload)) {
    encodeBody(w, *m);
    return true;
  }
  return false;
}

void encodePayload(common::ByteWriter& w, const Payload& payload) {
  const bool encoded =
      tryEncode<aodv::RouteRequest>(w, payload) ||
      tryEncode<aodv::RouteReply>(w, payload) ||
      tryEncode<aodv::RouteError>(w, payload) ||
      tryEncode<aodv::DataPacket>(w, payload) ||
      tryEncode<aodv::HelloBeacon>(w, payload) ||
      tryEncode<cluster::JoinRequest>(w, payload) ||
      tryEncode<cluster::JoinReply>(w, payload) ||
      tryEncode<cluster::LeaveNotice>(w, payload) ||
      tryEncode<cluster::RevocationAnnouncement>(w, payload) ||
      tryEncode<core::AuthHello>(w, payload) ||
      tryEncode<core::DetectionRequest>(w, payload) ||
      tryEncode<core::ForwardedDetection>(w, payload) ||
      tryEncode<core::DetectionResult>(w, payload) ||
      tryEncode<core::DetectionResponse>(w, payload);
  BDP_ASSERT_MSG(encoded, std::string("codec: unknown payload type ") +
                              std::string(payload.typeName()));
}

PayloadPtr decodePayload(common::ByteReader& r, int depth) {
  if (depth > kMaxPayloadDepth) {
    throw std::invalid_argument("codec: payload nesting too deep");
  }
  const auto tag = static_cast<WireType>(r.readU8());
  switch (tag) {
    case WireType::kRreq: {
      auto m = net::makeMutablePayload<aodv::RouteRequest>();
      m->rreqId = r.readId<common::RreqId>();
      m->origin = r.readId<common::Address>();
      m->originSeq = r.readU32();
      m->destination = r.readId<common::Address>();
      m->destSeq = r.readU32();
      m->unknownDestSeq = r.readBool();
      m->hopCount = r.readU8();
      m->ttl = r.readU8();
      m->inquireNextHop = r.readBool();
      return m;
    }
    case WireType::kRrep: {
      auto m = net::makeMutablePayload<aodv::RouteReply>();
      m->rreqId = r.readId<common::RreqId>();
      m->origin = r.readId<common::Address>();
      m->destination = r.readId<common::Address>();
      m->destSeq = r.readU32();
      m->hopCount = r.readU8();
      m->replier = r.readId<common::Address>();
      m->replierCluster = r.readId<common::ClusterId>();
      m->lifetime = sim::Duration::microseconds(r.readI64());
      m->claimedNextHop = r.readId<common::Address>();
      m->envelope = readEnvelope(r);
      return m;
    }
    case WireType::kRerr: {
      auto m = net::makeMutablePayload<aodv::RouteError>();
      m->destination = r.readId<common::Address>();
      m->destSeq = r.readU32();
      m->origin = r.readId<common::Address>();
      return m;
    }
    case WireType::kData: {
      auto m = net::makeMutablePayload<aodv::DataPacket>();
      m->origin = r.readId<common::Address>();
      m->destination = r.readId<common::Address>();
      m->packetId = r.readU64();
      m->hopsTraversed = r.readU8();
      m->bodyBytes = r.readU32();
      if (r.readBool()) m->inner = decodePayload(r, depth + 1);
      return m;
    }
    case WireType::kHelloBeacon: {
      auto m = net::makeMutablePayload<aodv::HelloBeacon>();
      m->origin = r.readId<common::Address>();
      m->originSeq = r.readU32();
      return m;
    }
    case WireType::kJoinRequest: {
      auto m = net::makeMutablePayload<cluster::JoinRequest>();
      m->vehicle = r.readId<common::Address>();
      m->position.x = static_cast<double>(r.readI64()) / 1000.0;
      m->position.y = static_cast<double>(r.readI64()) / 1000.0;
      m->speedMps = static_cast<double>(r.readI64()) / 1000.0;
      m->direction = r.readU8() == 0 ? mobility::Direction::kEastbound
                                     : mobility::Direction::kWestbound;
      return m;
    }
    case WireType::kJoinReply: {
      auto m = net::makeMutablePayload<cluster::JoinReply>();
      m->vehicle = r.readId<common::Address>();
      m->cluster = r.readId<common::ClusterId>();
      m->clusterHeadAddress = r.readId<common::Address>();
      const std::uint32_t count = r.readU32();
      for (std::uint32_t i = 0; i < count; ++i) {
        m->activeRevocations.push_back(readNotice(r));
      }
      const std::uint32_t neighborCount = r.readU32();
      for (std::uint32_t i = 0; i < neighborCount; ++i) {
        cluster::NeighborChInfo neighbor;
        neighbor.cluster = r.readId<common::ClusterId>();
        neighbor.address = r.readId<common::Address>();
        m->neighbors.push_back(neighbor);
      }
      return m;
    }
    case WireType::kLeaveNotice: {
      auto m = net::makeMutablePayload<cluster::LeaveNotice>();
      m->vehicle = r.readId<common::Address>();
      return m;
    }
    case WireType::kRevocationAnnouncement: {
      auto m = net::makeMutablePayload<cluster::RevocationAnnouncement>();
      m->notice = readNotice(r);
      return m;
    }
    case WireType::kAuthHello: {
      auto m = net::makeMutablePayload<core::AuthHello>();
      m->helloId = r.readU64();
      m->origin = r.readId<common::Address>();
      m->destination = r.readId<common::Address>();
      m->isReply = r.readBool();
      m->responder = r.readId<common::Address>();
      m->envelope = readEnvelope(r);
      return m;
    }
    case WireType::kDetectionRequest: {
      auto m = net::makeMutablePayload<core::DetectionRequest>();
      m->reporter = r.readId<common::Address>();
      m->reporterCluster = r.readId<common::ClusterId>();
      m->suspect = r.readId<common::Address>();
      m->suspectCluster = r.readId<common::ClusterId>();
      m->nonce = r.readU64();
      m->envelope = readEnvelope(r);
      return m;
    }
    case WireType::kForwardedDetection: {
      auto m = net::makeMutablePayload<core::ForwardedDetection>();
      m->session = r.readId<common::DetectionSessionId>();
      m->reporter = r.readId<common::Address>();
      m->reporterCluster = r.readId<common::ClusterId>();
      m->suspect = r.readId<common::Address>();
      m->stage = r.readU8();
      m->lastSeenSeq = r.readU32();
      m->packetsSoFar = r.readU32();
      m->forwardCount = r.readU8();
      m->startedAt = sim::TimePoint::fromUs(r.readI64());
      return m;
    }
    case WireType::kDetectionResult: {
      auto m = net::makeMutablePayload<core::DetectionResult>();
      m->session = r.readId<common::DetectionSessionId>();
      m->reporter = r.readId<common::Address>();
      m->suspect = r.readId<common::Address>();
      m->verdict = readVerdict(r);
      m->accomplice = r.readId<common::Address>();
      m->packetsUsed = r.readU32();
      return m;
    }
    case WireType::kDetectionResponse: {
      auto m = net::makeMutablePayload<core::DetectionResponse>();
      m->reporter = r.readId<common::Address>();
      m->suspect = r.readId<common::Address>();
      m->verdict = readVerdict(r);
      m->accomplice = r.readId<common::Address>();
      return m;
    }
  }
  throw std::invalid_argument("codec: unknown wire tag");
}

}  // namespace

common::Bytes encodeFrame(const Frame& frame) {
  BDP_ASSERT_MSG(frame.payload != nullptr, "codec: frame without payload");
  common::ByteWriter w;
  w.writeU32(kMagic);
  w.writeU8(kVersion);
  w.writeId(frame.src);
  w.writeId(frame.dst);
  encodePayload(w, *frame.payload);
  return std::move(w).take();
}

common::Result<Frame> decodeFrame(std::span<const std::uint8_t> wire) {
  try {
    common::ByteReader r{wire};
    if (r.readU32() != kMagic) {
      return common::Error{"bad-magic", "not a BlackDP frame"};
    }
    if (r.readU8() != kVersion) {
      return common::Error{"bad-version", "unsupported frame version"};
    }
    Frame frame;
    frame.src = r.readId<common::Address>();
    frame.dst = r.readId<common::Address>();
    frame.payload = decodePayload(r);
    if (!r.exhausted()) {
      return common::Error{"trailing-bytes", "frame has trailing bytes"};
    }
    return frame;
  } catch (const std::out_of_range& e) {
    return common::Error{"truncated", e.what()};
  } catch (const std::invalid_argument& e) {
    return common::Error{"malformed", e.what()};
  }
}

}  // namespace blackdp::codec
