// Versioned checkpoint envelope.
//
// Detection-side state (detector verification tables, reporter ledgers, CH
// membership, TA revocation state, RNG streams) snapshots into one durable
// blob so a long-running detector service can be killed at an arbitrary
// epoch boundary and resumed byte-identically. The envelope is deliberately
// dumb and self-verifying:
//
//   magic "BDPC" | u16 schema version | u32 section count
//   [ u16 tag | u32 length | body ]*  | u32 CRC-32 (over everything before)
//
// Sections are opaque byte blobs produced by each subsystem's saveState();
// the envelope knows nothing about their contents, so subsystems evolve
// their section layout under the schema version without touching this file.
// The CRC is CRC-32/ISO-HDLC (the zlib/binascii polynomial), so external
// tooling (scripts/validate_bench_json.py) can verify checkpoint files
// without linking the codec.
//
// Version-skew policy: a reader accepts exactly its own schema version.
// There is no in-place migration — a version mismatch is a typed
// "bad-version" error, and the caller decides (re-run from scratch, or
// replay the recorded d_req trace through the new build via
// tools/replay_serve).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace blackdp::codec {

inline constexpr std::uint32_t kCheckpointMagic = 0x42445043;  // "BDPC"
inline constexpr std::uint16_t kCheckpointVersion = 1;

/// Section tags (stable; append only).
enum class CheckpointTag : std::uint16_t {
  kMeta = 1,     ///< config hash, seed, epoch cursor, sim clock
  kMedium = 2,   ///< wireless-medium RNG stream
  kTa = 3,       ///< TA network dynamic state (paused nodes, revocations)
  kCluster = 4,  ///< one per cluster: CH tables + detector state
  kStream = 5,   ///< stream-driver cursors, counters, verdict hash
  kCorridorMeta = 6,      ///< megacity config hash, seed, epoch, shard count
  kCorridorShard = 7,     ///< one per shard: segments, detectors, vehicles
  kCorridorExchange = 8,  ///< in-flight cross-shard envelopes (per-shard inboxes)
};

struct CheckpointSection {
  std::uint16_t tag{0};
  common::Bytes body;
};

/// A decoded checkpoint: schema version plus sections in file order.
struct Checkpoint {
  std::uint16_t version{kCheckpointVersion};
  std::vector<CheckpointSection> sections;

  /// First section with `tag`, or nullptr.
  [[nodiscard]] const common::Bytes* find(CheckpointTag tag) const;
  /// Every section with `tag`, in file order (kCluster repeats per cluster).
  [[nodiscard]] std::vector<const common::Bytes*> findAll(
      CheckpointTag tag) const;
};

/// Accumulates sections and seals them into one enveloped blob.
class CheckpointBuilder {
 public:
  void add(CheckpointTag tag, common::Bytes body);
  /// Seals the envelope (magic, version, sections, CRC). The builder can be
  /// reused afterwards; sections are kept.
  [[nodiscard]] common::Bytes finish() const;

 private:
  std::vector<CheckpointSection> sections_;
};

/// CRC-32/ISO-HDLC (reflected, poly 0xEDB88320, init/xorout 0xFFFFFFFF) —
/// bit-compatible with zlib's crc32() and Python's binascii.crc32.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Decodes and verifies an envelope. Typed errors, never UB:
///   "bad-magic"   not a checkpoint
///   "bad-version" schema version skew (detail carries found vs expected)
///   "truncated"   buffer ends mid-structure
///   "bad-crc"     payload corrupted
///   "malformed"   structurally invalid (e.g. trailing bytes)
[[nodiscard]] common::Result<Checkpoint> decodeCheckpoint(
    std::span<const std::uint8_t> bytes);

/// Writes `bytes` to `path` crash-consistently: the data goes to a
/// temporary file in the same directory which is atomically renamed over
/// `path` only after a successful complete write. On ANY failure —
/// including an exception thrown by `midWriteHook`, a test-and-fault hook
/// that runs after the temp write but before the rename — the temp file is
/// removed and `path` is left untouched (either absent or holding its
/// previous complete contents). The hook's exception propagates to the
/// caller after cleanup.
[[nodiscard]] common::Status writeFileAtomic(
    const std::string& path, std::span<const std::uint8_t> bytes,
    const std::function<void()>& midWriteHook = {});

/// Reads a whole file. Error code "io" when missing/unreadable.
[[nodiscard]] common::Result<common::Bytes> readFile(const std::string& path);

}  // namespace blackdp::codec
