#include "codec/checkpoint.hpp"

#include <array>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace blackdp::codec {

namespace {

std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

/// Removes the temp file on scope exit unless disarmed by commit().
class TempFileGuard {
 public:
  explicit TempFileGuard(std::string path) : path_{std::move(path)} {}
  ~TempFileGuard() {
    if (armed_) std::remove(path_.c_str());
  }
  void commit() { armed_ = false; }

 private:
  std::string path_;
  bool armed_{true};
};

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = makeCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

const common::Bytes* Checkpoint::find(CheckpointTag tag) const {
  for (const CheckpointSection& s : sections) {
    if (s.tag == static_cast<std::uint16_t>(tag)) return &s.body;
  }
  return nullptr;
}

std::vector<const common::Bytes*> Checkpoint::findAll(CheckpointTag tag) const {
  std::vector<const common::Bytes*> out;
  for (const CheckpointSection& s : sections) {
    if (s.tag == static_cast<std::uint16_t>(tag)) out.push_back(&s.body);
  }
  return out;
}

void CheckpointBuilder::add(CheckpointTag tag, common::Bytes body) {
  sections_.push_back({static_cast<std::uint16_t>(tag), std::move(body)});
}

common::Bytes CheckpointBuilder::finish() const {
  common::ByteWriter w;
  w.writeU32(kCheckpointMagic);
  w.writeU16(kCheckpointVersion);
  w.writeU32(static_cast<std::uint32_t>(sections_.size()));
  for (const CheckpointSection& s : sections_) {
    w.writeU16(s.tag);
    w.writeBlob(s.body);
  }
  common::Bytes out = std::move(w).take();
  const std::uint32_t crc = crc32(out);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>((crc >> shift) & 0xff));
  }
  return out;
}

common::Result<Checkpoint> decodeCheckpoint(
    std::span<const std::uint8_t> bytes) {
  try {
    common::ByteReader r{bytes};
    if (r.readU32() != kCheckpointMagic) {
      return common::Error{"bad-magic", "not a BlackDP checkpoint"};
    }
    const std::uint16_t version = r.readU16();
    if (version != kCheckpointVersion) {
      return common::Error{
          "bad-version", "checkpoint schema v" + std::to_string(version) +
                             ", this build reads v" +
                             std::to_string(kCheckpointVersion) +
                             " (replay the d_req trace to migrate)"};
    }
    // Validate the trailing CRC before trusting any section length.
    if (bytes.size() < 4) {
      return common::Error{"truncated", "no room for CRC"};
    }
    const std::span<const std::uint8_t> payload =
        bytes.subspan(0, bytes.size() - 4);
    std::uint32_t storedCrc = 0;
    for (std::size_t i = bytes.size() - 4; i < bytes.size(); ++i) {
      storedCrc = (storedCrc << 8) | bytes[i];
    }
    if (crc32(payload) != storedCrc) {
      return common::Error{"bad-crc", "checkpoint payload corrupted"};
    }

    Checkpoint checkpoint;
    checkpoint.version = version;
    const std::uint32_t count = r.readU32();
    for (std::uint32_t i = 0; i < count; ++i) {
      CheckpointSection section;
      section.tag = r.readU16();
      section.body = r.readBlob();
      checkpoint.sections.push_back(std::move(section));
    }
    if (r.remaining() != 4) {  // exactly the CRC must remain
      return common::Error{"malformed", "trailing bytes after sections"};
    }
    return checkpoint;
  } catch (const std::out_of_range& e) {
    return common::Error{"truncated", e.what()};
  } catch (const std::invalid_argument& e) {
    return common::Error{"malformed", e.what()};
  }
}

common::Status writeFileAtomic(const std::string& path,
                               std::span<const std::uint8_t> bytes,
                               const std::function<void()>& midWriteHook) {
  const std::string tmp = path + ".tmp";
  TempFileGuard guard{tmp};
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) {
      return common::Error{"io", "cannot open " + tmp + " for writing"};
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      return common::Error{"io", "short write to " + tmp};
    }
  }
  // Fault-injection point: a crash (exception) here must leave no partial
  // checkpoint behind — the guard unwinds and removes the temp file.
  if (midWriteHook) midWriteHook();
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return common::Error{"io", "cannot rename " + tmp + " to " + path};
  }
  guard.commit();
  return common::Status::success();
}

common::Result<common::Bytes> readFile(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    return common::Error{"io", "cannot open " + path};
  }
  common::Bytes bytes{std::istreambuf_iterator<char>{in},
                      std::istreambuf_iterator<char>{}};
  if (in.bad()) {
    return common::Error{"io", "read error on " + path};
  }
  return bytes;
}

}  // namespace blackdp::codec
