// Wire-format codec.
//
// Serialises every protocol payload (AODV, cluster management, BlackDP) to
// a tagged binary frame format and back. The simulator itself passes
// payloads by pointer — this codec exists for the edges a real deployment
// needs: persisting traces, replaying captured frames, and interoperating
// across processes. Round-trip identity for every message type is enforced
// by tests/codec_test.cpp.
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "net/frame.hpp"

namespace blackdp::codec {
using net::Frame;
using net::Payload;
using net::PayloadPtr;

/// Payload type tags on the wire (stable; append only).
enum class WireType : std::uint8_t {
  kRreq = 1,
  kRrep = 2,
  kRerr = 3,
  kData = 4,
  kHelloBeacon = 5,
  kJoinRequest = 6,
  kJoinReply = 7,
  kLeaveNotice = 8,
  kRevocationAnnouncement = 9,
  kAuthHello = 10,
  kDetectionRequest = 11,
  kForwardedDetection = 12,
  kDetectionResult = 13,
  kDetectionResponse = 14,
};

/// Encodes a frame (header + tagged payload). Throws AssertionError on
/// payload types the codec does not know (nested DataPacket inner payloads
/// are supported recursively).
[[nodiscard]] common::Bytes encodeFrame(const Frame& frame);

/// Decodes a frame. Returns an Error for unknown tags or malformed input.
[[nodiscard]] common::Result<Frame> decodeFrame(
    std::span<const std::uint8_t> wire);

}  // namespace blackdp::codec
