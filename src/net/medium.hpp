// Unit-disk wireless medium.
//
// Models DSRC at the connectivity level the paper assumes (§III-A): an
// identical, bidirectional transmission range for all nodes (Table I: 1000 m).
// A transmitted frame reaches every attached node within range of the sender
// at transmission time, after a deterministic per-hop latency plus seeded
// jitter (the jitter provides the tie-breaking the paper's "replies as fast
// as it can" behaviour races against). Optional i.i.d. frame loss supports
// failure-injection tests.
//
// Hot path: receivers live in a node-id-ordered array maintained on
// attach/detach (rare), and a uniform spatial grid keyed by
// cell = ⌊pos / transmissionRange⌋ narrows each send to the sender's cell
// neighborhood instead of the whole fleet. Both the grid and the plain
// linear scan visit in-range receivers in strictly ascending node-id order
// and draw from the RNG for exactly the same receiver sequence, so a run
// replays byte-identically whichever path is active (pinned by
// medium_grid_test).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/address_registry.hpp"
#include "mobility/motion.hpp"
#include "net/frame.hpp"
#include "obs/trace_event.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace blackdp::net {

/// What the medium needs from an attached node.
class Radio {
 public:
  virtual ~Radio() = default;

  /// Current physical position (queried at transmission time).
  [[nodiscard]] virtual mobility::Position radioPosition() const = 0;

  /// Frame arrival. Every in-range node hears every frame; address filtering
  /// happens in the node, as on a real shared channel.
  virtual void onFrame(const Frame& frame) = 0;

  /// 802.11-style transmission feedback: a *unicast* frame's addressee was
  /// unreachable (out of range, detached, or unknown) — no ACK came back.
  /// Broadcasts never generate this. Default: ignore.
  virtual void onSendFailed(const Frame& frame) { (void)frame; }
};

struct MediumConfig {
  double transmissionRangeM{1000.0};              ///< Table I / DSRC [12]
  sim::Duration perHopLatency{sim::Duration::microseconds(500)};
  sim::Duration maxJitter{sim::Duration::microseconds(100)};
  double lossProbability{0.0};
  /// Spatial-grid receiver index (cell size = transmission range). Off =
  /// plain linear scan over the id-ordered receiver array. Both paths are
  /// byte-identical; the grid only changes how candidates are found.
  bool spatialGrid{true};
  /// Upper bound on how fast any attached node moves. The grid is rebuilt
  /// before a node could have drifted more than one cell since the last
  /// build, which keeps the 5×5-cell candidate neighborhood exact. Table I
  /// tops out at 90 km/h = 25 m/s; the default leaves headroom.
  double maxNodeSpeedMps{50.0};
};

/// Channel-impairment hook (the fault-injection layer implements it).
/// Consulted once per (frame, receiver) delivery decision, *before* the
/// medium's own i.i.d. loss draw, so an uninstalled or never-dropping hook
/// leaves the medium's RNG stream — and thus the whole simulation — exactly
/// as without it.
class MediumFaultHook {
 public:
  virtual ~MediumFaultHook() = default;

  /// Anything but kNone ⇒ this delivery is lost to an injected fault, and
  /// the returned cause attributes the drop (kBurstLoss, kJam, ...).
  virtual obs::DropCause dropDelivery(
      common::NodeId sender, common::NodeId receiver,
      const mobility::Position& senderPos,
      const mobility::Position& receiverPos) = 0;
};

struct MediumStats {
  std::uint64_t framesSent{0};        ///< transmissions initiated
  std::uint64_t framesDelivered{0};   ///< per-receiver deliveries
  std::uint64_t framesLost{0};        ///< per-receiver random losses
  std::uint64_t framesFaultDropped{0};  ///< per-receiver fault-layer drops
  std::uint64_t framesBurstDropped{0};  ///< ... of which burst fades
  std::uint64_t framesJamDropped{0};    ///< ... of which jam-zone losses
  std::uint64_t sendFailures{0};      ///< unicast frames with no reachable owner
  std::uint64_t bytesSent{0};
  std::uint64_t gridRebuilds{0};      ///< spatial-grid refreshes
};

class WirelessMedium {
 public:
  WirelessMedium(sim::Simulator& simulator, sim::Rng rng,
                 MediumConfig config = {});

  WirelessMedium(const WirelessMedium&) = delete;
  WirelessMedium& operator=(const WirelessMedium&) = delete;

  /// Attaches a node's radio. The radio must outlive the medium or detach.
  void attach(common::NodeId node, Radio& radio);

  /// Detaches (e.g. vehicle left the highway). Pending deliveries to the
  /// node are suppressed, and every address bound to the node is unbound —
  /// a re-used address routes to its new owner, never to a ghost.
  void detach(common::NodeId node);

  [[nodiscard]] bool isAttached(common::NodeId node) const {
    return radios_.contains(node);
  }

  /// Dense ids handed out for bound addresses (monotone over the run).
  [[nodiscard]] std::size_t internedAddresses() const {
    return addressIds_.size();
  }

  /// Pre-sizes the radio tables and the address interner for a fleet of
  /// `nodes` radios binding `addresses` distinct receive addresses. Scenario
  /// setup calls this before its attach storm so a 10k-vehicle corridor
  /// never rehashes or reallocates mid-attach; steady state is untouched.
  void reserve(std::size_t nodes, std::size_t addresses);

  /// Transmits a frame from `sender`. Receivers are all other attached nodes
  /// within range of the sender's position now. For unicast frames the
  /// medium additionally models the MAC-level ACK: if the bound owner of
  /// `frame.dst` is unreachable, the sender's onSendFailed() fires after the
  /// per-hop latency.
  void send(common::NodeId sender, Frame frame);

  /// Binds a receive address to a node (its pseudonym or an alias). The MAC
  /// ACK model needs to know who should have acknowledged a unicast frame.
  void bindAddress(common::Address address, common::NodeId owner);
  void unbindAddress(common::Address address);

  /// Installs (or, with nullptr, removes) the fault-layer hook. The hook
  /// must outlive the medium or be removed first. A fault-dropped *unicast*
  /// frame additionally fails the MAC ACK: the sender's onSendFailed() fires,
  /// unlike for the medium's own i.i.d. losses, which stay silent — a real
  /// MAC retries through short fades, but a burst/jam outlives the retry
  /// window, so only the fault layer surfaces as transmission failure.
  void setFaultHook(MediumFaultHook* hook) { faultHook_ = hook; }

  /// True iff a and b are currently within transmission range.
  [[nodiscard]] bool inRange(common::NodeId a, common::NodeId b) const;

  /// Drops the cached spatial grid. Must be called whenever a node's
  /// position changes discontinuously (teleport-style setMotion) or faster
  /// than MediumConfig::maxNodeSpeedMps; BasicNode::setMotion does this
  /// automatically. Cheap — the grid rebuilds lazily on the next send.
  void invalidateGrid() { gridValid_ = false; }

  [[nodiscard]] const MediumStats& stats() const { return stats_; }
  [[nodiscard]] const MediumConfig& config() const { return config_; }

  /// The medium's private jitter/loss stream. Exposed mutably for
  /// checkpoint/restore only: the stream advances once per delivery, so a
  /// restored world must resume it mid-sequence or every post-restore
  /// tie-break would diverge from the uninterrupted run.
  [[nodiscard]] sim::Rng& rng() { return rng_; }

 private:
  /// The one distance-vs-transmissionRange predicate: send's receiver scan,
  /// the unicast MAC ACK model, and inRange() all funnel through it so the
  /// grid path cannot drift from the ACK model.
  [[nodiscard]] bool withinRange(const mobility::Position& a,
                                 const mobility::Position& b) const {
    // Squared-distance compare: sqrt is monotone, so the accept set is the
    // same as `distance(a, b) <= range`, minus one sqrt per candidate —
    // the hottest arithmetic in the broadcast fan-out.
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return dx * dx + dy * dy <=
           config_.transmissionRangeM * config_.transmissionRangeM;
  }

  [[nodiscard]] std::int64_t cellOf(double coordinate) const;
  /// Rebuilds the grid unless it is still fresh (drift bounded by one cell).
  void maybeRefreshGrid();
  /// Fills `gridCandidates_` with indices into `receivers_` (ascending, and
  /// therefore ascending node-id) for the 5×5-cell neighborhood of `origin`.
  void collectCandidates(const mobility::Position& origin);

  void scheduleSendFailure(common::NodeId sender, const Frame& frame);

  /// ownerOf_ slot value meaning "this address is not currently bound".
  static constexpr std::uint32_t kUnbound = 0xffff'ffffu;

  sim::Simulator& simulator_;
  sim::Rng rng_;
  MediumConfig config_;
  MediumStats stats_;
  /// One open-addressing probe + array access per delivery-liveness check.
  common::DenseKeyMap<common::NodeId, Radio*> radios_;
  /// Same radios, kept in ascending node-id order (updated on attach/detach,
  /// which are rare) so sends never copy + sort the whole fleet.
  std::vector<std::pair<common::NodeId, Radio*>> receivers_;
  /// Address → owner, split map-array style: bindAddress interns the sparse
  /// pseudonym into a dense id once, and the owner lives in a flat vector
  /// indexed by that id. The unicast ACK lookup in send() is then a probe
  /// over interned addresses plus one array read; unbinding just writes the
  /// kUnbound sentinel (dense ids are never recycled — pseudonym churn is
  /// bounded per run, so the vector tracks total distinct addresses).
  common::AddressRegistry addressIds_;
  std::vector<std::uint32_t> ownerOf_;  ///< dense address id -> NodeId value
  MediumFaultHook* faultHook_{nullptr};

  /// Spatial grid: packed (cellX, cellY) → indices into receivers_,
  /// ascending within each cell by construction.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells_;
  std::vector<std::uint32_t> gridCandidates_;  ///< per-send scratch
  sim::TimePoint gridBuiltAt_{};
  bool gridValid_{false};
};

}  // namespace blackdp::net
