#include "net/node.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace blackdp::net {

BasicNode::BasicNode(sim::Simulator& simulator, WirelessMedium& medium,
                     common::NodeId id, mobility::LinearMotion motion)
    : simulator_{simulator}, medium_{medium}, id_{id}, motion_{motion} {
  medium_.attach(id_, *this);
  attached_ = true;
}

BasicNode::~BasicNode() { detachFromMedium(); }

void BasicNode::sendTo(common::Address dst, PayloadPtr payload) {
  if (!attached_) return;  // fled nodes transmit nothing
  const Frame frame{address_, dst, std::move(payload)};
  if (tap_) tap_(frame);  // a radio trivially "hears" its own transmission
  medium_.send(id_, frame);
}

void BasicNode::broadcast(PayloadPtr payload) {
  sendTo(common::kBroadcastAddress, std::move(payload));
}

void BasicNode::addHandler(Handler handler) {
  BDP_ASSERT(handler != nullptr);
  handlers_.push_back(std::move(handler));
}

void BasicNode::detachFromMedium() {
  if (attached_) {
    medium_.unbindAddress(address_);
    for (const common::Address alias : aliases_) {
      medium_.unbindAddress(alias);
    }
    medium_.detach(id_);
    attached_ = false;
  }
}

void BasicNode::attachToMedium() {
  if (attached_) return;
  medium_.attach(id_, *this);
  attached_ = true;
  if (address_ != common::kNullAddress) medium_.bindAddress(address_, id_);
  for (const common::Address alias : aliases_) {
    medium_.bindAddress(alias, id_);
  }
}

void BasicNode::addFailureHandler(FailureHandler handler) {
  BDP_ASSERT(handler != nullptr);
  failureHandlers_.push_back(std::move(handler));
}

void BasicNode::onSendFailed(const Frame& frame) {
  for (const auto& handler : failureHandlers_) handler(frame);
}

void BasicNode::setLocalAddress(common::Address address) {
  if (address_ != common::kNullAddress) medium_.unbindAddress(address_);
  address_ = address;
  medium_.bindAddress(address_, id_);
}

void BasicNode::addAlias(common::Address alias) {
  aliases_.push_back(alias);
  medium_.bindAddress(alias, id_);
}

void BasicNode::removeAlias(common::Address alias) {
  std::erase(aliases_, alias);
  medium_.unbindAddress(alias);
}

void BasicNode::sendFromAlias(common::Address src, common::Address dst,
                              PayloadPtr payload) {
  if (!attached_) return;
  medium_.send(id_, Frame{src, dst, std::move(payload)});
}

void BasicNode::onFrame(const Frame& frame) {
  if (tap_) tap_(frame);
  if (!frame.isBroadcast() && frame.dst != address_ &&
      std::find(aliases_.begin(), aliases_.end(), frame.dst) ==
          aliases_.end()) {
    return;
  }
  for (const auto& handler : handlers_) {
    if (handler(frame)) return;
  }
}

}  // namespace blackdp::net
