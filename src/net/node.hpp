// Reusable network node base.
//
// A BasicNode owns the glue every entity (vehicle, RSU, attacker) needs:
// a physical identity on the medium, a trajectory, a current pseudonymous
// address, and an ordered chain of frame handlers (protocol components).
// Address filtering happens here: frames addressed to another pseudonym are
// dropped, frames to this node or to broadcast are offered to each handler
// until one consumes them.
#pragma once

#include <functional>
#include <vector>

#include "mobility/motion.hpp"
#include "net/medium.hpp"

namespace blackdp::net {

/// Transmission interface handed to protocol components.
class LinkLayer {
 public:
  virtual ~LinkLayer() = default;

  /// Sends a frame; the node stamps its current address as src.
  virtual void sendTo(common::Address dst, PayloadPtr payload) = 0;
  virtual void broadcast(PayloadPtr payload) = 0;

  [[nodiscard]] virtual common::Address localAddress() const = 0;
};

class BasicNode : public Radio, public LinkLayer {
 public:
  /// Handler returns true when it consumed the frame.
  using Handler = std::function<bool(const Frame&)>;

  BasicNode(sim::Simulator& simulator, WirelessMedium& medium,
            common::NodeId id, mobility::LinearMotion motion);
  ~BasicNode() override;

  BasicNode(const BasicNode&) = delete;
  BasicNode& operator=(const BasicNode&) = delete;

  [[nodiscard]] common::NodeId id() const { return id_; }

  [[nodiscard]] common::Address localAddress() const override {
    return address_;
  }
  /// Rebinds the pseudonymous address (initial enrollment or renewal). The
  /// previous address is unbound at the medium — frames to it no longer
  /// reach (or get ACKed by) this node, which is exactly the renewal
  /// evasion channel.
  void setLocalAddress(common::Address address);

  /// Secondary receive addresses. The BlackDP detector listens on disposable
  /// identities while probing a suspect; replies to those identities must
  /// still reach this node.
  void addAlias(common::Address alias);
  void removeAlias(common::Address alias);

  /// Sends a frame with an explicit source address (a disposable identity
  /// rather than the node's own pseudonym).
  void sendFromAlias(common::Address src, common::Address dst,
                     PayloadPtr payload);

  [[nodiscard]] const mobility::LinearMotion& motion() const { return motion_; }
  /// Replaces the trajectory. Motion changes may be discontinuous (the
  /// scenario teleports fleeing attackers), so the medium's spatial grid is
  /// invalidated — its bounded-drift freshness argument only covers smooth
  /// motion.
  void setMotion(mobility::LinearMotion motion) {
    motion_ = motion;
    medium_.invalidateGrid();
  }

  /// Current position (exact, from the trajectory).
  [[nodiscard]] mobility::Position radioPosition() const override {
    return motion_.positionAt(simulator_.now());
  }

  void sendTo(common::Address dst, PayloadPtr payload) override;
  void broadcast(PayloadPtr payload) override;

  /// Appends a protocol component to the dispatch chain.
  void addHandler(Handler handler);

  /// Transmission-failure observers (MAC ACK feedback for unicast frames).
  using FailureHandler = std::function<void(const Frame&)>;
  void addFailureHandler(FailureHandler handler);
  void onSendFailed(const Frame& frame) override;

  /// Promiscuous tap: sees every frame this radio hears, including frames
  /// addressed to other nodes, before address filtering. Watchdog-style
  /// forwarding observation (Marti et al.) builds on this.
  using PromiscuousTap = std::function<void(const Frame&)>;
  void setPromiscuousTap(PromiscuousTap tap) { tap_ = std::move(tap); }

  /// Takes the node off the air (flee / shutdown). Idempotent.
  void detachFromMedium();
  /// Puts the node back on the air (recovery after a crash), rebinding its
  /// current address and aliases. Idempotent.
  void attachToMedium();
  [[nodiscard]] bool isAttached() const { return attached_; }

  void onFrame(const Frame& frame) override;

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }

 private:
  sim::Simulator& simulator_;
  WirelessMedium& medium_;
  common::NodeId id_;
  mobility::LinearMotion motion_;
  common::Address address_{common::kNullAddress};
  std::vector<common::Address> aliases_;
  std::vector<Handler> handlers_;
  std::vector<FailureHandler> failureHandlers_;
  PromiscuousTap tap_;
  bool attached_{false};
};

}  // namespace blackdp::net
