#include "net/backbone.hpp"

#include "common/assert.hpp"

namespace blackdp::net {

void Backbone::attach(common::ClusterId cluster, BackboneEndpoint& endpoint) {
  const auto [it, inserted] = endpoints_.emplace(cluster, &endpoint);
  BDP_ASSERT_MSG(inserted, "cluster attached to backbone twice");
}

void Backbone::detach(common::ClusterId cluster) { endpoints_.erase(cluster); }

void Backbone::send(common::ClusterId from, common::ClusterId to,
                    PayloadPtr payload) {
  BDP_ASSERT_MSG(payload != nullptr, "backbone message without payload");
  BDP_ASSERT_MSG(endpoints_.contains(from), "backbone send from unattached CH");
  ++stats_.messagesSent;
  stats_.bytesSent += payload->sizeBytes();
  simulator_.schedule(latency_, [this, from, to, payload = std::move(payload)] {
    const auto it = endpoints_.find(to);
    if (it == endpoints_.end()) return;
    it->second->onBackboneMessage(from, payload);
  });
}

}  // namespace blackdp::net
