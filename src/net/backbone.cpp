#include "net/backbone.hpp"

#include <utility>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace blackdp::net {
namespace {

void traceBackbone(sim::Simulator& simulator, obs::EventKind kind,
                   std::uint8_t op, common::ClusterId from,
                   common::ClusterId to, const PayloadPtr& payload) {
  if (auto* tr = obs::Trace::active()) {
    tr->record({simulator.now().us(), kind, op, 0, from.value(),
                static_cast<std::uint64_t>(to.value()), 0, 0,
                payload->sizeBytes(), std::string{payload->typeName()}});
  }
}

}  // namespace

void Backbone::attach(common::ClusterId cluster, BackboneEndpoint& endpoint) {
  const auto [it, inserted] = endpoints_.emplace(cluster, &endpoint);
  BDP_ASSERT_MSG(inserted, "cluster attached to backbone twice");
}

void Backbone::detach(common::ClusterId cluster) { endpoints_.erase(cluster); }

void Backbone::notifySendFailed(common::ClusterId from, common::ClusterId to,
                                PayloadPtr payload) {
  simulator_.schedule(latency_,
                      [this, from, to, payload = std::move(payload)] {
                        if (const auto it = endpoints_.find(from);
                            it != endpoints_.end()) {
                          it->second->onBackboneSendFailed(to, payload);
                        }
                        if (onSendFailure_) onSendFailure_(from, to, payload);
                      });
}

void Backbone::send(common::ClusterId from, common::ClusterId to,
                    PayloadPtr payload) {
  BDP_ASSERT_MSG(payload != nullptr, "backbone message without payload");
  // A CH that crashed with a send still queued must not abort the run: the
  // message is dropped (there is no one to notify — the sender is gone).
  if (!endpoints_.contains(from)) {
    ++stats_.sendsFromUnattached;
    ++stats_.messagesDropped;
    traceBackbone(simulator_, obs::EventKind::kBackboneDrop,
                  static_cast<std::uint8_t>(obs::DropCause::kSenderCrashed),
                  from, to, payload);
    if (onSendFailure_) onSendFailure_(from, to, payload);
    return;
  }
  ++stats_.messagesSent;
  stats_.bytesSent += payload->sizeBytes();
  traceBackbone(simulator_, obs::EventKind::kBackboneTx, 0, from, to, payload);
  if (linkFilter_ && !linkFilter_(from, to)) {
    ++stats_.linkBlocked;
    ++stats_.messagesDropped;
    traceBackbone(simulator_, obs::EventKind::kBackboneDrop,
                  static_cast<std::uint8_t>(obs::DropCause::kLinkCut), from,
                  to, payload);
    notifySendFailed(from, to, std::move(payload));
    return;
  }
  simulator_.schedule(latency_, [this, from, to, payload = std::move(payload)] {
    const auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      ++stats_.messagesDropped;
      ++stats_.deadEndpointDrops;
      traceBackbone(simulator_, obs::EventKind::kBackboneDrop,
                    static_cast<std::uint8_t>(obs::DropCause::kDeadEndpoint),
                    from, to, payload);
      if (const auto fromIt = endpoints_.find(from);
          fromIt != endpoints_.end()) {
        fromIt->second->onBackboneSendFailed(to, payload);
      }
      if (onSendFailure_) onSendFailure_(from, to, payload);
      return;
    }
    ++stats_.messagesDelivered;
    traceBackbone(simulator_, obs::EventKind::kBackboneRx, 0, from, to,
                  payload);
    it->second->onBackboneMessage(from, payload);
  });
}

}  // namespace blackdp::net
