#include "net/backbone.hpp"

#include <utility>

#include "common/assert.hpp"

namespace blackdp::net {

void Backbone::attach(common::ClusterId cluster, BackboneEndpoint& endpoint) {
  const auto [it, inserted] = endpoints_.emplace(cluster, &endpoint);
  BDP_ASSERT_MSG(inserted, "cluster attached to backbone twice");
}

void Backbone::detach(common::ClusterId cluster) { endpoints_.erase(cluster); }

void Backbone::notifySendFailed(common::ClusterId from, common::ClusterId to,
                                PayloadPtr payload) {
  simulator_.schedule(latency_,
                      [this, from, to, payload = std::move(payload)] {
                        if (const auto it = endpoints_.find(from);
                            it != endpoints_.end()) {
                          it->second->onBackboneSendFailed(to, payload);
                        }
                        if (onSendFailure_) onSendFailure_(from, to, payload);
                      });
}

void Backbone::send(common::ClusterId from, common::ClusterId to,
                    PayloadPtr payload) {
  BDP_ASSERT_MSG(payload != nullptr, "backbone message without payload");
  // A CH that crashed with a send still queued must not abort the run: the
  // message is dropped (there is no one to notify — the sender is gone).
  if (!endpoints_.contains(from)) {
    ++stats_.sendsFromUnattached;
    ++stats_.messagesDropped;
    if (onSendFailure_) onSendFailure_(from, to, payload);
    return;
  }
  ++stats_.messagesSent;
  stats_.bytesSent += payload->sizeBytes();
  if (linkFilter_ && !linkFilter_(from, to)) {
    ++stats_.linkBlocked;
    ++stats_.messagesDropped;
    notifySendFailed(from, to, std::move(payload));
    return;
  }
  simulator_.schedule(latency_, [this, from, to, payload = std::move(payload)] {
    const auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      ++stats_.messagesDropped;
      if (const auto fromIt = endpoints_.find(from);
          fromIt != endpoints_.end()) {
        fromIt->second->onBackboneSendFailed(to, payload);
      }
      if (onSendFailure_) onSendFailure_(from, to, payload);
      return;
    }
    it->second->onBackboneMessage(from, payload);
  });
}

}  // namespace blackdp::net
