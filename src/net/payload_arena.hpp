// Fixed-slab payload pools.
//
// Every over-the-air message is a shared_ptr<const Payload>; allocating one
// per packet was the single biggest steady-state heap consumer. The arena
// recycles fixed-size blocks through per-thread, per-size-class free lists:
//
//   - Blocks come from immortal slabs (64 KiB chunks carved into one size
//     class each). Slabs are registered in a process-global list and never
//     freed — payload lifetime is unbounded (traces, checkpoints), and an
//     immortal slab is what makes cross-thread frees safe: a block freed on
//     another thread just joins that thread's free list.
//   - makePayload/makeMutablePayload use std::allocate_shared with the
//     ArenaAllocator, so the control block and the payload live in one
//     pooled block and the ref-count release recycles it without touching
//     operator new.
//   - Requests above the largest class (1 KiB) fall through to operator
//     new — no payload in the tree is that big today; the fallback keeps
//     exotic future payloads correct rather than fast.
//
// Determinism: block reuse only changes *where* a payload lives, never any
// simulation-visible value, and no RNG or time source is consulted here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

namespace blackdp::net {

class PayloadArena {
 public:
  /// Size classes in bytes; requests round up to the next class.
  static constexpr std::size_t kClassSizes[] = {64, 128, 256, 512, 1024};
  static constexpr std::size_t kClassCount = 5;
  static constexpr std::size_t kMaxBlockBytes = 1024;
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  /// Pool statistics for this thread (micro-bench + test visibility).
  struct Stats {
    std::uint64_t poolAllocs{0};   ///< blocks handed out of a free list
    std::uint64_t slabRefills{0};  ///< new slabs carved (each hits the heap)
    std::uint64_t fallbackAllocs{0};  ///< oversized requests -> operator new
  };

  [[nodiscard]] static void* allocate(std::size_t bytes);
  static void deallocate(void* p, std::size_t bytes) noexcept;

  [[nodiscard]] static Stats threadStats();

 private:
  static constexpr std::size_t classIndex(std::size_t bytes) {
    for (std::size_t c = 0; c < kClassCount; ++c) {
      if (bytes <= kClassSizes[c]) return c;
    }
    return kClassCount;  // oversized
  }
};

/// Stateless allocator adapter for std::allocate_shared. Single-object
/// allocations go through the arena; array allocations (which
/// allocate_shared never issues) fall back to operator new.
template <typename T>
struct ArenaAllocator {
  using value_type = T;

  ArenaAllocator() = default;
  template <typename U>
  // NOLINTNEXTLINE(google-explicit-constructor): allocator rebind requires it
  ArenaAllocator(const ArenaAllocator<U>&) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 1) return static_cast<T*>(PayloadArena::allocate(sizeof(T)));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1) {
      PayloadArena::deallocate(p, sizeof(T));
      return;
    }
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const ArenaAllocator<U>&) const {
    return true;
  }
};

}  // namespace blackdp::net
