#include "net/payload_arena.hpp"

#include <mutex>
#include <vector>

namespace blackdp::net {
namespace {

struct FreeNode {
  FreeNode* next;
};

struct ThreadCache {
  FreeNode* freeList[PayloadArena::kClassCount]{};
  PayloadArena::Stats stats{};
};

thread_local ThreadCache tlsCache;

/// Immortal slab registry: keeps every slab reachable for the process
/// lifetime (leak-checker clean, and the reason cross-thread frees are
/// safe). Intentionally heap-allocated and never destroyed so the static
/// pointer stays a live root through exit.
std::vector<void*>& slabRegistry() {
  static auto* registry = new std::vector<void*>();
  return *registry;
}
std::mutex& slabMutex() {
  static std::mutex m;
  return m;
}

/// Carves one new slab into `classSize` blocks and returns them as a free
/// list (already linked, head first).
FreeNode* carveSlab(std::size_t classSize) {
  void* slab = ::operator new(PayloadArena::kSlabBytes);
  {
    const std::lock_guard<std::mutex> lock{slabMutex()};
    slabRegistry().push_back(slab);
  }
  auto* bytes = static_cast<unsigned char*>(slab);
  const std::size_t count = PayloadArena::kSlabBytes / classSize;
  FreeNode* head = nullptr;
  // Link back-to-front so the free list hands blocks out in address order.
  for (std::size_t i = count; i-- > 0;) {
    auto* node = reinterpret_cast<FreeNode*>(bytes + i * classSize);
    node->next = head;
    head = node;
  }
  return head;
}

}  // namespace

void* PayloadArena::allocate(std::size_t bytes) {
  const std::size_t c = classIndex(bytes);
  if (c >= kClassCount) {
    ++tlsCache.stats.fallbackAllocs;
    return ::operator new(bytes);
  }
  FreeNode*& head = tlsCache.freeList[c];
  if (head == nullptr) {
    head = carveSlab(kClassSizes[c]);
    ++tlsCache.stats.slabRefills;
  }
  FreeNode* node = head;
  head = node->next;
  ++tlsCache.stats.poolAllocs;
  return node;
}

void PayloadArena::deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  const std::size_t c = classIndex(bytes);
  if (c >= kClassCount) {
    ::operator delete(p);
    return;
  }
  auto* node = static_cast<FreeNode*>(p);
  node->next = tlsCache.freeList[c];
  tlsCache.freeList[c] = node;
}

PayloadArena::Stats PayloadArena::threadStats() { return tlsCache.stats; }

}  // namespace blackdp::net
