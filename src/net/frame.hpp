// Link-layer frames.
//
// The medium is payload-agnostic: protocol layers (AODV, cluster management,
// BlackDP) define payload types derived from Payload and dispatch on them at
// the receiver. Payloads are immutable and shared — a broadcast delivers the
// same payload object to every receiver, exactly like bytes on the air.
//
// Dispatch is tag-based: every library payload type carries a PayloadKind
// set at construction, so payloadAs<T> is a load-and-compare instead of a
// dynamic_cast. Types without a kKind tag (test-local payloads) still work
// through the dynamic_cast fallback. Payload storage is pooled — see
// net/payload_arena.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <type_traits>

#include "common/ids.hpp"
#include "net/payload_arena.hpp"

namespace blackdp::net {

/// Tags for every library payload type (tag dispatch in payloadAs). kOther
/// marks payloads defined outside the library (tests), which dispatch via
/// dynamic_cast.
enum class PayloadKind : std::uint8_t {
  kOther = 0,
  // aodv
  kRouteRequest,
  kRouteReply,
  kHelloBeacon,
  kRouteError,
  kDataPacket,
  // cluster
  kJoinRequest,
  kJoinReply,
  kLeaveNotice,
  kRevocationAnnouncement,
  // core (BlackDP)
  kAuthHello,
  kDetectionRequest,
  kForwardedDetection,
  kDetectionResult,
  kDetectionResponse,
  // scenario (megacity corridor)
  kCorridorBeacon,
  kCorridorDigest,
  kCorridorData,
  kCorridorAck,
  kCorridorReport,
  kCorridorProbe,
  kCorridorProbeReply,
  kCorridorIsolation,
};

/// Base class for every over-the-air message body.
class Payload {
 public:
  virtual ~Payload() = default;

  /// Non-virtual: the tag is stamped at construction, so dispatch is one
  /// load + compare on the hot path.
  [[nodiscard]] PayloadKind kind() const { return kind_; }

  /// Short type tag for logging/metrics ("rreq", "jrep", "dreq", ...).
  [[nodiscard]] virtual std::string_view typeName() const = 0;

  /// Approximate on-air size in bytes (headers + body); drives byte counters.
  [[nodiscard]] virtual std::uint32_t sizeBytes() const { return 64; }

 protected:
  Payload() = default;
  explicit Payload(PayloadKind kind) : kind_{kind} {}

 private:
  PayloadKind kind_{PayloadKind::kOther};
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// Creates an immutable payload in the payload arena.
template <typename T, typename... Args>
[[nodiscard]] PayloadPtr makePayload(Args&&... args) {
  return std::allocate_shared<const T>(ArenaAllocator<const T>{},
                                       std::forward<Args>(args)...);
}

/// Creates a payload the caller fills in before handing it to a frame
/// (the build-then-freeze pattern used all over the protocol code). Same
/// arena storage as makePayload.
template <typename T, typename... Args>
[[nodiscard]] std::shared_ptr<T> makeMutablePayload(Args&&... args) {
  return std::allocate_shared<T>(ArenaAllocator<T>{},
                                 std::forward<Args>(args)...);
}

/// Downcast helper; returns nullptr if the payload is of a different type.
/// Tagged library types resolve by kind compare; anything else falls back
/// to dynamic_cast.
template <typename T>
[[nodiscard]] const T* payloadAs(const PayloadPtr& payload) {
  if constexpr (requires { { T::kKind } -> std::convertible_to<PayloadKind>; }) {
    static_assert(std::is_final_v<T>,
                  "kind dispatch requires leaf payload types");
    if (payload == nullptr || payload->kind() != T::kKind) return nullptr;
    return static_cast<const T*>(payload.get());
  } else {
    return dynamic_cast<const T*>(payload.get());
  }
}

/// One frame on the air.
struct Frame {
  common::Address src{};  ///< sender's current pseudonymous address
  common::Address dst{};  ///< receiver address or kBroadcastAddress
  PayloadPtr payload{};

  [[nodiscard]] bool isBroadcast() const {
    return dst == common::kBroadcastAddress;
  }
};

}  // namespace blackdp::net
