// Link-layer frames.
//
// The medium is payload-agnostic: protocol layers (AODV, cluster management,
// BlackDP) define payload types derived from Payload and dispatch on them at
// the receiver. Payloads are immutable and shared — a broadcast delivers the
// same payload object to every receiver, exactly like bytes on the air.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "common/ids.hpp"

namespace blackdp::net {

/// Base class for every over-the-air message body.
class Payload {
 public:
  virtual ~Payload() = default;

  /// Short type tag for logging/metrics ("rreq", "jrep", "dreq", ...).
  [[nodiscard]] virtual std::string_view typeName() const = 0;

  /// Approximate on-air size in bytes (headers + body); drives byte counters.
  [[nodiscard]] virtual std::uint32_t sizeBytes() const { return 64; }
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// Creates an immutable payload.
template <typename T, typename... Args>
[[nodiscard]] PayloadPtr makePayload(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

/// Downcast helper; returns nullptr if the payload is of a different type.
template <typename T>
[[nodiscard]] const T* payloadAs(const PayloadPtr& payload) {
  return dynamic_cast<const T*>(payload.get());
}

/// One frame on the air.
struct Frame {
  common::Address src{};  ///< sender's current pseudonymous address
  common::Address dst{};  ///< receiver address or kBroadcastAddress
  PayloadPtr payload{};

  [[nodiscard]] bool isBroadcast() const {
    return dst == common::kBroadcastAddress;
  }
};

}  // namespace blackdp::net
