// Wired RSU backbone.
//
// The paper's RSUs "connect to each other via high speed links to form
// sequential static clusters"; TAs hang off the same infrastructure. The
// backbone is low-latency and addressed by cluster id. Detection requests
// forwarded between CHs (d_req) and detection responses relayed back to the
// originator's CH travel here. Delivery is reliable *between attached
// endpoints over an intact link*: a crashed/detached CH or a fault-injected
// link cut drops the message — counted in BackboneStats and surfaced to the
// sending endpoint (and an optional global callback) so failover logic has a
// signal to act on instead of waiting forever.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/frame.hpp"
#include "sim/simulator.hpp"

namespace blackdp::net {

/// What the backbone needs from an attached cluster head.
class BackboneEndpoint {
 public:
  virtual ~BackboneEndpoint() = default;
  virtual void onBackboneMessage(common::ClusterId from,
                                 const PayloadPtr& payload) = 0;
  /// A message this endpoint sent could not be delivered (target detached or
  /// crashed, link cut). Fires after the backbone latency, like a transport
  /// timeout. Default: ignore.
  virtual void onBackboneSendFailed(common::ClusterId to,
                                    const PayloadPtr& payload) {
    (void)to;
    (void)payload;
  }
};

struct BackboneStats {
  std::uint64_t messagesSent{0};
  std::uint64_t bytesSent{0};
  std::uint64_t messagesDelivered{0};
  std::uint64_t messagesDropped{0};      ///< every undelivered message
  std::uint64_t linkBlocked{0};          ///< dropped by the fault-layer link filter
  std::uint64_t sendsFromUnattached{0};  ///< send() from a detached/crashed CH
  std::uint64_t deadEndpointDrops{0};    ///< target detached at delivery time
};

class Backbone {
 public:
  /// Fault-layer hook: false ⇒ the from→to link is currently cut.
  using LinkFilter =
      std::function<bool(common::ClusterId from, common::ClusterId to)>;
  /// Global observer for every failed send (tests, metrics). The sending
  /// endpoint's onBackboneSendFailed() fires regardless.
  using SendFailureCallback = std::function<void(
      common::ClusterId from, common::ClusterId to, const PayloadPtr&)>;

  Backbone(sim::Simulator& simulator,
           sim::Duration latency = sim::Duration::milliseconds(2))
      : simulator_{simulator}, latency_{latency} {}

  Backbone(const Backbone&) = delete;
  Backbone& operator=(const Backbone&) = delete;

  void attach(common::ClusterId cluster, BackboneEndpoint& endpoint);
  void detach(common::ClusterId cluster);
  [[nodiscard]] bool isAttached(common::ClusterId cluster) const {
    return endpoints_.contains(cluster);
  }

  /// Unicast between cluster heads. Reliable between attached endpoints over
  /// an intact link; otherwise the message is dropped, counted, and reported
  /// back to the sender via onBackboneSendFailed() after the latency.
  void send(common::ClusterId from, common::ClusterId to, PayloadPtr payload);

  void setLinkFilter(LinkFilter filter) { linkFilter_ = std::move(filter); }
  void setSendFailureCallback(SendFailureCallback callback) {
    onSendFailure_ = std::move(callback);
  }

  [[nodiscard]] const BackboneStats& stats() const { return stats_; }

 private:
  /// Schedules the failure notification for a message that will not arrive.
  void notifySendFailed(common::ClusterId from, common::ClusterId to,
                        PayloadPtr payload);

  sim::Simulator& simulator_;
  sim::Duration latency_;
  BackboneStats stats_;
  std::unordered_map<common::ClusterId, BackboneEndpoint*> endpoints_;
  LinkFilter linkFilter_;
  SendFailureCallback onSendFailure_;
};

}  // namespace blackdp::net
