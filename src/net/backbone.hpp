// Wired RSU backbone.
//
// The paper's RSUs "connect to each other via high speed links to form
// sequential static clusters"; TAs hang off the same infrastructure. The
// backbone is reliable, low-latency, and addressed by cluster id. Detection
// requests forwarded between CHs (d_req) and detection responses relayed back
// to the originator's CH travel here.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/frame.hpp"
#include "sim/simulator.hpp"

namespace blackdp::net {

/// What the backbone needs from an attached cluster head.
class BackboneEndpoint {
 public:
  virtual ~BackboneEndpoint() = default;
  virtual void onBackboneMessage(common::ClusterId from,
                                 const PayloadPtr& payload) = 0;
};

struct BackboneStats {
  std::uint64_t messagesSent{0};
  std::uint64_t bytesSent{0};
};

class Backbone {
 public:
  Backbone(sim::Simulator& simulator,
           sim::Duration latency = sim::Duration::milliseconds(2))
      : simulator_{simulator}, latency_{latency} {}

  Backbone(const Backbone&) = delete;
  Backbone& operator=(const Backbone&) = delete;

  void attach(common::ClusterId cluster, BackboneEndpoint& endpoint);
  void detach(common::ClusterId cluster);

  /// Reliable unicast between cluster heads.
  void send(common::ClusterId from, common::ClusterId to, PayloadPtr payload);

  [[nodiscard]] const BackboneStats& stats() const { return stats_; }

 private:
  sim::Simulator& simulator_;
  sim::Duration latency_;
  BackboneStats stats_;
  std::unordered_map<common::ClusterId, BackboneEndpoint*> endpoints_;
};

}  // namespace blackdp::net
