#include "net/medium.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace blackdp::net {
namespace {

void traceFrame(sim::Simulator& simulator, obs::EventKind kind,
                std::uint8_t op, common::NodeId node, const Frame& frame) {
  if (auto* tr = obs::Trace::active()) {
    tr->record({simulator.now().us(), kind, op, node.value(), 0,
                frame.src.value(), frame.dst.value(), 0,
                frame.payload->sizeBytes(),
                std::string{frame.payload->typeName()}});
  }
}

/// Packs a signed 2-D cell coordinate into one hash key.
std::uint64_t cellKey(std::int64_t cx, std::int64_t cy) {
  const auto ux = static_cast<std::uint32_t>(static_cast<std::int32_t>(cx));
  const auto uy = static_cast<std::uint32_t>(static_cast<std::int32_t>(cy));
  return (static_cast<std::uint64_t>(ux) << 32) | uy;
}

}  // namespace

WirelessMedium::WirelessMedium(sim::Simulator& simulator, sim::Rng rng,
                               MediumConfig config)
    : simulator_{simulator}, rng_{rng}, config_{config} {
  BDP_ASSERT_MSG(config_.transmissionRangeM > 0.0,
                 "transmission range must be positive");
}

void WirelessMedium::reserve(std::size_t nodes, std::size_t addresses) {
  radios_.reserve(nodes);
  receivers_.reserve(nodes);
  addressIds_.reserve(addresses);
  ownerOf_.reserve(addresses);
}

void WirelessMedium::attach(common::NodeId node, Radio& radio) {
  BDP_ASSERT_MSG(!radios_.contains(node), "node attached twice");
  radios_[node] = &radio;
  const auto pos = std::lower_bound(
      receivers_.begin(), receivers_.end(), node,
      [](const auto& entry, common::NodeId id) { return entry.first < id; });
  receivers_.insert(pos, {node, &radio});
  gridValid_ = false;  // indices into receivers_ shifted
}

void WirelessMedium::detach(common::NodeId node) {
  radios_.erase(node);
  const auto pos = std::lower_bound(
      receivers_.begin(), receivers_.end(), node,
      [](const auto& entry, common::NodeId id) { return entry.first < id; });
  if (pos != receivers_.end() && pos->first == node) receivers_.erase(pos);
  // A detached node must not keep ownership of any receive address: a later
  // re-use of the address binds it to its new owner, and until then unicasts
  // to it fail the MAC ACK as unreachable rather than consulting a ghost.
  for (std::uint32_t& owner : ownerOf_) {
    if (owner == node.value()) owner = kUnbound;
  }
  gridValid_ = false;
}

void WirelessMedium::bindAddress(common::Address address,
                                 common::NodeId owner) {
  if (address == common::kNullAddress || address == common::kBroadcastAddress) {
    return;
  }
  const std::uint32_t id = addressIds_.intern(address);
  if (id >= ownerOf_.size()) ownerOf_.resize(id + 1, kUnbound);
  ownerOf_[id] = owner.value();
}

void WirelessMedium::unbindAddress(common::Address address) {
  const std::uint32_t id = addressIds_.find(address);
  if (id != common::AddressRegistry::kNoId) ownerOf_[id] = kUnbound;
}

std::int64_t WirelessMedium::cellOf(double coordinate) const {
  return static_cast<std::int64_t>(
      std::floor(coordinate / config_.transmissionRangeM));
}

void WirelessMedium::maybeRefreshGrid() {
  const sim::TimePoint now = simulator_.now();
  if (gridValid_) {
    // A node may have drifted at most maxNodeSpeedMps * age metres since the
    // build. As long as that stays within one cell (= one transmission
    // range), the 5×5 neighborhood scan below still covers every node that
    // can possibly be in range, so the grid stays exact.
    const double driftM =
        (now - gridBuiltAt_).toSeconds() * config_.maxNodeSpeedMps;
    if (driftM <= config_.transmissionRangeM) return;
  }
  cells_.clear();
  for (std::uint32_t i = 0; i < receivers_.size(); ++i) {
    const mobility::Position p = receivers_[i].second->radioPosition();
    cells_[cellKey(cellOf(p.x), cellOf(p.y))].push_back(i);
  }
  gridBuiltAt_ = now;
  gridValid_ = true;
  ++stats_.gridRebuilds;
}

void WirelessMedium::collectCandidates(const mobility::Position& origin) {
  gridCandidates_.clear();
  const std::int64_t ocx = cellOf(origin.x);
  const std::int64_t ocy = cellOf(origin.y);
  // ±2 cells: ±1 because an in-range node's true cell is at most one cell
  // away, plus ±1 of permitted drift since the grid was built.
  for (std::int64_t cx = ocx - 2; cx <= ocx + 2; ++cx) {
    for (std::int64_t cy = ocy - 2; cy <= ocy + 2; ++cy) {
      const auto it = cells_.find(cellKey(cx, cy));
      if (it == cells_.end()) continue;
      gridCandidates_.insert(gridCandidates_.end(), it->second.begin(),
                             it->second.end());
    }
  }
  // Indices ascend within each cell; sorting the handful of candidates
  // restores the global ascending-node-id visiting order the RNG contract
  // requires.
  std::sort(gridCandidates_.begin(), gridCandidates_.end());
}

void WirelessMedium::scheduleSendFailure(common::NodeId sender,
                                         const Frame& frame) {
  simulator_.schedule(config_.perHopLatency, [this, sender, frame] {
    if (Radio** radio = radios_.find(sender)) (*radio)->onSendFailed(frame);
  });
}

void WirelessMedium::send(common::NodeId sender, Frame frame) {
  Radio* const* senderRadio = radios_.find(sender);
  BDP_ASSERT_MSG(senderRadio != nullptr, "send from unattached node");
  BDP_ASSERT_MSG(frame.payload != nullptr, "frame without payload");

  ++stats_.framesSent;
  stats_.bytesSent += frame.payload->sizeBytes();
  traceFrame(simulator_, obs::EventKind::kFrameTx, 0, sender, frame);

  const mobility::Position origin = (*senderRadio)->radioPosition();

  // MAC ACK model for unicast frames: unreachable addressee → sender gets
  // a transmission-failure callback after the (ACK-timeout-like) latency.
  // A reachable addressee whose delivery the fault layer eats below fails
  // the same way (no ACK came back through the burst/jam).
  std::optional<common::NodeId> addressee;
  if (!frame.isBroadcast()) {
    const std::uint32_t dstId = addressIds_.find(frame.dst);
    const std::uint32_t ownerValue =
        dstId != common::AddressRegistry::kNoId ? ownerOf_[dstId] : kUnbound;
    const common::NodeId owner{ownerValue};
    const bool reachable =
        ownerValue != kUnbound && [&] {
          Radio* const* radio = radios_.find(owner);
          return radio != nullptr &&
                 withinRange(origin, (*radio)->radioPosition());
        }();
    if (reachable) {
      addressee = owner;
    } else {
      ++stats_.sendFailures;
      traceFrame(simulator_, obs::EventKind::kFrameSendFailed,
                 static_cast<std::uint8_t>(obs::DropCause::kUnreachable),
                 sender, frame);
      scheduleSendFailure(sender, frame);
    }
  }

  // One delivery decision per candidate receiver. Out-of-range candidates
  // are skipped before any RNG draw, so the grid path (which merely proposes
  // a superset of the in-range nodes) and the linear scan consume the RNG
  // stream identically.
  const auto visit = [&](common::NodeId nodeId, Radio* radio) {
    if (nodeId == sender) return;
    const mobility::Position receiverPos = radio->radioPosition();
    if (!withinRange(origin, receiverPos)) return;
    if (faultHook_ != nullptr) {
      const obs::DropCause cause =
          faultHook_->dropDelivery(sender, nodeId, origin, receiverPos);
      if (cause != obs::DropCause::kNone) {
        ++stats_.framesFaultDropped;
        if (cause == obs::DropCause::kBurstLoss) ++stats_.framesBurstDropped;
        if (cause == obs::DropCause::kJam) ++stats_.framesJamDropped;
        traceFrame(simulator_, obs::EventKind::kFrameDrop,
                   static_cast<std::uint8_t>(cause), nodeId, frame);
        if (addressee && nodeId == *addressee) {
          ++stats_.sendFailures;
          traceFrame(simulator_, obs::EventKind::kFrameSendFailed,
                     static_cast<std::uint8_t>(cause), sender, frame);
          scheduleSendFailure(sender, frame);
        }
        return;
      }
    }
    if (config_.lossProbability > 0.0 &&
        rng_.bernoulli(config_.lossProbability)) {
      ++stats_.framesLost;
      traceFrame(simulator_, obs::EventKind::kFrameDrop,
                 static_cast<std::uint8_t>(obs::DropCause::kRandomLoss),
                 nodeId, frame);
      return;
    }
    sim::Duration latency = config_.perHopLatency;
    if (config_.maxJitter > sim::Duration{}) {
      latency = latency + sim::Duration::microseconds(
                              rng_.uniformInt(0, config_.maxJitter.us()));
    }
    // Deliver only if the receiver is still attached at delivery time
    // (a vehicle may leave the highway while the frame is in flight).
    simulator_.schedule(latency, [this, nodeId, frame] {
      Radio** live = radios_.find(nodeId);
      if (live == nullptr) return;
      ++stats_.framesDelivered;
      traceFrame(simulator_, obs::EventKind::kFrameRx, 0, nodeId, frame);
      (*live)->onFrame(frame);
    });
  };

  if (config_.spatialGrid) {
    maybeRefreshGrid();
    collectCandidates(origin);
    for (const std::uint32_t index : gridCandidates_) {
      visit(receivers_[index].first, receivers_[index].second);
    }
  } else {
    for (const auto& [nodeId, radio] : receivers_) visit(nodeId, radio);
  }
}

bool WirelessMedium::inRange(common::NodeId a, common::NodeId b) const {
  Radio* const* ra = radios_.find(a);
  Radio* const* rb = radios_.find(b);
  if (ra == nullptr || rb == nullptr) return false;
  return withinRange((*ra)->radioPosition(), (*rb)->radioPosition());
}

}  // namespace blackdp::net
