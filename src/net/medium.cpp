#include "net/medium.hpp"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace blackdp::net {
namespace {

void traceFrame(sim::Simulator& simulator, obs::EventKind kind,
                std::uint8_t op, common::NodeId node, const Frame& frame) {
  if (auto* tr = obs::Trace::active()) {
    tr->record({simulator.now().us(), kind, op, node.value(), 0,
                frame.src.value(), frame.dst.value(), 0,
                frame.payload->sizeBytes(),
                std::string{frame.payload->typeName()}});
  }
}

}  // namespace

WirelessMedium::WirelessMedium(sim::Simulator& simulator, sim::Rng rng,
                               MediumConfig config)
    : simulator_{simulator}, rng_{rng}, config_{config} {}

void WirelessMedium::attach(common::NodeId node, Radio& radio) {
  const auto [it, inserted] = radios_.emplace(node, &radio);
  BDP_ASSERT_MSG(inserted, "node attached twice");
}

void WirelessMedium::detach(common::NodeId node) { radios_.erase(node); }

void WirelessMedium::bindAddress(common::Address address,
                                 common::NodeId owner) {
  if (address == common::kNullAddress || address == common::kBroadcastAddress) {
    return;
  }
  addressOwner_[address] = owner;
}

void WirelessMedium::unbindAddress(common::Address address) {
  addressOwner_.erase(address);
}

void WirelessMedium::send(common::NodeId sender, Frame frame) {
  const auto senderIt = radios_.find(sender);
  BDP_ASSERT_MSG(senderIt != radios_.end(), "send from unattached node");
  BDP_ASSERT_MSG(frame.payload != nullptr, "frame without payload");

  ++stats_.framesSent;
  stats_.bytesSent += frame.payload->sizeBytes();
  traceFrame(simulator_, obs::EventKind::kFrameTx, 0, sender, frame);

  const mobility::Position origin = senderIt->second->radioPosition();

  // MAC ACK model for unicast frames: unreachable addressee → sender gets
  // a transmission-failure callback after the (ACK-timeout-like) latency.
  // A reachable addressee whose delivery the fault layer eats below fails
  // the same way (no ACK came back through the burst/jam).
  std::optional<common::NodeId> addressee;
  if (!frame.isBroadcast()) {
    const auto ownerIt = addressOwner_.find(frame.dst);
    const bool reachable =
        ownerIt != addressOwner_.end() &&
        [&] {
          const auto radioIt = radios_.find(ownerIt->second);
          return radioIt != radios_.end() &&
                 mobility::distance(origin,
                                    radioIt->second->radioPosition()) <=
                     config_.transmissionRangeM;
        }();
    if (reachable) {
      addressee = ownerIt->second;
    } else {
      ++stats_.sendFailures;
      traceFrame(simulator_, obs::EventKind::kFrameSendFailed,
                 static_cast<std::uint8_t>(obs::DropCause::kUnreachable),
                 sender, frame);
      simulator_.schedule(config_.perHopLatency, [this, sender, frame] {
        const auto it = radios_.find(sender);
        if (it != radios_.end()) it->second->onSendFailed(frame);
      });
    }
  }
  // Receivers are visited in node-id order so that jitter draws (and thus
  // the whole simulation) are independent of hash-map iteration order.
  std::vector<std::pair<common::NodeId, Radio*>> receivers(radios_.begin(),
                                                           radios_.end());
  std::sort(receivers.begin(), receivers.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [nodeId, radio] : receivers) {
    if (nodeId == sender) continue;
    const mobility::Position receiverPos = radio->radioPosition();
    if (mobility::distance(origin, receiverPos) >
        config_.transmissionRangeM) {
      continue;
    }
    if (faultHook_ != nullptr) {
      const obs::DropCause cause =
          faultHook_->dropDelivery(sender, nodeId, origin, receiverPos);
      if (cause != obs::DropCause::kNone) {
        ++stats_.framesFaultDropped;
        if (cause == obs::DropCause::kBurstLoss) ++stats_.framesBurstDropped;
        if (cause == obs::DropCause::kJam) ++stats_.framesJamDropped;
        traceFrame(simulator_, obs::EventKind::kFrameDrop,
                   static_cast<std::uint8_t>(cause), nodeId, frame);
        if (addressee && nodeId == *addressee) {
          ++stats_.sendFailures;
          traceFrame(simulator_, obs::EventKind::kFrameSendFailed,
                     static_cast<std::uint8_t>(cause), sender, frame);
          simulator_.schedule(config_.perHopLatency, [this, sender, frame] {
            const auto it = radios_.find(sender);
            if (it != radios_.end()) it->second->onSendFailed(frame);
          });
        }
        continue;
      }
    }
    if (config_.lossProbability > 0.0 &&
        rng_.bernoulli(config_.lossProbability)) {
      ++stats_.framesLost;
      traceFrame(simulator_, obs::EventKind::kFrameDrop,
                 static_cast<std::uint8_t>(obs::DropCause::kRandomLoss),
                 nodeId, frame);
      continue;
    }
    sim::Duration latency = config_.perHopLatency;
    if (config_.maxJitter > sim::Duration{}) {
      latency = latency + sim::Duration::microseconds(
                              rng_.uniformInt(0, config_.maxJitter.us()));
    }
    // Deliver only if the receiver is still attached at delivery time
    // (a vehicle may leave the highway while the frame is in flight).
    simulator_.schedule(latency, [this, nodeId = nodeId, frame] {
      const auto it = radios_.find(nodeId);
      if (it == radios_.end()) return;
      ++stats_.framesDelivered;
      traceFrame(simulator_, obs::EventKind::kFrameRx, 0, nodeId, frame);
      it->second->onFrame(frame);
    });
  }
}

bool WirelessMedium::inRange(common::NodeId a, common::NodeId b) const {
  const auto ita = radios_.find(a);
  const auto itb = radios_.find(b);
  if (ita == radios_.end() || itb == radios_.end()) return false;
  return mobility::distance(ita->second->radioPosition(),
                            itb->second->radioPosition()) <=
         config_.transmissionRangeM;
}

}  // namespace blackdp::net
