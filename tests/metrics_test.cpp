#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"
#include "metrics/confusion.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "sim/rng.hpp"

namespace blackdp::metrics {
namespace {

// --------------------------------------------------------------- confusion

TEST(ConfusionTest, EmptyMatrixIsNeutral) {
  const ConfusionMatrix m;
  EXPECT_EQ(m.total(), 0u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(m.recall(), 1.0);      // vacuous: no positives missed
  EXPECT_DOUBLE_EQ(m.precision(), 1.0);   // vacuous: nothing flagged
  EXPECT_DOUBLE_EQ(m.falsePositiveRate(), 0.0);
  EXPECT_DOUBLE_EQ(m.falseNegativeRate(), 0.0);
}

TEST(ConfusionTest, PerfectDetector) {
  ConfusionMatrix m;
  for (int i = 0; i < 7; ++i) m.addTruePositive();
  for (int i = 0; i < 3; ++i) m.addTrueNegative();
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(m.recall(), 1.0);
  EXPECT_DOUBLE_EQ(m.precision(), 1.0);
  EXPECT_DOUBLE_EQ(m.falseNegativeRate(), 0.0);
}

TEST(ConfusionTest, MixedRates) {
  ConfusionMatrix m;
  for (int i = 0; i < 6; ++i) m.addTruePositive();
  for (int i = 0; i < 2; ++i) m.addFalseNegative();
  for (int i = 0; i < 1; ++i) m.addFalsePositive();
  for (int i = 0; i < 11; ++i) m.addTrueNegative();
  EXPECT_DOUBLE_EQ(m.accuracy(), 17.0 / 20.0);
  EXPECT_DOUBLE_EQ(m.recall(), 6.0 / 8.0);
  EXPECT_DOUBLE_EQ(m.precision(), 6.0 / 7.0);
  EXPECT_DOUBLE_EQ(m.falsePositiveRate(), 1.0 / 12.0);
  EXPECT_DOUBLE_EQ(m.falseNegativeRate(), 2.0 / 8.0);
}

TEST(ConfusionTest, AccumulationAddsCounts) {
  ConfusionMatrix a;
  a.addTruePositive();
  ConfusionMatrix b;
  b.addFalseNegative();
  b.addFalsePositive();
  a += b;
  EXPECT_EQ(a.tp(), 1u);
  EXPECT_EQ(a.fn(), 1u);
  EXPECT_EQ(a.fp(), 1u);
  EXPECT_EQ(a.total(), 3u);
}

// ------------------------------------------------------------ running stat

TEST(RunningStatTest, EmptyIsZero) {
  const RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
}

TEST(RunningStatTest, SingleSample) {
  RunningStat s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, KnownSeries) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

// Property: Welford matches the naive two-pass computation.
class WelfordProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WelfordProperty, MatchesTwoPass) {
  sim::Rng rng{GetParam()};
  RunningStat s;
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniformReal(-100.0, 100.0);
    samples.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (double x : samples) mean += x;
  mean /= static_cast<double>(samples.size());
  double var = 0.0;
  for (double x : samples) var += (x - mean) * (x - mean);
  var /= static_cast<double>(samples.size() - 1);

  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WelfordProperty,
                         ::testing::Values(1, 7, 13, 99));

// ------------------------------------------------------------------- table

TEST(TableTest, RendersAlignedColumns) {
  Table table({"A", "Metric"});
  table.addRow({"row1", "1.00"});
  table.addRow({"longer-row", "2"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("A"), std::string::npos);
  EXPECT_NE(out.find("longer-row"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Header line and the two rows align on the same column offset.
  const auto lines = [&] {
    std::vector<std::string> v;
    std::istringstream is{out};
    std::string line;
    while (std::getline(is, line)) v.push_back(line);
    return v;
  }();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0].find("Metric"), lines[1].find('-') == 0
                ? lines[0].find("Metric")
                : lines[0].find("Metric"));
}

TEST(TableTest, RowWidthMismatchAsserts) {
  Table table({"A", "B"});
  EXPECT_THROW(table.addRow({"only-one"}), common::AssertionError);
}

TEST(TableTest, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(TableTest, PercentFormatsRatio) {
  EXPECT_EQ(Table::percent(0.973, 1), "97.3%");
  EXPECT_EQ(Table::percent(1.0, 1), "100.0%");
  EXPECT_EQ(Table::percent(0.0, 1), "0.0%");
}

TEST(TableTest, RowCount) {
  Table table({"A"});
  EXPECT_EQ(table.rowCount(), 0u);
  table.addRow({"x"});
  EXPECT_EQ(table.rowCount(), 1u);
}

}  // namespace
}  // namespace blackdp::metrics
