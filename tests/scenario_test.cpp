// Scenario builder: Table-I conformance, placement rules, determinism,
// ground-truth ledger, attacker wiring.
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "scenario/highway_scenario.hpp"

namespace blackdp::scenario {
namespace {

TEST(ScenarioTest, BuildsTableIWorld) {
  ScenarioConfig config;
  config.seed = 1;
  config.attack = AttackType::kNone;
  HighwayScenario world(config);

  EXPECT_EQ(world.vehicles().size(), 100u);
  EXPECT_EQ(world.rsus().size(), 10u);
  EXPECT_DOUBLE_EQ(world.highway().length(), 10'000.0);
  EXPECT_DOUBLE_EQ(world.highway().width(), 200.0);
  EXPECT_DOUBLE_EQ(world.medium().config().transmissionRangeM, 1'000.0);
  EXPECT_EQ(world.taNetwork().authorityCount(), 2u);
}

TEST(ScenarioTest, RsusSitAtClusterCenters) {
  ScenarioConfig config;
  config.attack = AttackType::kNone;
  HighwayScenario world(config);
  for (auto& rsu : world.rsus()) {
    const auto expected = world.highway().clusterCenter(rsu->cluster);
    EXPECT_DOUBLE_EQ(rsu->node->radioPosition().x, expected.x);
  }
}

TEST(ScenarioTest, VehicleSpeedsWithinTableIBand) {
  ScenarioConfig config;
  config.attack = AttackType::kNone;
  HighwayScenario world(config);
  for (auto& vehicle : world.vehicles()) {
    const double kmh = vehicle->node->motion().speedMps() * 3.6;
    EXPECT_GE(kmh, 50.0 - 1e-9);
    EXPECT_LE(kmh, 90.0 + 1e-9);
  }
}

TEST(ScenarioTest, EveryVehicleEnrolledWithCredentials) {
  ScenarioConfig config;
  config.attack = AttackType::kSingle;
  HighwayScenario world(config);
  for (auto& vehicle : world.vehicles()) {
    EXPECT_NE(vehicle->address(), common::kNullAddress);
    ASSERT_TRUE(vehicle->agent->credentials().has_value());
    EXPECT_TRUE(world.taNetwork().validateCertificate(
        vehicle->agent->credentials()->certificate,
        world.simulator().now()));
  }
}

TEST(ScenarioTest, SourceStartsAtHighwayBeginning) {
  ScenarioConfig config;
  config.attack = AttackType::kSingle;
  HighwayScenario world(config);
  EXPECT_LT(world.source().node->radioPosition().x,
            world.highway().clusterLength());
}

TEST(ScenarioTest, AttackerPlacedInRequestedCluster) {
  for (std::uint32_t c : {1u, 4u, 10u}) {
    ScenarioConfig config;
    config.seed = c;
    config.attack = AttackType::kSingle;
    config.attackerCluster = common::ClusterId{c};
    HighwayScenario world(config);
    EXPECT_EQ(world.highway().clusterAt(
                  world.primaryAttacker()->node->radioPosition().x),
              common::ClusterId{c});
  }
}

TEST(ScenarioTest, AttackerNeverInRangeOfDestination) {
  // §IV-A: "not in the communication range of the destination to ensure
  // that the attacker does not have a route to the destination."
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ScenarioConfig config;
    config.seed = seed;
    config.attack = AttackType::kSingle;
    config.attackerCluster =
        common::ClusterId{static_cast<std::uint32_t>(seed % 10) + 1};
    HighwayScenario world(config);
    const double d = mobility::distance(
        world.primaryAttacker()->node->radioPosition(),
        world.destination().node->radioPosition());
    EXPECT_GT(d, config.transmissionRangeM) << "seed " << seed;
  }
}

TEST(ScenarioTest, CooperativeAttackersWithinMutualRange) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ScenarioConfig config;
    config.seed = seed;
    config.attack = AttackType::kCooperative;
    HighwayScenario world(config);
    const double d =
        mobility::distance(world.primaryAttacker()->node->radioPosition(),
                           world.accomplice()->node->radioPosition());
    EXPECT_LE(d, config.transmissionRangeM) << "seed " << seed;
    EXPECT_EQ(world.primaryAttacker()->attacker->role(),
              attack::AttackRole::kPrimary);
    EXPECT_EQ(world.accomplice()->attacker->role(),
              attack::AttackRole::kAccomplice);
  }
}

TEST(ScenarioTest, NoAttackersWhenAttackIsNone) {
  ScenarioConfig config;
  config.attack = AttackType::kNone;
  HighwayScenario world(config);
  EXPECT_EQ(world.primaryAttacker(), nullptr);
  for (auto& vehicle : world.vehicles()) {
    EXPECT_FALSE(vehicle->isAttacker());
  }
}

TEST(ScenarioTest, GroundTruthLedgerTracksAttackerPseudonyms) {
  ScenarioConfig config;
  config.attack = AttackType::kCooperative;
  HighwayScenario world(config);
  EXPECT_TRUE(world.isAttackerPseudonym(world.primaryAttacker()->address()));
  EXPECT_TRUE(world.isAttackerPseudonym(world.accomplice()->address()));
  EXPECT_FALSE(world.isAttackerPseudonym(world.source().address()));
  EXPECT_FALSE(world.isAttackerPseudonym(world.destination().address()));
}

TEST(ScenarioTest, EveryVehicleJoinsACluster) {
  ScenarioConfig config;
  config.attack = AttackType::kNone;
  HighwayScenario world(config);
  world.runFor(sim::Duration::milliseconds(500));
  for (auto& vehicle : world.vehicles()) {
    EXPECT_TRUE(vehicle->membership->currentCluster().has_value());
  }
}

TEST(ScenarioTest, DeterministicAcrossRuns) {
  const auto run = [](std::uint64_t seed) {
    ScenarioConfig config;
    config.seed = seed;
    config.attack = AttackType::kSingle;
    HighwayScenario world(config);
    const core::VerificationReport report = world.runVerification();
    return std::tuple{report.outcome, report.suspect,
                      world.detectionSummary().packetsUsed,
                      world.simulator().executedEvents()};
  };
  EXPECT_EQ(run(12345), run(12345));
}

TEST(ScenarioTest, DifferentSeedsProduceDifferentWorlds) {
  ScenarioConfig a;
  a.seed = 1;
  a.attack = AttackType::kNone;
  ScenarioConfig b = a;
  b.seed = 2;
  HighwayScenario worldA(a);
  HighwayScenario worldB(b);
  EXPECT_NE(worldA.source().node->radioPosition().x,
            worldB.source().node->radioPosition().x);
}

TEST(ScenarioTest, RelocateVehicleRejoins) {
  ScenarioConfig config;
  config.attack = AttackType::kNone;
  HighwayScenario world(config);
  world.runFor(sim::Duration::milliseconds(500));
  VehicleEntity* vehicle = world.findHonestVehicleIn(common::ClusterId{2});
  ASSERT_NE(vehicle, nullptr);
  world.relocateVehicle(*vehicle, 4'500.0);
  world.runFor(sim::Duration::milliseconds(100));
  EXPECT_EQ(vehicle->membership->currentCluster(), common::ClusterId{5});
  EXPECT_TRUE(world.rsu(common::ClusterId{5})
                  .head->isMember(vehicle->address()));
}

TEST(ScenarioTest, FindHonestVehicleExcludesPrincipals) {
  ScenarioConfig config;
  config.attack = AttackType::kSingle;
  config.attackerCluster = common::ClusterId{2};
  HighwayScenario world(config);
  world.runFor(sim::Duration::milliseconds(500));
  for (std::uint32_t c = 1; c <= 10; ++c) {
    VehicleEntity* v = world.findHonestVehicleIn(common::ClusterId{c});
    if (v == nullptr) continue;
    EXPECT_FALSE(v->isAttacker());
    EXPECT_NE(v, &world.source());
    EXPECT_NE(v, &world.destination());
  }
}

TEST(ScenarioTest, AttackerRenewalCallbackChangesIdentity) {
  ScenarioConfig config;
  config.seed = 4;
  config.attack = AttackType::kSingle;
  HighwayScenario world(config);
  world.runFor(sim::Duration::milliseconds(500));
  VehicleEntity* attacker = world.primaryAttacker();
  const common::Address before = attacker->address();

  // Renewal through the TA changes pseudonym + credentials; the ledger
  // keeps every identity the attacker ever held.
  const auto result =
      world.taNetwork().renew(attacker->ta, attacker->nodeId);
  ASSERT_TRUE(result.ok());
  attacker->node->setLocalAddress(result.value().certificate.pseudonym);

  EXPECT_NE(attacker->address(), before);
  EXPECT_TRUE(world.isAttackerPseudonym(before));  // ledger keeps history
}

TEST(ScenarioTest, TooShortHighwayForSeparationAsserts) {
  ScenarioConfig config;
  config.highwayLengthM = 3'000.0;  // 3 clusters: cannot separate
  config.attack = AttackType::kSingle;
  config.attackerCluster = common::ClusterId{2};
  EXPECT_THROW((HighwayScenario{config}), common::AssertionError);
}

}  // namespace
}  // namespace blackdp::scenario
