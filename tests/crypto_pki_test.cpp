// Simulated signatures, certificates, the TA network, and revocation.
#include <gtest/gtest.h>

#include <unordered_map>

#include "common/assert.hpp"
#include "crypto/keys.hpp"
#include "crypto/revocation_store.hpp"
#include "crypto/trusted_authority.hpp"

namespace blackdp::crypto {
namespace {

common::Bytes bytesOf(std::string_view s) {
  return common::Bytes{s.begin(), s.end()};
}

std::span<const std::uint8_t> spanOf(const common::Bytes& b) {
  return {b.data(), b.size()};
}

// -------------------------------------------------------------- signatures

class KeysTest : public ::testing::Test {
 protected:
  CryptoEngine engine_{1};
};

TEST_F(KeysTest, SignVerifyRoundTrip) {
  const KeyPair keys = engine_.generateKeyPair();
  const common::Bytes msg = bytesOf("route reply");
  const Signature sig = engine_.sign(keys.priv, spanOf(msg));
  EXPECT_TRUE(engine_.verify(keys.pub, spanOf(msg), sig));
}

TEST_F(KeysTest, TamperedMessageFailsVerification) {
  const KeyPair keys = engine_.generateKeyPair();
  const common::Bytes msg = bytesOf("route reply");
  const Signature sig = engine_.sign(keys.priv, spanOf(msg));
  const common::Bytes tampered = bytesOf("route reply!");
  EXPECT_FALSE(engine_.verify(keys.pub, spanOf(tampered), sig));
}

TEST_F(KeysTest, WrongKeyFailsVerification) {
  const KeyPair a = engine_.generateKeyPair();
  const KeyPair b = engine_.generateKeyPair();
  const common::Bytes msg = bytesOf("m");
  const Signature sig = engine_.sign(a.priv, spanOf(msg));
  EXPECT_FALSE(engine_.verify(b.pub, spanOf(msg), sig));
}

TEST_F(KeysTest, ForgedSignatureFails) {
  const KeyPair keys = engine_.generateKeyPair();
  const common::Bytes msg = bytesOf("m");
  Signature sig = engine_.sign(keys.priv, spanOf(msg));
  sig.mac[5] ^= 0xff;
  EXPECT_FALSE(engine_.verify(keys.pub, spanOf(msg), sig));
}

TEST_F(KeysTest, SignatureBoundToKeyId) {
  const KeyPair a = engine_.generateKeyPair();
  const KeyPair b = engine_.generateKeyPair();
  const common::Bytes msg = bytesOf("m");
  Signature sig = engine_.sign(a.priv, spanOf(msg));
  sig.keyId = b.pub.keyId;  // splice another identity onto the MAC
  EXPECT_FALSE(engine_.verify(b.pub, spanOf(msg), sig));
  EXPECT_FALSE(engine_.verify(a.pub, spanOf(msg), sig));
}

TEST_F(KeysTest, UnknownKeyCannotVerify) {
  const common::Bytes msg = bytesOf("m");
  EXPECT_FALSE(engine_.verify(PublicKey{0xDEADull}, spanOf(msg), Signature{}));
}

TEST_F(KeysTest, KeyIdsAreUnique) {
  std::unordered_map<std::uint64_t, bool> seen;
  for (int i = 0; i < 100; ++i) {
    const KeyPair keys = engine_.generateKeyPair();
    EXPECT_FALSE(seen.contains(keys.pub.keyId));
    seen[keys.pub.keyId] = true;
  }
  EXPECT_EQ(engine_.registeredKeys(), 100u);
}

TEST_F(KeysTest, SigningIsDeterministic) {
  const KeyPair keys = engine_.generateKeyPair();
  const common::Bytes msg = bytesOf("m");
  EXPECT_EQ(engine_.sign(keys.priv, spanOf(msg)),
            engine_.sign(keys.priv, spanOf(msg)));
}

TEST_F(KeysTest, UninitialisedKeyRejected) {
  const PrivateKey empty;
  EXPECT_THROW((void)engine_.sign(empty, spanOf(bytesOf("m"))),
               common::AssertionError);
}

// ------------------------------------------------------------ certificates

class TaTest : public ::testing::Test {
 protected:
  TaTest() : ta_{simulator_, engine_} { taId_ = ta_.addAuthority(); }

  sim::Simulator simulator_;
  CryptoEngine engine_{7};
  TaNetwork ta_;
  common::TaId taId_;
};

TEST_F(TaTest, EnrollIssuesValidCertificate) {
  const auto enrollment = ta_.enroll(taId_, common::NodeId{1});
  ASSERT_TRUE(enrollment.ok());
  const Certificate& cert = enrollment.value().certificate;
  EXPECT_TRUE(ta_.validateCertificate(cert, simulator_.now()));
  EXPECT_EQ(cert.issuer, taId_);
  EXPECT_NE(cert.pseudonym, common::kNullAddress);
}

TEST_F(TaTest, DistinctPseudonymsPerEnrollment) {
  const auto a = ta_.enroll(taId_, common::NodeId{1}).value();
  const auto b = ta_.enroll(taId_, common::NodeId{2}).value();
  EXPECT_NE(a.certificate.pseudonym, b.certificate.pseudonym);
  EXPECT_NE(a.certificate.serial, b.certificate.serial);
}

TEST_F(TaTest, TamperedCertificateFailsValidation) {
  auto cert = ta_.enroll(taId_, common::NodeId{1}).value().certificate;
  cert.pseudonym = common::Address{9999};
  EXPECT_FALSE(ta_.validateCertificate(cert, simulator_.now()));
}

TEST_F(TaTest, ExpiredCertificateFailsValidation) {
  const auto cert = ta_.enroll(taId_, common::NodeId{1}).value().certificate;
  EXPECT_FALSE(ta_.validateCertificate(
      cert, cert.expiresAt + sim::Duration::microseconds(1)));
  EXPECT_FALSE(ta_.validateCertificate(cert, cert.expiresAt));
}

TEST_F(TaTest, UnknownIssuerFailsValidation) {
  auto cert = ta_.enroll(taId_, common::NodeId{1}).value().certificate;
  cert.issuer = common::TaId{99};
  EXPECT_FALSE(ta_.validateCertificate(cert, simulator_.now()));
}

TEST_F(TaTest, UnknownTaRejectsEnrollment) {
  const auto result = ta_.enroll(common::TaId{42}, common::NodeId{1});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "unknown-ta");
}

TEST_F(TaTest, RenewalIssuesFreshPseudonym) {
  const auto first = ta_.enroll(taId_, common::NodeId{1}).value();
  const auto renewed = ta_.renew(taId_, common::NodeId{1});
  ASSERT_TRUE(renewed.ok());
  EXPECT_NE(renewed.value().certificate.pseudonym,
            first.certificate.pseudonym);
}

TEST_F(TaTest, MisbehaviourReportRevokesAndPausesRenewal) {
  const auto enrollment = ta_.enroll(taId_, common::NodeId{1}).value();
  const auto notice =
      ta_.reportMisbehaviour(enrollment.certificate.pseudonym);
  ASSERT_TRUE(notice.has_value());
  EXPECT_EQ(notice->pseudonym, enrollment.certificate.pseudonym);
  EXPECT_EQ(notice->serial, enrollment.certificate.serial);
  EXPECT_TRUE(ta_.isRenewalPaused(common::NodeId{1}));

  const auto renewed = ta_.renew(taId_, common::NodeId{1});
  ASSERT_FALSE(renewed.ok());
  EXPECT_EQ(renewed.error().code, "renewal-paused");
}

TEST_F(TaTest, ReportAgainstUnknownPseudonymIsRejected) {
  EXPECT_FALSE(ta_.reportMisbehaviour(common::Address{123456}).has_value());
}

TEST_F(TaTest, RenewalPauseSynchronisesAcrossAuthorities) {
  // "The trusted authority... informs other trusted authority nodes to
  // pause attacker renewal certificates."
  const common::TaId second = ta_.addAuthority();
  const auto enrollment = ta_.enroll(taId_, common::NodeId{1}).value();
  ASSERT_TRUE(ta_.reportMisbehaviour(enrollment.certificate.pseudonym));
  const auto renewedElsewhere = ta_.renew(second, common::NodeId{1});
  EXPECT_FALSE(renewedElsewhere.ok());
}

TEST_F(TaTest, SubscribersReceiveNoticesAfterPropagationDelay) {
  std::vector<RevocationNotice> received;
  ta_.subscribeRevocations(
      [&](const RevocationNotice& n) { received.push_back(n); });
  const auto enrollment = ta_.enroll(taId_, common::NodeId{1}).value();
  ASSERT_TRUE(ta_.reportMisbehaviour(enrollment.certificate.pseudonym));
  EXPECT_TRUE(received.empty());  // not yet: backbone propagation delay
  simulator_.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].serial, enrollment.certificate.serial);
}

TEST_F(TaTest, CertificatesFromDifferentAuthoritiesValidate) {
  const common::TaId second = ta_.addAuthority();
  const auto cert = ta_.enroll(second, common::NodeId{5}).value().certificate;
  EXPECT_TRUE(ta_.validateCertificate(cert, simulator_.now()));
}

TEST_F(TaTest, AuthorityLookup) {
  EXPECT_EQ(ta_.authority(taId_).id(), taId_);
  EXPECT_THROW((void)ta_.authority(common::TaId{77}), std::out_of_range);
}

TEST_F(TaTest, CurrentCertificateTracksLatest) {
  (void)ta_.enroll(taId_, common::NodeId{1}).value();
  const auto renewed = ta_.renew(taId_, common::NodeId{1}).value();
  const auto current = ta_.authority(taId_).currentCertificate(common::NodeId{1});
  ASSERT_TRUE(current.has_value());
  EXPECT_EQ(current->serial, renewed.certificate.serial);
}

// -------------------------------------------------------- revocation store

TEST(RevocationStoreTest, AddAndQuery) {
  RevocationStore store;
  const RevocationNotice notice{common::Address{5}, common::CertSerial{9},
                                sim::TimePoint::fromUs(1000)};
  store.add(notice);
  EXPECT_TRUE(store.isRevokedSerial(common::CertSerial{9}));
  EXPECT_TRUE(store.isRevokedPseudonym(common::Address{5}));
  EXPECT_FALSE(store.isRevokedSerial(common::CertSerial{10}));
  EXPECT_FALSE(store.isRevokedPseudonym(common::Address{6}));
}

TEST(RevocationStoreTest, AddIsIdempotent) {
  RevocationStore store;
  const RevocationNotice notice{common::Address{5}, common::CertSerial{9},
                                sim::TimePoint::fromUs(1000)};
  store.add(notice);
  store.add(notice);
  EXPECT_EQ(store.size(), 1u);
}

TEST(RevocationStoreTest, PurgeRemovesExpiredOnly) {
  // "Every CH needs to store the revoked certificate information and then
  // remove them once they expired."
  RevocationStore store;
  store.add({common::Address{1}, common::CertSerial{1},
             sim::TimePoint::fromUs(100)});
  store.add({common::Address{2}, common::CertSerial{2},
             sim::TimePoint::fromUs(200)});
  EXPECT_EQ(store.purgeExpired(sim::TimePoint::fromUs(150)), 1u);
  EXPECT_FALSE(store.isRevokedSerial(common::CertSerial{1}));
  EXPECT_TRUE(store.isRevokedSerial(common::CertSerial{2}));
  EXPECT_FALSE(store.isRevokedPseudonym(common::Address{1}));
}

TEST(RevocationStoreTest, PurgeAtExactExpiryRemoves) {
  RevocationStore store;
  store.add({common::Address{1}, common::CertSerial{1},
             sim::TimePoint::fromUs(100)});
  EXPECT_EQ(store.purgeExpired(sim::TimePoint::fromUs(100)), 1u);
}

TEST(RevocationStoreTest, ActiveSnapshotsAllNotices) {
  RevocationStore store;
  store.add({common::Address{1}, common::CertSerial{1},
             sim::TimePoint::fromUs(100)});
  store.add({common::Address{2}, common::CertSerial{2},
             sim::TimePoint::fromUs(200)});
  EXPECT_EQ(store.active().size(), 2u);
}

TEST(RevocationStoreTest, SamePseudonymTwoSerials) {
  // A node revoked, renewed (before the pause took effect), revoked again.
  RevocationStore store;
  store.add({common::Address{1}, common::CertSerial{1},
             sim::TimePoint::fromUs(100)});
  store.add({common::Address{1}, common::CertSerial{2},
             sim::TimePoint::fromUs(200)});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.purgeExpired(sim::TimePoint::fromUs(150)), 1u);
  EXPECT_TRUE(store.isRevokedPseudonym(common::Address{1}));
}

// ---------------------------------------------------------- cert tbs bytes

TEST(CertificateTest, TbsBytesExcludeSignature) {
  sim::Simulator simulator;
  CryptoEngine engine{3};
  TaNetwork ta{simulator, engine};
  const common::TaId taId = ta.addAuthority();
  auto cert = ta.enroll(taId, common::NodeId{1}).value().certificate;
  const common::Bytes before = cert.tbsBytes();
  cert.issuerSignature.mac[0] ^= 0xff;
  EXPECT_EQ(cert.tbsBytes(), before);
}

TEST(CertificateTest, TbsBytesCoverIdentityFields) {
  sim::Simulator simulator;
  CryptoEngine engine{3};
  TaNetwork ta{simulator, engine};
  const common::TaId taId = ta.addAuthority();
  auto cert = ta.enroll(taId, common::NodeId{1}).value().certificate;
  const common::Bytes before = cert.tbsBytes();
  cert.pseudonym = common::Address{4242};
  EXPECT_NE(cert.tbsBytes(), before);
}

}  // namespace
}  // namespace blackdp::crypto
