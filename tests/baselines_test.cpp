// Related-work baselines: sequence-number detectors, trust manager, and the
// HMAC message-authentication scheme.
#include <gtest/gtest.h>

#include "baselines/hmac_auth.hpp"
#include "baselines/rrep_detectors.hpp"
#include "baselines/trust_manager.hpp"

namespace blackdp::baselines {
namespace {

aodv::RouteReply rrep(std::uint64_t replier, aodv::SeqNum seq) {
  aodv::RouteReply r;
  r.replier = common::Address{replier};
  r.destSeq = seq;
  return r;
}

// ------------------------------------------------- first-RREP comparison

TEST(FirstRrepTest, FlagsOutlierFirstReply) {
  FirstRrepComparisonDetector detector;
  const auto flagged = detector.classify({rrep(66, 200), rrep(2, 5)});
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], common::Address{66});
}

TEST(FirstRrepTest, AcceptsComparableFirstReply) {
  FirstRrepComparisonDetector detector;
  EXPECT_TRUE(detector.classify({rrep(1, 30), rrep(2, 25)}).empty());
}

TEST(FirstRrepTest, BlindWithSingleReply) {
  // The paper's criticism: "there might be a situation where the attacker
  // is the connector of two networks... In this case, none of the previous
  // techniques can detect the attack."
  FirstRrepComparisonDetector detector;
  EXPECT_TRUE(detector.classify({rrep(66, 99999)}).empty());
}

TEST(FirstRrepTest, BlindWithNoReplies) {
  FirstRrepComparisonDetector detector;
  EXPECT_TRUE(detector.classify({}).empty());
}

TEST(FirstRrepTest, DuplicateCopiesOfFirstReplierDoNotMaskIt) {
  FirstRrepComparisonDetector detector;
  const auto flagged =
      detector.classify({rrep(66, 200), rrep(66, 200), rrep(2, 5)});
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], common::Address{66});
}

TEST(FirstRrepTest, CooperativePairMasksItself) {
  // Two colluders replying with the same forged freshness look comparable.
  FirstRrepComparisonDetector detector;
  EXPECT_TRUE(detector.classify({rrep(66, 200), rrep(67, 200)}).empty());
}

TEST(FirstRrepTest, MarginIsConfigurable) {
  FirstRrepComparisonDetector strict{0};
  EXPECT_EQ(strict.classify({rrep(66, 6), rrep(2, 5)}).size(), 1u);
  FirstRrepComparisonDetector lax{1000};
  EXPECT_TRUE(lax.classify({rrep(66, 200), rrep(2, 5)}).empty());
}

// ------------------------------------------------------------------- PEAK

TEST(PeakTest, FlagsAboveInitialPeak) {
  PeakThresholdDetector detector{100, 100};
  const auto flagged = detector.classify({rrep(66, 150), rrep(2, 5)});
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], common::Address{66});
}

TEST(PeakTest, AcceptsBelowPeak) {
  PeakThresholdDetector detector{100, 100};
  EXPECT_TRUE(detector.classify({rrep(2, 50)}).empty());
}

TEST(PeakTest, PeakAdaptsToAcceptedTraffic) {
  PeakThresholdDetector detector{100, 100};
  (void)detector.classify({rrep(2, 90)});
  // PEAK is now max(100, 90) + 100 = 200.
  EXPECT_EQ(detector.currentPeak(), 200u);
  EXPECT_TRUE(detector.classify({rrep(3, 150)}).empty());
}

TEST(PeakTest, ConstantForgeryEventuallySlipsUnder) {
  // The poisoning weakness: once a forged value is accepted, it raises the
  // ceiling for every later round.
  PeakThresholdDetector detector{100, 100};
  EXPECT_EQ(detector.classify({rrep(66, 150)}).size(), 1u);  // caught once
  EXPECT_TRUE(detector.classify({rrep(66, 150)}).empty());   // now accepted
  EXPECT_GE(detector.currentPeak(), 250u);
}

// -------------------------------------------------------- static threshold

TEST(StaticThresholdTest, EnvironmentsSetThresholds) {
  EXPECT_EQ(StaticThresholdDetector{Environment::kSmall}.threshold(), 100u);
  EXPECT_EQ(StaticThresholdDetector{Environment::kMedium}.threshold(), 500u);
  EXPECT_EQ(StaticThresholdDetector{Environment::kLarge}.threshold(), 2000u);
}

TEST(StaticThresholdTest, FlagsAboveThresholdOnly) {
  StaticThresholdDetector detector{Environment::kMedium};
  const auto flagged =
      detector.classify({rrep(66, 501), rrep(2, 500), rrep(3, 5)});
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], common::Address{66});
}

TEST(StaticThresholdTest, AdaptiveForgerSlipsUnderWrongEnvironment) {
  // Forged SN = 200: caught by "small", missed by "medium"/"large".
  EXPECT_EQ(StaticThresholdDetector{Environment::kSmall}
                .classify({rrep(66, 200)})
                .size(),
            1u);
  EXPECT_TRUE(StaticThresholdDetector{Environment::kMedium}
                  .classify({rrep(66, 200)})
                  .empty());
}

// Property sweep: detection as a function of the forged boost.
class ThresholdSweep : public ::testing::TestWithParam<aodv::SeqNum> {};

TEST_P(ThresholdSweep, FlagsIffAboveThreshold) {
  const aodv::SeqNum forged = GetParam();
  StaticThresholdDetector detector{Environment::kMedium};
  const bool flagged = !detector.classify({rrep(66, forged)}).empty();
  EXPECT_EQ(flagged, forged > 500u);
}

INSTANTIATE_TEST_SUITE_P(Boosts, ThresholdSweep,
                         ::testing::Values(1u, 100u, 499u, 500u, 501u, 2000u,
                                           100000u));

// ------------------------------------------------------------------ trust

TEST(TrustTest, StartsAtInitialTrust) {
  TrustManager trust;
  EXPECT_DOUBLE_EQ(trust.trust(common::Address{1}), 0.5);
  EXPECT_FALSE(trust.isMalicious(common::Address{1}));
}

TEST(TrustTest, DropsErodeTrust) {
  TrustManager trust;
  for (int i = 0; i < 20; ++i) trust.observe(common::Address{66}, false);
  EXPECT_LT(trust.trust(common::Address{66}), 0.25);
  EXPECT_TRUE(trust.isMalicious(common::Address{66}));
}

TEST(TrustTest, ForwardsBuildTrust) {
  TrustManager trust;
  for (int i = 0; i < 20; ++i) trust.observe(common::Address{1}, true);
  EXPECT_GT(trust.trust(common::Address{1}), 0.9);
  EXPECT_FALSE(trust.isMalicious(common::Address{1}));
}

TEST(TrustTest, VerdictNeedsMinimumObservations) {
  TrustConfig config;
  config.minObservations = 10;
  TrustManager trust{config};
  for (int i = 0; i < 9; ++i) trust.observe(common::Address{66}, false);
  EXPECT_FALSE(trust.isMalicious(common::Address{66}));
  trust.observe(common::Address{66}, false);
  EXPECT_TRUE(trust.isMalicious(common::Address{66}));
}

TEST(TrustTest, MaliciousGossipCanFrameHonestNodes) {
  // The paper's §V-C criticism: attackers participating in opinion
  // exchange can push an honest node's score below the threshold.
  TrustManager trust;
  for (int i = 0; i < 40; ++i) trust.gossip(common::Address{2}, 0.0);
  EXPECT_TRUE(trust.isMalicious(common::Address{2}));
}

TEST(TrustTest, MaliciousNodesListsOffenders) {
  TrustManager trust;
  for (int i = 0; i < 20; ++i) {
    trust.observe(common::Address{66}, false);
    trust.observe(common::Address{1}, true);
  }
  const auto malicious = trust.maliciousNodes();
  ASSERT_EQ(malicious.size(), 1u);
  EXPECT_EQ(malicious[0], common::Address{66});
}

TEST(TrustTest, ObservationsAreCounted) {
  TrustManager trust;
  trust.observe(common::Address{1}, true);
  trust.observe(common::Address{1}, false);
  EXPECT_EQ(trust.observations(common::Address{1}), 2u);
  EXPECT_EQ(trust.observations(common::Address{2}), 0u);
}

// -------------------------------------------------------------- HMAC auth

TEST(HmacAuthTest, RreqRoundTrip) {
  SharedKey key;
  key.bytes[0] = 0x42;
  aodv::RouteRequest rreq;
  rreq.origin = common::Address{1};
  rreq.destSeq = 7;
  const crypto::Digest mac = macRouteRequest(key, rreq);
  EXPECT_TRUE(verifyRouteRequest(key, rreq, mac));
}

TEST(HmacAuthTest, TamperedSeqFailsRreq) {
  SharedKey key;
  aodv::RouteRequest rreq;
  rreq.destSeq = 7;
  const crypto::Digest mac = macRouteRequest(key, rreq);
  rreq.destSeq = 99999;  // the black hole's forgery
  EXPECT_FALSE(verifyRouteRequest(key, rreq, mac));
}

TEST(HmacAuthTest, HopCountIsMutable) {
  // Hop count mutates legitimately in flight; it must not break the MAC.
  SharedKey key;
  aodv::RouteRequest rreq;
  const crypto::Digest mac = macRouteRequest(key, rreq);
  rreq.hopCount = 5;
  EXPECT_TRUE(verifyRouteRequest(key, rreq, mac));
}

TEST(HmacAuthTest, RrepRoundTripAndTamper) {
  SharedKey key;
  aodv::RouteReply rrep;
  rrep.replier = common::Address{3};
  rrep.destSeq = 42;
  const crypto::Digest mac = macRouteReply(key, rrep);
  EXPECT_TRUE(verifyRouteReply(key, rrep, mac));
  rrep.destSeq = 200;
  EXPECT_FALSE(verifyRouteReply(key, rrep, mac));
}

TEST(HmacAuthTest, WrongKeyFails) {
  SharedKey a;
  SharedKey b;
  b.bytes[31] = 1;
  aodv::RouteReply rrep;
  EXPECT_FALSE(verifyRouteReply(b, rrep, macRouteReply(a, rrep)));
}

TEST(HmacAuthTest, InsiderWithKeyCanStillForge) {
  // The scheme's fundamental limit: a compromised insider that holds the
  // shared key produces "valid" forgeries — message authentication is not
  // behaviour verification.
  SharedKey key;
  aodv::RouteReply forged;
  forged.destSeq = 999999;
  forged.replier = common::Address{66};
  EXPECT_TRUE(verifyRouteReply(key, forged, macRouteReply(key, forged)));
}

}  // namespace
}  // namespace blackdp::baselines
