// Urban grid geometry, turn-by-turn mobility, zone tracking, and the
// end-to-end urban BlackDP flow (paper §VI future work).
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "mobility/urban.hpp"
#include "mobility/urban_mobility.hpp"
#include "mobility/zone_tracking.hpp"
#include "scenario/urban_scenario.hpp"

namespace blackdp {
namespace {

using mobility::Heading;
using mobility::Position;
using mobility::UrbanGrid;

// -------------------------------------------------------------------- grid

TEST(UrbanGridTest, Dimensions) {
  const UrbanGrid grid{4, 3, 500.0};
  EXPECT_EQ(grid.intersectionsX(), 5u);
  EXPECT_EQ(grid.intersectionsY(), 4u);
  EXPECT_EQ(grid.zoneCount(), 20u);
  EXPECT_DOUBLE_EQ(grid.width(), 2000.0);
  EXPECT_DOUBLE_EQ(grid.height(), 1500.0);
}

TEST(UrbanGridTest, InvalidDimensionsThrow) {
  EXPECT_THROW((UrbanGrid{0, 3, 500.0}), std::invalid_argument);
  EXPECT_THROW((UrbanGrid{3, 3, 0.0}), std::invalid_argument);
}

TEST(UrbanGridTest, ZoneIdsRoundTrip) {
  const UrbanGrid grid{4, 4, 500.0};
  for (std::uint32_t iy = 0; iy < grid.intersectionsY(); ++iy) {
    for (std::uint32_t ix = 0; ix < grid.intersectionsX(); ++ix) {
      const auto zone = grid.zoneIdAt(ix, iy);
      const auto [rx, ry] = grid.gridCoordinates(zone);
      EXPECT_EQ(rx, ix);
      EXPECT_EQ(ry, iy);
    }
  }
}

TEST(UrbanGridTest, ZoneOfIsNearestIntersection) {
  const UrbanGrid grid{4, 4, 500.0};
  // (600, 400) is nearest to intersection (1, 1) at (500, 500).
  EXPECT_EQ(grid.zoneOf(Position{600.0, 400.0}), grid.zoneIdAt(1, 1));
  // (200, 100) is nearest to (0, 0).
  EXPECT_EQ(grid.zoneOf(Position{200.0, 100.0}), grid.zoneIdAt(0, 0));
  // Off-grid.
  EXPECT_FALSE(grid.zoneOf(Position{-10.0, 0.0}).has_value());
  EXPECT_FALSE(grid.zoneOf(Position{0.0, 3000.0}).has_value());
}

TEST(UrbanGridTest, ZoneCenterIsIntersection) {
  const UrbanGrid grid{4, 4, 500.0};
  const auto zone = grid.zoneIdAt(2, 3);
  const Position c = grid.zoneCenter(zone);
  EXPECT_DOUBLE_EQ(c.x, 1000.0);
  EXPECT_DOUBLE_EQ(c.y, 1500.0);
}

TEST(UrbanGridTest, ExitsRespectBorders) {
  const UrbanGrid grid{2, 2, 500.0};
  EXPECT_EQ(grid.exitsFrom(0, 0).size(), 2u);  // N, E
  EXPECT_EQ(grid.exitsFrom(1, 1).size(), 4u);  // interior
  EXPECT_EQ(grid.exitsFrom(2, 0).size(), 2u);  // N, W
  EXPECT_EQ(grid.exitsFrom(1, 2).size(), 3u);  // E, S, W
}

TEST(UrbanGridTest, IsOnStreetDetectsGridLines) {
  const UrbanGrid grid{4, 4, 500.0};
  EXPECT_TRUE(grid.isOnStreet(Position{250.0, 500.0}));   // on y=500 street
  EXPECT_TRUE(grid.isOnStreet(Position{500.0, 321.0}));   // on x=500 street
  EXPECT_FALSE(grid.isOnStreet(Position{250.0, 250.0}));  // mid-block
}

TEST(UrbanGridTest, NeighborTowardFollowsXAxis) {
  const UrbanGrid grid{4, 4, 500.0};
  EXPECT_EQ(grid.neighborToward(grid.zoneIdAt(1, 2),
                                mobility::Direction::kEastbound),
            grid.zoneIdAt(2, 2));
  EXPECT_EQ(grid.neighborToward(grid.zoneIdAt(1, 2),
                                mobility::Direction::kWestbound),
            grid.zoneIdAt(0, 2));
  EXPECT_FALSE(grid.neighborToward(grid.zoneIdAt(4, 0),
                                   mobility::Direction::kEastbound)
                   .has_value());
  EXPECT_FALSE(grid.neighborToward(grid.zoneIdAt(0, 0),
                                   mobility::Direction::kWestbound)
                   .has_value());
}

TEST(UrbanGridTest, HeadingHelpers) {
  EXPECT_EQ(opposite(Heading::kNorth), Heading::kSouth);
  EXPECT_EQ(opposite(Heading::kEast), Heading::kWest);
  const auto [nx, ny] = unitVector(Heading::kNorth);
  EXPECT_DOUBLE_EQ(nx, 0.0);
  EXPECT_DOUBLE_EQ(ny, 1.0);
}

// ----------------------------------------------------------------- motion

TEST(Motion2dTest, VelocityFormMovesBothAxes) {
  const auto m = mobility::LinearMotion::withVelocity({100.0, 200.0}, 3.0,
                                                      -4.0, sim::TimePoint{});
  const Position p = m.positionAt(sim::TimePoint::fromUs(2'000'000));
  EXPECT_DOUBLE_EQ(p.x, 106.0);
  EXPECT_DOUBLE_EQ(p.y, 192.0);
  EXPECT_DOUBLE_EQ(m.speedMps(), 5.0);
}

TEST(Motion2dTest, WhenAtYMirrorsWhenAtX) {
  const auto m = mobility::LinearMotion::withVelocity({0.0, 0.0}, 0.0, 10.0,
                                                      sim::TimePoint{});
  const auto when = m.whenAtY(50.0);
  ASSERT_TRUE(when.has_value());
  EXPECT_EQ(when->us(), 5'000'000);
  EXPECT_FALSE(m.whenAtY(-1.0).has_value());
  EXPECT_FALSE(m.whenAtX(1.0).has_value());  // no x velocity
}

// ------------------------------------------------------------ zone change

TEST(ZoneTrackingTest, FindsHighwayBoundary) {
  const mobility::Highway highway{10'000.0, 200.0, 1'000.0};
  const mobility::LinearMotion motion{{900.0, 100.0}, 25.0,
                                      mobility::Direction::kEastbound,
                                      sim::TimePoint{}};
  const auto change =
      mobility::nextZoneChange(motion, highway, sim::TimePoint{});
  ASSERT_TRUE(change.has_value());
  // 100 m to the boundary at 25 m/s = 4 s.
  EXPECT_NEAR(change->when.toSeconds(), 4.0, 0.1);
  EXPECT_EQ(change->into, common::ClusterId{2});
}

TEST(ZoneTrackingTest, FindsUrbanZoneBoundaryOnVerticalStreet) {
  const UrbanGrid grid{4, 4, 500.0};
  // Northbound along x=500 from the (1,0) intersection: the Voronoi
  // boundary to zone (1,1) is at y=250.
  const auto motion = mobility::LinearMotion::withVelocity({500.0, 0.0}, 0.0,
                                                           10.0,
                                                           sim::TimePoint{});
  const auto change = mobility::nextZoneChange(motion, grid, sim::TimePoint{});
  ASSERT_TRUE(change.has_value());
  EXPECT_NEAR(change->when.toSeconds(), 25.0, 0.2);
  EXPECT_EQ(change->into, grid.zoneIdAt(1, 1));
}

TEST(ZoneTrackingTest, DetectsLeavingTheMap) {
  const mobility::Highway highway{10'000.0, 200.0, 1'000.0};
  const mobility::LinearMotion motion{{9'950.0, 100.0}, 25.0,
                                      mobility::Direction::kEastbound,
                                      sim::TimePoint{}};
  const auto change =
      mobility::nextZoneChange(motion, highway, sim::TimePoint{});
  ASSERT_TRUE(change.has_value());
  EXPECT_FALSE(change->into.has_value());
}

TEST(ZoneTrackingTest, StationaryNeverChanges) {
  const mobility::Highway highway{10'000.0, 200.0, 1'000.0};
  EXPECT_FALSE(mobility::nextZoneChange(
                   mobility::LinearMotion::stationary({500.0, 100.0}),
                   highway, sim::TimePoint{})
                   .has_value());
}

// --------------------------------------------------------------- mobility

TEST(UrbanMobilityTest, DrivesLegsAndTurnsAtIntersections) {
  sim::Simulator simulator;
  const UrbanGrid grid{4, 4, 500.0};
  mobility::LinearMotion current;
  mobility::UrbanMobilityController driver{
      simulator, grid, 10.0, sim::Rng{5},
      [&current](const mobility::LinearMotion& motion) { current = motion; }};
  int legs = 0;
  driver.setLegCallback([&legs] { ++legs; });
  driver.start(0, 0, Heading::kEast);

  // 500 m legs at 10 m/s: after 160 s at least 3 legs happened.
  simulator.run(simulator.now() + sim::Duration::seconds(160));
  EXPECT_GE(driver.legsDriven(), 3u);
  EXPECT_EQ(static_cast<std::uint64_t>(legs), driver.legsDriven());

  // The vehicle is always on a street.
  const Position p = current.positionAt(simulator.now());
  EXPECT_TRUE(grid.isOnStreet(p, 1.0))
      << "off-street at (" << p.x << "," << p.y << ")";
}

TEST(UrbanMobilityTest, StaysOnGridForever) {
  sim::Simulator simulator;
  const UrbanGrid grid{3, 3, 400.0};
  mobility::LinearMotion current;
  mobility::UrbanMobilityController driver{
      simulator, grid, 15.0, sim::Rng{11},
      [&current](const mobility::LinearMotion& motion) { current = motion; }};
  driver.start(1, 1, Heading::kNorth);
  // Absolute deadlines: the clock only advances on executed events, so
  // relative now()+Δ windows could re-cover the same empty span.
  for (int i = 1; i <= 50; ++i) {
    simulator.run(sim::TimePoint::fromUs(static_cast<std::int64_t>(i) *
                                         20'000'000));
    EXPECT_TRUE(grid.contains(current.positionAt(simulator.now())));
  }
  EXPECT_GE(driver.legsDriven(), 30u);
}

TEST(UrbanMobilityTest, StopHaltsTurning) {
  sim::Simulator simulator;
  const UrbanGrid grid{3, 3, 400.0};
  mobility::LinearMotion current;
  mobility::UrbanMobilityController driver{
      simulator, grid, 10.0, sim::Rng{5},
      [&current](const mobility::LinearMotion& motion) { current = motion; }};
  driver.start(0, 0, Heading::kEast);
  simulator.run(simulator.now() + sim::Duration::seconds(10));
  driver.stop();
  const auto legs = driver.legsDriven();
  simulator.run(simulator.now() + sim::Duration::seconds(200));
  EXPECT_EQ(driver.legsDriven(), legs);
}

TEST(UrbanMobilityTest, InvalidInitialHeadingAsserts) {
  sim::Simulator simulator;
  const UrbanGrid grid{3, 3, 400.0};
  mobility::UrbanMobilityController driver{
      simulator, grid, 10.0, sim::Rng{5}, [](const mobility::LinearMotion&) {}};
  EXPECT_THROW(driver.start(0, 0, Heading::kWest), common::AssertionError);
}

// ------------------------------------------------------------ urban world

TEST(UrbanScenarioTest, BuildsGridWorld) {
  scenario::UrbanConfig config;
  config.seed = 3;
  config.attack = scenario::AttackType::kNone;
  scenario::UrbanScenario world(config);
  EXPECT_EQ(world.rsus().size(), 25u);  // 5x5 intersections
  EXPECT_EQ(world.vehicles().size(), config.vehicleCount);
}

TEST(UrbanScenarioTest, VehiclesJoinZonesAndMigrate) {
  scenario::UrbanConfig config;
  config.seed = 4;
  config.attack = scenario::AttackType::kNone;
  scenario::UrbanScenario world(config);
  world.runFor(sim::Duration::seconds(1));
  std::size_t joined = 0;
  for (auto& vehicle : world.vehicles()) {
    if (vehicle->membership->currentCluster()) ++joined;
  }
  EXPECT_EQ(joined, world.vehicles().size());

  // After enough driving, zone migrations have happened.
  world.runFor(sim::Duration::seconds(120));
  std::uint64_t leaves = 0;
  for (auto& vehicle : world.vehicles()) {
    leaves += vehicle->membership->stats().leavesSent;
  }
  EXPECT_GT(leaves, 10u);
}

TEST(UrbanScenarioTest, HonestVerificationSucceeds) {
  scenario::UrbanConfig config;
  config.seed = 5;
  config.attack = scenario::AttackType::kNone;
  scenario::UrbanScenario world(config);
  const core::VerificationReport report = world.runVerification();
  EXPECT_EQ(report.outcome, core::Outcome::kRouteVerified);
  EXPECT_FALSE(report.reported);
}

TEST(UrbanScenarioTest, SingleBlackHoleDetectedOnTheGrid) {
  scenario::UrbanConfig config;
  config.seed = 6;
  config.attack = scenario::AttackType::kSingle;
  scenario::UrbanScenario world(config);
  const core::VerificationReport report = world.runVerification();
  EXPECT_EQ(report.outcome, core::Outcome::kAttackerConfirmed);
  const scenario::DetectionSummary summary = world.detectionSummary();
  EXPECT_TRUE(summary.confirmedOnAttacker);
  EXPECT_FALSE(summary.falsePositive);
  EXPECT_EQ(world.taNetwork().revocations().size(), 1u);
}

TEST(UrbanScenarioTest, CooperativePairDetectedOnTheGrid) {
  scenario::UrbanConfig config;
  config.seed = 7;
  config.attack = scenario::AttackType::kCooperative;
  scenario::UrbanScenario world(config);
  const core::VerificationReport report = world.runVerification();
  EXPECT_EQ(report.outcome, core::Outcome::kAttackerConfirmed);
  const scenario::DetectionSummary summary = world.detectionSummary();
  EXPECT_TRUE(summary.confirmedOnAttacker);
  EXPECT_FALSE(summary.falsePositive);
}

TEST(UrbanScenarioTest, DeterministicReplay) {
  const auto run = [] {
    scenario::UrbanConfig config;
    config.seed = 8;
    config.attack = scenario::AttackType::kSingle;
    scenario::UrbanScenario world(config);
    const core::VerificationReport report = world.runVerification();
    return std::tuple{report.outcome, report.suspect,
                      world.simulator().executedEvents()};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace blackdp
